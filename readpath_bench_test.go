package shadowdb

// Allocation budget of the lease-read hot path (DESIGN.md §13). The
// serve loop — ReadRequest in, pooled ReadResult out — must stay at
// zero allocations per operation; the ordered apply path is pinned
// against the committed baseline in testdata/alloc_baseline.txt so a
// regression fails review instead of shipping. CI runs this test as
// the alloc-regression gate; refresh the baseline deliberately (and
// explain why in the commit) when the apply path legitimately changes:
//
//	go test -run TestReadPathAllocBudget .
//	go test -bench BenchmarkLeaseRead -benchtime 2s .
import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"shadowdb/internal/bench"
	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// readAllocBaseline parses testdata/alloc_baseline.txt: one "<name>
// <allocs>" pair per line, comments with #.
func readAllocBaseline(t *testing.T) map[string]float64 {
	t.Helper()
	f, err := os.Open("testdata/alloc_baseline.txt")
	if err != nil {
		t.Fatalf("alloc baseline missing: %v", err)
	}
	defer func() { _ = f.Close() }()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("alloc baseline: malformed line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("alloc baseline: bad value in %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReadPathAllocBudget gates the two hot-path budgets: the serve
// loop must be allocation-free outright, and the apply loop must not
// exceed the committed baseline.
func TestReadPathAllocBudget(t *testing.T) {
	base := readAllocBaseline(t)
	serve, apply := bench.MeasureReadAllocs(500)
	if want, ok := base["serve"]; !ok || serve > want {
		t.Errorf("lease-read serve: %.1f allocs/op, budget %.1f (hard bar: zero)", serve, want)
	}
	if want, ok := base["apply"]; !ok || apply > want {
		t.Errorf("ordered apply: %.1f allocs/op exceeds committed baseline %.1f;\n"+
			"if the increase is intentional, refresh testdata/alloc_baseline.txt", apply, want)
	}
	t.Logf("serve %.1f allocs/op, apply %.1f allocs/op (baseline serve %.0f / apply %.0f)",
		serve, apply, base["serve"], base["apply"])
}

// leaseHolder builds a standalone replica holding a valid lease, the
// same shape MeasureReadAllocs uses: an ordered renewal is applied so
// leaseValid() passes, and the frozen clock keeps it valid forever.
func leaseHolder(tb testing.TB) *core.SMRReplica {
	tb.Helper()
	db, err := sqldb.Open("h2:mem:readpath-bench-" + tb.Name())
	if err != nil {
		tb.Fatal(err)
	}
	if err := core.BankSetup(db, 64); err != nil {
		tb.Fatal(err)
	}
	rep := core.NewSMRReplica("r1", db, core.BankRegistry())
	rep.Executor().Fast = core.BankFastRegistry()
	rep.SetView(member.NewView(member.Config{
		Bcast:    []msg.Loc{"b1", "b2", "b3"},
		Replicas: []msg.Loc{"r1", "r2", "r3"},
	}, 8))
	rep.EnableLease(core.LeaseConfig{
		Dur: time.Hour, MaxStale: time.Hour, Bcast: "b1",
		Now: func() time.Duration { return time.Second },
	}, core.BankReadRegistry())
	rep.Step(msg.M(broadcast.HdrDeliver, broadcast.Deliver{Slot: 0,
		Msgs: []broadcast.Bcast{{From: "r1", Seq: 1,
			Payload: core.EncodeLease(core.LeaseRenewal{Epoch: 0, Holder: "r1", Issue: time.Second, Seq: 1})}}}))
	return rep
}

// BenchmarkLeaseRead measures a steady-state local lease read at the
// holder. ReportAllocs should print 0 allocs/op; the ns/op figure is
// the local-read latency floor the readpath experiment's speedup is
// measured against.
func BenchmarkLeaseRead(b *testing.B) {
	rep := leaseHolder(b)
	read := msg.M(core.HdrRead, core.ReadRequest{
		Client: "probe", Seq: 1, Type: "balance",
		Args: []any{int64(1)}, Mode: core.ReadLease,
	})
	for i := 0; i < 64; i++ {
		_, outs := rep.Step(read)
		core.ReleaseReadResult(outs[0].M.Body.(*core.ReadResult))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, outs := rep.Step(read)
		res := outs[0].M.Body.(*core.ReadResult)
		if res.Rejected || res.Err != "" {
			b.Fatalf("read failed: rejected=%v err=%q", res.Rejected, res.Err)
		}
		core.ReleaseReadResult(res)
	}
}
