package shadowdb

// The benchmark harness entry points: one testing.B benchmark per table
// and figure of the paper's evaluation (Section IV). Each benchmark runs
// the corresponding experiment at reduced scale and reports the paper's
// headline metric as custom units, so `go test -bench=.` regenerates a
// compact version of the whole evaluation; `cmd/bench` prints the full
// tables.

import (
	"testing"
	"time"

	"shadowdb/internal/bench"
	"shadowdb/internal/broadcast"
)

// BenchmarkTable1 regenerates Table I: specification and generated
// program sizes. Reported units: class-AST nodes of the largest spec and
// the optimizer's shrink factor.
func BenchmarkTable1(b *testing.B) {
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table1()
	}
	var largest, shrinkNum, shrinkDen int
	for _, r := range rows {
		if r.SpecNodes > largest {
			largest = r.SpecNodes
		}
		shrinkNum += r.TermNodes
		shrinkDen += r.OptNodes
	}
	b.ReportMetric(float64(largest), "max-spec-nodes")
	b.ReportMetric(float64(shrinkNum)/float64(shrinkDen), "optimizer-shrink-x")
}

// BenchmarkFig8 regenerates Fig. 8: broadcast-service latency and peak
// throughput per execution mode.
func BenchmarkFig8(b *testing.B) {
	var res bench.Fig8Result
	for i := 0; i < b.N; i++ {
		res = bench.Fig8(bench.QuickFig8())
	}
	peak := func(m broadcast.Mode) float64 {
		best := 0.0
		for _, p := range res.Curves[m] {
			if p.Throughput > best {
				best = p.Throughput
			}
		}
		return best
	}
	b.ReportMetric(peak(broadcast.Interpreted), "interp-msgs/s")
	b.ReportMetric(peak(broadcast.InterpretedOpt), "opt-msgs/s")
	b.ReportMetric(peak(broadcast.Compiled), "compiled-msgs/s")
	b.ReportMetric(res.Curves[broadcast.Compiled][0].MeanLatMs, "compiled-1cli-ms")
}

// BenchmarkFig9a regenerates Fig. 9(a): micro-benchmark peak committed
// throughput per system.
func BenchmarkFig9a(b *testing.B) {
	var res bench.Fig9Result
	for i := 0; i < b.N; i++ {
		res = bench.Fig9a(bench.QuickFig9a())
	}
	b.ReportMetric(bench.Peak(res.Curves["ShadowDB-PBR"]), "pbr-tps")
	b.ReportMetric(bench.Peak(res.Curves["ShadowDB-SMR"]), "smr-tps")
	b.ReportMetric(bench.Peak(res.Curves["H2-stdalone"]), "stdalone-tps")
	b.ReportMetric(bench.Peak(res.Curves["H2-repl."]), "h2repl-tps")
	b.ReportMetric(bench.Peak(res.Curves["MySQL-repl."]), "mysqlrepl-tps")
}

// BenchmarkFig9b regenerates Fig. 9(b): TPC-C peak committed throughput
// per system (the PBR/SMR near-parity headline).
func BenchmarkFig9b(b *testing.B) {
	var res bench.Fig9Result
	for i := 0; i < b.N; i++ {
		res = bench.Fig9b(bench.QuickFig9b())
	}
	pbr := bench.Peak(res.Curves["ShadowDB-PBR"])
	smr := bench.Peak(res.Curves["ShadowDB-SMR"])
	b.ReportMetric(pbr, "pbr-tps")
	b.ReportMetric(smr, "smr-tps")
	if pbr > 0 {
		b.ReportMetric(smr/pbr, "smr/pbr-parity")
	}
	b.ReportMetric(bench.Peak(res.Curves["H2-stdalone"]), "stdalone-tps")
}

// BenchmarkFig10a regenerates Fig. 10(a): the recovery timeline after a
// primary crash.
func BenchmarkFig10a(b *testing.B) {
	var res bench.Fig10aResult
	for i := 0; i < b.N; i++ {
		res = bench.Fig10a(bench.QuickFig10a())
	}
	b.ReportMetric(res.SuspectedAt.Seconds()-res.CrashAt.Seconds(), "detect-s")
	b.ReportMetric(res.ConfigLatency.Seconds()*1000, "config-ms")
	b.ReportMetric(res.TransferTime.Seconds(), "recovery-s")
}

// BenchmarkFig10b regenerates Fig. 10(b): state-transfer time against
// database size and row width.
func BenchmarkFig10b(b *testing.B) {
	var res bench.Fig10bResult
	for i := 0; i < b.N; i++ {
		res = bench.Fig10b(bench.QuickFig10b())
	}
	last := len(res.Small) - 1
	b.ReportMetric(res.Small[last].Seconds, "16B-transfer-s")
	b.ReportMetric(res.Large[last].Seconds, "1KB-transfer-s")
	if res.Small[last].Seconds > 0 {
		b.ReportMetric(res.Large[last].Seconds/res.Small[last].Seconds, "1KB/16B-ratio")
	}
}

// BenchmarkEndToEndPBR measures the public API's transaction round trip
// on a live in-process PBR cluster (real goroutines and channels, not the
// simulator).
func BenchmarkEndToEndPBR(b *testing.B) {
	benchEndToEnd(b, PBR)
}

// BenchmarkEndToEndSMR is the SMR counterpart.
func BenchmarkEndToEndSMR(b *testing.B) {
	benchEndToEnd(b, SMR)
}

func benchEndToEnd(b *testing.B, mode Mode) {
	cluster, err := Open(bankConfig(mode))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	cli, err := cluster.Client()
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.ExecTimeout(30*time.Second, "deposit", int64(i%100), int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}
