package shadowdb

// Doc lint: every exported identifier of the audited packages must
// carry a doc comment, and each package must have exactly one package
// comment (in doc.go where one exists). The invariants these packages
// maintain live in their godoc — an undocumented exported identifier
// is an invariant someone will violate. CI runs this test; it is pure
// stdlib (go/ast over the source tree, no build step).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// docLintPackages are the directories audited, relative to the repo
// root. Grow this list as packages are brought up to the standard.
var docLintPackages = []string{
	"internal/member",
	"internal/shard",
	"internal/fault",
	"internal/store",
	"internal/obs/dist",
	"internal/flow",
}

func TestDocLint(t *testing.T) {
	for _, dir := range docLintPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			lintPackage(t, fset, dir, pkg)
		}
	}
}

func lintPackage(t *testing.T, fset *token.FileSet, dir string, pkg *ast.Package) {
	t.Helper()
	pkgComments := 0
	for name, f := range pkg.Files {
		if f.Doc != nil {
			pkgComments++
			if want := filepath.Join(dir, "doc.go"); name != want {
				t.Errorf("%s: package comment should live in %s", name, want)
			}
		}
		for _, decl := range f.Decls {
			lintDecl(t, fset, decl)
		}
	}
	if pkgComments != 1 {
		t.Errorf("%s: %d package comments, want exactly 1 (in doc.go)", dir, pkgComments)
	}
}

func lintDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return p.Filename + ":" + itoa(p.Line)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported %s %s has no doc comment", pos(d), kindOf(d), d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					t.Errorf("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					// A doc comment on the grouped decl covers the block
					// (idiomatic for const groups).
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						t.Errorf("%s: exported %s %s has no doc comment", pos(s), d.Tok, n.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is itself
// exported: methods on unexported types are not package API.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
