// Command flight inspects and merges postmortem bundles dumped by the
// flight recorder (DESIGN.md §11). A node dumps a bundle when the
// online checker flags a violation, on panic, on SIGQUIT, or on demand
// via POST /flight/dump; this tool is the analysis side: enumerate the
// bundles of a cluster data-dir, inspect one, or merge all of them into
// a single causally-ordered cross-node timeline and replay their traces
// through the offline property checker.
//
// Usage:
//
//	flight list <root>
//	flight show [-logs N] <bundle-dir>
//	flight merge [-check] [-source log|trace] [-node NODE] <root>...
//
// list enumerates bundle directories under root (one per dump, nested
// per node). show prints one bundle's metadata, checker status, and log
// tail. merge loads every bundle under the given roots, merges logs and
// trace events by Lamport clock into one timeline on stdout, and with
// -check replays the traces through the bridge's property suite — the
// same total-order / in-order / single-value / durability checks the
// bounded verifier certifies — so a violation is re-detectable from the
// bundles alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/core"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/bridge"
	"shadowdb/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Bundle traces carry protocol bodies through the gob wire codec.
	core.RegisterWireTypes()
	broadcast.RegisterWireTypes()
	shard.RegisterWireTypes()
	synod.RegisterWireTypes()
	twothird.RegisterWireTypes()

	if len(args) == 0 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = list(args[1:])
	case "show":
		err = show(args[1:])
	case "merge":
		err = merge(args[1:])
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  flight list <root>
  flight show [-logs N] <bundle-dir>
  flight merge [-check] [-source log|trace] [-node NODE] <root>...`)
}

// list enumerates the bundles under one root.
func list(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		usage()
		return fmt.Errorf("flight list: exactly one root directory")
	}
	dirs, err := obs.ListBundles(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(dirs) == 0 {
		fmt.Println("no bundles")
		return nil
	}
	for _, d := range dirs {
		b, err := obs.LoadBundle(d)
		if err != nil {
			fmt.Printf("%-50s  UNREADABLE: %v\n", d, err)
			continue
		}
		at := time.Unix(0, b.Meta.WallAt).UTC().Format(time.RFC3339)
		fmt.Printf("%s  node=%-8s reason=%-28s logs=%-6d trace=%-6d %s\n",
			at, b.Meta.Node, b.Meta.Reason, len(b.Logs), len(b.Trace), d)
	}
	return nil
}

// show prints one bundle in full.
func show(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	tail := fs.Int("logs", 20, "log records to print (0 for all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		usage()
		return fmt.Errorf("flight show: exactly one bundle directory")
	}
	b, err := obs.LoadBundle(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("bundle   %s\n", b.Dir)
	fmt.Printf("node     %s\n", b.Meta.Node)
	fmt.Printf("reason   %s\n", b.Meta.Reason)
	fmt.Printf("dumped   %s (lc=%d, clock=%d)\n",
		time.Unix(0, b.Meta.WallAt).UTC().Format(time.RFC3339Nano), b.Meta.LC, b.Meta.At)
	if b.Meta.GitSHA != "" {
		fmt.Printf("git      %s\n", b.Meta.GitSHA)
	}
	fmt.Printf("go       %s (pid %d)\n", b.Meta.GoVersion, b.Meta.PID)
	for k, v := range b.Meta.Config {
		fmt.Printf("config   %s=%s\n", k, v)
	}
	fmt.Printf("logs     %d records (%d dropped by the ring)\n", len(b.Logs), b.LogDropped)
	fmt.Printf("trace    %d events\n", len(b.Trace))
	fmt.Printf("metrics  %d counters, %d gauges, %d histograms, %d rate windows\n",
		len(b.Metrics.Counters), len(b.Metrics.Gauges), len(b.Metrics.Histograms), len(b.Rates))
	if len(b.Checker) > 0 {
		fmt.Printf("checker  %s\n", b.Checker)
	}
	logs := b.Logs
	if *tail > 0 && len(logs) > *tail {
		logs = logs[len(logs)-*tail:]
		fmt.Printf("\nlast %d log records:\n", *tail)
	} else if len(logs) > 0 {
		fmt.Println("\nlog records:")
	}
	for _, r := range logs {
		line := fmt.Sprintf("  lc=%-6d %-5s [%s] %s", r.LC, r.Level, r.Component, r.Msg)
		if r.Trace != "" {
			line += " trace=" + r.Trace
		}
		fmt.Println(line)
	}
	return nil
}

// merge loads every bundle under the given roots, prints the merged
// cross-node timeline, and optionally replays the traces through the
// bridge property suite.
func merge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	check := fs.Bool("check", false, "replay traces through the offline property checker")
	source := fs.String("source", "", "restrict timeline to one source: log|trace")
	node := fs.String("node", "", "restrict timeline to one node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		usage()
		return fmt.Errorf("flight merge: at least one root directory")
	}
	var bundles []*obs.Bundle
	for _, root := range fs.Args() {
		dirs, err := obs.ListBundles(root)
		if err != nil {
			return err
		}
		for _, d := range dirs {
			b, err := obs.LoadBundle(d)
			if err != nil {
				return fmt.Errorf("flight merge: %s: %w", d, err)
			}
			bundles = append(bundles, b)
		}
	}
	if len(bundles) == 0 {
		return fmt.Errorf("flight merge: no bundles under %v", fs.Args())
	}
	nodes := map[string]bool{}
	joined := map[msg.Loc]bool{}
	for _, b := range bundles {
		nodes[string(b.Meta.Node)] = true
		// Bundles from nodes that joined mid-run carry the mark in their
		// config; their traces legitimately start past slot 0.
		if b.Meta.Config["joiner"] == "true" {
			joined[b.Meta.Node] = true
		}
	}
	var joiners []msg.Loc
	for j := range joined {
		joiners = append(joiners, j)
	}
	sort.Slice(joiners, func(i, k int) bool { return joiners[i] < joiners[k] })
	fmt.Fprintf(os.Stderr, "%d bundles from %d nodes (%d joined mid-run)\n",
		len(bundles), len(nodes), len(joiners))

	for _, e := range obs.MergeTimeline(bundles...) {
		if *source != "" && e.Source != *source {
			continue
		}
		if *node != "" && string(e.Node) != *node {
			continue
		}
		fmt.Println(e)
	}

	if *check {
		err := bridge.CheckTraces(obs.Traces(bundles...), bridge.Options{Joiners: joiners})
		if err != nil {
			fmt.Fprintf(os.Stderr, "replay: VIOLATION: %v\n", err)
			return fmt.Errorf("flight merge: properties violated")
		}
		fmt.Fprintln(os.Stderr, "replay: all properties hold over the merged traces")
	}
	return nil
}
