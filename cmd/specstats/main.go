// Command specstats prints Table I of the paper from the live
// specifications: class-AST sizes, generated/optimized GPM program sizes,
// and the automatic/manual property split. With -verify it also runs the
// whole property suite (the mechanical substitute for the paper's Nuprl
// proofs), and with -render it prints each specification's logical form.
package main

import (
	"flag"
	"fmt"
	"os"

	"shadowdb/internal/bench"
	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

func main() {
	os.Exit(run())
}

func run() int {
	verifyAll := flag.Bool("verify", false, "run every registered correctness property")
	render := flag.Bool("render", false, "print the logical form of each specification")
	flag.Parse()

	bench.RenderTable1(os.Stdout, bench.Table1())

	if *render {
		specs := []loe.Spec{
			loe.ClkRing(3),
			twothird.Spec(twothird.Config{Nodes: []msg.Loc{"n1", "n2", "n3"}, Learners: []msg.Loc{"l"}}),
			synod.Spec(synod.Config{Leaders: []msg.Loc{"l1"}, Acceptors: []msg.Loc{"a1", "a2", "a3"}, Learners: []msg.Loc{"lr"}}),
			broadcast.Spec(broadcast.Config{Nodes: []msg.Loc{"b1", "b2", "b3"}, Subscribers: []msg.Loc{"s"}}),
		}
		for _, s := range specs {
			fmt.Printf("\n%s:\n  %s\n", s.Name, loe.Render(s.Main))
		}
	}

	if *verifyAll {
		fmt.Println("\nrunning the property suite (bounded checking in place of Nuprl proofs)...")
		suite := bench.PropertySuite()
		for _, p := range suite.Properties() {
			if err := p.Check(); err != nil {
				fmt.Printf("  FAIL %-12s %-35s [%s]: %v\n", p.Module, p.Name, p.Mode, err)
				return 1
			}
			fmt.Printf("  ok   %-12s %-35s [%s]\n", p.Module, p.Name, p.Mode)
		}
	}
	return 0
}
