// Command shadowdb-client submits transactions to a running ShadowDB
// deployment over TCP and prints the results.
//
//	shadowdb-client -cluster "$DIR" -mode pbr -tx deposit -args 1,10 -n 100
//	shadowdb-client -cluster "$DIR" -mode smr -tx balance -args 1
//	shadowdb-client -cluster "$DIR" -mode shard -tx transfer -args 1,2,50
//	shadowdb-client -cluster "$DIR" -mode smr -read lease -tx balance -args 1
//	shadowdb-client -cluster "$DIR" -mode smr -read follower -read-target r3 -tx balance -args 1
//
// With -read the request bypasses the consensus path entirely: it is
// served locally by -read-target (default: the first replica), which
// answers only while it can prove the mode's guarantee — a valid
// leader lease for -read lease, the staleness bound for -read
// follower. The serving replicas must run with -lease. A rejected
// read (no valid lease yet, holder handover, bound exceeded) is
// retried automatically against the same target.
//
// PBR replicas answer over the client's own connection, so the client
// needs no directory entry. SMR answers come from the replicas (the
// request reaches them via the broadcast service), so in SMR mode the
// client's id=host:port must appear in the shared -cluster directory.
// Shard mode addresses the deployment's router (rt1): single-shard
// transactions are answered by the owning shard's replicas and
// cross-shard ones by the router itself, so the client needs a
// directory entry here too.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/flow"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/shard"
)

// lg carries the client's status lines: they stream to stderr through
// the structured logger, keeping stdout pure transaction results
// (pipeable into diff/awk in the smoke scripts).
var lg = obs.L("client")

func main() {
	os.Exit(run())
}

func run() int {
	cluster := flag.String("cluster", "", "comma-separated id=host:port directory (must include this client)")
	id := flag.String("id", "cli", "this client's location id")
	addr := flag.String("listen", "127.0.0.1:0", "listen address for answers")
	mode := flag.String("mode", "pbr", "pbr|smr|shard (shard talks to the deployment's router, rt1)")
	tx := flag.String("tx", "deposit", "transaction type")
	argsFlag := flag.String("args", "", "comma-separated transaction arguments (ints, floats, strings)")
	n := flag.Int("n", 1, "how many times to run the transaction")
	read := flag.String("read", "", "serve -tx as a local read in this mode: lease|follower (replicas must run with -lease; -tx then names a read procedure, e.g. balance)")
	readTarget := flag.String("read-target", "", "replica that serves -read requests (default: first replica in the directory)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-transaction timeout")
	deadline := flag.Duration("deadline", 0, "per-request deadline stamped on every submission (DESIGN.md §14): hops refuse the request once it passes, and the client surfaces a terminal timeout instead of retrying forever (0 = none)")
	retryBudget := flag.Float64("retry-budget", 0, "retry tokens per second: resends beyond the budget surface a terminal overload error instead of amplifying a retry storm (0 = unbounded)")
	logLevel := flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	obs.Default.SetLogLevel(lv)
	obs.Default.SetLogStream(os.Stderr)
	obs.Default.SetNode(msg.Loc(*id))

	dir, err := parseDirectory(*cluster)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dir[msg.Loc(*id)] = *addr

	core.RegisterWireTypes()
	broadcast.RegisterWireTypes()
	tr, err := network.NewTCP(msg.Loc(*id), dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() { _ = tr.Close() }()

	replicas, bcast := splitRoles(dir)
	cli := &core.Client{
		Slf: msg.Loc(*id), Replicas: replicas, BcastNodes: bcast, Retry: 2 * time.Second,
	}
	if *deadline > 0 || *retryBudget > 0 {
		// Deadlines are absolute nanoseconds on the deployment clock:
		// live processes use wall UnixNano, so the value the client
		// stamps is comparable at every hop that enforces it.
		cli.Now = func() time.Duration { return time.Duration(time.Now().UnixNano()) }
		cli.Deadline = *deadline
		if *retryBudget > 0 {
			cli.Budget = &flow.RetryBudget{Rate: *retryBudget}
		}
	}
	switch *mode {
	case "smr":
		cli.Mode = core.ModeSMR
	case "shard":
		// The router speaks the replica protocol from the client's view:
		// requests go to rt1, results come back as usual.
		cli.Mode = core.ModePBR
		cli.Replicas = []msg.Loc{shard.RouterLoc}
	default:
		cli.Mode = core.ModePBR
	}
	args := parseArgs(*argsFlag)

	var readMode core.ReadMode
	switch *read {
	case "":
	case "lease":
		readMode = core.ReadLease
	case "follower":
		readMode = core.ReadFollower
	default:
		fmt.Fprintf(os.Stderr, "unknown -read mode %q (lease|follower)\n", *read)
		return 2
	}
	target := msg.Loc(*readTarget)
	if readMode != 0 && target == "" {
		if len(replicas) == 0 {
			fmt.Fprintln(os.Stderr, "-read needs a replica in the -cluster directory")
			return 2
		}
		target = replicas[0]
	}

	start := time.Now()
	for i := 0; i < *n; i++ {
		if readMode != 0 {
			res, err := runOneRead(tr, cli, *tx, args, readMode, target, *timeout)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			printReadResult(res)
			core.ReleaseReadResult(res)
			continue
		}
		res, err := runOne(tr, cli, *tx, args, *timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		printResult(res)
	}
	elapsed := time.Since(start)
	if readMode != 0 {
		lg.Infof("%d local reads in %v (%.0f reads/s, %d rejections)",
			*n, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds(), cli.ReadsRejected)
	} else {
		lg.Infof("%d transactions in %v (%.0f tx/s, %d retries)",
			*n, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds(), cli.Retries)
	}
	return 0
}

// runOne submits one transaction and waits for its answer, feeding the
// client's state machine from the transport.
func runOne(tr network.Transport, cli *core.Client, tx string, args []any, timeout time.Duration) (core.TxResult, error) {
	emit := func(outs []msg.Directive) {
		for _, o := range outs {
			o := o
			if o.Delay > 0 {
				time.AfterFunc(o.Delay, func() {
					_ = tr.Send(msg.Envelope{From: cli.Slf, To: o.Dest, M: o.M, Deadline: msg.DeadlineOf(o.M)})
				})
				continue
			}
			_ = tr.Send(msg.Envelope{From: cli.Slf, To: o.Dest, M: o.M, Deadline: msg.DeadlineOf(o.M)})
		}
	}
	emit(cli.Submit(tx, args))
	deadline := time.After(timeout)
	for {
		select {
		case env, ok := <-tr.Receive():
			if !ok {
				return core.TxResult{}, fmt.Errorf("transport closed")
			}
			res, outs := cli.Handle(env.M)
			emit(outs)
			if res != nil {
				return *res, nil
			}
		case <-deadline:
			return core.TxResult{}, fmt.Errorf("transaction %s timed out after %v", tx, timeout)
		}
	}
}

// runOneRead submits one local read and waits for a served (not
// rejected) answer; rejections are retried inside the client on its
// retry-timer schedule until the timeout.
func runOneRead(tr network.Transport, cli *core.Client, typ string, args []any, mode core.ReadMode, target msg.Loc, timeout time.Duration) (*core.ReadResult, error) {
	emit := func(outs []msg.Directive) {
		for _, o := range outs {
			o := o
			if o.Delay > 0 {
				time.AfterFunc(o.Delay, func() {
					_ = tr.Send(msg.Envelope{From: cli.Slf, To: o.Dest, M: o.M, Deadline: msg.DeadlineOf(o.M)})
				})
				continue
			}
			_ = tr.Send(msg.Envelope{From: cli.Slf, To: o.Dest, M: o.M, Deadline: msg.DeadlineOf(o.M)})
		}
	}
	emit(cli.SubmitRead(typ, args, mode, target))
	deadline := time.After(timeout)
	for {
		select {
		case env, ok := <-tr.Receive():
			if !ok {
				return nil, fmt.Errorf("transport closed")
			}
			_, outs := cli.Handle(env.M)
			emit(outs)
			if res := cli.TakeRead(); res != nil {
				if res.Err != "" {
					err := fmt.Errorf("read %s: %s", typ, res.Err)
					core.ReleaseReadResult(res)
					return nil, err
				}
				return res, nil
			}
		case <-deadline:
			return nil, fmt.Errorf("read %s timed out after %v (%d rejections)", typ, timeout, cli.ReadsRejected)
		}
	}
}

func printReadResult(res *core.ReadResult) {
	if len(res.Cols) > 0 {
		fmt.Println(strings.Join(res.Cols, "\t"))
	}
	cells := make([]string, len(res.Vals))
	for i, v := range res.Vals {
		cells[i] = fmt.Sprint(v)
	}
	fmt.Println(strings.Join(cells, "\t"))
}

func printResult(res core.TxResult) {
	switch {
	case res.Err != "":
		fmt.Printf("error: %s\n", res.Err)
	case res.Aborted:
		fmt.Println("aborted")
	case len(res.Rows) > 0:
		fmt.Println(strings.Join(res.Cols, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = fmt.Sprint(v)
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
	default:
		fmt.Println("ok")
	}
}

// parseArgs converts "1,2.5,abc" to typed values.
func parseArgs(s string) []any {
	if s == "" {
		return nil
	}
	var out []any
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if v, err := strconv.ParseInt(part, 10, 64); err == nil {
			out = append(out, v)
			continue
		}
		if v, err := strconv.ParseFloat(part, 64); err == nil {
			out = append(out, v)
			continue
		}
		out = append(out, part)
	}
	return out
}

// parseDirectory parses "id=addr,...".
func parseDirectory(s string) (map[msg.Loc]string, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -cluster directory")
	}
	dir := make(map[msg.Loc]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad -cluster entry %q", part)
		}
		dir[msg.Loc(kv[0])] = kv[1]
	}
	return dir, nil
}

func splitRoles(dir map[msg.Loc]string) (replicas, bcast []msg.Loc) {
	for l := range dir {
		switch {
		case strings.HasPrefix(string(l), "b"):
			bcast = append(bcast, l)
		case strings.HasPrefix(string(l), "r"):
			replicas = append(replicas, l)
		}
	}
	sortLocs(replicas)
	sortLocs(bcast)
	return replicas, bcast
}

func sortLocs(ls []msg.Loc) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
