// Command broadcast runs one node of the standalone total-order-broadcast
// service over TCP — the service of the paper's Section III, deployable
// on its own (clients Bcast, subscribers receive ordered Delivers) with
// the observability endpoint for metrics, causal traces, and pprof.
//
// Example three-node service ordering for two subscribers:
//
//	DIR="b1=host1:7101,b2=host2:7101,b3=host3:7101,s1=host4:7201,s2=host5:7201"
//	broadcast -id b1 -cluster "$DIR" -admin 127.0.0.1:7171
//	broadcast -id b2 -cluster "$DIR" -admin 127.0.0.1:7172
//	broadcast -id b3 -cluster "$DIR" -admin 127.0.0.1:7173
//
// Service nodes are the ids named by -nodes (default: every id starting
// with "b"); every other id is a subscriber. Use -module to pick the
// ordering protocol per the paper's plug-in design.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/fault"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/runtime"
	"shadowdb/internal/store"
)

// lg is the process logger; records land in the obs log ring (served
// on /logs, dumped into postmortem bundles) and stream to stderr.
var lg = obs.L("broadcast-node")

func main() {
	os.Exit(run())
}

func run() int {
	id := flag.String("id", "", "this node's location id (must appear in -cluster)")
	cluster := flag.String("cluster", "", "comma-separated id=host:port directory")
	nodes := flag.String("nodes", "", "comma-separated service node ids (default: ids starting with 'b')")
	module := flag.String("module", "paxos", "ordering module: paxos|twothird")
	batch := flag.Int("batch", 0, "max messages per ordered batch (0 = module default)")
	batchDelay := flag.Duration("batch-delay", 0, "max time a message may wait for its batch to fill (0 = cut eagerly)")
	pipeline := flag.Int("pipeline", 0, "max concurrent consensus instances (0 or 1 = stop-and-wait)")
	dataDir := flag.String("data-dir", "", "durable storage directory: journal sequencer decisions and acceptor promises, recover them on restart (empty = volatile)")
	fsync := flag.String("fsync", "batch", "WAL sync policy with -data-dir: always|batch|never")
	admin := flag.String("admin", "", "admin HTTP address (metrics, trace, pprof)")
	trace := flag.Bool("trace", false, "start with causal trace recording enabled")
	check := flag.Bool("check", false, "run the online invariant checker; serves /checker and /spans on -admin")
	faultPlan := flag.String("fault-plan", "", "JSON fault plan: inject its message faults, partitions, and crash (blackhole) windows on this node's transport")
	logLevel := flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	flightDir := flag.String("flight-dir", "", "postmortem bundle directory (default <data-dir>/flight when -data-dir is set; empty without it disables the recorder)")
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	obs.Default.SetLogLevel(lv)
	obs.Default.SetLogStream(os.Stderr)

	dir, err := parseDirectory(*cluster)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	slf := msg.Loc(*id)
	if *id == "" {
		fmt.Fprintln(os.Stderr, "missing -id")
		return 2
	}
	if _, ok := dir[slf]; !ok {
		fmt.Fprintf(os.Stderr, "id %q not in -cluster directory\n", *id)
		return 2
	}
	obs.Default.SetNode(slf)
	bnodes, subs := splitNodes(dir, *nodes)
	if len(bnodes) == 0 {
		fmt.Fprintln(os.Stderr, "no service nodes (see -nodes)")
		return 2
	}
	cfg := broadcast.Config{
		Nodes: bnodes, Subscribers: subs,
		MaxBatch: *batch, MaxDelay: *batchDelay, Pipeline: *pipeline,
	}
	var stable func(prefix string) func(msg.Loc) store.Stable
	if *dataDir != "" {
		pol, err := store.ParsePolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		prov, err := store.NewDir(*dataDir, pol)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		stable = func(prefix string) func(msg.Loc) store.Stable {
			return func(l msg.Loc) store.Stable {
				st, err := prov.Open(prefix + "-" + string(l))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				return st
			}
		}
		cfg.Stable = stable("seq")
	}
	switch *module {
	case "paxos":
		if stable != nil {
			cfg.Modules = []broadcast.Module{broadcast.PaxosDurable(*pipeline, stable("acc"))}
		} else {
			cfg.Modules = []broadcast.Module{broadcast.PaxosPipelined(*pipeline)}
		}
	case "twothird":
		if *dataDir != "" {
			fmt.Fprintln(os.Stderr, "-data-dir covers the sequencer journal only with -module twothird (acceptor durability is paxos-only)")
		}
		cfg.Modules = []broadcast.Module{broadcast.TwoThird()}
	default:
		fmt.Fprintf(os.Stderr, "unknown module %q\n", *module)
		return 2
	}

	// The consensus types ride along for the flight recorder: bundle
	// dumps gob-encode the trace ring, which carries their bodies.
	broadcast.RegisterWireTypes()
	synod.RegisterWireTypes()
	twothird.RegisterWireTypes()

	var tr network.Transport
	tcp, err := network.NewTCP(slf, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	tr = tcp
	if *faultPlan != "" {
		plan, err := fault.Load(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Faults ride the node's wall clock from process start; crash
		// windows blackhole the node's traffic.
		inj := fault.NewInjector(plan, nil)
		inj.SetObs(obs.Default)
		tr = fault.Wrap(tcp, slf, inj)
		stop := fault.StartNemesis(inj)
		defer stop()
		lg.Infof("fault plan %s armed: %d rules, %d partitions, %d crashes (seed %d)",
			*faultPlan, len(plan.Rules), len(plan.Partitions), len(plan.Crashes), plan.Seed)
	}
	defer func() { _ = tr.Close() }()

	host := runtime.NewHost(slf, tr, broadcast.Spec(cfg).Generator()(slf))
	host.Start()
	defer func() { _ = host.Close() }()
	lg.Infof("broadcast %s listening on %s; nodes=%v subscribers=%v module=%s batch=%d delay=%s pipeline=%d",
		slf, tcp.Addr(), bnodes, subs, *module, *batch, *batchDelay, *pipeline)

	if *trace {
		obs.Default.EnableTracing(true)
	}
	var checker *dist.Checker
	if *check {
		checker = dist.NewChecker()
		checker.Watch(obs.Default)
	}

	// The flight recorder dumps a postmortem bundle on checker violation,
	// panic, SIGQUIT, or POST /flight/dump. It defaults on whenever the
	// node has a data dir to keep evidence in.
	fdir := *flightDir
	if fdir == "" && *dataDir != "" {
		fdir = filepath.Join(*dataDir, "flight")
	}
	var rec *obs.Recorder
	if fdir != "" {
		if rec, err = obs.NewRecorder(obs.Default, fdir, slf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rec.SetConfig(map[string]string{"module": *module, "cluster": *cluster})
		if checker != nil {
			rec.SetCheckerStatus(func() any { return checker.Status() })
			checker.OnViolation(func(v dist.Violation) {
				if path, err := rec.TryDump("violation-" + v.Property); err == nil && path != "" {
					lg.Errorf("checker violation %s: postmortem bundle at %s", v.Property, path)
				}
			})
		}
		defer rec.NotifySignals()()
		defer func() {
			if r := recover(); r != nil {
				rec.OnPanic()
				panic(r)
			}
		}()
		lg.Infof("flight recorder armed: bundles under %s", fdir)
	}

	if *admin != "" {
		var srv *http.Server
		var addr string
		if checker != nil {
			srv, addr, err = dist.ServeWith(*admin, obs.Default, checker, rec)
		} else {
			srv, addr, err = obs.ServeWith(*admin, obs.Default, rec)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() { _ = srv.Close() }()
		extra := ""
		if checker != nil {
			extra = " /checker /spans"
		}
		lg.Infof("admin endpoint on http://%s (GET /metrics /logs /trace /trace.json%s, POST /trace/start /trace/stop /flight/dump, /debug/pprof/)", addr, extra)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	lg.Infof("shutting down")
	return 0
}

// parseDirectory parses "id=addr,id=addr,...".
func parseDirectory(s string) (map[msg.Loc]string, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -cluster directory")
	}
	dir := make(map[msg.Loc]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad -cluster entry %q (want id=host:port)", part)
		}
		dir[msg.Loc(kv[0])] = kv[1]
	}
	return dir, nil
}

// splitNodes partitions the directory into service nodes and subscribers.
// An explicit -nodes list wins; otherwise ids starting with "b" serve.
func splitNodes(dir map[msg.Loc]string, explicit string) (bnodes, subs []msg.Loc) {
	serving := make(map[msg.Loc]bool)
	if explicit != "" {
		for _, n := range strings.Split(explicit, ",") {
			serving[msg.Loc(strings.TrimSpace(n))] = true
		}
	} else {
		for l := range dir {
			if strings.HasPrefix(string(l), "b") {
				serving[l] = true
			}
		}
	}
	for l := range dir {
		if serving[l] {
			bnodes = append(bnodes, l)
		} else {
			subs = append(subs, l)
		}
	}
	sort.Slice(bnodes, func(i, j int) bool { return bnodes[i] < bnodes[j] })
	sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
	return bnodes, subs
}
