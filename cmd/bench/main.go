// Command bench regenerates the tables and figures of the paper's
// evaluation (Section IV). Each experiment prints the rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	bench -experiment fig8|fig9a|fig9b|fig10a|fig10b|table1|batch|spans|chaos|recovery|membership|shard|readpath|postmortem|overload|all [-quick] [-json [-outdir DIR]] [-flight-dir DIR]
//
// With -json each experiment also writes a machine-readable
// BENCH_<name>.json (metric name/value/unit, git SHA, timestamp) for CI
// and regression diffing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"shadowdb/internal/bench"
	"shadowdb/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	experiment := flag.String("experiment", "all", "fig8|fig9a|fig9b|fig10a|fig10b|table1|batch|spans|chaos|recovery|membership|shard|readpath|postmortem|overload|all")
	quick := flag.Bool("quick", false, "reduced scales for a fast pass")
	flightDir := flag.String("flight-dir", "", "directory for flight-recorder postmortem bundles (chaos/recovery/membership/shard dump here on violation; postmortem writes here)")
	admin := flag.String("admin", "", "admin HTTP address (metrics, pprof) while experiments run")
	jsonOut := flag.Bool("json", false, "write BENCH_<name>.json per experiment")
	outdir := flag.String("outdir", ".", "directory for -json reports")
	flag.Parse()

	if *admin != "" {
		srv, addr, err := obs.Serve(*admin, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s\n", addr)
	}

	todo := map[string]bool{}
	switch *experiment {
	case "all":
		for _, e := range []string{"table1", "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "ablations", "batch", "spans", "chaos", "recovery", "membership", "shard", "readpath", "postmortem", "overload"} {
			todo[e] = true
		}
	case "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "table1", "ablations", "batch", "spans", "chaos", "recovery", "membership", "shard", "readpath", "postmortem", "overload":
		todo[*experiment] = true
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		return 2
	}

	failed := false
	emit := func(r *bench.Report) {
		if !*jsonOut {
			return
		}
		path, err := bench.WriteReport(*outdir, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			return
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	start := time.Now()
	out := os.Stdout
	if todo["table1"] {
		rows := bench.Table1()
		bench.RenderTable1(out, rows)
		fmt.Fprintln(out)
		emit(bench.ReportTable1(rows, *quick))
	}
	if todo["fig8"] {
		cfg := bench.DefaultFig8()
		if *quick {
			cfg = bench.QuickFig8()
		}
		res := bench.Fig8(cfg)
		bench.RenderFig8(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportFig8(res, *quick))
	}
	if todo["fig9a"] {
		cfg := bench.DefaultFig9a()
		if *quick {
			cfg = bench.QuickFig9a()
		}
		res := bench.Fig9a(cfg)
		bench.RenderFig9(out, "Fig. 9(a) — micro-benchmark: latency vs committed transactions/sec", res)
		fmt.Fprintln(out)
		emit(bench.ReportFig9("fig9a", res, *quick))
	}
	if todo["fig9b"] {
		cfg := bench.DefaultFig9b()
		if *quick {
			cfg = bench.QuickFig9b()
		}
		res := bench.Fig9b(cfg)
		bench.RenderFig9(out, "Fig. 9(b) — TPC-C: latency vs committed transactions/sec", res)
		fmt.Fprintln(out)
		emit(bench.ReportFig9("fig9b", res, *quick))
	}
	if todo["fig10a"] {
		cfg := bench.DefaultFig10a()
		if *quick {
			cfg = bench.QuickFig10a()
		}
		res := bench.Fig10a(cfg)
		bench.RenderFig10a(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportFig10a(res, *quick))
	}
	if todo["fig10b"] {
		cfg := bench.DefaultFig10b()
		if *quick {
			cfg = bench.QuickFig10b()
		}
		res := bench.Fig10b(cfg)
		bench.RenderFig10b(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportFig10b(res, *quick))
	}
	if todo["ablations"] {
		rows := []bench.AblationResult{
			bench.AblationBatching(16, 300, 5_000),
			bench.AblationOverlap(50_000),
		}
		bench.RenderAblations(out, rows)
		fmt.Fprintln(out)
		emit(bench.ReportAblations(rows, *quick))
	}
	if todo["batch"] {
		cfg := bench.DefaultBatch()
		if *quick {
			cfg = bench.QuickBatch()
		}
		res := bench.Batch(cfg)
		bench.RenderBatch(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportBatch(res, *quick))
		if len(res.Violations) > 0 {
			fmt.Fprintf(os.Stderr, "batch: %d property violations\n", len(res.Violations))
			failed = true
		}
	}
	if todo["spans"] {
		cfg := bench.DefaultSpans()
		if *quick {
			cfg = bench.QuickSpans()
		}
		res := bench.Spans(cfg)
		bench.RenderSpans(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportSpans(res, *quick))
		if len(res.Violations) > 0 {
			fmt.Fprintf(os.Stderr, "spans: %d property violations\n", len(res.Violations))
			failed = true
		}
	}
	if todo["chaos"] {
		cfg := bench.DefaultChaos()
		if *quick {
			cfg = bench.QuickChaos()
		}
		cfg.FlightDir = *flightDir
		res := bench.Chaos(cfg)
		bench.RenderChaos(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportChaos(res, *quick))
		if !res.Certified() {
			fmt.Fprintf(os.Stderr,
				"chaos: certification failed: %d violations, reproducible=%v, primaries=%d, progress=%v\n",
				len(res.Violations), res.Reproducible, res.Primaries, res.ProgressAfterFaults)
			failed = true
		}
	}
	if todo["recovery"] {
		cfg := bench.DefaultRecovery()
		if *quick {
			cfg = bench.QuickRecovery()
		}
		cfg.FlightDir = *flightDir
		res := bench.Recovery(cfg)
		bench.RenderRecovery(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportRecovery(res, *quick))
		if !res.Certified() {
			fmt.Fprintf(os.Stderr,
				"recovery: certification failed: %d violations, recovered=%v, caught_up=%v, state_equal=%v, progress=%v, finished=%d/%d\n",
				len(res.Violations), res.RecoveredLocally, res.CaughtUp,
				res.StateEqual, res.ProgressAfterRestart, res.Finished, res.Clients)
			failed = true
		}
	}
	if todo["membership"] {
		cfg := bench.DefaultMembership()
		if *quick {
			cfg = bench.QuickMembership()
		}
		cfg.FlightDir = *flightDir
		res := bench.Membership(cfg)
		bench.RenderMembership(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportMembership(res, *quick))
		if !res.Certified() {
			fmt.Fprintf(os.Stderr,
				"membership: certification failed: %d violations, epochs=%d, grew=%d, shrank=%d, joiners=%v, restarts=%d/%d recovered=%v, caught_up=%v, state_equal=%v, progress=%v/%v, finished=%d/%d, repro=%v\n",
				len(res.Violations), res.Epochs, res.GrewTo, res.ShrankTo,
				res.JoinersActive, res.Kills, res.Restarts, res.RecoveredLocally,
				res.CaughtUp, res.StateEqual,
				res.ProgressAfterChanges, res.ProgressAfterRestart,
				res.Finished, res.Clients, !res.ReproChecked || res.FingerprintStable)
			failed = true
		}
	}
	if todo["shard"] {
		cfg := bench.DefaultShard()
		if *quick {
			cfg = bench.QuickShard()
		}
		cfg.FlightDir = *flightDir
		res := bench.Shard(cfg)
		bench.RenderShard(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportShard(res, *quick))
		if !res.Certified() {
			fmt.Fprintf(os.Stderr,
				"shard: certification failed: speedup=%.2f, mixed(viol=%d open=%d inflight=%d balanced=%v eq=%v), chaos(viol=%d open=%d inflight=%d balanced=%v progress=%v finished=%d/%d)\n",
				res.Speedup4, len(res.MixedViolations), res.MixedOpen, res.MixedInFlight,
				res.MixedBalanced, res.MixedReplicasEq,
				len(res.ChaosViolations), res.ChaosOpen, res.ChaosInFlight,
				res.ChaosBalanced, res.ChaosProgress, res.ChaosFinished, res.ChaosClients)
			failed = true
		}
	}
	if todo["readpath"] {
		cfg := bench.DefaultReadPath()
		if *quick {
			cfg = bench.QuickReadPath()
		}
		cfg.FlightDir = *flightDir
		res := bench.ReadPath(cfg)
		bench.RenderReadPath(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportReadPath(res, *quick))
		if !res.Certified() {
			fmt.Fprintf(os.Stderr,
				"readpath: certification failed: %d violations, serve_allocs=%.1f, speedup=%.2f, group_syncs=%d/%d replica appends, chaos(old_served=%d fenced=%v new_served=%d reacquired=%v finished=%d/%d)\n",
				len(res.Violations), res.ServeAllocs, res.Speedup,
				res.GroupSyncs, res.SMRAppends,
				res.Chaos.OldServed, res.Chaos.OldFenced, res.Chaos.NewServed,
				res.Chaos.Reacquired, res.Chaos.Finished, res.Chaos.Clients)
			failed = true
		}
	}
	if todo["overload"] {
		cfg := bench.DefaultOverload()
		if *quick {
			cfg = bench.QuickOverload()
		}
		cfg.FlightDir = *flightDir
		res := bench.Overload(cfg)
		bench.RenderOverload(out, res)
		fmt.Fprintln(out)
		emit(bench.ReportOverload(res, *quick))
		if !res.Certified() {
			fmt.Fprintf(os.Stderr,
				"overload: certification failed: %d violations, goodput_ratio=%.2f (floor %.2f), watchdog=%v, open_flows=%d\n",
				len(res.Violations), res.GoodputRatio, res.FloorWant, res.WatchdogFired, res.OpenFlows)
			failed = true
		}
	}
	if todo["postmortem"] {
		cfg := bench.DefaultPostmortem()
		if *quick {
			cfg = bench.QuickPostmortem()
		}
		// Scoped under its own subdirectory: with -experiment all the
		// other experiments' evidence shares the same root, and the
		// postmortem analysis must only see its own bundles.
		if *flightDir != "" {
			cfg.Dir = filepath.Join(*flightDir, "postmortem")
		}
		res, err := bench.Postmortem(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "postmortem: %v\n", err)
			failed = true
		} else {
			bench.RenderPostmortem(out, res)
			fmt.Fprintln(out)
			emit(bench.ReportPostmortem(res, *quick))
			if !res.Certified() {
				fmt.Fprintf(os.Stderr,
					"postmortem: certification failed: %d violations, bundles=%d/%d, ordered=%v, forged=%v, replay=%v\n",
					len(res.Violations), len(res.Bundles), res.Nodes,
					res.TimelineOrdered, res.ForgedInTimeline, res.ReplayDetected)
				failed = true
			}
		}
	}
	fmt.Fprintf(out, "total bench time: %v\n", time.Since(start).Round(time.Millisecond))
	if failed {
		return 1
	}
	return 0
}
