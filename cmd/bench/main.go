// Command bench regenerates the tables and figures of the paper's
// evaluation (Section IV). Each experiment prints the rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	bench -experiment fig8|fig9a|fig9b|fig10a|fig10b|table1|all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"shadowdb/internal/bench"
	"shadowdb/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	experiment := flag.String("experiment", "all", "fig8|fig9a|fig9b|fig10a|fig10b|table1|all")
	quick := flag.Bool("quick", false, "reduced scales for a fast pass")
	admin := flag.String("admin", "", "admin HTTP address (metrics, pprof) while experiments run")
	flag.Parse()

	if *admin != "" {
		srv, addr, err := obs.Serve(*admin, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s\n", addr)
	}

	todo := map[string]bool{}
	switch *experiment {
	case "all":
		for _, e := range []string{"table1", "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "ablations"} {
			todo[e] = true
		}
	case "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "table1", "ablations":
		todo[*experiment] = true
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		return 2
	}

	start := time.Now()
	out := os.Stdout
	if todo["table1"] {
		bench.RenderTable1(out, bench.Table1())
		fmt.Fprintln(out)
	}
	if todo["fig8"] {
		cfg := bench.DefaultFig8()
		if *quick {
			cfg = bench.QuickFig8()
		}
		bench.RenderFig8(out, bench.Fig8(cfg))
		fmt.Fprintln(out)
	}
	if todo["fig9a"] {
		cfg := bench.DefaultFig9a()
		if *quick {
			cfg = bench.QuickFig9a()
		}
		bench.RenderFig9(out, "Fig. 9(a) — micro-benchmark: latency vs committed transactions/sec", bench.Fig9a(cfg))
		fmt.Fprintln(out)
	}
	if todo["fig9b"] {
		cfg := bench.DefaultFig9b()
		if *quick {
			cfg = bench.QuickFig9b()
		}
		bench.RenderFig9(out, "Fig. 9(b) — TPC-C: latency vs committed transactions/sec", bench.Fig9b(cfg))
		fmt.Fprintln(out)
	}
	if todo["fig10a"] {
		cfg := bench.DefaultFig10a()
		if *quick {
			cfg = bench.QuickFig10a()
		}
		bench.RenderFig10a(out, bench.Fig10a(cfg))
		fmt.Fprintln(out)
	}
	if todo["fig10b"] {
		cfg := bench.DefaultFig10b()
		if *quick {
			cfg = bench.QuickFig10b()
		}
		bench.RenderFig10b(out, bench.Fig10b(cfg))
		fmt.Fprintln(out)
	}
	if todo["ablations"] {
		rows := []bench.AblationResult{
			bench.AblationBatching(16, 300, 5_000),
			bench.AblationOverlap(50_000),
		}
		bench.RenderAblations(out, rows)
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "total bench time: %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}
