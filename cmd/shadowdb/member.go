// Membership administration: the join/leave/status verbs and the
// /member/* admin endpoints they talk to. A change is never applied
// locally — the endpoint wraps it as a broadcast payload and submits it
// to the sequencer, so it lands in the total order and every node
// derives the same epoch from the same slot.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/runtime"
)

// proposeBody is the wire form of a membership proposal.
type proposeBody struct {
	Op   string `json:"op"`
	Node string `json:"node"`
	Addr string `json:"addr,omitempty"`
}

// statusBody is the wire form of the epoch schedule.
type statusBody struct {
	Alpha   int             `json:"alpha"`
	Current string          `json:"current"`
	Epochs  []member.Config `json:"epochs"`
}

// adminSeq numbers this process's proposals; combined with the
// process-unique From location it keys sequencer dedup.
var adminSeq atomic.Int64

// proposeHandler accepts POST {op, node, addr} and submits the command
// to the broadcast sequencer of the newest epoch.
func proposeHandler(host *runtime.Host, view *member.View) http.Handler {
	adminSeq.Store(time.Now().UnixNano())
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var b proposeBody
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&b); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cmd := member.Command{Op: member.Op(b.Op), Node: msg.Loc(b.Node), Addr: b.Addr}
		// Round-trip through the codec up front: a malformed command must
		// be the caller's error, not a payload the cluster silently drops.
		if _, ok := member.DecodeCommand(member.EncodeCommand(cmd)); !ok {
			http.Error(w, fmt.Sprintf("bad command op=%q node=%q", b.Op, b.Node), http.StatusBadRequest)
			return
		}
		seq := view.Current().Bcast[0]
		host.Emit([]msg.Directive{msg.Send(seq, msg.M(broadcast.HdrBcast, broadcast.Bcast{
			From:    "admin:" + host.Self(),
			Seq:     adminSeq.Add(1),
			Payload: member.EncodeCommand(cmd),
		}))})
		lg.Infof("membership proposal submitted to %s: %s %s", seq, cmd.Op, cmd.Node)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "proposed %s %s via %s\n", cmd.Op, cmd.Node, seq)
	})
}

// statusHandler reports the derived epoch schedule.
func statusHandler(view *member.View) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := view.Current()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(statusBody{
			Alpha:   view.Alpha(),
			Current: cur.Fingerprint(),
			Epochs:  view.Epochs(),
		})
	})
}

// restampTopology folds an applied membership command into the local
// topology file, stamping it with the new epoch. Best-effort: the file
// is operator bookkeeping (the order is the authority), so a write
// failure is logged, not fatal.
func restampTopology(path string, cmd member.Command, cfg member.Config) {
	t, err := member.LoadTopology(path)
	if err != nil {
		lg.Warnf("topology re-stamp: %v", err)
		return
	}
	switch cmd.Op {
	case member.AddReplica, member.AddAcceptor:
		if cmd.Addr != "" {
			t.Nodes[string(cmd.Node)] = cmd.Addr
		}
	case member.RemoveReplica, member.RemoveAcceptor:
		// The address stays: a removed node may still be dialed to drain,
		// and a later re-add reuses it. Only epochs the node is absent
		// from stop routing to it.
	}
	if cfg.Epoch <= t.Epoch {
		return // already stamped by a co-located component or the verb
	}
	t.Epoch = cfg.Epoch
	if err := t.Save(path); err != nil {
		lg.Warnf("topology re-stamp: %v", err)
		return
	}
	lg.Infof("topology %s re-stamped at epoch %d", path, t.Epoch)
}

// opFor maps a node id to its add/remove operation by the same prefix
// convention splitRoles uses: b* are broadcast acceptors, r* replicas.
func opFor(node string, joining bool) (member.Op, error) {
	switch {
	case strings.HasPrefix(node, "b"):
		if joining {
			return member.AddAcceptor, nil
		}
		return member.RemoveAcceptor, nil
	case strings.HasPrefix(node, "r"):
		if joining {
			return member.AddReplica, nil
		}
		return member.RemoveReplica, nil
	}
	return "", fmt.Errorf("node %q matches neither the b* nor the r* naming", node)
}

// runChangeVerb implements `shadowdb join|leave`: propose the change
// through a running node's admin endpoint, then re-stamp the local
// topology file so the next node started from it sees the new member
// list.
func runChangeVerb(verb string, args []string) int {
	fs := flag.NewFlagSet(verb, flag.ExitOnError)
	node := fs.String("node", "", "node id to add/remove (b* = acceptor, r* = replica)")
	addr := fs.String("addr", "", "joining node's host:port (join only)")
	adminURL := fs.String("admin-url", "", "admin endpoint of any running member, e.g. http://host1:7070")
	topology := fs.String("topology", "", "topology file to re-stamp with the proposed change (optional)")
	_ = fs.Parse(args)
	if *node == "" || *adminURL == "" {
		fmt.Fprintf(os.Stderr, "%s: -node and -admin-url are required\n", verb)
		return 2
	}
	joining := verb == "join"
	if joining && *addr == "" {
		fmt.Fprintln(os.Stderr, "join: -addr is required (peers learn the route from the ordered command)")
		return 2
	}
	op, err := opFor(*node, joining)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	body, _ := json.Marshal(proposeBody{Op: string(op), Node: *node, Addr: *addr})
	resp, err := http.Post(strings.TrimRight(*adminURL, "/")+"/member/propose", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() { _ = resp.Body.Close() }()
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusAccepted {
		fmt.Fprintf(os.Stderr, "%s: %s: %s", verb, resp.Status, out)
		return 1
	}
	fmt.Print(string(out))
	if *topology != "" {
		t, err := member.LoadTopology(*topology)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if joining {
			t.Nodes[*node] = *addr
		}
		t.Epoch++
		if err := t.Save(*topology); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("topology %s stamped at epoch %d\n", *topology, t.Epoch)
	}
	return 0
}

// runStatusVerb implements `shadowdb status`: print the epoch schedule
// a running node has derived.
func runStatusVerb(args []string) int {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	adminURL := fs.String("admin-url", "", "admin endpoint of any running member, e.g. http://host1:7070")
	_ = fs.Parse(args)
	if *adminURL == "" {
		fmt.Fprintln(os.Stderr, "status: -admin-url is required")
		return 2
	}
	resp, err := http.Get(strings.TrimRight(*adminURL, "/") + "/member/status")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		fmt.Fprintf(os.Stderr, "status: %s: %s", resp.Status, out)
		return 1
	}
	var st statusBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("current: %s (alpha %d)\n", st.Current, st.Alpha)
	for _, e := range st.Epochs {
		fmt.Printf("  epoch %d: bcast %v, replicas %v (quorums from instance %d, fan-out from slot %d)\n",
			e.Epoch, e.Bcast, e.Replicas, e.ActivateAt, e.ReplicasFrom)
	}
	return 0
}
