// Command shadowdb runs one node of a ShadowDB deployment over TCP: a
// PBR/SMR database replica, a total-order-broadcast service node, a
// sharded-deployment member, or the shard router.
//
// Example three-machine PBR deployment plus broadcast service (each
// command on its own machine or terminal):
//
//	shadowdb -id b1 -role broadcast -cluster "$DIR"
//	shadowdb -id b2 -role broadcast -cluster "$DIR"
//	shadowdb -id b3 -role broadcast -cluster "$DIR"
//	shadowdb -id r1 -role pbr -engine h2     -rows 50000 -cluster "$DIR"
//	shadowdb -id r2 -role pbr -engine hsqldb -rows 50000 -cluster "$DIR"
//	shadowdb -id r3 -role pbr -engine derby  -spare -cluster "$DIR"
//
// where DIR is a directory string like
// "r1=host1:7001,r2=host2:7001,r3=host3:7001,b1=host1:7101,b2=host2:7101,b3=host3:7101".
// Use -registry tpcc for the TPC-C procedures instead of the bank ones.
//
// Sharded deployment (bank registry): members follow the s<k>b<i> /
// s<k>r<i> naming, the router is rt1, and every member runs -role shard
// except the router:
//
//	shadowdb -id s0b1 -role shard  -cluster "$DIR" -data-dir /var/shadowdb
//	shadowdb -id s0r1 -role shard  -cluster "$DIR"
//	shadowdb -id s1b1 -role shard  -cluster "$DIR" -data-dir /var/shadowdb
//	shadowdb -id s1r1 -role shard  -cluster "$DIR"
//	shadowdb -id rt1  -role router -cluster "$DIR" -data-dir /var/shadowdb
//
// The member list is validated up front (contiguous shard indices, equal
// per-shard counts, exactly one router) and a malformed directory is a
// startup error, not a late panic. With -data-dir, each process keeps
// its durable state in a per-role subtree of the shared path layout:
// shard k's broadcast state under <data-dir>/shard<k>/ and the router's
// 2PC journal under <data-dir>/router/ — so one host can carry several
// members without their WALs colliding.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"shadowdb/internal/bench/tpcc"
	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/core"
	"shadowdb/internal/fault"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/runtime"
	"shadowdb/internal/shard"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// lg is the process logger; records land in the obs log ring (served
// on /logs, dumped into postmortem bundles) and stream to stderr.
var lg = obs.L("shadowdb")

func main() {
	os.Exit(run())
}

func run() int {
	id := flag.String("id", "", "this node's location id (must appear in -cluster)")
	role := flag.String("role", "pbr", "pbr|smr|broadcast|shard|router (shard/router use the s<k>b<i>/s<k>r<i>/rt1 naming)")
	cluster := flag.String("cluster", "", "comma-separated id=host:port directory")
	engine := flag.String("engine", "h2", "database engine: h2|hsqldb|derby|mysql-mem|mysql-innodb")
	registry := flag.String("registry", "bank", "transaction registry: bank|tpcc")
	rows := flag.Int("rows", 10_000, "initial bank rows (bank registry, non-spare)")
	spare := flag.Bool("spare", false, "start with an empty database (PBR spare)")
	members := flag.Int("members", 2, "initial PBR configuration size")
	batch := flag.Int("batch", 0, "broadcast role: max messages per ordered batch (0 = unbatched)")
	batchDelay := flag.Duration("batch-delay", 0, "broadcast role: max time a message may wait for its batch to fill (0 = cut eagerly)")
	pipeline := flag.Int("pipeline", 0, "broadcast role: max concurrent consensus instances (0 or 1 = stop-and-wait)")
	dataDir := flag.String("data-dir", "", "durable storage root: WAL + snapshots for this node's state, recovered on restart (empty = volatile); sharded roles use the per-shard layout <data-dir>/shard<k>/ and <data-dir>/router/")
	fsync := flag.String("fsync", "batch", "WAL sync policy with -data-dir: always|batch|never")
	admin := flag.String("admin", "", "admin HTTP address (metrics, trace, pprof), e.g. 127.0.0.1:7070")
	trace := flag.Bool("trace", false, "start with causal trace recording enabled")
	check := flag.Bool("check", false, "run the online invariant checker; serves /checker and /spans on -admin")
	faultPlan := flag.String("fault-plan", "", "JSON fault plan: inject its message faults, partitions, and crash (blackhole) windows on this node's transport")
	logLevel := flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	flightDir := flag.String("flight-dir", "", "postmortem bundle directory (default <data-dir>/flight when -data-dir is set; empty without it disables the recorder)")
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	obs.Default.SetLogLevel(lv)
	obs.Default.SetLogStream(os.Stderr)

	dir, err := parseDirectory(*cluster)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "missing -id")
		return 2
	}
	if _, ok := dir[msg.Loc(*id)]; !ok {
		fmt.Fprintf(os.Stderr, "id %q not in -cluster directory\n", *id)
		return 2
	}
	obs.Default.SetNode(msg.Loc(*id))

	// The consensus types ride along for the flight recorder: bundle
	// dumps gob-encode the trace ring, which carries their bodies.
	core.RegisterWireTypes()
	broadcast.RegisterWireTypes()
	shard.RegisterWireTypes()
	synod.RegisterWireTypes()
	twothird.RegisterWireTypes()

	// Sharded roles validate the whole member list before anything opens
	// a socket or a store: a malformed directory must be a startup error.
	var top *shard.Topology
	if *role == "shard" || *role == "router" {
		ids := make([]string, 0, len(dir))
		for l := range dir {
			ids = append(ids, string(l))
		}
		if top, err = shard.FromDirectory(ids); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		switch *role {
		case "router":
			if msg.Loc(*id) != shard.RouterLoc {
				fmt.Fprintf(os.Stderr, "-role router requires -id %s, got %q\n", shard.RouterLoc, *id)
				return 2
			}
		case "shard":
			if _, _, ok := shard.IsShardLoc(msg.Loc(*id)); !ok {
				fmt.Fprintf(os.Stderr, "-role shard requires an s<k>b<i> or s<k>r<i> id, got %q\n", *id)
				return 2
			}
		}
	}

	var tr network.Transport
	tcp, err := network.NewTCP(msg.Loc(*id), dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	tr = tcp
	if *faultPlan != "" {
		plan, err := fault.Load(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Faults ride the node's wall clock from process start. Crash
		// windows become blackholes: a real process cannot be crashed
		// from inside, but cutting all of its traffic is the same fault
		// to the rest of the cluster.
		inj := fault.NewInjector(plan, nil)
		inj.SetObs(obs.Default)
		tr = fault.Wrap(tcp, msg.Loc(*id), inj)
		stop := fault.StartNemesis(inj)
		defer stop()
		lg.Infof("fault plan %s armed: %d rules, %d partitions, %d crashes (seed %d)",
			*faultPlan, len(plan.Rules), len(plan.Partitions), len(plan.Crashes), plan.Seed)
	}
	defer func() { _ = tr.Close() }()

	var prov store.Provider
	if *dataDir != "" {
		pol, err := store.ParsePolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Sharded members store under the per-shard layout so several
		// members can share one -data-dir root on the same host.
		root := *dataDir
		switch *role {
		case "router":
			root = filepath.Join(root, shard.RouterSubdir)
		case "shard":
			k, _, _ := shard.IsShardLoc(msg.Loc(*id))
			root = filepath.Join(root, shard.DataSubdir(k))
		}
		if prov, err = store.NewDir(root, pol); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	replicaLocs, bcastLocs := splitRoles(dir)
	host, err := buildHost(buildConfig{
		id: msg.Loc(*id), role: *role, engine: *engine, registry: *registry,
		rows: *rows, spare: *spare, members: *members,
		batch: *batch, batchDelay: *batchDelay, pipeline: *pipeline,
		replicas: replicaLocs, bcast: bcastLocs, tr: tr, stable: prov, top: top,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	host.Start()
	defer func() { _ = host.Close() }()
	if top != nil {
		lg.Infof("shadowdb %s (%s) listening on %s; %d shards, router=%v",
			*id, *role, tcp.Addr(), top.Shards, top.Routers[0])
	} else {
		lg.Infof("shadowdb %s (%s) listening on %s; replicas=%v broadcast=%v",
			*id, *role, tcp.Addr(), replicaLocs, bcastLocs)
	}

	if *trace {
		obs.Default.EnableTracing(true)
	}
	var checker *dist.Checker
	if *check {
		checker = dist.NewChecker()
		checker.SetGroupOf(shard.GroupOf)
		checker.Watch(obs.Default)
	}

	// The flight recorder dumps a postmortem bundle on checker violation,
	// panic, SIGQUIT, or POST /flight/dump. It defaults on whenever the
	// node has a data dir to keep evidence in.
	fdir := *flightDir
	if fdir == "" && *dataDir != "" {
		fdir = filepath.Join(*dataDir, "flight")
	}
	var rec *obs.Recorder
	if fdir != "" {
		if rec, err = obs.NewRecorder(obs.Default, fdir, msg.Loc(*id)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rec.SetConfig(map[string]string{
			"role": *role, "engine": *engine, "registry": *registry,
			"cluster": *cluster,
		})
		if checker != nil {
			rec.SetCheckerStatus(func() any { return checker.Status() })
			checker.OnViolation(func(v dist.Violation) {
				if path, err := rec.TryDump("violation-" + v.Property); err == nil && path != "" {
					lg.Errorf("checker violation %s: postmortem bundle at %s", v.Property, path)
				}
			})
		}
		defer rec.NotifySignals()()
		defer func() {
			if r := recover(); r != nil {
				rec.OnPanic()
				panic(r)
			}
		}()
		lg.Infof("flight recorder armed: bundles under %s", fdir)
	}

	if *admin != "" {
		var srv *http.Server
		var addr string
		if checker != nil {
			srv, addr, err = dist.ServeWith(*admin, obs.Default, checker, rec)
		} else {
			srv, addr, err = obs.ServeWith(*admin, obs.Default, rec)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() { _ = srv.Close() }()
		extra := ""
		if checker != nil {
			extra = " /checker /spans"
		}
		lg.Infof("admin endpoint on http://%s (GET /metrics /logs /trace /trace.json%s, POST /trace/start /trace/stop /flight/dump, /debug/pprof/)", addr, extra)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	lg.Infof("shutting down")
	return 0
}

type buildConfig struct {
	id         msg.Loc
	role       string
	engine     string
	registry   string
	rows       int
	spare      bool
	members    int
	batch      int
	batchDelay time.Duration
	pipeline   int
	replicas   []msg.Loc
	bcast      []msg.Loc
	tr         network.Transport
	// stable, when set, backs this node's state with WAL + snapshots
	// (recovered on restart); nil keeps the node volatile.
	stable store.Provider
	// top is the validated sharded topology (roles shard/router only).
	top *shard.Topology
}

func buildHost(c buildConfig) (*runtime.Host, error) {
	reg := core.BankRegistry()
	setup := func(db *sqldb.DB) error { return core.BankSetup(db, c.rows) }
	if c.registry == "tpcc" {
		sc := tpcc.Full()
		reg = tpcc.Registry(sc)
		setup = tpcc.SetupFunc(sc)
	}
	switch c.role {
	case "broadcast":
		cfg := broadcast.Config{
			Nodes: c.bcast, Subscribers: c.replicas,
			MaxBatch: c.batch, MaxDelay: c.batchDelay, Pipeline: c.pipeline,
		}
		if c.stable != nil {
			// Journal the sequencer's decided slots and the Synod
			// acceptors' promises; a restart resumes from both.
			cfg.Stable = c.openStable("seq")
			cfg.Modules = []broadcast.Module{broadcast.PaxosDurable(c.pipeline, c.openStable("acc"))}
		}
		return runtime.NewHost(c.id, c.tr, broadcast.Spec(cfg).Generator()(c.id)), nil
	case "pbr":
		db, err := sqldb.Open(c.engine + ":mem:" + string(c.id))
		if err != nil {
			return nil, err
		}
		if !c.spare {
			// Seeded before replica construction: with a fresh store the
			// baseline snapshot must capture the initial rows; with an
			// existing store, recovery restores over this population.
			if err := setup(db); err != nil {
				return nil, err
			}
		}
		dep := core.PBRDeployment{
			Pool:           c.replicas,
			InitialMembers: c.members,
			BcastNodes:     c.bcast,
			Timing:         core.DefaultTiming(),
		}
		var r *core.PBRReplica
		if c.stable != nil {
			st, err := c.stable.Open("pbr-" + string(c.id))
			if err != nil {
				return nil, err
			}
			var restored bool
			if r, restored, err = core.NewDurablePBRReplica(c.id, db, reg, dep, st, core.DefaultSnapEvery); err != nil {
				return nil, err
			}
			if restored {
				lg.Infof("%s: recovered durable state from %s", c.id, "pbr-"+string(c.id))
			}
		} else {
			r = core.NewPBRReplica(c.id, db, reg, dep)
		}
		h := runtime.NewHost(c.id, c.tr, r)
		h.Emit(r.Start())
		return h, nil
	case "smr":
		db, err := sqldb.Open(c.engine + ":mem:" + string(c.id))
		if err != nil {
			return nil, err
		}
		if err := setup(db); err != nil {
			return nil, err
		}
		if c.stable == nil {
			return runtime.NewHost(c.id, c.tr, core.NewSMRReplica(c.id, db, reg)), nil
		}
		st, err := c.stable.Open("smr-" + string(c.id))
		if err != nil {
			return nil, err
		}
		r, err := core.NewDurableSMRReplica(c.id, db, reg, st, c.replicas)
		if err != nil {
			return nil, err
		}
		h := runtime.NewHost(c.id, c.tr, r)
		if r.Recovered() {
			lg.Infof("%s: recovered durable state through slot %d; requesting downtime delta from peers",
				c.id, r.LastSlot())
		}
		// Ask the peers for anything ordered while this node was down
		// (an empty delta comes back on a fresh, in-sync group).
		h.Emit(r.RecoveryDirectives())
		return h, nil
	case "shard":
		if c.registry != "bank" {
			return nil, fmt.Errorf("the sharded deployment supports the bank registry only (got %q)", c.registry)
		}
		k, part, _ := shard.IsShardLoc(c.id)
		if part == 'b' {
			cfg := broadcast.Config{
				Nodes: c.top.Bcast[k], Subscribers: c.top.Replicas[k],
				MaxBatch: c.batch, MaxDelay: c.batchDelay, Pipeline: c.pipeline,
			}
			if c.stable != nil {
				cfg.Stable = c.openStable("seq")
				cfg.Modules = []broadcast.Module{broadcast.PaxosDurable(c.pipeline, c.openStable("acc"))}
			}
			return runtime.NewHost(c.id, c.tr, broadcast.Spec(cfg).Generator()(c.id)), nil
		}
		db, err := sqldb.Open(c.engine + ":mem:" + string(c.id))
		if err != nil {
			return nil, err
		}
		// Every shard seeds the full bank; placement decides which rows a
		// shard ever mutates, so unowned rows just stay at their seed value.
		if err := setup(db); err != nil {
			return nil, err
		}
		return runtime.NewHost(c.id, c.tr, shard.NewReplica(c.id, k, db, reg, shard.Bank())), nil
	case "router":
		if c.registry != "bank" {
			return nil, fmt.Errorf("the sharded deployment supports the bank registry only (got %q)", c.registry)
		}
		rcfg := shard.Config{
			Slf:    c.id,
			Part:   shard.NewHash(c.top.Shards),
			App:    shard.Bank(),
			Shards: c.top.Bcast,
		}
		if c.stable != nil {
			st, err := c.stable.Open("journal")
			if err != nil {
				return nil, err
			}
			rcfg.Stable = st
		}
		rt, err := shard.NewRouter(rcfg)
		if err != nil {
			return nil, err
		}
		h := runtime.NewHost(c.id, c.tr, rt)
		if open := rt.Recovered(); len(open) > 0 {
			lg.Infof("%s: journal recovered %d open cross-shard transaction(s); re-driving %v",
				c.id, len(open), open)
		}
		h.Emit(rt.RecoveryDirectives())
		return h, nil
	default:
		return nil, fmt.Errorf("unknown role %q", c.role)
	}
}

// openStable maps component locations to named stores under the node's
// data directory ("seq-b1", "acc-b1").
func (c buildConfig) openStable(prefix string) func(msg.Loc) store.Stable {
	return func(l msg.Loc) store.Stable {
		st, err := c.stable.Open(prefix + "-" + string(l))
		if err != nil {
			// Called from inside process construction, where there is no
			// error path; a data directory that cannot be opened is fatal.
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return st
	}
}

// parseDirectory parses "id=addr,id=addr,...".
func parseDirectory(s string) (map[msg.Loc]string, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -cluster directory")
	}
	dir := make(map[msg.Loc]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad -cluster entry %q (want id=host:port)", part)
		}
		dir[msg.Loc(kv[0])] = kv[1]
	}
	return dir, nil
}

// splitRoles partitions the directory into replica ids (r*) and broadcast
// ids (b*), sorted for deterministic configuration.
func splitRoles(dir map[msg.Loc]string) (replicas, bcast []msg.Loc) {
	for l := range dir {
		switch {
		case strings.HasPrefix(string(l), "b"):
			bcast = append(bcast, l)
		case strings.HasPrefix(string(l), "r"):
			replicas = append(replicas, l)
		}
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	sort.Slice(bcast, func(i, j int) bool { return bcast[i] < bcast[j] })
	return replicas, bcast
}
