// Command shadowdb runs one node of a ShadowDB deployment over TCP: a
// PBR/SMR database replica, a total-order-broadcast service node, a
// sharded-deployment member, or the shard router. It also carries the
// membership admin verbs (join, leave, status) that drive a running
// cluster through ordered configuration epochs.
//
// The cluster is described by an epoch-stamped topology file — JSON
// {"epoch": N, "nodes": {"id": "host:port", ...}} — instead of a flag
// per node list. Example three-machine SMR deployment plus broadcast
// service (each command on its own machine or terminal):
//
//	shadowdb -id b1 -role broadcast -topology cluster.json
//	shadowdb -id b2 -role broadcast -topology cluster.json
//	shadowdb -id b3 -role broadcast -topology cluster.json
//	shadowdb -id r1 -role smr -engine h2     -topology cluster.json -data-dir /var/sdb/r1
//	shadowdb -id r2 -role smr -engine hsqldb -topology cluster.json -data-dir /var/sdb/r2
//	shadowdb -id r3 -role smr -engine derby  -topology cluster.json -data-dir /var/sdb/r3
//
// Use -registry tpcc for the TPC-C procedures instead of the bank ones.
//
// Membership changes are ordered through the broadcast like any
// transaction. To grow the cluster, start the new node with -joiner
// (it parks deliveries until the ordered add command admits it and a
// bootstrap snapshot arrives), then propose the change through any
// running node's admin endpoint:
//
//	shadowdb -id r4 -role smr -topology cluster.json -joiner -data-dir /var/sdb/r4
//	shadowdb join  -node r4 -addr host4:7001 -admin-url http://host1:7070 -topology cluster.json
//	shadowdb leave -node r2                  -admin-url http://host1:7070 -topology cluster.json
//	shadowdb status -admin-url http://host1:7070
//
// join/leave re-stamp the local topology file with the next epoch, and
// every running node re-stamps its own copy when the ordered command
// reaches it — a restart then boots from the newest epoch it saw.
//
// Sharded deployment (bank registry): members follow the s<k>b<i> /
// s<k>r<i> naming, the router is rt1, and every member runs -role shard
// except the router:
//
//	shadowdb -id s0b1 -role shard  -topology cluster.json -data-dir /var/shadowdb
//	shadowdb -id s0r1 -role shard  -topology cluster.json
//	shadowdb -id s1b1 -role shard  -topology cluster.json -data-dir /var/shadowdb
//	shadowdb -id s1r1 -role shard  -topology cluster.json
//	shadowdb -id rt1  -role router -topology cluster.json -data-dir /var/shadowdb
//
// The member list is validated up front (contiguous shard indices, equal
// per-shard counts, exactly one router) and a malformed topology is a
// startup error, not a late panic. With -data-dir, each process keeps
// its durable state in a per-role subtree of the shared path layout:
// shard k's broadcast state under <data-dir>/shard<k>/ and the router's
// 2PC journal under <data-dir>/router/ — so one host can carry several
// members without their WALs colliding.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"shadowdb/internal/bench/tpcc"
	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/core"
	"shadowdb/internal/fault"
	"shadowdb/internal/flow"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/runtime"
	"shadowdb/internal/shard"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// lg is the process logger; records land in the obs log ring (served
// on /logs, dumped into postmortem bundles) and stream to stderr.
var lg = obs.L("shadowdb")

func main() {
	// The membership admin verbs run as subcommands; everything else is
	// the server path.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "join", "leave":
			os.Exit(runChangeVerb(os.Args[1], os.Args[2:]))
		case "status":
			os.Exit(runStatusVerb(os.Args[2:]))
		}
	}
	os.Exit(run())
}

func run() int {
	id := flag.String("id", "", "this node's location id (must appear in the topology)")
	role := flag.String("role", "pbr", "pbr|smr|broadcast|shard|router (shard/router use the s<k>b<i>/s<k>r<i>/rt1 naming)")
	topology := flag.String("topology", "", "epoch-stamped topology file (JSON {\"epoch\": N, \"nodes\": {id: host:port}})")
	engine := flag.String("engine", "h2", "database engine: h2|hsqldb|derby|mysql-mem|mysql-innodb")
	registry := flag.String("registry", "bank", "transaction registry: bank|tpcc")
	rows := flag.Int("rows", 10_000, "initial bank rows (bank registry, non-spare)")
	spare := flag.Bool("spare", false, "start with an empty database (PBR spare)")
	members := flag.Int("members", 2, "initial PBR configuration size")
	batch := flag.Int("batch", 0, "broadcast role: max messages per ordered batch (0 = unbatched)")
	batchDelay := flag.Duration("batch-delay", 0, "broadcast role: max time a message may wait for its batch to fill (0 = cut eagerly)")
	pipeline := flag.Int("pipeline", 0, "broadcast role: max concurrent consensus instances (0 or 1 = stop-and-wait)")
	alpha := flag.Int("alpha", 16, "membership: acceptor activation lag in slots; must be identical on every node (it is part of the derived epoch schedule) and exceed the sequencer's -pipeline window")
	joiner := flag.Bool("joiner", false, "this node is joining a running cluster: excluded from its own initial epoch, passive until the ordered add command admits it")
	dataDir := flag.String("data-dir", "", "durable storage root: WAL + snapshots for this node's state, recovered on restart (empty = volatile); sharded roles use the per-shard layout <data-dir>/shard<k>/ and <data-dir>/router/")
	fsync := flag.String("fsync", "batch", "WAL sync policy with -data-dir: always|batch|never")
	lease := flag.Bool("lease", false, "smr role: enable lease-based local reads (DESIGN.md §13); must be set uniformly across the replica group, bank registry only")
	leaseDur := flag.Duration("lease-dur", 2*time.Second, "lease duration with -lease; the holder proposes renewals every third of it")
	maxStale := flag.Duration("max-stale", 0, "staleness bound for follower reads with -lease (0 = -lease-dur)")
	admin := flag.String("admin", "", "admin HTTP address (metrics, trace, pprof), e.g. 127.0.0.1:7070")
	trace := flag.Bool("trace", false, "start with causal trace recording enabled")
	check := flag.Bool("check", false, "run the online invariant checker; serves /checker and /spans on -admin")
	faultPlan := flag.String("fault-plan", "", "JSON fault plan: inject its message faults, partitions, and crash (blackhole) windows on this node's transport")
	logLevel := flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	flightDir := flag.String("flight-dir", "", "postmortem bundle directory (default <data-dir>/flight when -data-dir is set; empty without it disables the recorder)")
	maxInflight := flag.Int("max-inflight", 0, "admission bound (DESIGN.md §14): broadcast roles cap the sequencer's admission queue, the router role caps concurrent cross-shard transactions; excess work is answered with an explicit rejection. Also arms receive-side deadline enforcement on the transport. 0 = unbounded")
	retryBudget := flag.Float64("retry-budget", 0, "router role: 2PC re-drive tokens per second (0 = unbounded)")
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	obs.Default.SetLogLevel(lv)
	obs.Default.SetLogStream(os.Stderr)

	if *topology == "" {
		fmt.Fprintln(os.Stderr, "missing -topology")
		return 2
	}
	topo, err := member.LoadTopology(*topology)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dir := topo.Directory()
	if *id == "" {
		fmt.Fprintln(os.Stderr, "missing -id")
		return 2
	}
	if _, ok := dir[msg.Loc(*id)]; !ok {
		fmt.Fprintf(os.Stderr, "id %q not in topology %s\n", *id, *topology)
		return 2
	}
	obs.Default.SetNode(msg.Loc(*id))

	// The consensus types ride along for the flight recorder: bundle
	// dumps gob-encode the trace ring, which carries their bodies.
	core.RegisterWireTypes()
	broadcast.RegisterWireTypes()
	shard.RegisterWireTypes()
	synod.RegisterWireTypes()
	twothird.RegisterWireTypes()

	// Sharded roles validate the whole member list before anything opens
	// a socket or a store: a malformed directory must be a startup error.
	var top *shard.Topology
	if *role == "shard" || *role == "router" {
		ids := make([]string, 0, len(dir))
		for l := range dir {
			ids = append(ids, string(l))
		}
		if top, err = shard.FromDirectory(ids); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		switch *role {
		case "router":
			if msg.Loc(*id) != shard.RouterLoc {
				fmt.Fprintf(os.Stderr, "-role router requires -id %s, got %q\n", shard.RouterLoc, *id)
				return 2
			}
		case "shard":
			if _, _, ok := shard.IsShardLoc(msg.Loc(*id)); !ok {
				fmt.Fprintf(os.Stderr, "-role shard requires an s<k>b<i> or s<k>r<i> id, got %q\n", *id)
				return 2
			}
		}
	}

	var tr network.Transport
	tcp, err := network.NewTCP(msg.Loc(*id), dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	tr = tcp
	if *maxInflight > 0 {
		// With admission control on, expired work is refused at every
		// hop: envelopes whose deadline already passed are dropped on
		// receive before they cost protocol work.
		tcp.EnforceDeadlines(func() int64 { return time.Now().UnixNano() })
	}
	if *faultPlan != "" {
		plan, err := fault.Load(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Faults ride the node's wall clock from process start. Crash
		// windows become blackholes: a real process cannot be crashed
		// from inside, but cutting all of its traffic is the same fault
		// to the rest of the cluster.
		inj := fault.NewInjector(plan, nil)
		inj.SetObs(obs.Default)
		tr = fault.Wrap(tcp, msg.Loc(*id), inj)
		stop := fault.StartNemesis(inj)
		defer stop()
		lg.Infof("fault plan %s armed: %d rules, %d partitions, %d crashes (seed %d)",
			*faultPlan, len(plan.Rules), len(plan.Partitions), len(plan.Crashes), plan.Seed)
	}
	defer func() { _ = tr.Close() }()

	var prov store.Provider
	if *dataDir != "" {
		pol, err := store.ParsePolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Sharded members store under the per-shard layout so several
		// members can share one -data-dir root on the same host.
		root := *dataDir
		switch *role {
		case "router":
			root = filepath.Join(root, shard.RouterSubdir)
		case "shard":
			k, _, _ := shard.IsShardLoc(msg.Loc(*id))
			root = filepath.Join(root, shard.DataSubdir(k))
		}
		if prov, err = store.NewDir(root, pol); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	replicaLocs, bcastLocs := splitRoles(dir)

	// Roles under dynamic membership share one epoch view. A joiner
	// excludes itself from the initial epoch: until the ordered add
	// command derives the epoch that admits it, it is not a member —
	// merely a process the members can already dial.
	var view *member.View
	if *role == "broadcast" || *role == "smr" {
		initial := member.Config{Bcast: bcastLocs, Replicas: replicaLocs}
		if *joiner {
			initial.Bcast = without(initial.Bcast, msg.Loc(*id))
			initial.Replicas = without(initial.Replicas, msg.Loc(*id))
		}
		// Alpha is part of the schedule every node derives independently:
		// a per-node value would make two nodes disagree on when an epoch
		// activates, which is exactly what the checker's epoch-config
		// invariant flags. It is a flag (not derived from -pipeline)
		// because replicas do not know the sequencer's window.
		if *alpha <= 2**pipeline {
			fmt.Fprintf(os.Stderr, "-alpha %d must exceed twice the -pipeline window %d\n", *alpha, *pipeline)
			return 2
		}
		view = member.NewView(initial, *alpha)
		view.OnApply(func(cmd member.Command, cfg member.Config) {
			if cmd.Addr != "" && (cmd.Op == member.AddReplica || cmd.Op == member.AddAcceptor) {
				// The route travels with the ordered command: every node
				// learns the joiner's address exactly when it learns the
				// member.
				tcp.SetPeer(cmd.Node, cmd.Addr)
			}
			restampTopology(*topology, cmd, cfg)
			lg.Infof("membership epoch %d: %s %s (%s)", cfg.Epoch, cmd.Op, cmd.Node, cfg.Fingerprint())
		})
	}

	host, err := buildHost(buildConfig{
		id: msg.Loc(*id), role: *role, engine: *engine, registry: *registry,
		rows: *rows, spare: *spare, members: *members,
		batch: *batch, batchDelay: *batchDelay, pipeline: *pipeline,
		replicas: replicaLocs, bcast: bcastLocs, tr: tr, stable: prov, top: top,
		view: view, joiner: *joiner,
		lease: *lease, leaseDur: *leaseDur, maxStale: *maxStale,
		groupCommit: groupWindow(*dataDir, *fsync, *pipeline),
		maxInflight: *maxInflight, retryBudget: *retryBudget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	host.Start()
	defer func() { _ = host.Close() }()
	if top != nil {
		lg.Infof("shadowdb %s (%s) listening on %s; %d shards, router=%v",
			*id, *role, tcp.Addr(), top.Shards, top.Routers[0])
	} else {
		lg.Infof("shadowdb %s (%s) listening on %s; epoch %d, replicas=%v broadcast=%v",
			*id, *role, tcp.Addr(), topo.Epoch, replicaLocs, bcastLocs)
	}

	if *trace {
		obs.Default.EnableTracing(true)
	}
	var checker *dist.Checker
	if *check {
		checker = dist.NewChecker()
		checker.SetGroupOf(shard.GroupOf)
		checker.Watch(obs.Default)
	}

	// The flight recorder dumps a postmortem bundle on checker violation,
	// panic, SIGQUIT, or POST /flight/dump. It defaults on whenever the
	// node has a data dir to keep evidence in.
	fdir := *flightDir
	if fdir == "" && *dataDir != "" {
		fdir = filepath.Join(*dataDir, "flight")
	}
	var rec *obs.Recorder
	if fdir != "" {
		if rec, err = obs.NewRecorder(obs.Default, fdir, msg.Loc(*id)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfgMap := map[string]string{
			"role": *role, "engine": *engine, "registry": *registry,
			"topology": *topology, "epoch": fmt.Sprint(topo.Epoch),
		}
		if *joiner {
			// Merge tooling baselines a joiner's checker at its bootstrap
			// slot instead of slot 0.
			cfgMap["joiner"] = "true"
		}
		rec.SetConfig(cfgMap)
		if checker != nil {
			rec.SetCheckerStatus(func() any { return checker.Status() })
			checker.OnViolation(func(v dist.Violation) {
				if path, err := rec.TryDump("violation-" + v.Property); err == nil && path != "" {
					lg.Errorf("checker violation %s: postmortem bundle at %s", v.Property, path)
				}
			})
		}
		defer rec.NotifySignals()()
		defer func() {
			if r := recover(); r != nil {
				rec.OnPanic()
				panic(r)
			}
		}()
		lg.Infof("flight recorder armed: bundles under %s", fdir)
	}

	if *admin != "" {
		var base http.Handler
		if checker != nil {
			base = dist.HandlerWith(obs.Default, checker, rec)
		} else {
			base = obs.HandlerWith(obs.Default, rec)
		}
		mux := http.NewServeMux()
		mux.Handle("/", base)
		extra := ""
		if checker != nil {
			extra = " /checker /spans"
		}
		if view != nil {
			// Membership admin: propose ordered configuration changes and
			// inspect the derived epoch schedule. The join/leave/status
			// verbs are clients of these endpoints.
			mux.Handle("/member/propose", proposeHandler(host, view))
			mux.Handle("/member/status", statusHandler(view))
			extra += " /member/status, POST /member/propose"
		}
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer func() { _ = srv.Close() }()
		lg.Infof("admin endpoint on http://%s (GET /metrics /logs /trace /trace.json%s, POST /trace/start /trace/stop /flight/dump, /debug/pprof/)", ln.Addr(), extra)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	lg.Infof("shutting down")
	return 0
}

type buildConfig struct {
	id         msg.Loc
	role       string
	engine     string
	registry   string
	rows       int
	spare      bool
	members    int
	batch      int
	batchDelay time.Duration
	pipeline   int
	replicas   []msg.Loc
	bcast      []msg.Loc
	tr         network.Transport
	// stable, when set, backs this node's state with WAL + snapshots
	// (recovered on restart); nil keeps the node volatile.
	stable store.Provider
	// top is the validated sharded topology (roles shard/router only).
	top *shard.Topology
	// view is the shared membership epoch schedule (roles broadcast/smr).
	view *member.View
	// joiner marks a node joining a running cluster: it stays passive
	// until the ordered add command admits it.
	joiner bool
	// lease enables lease-based local reads on SMR replicas; leaseDur
	// and maxStale parameterize the protocol (DESIGN.md §13).
	lease    bool
	leaseDur time.Duration
	maxStale time.Duration
	// groupCommit, when > 1, coalesces the SMR journal's fsyncs: acks
	// park until one fsync covers up to this many ack-bearing slots.
	groupCommit int
	// maxInflight, when > 0, arms admission control: the sequencer's
	// bounded admission queue (broadcast roles) or the router's bound on
	// concurrent cross-shard transactions. Excess work is answered with
	// an explicit flow.Reject instead of queueing without bound.
	maxInflight int
	// retryBudget, when > 0, is the router's 2PC re-drive token rate
	// per second (DESIGN.md §14): re-drives beyond the budget wait for
	// the next timer instead of amplifying an overload.
	retryBudget float64
}

// wallClock is the live deployment clock deadlines are stamped on and
// compared against: absolute wall nanoseconds, so every hop in the
// deployment reads a comparable value (NTP-grade skew tolerated —
// deadlines are hundreds of milliseconds, not microseconds).
func wallClock() time.Duration { return time.Duration(time.Now().UnixNano()) }

// groupWindow sizes the SMR group-commit window: with a durable store
// under the batch sync policy, acks are parked until one fsync covers
// the window. The window tracks the sequencer's pipeline (concurrent
// slots arrive back to back) with a floor of 4.
func groupWindow(dataDir, fsync string, pipeline int) int {
	if dataDir == "" || fsync != "batch" {
		return 0
	}
	if pipeline > 4 {
		return pipeline
	}
	return 4
}

// enableLease wires lease-based local reads onto an SMR replica. Live
// processes use wall-clock Unix time as the lease clock: issue
// timestamps travel inside ordered renewals and are compared against
// the local clock, so validity tolerates NTP-grade skew — keep
// -lease-dur comfortably above the deployment's clock error bound.
func enableLease(r *core.SMRReplica, c buildConfig) error {
	if !c.lease {
		return nil
	}
	if c.registry != "bank" {
		return fmt.Errorf("-lease serves the bank read registry only (got -registry %q)", c.registry)
	}
	if len(c.bcast) == 0 {
		return fmt.Errorf("-lease requires broadcast nodes in the topology")
	}
	// The fast-path registry keeps the ordered apply loop on the same
	// allocation budget the readpath experiment certifies.
	r.Executor().Fast = core.BankFastRegistry()
	r.EnableLease(core.LeaseConfig{
		Dur: c.leaseDur, MaxStale: c.maxStale, Bcast: c.bcast[0],
		Now: func() time.Duration { return time.Duration(time.Now().UnixNano()) },
	}, core.BankReadRegistry())
	return nil
}

func buildHost(c buildConfig) (*runtime.Host, error) {
	reg := core.BankRegistry()
	setup := func(db *sqldb.DB) error { return core.BankSetup(db, c.rows) }
	if c.registry == "tpcc" {
		sc := tpcc.Full()
		reg = tpcc.Registry(sc)
		setup = tpcc.SetupFunc(sc)
	}
	switch c.role {
	case "broadcast":
		// Nodes is every broadcast process the topology can dial — the
		// view, not this list, decides which of them an instance's quorum
		// is drawn from, so a joiner can host its acceptor before its
		// epoch activates.
		cfg := broadcast.Config{
			Nodes: c.bcast, Subscribers: c.replicas,
			MaxBatch: c.batch, MaxDelay: c.batchDelay, Pipeline: c.pipeline,
			View: c.view,
		}
		if c.maxInflight > 0 {
			cfg.FlowLimit = c.maxInflight
			cfg.Classify = core.FlowClass
			cfg.FlowNow = wallClock
		}
		var stable func(msg.Loc) store.Stable
		if c.stable != nil {
			// Journal the sequencer's decided slots and the Synod
			// acceptors' promises; a restart resumes from both.
			cfg.Stable = c.openStable("seq")
			stable = c.openStable("acc")
		}
		// The dynamic module resolves acceptor sets per instance and the
		// Decide fan-out per decision through the view, so quorums switch
		// epochs atomically at their activation slot.
		cfg.Modules = []broadcast.Module{broadcast.PaxosDynamic(c.pipeline, stable, c.view)}
		return runtime.NewHost(c.id, c.tr, broadcast.Spec(cfg).Generator()(c.id)), nil
	case "pbr":
		db, err := sqldb.Open(c.engine + ":mem:" + string(c.id))
		if err != nil {
			return nil, err
		}
		if !c.spare {
			// Seeded before replica construction: with a fresh store the
			// baseline snapshot must capture the initial rows; with an
			// existing store, recovery restores over this population.
			if err := setup(db); err != nil {
				return nil, err
			}
		}
		dep := core.PBRDeployment{
			Pool:           c.replicas,
			InitialMembers: c.members,
			BcastNodes:     c.bcast,
			Timing:         core.DefaultTiming(),
		}
		var r *core.PBRReplica
		if c.stable != nil {
			st, err := c.stable.Open("pbr-" + string(c.id))
			if err != nil {
				return nil, err
			}
			var restored bool
			if r, restored, err = core.NewDurablePBRReplica(c.id, db, reg, dep, st, core.DefaultSnapEvery); err != nil {
				return nil, err
			}
			if restored {
				lg.Infof("%s: recovered durable state from %s", c.id, "pbr-"+string(c.id))
			}
		} else {
			r = core.NewPBRReplica(c.id, db, reg, dep)
		}
		h := runtime.NewHost(c.id, c.tr, r)
		h.Emit(r.Start())
		return h, nil
	case "smr":
		db, err := sqldb.Open(c.engine + ":mem:" + string(c.id))
		if err != nil {
			return nil, err
		}
		if !c.joiner {
			// A joiner's database stays empty: schema and rows arrive with
			// the bootstrap state transfer.
			if err := setup(db); err != nil {
				return nil, err
			}
		}
		var r *core.SMRReplica
		if c.stable == nil {
			if c.joiner {
				r = core.NewJoiningSMRReplica(c.id, db, reg)
			} else {
				r = core.NewSMRReplica(c.id, db, reg)
			}
			r.SetView(c.view)
			if err := enableLease(r, c); err != nil {
				return nil, err
			}
			h := runtime.NewHost(c.id, c.tr, r)
			h.Emit(r.LeaseDirectives())
			return h, nil
		}
		st, err := c.stable.Open("smr-" + string(c.id))
		if err != nil {
			return nil, err
		}
		if c.joiner {
			r, err = core.NewJoiningDurableSMRReplica(c.id, db, reg, st, c.replicas)
		} else {
			r, err = core.NewDurableSMRReplica(c.id, db, reg, st, c.replicas)
		}
		if err != nil {
			return nil, err
		}
		r.SetView(c.view)
		if c.groupCommit > 1 {
			r.SetGroupCommit(c.groupCommit, 0)
		}
		if err := enableLease(r, c); err != nil {
			return nil, err
		}
		h := runtime.NewHost(c.id, c.tr, r)
		h.Emit(r.LeaseDirectives())
		if r.Recovered() {
			lg.Infof("%s: recovered durable state through slot %d; requesting downtime delta from peers",
				c.id, r.LastSlot())
		}
		if !c.joiner || r.Recovered() {
			// Ask the peers for anything ordered while this node was down
			// (an empty delta comes back on a fresh, in-sync group). A
			// fresh joiner instead waits for the ordered add command to
			// trigger the bootstrap push.
			h.Emit(r.RecoveryDirectives())
		}
		return h, nil
	case "shard":
		if c.registry != "bank" {
			return nil, fmt.Errorf("the sharded deployment supports the bank registry only (got %q)", c.registry)
		}
		k, part, _ := shard.IsShardLoc(c.id)
		if part == 'b' {
			cfg := broadcast.Config{
				Nodes: c.top.Bcast[k], Subscribers: c.top.Replicas[k],
				MaxBatch: c.batch, MaxDelay: c.batchDelay, Pipeline: c.pipeline,
			}
			if c.maxInflight > 0 {
				cfg.FlowLimit = c.maxInflight
				cfg.Classify = core.FlowClass
				cfg.FlowNow = wallClock
			}
			if c.stable != nil {
				cfg.Stable = c.openStable("seq")
				cfg.Modules = []broadcast.Module{broadcast.PaxosDurable(c.pipeline, c.openStable("acc"))}
			}
			return runtime.NewHost(c.id, c.tr, broadcast.Spec(cfg).Generator()(c.id)), nil
		}
		db, err := sqldb.Open(c.engine + ":mem:" + string(c.id))
		if err != nil {
			return nil, err
		}
		// Every shard seeds the full bank; placement decides which rows a
		// shard ever mutates, so unowned rows just stay at their seed value.
		if err := setup(db); err != nil {
			return nil, err
		}
		return runtime.NewHost(c.id, c.tr, shard.NewReplica(c.id, k, db, reg, shard.Bank())), nil
	case "router":
		if c.registry != "bank" {
			return nil, fmt.Errorf("the sharded deployment supports the bank registry only (got %q)", c.registry)
		}
		rcfg := shard.Config{
			Slf:    c.id,
			Part:   shard.NewHash(c.top.Shards),
			App:    shard.Bank(),
			Shards: c.top.Bcast,
		}
		if c.maxInflight > 0 || c.retryBudget > 0 {
			rcfg.MaxInflight = c.maxInflight
			rcfg.Now = wallClock
			if c.retryBudget > 0 {
				rcfg.Budget = &flow.RetryBudget{Rate: c.retryBudget}
			}
		}
		if c.stable != nil {
			st, err := c.stable.Open("journal")
			if err != nil {
				return nil, err
			}
			rcfg.Stable = st
		}
		rt, err := shard.NewRouter(rcfg)
		if err != nil {
			return nil, err
		}
		h := runtime.NewHost(c.id, c.tr, rt)
		if open := rt.Recovered(); len(open) > 0 {
			lg.Infof("%s: journal recovered %d open cross-shard transaction(s); re-driving %v",
				c.id, len(open), open)
		}
		h.Emit(rt.RecoveryDirectives())
		return h, nil
	default:
		return nil, fmt.Errorf("unknown role %q", c.role)
	}
}

// openStable maps component locations to named stores under the node's
// data directory ("seq-b1", "acc-b1").
func (c buildConfig) openStable(prefix string) func(msg.Loc) store.Stable {
	return func(l msg.Loc) store.Stable {
		st, err := c.stable.Open(prefix + "-" + string(l))
		if err != nil {
			// Called from inside process construction, where there is no
			// error path; a data directory that cannot be opened is fatal.
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return st
	}
}

// without returns ls minus l.
func without(ls []msg.Loc, l msg.Loc) []msg.Loc {
	out := make([]msg.Loc, 0, len(ls))
	for _, x := range ls {
		if x != l {
			out = append(out, x)
		}
	}
	return out
}

// splitRoles partitions the directory into replica ids (r*) and broadcast
// ids (b*), sorted for deterministic configuration.
func splitRoles(dir map[msg.Loc]string) (replicas, bcast []msg.Loc) {
	for l := range dir {
		switch {
		case strings.HasPrefix(string(l), "b"):
			bcast = append(bcast, l)
		case strings.HasPrefix(string(l), "r"):
			replicas = append(replicas, l)
		}
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	sort.Slice(bcast, func(i, j int) bool { return bcast[i] < bcast[j] })
	return replicas, bcast
}
