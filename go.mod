module shadowdb

go 1.22
