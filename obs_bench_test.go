package shadowdb

// Observability overhead on the bank micro-benchmark: the same SMR
// cluster and workload with collection disabled (obs.Nop — the hot path
// is one atomic load per step), with the metrics registry enabled (the
// deployment default), and with causal trace recording on top.
//
// The acceptance target is < 5% overhead enabled vs Nop:
//
//	go test -bench 'BenchmarkBankObs' -benchtime 2s -count 5 .
//
// Compare per-name medians (benchstat-style): within one process, later
// runs execute on a hotter heap, so ordering effects between names far
// exceed the instrumentation cost — which is why TestObsOverheadReport
// below interleaves the configurations round-robin before comparing.

import (
	"testing"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/obs"
)

func openBankCluster(tb testing.TB, o *obs.Obs) (*Cluster, *Client) {
	tb.Helper()
	cluster, err := Open(Config{
		Replication: SMR,
		Engines:     []string{"h2"},
		Procedures:  core.BankRegistry(),
		Setup:       func(db *DB) error { return core.BankSetup(db, 100) },
		Obs:         o,
	})
	if err != nil {
		tb.Fatal(err)
	}
	cli, err := cluster.Client()
	if err != nil {
		_ = cluster.Close()
		tb.Fatal(err)
	}
	return cluster, cli
}

func benchBank(b *testing.B, o *obs.Obs) {
	cluster, cli := openBankCluster(b, o)
	defer func() { _ = cluster.Close() }()
	defer func() { _ = cli.Close() }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Exec("deposit", int64(1), int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBankObsNop is the baseline: observability compiled in but
// disabled — nil-safe handles, no counters, no trace.
func BenchmarkBankObsNop(b *testing.B) {
	benchBank(b, obs.Nop())
}

// BenchmarkBankObsEnabled runs the identical workload with the metrics
// registry collecting (counters, gauges, latency histograms) — the state
// a deployed node runs in.
func BenchmarkBankObsEnabled(b *testing.B) {
	benchBank(b, obs.New(obs.DefaultTraceCap))
}

// BenchmarkBankObsTracing additionally records every step into the
// causal trace ring — the state after POST /trace/start.
func BenchmarkBankObsTracing(b *testing.B) {
	o := obs.New(obs.DefaultTraceCap)
	o.EnableTracing(true)
	benchBank(b, o)
}

// TestObsOverheadReport measures the three configurations interleaved
// round-robin (cancelling the heap warm-up drift that makes sequential
// comparison lie) and logs the overhead. It never hard-fails on the
// ratio itself — shared CI machines jitter more than the 5% target; the
// acceptance claim is checked by the benchmarks above on quiet hardware.
func TestObsOverheadReport(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	traced := obs.New(obs.DefaultTraceCap)
	traced.EnableTracing(true)
	configs := []struct {
		name string
		o    *obs.Obs
	}{
		{"nop", obs.Nop()},
		{"metrics", obs.New(obs.DefaultTraceCap)},
		{"tracing", traced},
	}
	type fixture struct {
		cluster *Cluster
		cli     *Client
	}
	fixtures := make([]fixture, len(configs))
	for i, c := range configs {
		cl, cli := openBankCluster(t, c.o)
		fixtures[i] = fixture{cl, cli}
	}
	defer func() {
		for _, f := range fixtures {
			_ = f.cli.Close()
			_ = f.cluster.Close()
		}
	}()
	const rounds, perRound = 20, 10
	totals := make([]time.Duration, len(configs))
	for r := 0; r < rounds; r++ {
		for i, f := range fixtures {
			start := time.Now()
			for j := 0; j < perRound; j++ {
				if _, err := f.cli.Exec("deposit", int64(1), int64(1)); err != nil {
					t.Fatal(err)
				}
			}
			totals[i] += time.Since(start)
		}
	}
	per := func(i int) time.Duration { return totals[i] / (rounds * perRound) }
	overhead := func(i int) float64 {
		return 100 * (float64(per(i)) - float64(per(0))) / float64(per(0))
	}
	t.Logf("bank micro-benchmark per-tx: nop=%v metrics=%v (%+.2f%%) tracing=%v (%+.2f%%)",
		per(0), per(1), overhead(1), per(2), overhead(2))
	if evs := traced.Events(); len(evs) == 0 {
		t.Error("tracing run recorded no trace events")
	}
	if n := configs[1].o.Snapshot().Counters["runtime.steps"]; n == 0 {
		t.Error("metrics run counted no steps")
	}
}

// The flight recorder's structured logger claims an always-on cost low
// enough to leave debug calls in the hot path: a call below the active
// level must gate on one atomic load and never reach the formatter or
// allocate. The benchmarks measure both sides of the gate; the alloc
// test pins the zero-allocation claim so a regression fails rather than
// just slowing down.

// BenchmarkLogDisabled is a log call below the active level — the cost
// every production code path pays for carrying debug logging.
func BenchmarkLogDisabled(b *testing.B) {
	o := obs.New(obs.DefaultTraceCap)
	o.SetLogLevel(obs.LevelInfo)
	lg := o.Logger("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Debugf("hot path probe")
	}
}

// BenchmarkLogEnabled is the same call above the level: format, stamp,
// and publish into the ring.
func BenchmarkLogEnabled(b *testing.B) {
	o := obs.New(obs.DefaultTraceCap)
	o.SetLogLevel(obs.LevelDebug)
	lg := o.Logger("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Debugf("hot path probe %d", i)
	}
}

// TestLogDisabledZeroAlloc pins the claim the benchmark only reports:
// a disabled log call allocates nothing, arguments included (the
// variadic pack for constant args is hoisted by escape analysis once
// the gate is inlined).
func TestLogDisabledZeroAlloc(t *testing.T) {
	o := obs.New(obs.DefaultTraceCap)
	o.SetLogLevel(obs.LevelInfo)
	lg := o.Logger("bench")
	if n := testing.AllocsPerRun(1000, func() {
		lg.Debugf("hot path probe")
	}); n != 0 {
		t.Errorf("disabled log call allocates %.1f times per call, want 0", n)
	}
}
