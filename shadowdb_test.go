package shadowdb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"shadowdb/internal/core"
)

func bankConfig(mode Mode) Config {
	return Config{
		Replication: mode,
		Procedures:  core.BankRegistry(),
		Setup:       func(db *DB) error { return core.BankSetup(db, 100) },
		Timing: core.Timing{
			HeartbeatEvery: 20 * time.Millisecond,
			SuspectAfter:   200 * time.Millisecond,
			ClientRetry:    200 * time.Millisecond,
		},
	}
}

func openCluster(t *testing.T, mode Mode) (*Cluster, *Client) {
	t.Helper()
	cluster, err := Open(bankConfig(mode))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Close() })
	cli, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return cluster, cli
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("Open without procedures succeeded")
	}
}

func TestPBRExecRoundTrip(t *testing.T) {
	_, cli := openCluster(t, PBR)
	for i := 0; i < 5; i++ {
		res, err := cli.ExecTimeout(10*time.Second, "deposit", int64(7), int64(10))
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborted {
			t.Fatal("deposit aborted")
		}
	}
	res, err := cli.ExecTimeout(10*time.Second, "balance", int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1050) {
		t.Errorf("balance = %v", res.Rows)
	}
}

func TestSMRExecRoundTrip(t *testing.T) {
	_, cli := openCluster(t, SMR)
	if _, err := cli.ExecTimeout(10*time.Second, "deposit", int64(3), int64(5)); err != nil {
		t.Fatal(err)
	}
	res, err := cli.ExecTimeout(10*time.Second, "balance", int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1005) {
		t.Errorf("balance = %v", res.Rows)
	}
}

func TestAbortSurfaces(t *testing.T) {
	_, cli := openCluster(t, PBR)
	res, err := cli.ExecTimeout(10*time.Second, "deposit", int64(9999), int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("deposit to unknown account did not abort")
	}
}

func TestUnknownProcedureErrors(t *testing.T) {
	_, cli := openCluster(t, PBR)
	if _, err := cli.ExecTimeout(10*time.Second, "frobnicate"); err == nil {
		t.Error("unknown procedure succeeded")
	}
}

func TestPBRSurvivesPrimaryCrash(t *testing.T) {
	cluster, cli := openCluster(t, PBR)
	if _, err := cli.ExecTimeout(10*time.Second, "deposit", int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Crash(0); err != nil {
		t.Fatal(err)
	}
	// The cluster must reconfigure (backup promoted, spare filled by a
	// state transfer) and keep serving.
	res, err := cli.ExecTimeout(30*time.Second, "deposit", int64(1), int64(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("post-crash deposit aborted")
	}
	bal, err := cli.ExecTimeout(10*time.Second, "balance", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if bal.Rows[0][0] != int64(1003) {
		t.Errorf("balance after crash = %v, want 1003", bal.Rows[0][0])
	}
}

func TestSMRSurvivesReplicaCrash(t *testing.T) {
	cluster, cli := openCluster(t, SMR)
	if err := cluster.Crash(1); err != nil {
		t.Fatal(err)
	}
	res, err := cli.ExecTimeout(10*time.Second, "deposit", int64(2), int64(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("deposit aborted after replica crash")
	}
}

func TestReplicaDBInspection(t *testing.T) {
	cluster, cli := openCluster(t, SMR)
	if _, err := cli.ExecTimeout(10*time.Second, "deposit", int64(5), int64(50)); err != nil {
		t.Fatal(err)
	}
	// All three replicas converge.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 3; i++ {
		for {
			db, err := cluster.ReplicaDB(i)
			if err != nil {
				t.Fatal(err)
			}
			res, err := db.Exec("SELECT balance FROM accounts WHERE id = 5")
			if err == nil && len(res.Rows) == 1 && res.Rows[0][0] == int64(1050) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never converged: %v", i, res.Rows)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestClientAfterClose(t *testing.T) {
	cluster, err := Open(bankConfig(PBR))
	if err != nil {
		t.Fatal(err)
	}
	_ = cluster.Close()
	if _, err := cluster.Client(); !errors.Is(err, ErrClosed) {
		t.Errorf("Client after Close: %v", err)
	}
	if err := cluster.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	cluster, _ := openCluster(t, PBR)
	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		cli, err := cluster.Client()
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer func() { _ = cli.Close() }()
			for k := 0; k < 5; k++ {
				if _, err := cli.ExecTimeout(15*time.Second, "deposit", int64(1), int64(1)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	cli, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	res, err := cli.ExecTimeout(10*time.Second, "balance", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(1020) {
		t.Errorf("balance = %v, want 1020 (20 concurrent deposits)", res.Rows[0][0])
	}
}

func TestCustomProcedures(t *testing.T) {
	reg := Registry{
		"mk": func(db *DB, args []any) (ProcResult, error) {
			_, err := db.Exec("INSERT INTO notes VALUES (?, ?)", args[0], args[1])
			return ProcResult{}, err
		},
		"get": func(db *DB, args []any) (ProcResult, error) {
			res, err := db.Exec("SELECT body FROM notes WHERE id = ?", args[0])
			if err != nil {
				return ProcResult{}, err
			}
			return ProcResult{Cols: res.Cols, Rows: res.Rows}, nil
		},
	}
	cluster, err := Open(Config{
		Replication: SMR,
		Procedures:  reg,
		Setup: func(db *DB) error {
			_, err := db.Exec("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)")
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	cli, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	if _, err := cli.ExecTimeout(10*time.Second, "mk", int64(1), "hello"); err != nil {
		t.Fatal(err)
	}
	res, err := cli.ExecTimeout(10*time.Second, "get", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "hello" {
		t.Errorf("rows = %v", res.Rows)
	}
	_ = fmt.Sprint()
}
