package network

import (
	"sync"
	"testing"

	"shadowdb/internal/leaktest"
	"shadowdb/internal/msg"
)

// TestTCPNoGoroutineLeakAfterClose exchanges traffic between two real TCP
// transports and asserts that Close reaps the accept loop and every
// per-connection reader.
func TestTCPNoGoroutineLeakAfterClose(t *testing.T) {
	leaktest.Check(t, "shadowdb/internal/network.")
	msg.RegisterBody(wireBody{})
	a, err := NewTCP("a", map[msg.Loc]string{"a": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP("b", map[msg.Loc]string{"b": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeer("b", b.Addr())
	b.SetPeer("a", a.Addr())
	for i := 0; i < 10; i++ {
		if err := a.Send(msg.Envelope{To: "b", M: msg.M("ping", wireBody{N: i})}); err != nil {
			t.Fatal(err)
		}
		recvOne(t, b)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPCloseRacesDial hammers the dial path while Close runs: the
// transport must neither deadlock in Close (a connection registered after
// the sweep would never be reaped) nor leak its reader goroutine.
func TestTCPCloseRacesDial(t *testing.T) {
	leaktest.Check(t, "shadowdb/internal/network.")
	msg.RegisterBody(wireBody{})
	for i := 0; i < 20; i++ {
		a, err := NewTCP("a", map[msg.Loc]string{"a": "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewTCP("b", map[msg.Loc]string{"b": "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		a.SetPeer("b", b.Addr())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Races Close: either the dial wins and the conn is swept, or
			// Close wins and Send reports ErrClosed.
			_ = a.Send(msg.Envelope{To: "b", M: msg.M("race", wireBody{N: i})})
		}()
		_ = a.Close()
		wg.Wait()
		if err := a.Send(msg.Envelope{To: "b", M: msg.M("late", nil)}); err != ErrClosed {
			t.Fatalf("send after close: err = %v, want ErrClosed", err)
		}
		_ = b.Close()
	}
}
