package network

import (
	"testing"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/msg"
)

// TestTCPRequestReplyWithLearnedRoute reproduces the CLI deployment shape:
// the server's directory does NOT list the client; the reply must ride the
// learned inbound route.
func TestTCPRequestReplyWithLearnedRoute(t *testing.T) {
	core.RegisterWireTypes()
	srv, err := NewTCP("srv", map[msg.Loc]string{"srv": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	go func() {
		for env := range srv.Receive() {
			_ = srv.Send(msg.Envelope{To: env.From, M: msg.M(core.HdrTxResult, core.TxResult{Client: env.From, Seq: 7})})
		}
	}()
	cli, err := NewTCP("cli", map[msg.Loc]string{"cli": "127.0.0.1:0", "srv": srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	if err := cli.Send(msg.Envelope{To: "srv", M: msg.M(core.HdrTx, core.TxRequest{
		Client: "cli", Seq: 7, Type: "x", Args: []any{int64(3)},
	})}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-cli.Receive():
		if env.M.Hdr != core.HdrTxResult {
			t.Fatalf("got %v", env.M)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply over learned route")
	}
}

// TestTCPDialSemaphoreSingleFlight pins the dial semaphore contract:
// while one dial to a peer is in flight, a concurrent sender waits on
// its outcome (it neither drops nor starts a second dial), and the
// net.dial.inflight gauge tracks the open slot.
func TestTCPDialSemaphoreSingleFlight(t *testing.T) {
	core.RegisterWireTypes()
	srv, err := NewTCP("srv", map[msg.Loc]string{"srv": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	cli, err := NewTCP("cli", map[msg.Loc]string{"cli": "127.0.0.1:0", "srv": srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()

	// Occupy srv's dial slot by hand, as a hung dial would.
	hold := make(chan struct{})
	cli.mu.Lock()
	cli.dialing["srv"] = hold
	cli.gDialing.Add(1)
	base := cli.gDialing.Value()
	cli.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		done <- cli.Send(msg.Envelope{To: "srv", M: msg.M(core.HdrTx, core.TxRequest{Client: "cli", Seq: 1, Type: "x"})})
	}()
	select {
	case <-done:
		t.Fatal("send resolved while the peer's dial slot was held")
	case <-time.After(100 * time.Millisecond):
	}

	// Resolve the "dial": free the slot and wake the waiter; it takes
	// the slot itself, dials the live server, and the frame arrives.
	cli.mu.Lock()
	delete(cli.dialing, "srv")
	cli.gDialing.Add(-1)
	cli.mu.Unlock()
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-srv.Receive():
		if env.M.Hdr != core.HdrTx {
			t.Fatalf("got %v", env.M)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame never arrived after the dial slot freed")
	}
	if got := cli.gDialing.Value(); got != base-1 {
		t.Fatalf("net.dial.inflight = %d after dials resolved, want %d", got, base-1)
	}
}

// TestTCPDropsExpiredInbound pins receive-side deadline enforcement:
// with EnforceDeadlines armed, an inbound envelope whose deadline has
// passed is shed at the transport and never reaches the inbox.
func TestTCPDropsExpiredInbound(t *testing.T) {
	core.RegisterWireTypes()
	srv, err := NewTCP("srv", map[msg.Loc]string{"srv": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	srv.EnforceDeadlines(func() int64 { return 1000 })
	cli, err := NewTCP("cli", map[msg.Loc]string{"cli": "127.0.0.1:0", "srv": srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()

	expired := msg.Envelope{To: "srv", Deadline: 500,
		M: msg.M(core.HdrTx, core.TxRequest{Client: "cli", Seq: 1, Type: "late"})}
	fresh := msg.Envelope{To: "srv",
		M: msg.M(core.HdrTx, core.TxRequest{Client: "cli", Seq: 2, Type: "ok"})}
	if err := cli.Send(expired); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(fresh); err != nil {
		t.Fatal(err)
	}
	// Only the fresh envelope may surface; a zero deadline never expires.
	select {
	case env := <-srv.Receive():
		if req, ok := env.M.Body.(core.TxRequest); !ok || req.Seq != 2 {
			t.Fatalf("expired envelope surfaced: %+v", env.M)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fresh envelope never arrived")
	}
	select {
	case env := <-srv.Receive():
		t.Fatalf("unexpected second envelope: %+v", env.M)
	case <-time.After(100 * time.Millisecond):
	}
}
