package network

import (
	"testing"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/msg"
)

// TestTCPRequestReplyWithLearnedRoute reproduces the CLI deployment shape:
// the server's directory does NOT list the client; the reply must ride the
// learned inbound route.
func TestTCPRequestReplyWithLearnedRoute(t *testing.T) {
	core.RegisterWireTypes()
	srv, err := NewTCP("srv", map[msg.Loc]string{"srv": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	go func() {
		for env := range srv.Receive() {
			_ = srv.Send(msg.Envelope{To: env.From, M: msg.M(core.HdrTxResult, core.TxResult{Client: env.From, Seq: 7})})
		}
	}()
	cli, err := NewTCP("cli", map[msg.Loc]string{"cli": "127.0.0.1:0", "srv": srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	if err := cli.Send(msg.Envelope{To: "srv", M: msg.M(core.HdrTx, core.TxRequest{
		Client: "cli", Seq: 7, Type: "x", Args: []any{int64(3)},
	})}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-cli.Receive():
		if env.M.Hdr != core.HdrTxResult {
			t.Fatalf("got %v", env.M)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply over learned route")
	}
}
