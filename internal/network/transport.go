// Package network provides the real transports of the system: an
// in-process channel hub for single-process deployments and tests, and a
// TCP transport with length-prefixed gob frames for distributed
// deployments ("The participants communicate over TCP channels", Section
// III). Both satisfy Transport, which package runtime hosts GPM processes
// on.
package network

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Transport moves envelopes between locations. Send is asynchronous and
// best-effort: the crash-failure model means undeliverable messages are
// dropped, not retried forever.
type Transport interface {
	// Send queues an envelope for delivery.
	Send(env msg.Envelope) error
	// Receive returns the channel of inbound envelopes. It is closed by
	// Close.
	Receive() <-chan msg.Envelope
	// Close releases the transport's resources.
	Close() error
}

// BatchSender is an optional Transport extension: a transport that can
// frame several envelopes bound for the same destination into a single
// wire write. Hosts probe for it with a type assertion and fall back to
// per-envelope Send when absent, so batching never changes semantics —
// only the number of syscalls and frames.
type BatchSender interface {
	// SendBatch queues several envelopes (all with the same To) as one
	// frame. Like Send it is asynchronous and best-effort.
	SendBatch(envs []msg.Envelope) error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("network: transport closed")

// ---------------------------------------------------------- channel hub --

// Hub is an in-process network: every location registers and gets a
// Transport whose sends are routed through Go channels. Useful for tests,
// examples, and single-process deployments.
type Hub struct {
	mu     sync.Mutex
	inbox  map[msg.Loc]chan msg.Envelope
	closed bool
	// Dropped counts messages to unknown or overloaded destinations.
	// Atomic: benchmark drivers read it while sender goroutines run.
	Dropped atomic.Int64
	drops   *obs.Counter
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{inbox: make(map[msg.Loc]chan msg.Envelope), drops: obs.C("net.hub_drops")}
}

// Register joins a location to the hub.
func (h *Hub) Register(l msg.Loc) (Transport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if _, dup := h.inbox[l]; dup {
		return nil, fmt.Errorf("network: location %q already registered", l)
	}
	ch := make(chan msg.Envelope, 1024)
	h.inbox[l] = ch
	return &hubTransport{hub: h, self: l, ch: ch}, nil
}

// Close shuts the hub and every registered transport.
func (h *Hub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	for _, ch := range h.inbox {
		close(ch)
	}
	return nil
}

func (h *Hub) send(env msg.Envelope) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	ch, ok := h.inbox[env.To]
	if !ok {
		h.Dropped.Add(1)
		h.drops.Inc()
		return nil // unknown destination: dropped, as on a real network
	}
	select {
	case ch <- env:
	default:
		// Receiver overloaded: drop rather than deadlock.
		h.Dropped.Add(1)
		h.drops.Inc()
	}
	return nil
}

type hubTransport struct {
	hub    *Hub
	self   msg.Loc
	ch     chan msg.Envelope
	closed sync.Once
	dead   atomic.Bool
}

var _ Transport = (*hubTransport)(nil)

func (t *hubTransport) Send(env msg.Envelope) error {
	if t.dead.Load() {
		return ErrClosed
	}
	env.From = t.self
	return t.hub.send(env)
}

func (t *hubTransport) Receive() <-chan msg.Envelope { return t.ch }

func (t *hubTransport) Close() error {
	t.closed.Do(func() {
		t.dead.Store(true)
		t.hub.mu.Lock()
		defer t.hub.mu.Unlock()
		if ch, ok := t.hub.inbox[t.self]; ok {
			delete(t.hub.inbox, t.self)
			close(ch)
		}
	})
	return nil
}
