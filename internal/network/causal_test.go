package network_test

import (
	"testing"
	"time"

	"shadowdb/internal/msg"
	"shadowdb/internal/network"
)

func init() {
	msg.RegisterBody(pingBody{})
}

type pingBody struct{ N int }

// TestTCPCarriesCausalContext asserts the wire codec round-trips the
// envelope's trace ID and Lamport stamp — the coordinates cross-node
// causal correlation depends on.
func TestTCPCarriesCausalContext(t *testing.T) {
	a, err := network.NewTCP("a", map[msg.Loc]string{"a": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := network.NewTCP("b", map[msg.Loc]string{"b": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer("b", b.Addr())
	b.SetPeer("a", a.Addr())

	env := msg.Envelope{
		From: "a", To: "b",
		M:     msg.M("ping", pingBody{N: 7}),
		Trace: "c0/3", LC: 42,
	}
	if err := a.Send(env); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.Receive():
		if got.Trace != "c0/3" || got.LC != 42 {
			t.Fatalf("causal context lost on the wire: %+v", got)
		}
		if body, ok := got.M.Body.(pingBody); !ok || body.N != 7 {
			t.Fatalf("payload corrupted: %+v", got.M)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}

	// The zero context costs nothing and arrives zero.
	if err := a.Send(msg.Envelope{From: "a", To: "b", M: msg.M("ping", pingBody{N: 8})}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.Receive():
		if got.Trace != "" || got.LC != 0 {
			t.Fatalf("zero context mutated on the wire: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second message never arrived")
	}

	// Hub transports (in-process deployments) preserve it too.
	hub := network.NewHub()
	ta, err := hub.Register("ha")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := hub.Register("hb")
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	defer tb.Close()
	if err := ta.Send(msg.Envelope{From: "ha", To: "hb", M: msg.M("ping", pingBody{N: 9}), Trace: "t", LC: 5}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-tb.Receive():
		if got.Trace != "t" || got.LC != 5 {
			t.Fatalf("hub dropped causal context: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hub message never arrived")
	}
}
