package network

import (
	"fmt"
	"testing"
	"time"

	"shadowdb/internal/msg"
)

type wireBody struct {
	N int
	S string
}

func recvOne(t *testing.T, tr Transport) msg.Envelope {
	t.Helper()
	select {
	case env, ok := <-tr.Receive():
		if !ok {
			t.Fatal("transport closed")
		}
		return env
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for envelope")
		return msg.Envelope{}
	}
}

func TestHubRoundTrip(t *testing.T) {
	h := NewHub()
	defer func() { _ = h.Close() }()
	a, err := h.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(msg.Envelope{To: "b", M: msg.M("hi", 42)}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b)
	if env.From != "a" || env.M.Hdr != "hi" || env.M.Body != 42 {
		t.Errorf("env = %+v", env)
	}
}

func TestHubDuplicateRegistration(t *testing.T) {
	h := NewHub()
	defer func() { _ = h.Close() }()
	if _, err := h.Register("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("x"); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestHubDropsUnknownDestination(t *testing.T) {
	h := NewHub()
	defer func() { _ = h.Close() }()
	a, _ := h.Register("a")
	if err := a.Send(msg.Envelope{To: "ghost", M: msg.M("x", nil)}); err != nil {
		t.Fatalf("Send to unknown errored: %v", err)
	}
	if h.Dropped.Load() != 1 {
		t.Errorf("Dropped = %d", h.Dropped.Load())
	}
}

func TestHubCloseUnblocksReceivers(t *testing.T) {
	h := NewHub()
	a, _ := h.Register("a")
	done := make(chan struct{})
	go func() {
		for range a.Receive() {
		}
		close(done)
	}()
	_ = h.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("receiver not unblocked by Close")
	}
	if err := a.Send(msg.Envelope{To: "a", M: msg.M("x", nil)}); err == nil {
		t.Error("Send after Close succeeded")
	}
}

func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	msg.RegisterBody(wireBody{})
	// Bind ephemeral ports first, then rebuild the directory.
	tmp := map[msg.Loc]string{"a": "127.0.0.1:0", "b": "127.0.0.1:0"}
	ta, err := NewTCP("a", tmp)
	if err != nil {
		t.Fatal(err)
	}
	tbDir := map[msg.Loc]string{"a": ta.Addr(), "b": "127.0.0.1:0"}
	tb, err := NewTCP("b", tbDir)
	if err != nil {
		t.Fatal(err)
	}
	// Complete both directories now that ports are known.
	ta.SetPeer("b", tb.Addr())
	ta.SetPeer("a", ta.Addr())
	tb.SetPeer("b", tb.Addr())
	t.Cleanup(func() { _ = ta.Close(); _ = tb.Close() })
	return ta, tb
}

func TestTCPRoundTrip(t *testing.T) {
	ta, tb := newTCPPair(t)
	if err := ta.Send(msg.Envelope{To: "b", M: msg.M("req", wireBody{N: 7, S: "x"})}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, tb)
	if env.From != "a" || env.M.Hdr != "req" {
		t.Fatalf("env = %+v", env)
	}
	body, ok := env.M.Body.(wireBody)
	if !ok || body.N != 7 || body.S != "x" {
		t.Errorf("body = %#v", env.M.Body)
	}
	// And the reply direction (reusing the inbound side's dialer).
	if err := tb.Send(msg.Envelope{To: "a", M: msg.M("resp", wireBody{N: 8})}); err != nil {
		t.Fatal(err)
	}
	env = recvOne(t, ta)
	if env.M.Hdr != "resp" || env.M.Body.(wireBody).N != 8 {
		t.Errorf("reply = %+v", env)
	}
}

func TestTCPLoopback(t *testing.T) {
	ta, _ := newTCPPair(t)
	if err := ta.Send(msg.Envelope{To: "a", M: msg.M("self", wireBody{N: 1})}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, ta)
	if env.M.Hdr != "self" {
		t.Errorf("env = %+v", env)
	}
}

func TestTCPManyMessagesInOrder(t *testing.T) {
	ta, tb := newTCPPair(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := ta.Send(msg.Envelope{To: "b", M: msg.M("seq", wireBody{N: i})}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		env := recvOne(t, tb)
		if env.M.Body.(wireBody).N != i {
			t.Fatalf("message %d out of order: %+v", i, env)
		}
	}
}

func TestTCPUnknownPeerDropped(t *testing.T) {
	ta, _ := newTCPPair(t)
	if err := ta.Send(msg.Envelope{To: "ghost", M: msg.M("x", wireBody{})}); err != nil {
		t.Errorf("Send to unknown peer errored: %v", err)
	}
}

func TestTCPUnreachablePeerDropped(t *testing.T) {
	msg.RegisterBody(wireBody{})
	dir := map[msg.Loc]string{"a": "127.0.0.1:0", "dead": "127.0.0.1:1"}
	ta, err := NewTCP("a", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	if err := ta.Send(msg.Envelope{To: "dead", M: msg.M("x", wireBody{})}); err != nil {
		t.Errorf("Send to unreachable peer errored: %v", err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	// Kill b's listener mid-conversation, restart it on the same address,
	// and verify a's sends reach the reincarnated peer: dropConn plus
	// bounded redial backoff must re-establish the route without manual
	// intervention.
	msg.RegisterBody(wireBody{})
	ta, tb := newTCPPair(t)
	if err := ta.Send(msg.Envelope{To: "b", M: msg.M("warm", wireBody{N: 0})}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, tb)

	addr := tb.Addr()
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
	// Sends into the dead window are dropped (crash model), never errors.
	for i := 0; i < 5; i++ {
		if err := ta.Send(msg.Envelope{To: "b", M: msg.M("void", wireBody{N: i})}); err != nil {
			t.Fatalf("send into dead window errored: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	tb2, err := NewTCP("b", map[msg.Loc]string{"a": ta.Addr(), "b": addr})
	if err != nil {
		t.Fatalf("restart listener on %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = tb2.Close() })

	// Keep probing until a send lands on the restarted peer; the redial
	// cap bounds how long the backoff can defer the reconnect.
	deadline := time.After(10 * time.Second)
	probe := 0
	for {
		probe++
		if err := ta.Send(msg.Envelope{To: "b", M: msg.M("probe", wireBody{N: probe})}); err != nil {
			t.Fatal(err)
		}
		select {
		case env, ok := <-tb2.Receive():
			if !ok {
				t.Fatal("restarted transport closed")
			}
			if env.From != "a" || env.M.Hdr != "probe" {
				t.Fatalf("unexpected envelope after restart: %+v", env)
			}
			return
		case <-time.After(50 * time.Millisecond):
		case <-deadline:
			t.Fatal("peer restarted but sender never reconnected")
		}
	}
}

func TestTCPStaleConnWriteRetries(t *testing.T) {
	// A peer that crash-restarts leaves the sender holding a cached
	// connection that only a write can discover is dead. A send hitting
	// that stale connection must retry over a fresh dial instead of
	// dropping — a one-shot message (a recovery catch-up reply, say) has
	// no second send to trigger the redial.
	msg.RegisterBody(wireBody{})
	ta, tb := newTCPPair(t)
	if err := ta.Send(msg.Envelope{To: "b", M: msg.M("warm", wireBody{N: 0})}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, tb)

	addr := tb.Addr()
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
	tb2, err := NewTCP("b", map[msg.Loc]string{"a": ta.Addr(), "b": addr})
	if err != nil {
		t.Fatalf("restart listener on %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = tb2.Close() })

	// Two sends with a gap: the first write may still be accepted by the
	// kernel before the peer's RST lands, but by the second the stale
	// connection fails synchronously and the retry must deliver. Without
	// the retry neither message can ever reach tb2 (both target the dead
	// socket; the second is dropped).
	if err := ta.Send(msg.Envelope{To: "b", M: msg.M("one", wireBody{N: 1})}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := ta.Send(msg.Envelope{To: "b", M: msg.M("two", wireBody{N: 2})}); err != nil {
		t.Fatal(err)
	}
	select {
	case env, ok := <-tb2.Receive():
		if !ok {
			t.Fatal("restarted transport closed")
		}
		if env.From != "a" {
			t.Fatalf("unexpected envelope after restart: %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("single send after peer restart never delivered (stale connection not retried)")
	}
}

func TestTCPCloseIsIdempotent(t *testing.T) {
	ta, tb := newTCPPair(t)
	if err := ta.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ta.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ta.Send(msg.Envelope{To: "b", M: msg.M("x", wireBody{})}); err == nil {
		t.Error("Send after Close succeeded")
	}
	_ = tb
}

func TestTCPConcurrentSenders(t *testing.T) {
	// Multiple goroutines sending to one receiver must not corrupt
	// frames. (Writes of a frame use a single Write call.)
	ta, tb := newTCPPair(t)
	const senders, each = 4, 100
	errs := make(chan error, senders)
	for s := 0; s < senders; s++ {
		s := s
		go func() {
			for i := 0; i < each; i++ {
				if err := ta.Send(msg.Envelope{To: "b", M: msg.M("m", wireBody{N: s*1000 + i})}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for s := 0; s < senders; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < senders*each {
		select {
		case env, ok := <-tb.Receive():
			if !ok {
				t.Fatal("closed early")
			}
			if env.M.Hdr != "m" {
				t.Fatalf("corrupt frame: %+v", env)
			}
			got++
		case <-deadline:
			t.Fatalf("received %d of %d", got, senders*each)
		}
	}
}

func TestHubManyLocations(t *testing.T) {
	h := NewHub()
	defer func() { _ = h.Close() }()
	var trs []Transport
	for i := 0; i < 10; i++ {
		tr, err := h.Register(msg.Loc(fmt.Sprintf("n%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		trs = append(trs, tr)
	}
	// Ring broadcast.
	for i, tr := range trs {
		dest := msg.Loc(fmt.Sprintf("n%d", (i+1)%10))
		if err := tr.Send(msg.Envelope{To: dest, M: msg.M("ring", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, tr := range trs {
		env := recvOne(t, tr)
		want := (i + 9) % 10
		if env.M.Body != want {
			t.Errorf("n%d got %v, want %d", i, env.M.Body, want)
		}
	}
}
