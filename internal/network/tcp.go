package network

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"shadowdb/internal/flow"
	"shadowdb/internal/msg"
	"shadowdb/internal/netutil"
	"shadowdb/internal/obs"
)

// TCP is the distributed transport: one listener for inbound traffic and
// lazily established, automatically reconnecting outbound connections per
// destination. Frames are a 4-byte big-endian length followed by a
// gob-encoded msg.Envelope (bodies must be registered with
// msg.RegisterBody; the protocol packages expose RegisterWireTypes
// helpers).
type TCP struct {
	self      msg.Loc
	directory map[msg.Loc]string
	ln        net.Listener
	inbox     chan msg.Envelope

	mu      sync.Mutex
	conns   map[msg.Loc]net.Conn
	inbound map[net.Conn]bool
	redial  map[msg.Loc]*redialState
	// dialing holds, per peer with a dial currently in flight, a channel
	// closed when that dial resolves. Dials run outside mu (a 2s dial
	// timeout must never stall senders to healthy peers) and at most one
	// dial per peer is in flight: concurrent senders to the same peer
	// wait on the channel instead of stacking up redundant dials, and
	// once a failure has stamped the redial backoff window they fail
	// fast until it expires.
	dialing map[msg.Loc]chan struct{}
	// clock, when set via EnforceDeadlines, drops inbound envelopes
	// whose Deadline has already passed (nil = no enforcement).
	clock func() int64
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	// Metrics handles, cached once at construction (obs.Default registry).
	framesIn     *obs.Counter
	framesOut    *obs.Counter
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
	dials        *obs.Counter
	accepts      *obs.Counter
	drops        *obs.Counter
	connDrops    *obs.Counter
	backoffs     *obs.Counter
	expiredDrops *obs.Counter
	gConnsOut    *obs.Gauge
	gConnsIn     *obs.Gauge
	gInbox       *obs.Gauge
	gDialing     *obs.Gauge

	// lg logs connection lifecycle (dial failures, backoff, dead-conn
	// drops) under the transport's own node id.
	lg *obs.Logger
}

var _ Transport = (*TCP)(nil)

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 64 << 20

// redialBackoff is the shared redial policy: the delay doubles from
// 50ms per consecutive dial failure, capped at 3s so a restarted peer
// is re-discovered within a few seconds. Full jitter (keyed per peer)
// spreads the redial windows of many transports that lost the same
// peer at the same moment — e.g. every node of a cluster watching one
// replica restart — instead of hammering it in lockstep.
var redialBackoff = netutil.Backoff{Base: 50 * time.Millisecond, Cap: 3 * time.Second, Full: true}

// redialState tracks consecutive dial failures to one peer.
type redialState struct {
	fails int
	until time.Time
}

// NewTCP starts a TCP transport for self, listening on directory[self]
// and dialing peers through the directory.
func NewTCP(self msg.Loc, directory map[msg.Loc]string) (*TCP, error) {
	addr, ok := directory[self]
	if !ok {
		return nil, fmt.Errorf("network: no address for %q in directory", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	dir := make(map[msg.Loc]string, len(directory))
	for k, v := range directory {
		dir[k] = v
	}
	t := &TCP{
		self:      self,
		directory: dir,
		ln:        ln,
		inbox:     make(chan msg.Envelope, 4096),
		conns:     make(map[msg.Loc]net.Conn),
		inbound:   make(map[net.Conn]bool),
		redial:    make(map[msg.Loc]*redialState),
		dialing:   make(map[msg.Loc]chan struct{}),
		done:      make(chan struct{}),

		framesIn:     obs.C("net.frames_in"),
		framesOut:    obs.C("net.frames_out"),
		bytesIn:      obs.C("net.bytes_in"),
		bytesOut:     obs.C("net.bytes_out"),
		dials:        obs.C("net.dials"),
		accepts:      obs.C("net.accepts"),
		drops:        obs.C("net.send_drops"),
		connDrops:    obs.C("net.conn_drops"),
		backoffs:     obs.C("net.dial_backoffs"),
		expiredDrops: obs.C("net.expired_drops"),
		gConnsOut:    obs.G("net.conns_out"),
		gConnsIn:     obs.G("net.conns_in"),
		gInbox:       obs.G("net.inbox_depth"),
		gDialing:     obs.G("net.dial.inflight"),

		lg: obs.L("net").WithNode(self),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0" directories).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetPeer adds or updates a peer's address, e.g. after ephemeral ports
// are known.
func (t *TCP) SetPeer(l msg.Loc, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.directory[l] = addr
}

// EnforceDeadlines arms receive-side deadline enforcement: inbound
// envelopes whose Deadline (absolute nanoseconds on the deployment
// clock) has passed according to clock are dropped at the transport,
// before any handler spends work on them. The caller must supply the
// same clock that stamped the deadlines — in a live deployment that is
// wall time since the Unix epoch on every node. nil disables
// enforcement (the default; deployments without a shared clock base
// still enforce deadlines at the protocol hops, which use injected
// per-process clocks).
func (t *TCP) EnforceDeadlines(clock func() int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
}

// Send implements Transport. Connection failures drop the message (crash
// model); the next Send re-dials.
func (t *TCP) Send(env msg.Envelope) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	env.From = t.self
	if env.To == t.self {
		// Loopback without a socket.
		select {
		case t.inbox <- env:
			t.gInbox.Set(int64(len(t.inbox)))
		default:
			t.drops.Inc()
		}
		return nil
	}
	b, err := msg.Encode(env)
	if err != nil {
		return fmt.Errorf("send to %s: %w", env.To, err)
	}
	frame := make([]byte, 4+len(b))
	binary.BigEndian.PutUint32(frame, uint32(len(b)))
	copy(frame[4:], b)
	if !t.writeFrame(env.To, frame) {
		t.drops.Inc()
		return nil // unreachable peer: drop
	}
	t.framesOut.Inc()
	t.bytesOut.Add(int64(len(frame)))
	return nil
}

// writeFrame writes one frame to the peer, retrying once over a fresh
// dial when a cached connection turns out to be dead (a peer that
// crash-restarted leaves the old connection half-open; only a write
// notices). A peer that cannot be dialed at all stays dropped.
func (t *TCP) writeFrame(to msg.Loc, frame []byte) bool {
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := t.conn(to)
		if err != nil {
			return false
		}
		if _, err := conn.Write(frame); err == nil {
			return true
		}
		t.dropConn(to, conn)
	}
	return false
}

// SendBatch implements BatchSender: all envelopes (which must share one
// destination) travel as a single length-prefixed batch frame — one gob
// stream, one write — so a handler's fan-out to a peer costs one frame
// instead of one per message.
func (t *TCP) SendBatch(envs []msg.Envelope) error {
	if len(envs) == 0 {
		return nil
	}
	if len(envs) == 1 {
		return t.Send(envs[0])
	}
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	for i := range envs {
		envs[i].From = t.self
	}
	to := envs[0].To
	if to == t.self {
		for _, env := range envs {
			select {
			case t.inbox <- env:
				t.gInbox.Set(int64(len(t.inbox)))
			default:
				t.drops.Inc()
			}
		}
		return nil
	}
	b, err := msg.EncodeBatch(envs)
	if err != nil {
		return fmt.Errorf("send batch to %s: %w", to, err)
	}
	frame := make([]byte, 4+len(b))
	binary.BigEndian.PutUint32(frame, uint32(len(b)))
	copy(frame[4:], b)
	if !t.writeFrame(to, frame) {
		t.drops.Add(int64(len(envs)))
		return nil // unreachable peer: drop
	}
	t.framesOut.Inc()
	t.bytesOut.Add(int64(len(frame)))
	return nil
}

// Receive implements Transport.
func (t *TCP) Receive() <-chan msg.Envelope { return t.inbox }

// Close implements Transport. It closes the listener, every outbound
// connection, and every accepted connection (otherwise readLoops blocked
// in ReadFull would never exit and Close would deadlock).
func (t *TCP) Close() error {
	t.once.Do(func() {
		close(t.done)
		_ = t.ln.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			_ = c.Close()
		}
		t.conns = map[msg.Loc]net.Conn{}
		for c := range t.inbound {
			_ = c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
		close(t.inbox)
	})
	return nil
}

func (t *TCP) conn(to msg.Loc) (net.Conn, error) {
	for {
		t.mu.Lock()
		select {
		case <-t.done:
			t.mu.Unlock()
			return nil, ErrClosed
		default:
		}
		if c, ok := t.conns[to]; ok {
			t.mu.Unlock()
			return c, nil
		}
		addr, ok := t.directory[to]
		if !ok {
			t.mu.Unlock()
			return nil, fmt.Errorf("network: unknown destination %q", to)
		}
		// Bounded redial backoff: a peer that just refused a dial is not
		// dialed again until its window expires, so a crashed replica costs
		// senders a map lookup instead of a 2s dial timeout per message.
		if rs := t.redial[to]; rs != nil && time.Now().Before(rs.until) {
			t.backoffs.Inc()
			t.mu.Unlock()
			return nil, fmt.Errorf("network: %q in redial backoff", to)
		}
		ch, inflight := t.dialing[to]
		if !inflight {
			// Dial semaphore: this sender takes the peer's single dial
			// slot; the dial itself runs outside mu so a slow dial stalls
			// neither other senders nor traffic to healthy peers.
			ch = make(chan struct{})
			t.dialing[to] = ch
			t.gDialing.Add(1)
			t.mu.Unlock()
			return t.finishDial(to, addr, ch)
		}
		t.mu.Unlock()
		// Another sender is already dialing this peer: wait for its
		// outcome instead of stacking a redundant dial, then re-check
		// (the dial either registered a connection or stamped a backoff
		// window, so this loop terminates).
		select {
		case <-ch:
		case <-t.done:
			return nil, ErrClosed
		}
	}
}

// finishDial completes the single in-flight dial to one peer: it runs
// the dial outside mu, registers the connection (or the redial backoff
// window on failure), and wakes every sender waiting on ch.
func (t *TCP) finishDial(to msg.Loc, addr string, ch chan struct{}) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)

	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.dialing, to)
	t.gDialing.Add(-1)
	// Waiters woken by the close re-acquire mu before reading, so they
	// always observe the outcome registered below.
	defer close(ch)
	// Re-check done under mu: Close sweeps t.conns under this same lock,
	// so a connection registered here either happens before the sweep
	// (and is closed by it) or observes done closed and aborts. Without
	// this a Send racing Close could spawn a readLoop on a connection
	// nobody closes, and Close's wg.Wait would hang forever.
	select {
	case <-t.done:
		if c != nil {
			_ = c.Close()
		}
		return nil, ErrClosed
	default:
	}
	rs := t.redial[to]
	if err != nil {
		if rs == nil {
			rs = &redialState{}
			t.redial[to] = rs
		}
		rs.fails++
		// Full jitter keyed per peer: transports that lost the same peer
		// together spread their redial windows apart.
		d := redialBackoff.Delay(rs.fails-1, netutil.StrSeed(string(t.self)+"->"+string(to)))
		rs.until = time.Now().Add(d)
		if rs.fails == 1 {
			// First failure in a streak: the transition into backoff is
			// the interesting edge; subsequent doublings log at debug.
			t.lg.Warnf("dial %s (%s) failed, entering redial backoff: %v", to, addr, err)
		} else if t.lg.Enabled(obs.LevelDebug) {
			t.lg.Debugf("dial %s failed %d times, backoff %v", to, rs.fails, d)
		}
		return nil, err
	}
	if cur, ok := t.conns[to]; ok {
		// An inbound connection from the peer registered itself while we
		// dialed; keep it and discard ours (one connection per peer).
		_ = c.Close()
		return cur, nil
	}
	if rs != nil {
		t.lg.Infof("reconnected to %s after %d failed dials", to, rs.fails)
	}
	delete(t.redial, to)
	t.conns[to] = c
	t.dials.Inc()
	t.gConnsOut.Set(int64(len(t.conns)))
	// Connections are bidirectional: the peer may answer over this same
	// connection (it learns the return route from our envelopes), so the
	// dialer must read it too.
	t.wg.Add(1)
	go t.readLoop(c)
	return c, nil
}

func (t *TCP) dropConn(to msg.Loc, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.conns[to]; ok && cur == c {
		delete(t.conns, to)
		_ = c.Close()
		t.connDrops.Inc()
		t.gConnsOut.Set(int64(len(t.conns)))
		t.lg.Debugf("dropped dead connection to %s", to)
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.mu.Lock()
		t.inbound[conn] = true
		t.accepts.Inc()
		t.gConnsIn.Set(int64(len(t.inbound)))
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.gConnsIn.Set(int64(len(t.inbound)))
		t.mu.Unlock()
	}()
	hdr := make([]byte, 4)
	for {
		select {
		case <-t.done:
			return
		default:
		}
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > maxFrame {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		t.framesIn.Inc()
		t.bytesIn.Add(int64(4 + n))
		envs, err := msg.DecodeFrame(body)
		if err != nil {
			continue // corrupt frame: skip
		}
		t.mu.Lock()
		clock := t.clock
		t.mu.Unlock()
		for _, env := range envs {
			if clock != nil && flow.Expired(env.Deadline, clock()) {
				// Enforced deadline: the work is already late, so the
				// cheapest place to shed it is before the handler. The
				// sender's own deadline check is what turns this into a
				// terminal client outcome; here it is pure load shedding.
				t.expiredDrops.Inc()
				flow.MarkExpired()
				continue
			}
			// Learn the return route: peers not in the directory (clients
			// on ephemeral ports) are answered over their own inbound
			// connection. TCP is bidirectional; the first sender wins.
			if env.From != "" {
				t.mu.Lock()
				if _, known := t.conns[env.From]; !known {
					if _, listed := t.directory[env.From]; !listed {
						t.conns[env.From] = conn
					}
				}
				t.mu.Unlock()
			}
			select {
			case t.inbox <- env:
				t.gInbox.Set(int64(len(t.inbox)))
			case <-t.done:
				return
			}
		}
	}
}
