package runtime

import (
	"testing"
	"time"

	"shadowdb/internal/gpm"
	"shadowdb/internal/leaktest"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
)

// TestHostCloseReapsGoroutinesAndTimers closes a host with delayed
// directives still pending and asserts the loop goroutine and every
// outstanding timer are gone — the shutdown-hygiene contract.
func TestHostCloseReapsGoroutinesAndTimers(t *testing.T) {
	leaktest.Check(t, "shadowdb/internal/runtime.", "shadowdb/internal/network.")
	hub := network.NewHub()
	defer func() { _ = hub.Close() }()
	tr, err := hub.Register("x")
	if err != nil {
		t.Fatal(err)
	}
	var echo gpm.StepFunc
	echo = func(in msg.Msg) (gpm.Process, []msg.Directive) {
		// Every step re-arms a far-future timer: Close must cancel them.
		return echo, []msg.Directive{msg.SendAfter(time.Hour, "x", msg.M("tick", nil))}
	}
	h := NewHost("x", tr, echo)
	h.Obs = obs.New(64) // scoped: the gauge assertion below must not see other hosts
	h.Start()
	for i := 0; i < 5; i++ {
		h.Inject(msg.M("poke", i))
	}
	h.Emit([]msg.Directive{msg.SendAfter(time.Hour, "x", msg.M("tick", nil))})
	time.Sleep(20 * time.Millisecond) // let some steps run and arm timers
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if n := h.Obs.Gauge("runtime.timers_pending").Value(); n != 0 {
		t.Errorf("timers_pending = %d after Close, want 0", n)
	}
}

// TestHostOverTCPNoLeak runs two hosts over real TCP and asserts both
// packages wind down clean.
func TestHostOverTCPNoLeak(t *testing.T) {
	leaktest.Check(t, "shadowdb/internal/runtime.", "shadowdb/internal/network.")
	ta, err := network.NewTCP("a", map[msg.Loc]string{"a": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := network.NewTCP("b", map[msg.Loc]string{"b": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	ta.SetPeer("b", tb.Addr())
	tb.SetPeer("a", ta.Addr())
	msg.RegisterBody(pingBody{})
	got := make(chan msg.Msg, 16)
	var sink gpm.StepFunc
	sink = func(in msg.Msg) (gpm.Process, []msg.Directive) {
		got <- in
		return sink, nil
	}
	var fwd gpm.StepFunc
	fwd = func(in msg.Msg) (gpm.Process, []msg.Directive) {
		return fwd, []msg.Directive{msg.Send("b", in)}
	}
	ha := NewHost("a", ta, fwd)
	hb := NewHost("b", tb, sink)
	ha.Start()
	hb.Start()
	ha.Inject(msg.M("ping", pingBody{N: 7}))
	select {
	case m := <-got:
		if m.Body.(pingBody).N != 7 {
			t.Errorf("body = %+v", m.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never crossed the wire")
	}
	if err := ha.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hb.Close(); err != nil {
		t.Fatal(err)
	}
	_ = ta.Close()
	_ = tb.Close()
}

type pingBody struct{ N int }
