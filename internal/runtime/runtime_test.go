package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/gpm"
	"shadowdb/internal/leaktest"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/sqldb"
)

// TestCLKOverHub runs the Lamport-clock ring over the in-process network
// with real goroutines.
func TestCLKOverHub(t *testing.T) {
	hub := network.NewHub()
	defer func() { _ = hub.Close() }()
	spec := loe.ClkRing(3)
	var hosts []*Host
	hops := make(chan int, 1024)
	for _, l := range spec.Locs {
		tr, err := hub.Register(l)
		if err != nil {
			t.Fatal(err)
		}
		h := NewHost(l, tr, spec.Generator()(l))
		h.OnStep = func(in msg.Msg, outs []msg.Directive) {
			select {
			case hops <- in.Body.(loe.ClkBody).Val.(int):
			default:
			}
		}
		h.Start()
		hosts = append(hosts, h)
	}
	hosts[0].Inject(msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0}))
	seen := 0
	deadline := time.After(5 * time.Second)
	for seen < 10 {
		select {
		case <-hops:
			seen++
		case <-deadline:
			t.Fatalf("ring made only %d hops", seen)
		}
	}
	for _, h := range hosts {
		_ = h.Close()
	}
}

// deployPBR starts a full ShadowDB-PBR deployment (2 replicas + spare,
// 3 broadcast nodes) on a transport factory and returns the replicas and
// a submit/await client helper.
type pbrDeployment struct {
	hosts    map[msg.Loc]*Host
	replicas map[msg.Loc]*core.PBRReplica
	results  chan core.TxResult
	client   *core.Client
	cliHost  *Host
	mu       sync.Mutex
}

func deployPBR(t *testing.T, register func(msg.Loc) network.Transport, timing core.Timing) *pbrDeployment {
	t.Helper()
	dep := core.PBRDeployment{
		Pool:           []msg.Loc{"r1", "r2", "r3"},
		InitialMembers: 2,
		BcastNodes:     []msg.Loc{"b1", "b2", "b3"},
		Timing:         timing,
	}
	mkDB := func(slf msg.Loc) *sqldb.DB {
		db, err := sqldb.Open("h2:mem:" + string(slf))
		if err != nil {
			t.Fatal(err)
		}
		if slf != "r3" {
			if err := core.BankSetup(db, 100); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	sys := core.NewPBRSystem(dep, core.BankRegistry(), mkDB)
	d := &pbrDeployment{
		hosts:    make(map[msg.Loc]*Host),
		replicas: sys.Replicas,
		results:  make(chan core.TxResult, 256),
	}
	bgen := broadcast.Spec(sys.Bcast).Generator()
	for _, l := range dep.BcastNodes {
		h := NewHost(l, register(l), bgen(l))
		h.Start()
		d.hosts[l] = h
	}
	for _, l := range dep.Pool {
		r := sys.Replicas[l]
		h := NewHost(l, register(l), lockedProc{mu: &d.mu, p: r})
		h.Start()
		d.hosts[l] = h
		h.Emit(r.Start())
	}
	d.client = &core.Client{Slf: "cli", Mode: core.ModePBR, Replicas: dep.Pool, Retry: 300 * time.Millisecond}
	cliProc := core.ClientProc(d.client, func(res core.TxResult) { d.results <- res })
	d.cliHost = NewHost("cli", register("cli"), lockedProc{mu: &d.mu, p: cliProc})
	d.cliHost.Start()
	d.hosts["cli"] = d.cliHost
	return d
}

// lockedProc serializes Step calls across hosts so tests can inspect
// replica state without data races (each host otherwise steps its process
// from its own goroutine).
type lockedProc struct {
	mu *sync.Mutex
	p  gpm.Process
}

func (l lockedProc) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next, outs := l.p.Step(in)
	return lockedProc{mu: l.mu, p: next}, outs
}

func (l lockedProc) Halted() bool { return l.p.Halted() }

func (d *pbrDeployment) close() {
	for _, h := range d.hosts {
		_ = h.Close()
	}
}

func (d *pbrDeployment) submitAndAwait(t *testing.T, timeout time.Duration, typ string, args ...any) core.TxResult {
	t.Helper()
	d.cliHost.Inject(msg.M(core.HdrSubmit, core.SubmitBody{Type: typ, Args: args}))
	select {
	case res := <-d.results:
		return res
	case <-time.After(timeout):
		t.Fatalf("transaction %s timed out", typ)
		return core.TxResult{}
	}
}

func TestShadowDBPBROverHub(t *testing.T) {
	hub := network.NewHub()
	defer func() { _ = hub.Close() }()
	reg := func(l msg.Loc) network.Transport {
		tr, err := hub.Register(l)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	d := deployPBR(t, reg, core.Timing{
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   150 * time.Millisecond,
		ClientRetry:    200 * time.Millisecond,
	})
	defer d.close()

	for i := 0; i < 5; i++ {
		res := d.submitAndAwait(t, 5*time.Second, "deposit", int64(i), int64(10))
		if res.Aborted || res.Err != "" {
			t.Fatalf("tx %d failed: %+v", i, res)
		}
	}
	res := d.submitAndAwait(t, 5*time.Second, "balance", int64(0))
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1010) {
		t.Errorf("balance = %v", res.Rows)
	}
}

func TestShadowDBPBRCrashRecoveryOverHub(t *testing.T) {
	hub := network.NewHub()
	defer func() { _ = hub.Close() }()
	reg := func(l msg.Loc) network.Transport {
		tr, err := hub.Register(l)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	d := deployPBR(t, reg, core.Timing{
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   150 * time.Millisecond,
		ClientRetry:    200 * time.Millisecond,
	})
	defer d.close()

	if res := d.submitAndAwait(t, 5*time.Second, "deposit", int64(1), int64(5)); res.Err != "" {
		t.Fatal(res.Err)
	}
	// Kill the primary's host: real crash, messages to it are dropped.
	_ = d.hosts["r1"].Close()

	// The system must recover (detect, reconfigure through the broadcast
	// service, promote r2, state-transfer to r3) and then serve this:
	res := d.submitAndAwait(t, 20*time.Second, "deposit", int64(2), int64(7))
	if res.Aborted || res.Err != "" {
		t.Fatalf("post-crash tx failed: %+v", res)
	}
	d.mu.Lock()
	r2, r3 := d.replicas["r2"], d.replicas["r3"]
	if !r2.IsPrimary() {
		t.Errorf("new primary = %s, want r2", r2.ConfigNow().Primary())
	}
	if err := core.CheckStateAgreement(r2.Executor().DB, r3.Executor().DB); err != nil {
		t.Error(err)
	}
	d.mu.Unlock()
}

func TestShadowDBPBROverTCP(t *testing.T) {
	leaktest.Check(t, "shadowdb/internal/runtime.", "shadowdb/internal/network.")
	core.RegisterWireTypes()
	broadcast.RegisterWireTypes()

	// Bind every location on an ephemeral port, then share the directory.
	locs := []msg.Loc{"r1", "r2", "r3", "b1", "b2", "b3", "cli"}
	transports := make(map[msg.Loc]*network.TCP, len(locs))
	for _, l := range locs {
		tr, err := network.NewTCP(l, map[msg.Loc]string{l: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		transports[l] = tr
	}
	t.Cleanup(func() {
		for _, tr := range transports {
			_ = tr.Close()
		}
	})
	for _, a := range locs {
		for _, b := range locs {
			transports[a].SetPeer(b, transports[b].Addr())
		}
	}
	reg := func(l msg.Loc) network.Transport { return transports[l] }
	d := deployPBR(t, reg, core.Timing{
		HeartbeatEvery: 50 * time.Millisecond,
		SuspectAfter:   500 * time.Millisecond,
		ClientRetry:    500 * time.Millisecond,
	})
	defer d.close()

	for i := 0; i < 3; i++ {
		res := d.submitAndAwait(t, 10*time.Second, "deposit", int64(i), int64(3))
		if res.Aborted || res.Err != "" {
			t.Fatalf("tx over TCP failed: %+v", res)
		}
	}
	res := d.submitAndAwait(t, 10*time.Second, "balance", int64(1))
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1003) {
		t.Errorf("balance over TCP = %v", res.Rows)
	}
	d.mu.Lock()
	if err := core.CheckStateAgreement(
		d.replicas["r1"].Executor().DB, d.replicas["r2"].Executor().DB); err != nil {
		t.Error(err)
	}
	d.mu.Unlock()
}

func TestSMROverHub(t *testing.T) {
	hub := network.NewHub()
	defer func() { _ = hub.Close() }()
	bnodes := []msg.Loc{"b1", "b2", "b3"}
	rlocs := []msg.Loc{"r1", "r2", "r3"}
	mkDB := func(slf msg.Loc) *sqldb.DB {
		db, err := sqldb.Open("h2:mem:" + string(slf))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.BankSetup(db, 50); err != nil {
			t.Fatal(err)
		}
		return db
	}
	sys := core.NewSMRSystem(bnodes, rlocs, core.BankRegistry(), mkDB)
	var mu sync.Mutex
	var hosts []*Host
	mustReg := func(l msg.Loc) network.Transport {
		tr, err := hub.Register(l)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	bgen := broadcast.Spec(sys.Bcast).Generator()
	for _, l := range bnodes {
		h := NewHost(l, mustReg(l), bgen(l))
		h.Start()
		hosts = append(hosts, h)
	}
	for _, l := range rlocs {
		h := NewHost(l, mustReg(l), lockedProc{mu: &mu, p: sys.Replicas[l]})
		h.Start()
		hosts = append(hosts, h)
	}
	results := make(chan core.TxResult, 64)
	cli := &core.Client{Slf: "cli", Mode: core.ModeSMR, BcastNodes: bnodes, Retry: 300 * time.Millisecond}
	ch := NewHost("cli", mustReg("cli"), lockedProc{mu: &mu, p: core.ClientProc(cli, func(r core.TxResult) { results <- r })})
	ch.Start()
	hosts = append(hosts, ch)
	defer func() {
		for _, h := range hosts {
			_ = h.Close()
		}
	}()

	for i := 0; i < 4; i++ {
		ch.Inject(msg.M(core.HdrSubmit, core.SubmitBody{Type: "deposit", Args: []any{int64(1), int64(2)}}))
		select {
		case res := <-results:
			if res.Aborted || res.Err != "" {
				t.Fatalf("tx %d: %+v", i, res)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("tx %d timed out", i)
		}
	}
	// The client takes the FIRST answer; the other replicas may still be
	// applying the last delivery. Wait for convergence before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		caughtUp := true
		for _, r := range sys.Replicas {
			if r.Executor().Executed < 4 {
				caughtUp = false
			}
		}
		mu.Unlock()
		if caughtUp || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	var dbs []*sqldb.DB
	for _, r := range sys.Replicas {
		dbs = append(dbs, r.Executor().DB)
	}
	if err := core.CheckStateAgreement(dbs...); err != nil {
		t.Error(err)
	}
	if got, _ := dbs[0].Exec("SELECT balance FROM accounts WHERE id = 1"); len(got.Rows) == 1 {
		if got.Rows[0][0] != int64(1008) {
			t.Errorf("balance = %v, want 1008", got.Rows[0][0])
		}
	}
}

func TestHostEmitDelayed(t *testing.T) {
	hub := network.NewHub()
	defer func() { _ = hub.Close() }()
	tr, err := hub.Register("x")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan msg.Msg, 1)
	var rec gpm.StepFunc
	rec = func(in msg.Msg) (gpm.Process, []msg.Directive) {
		got <- in
		return rec, nil
	}
	h := NewHost("x", tr, rec)
	h.Start()
	defer func() { _ = h.Close() }()
	start := time.Now()
	h.Emit([]msg.Directive{msg.SendAfter(100*time.Millisecond, "x", msg.M("timer", nil))})
	select {
	case <-got:
		if since := time.Since(start); since < 80*time.Millisecond {
			t.Errorf("timer fired after %v, want >= 100ms", since)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timer never fired")
	}
	_ = fmt.Sprint()
}
