// Package runtime hosts GPM processes on real transports: each host runs
// one process in its own goroutine, feeding it inbound messages and
// emitting its directives (delayed directives become timers). This is the
// deployment layer of the cmd binaries; the same processes run unchanged
// in the reference runner, the model checker, and the simulator.
package runtime

import (
	"sync"
	"time"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
)

// Host runs one process at one location over a transport.
type Host struct {
	self msg.Loc
	tr   network.Transport
	mu   sync.Mutex
	proc gpm.Process
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	// OnStep, if set before Start, observes every delivery (testing).
	OnStep func(in msg.Msg, outs []msg.Directive)
	// Steps counts processed messages.
	Steps int64
}

// NewHost creates a host; call Start to begin processing.
func NewHost(self msg.Loc, tr network.Transport, p gpm.Process) *Host {
	return &Host{self: self, tr: tr, proc: p, done: make(chan struct{})}
}

// Self returns the hosted location.
func (h *Host) Self() msg.Loc { return h.self }

// Start launches the processing goroutine.
func (h *Host) Start() {
	h.wg.Add(1)
	go h.loop()
}

// Inject feeds a local message to the process (e.g. boot directives).
func (h *Host) Inject(m msg.Msg) {
	_ = h.tr.Send(msg.Envelope{From: h.self, To: h.self, M: m})
}

// Emit sends directives on the host's transport, turning delays into
// timers.
func (h *Host) Emit(outs []msg.Directive) {
	for _, o := range outs {
		o := o
		if o.Delay <= 0 {
			_ = h.tr.Send(msg.Envelope{From: h.self, To: o.Dest, M: o.M})
			continue
		}
		timer := time.AfterFunc(o.Delay, func() {
			select {
			case <-h.done:
			default:
				_ = h.tr.Send(msg.Envelope{From: h.self, To: o.Dest, M: o.M})
			}
		})
		_ = timer // fires once; dropped sends after Close are harmless
	}
}

func (h *Host) loop() {
	defer h.wg.Done()
	for {
		select {
		case <-h.done:
			return
		case env, ok := <-h.tr.Receive():
			if !ok {
				return
			}
			h.mu.Lock()
			next, outs := h.proc.Step(env.M)
			h.proc = next
			h.Steps++
			h.mu.Unlock()
			if h.OnStep != nil {
				h.OnStep(env.M, outs)
			}
			h.Emit(outs)
		}
	}
}

// Close stops the host and its transport.
func (h *Host) Close() error {
	h.once.Do(func() {
		close(h.done)
		_ = h.tr.Close()
		h.wg.Wait()
	})
	return nil
}

// Process returns the current process value (for state inspection in
// tests after Close).
func (h *Host) Process() gpm.Process {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.proc
}
