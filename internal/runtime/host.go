// Package runtime hosts GPM processes on real transports: each host runs
// one process in its own goroutine, feeding it inbound messages and
// emitting its directives (delayed directives become timers). This is the
// deployment layer of the cmd binaries; the same processes run unchanged
// in the reference runner, the model checker, and the simulator.
package runtime

import (
	"sync"
	"time"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
)

// Host runs one process at one location over a transport.
type Host struct {
	self msg.Loc
	tr   network.Transport
	mu   sync.Mutex
	proc gpm.Process
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	// OnStep, if set before Start, observes every delivery (testing).
	OnStep func(in msg.Msg, outs []msg.Directive)
	// Steps counts processed messages.
	Steps int64
	// Obs receives the host's metrics and step trace events. Set before
	// Start to scope it (tests, benchmarks); defaults to obs.Default.
	Obs *obs.Obs

	steps  *obs.Counter
	stepNS *obs.Histogram

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{}
}

// NewHost creates a host; call Start to begin processing.
func NewHost(self msg.Loc, tr network.Transport, p gpm.Process) *Host {
	return &Host{
		self:   self,
		tr:     tr,
		proc:   p,
		done:   make(chan struct{}),
		timers: make(map[*time.Timer]struct{}),
	}
}

// Self returns the hosted location.
func (h *Host) Self() msg.Loc { return h.self }

// Start launches the processing goroutine.
func (h *Host) Start() {
	if h.Obs == nil {
		h.Obs = obs.Default
	}
	h.steps = h.Obs.Counter("runtime.steps")
	h.stepNS = h.Obs.Histogram("runtime.step_ns")
	h.Obs.Logger("runtime").WithNode(h.self).Infof("host started")
	h.wg.Add(1)
	go h.loop()
}

// Inject feeds a local message to the process (e.g. boot directives).
func (h *Host) Inject(m msg.Msg) {
	_ = h.tr.Send(msg.Envelope{From: h.self, To: h.self, M: m})
}

// Emit sends directives on the host's transport, turning delays into
// timers. Timers are tracked so Close can stop any still pending.
func (h *Host) Emit(outs []msg.Directive) { h.emit(outs, "") }

// emit sends directives with a causal context: every envelope carries the
// trace ID of the request whose handling produced it, plus a fresh
// Lamport stamp taken at the actual send (for timers, at fire time — the
// stamp still exceeds the clock at emission, as Lamport requires).
//
// On batch-capable transports, runs of consecutive immediate directives
// to the same destination coalesce into one wire frame; each envelope in
// the run still gets its own Lamport stamp, so the causal record is
// identical to per-envelope sends.
func (h *Host) emit(outs []msg.Directive, trace string) {
	bs, canBatch := h.tr.(network.BatchSender)
	for i := 0; i < len(outs); i++ {
		o := outs[i]
		if o.Delay <= 0 {
			if canBatch {
				j := i + 1
				for j < len(outs) && outs[j].Delay <= 0 && outs[j].Dest == o.Dest {
					j++
				}
				if j-i > 1 {
					envs := make([]msg.Envelope, 0, j-i)
					for _, d := range outs[i:j] {
						envs = append(envs, msg.Envelope{From: h.self, To: d.Dest, M: d.M, Trace: trace, LC: h.Obs.Tick(), Deadline: msg.DeadlineOf(d.M)})
					}
					_ = bs.SendBatch(envs)
					i = j - 1
					continue
				}
			}
			_ = h.tr.Send(msg.Envelope{From: h.self, To: o.Dest, M: o.M, Trace: trace, LC: h.Obs.Tick(), Deadline: msg.DeadlineOf(o.M)})
			continue
		}
		// The callback reads the timer pointer under timerMu, and the
		// assignment below completes inside the same critical section, so
		// an immediately-firing timer cannot observe it half-written.
		h.timerMu.Lock()
		var timer *time.Timer
		timer = time.AfterFunc(o.Delay, func() {
			h.timerMu.Lock()
			if h.timers != nil {
				delete(h.timers, timer)
				h.Obs.Gauge("runtime.timers_pending").Set(int64(len(h.timers)))
			}
			h.timerMu.Unlock()
			select {
			case <-h.done:
			default:
				_ = h.tr.Send(msg.Envelope{From: h.self, To: o.Dest, M: o.M, Trace: trace, LC: h.Obs.Tick(), Deadline: msg.DeadlineOf(o.M)})
			}
		})
		if h.timers == nil { // closed: stop immediately
			timer.Stop()
			h.timerMu.Unlock()
			continue
		}
		h.timers[timer] = struct{}{}
		h.Obs.Gauge("runtime.timers_pending").Set(int64(len(h.timers)))
		h.timerMu.Unlock()
	}
}

func (h *Host) loop() {
	defer h.wg.Done()
	for {
		select {
		case <-h.done:
			return
		case env, ok := <-h.tr.Receive():
			if !ok {
				return
			}
			// The receive event merges the sender's Lamport stamp into the
			// host's clock; the resulting value is this delivery's clock.
			lc := h.Obs.Witness(env.LC)
			var t0 time.Time
			if h.stepNS != nil {
				t0 = time.Now()
			}
			h.mu.Lock()
			next, outs := h.proc.Step(env.M)
			h.proc = next
			h.Steps++
			h.mu.Unlock()
			h.steps.Inc()
			if h.stepNS != nil {
				h.stepNS.ObserveDuration(time.Since(t0))
			}
			// The trace ID propagates hop-by-hop: outputs inherit the
			// incoming envelope's ID. A traced hop whose input has none
			// derives one from the message's request span — the birth of a
			// trace at the request's entry into the system.
			trace := env.Trace
			if h.Obs.Tracing() {
				m := env.M
				f := obs.Extract(m.Hdr, m.Body)
				kind := "step"
				if f.Kind != "" {
					kind = f.Kind
				}
				if trace == "" {
					trace = f.Span
				}
				h.Obs.Record(obs.Event{
					Loc: h.self, Layer: obs.LayerRuntime, Kind: kind,
					Hdr: m.Hdr, Slot: f.Slot, Ballot: f.Ballot, Span: f.Span,
					Trace: trace, LC: lc,
					M: &m, Outs: outs,
				})
			}
			if h.OnStep != nil {
				h.OnStep(env.M, outs)
			}
			h.emit(outs, trace)
		}
	}
}

// Close stops the host, its pending timers, and its transport.
func (h *Host) Close() error {
	h.once.Do(func() {
		close(h.done)
		h.timerMu.Lock()
		for t := range h.timers {
			t.Stop()
		}
		h.timers = nil
		if h.Obs != nil {
			h.Obs.Gauge("runtime.timers_pending").Set(0)
		}
		h.timerMu.Unlock()
		_ = h.tr.Close()
		h.wg.Wait()
		if h.Obs != nil {
			h.Obs.Logger("runtime").WithNode(h.self).Infof("host stopped")
		}
	})
	return nil
}

// Process returns the current process value (for state inspection in
// tests after Close).
func (h *Host) Process() gpm.Process {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.proc
}
