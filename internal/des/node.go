package des

import (
	"time"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Envelope is a message in flight inside the simulated cluster. Trace
// and LC mirror msg.Envelope's causal-correlation coordinates, so
// simulated traces carry the same per-request IDs and Lamport stamps as
// real TCP runs.
type Envelope struct {
	From msg.Loc
	To   msg.Loc
	M    msg.Msg
	// Trace is the per-request trace ID the send belongs to.
	Trace string
	// LC is the sender's Lamport clock at the send event.
	LC int64
}

// Handler is a node's message handler: it may mutate node-local state and
// returns the directives to send. It runs when the message's service time
// completes.
type Handler func(env Envelope) []msg.Directive

// ServiceFunc models the CPU cost of handling one message at a node.
type ServiceFunc func(env Envelope) time.Duration

// LinkSpec describes the network path between two nodes.
type LinkSpec struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is in bytes per second; zero means infinite.
	Bandwidth float64
}

// FaultVerdict is a fault hook's decision for one message (see
// Cluster.Fault). The zero value delivers the message untouched.
type FaultVerdict struct {
	// Drop discards the message.
	Drop bool
	// Delay postpones arrival past the link (jitter: later sends on the
	// same link may overtake it).
	Delay time.Duration
	// Dup delivers this many extra copies at the same arrival time.
	Dup int
}

// Node is a simulated machine: a FIFO run queue served by Cores workers.
// Messages wait in the queue while all cores are busy — the queueing that
// produces CPU-bound saturation curves.
type Node struct {
	Name    msg.Loc
	Cores   int
	cluster *Cluster
	handler Handler
	costed  CostedHandler
	service ServiceFunc
	busy    int
	queue   []Envelope
	crashed bool
	// epoch increments on every crash so work started before the crash
	// cannot complete after a restart.
	epoch int
	// OnRestart, when set, runs inside Restart after the crash flag
	// clears; restarts with state loss use it to rebuild the node's
	// process from its initial state (see Rebind / RebindCosted).
	OnRestart func(lostState bool)
	// lc is the node's Lamport clock (the sim is single-threaded, so a
	// plain int64 suffices).
	lc int64
	// Processed counts handled messages.
	Processed int64
	// BusyTime accumulates core-seconds of work.
	BusyTime time.Duration
}

// Cluster wires nodes together with links and routes directives.
type Cluster struct {
	Sim   *Sim
	nodes map[msg.Loc]*Node
	// Link returns the link spec for a pair; nil means 0-latency infinite
	// bandwidth everywhere.
	Link func(from, to msg.Loc) LinkSpec
	// SizeOf models the wire size of a message for bandwidth delays; nil
	// means size 0.
	SizeOf func(m msg.Msg) int
	// Dropped counts messages to unknown or crashed nodes.
	Dropped int64
	// Fault, when set, judges every inter-node message before it is
	// scheduled (self-sends — timers — are exempt): dropped messages
	// vanish, delays shift the arrival past the link, duplicates deliver
	// extra copies. fault.BindCluster installs a plan-driven hook.
	Fault func(from, to msg.Loc, m msg.Msg) FaultVerdict
	// FaultDrops counts messages the Fault hook dropped.
	FaultDrops int64
	// linkFree serializes each directed link: a message's transmission
	// occupies the link for size/bandwidth, so messages between one pair
	// of nodes stay FIFO (as on a TCP connection) and large transfers
	// queue behind each other.
	linkFree map[string]time.Duration
	// Obs receives step events with virtual timestamps; attach it with
	// Observe. Nil means no recording.
	Obs        *obs.Obs
	processed  *obs.Counter
	dropped    *obs.Counter
	faultDrops *obs.Counter
	gQueue     *obs.Gauge
}

// NewCluster creates an empty cluster on a simulator.
func NewCluster(sim *Sim) *Cluster {
	return &Cluster{
		Sim:      sim,
		nodes:    make(map[msg.Loc]*Node),
		linkFree: make(map[string]time.Duration),
	}
}

// AddNode registers a node with its handler and service model. A zero
// cores value means 1.
func (c *Cluster) AddNode(name msg.Loc, cores int, service ServiceFunc, handler Handler) *Node {
	if cores <= 0 {
		cores = 1
	}
	n := &Node{Name: name, Cores: cores, cluster: c, handler: handler, service: service}
	c.nodes[name] = n
	return n
}

// CostedHandler handles a message and reports the CPU time the handling
// cost, which the node charges as the message's service time. It lets
// service times depend on the real work done (e.g. SQL execution cost).
type CostedHandler func(env Envelope) ([]msg.Directive, time.Duration)

// AddCostedNode registers a node whose handler computes its own service
// time: the handler runs when a core picks the message up, the core stays
// busy for the returned duration, and the outputs are emitted when it
// frees.
func (c *Cluster) AddCostedNode(name msg.Loc, cores int, handler CostedHandler) *Node {
	if cores <= 0 {
		cores = 1
	}
	n := &Node{Name: name, Cores: cores, cluster: c, costed: handler}
	c.nodes[name] = n
	return n
}

// AddCostedProcess hosts a GPM process whose cost is read from a
// per-step cost reporter (ShadowDB replicas implement it).
func (c *Cluster) AddCostedProcess(name msg.Loc, cores int, p gpm.Process, cost func() time.Duration) *Node {
	proc := p
	return c.AddCostedNode(name, cores, func(env Envelope) ([]msg.Directive, time.Duration) {
		next, outs := proc.Step(env.M)
		proc = next
		return outs, cost()
	})
}

// AddProcess hosts a GPM process as a node, with the given per-message
// service model. Delayed directives become simulator timers.
func (c *Cluster) AddProcess(name msg.Loc, cores int, service ServiceFunc, p gpm.Process) *Node {
	proc := p
	return c.AddNode(name, cores, service, func(env Envelope) []msg.Directive {
		next, outs := proc.Step(env.M)
		proc = next
		return outs
	})
}

// Node returns a registered node (nil when absent).
func (c *Cluster) Node(name msg.Loc) *Node { return c.nodes[name] }

// Send routes a message: it arrives at the destination after the link
// delay and then waits for a core.
func (c *Cluster) Send(from, to msg.Loc, m msg.Msg) {
	c.SendAfter(0, from, to, m)
}

// SendAfter routes a message after an extra sender-side delay (the
// directive Delay of the process model). Transmission occupies the
// directed link serially: arrival = max(send time, link free) +
// transmission + latency, keeping per-pair delivery FIFO.
func (c *Cluster) SendAfter(extra time.Duration, from, to msg.Loc, m msg.Msg) {
	c.sendCtx(extra, from, to, m, "", 0)
}

// sendCtx is SendAfter carrying the sender's causal context (trace ID and
// Lamport stamp); node output paths use it so simulated envelopes stay
// causally correlated.
func (c *Cluster) sendCtx(extra time.Duration, from, to msg.Loc, m msg.Msg, trace string, lc int64) {
	sendAt := c.Sim.Now() + extra
	arrival := sendAt
	// Self-sends are local timers, not network traffic: they skip link
	// modeling entirely. Routing them through the serialized link would
	// let a long timer armed first hold the "link" past its own fire time
	// and push every shorter timer armed later behind it.
	if c.Link != nil && from != to {
		spec := c.Link(from, to)
		var tx time.Duration
		if spec.Bandwidth > 0 && c.SizeOf != nil {
			bytes := float64(c.SizeOf(m))
			tx = time.Duration(bytes / spec.Bandwidth * float64(time.Second))
		}
		key := string(from) + "\x00" + string(to)
		start := sendAt
		if free := c.linkFree[key]; free > start {
			start = free
		}
		c.linkFree[key] = start + tx
		arrival = start + tx + spec.Latency
	}
	copies := 1
	if c.Fault != nil && from != to {
		v := c.Fault(from, to, m)
		if v.Drop {
			c.FaultDrops++
			c.faultDrops.Inc()
			return
		}
		arrival += v.Delay
		copies += v.Dup
	}
	deliver := func() {
		n, ok := c.nodes[to]
		if !ok || n.crashed {
			c.Dropped++
			c.dropped.Inc()
			return
		}
		n.enqueue(Envelope{From: from, To: to, M: m, Trace: trace, LC: lc})
	}
	for i := 0; i < copies; i++ {
		c.Sim.At(arrival, deliver)
	}
}

// Crash marks the node failed: queued and future messages are dropped,
// and work in service never completes (even across a later Restart).
func (n *Node) Crash() {
	n.crashed = true
	n.queue = nil
	n.epoch++
}

// Restart clears the crash flag so the node accepts traffic again.
// With lostState false the node resumes with the state it crashed with
// (a process restart from a durable image); with true the OnRestart
// hook must rebuild the process from its initial state — use Rebind or
// RebindCosted inside the hook.
func (n *Node) Restart(lostState bool) {
	n.crashed = false
	if n.OnRestart != nil {
		n.OnRestart(lostState)
	}
}

// Rebind replaces the node's handler (state-loss restarts install a
// fresh process this way).
func (n *Node) Rebind(h Handler) { n.handler = h; n.costed = nil }

// RebindCosted replaces the node's costed handler.
func (n *Node) RebindCosted(h CostedHandler) { n.costed = h; n.handler = nil }

// Crashed reports the failure state.
func (n *Node) Crashed() bool { return n.crashed }

// QueueLen returns the number of messages waiting for a core.
func (n *Node) QueueLen() int { return len(n.queue) }

func (n *Node) enqueue(env Envelope) {
	n.queue = append(n.queue, env)
	n.cluster.gQueue.Set(int64(len(n.queue)))
	n.pump()
}

// pump starts queued work on free cores. Service completions carry the
// node's crash epoch: work begun before a crash is discarded even when
// the node restarted in the meantime.
func (n *Node) pump() {
	for n.busy < n.Cores && len(n.queue) > 0 {
		env := n.queue[0]
		n.queue = n.queue[1:]
		n.busy++
		ep := n.epoch
		if n.costed != nil {
			outs, svc := n.costed(env)
			n.BusyTime += svc
			n.cluster.Sim.After(svc, func() {
				n.busy--
				if !n.crashed && n.epoch == ep {
					n.Processed++
					n.finish(env, outs)
				}
				n.pump()
			})
			continue
		}
		svc := time.Duration(0)
		if n.service != nil {
			svc = n.service(env)
		}
		n.BusyTime += svc
		n.cluster.Sim.After(svc, func() {
			n.busy--
			if !n.crashed && n.epoch == ep {
				n.Processed++
				outs := n.handler(env)
				n.finish(env, outs)
			}
			n.pump()
		})
	}
}

// finish completes one delivery: it merges the sender's Lamport stamp
// into the node's clock, records the step event, and emits the outputs
// with the inherited (or freshly derived) trace ID and per-send stamps.
func (n *Node) finish(env Envelope, outs []msg.Directive) {
	if env.LC >= n.lc {
		n.lc = env.LC + 1
	} else {
		n.lc++
	}
	trace := n.cluster.observeStep(n.Name, env, outs, n.lc)
	for _, o := range outs {
		n.lc++
		n.cluster.sendCtx(o.Delay, n.Name, o.Dest, o.M, trace, n.lc)
	}
}

// Inject delivers an external message to a node at the current time.
func (c *Cluster) Inject(to msg.Loc, m msg.Msg) { c.Send("external", to, m) }

// SpawnSystem hosts every location of a GPM system on the cluster with a
// shared service model and core count.
func (c *Cluster) SpawnSystem(sys gpm.System, cores int, service ServiceFunc) {
	for _, l := range sys.Locs {
		c.AddProcess(l, cores, service, sys.Gen(l))
	}
}
