// Package des is a discrete-event simulator standing in for the paper's
// evaluation cluster (quad-core 3.6 GHz Xeons on a gigabit switch, Section
// IV). Protocol code runs unmodified as GPM processes on simulated nodes;
// what the simulator models is the environment:
//
//   - per-node CPU: each node has a fixed number of cores and a FIFO run
//     queue; handling a message occupies a core for a service time, so
//     saturated nodes produce the CPU-bound latency cliffs of Fig. 8/9;
//   - links: per-message latency plus size/bandwidth transmission delay;
//   - failures: crashed nodes silently drop input, as in the paper's
//     crash-failure model;
//   - lock resources with waiter queues and timeouts, used by the
//     database engines to reproduce lock-contention collapse (Fig. 9a).
//
// Service times for the broadcast-service execution modes are measured
// from the real interpreter/compiled implementations, not assumed; see
// DESIGN.md ("Substitutions").
package des

import (
	"container/heap"
	"time"
)

// Sim is the event loop: a virtual clock and a time-ordered queue of
// scheduled actions. It is single-threaded; all node handlers run inside
// Run.
type Sim struct {
	now    time.Duration
	seq    int64
	events eventHeap
	steps  int64
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Steps returns the number of events executed.
func (s *Sim) Steps() int64 { return s.steps }

// At schedules fn to run at absolute virtual time t (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue drains, the clock passes `until`
// (zero means no time bound), or maxEvents fire (zero means no bound).
// It returns the number of events executed.
func (s *Sim) Run(until time.Duration, maxEvents int64) int64 {
	var n int64
	for s.events.Len() > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		e := s.events[0]
		if until > 0 && e.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		s.steps++
		n++
		e.fn()
	}
	return n
}

// Idle reports whether no events are pending.
func (s *Sim) Idle() bool { return s.events.Len() == 0 }

type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
