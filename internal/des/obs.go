package des

import (
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Observability for the simulator. Observe attaches an Obs to the
// cluster and installs the virtual clock, so simulated runs emit the
// same event schema as real deployments — with virtual timestamps —
// making DES traces and TCP traces diffable and bridge-checkable.

// Observe attaches o to the cluster: step events are recorded with
// virtual timestamps (when tracing is enabled on o) and queue/processed
// metrics are registered. Pass a dedicated Obs — Observe repoints o's
// clock at the simulator, which would corrupt wall-clock latencies if o
// also serves live hosts.
func (c *Cluster) Observe(o *obs.Obs) {
	c.Obs = o
	// +1 keeps the first event off timestamp zero, which Record treats
	// as "stamp me".
	o.SetClock(func() int64 { return int64(c.Sim.Now()) + 1 })
	c.processed = o.Counter("des.processed")
	c.dropped = o.Counter("des.dropped")
	c.faultDrops = o.Counter("des.fault_drops")
	c.gQueue = o.Gauge("des.queue_depth")
}

// observeStep records one completed handler run at Lamport clock lc and
// returns the trace ID the node's outputs inherit: the incoming
// envelope's, or — when tracing is on and the envelope carries none — one
// derived from the message's request span (the birth of a trace).
func (c *Cluster) observeStep(loc msg.Loc, env Envelope, outs []msg.Directive, lc int64) string {
	c.processed.Inc()
	trace := env.Trace
	if !c.Obs.Tracing() {
		return trace
	}
	m := env.M
	f := obs.Extract(m.Hdr, m.Body)
	kind := f.Kind
	if kind == "" {
		kind = "step"
	}
	if trace == "" {
		trace = f.Span
	}
	c.Obs.Record(obs.Event{
		At: int64(c.Sim.Now()) + 1, Loc: loc, Layer: obs.LayerDES, Kind: kind,
		Hdr: m.Hdr, Slot: f.Slot, Ballot: f.Ballot, Span: f.Span,
		Trace: trace, LC: lc,
		M: &m, Outs: outs,
	})
	return trace
}
