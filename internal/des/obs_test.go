package des

import (
	"testing"
	"time"

	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// TestObserveRecordsVirtualTimeEvents attaches an Obs to a simulated
// cluster and checks that step events carry virtual timestamps and the
// same schema a live host emits.
func TestObserveRecordsVirtualTimeEvents(t *testing.T) {
	var s Sim
	c := NewCluster(&s)
	o := obs.New(256)
	o.EnableTracing(true)
	c.Observe(o)

	c.AddNode("srv", 1,
		func(Envelope) time.Duration { return 10 * ms },
		func(env Envelope) []msg.Directive {
			if env.M.Hdr == "req" {
				return []msg.Directive{msg.Send("cli", msg.M("resp", nil))}
			}
			return nil
		})
	c.AddNode("cli", 1, nil, func(Envelope) []msg.Directive { return nil })
	c.Inject("srv", msg.M("req", nil))
	c.Inject("srv", msg.M("req", nil))
	s.Run(0, 0)

	if got := o.Snapshot().Counters["des.processed"]; got < 3 {
		t.Errorf("des.processed = %d, want >= 3 (2 reqs + resp)", got)
	}
	evs := o.Events()
	if len(evs) < 3 {
		t.Fatalf("recorded %d events, want >= 3", len(evs))
	}
	// Virtual clock: the two requests complete at 10ms and 20ms, not at
	// wall-clock nanosecond scale.
	sawSrv := 0
	for _, e := range evs {
		if e.Layer != obs.LayerDES {
			t.Errorf("event layer = %q, want %q", e.Layer, obs.LayerDES)
		}
		if e.M == nil {
			t.Error("DES step event lost its message")
		}
		if e.Loc == "srv" {
			sawSrv++
			want := int64(time.Duration(sawSrv)*10*ms) + 1
			if e.At != want {
				t.Errorf("srv completion %d at %d, want virtual %d", sawSrv, e.At, want)
			}
		}
	}
	if sawSrv != 2 {
		t.Errorf("saw %d srv steps, want 2", sawSrv)
	}

	// Tracing off: metrics continue, recording stops.
	o.EnableTracing(false)
	before := len(o.Events())
	c.Inject("srv", msg.M("req", nil))
	s.Run(0, 0)
	if got := len(o.Events()); got != before {
		t.Errorf("events grew %d -> %d with tracing off", before, got)
	}
	if got := o.Snapshot().Counters["des.processed"]; got < 5 {
		t.Errorf("des.processed = %d after third request, want >= 5", got)
	}
}
