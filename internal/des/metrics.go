package des

import (
	"math"
	"sort"
	"time"
)

// LatencyRecorder accumulates request latencies and reports summary
// statistics — the per-curve data points of Figs. 8 and 9.
type LatencyRecorder struct {
	samples []time.Duration
}

// Add records one latency sample.
func (l *LatencyRecorder) Add(d time.Duration) { l.samples = append(l.samples, d) }

// Count returns the number of samples.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Mean returns the average latency (0 when empty).
func (l *LatencyRecorder) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Timeline bins event counts into fixed-width windows of virtual time —
// the instantaneous-throughput plot of Fig. 10(a).
type Timeline struct {
	// Bin is the window width.
	Bin    time.Duration
	counts map[int]int
	maxBin int
}

// NewTimeline creates a timeline with the given bin width.
func NewTimeline(bin time.Duration) *Timeline {
	return &Timeline{Bin: bin, counts: make(map[int]int), maxBin: -1}
}

// Mark records one event at virtual time t.
func (t *Timeline) Mark(at time.Duration) {
	b := int(at / t.Bin)
	t.counts[b]++
	if b > t.maxBin {
		t.maxBin = b
	}
}

// Series returns one value per bin from 0 through the last marked bin,
// scaled to events per second.
func (t *Timeline) Series() []float64 {
	if t.maxBin < 0 {
		return nil
	}
	persec := float64(time.Second) / float64(t.Bin)
	out := make([]float64, t.maxBin+1)
	for b, n := range t.counts {
		out[b] = float64(n) * persec
	}
	return out
}

// Throughput converts a completed-operation count over an elapsed virtual
// duration to operations/second.
func Throughput(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
