package des

import (
	"time"
)

// Resource is an exclusive lock living in virtual time, with a FIFO waiter
// queue and per-request timeouts. The database engines use one Resource
// per table (or per row) to reproduce the lock-contention behaviour the
// paper attributes to H2 and MySQL's memory engine: "This happens when
// contention is too high and transactions timeout when trying to lock the
// database table."
type Resource struct {
	sim     *Sim
	held    bool
	waiters []*lockReq
	// Timeouts counts requests that gave up waiting.
	Timeouts int64
	// Grants counts successful acquisitions.
	Grants int64
}

type lockReq struct {
	granted  func()
	timedOut func()
	done     bool // granted or timed out already
}

// NewResource creates a free resource on a simulator.
func NewResource(sim *Sim) *Resource { return &Resource{sim: sim} }

// Held reports whether the resource is currently held.
func (r *Resource) Held() bool { return r.held }

// Waiters returns the current queue length.
func (r *Resource) Waiters() int { return len(r.waiters) }

// Acquire requests the resource. granted runs (possibly immediately) when
// the lock is obtained; if timeout elapses first, timedOut runs instead
// and the request leaves the queue. A zero timeout waits forever.
func (r *Resource) Acquire(timeout time.Duration, granted, timedOut func()) {
	if !r.held {
		r.held = true
		r.Grants++
		granted()
		return
	}
	req := &lockReq{granted: granted, timedOut: timedOut}
	r.waiters = append(r.waiters, req)
	if timeout > 0 {
		r.sim.After(timeout, func() {
			if req.done {
				return
			}
			req.done = true
			r.Timeouts++
			if req.timedOut != nil {
				req.timedOut()
			}
		})
	}
}

// Release frees the resource and grants it to the next live waiter.
func (r *Resource) Release() {
	for len(r.waiters) > 0 {
		req := r.waiters[0]
		r.waiters = r.waiters[1:]
		if req.done {
			continue // timed out while queued
		}
		req.done = true
		r.Grants++
		// The resource stays held; ownership transfers to the waiter.
		req.granted()
		return
	}
	r.held = false
}

// Semaphore is a counting resource without timeouts, used to model a
// node's CPU cores around lock-held execution windows.
type Semaphore struct {
	sim     *Sim
	cap     int
	used    int
	waiters []func()
}

// NewSemaphore creates a semaphore with the given capacity.
func NewSemaphore(sim *Sim, capacity int) *Semaphore {
	if capacity <= 0 {
		capacity = 1
	}
	return &Semaphore{sim: sim, cap: capacity}
}

// Acquire runs granted when a unit is available (possibly immediately).
func (s *Semaphore) Acquire(granted func()) {
	if s.used < s.cap {
		s.used++
		granted()
		return
	}
	s.waiters = append(s.waiters, granted)
}

// Release frees one unit, granting the next waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		g := s.waiters[0]
		s.waiters = s.waiters[1:]
		g()
		return
	}
	if s.used > 0 {
		s.used--
	}
}
