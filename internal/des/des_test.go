package des

import (
	"testing"
	"time"

	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

const ms = time.Millisecond

func TestSimOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.After(5*ms, func() { order = append(order, 2) })
	s.After(1*ms, func() { order = append(order, 1) })
	s.After(5*ms, func() { order = append(order, 3) }) // FIFO tie-break
	s.Run(0, 0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 5*ms {
		t.Errorf("Now = %v, want 5ms", s.Now())
	}
}

func TestSimRunBounds(t *testing.T) {
	var s Sim
	n := 0
	var tick func()
	tick = func() {
		n++
		s.After(ms, tick)
	}
	s.After(0, tick)

	if got := s.Run(0, 10); got != 10 {
		t.Errorf("maxEvents bound executed %d, want 10", got)
	}
	s2 := &Sim{}
	n = 0
	s2.After(0, func() { n++; s2.After(10*ms, func() { n++ }) })
	s2.Run(5*ms, 0)
	if n != 1 {
		t.Errorf("time bound executed %d events, want 1", n)
	}
	if !s2.Idle() == true && s2.events.Len() != 1 {
		t.Error("pending event lost")
	}
}

func TestNodeServiceQueueing(t *testing.T) {
	// A 1-core node with 10ms service handles 3 simultaneous messages in
	// series: completions at 10, 20, 30ms.
	var s Sim
	c := NewCluster(&s)
	var completions []time.Duration
	c.AddNode("srv", 1,
		func(Envelope) time.Duration { return 10 * ms },
		func(env Envelope) []msg.Directive {
			completions = append(completions, s.Now())
			return nil
		})
	for i := 0; i < 3; i++ {
		c.Inject("srv", msg.M("req", i))
	}
	s.Run(0, 0)
	want := []time.Duration{10 * ms, 20 * ms, 30 * ms}
	if len(completions) != 3 {
		t.Fatalf("completions = %v", completions)
	}
	for i, w := range want {
		if completions[i] != w {
			t.Errorf("completion %d at %v, want %v", i, completions[i], w)
		}
	}
	if got := c.Node("srv").Processed; got != 3 {
		t.Errorf("Processed = %d", got)
	}
	if got := c.Node("srv").BusyTime; got != 30*ms {
		t.Errorf("BusyTime = %v", got)
	}
}

func TestMultiCoreParallelism(t *testing.T) {
	var s Sim
	c := NewCluster(&s)
	var last time.Duration
	c.AddNode("srv", 4,
		func(Envelope) time.Duration { return 10 * ms },
		func(Envelope) []msg.Directive { last = s.Now(); return nil })
	for i := 0; i < 4; i++ {
		c.Inject("srv", msg.M("req", i))
	}
	s.Run(0, 0)
	if last != 10*ms {
		t.Errorf("4 cores finished at %v, want 10ms (parallel)", last)
	}
}

func TestLinkLatencyAndBandwidth(t *testing.T) {
	var s Sim
	c := NewCluster(&s)
	c.Link = func(from, to msg.Loc) LinkSpec {
		return LinkSpec{Latency: 5 * ms, Bandwidth: 1000} // 1000 B/s
	}
	c.SizeOf = func(m msg.Msg) int { return 100 } // 100 B -> 100ms transmission
	var arrived time.Duration
	c.AddNode("dst", 1, nil, func(Envelope) []msg.Directive {
		arrived = s.Now()
		return nil
	})
	c.Send("src", "dst", msg.M("data", nil))
	s.Run(0, 0)
	want := 105 * ms
	if arrived != want {
		t.Errorf("arrived at %v, want %v", arrived, want)
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	var s Sim
	c := NewCluster(&s)
	handled := 0
	n := c.AddNode("srv", 1,
		func(Envelope) time.Duration { return 10 * ms },
		func(Envelope) []msg.Directive { handled++; return nil })
	c.Inject("srv", msg.M("a", nil)) // in service when crash hits
	c.Inject("srv", msg.M("b", nil)) // queued
	s.After(5*ms, n.Crash)
	c.Sim.After(20*ms, func() { c.Inject("srv", msg.M("c", nil)) })
	s.Run(0, 0)
	if handled != 0 {
		t.Errorf("crashed node handled %d messages", handled)
	}
	if c.Dropped == 0 {
		t.Error("no messages counted as dropped")
	}
}

func TestClusterHostsGPMSystem(t *testing.T) {
	// The CLK ring runs on the simulated cluster: virtual time advances by
	// link latency per hop.
	spec := loe.ClkRing(3)
	var s Sim
	c := NewCluster(&s)
	c.Link = func(from, to msg.Loc) LinkSpec { return LinkSpec{Latency: ms} }
	c.SpawnSystem(spec.System(), 1, nil)
	c.Inject(loe.RingLoc(0), msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0}))
	s.Run(10*ms, 0)
	// 1ms per hop: by 10ms the ring made ~10 hops.
	hops := c.Node(loe.RingLoc(0)).Processed +
		c.Node(loe.RingLoc(1)).Processed +
		c.Node(loe.RingLoc(2)).Processed
	if hops < 8 || hops > 11 {
		t.Errorf("ring made %d hops in 10ms, want ~10", hops)
	}
}

func TestDelayedDirectiveBecomesTimer(t *testing.T) {
	var s Sim
	c := NewCluster(&s)
	var at time.Duration
	c.AddNode("a", 1, nil, func(env Envelope) []msg.Directive {
		if env.M.Hdr == "start" {
			return []msg.Directive{msg.SendAfter(30*ms, "a", msg.M("timer", nil))}
		}
		at = s.Now()
		return nil
	})
	c.Inject("a", msg.M("start", nil))
	s.Run(0, 0)
	if at != 30*ms {
		t.Errorf("timer fired at %v, want 30ms", at)
	}
}

func TestResource(t *testing.T) {
	var s Sim
	r := NewResource(&s)

	var log []string
	r.Acquire(0, func() { log = append(log, "g1") }, nil)
	r.Acquire(0, func() { log = append(log, "g2") }, nil)
	r.Acquire(5*ms, func() { log = append(log, "g3") }, func() { log = append(log, "t3") })

	// Holder releases at 10ms: g2 gets it; g3 timed out at 5ms.
	s.After(10*ms, r.Release)
	s.Run(0, 0)
	want := []string{"g1", "t3", "g2"}
	if len(log) != 3 || log[0] != want[0] || log[1] != want[1] || log[2] != want[2] {
		t.Errorf("log = %v, want %v", log, want)
	}
	if r.Timeouts != 1 || r.Grants != 2 {
		t.Errorf("timeouts=%d grants=%d", r.Timeouts, r.Grants)
	}
}

func TestResourceReleaseFreesWhenNoWaiters(t *testing.T) {
	var s Sim
	r := NewResource(&s)
	got := false
	r.Acquire(0, func() {}, nil)
	r.Release()
	if r.Held() {
		t.Error("resource still held after release")
	}
	r.Acquire(0, func() { got = true }, nil)
	if !got {
		t.Error("free resource not granted immediately")
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * ms)
	}
	if l.Count() != 100 {
		t.Errorf("Count = %d", l.Count())
	}
	if got := l.Mean(); got != 50*ms+500*time.Microsecond {
		t.Errorf("Mean = %v", got)
	}
	if got := l.Percentile(50); got != 50*ms {
		t.Errorf("P50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*ms {
		t.Errorf("P99 = %v", got)
	}
	var empty LatencyRecorder
	if empty.Mean() != 0 || empty.Percentile(50) != 0 {
		t.Error("empty recorder must return zeros")
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(time.Second)
	for i := 0; i < 10; i++ {
		tl.Mark(500 * time.Millisecond) // bin 0
	}
	tl.Mark(2500 * time.Millisecond) // bin 2
	series := tl.Series()
	if len(series) != 3 {
		t.Fatalf("series length = %d, want 3", len(series))
	}
	if series[0] != 10 || series[1] != 0 || series[2] != 1 {
		t.Errorf("series = %v", series)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(500, 2*time.Second); got != 250 {
		t.Errorf("Throughput = %v", got)
	}
	if got := Throughput(500, 0); got != 0 {
		t.Errorf("Throughput(0 elapsed) = %v", got)
	}
}

// closed-loop client sanity: a 1-core server with 1ms service saturates
// at 1000 req/s regardless of client count.
func TestClosedLoopSaturation(t *testing.T) {
	var s Sim
	c := NewCluster(&s)
	done := 0
	c.AddNode("srv", 1,
		func(Envelope) time.Duration { return ms },
		func(env Envelope) []msg.Directive {
			done++
			return []msg.Directive{msg.Send(env.From, msg.M("resp", nil))}
		})
	for i := 0; i < 8; i++ {
		name := msg.Loc("client" + string(rune('0'+i)))
		c.AddNode(name, 1, nil, func(env Envelope) []msg.Directive {
			return []msg.Directive{msg.Send("srv", msg.M("req", nil))}
		})
		c.Inject(name, msg.M("resp", nil)) // kick off the loop
	}
	s.Run(time.Second, 0)
	tput := Throughput(done, s.Now())
	if tput < 900 || tput > 1100 {
		t.Errorf("saturated throughput = %.0f req/s, want ~1000", tput)
	}
	if q := c.Node("srv").QueueLen(); q == 0 {
		t.Log("queue drained exactly at the bound (acceptable)")
	}
}
