package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Dir is the file-backed Provider: each component gets a subdirectory
// of the root holding numbered WAL segments ("wal-00000003.log") plus a
// snapshot file ("snap"). One Dir serves a whole node's components.
type Dir struct {
	root string
	pol  SyncPolicy
	// BatchEvery is the group-commit size under SyncBatch: fsync once
	// per this many appends (default 8).
	BatchEvery int
}

// NewDir creates (if needed) the root directory and returns a provider
// with the given fsync policy.
func NewDir(root string, pol SyncPolicy) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Dir{root: root, pol: pol}, nil
}

// Open opens the named component store under the root, recovering from
// whatever a previous incarnation left behind: the snapshot is read and
// validated, covered segments are deleted, and each surviving segment
// is scanned record by record — a torn or corrupted tail is truncated
// to the last valid record.
func (d *Dir) Open(name string) (Stable, error) {
	be := d.BatchEvery
	if be <= 0 {
		be = 8
	}
	return openWAL(filepath.Join(d.root, name), d.pol, be)
}

// WAL record framing: [4B LE payload length][4B LE CRC32C][payload].
// The snapshot file is one such record whose payload is prefixed with
// the 8-byte segment number it covers through.
const recHeader = 8

// maxRecord bounds a single record (a defense against reading a torn
// length field as a multi-GB allocation).
const maxRecord = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func frameRecord(rec []byte) []byte {
	buf := make([]byte, recHeader+len(rec))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(rec, castagnoli))
	copy(buf[recHeader:], rec)
	return buf
}

// scanRecords walks the framed records in data, calling fn for each
// valid one, and returns the length of the valid prefix. A short
// header, impossible length, short payload, or CRC mismatch ends the
// scan — everything from that offset on is a torn tail.
func scanRecords(data []byte, fn func(rec []byte) error) (int, error) {
	off := 0
	for {
		if len(data)-off < recHeader {
			return off, nil
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n > maxRecord || int(n) > len(data)-off-recHeader {
			return off, nil
		}
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+recHeader : off+recHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off += recHeader + int(n)
	}
}

// walFile is the file-backed Stable for one component directory.
type walFile struct {
	mu  sync.Mutex
	dir string
	pol SyncPolicy
	be  int // group-commit size under SyncBatch

	f        *os.File // active segment
	seg      uint64   // active segment number
	unsynced int

	snap    []byte
	hasSnap bool

	// older holds fully written segments not yet covered by a snapshot
	// (possible after a crash between snapshot save and rotation
	// cleanup); Replay reads them before the active segment.
	older []string
}

func segName(seg uint64) string { return fmt.Sprintf("wal-%08d.log", seg) }

func parseSeg(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	return n, err == nil
}

func openWAL(dir string, pol SyncPolicy, batchEvery int) (*walFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &walFile{dir: dir, pol: pol, be: batchEvery}

	// Snapshot first: its header names the segment it covers through.
	var covers uint64
	if b, err := os.ReadFile(filepath.Join(dir, "snap")); err == nil {
		valid, _ := scanRecords(b, func(payload []byte) error {
			if len(payload) >= 8 {
				covers = binary.LittleEndian.Uint64(payload[:8])
				w.snap = append([]byte(nil), payload[8:]...)
				w.hasSnap = true
			}
			return nil
		})
		if valid == 0 || !w.hasSnap {
			// A corrupt snapshot is treated as absent; surviving
			// segments are still replayed best-effort. The atomic
			// tmp+rename+fsync write path makes this effectively
			// unreachable outside deliberate corruption.
			w.snap, w.hasSnap, covers = nil, false, 0
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}

	// Collect segments, drop those the snapshot covers, and truncate
	// any torn tail in the survivors.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if n, ok := parseSeg(e.Name()); ok {
			if n <= covers && w.hasSnap {
				_ = os.Remove(filepath.Join(dir, e.Name()))
				continue
			}
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for _, n := range segs {
		if err := truncateTorn(filepath.Join(dir, segName(n))); err != nil {
			return nil, err
		}
	}

	// The highest surviving segment becomes the active one; earlier
	// ones wait for the next snapshot to cover them.
	w.seg = covers + 1
	if len(segs) > 0 {
		w.seg = segs[len(segs)-1]
		for _, n := range segs[:len(segs)-1] {
			w.older = append(w.older, filepath.Join(dir, segName(n)))
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w.f = f
	lg.Infof("opened WAL in %s: active segment %d, %d older, snapshot=%v", dir, w.seg, len(w.older), w.hasSnap)
	return w, nil
}

// truncateTorn cuts the file down to its valid record prefix.
func truncateTorn(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	valid, _ := scanRecords(b, nil)
	if valid < len(b) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
		}
		mTruncs.Inc()
		lg.Warnf("truncated torn tail of %s: %d of %d bytes valid", path, valid, len(b))
	}
	return nil
}

func (w *walFile) Append(rec []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: %s: append on closed store", w.dir)
	}
	if _, err := w.f.Write(frameRecord(rec)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	mAppends.Inc()
	w.unsynced++
	switch w.pol {
	case SyncAlways:
		return w.syncLocked()
	case SyncBatch:
		if w.unsynced >= w.be {
			return w.syncLocked()
		}
	}
	return nil
}

func (w *walFile) syncLocked() error {
	if w.unsynced == 0 || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	mFsyncs.Inc()
	w.unsynced = 0
	return nil
}

// Sync flushes any unsynced appends — the covering fsync callers issue
// at an acknowledgement point (group commit, an acceptor reply). Under
// SyncNever it is a no-op: that policy is an explicit opt-out of
// durability, and an ack-point sync would silently reintroduce the
// cost the caller asked to shed. Under SyncAlways nothing is ever
// pending, so the call returns without touching the disk.
func (w *walFile) Sync() error {
	if w.pol == SyncNever {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *walFile) Replay(fn func(rec []byte) error) error {
	w.mu.Lock()
	files := append(append([]string(nil), w.older...), filepath.Join(w.dir, segName(w.seg)))
	w.mu.Unlock()
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("store: %w", err)
		}
		if _, err := scanRecords(b, func(rec []byte) error {
			mReplays.Inc()
			return fn(rec)
		}); err != nil {
			return err
		}
	}
	return nil
}

func (w *walFile) SaveSnapshot(snap []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: %s: snapshot on closed store", w.dir)
	}
	// 1. Write the snapshot to a temp file and fsync it.
	payload := make([]byte, 8+len(snap))
	binary.LittleEndian.PutUint64(payload[:8], w.seg)
	copy(payload[8:], snap)
	tmp := filepath.Join(w.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(frameRecord(payload)); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// 2. Atomically replace the previous snapshot and make the rename
	// durable. From this point recovery uses the new snapshot.
	if err := os.Rename(tmp, filepath.Join(w.dir, "snap")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	syncDir(w.dir)
	// 3. Rotate: open a fresh segment, then delete everything the
	// snapshot covers. A crash between these steps is safe — open
	// ignores segments at or below the snapshot's covers-through number.
	oldSeg, oldF := w.seg, w.f
	w.seg++
	nf, err := os.OpenFile(filepath.Join(w.dir, segName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.seg = oldSeg
		return fmt.Errorf("store: %w", err)
	}
	oldF.Close()
	w.f = nf
	w.unsynced = 0
	_ = os.Remove(filepath.Join(w.dir, segName(oldSeg)))
	for _, p := range w.older {
		_ = os.Remove(p)
	}
	w.older = nil
	w.snap = append([]byte(nil), snap...)
	w.hasSnap = true
	mSnaps.Inc()
	lg.Debugf("snapshot saved in %s (%d bytes), rotated to segment %d", w.dir, len(snap), w.seg)
	return nil
}

func (w *walFile) Snapshot() ([]byte, bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.hasSnap {
		return nil, false, nil
	}
	return append([]byte(nil), w.snap...), true, nil
}

func (w *walFile) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable.
// Best-effort: some platforms reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
