package store

import "sync"

// Mem is the in-memory Provider: state survives any number of
// Open/Close cycles within the process but not the process itself.
// This preserves the stack's pre-durability behaviour when no -data-dir
// is configured, and it is what the verify fuzzer and the DES use to
// model durable crash-restart — a "restarted" component is rebuilt from
// the same named store, exactly as a real restart reopens files.
type Mem struct {
	mu     sync.Mutex
	stores map[string]*memStable
}

// NewMem creates an empty in-memory provider.
func NewMem() *Mem {
	return &Mem{stores: make(map[string]*memStable)}
}

// Open returns the named store, creating it on first use.
func (m *Mem) Open(name string) (Stable, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.stores[name]
	if !ok {
		st = &memStable{}
		m.stores[name] = st
	}
	return st, nil
}

// Reset wipes every store. The verify checker calls it at the start of
// each schedule replay so state cannot leak between executions.
func (m *Mem) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stores = make(map[string]*memStable)
}

type memStable struct {
	mu      sync.Mutex
	recs    [][]byte
	snap    []byte
	hasSnap bool
}

func (s *memStable) Append(rec []byte) error {
	s.mu.Lock()
	s.recs = append(s.recs, append([]byte(nil), rec...))
	s.mu.Unlock()
	mAppends.Inc()
	return nil
}

func (s *memStable) Replay(fn func(rec []byte) error) error {
	s.mu.Lock()
	recs := s.recs
	s.mu.Unlock()
	for _, r := range recs {
		mReplays.Inc()
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

func (s *memStable) SaveSnapshot(snap []byte) error {
	s.mu.Lock()
	s.snap = append([]byte(nil), snap...)
	s.hasSnap = true
	s.recs = nil
	s.mu.Unlock()
	mSnaps.Inc()
	return nil
}

func (s *memStable) Snapshot() ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasSnap {
		return nil, false, nil
	}
	return append([]byte(nil), s.snap...), true, nil
}

func (s *memStable) Sync() error  { return nil }
func (s *memStable) Close() error { return nil }
