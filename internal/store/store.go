package store

import "fmt"

// SyncPolicy selects when the file-backed log calls fsync. Mem ignores
// it (there is no device to sync).
type SyncPolicy int

// The fsync policies, ordered strongest first.
const (
	// SyncAlways fsyncs after every append: no acknowledged record is
	// ever lost to power failure, at one device flush per record.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every few appends (and on Sync/Close): group
	// commit for the log. A power failure can lose the last unsynced
	// tail, which the CRC scan then truncates on open — a clean prefix,
	// never a corrupt state.
	SyncBatch
	// SyncNever leaves flushing to the OS. Crash-restart of the process
	// is still safe (the page cache survives); only power failure can
	// lose the tail.
	SyncNever
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy parses the -fsync flag spelling.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("store: unknown fsync policy %q (want always, batch, or never)", s)
}

// Stable is durable storage for one component: an appendable record log
// plus a single replaceable snapshot. Implementations guarantee that
// after a crash, Snapshot + Replay together reproduce a prefix of what
// was appended — never a torn or corrupted suffix.
type Stable interface {
	// Append journals one record. Under SyncAlways it is on stable
	// storage when Append returns.
	Append(rec []byte) error
	// Replay calls fn for every record appended after the last saved
	// snapshot, in append order. It returns fn's first error.
	Replay(fn func(rec []byte) error) error
	// SaveSnapshot atomically replaces the snapshot and truncates the
	// log records it covers (everything appended so far).
	SaveSnapshot(snap []byte) error
	// Snapshot returns the last saved snapshot (ok=false when none).
	Snapshot() (snap []byte, ok bool, err error)
	// Sync flushes any buffered appends to stable storage.
	Sync() error
	// Close releases resources. The store can be reopened by name.
	Close() error
}

// Provider opens named Stables: one per component ("acc-a1",
// "seq-b2", "smr-r1"). Opening the same name again — in particular
// after a crash — yields the surviving state.
type Provider interface {
	Open(name string) (Stable, error)
}
