package store

import "shadowdb/internal/obs"

// Store metrics on the process-wide registry (dots become underscores
// in the Prometheus exposition: store_wal_appends, ...).
var (
	mAppends = obs.C("store.wal.appends")
	mFsyncs  = obs.C("store.wal.fsyncs")
	mReplays = obs.C("store.wal.replays")
	mTruncs  = obs.C("store.wal.truncated")
	mSnaps   = obs.C("store.snapshots")

	lg = obs.L("store")
)
