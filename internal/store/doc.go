// Package store is the durability substrate of the replication stack: a
// checksummed, fsync-policied write-ahead log plus atomic snapshot
// files, behind the small Stable interface. The paper's safety argument
// leans on state surviving crashes ("an acceptor never forgets a
// promise"); store is where that obligation is discharged for every
// layer that claims durability — Synod acceptor state, the broadcast
// sequencer's decided-slot journal, and the SQL state behind core
// replicas.
//
// Two implementations share the interface:
//
//   - Mem keeps everything in process memory. It preserves the repo's
//     pre-durability behaviour (nothing outlives the process) while
//     still surviving a *simulated* restart — the verify fuzzer and the
//     DES model crash-restart by rebuilding a component from the same
//     Stable, which is exactly what a real restart does with files.
//   - Dir backs each component with a directory of length-prefixed,
//     CRC32C-checksummed WAL segments plus an atomically renamed
//     snapshot file. Torn tails are detected and truncated on open;
//     saving a snapshot rotates the log and deletes the covered prefix.
//
// # Invariants
//
//   - The write-ahead contract is the caller's: persist the mutation
//     with Append *before* emitting the message that reveals it (an
//     acceptor journals its promise before replying P1b; an SMR
//     replica under group commit parks client acks until a Sync covers
//     their slots — core.SetGroupCommit).
//   - Replay yields, in append order, every record not yet covered by
//     a snapshot; a record either replays whole and checksum-clean or
//     (torn tail) is truncated away — never delivered corrupted.
//   - SaveSnapshot is atomic (rename) and is the only operation that
//     discards log records, so a crash at any instant leaves either
//     the old snapshot plus full log or the new snapshot plus the
//     records appended after it.
//   - Sync covers the whole appended tail: after Sync returns, every
//     Append that returned before the Sync call is on stable storage,
//     whatever the configured policy.
//
// # Concurrency
//
// Each Stable guards its file (or buffer) state with one internal
// mutex, so Append/Sync/SaveSnapshot may race without corrupting the
// log — but ordering between a record and the message it must precede
// is the caller's to enforce, which in practice means each component
// drives its own Stable from its single event loop. Providers (NewDir,
// NewMem) may be shared; each Open returns an independent store.
package store
