package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openDir(t *testing.T, root string, pol SyncPolicy) Stable {
	t.Helper()
	d, err := NewDir(root, pol)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Open("comp")
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func replayAll(t *testing.T, st Stable) [][]byte {
	t.Helper()
	var recs [][]byte
	if err := st.Replay(func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWALAppendReplayReopen(t *testing.T) {
	root := t.TempDir()
	st := openDir(t, root, SyncAlways)
	for i := 0; i < 10; i++ {
		if err := st.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st = openDir(t, root, SyncAlways)
	recs := replayAll(t, st)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if string(r) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
	// Appends after recovery land after the replayed ones.
	if err := st.Append([]byte("rec-10")); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, st); len(got) != 11 || string(got[10]) != "rec-10" {
		t.Fatalf("after reopen+append: %d records, last %q", len(got), got[len(got)-1])
	}
	st.Close()
}

func walPath(t *testing.T, root string) string {
	t.Helper()
	var paths []string
	filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == ".log" {
			paths = append(paths, p)
		}
		return nil
	})
	if len(paths) != 1 {
		t.Fatalf("want exactly one wal segment, found %v", paths)
	}
	return paths[0]
}

func TestWALTornTailTruncated(t *testing.T) {
	root := t.TempDir()
	st := openDir(t, root, SyncNever)
	st.Append([]byte("alpha"))
	st.Append([]byte("beta"))
	st.Close()

	// A crash mid-write leaves a partial record: a header promising
	// more payload than the file holds.
	p := walPath(t, root)
	f, _ := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad}) // len=255, short
	f.Close()

	st = openDir(t, root, SyncNever)
	recs := replayAll(t, st)
	if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" {
		t.Fatalf("torn tail not truncated cleanly: %q", recs)
	}
	// The file itself was cut back, so new appends are readable.
	st.Append([]byte("gamma"))
	if got := replayAll(t, st); len(got) != 3 || string(got[2]) != "gamma" {
		t.Fatalf("append after truncation: %q", got)
	}
	st.Close()
}

func TestWALCorruptTailTruncated(t *testing.T) {
	root := t.TempDir()
	st := openDir(t, root, SyncAlways)
	st.Append([]byte("alpha"))
	st.Append([]byte("beta"))
	st.Append([]byte("gamma"))
	st.Close()

	// Flip a byte inside the last record's payload: the CRC no longer
	// matches and open must truncate back to the last valid record.
	p := walPath(t, root)
	b, _ := os.ReadFile(p)
	b[len(b)-1] ^= 0xff
	os.WriteFile(p, b, 0o644)

	st = openDir(t, root, SyncAlways)
	recs := replayAll(t, st)
	if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" {
		t.Fatalf("corrupt tail not truncated to last valid record: %q", recs)
	}
	st.Close()
}

func TestWALSnapshotRotatesAndCovers(t *testing.T) {
	root := t.TempDir()
	st := openDir(t, root, SyncBatch)
	st.Append([]byte("old-1"))
	st.Append([]byte("old-2"))
	if err := st.SaveSnapshot([]byte("state@2")); err != nil {
		t.Fatal(err)
	}
	// The snapshot covers everything appended so far: replay is empty.
	if got := replayAll(t, st); len(got) != 0 {
		t.Fatalf("replay after snapshot: %q, want none", got)
	}
	st.Append([]byte("new-1"))
	st.Close()

	// Rotation deleted the covered segment.
	if p := walPath(t, root); filepath.Base(p) != "wal-00000002.log" {
		t.Fatalf("active segment %s, want wal-00000002.log", p)
	}

	st = openDir(t, root, SyncBatch)
	snap, ok, err := st.Snapshot()
	if err != nil || !ok || !bytes.Equal(snap, []byte("state@2")) {
		t.Fatalf("snapshot after reopen: %q ok=%v err=%v", snap, ok, err)
	}
	if got := replayAll(t, st); len(got) != 1 || string(got[0]) != "new-1" {
		t.Fatalf("replay after reopen: %q, want [new-1]", got)
	}
	st.Close()
}

func TestWALSnapshotAtomicReplace(t *testing.T) {
	root := t.TempDir()
	st := openDir(t, root, SyncAlways)
	st.SaveSnapshot([]byte("v1"))
	st.Append([]byte("delta"))
	st.SaveSnapshot([]byte("v2"))
	st.Close()

	// No temp file survives, and the new snapshot wins.
	if _, err := os.Stat(filepath.Join(root, "comp", "snap.tmp")); !os.IsNotExist(err) {
		t.Fatalf("snap.tmp left behind: %v", err)
	}
	st = openDir(t, root, SyncAlways)
	snap, ok, _ := st.Snapshot()
	if !ok || string(snap) != "v2" {
		t.Fatalf("snapshot = %q ok=%v, want v2", snap, ok)
	}
	if got := replayAll(t, st); len(got) != 0 {
		t.Fatalf("replay = %q, want none (v2 covers the delta)", got)
	}
	st.Close()
}

func TestWALCorruptSnapshotTreatedAsAbsent(t *testing.T) {
	root := t.TempDir()
	st := openDir(t, root, SyncAlways)
	st.Append([]byte("kept"))
	st.SaveSnapshot([]byte("state"))
	st.Close()

	sp := filepath.Join(root, "comp", "snap")
	b, _ := os.ReadFile(sp)
	b[len(b)-1] ^= 0xff
	os.WriteFile(sp, b, 0o644)

	st = openDir(t, root, SyncAlways)
	if _, ok, _ := st.Snapshot(); ok {
		t.Fatal("corrupt snapshot reported as present")
	}
	st.Close()
}

func TestMemSurvivesReopenNotReset(t *testing.T) {
	m := NewMem()
	st, _ := m.Open("a")
	st.Append([]byte("one"))
	st.SaveSnapshot([]byte("snap"))
	st.Append([]byte("two"))
	st.Close()

	st2, _ := m.Open("a")
	snap, ok, _ := st2.Snapshot()
	if !ok || string(snap) != "snap" {
		t.Fatalf("mem snapshot = %q ok=%v", snap, ok)
	}
	var recs [][]byte
	st2.Replay(func(r []byte) error { recs = append(recs, r); return nil })
	if len(recs) != 1 || string(recs[0]) != "two" {
		t.Fatalf("mem replay = %q, want [two]", recs)
	}

	m.Reset()
	st3, _ := m.Open("a")
	if _, ok, _ := st3.Snapshot(); ok {
		t.Fatal("state survived Reset")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"batch", SyncBatch}, {"never", SyncNever}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}
