// Package baseline implements the comparison systems of the paper's
// evaluation (Section IV-B): a standalone database, H2-style built-in
// replication (synchronous statement shipping under table locks — "H2
// does not offer row-level locks", so it collapses under contention), and
// MySQL-style replication (primary commit under the storage engine's lock
// granularity, asynchronous shipping to the slave).
//
// The baselines run on the discrete-event simulator: transactions execute
// for real against sqldb instances (so state and aborts are genuine), and
// the simulator models lock waiting, lock-wait timeouts, multi-core
// execution, and replication round trips in virtual time.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// LockSpec names the lock keys a transaction needs, given the engine's
// granularity. Keys are acquired in sorted order (no deadlocks).
type LockSpec func(req core.TxRequest, mode sqldb.LockMode) []string

// BankLocks is the lock specification of the bank micro-benchmark.
func BankLocks(req core.TxRequest, mode sqldb.LockMode) []string {
	if mode == sqldb.TableLock {
		return []string{"accounts"}
	}
	if len(req.Args) > 0 {
		return []string{fmt.Sprintf("accounts/%v", req.Args[0])}
	}
	return []string{"accounts"}
}

// Mode selects a baseline replication scheme.
type Mode int

// The baseline modes.
const (
	// Standalone runs a single database with no replication.
	Standalone Mode = iota + 1
	// H2Repl ships every transaction synchronously to the backup while
	// the primary still holds its locks (the H2 replication behaviour
	// that saturates early).
	H2Repl
	// MySQLRepl commits locally under the engine's locks, answers the
	// client, and ships the transaction to the slave asynchronously.
	MySQLRepl
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Standalone:
		return "standalone"
	case H2Repl:
		return "h2-repl"
	case MySQLRepl:
		return "mysql-repl"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Server is a simulated database server (primary or backup).
type Server struct {
	Name msg.Loc
	sim  *des.Sim
	clu  *des.Cluster
	db   *sqldb.DB
	reg  core.Registry
	spec LockSpec
	mode Mode
	// backup is the replication target (primaries only).
	backup msg.Loc
	// lockTimeout overrides the engine's timeout when non-zero.
	lockTimeout time.Duration
	locks       map[string]*des.Resource
	cpu         *des.Semaphore
	ackWait     []ackEntry
	syncOrder   int64
	// Committed and Aborted count transaction outcomes.
	Committed int64
	Aborted   int64
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	Name        msg.Loc
	DB          *sqldb.DB
	Reg         core.Registry
	Locks       LockSpec
	Mode        Mode
	Backup      msg.Loc
	Cores       int
	LockTimeout time.Duration // 0 = engine default
}

// NewServer wires a database server into the cluster. The returned node
// has zero intake service time; CPU usage is modeled by the lock-held
// execution windows.
func NewServer(sim *des.Sim, clu *des.Cluster, cfg ServerConfig) *Server {
	cores := cfg.Cores
	if cores <= 0 {
		cores = 4 // the paper's quad-core Xeons
	}
	s := &Server{
		Name: cfg.Name, sim: sim, clu: clu,
		db: cfg.DB, reg: cfg.Reg, spec: cfg.Locks, mode: cfg.Mode,
		backup: cfg.Backup, lockTimeout: cfg.LockTimeout,
		locks: make(map[string]*des.Resource),
		cpu:   des.NewSemaphore(sim, cores),
	}
	clu.AddNode(cfg.Name, 64, nil, s.handle)
	return s
}

// DB exposes the server's database (state checks in tests).
func (s *Server) DB() *sqldb.DB { return s.db }

func (s *Server) timeout() time.Duration {
	if s.lockTimeout > 0 {
		return s.lockTimeout
	}
	return s.db.Engine().LockTimeout
}

func (s *Server) lock(key string) *des.Resource {
	r, ok := s.locks[key]
	if !ok {
		r = des.NewResource(s.sim)
		s.locks[key] = r
	}
	return r
}

// handle dispatches incoming messages. Client transactions start a lock
// flow; replicated transactions from a primary apply under this server's
// own locks.
func (s *Server) handle(env des.Envelope) []msg.Directive {
	switch env.M.Hdr {
	case core.HdrTx:
		req := env.M.Body.(core.TxRequest)
		s.runTx(req, nil)
	case core.HdrRepl:
		rep := env.M.Body.(core.Repl)
		primary := env.From
		s.runTx(rep.Req, func(committed bool) {
			s.clu.Send(s.Name, primary, msg.M(core.HdrReplAck, core.ReplAck{
				Order: rep.Order, From: s.Name,
			}))
			_ = committed
		})
	case core.HdrReplAck:
		ack := env.M.Body.(core.ReplAck)
		s.onAck(ack)
	}
	return nil
}

// runTx executes one transaction through the lock flow. done (if non-nil)
// runs at commit/abort instead of answering a client.
func (s *Server) runTx(req core.TxRequest, done func(committed bool)) {
	keys := s.spec(req, s.db.Engine().Lock)
	sort.Strings(keys)
	s.acquireAll(keys, 0, func() {
		// All locks held: burn a CPU core for the execution cost.
		s.cpu.Acquire(func() {
			before := s.db.Stats()
			res := core.RunProc(s.db, s.reg, req)
			cost := s.db.Engine().CostOf(s.db.Stats().Sub(before))
			s.sim.After(cost, func() {
				s.cpu.Release()
				s.finish(req, keys, res, done)
			})
		})
	}, func() {
		// Lock wait timed out: abort.
		s.Aborted++
		if done != nil {
			done(false)
			return
		}
		s.clu.Send(s.Name, req.Client, msg.M(core.HdrTxResult, core.TxResult{
			Client: req.Client, Seq: req.Seq, Aborted: true, Err: "lock timeout",
		}))
	})
}

// finish commits: replicates per the mode, releases locks, and answers.
func (s *Server) finish(req core.TxRequest, keys []string, res core.TxResult, done func(bool)) {
	release := func() {
		for i := len(keys) - 1; i >= 0; i-- {
			s.locks[keys[i]].Release()
		}
	}
	reply := func() {
		s.Committed++
		if done != nil {
			done(true)
			return
		}
		s.clu.Send(s.Name, req.Client, msg.M(core.HdrTxResult, res))
	}
	switch {
	case s.mode == H2Repl && s.backup != "":
		// Synchronous shipping while HOLDING the locks: the backup's ack
		// releases them. This serialization across the network round
		// trip is what caps H2 replication so early.
		s.syncOrder++
		order := s.syncOrder
		s.clu.Send(s.Name, s.backup, msg.M(core.HdrRepl, core.Repl{Order: order, Req: req}))
		// reply/release happen in onAck.
		s.ackWait = append(s.ackWait, ackEntry{order: order, release: release, reply: reply})
	case s.mode == MySQLRepl && s.backup != "":
		// Commit locally, answer, ship asynchronously.
		release()
		reply()
		s.clu.Send(s.Name, s.backup, msg.M(core.HdrRepl, core.Repl{Order: s.Committed, Req: req}))
	default:
		release()
		reply()
	}
}

type ackEntry struct {
	order   int64
	release func()
	reply   func()
}

func (s *Server) onAck(ack core.ReplAck) {
	for i, e := range s.ackWait {
		if e.order == ack.Order {
			s.ackWait = append(s.ackWait[:i], s.ackWait[i+1:]...)
			e.release()
			e.reply()
			return
		}
	}
}

// acquireAll takes keys[i:] in order, then runs ok; a timeout anywhere
// releases what was taken and runs fail.
func (s *Server) acquireAll(keys []string, i int, ok, fail func()) {
	if i == len(keys) {
		ok()
		return
	}
	s.lock(keys[i]).Acquire(s.timeout(), func() {
		s.acquireAll(keys, i+1, ok, func() {
			s.locks[keys[i]].Release()
			fail()
		})
	}, fail)
}
