package baseline

import (
	"fmt"
	"testing"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

const ms = time.Millisecond

// harness wires a baseline deployment with closed-loop clients that each
// run n deposit transactions.
type harness struct {
	sim     *des.Sim
	clu     *des.Cluster
	primary *Server
	backup  *Server
	done    map[msg.Loc]int
	aborted map[msg.Loc]int
}

func newHarness(t *testing.T, mode Mode, engine string, rows int) *harness {
	t.Helper()
	h := &harness{
		sim:     &des.Sim{},
		done:    make(map[msg.Loc]int),
		aborted: make(map[msg.Loc]int),
	}
	h.clu = des.NewCluster(h.sim)
	h.clu.Link = func(from, to msg.Loc) des.LinkSpec {
		return des.LinkSpec{Latency: 100 * time.Microsecond} // LAN
	}
	mk := func(name string) *sqldb.DB {
		db, err := sqldb.Open(engine + ":mem:" + name)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.BankSetup(db, rows); err != nil {
			t.Fatal(err)
		}
		return db
	}
	var backupLoc msg.Loc
	if mode != Standalone {
		backupLoc = "backup"
		h.backup = NewServer(h.sim, h.clu, ServerConfig{
			Name: backupLoc, DB: mk("backup"), Reg: core.BankRegistry(),
			Locks: BankLocks, Mode: Standalone,
		})
	}
	h.primary = NewServer(h.sim, h.clu, ServerConfig{
		Name: "primary", DB: mk("primary"), Reg: core.BankRegistry(),
		Locks: BankLocks, Mode: mode, Backup: backupLoc,
	})
	return h
}

// addClients starts c closed-loop clients running n transactions each,
// depositing on account (client*31+i) % rows.
func (h *harness) addClients(c, n, rows int) {
	for ci := 0; ci < c; ci++ {
		loc := msg.Loc(fmt.Sprintf("cl%d", ci))
		ci := ci
		seq := int64(0)
		sent := 0
		next := func() []msg.Directive {
			seq++
			sent++
			return []msg.Directive{msg.Send("primary", msg.M(core.HdrTx, core.TxRequest{
				Client: loc, Seq: seq, Type: "deposit",
				Args: []any{(ci*31 + sent) % rows, 1},
			}))}
		}
		h.clu.AddNode(loc, 1, nil, func(env des.Envelope) []msg.Directive {
			res := env.M.Body.(core.TxResult)
			if res.Aborted || res.Err != "" {
				h.aborted[loc]++
			} else {
				h.done[loc]++
			}
			if sent < n {
				return next()
			}
			return nil
		})
		h.clu.Sim.After(0, func() {
			for _, d := range next() {
				h.clu.Send(loc, d.Dest, d.M)
			}
		})
	}
}

func (h *harness) totals() (done, aborted int) {
	for _, v := range h.done {
		done += v
	}
	for _, v := range h.aborted {
		aborted += v
	}
	return done, aborted
}

func TestStandaloneCompletesAll(t *testing.T) {
	h := newHarness(t, Standalone, "h2", 100)
	h.addClients(4, 50, 100)
	h.sim.Run(0, 0)
	done, aborted := h.totals()
	if done+aborted != 200 {
		t.Fatalf("done=%d aborted=%d, want 200 total", done, aborted)
	}
	if aborted > 0 {
		t.Errorf("standalone aborted %d short transactions", aborted)
	}
	if h.primary.Committed != 200 {
		t.Errorf("committed = %d", h.primary.Committed)
	}
}

func TestH2ReplSyncBackupState(t *testing.T) {
	h := newHarness(t, H2Repl, "h2", 50)
	h.addClients(2, 30, 50)
	h.sim.Run(0, 0)
	done, _ := h.totals()
	if done == 0 {
		t.Fatal("no transactions completed")
	}
	// Synchronous replication: backup state equals primary state once
	// the run drains.
	if !sqldb.Equal(h.primary.DB(), h.backup.DB()) {
		t.Error("backup diverged from primary under sync replication")
	}
}

func TestMySQLReplAsyncBackupCatchesUp(t *testing.T) {
	h := newHarness(t, MySQLRepl, "mysql-innodb", 50)
	h.addClients(2, 30, 50)
	h.sim.Run(0, 0)
	done, _ := h.totals()
	if done != 60 {
		t.Fatalf("done = %d, want 60 (row locks, no contention)", done)
	}
	if !sqldb.Equal(h.primary.DB(), h.backup.DB()) {
		t.Error("slave did not converge after drain")
	}
}

func TestTableLockSerializesThroughput(t *testing.T) {
	// With table locks, 8 clients get no more throughput than the
	// serialized execution rate allows.
	h := newHarness(t, Standalone, "h2", 1000)
	h.addClients(8, 100, 1000)
	h.sim.Run(0, 0)
	done, _ := h.totals()
	elapsed := h.sim.Now()
	perTx := elapsed / time.Duration(done)
	eng := sqldb.Engines()["h2"]
	// Expected serialized floor: one statement + read + write per deposit.
	serial := eng.PerStatement + eng.PerRowRead + eng.PerRowWrite
	if perTx < serial {
		t.Errorf("per-tx %v faster than the serialized floor %v (locks not serializing)", perTx, serial)
	}
}

func TestRowLocksAllowParallelism(t *testing.T) {
	run := func(engine string) time.Duration {
		h := newHarness(t, Standalone, engine, 10_000)
		h.addClients(4, 200, 10_000)
		h.sim.Run(0, 0)
		return h.sim.Now()
	}
	tableTime := run("mysql-mem")
	rowTime := run("mysql-innodb")
	// InnoDB is slower per-op but parallelizes across 4 cores; on
	// distinct rows it must finish the same work in less virtual time
	// than the table-locked memory engine despite the higher per-op cost.
	if rowTime >= tableTime {
		t.Errorf("row-locked engine (%v) not faster than table-locked (%v) at 4 clients", rowTime, tableTime)
	}
}

func TestLockTimeoutsAbortUnderContention(t *testing.T) {
	h := newHarness(t, H2Repl, "h2", 10)
	// Tiny lock timeout: with many clients hammering one table lock that
	// is held across the replication round trip, timeouts must appear.
	h.primary.lockTimeout = 300 * time.Microsecond
	h.addClients(16, 40, 10)
	h.sim.Run(0, 0)
	_, aborted := h.totals()
	if aborted == 0 {
		t.Error("no lock-timeout aborts under heavy contention")
	}
}
