package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// The wire codec serializes Msg values with encoding/gob. Because Msg.Body
// is an interface value, every concrete body type that crosses a real
// network transport must be registered first. Protocol packages expose a
// RegisterWireTypes function and binaries call it at startup; in-process
// transports and the simulator never serialize and need no registration.
//
// A frame starts with one tag byte: frameEnvelope carries a single
// envelope, frameBatch a slice of envelopes bound for the same
// destination (the batching hot path coalesces a handler's fan-out into
// one frame per peer). Encoding scratch buffers are pooled; the encoder
// allocates only the returned frame.

var registry sync.Map // reflect-free guard against double registration panics

// RegisterBody registers a concrete message-body type with the wire codec.
// It is safe to call multiple times with the same value.
func RegisterBody(v any) {
	key := fmt.Sprintf("%T", v)
	if _, dup := registry.LoadOrStore(key, struct{}{}); dup {
		return
	}
	gob.Register(v)
}

// Envelope is what actually travels on the wire: the message plus its
// source and destination locations, so receivers can route and reply.
// Trace and LC are the causal-correlation coordinates of the send: Trace
// identifies the client request whose handling caused this message (empty
// until a traced hop derives one), and LC is the sender's Lamport clock
// at the send event. Both ride through the gob codec for free (gob omits
// zero-valued fields), so untraced deployments pay no wire overhead.
type Envelope struct {
	From Loc
	To   Loc
	M    Msg
	// Trace is the per-request trace ID the send belongs to ("" if the
	// causal chain has not passed a traced request yet).
	Trace string
	// LC is the sender's Lamport clock at the send event (0 when the
	// sender keeps no clock).
	LC int64
	// Deadline is the absolute deadline (nanoseconds on the deployment
	// clock, 0 = none) of the request this send serves, extracted from
	// the body via RegisterDeadline when the host stamps the envelope.
	// Transports may drop an expired envelope instead of delivering it:
	// work that can no longer meet its deadline should not consume
	// receive, decode, or apply capacity. Like Trace/LC it gob-encodes
	// to nothing when zero, so deadline-free deployments pay no wire
	// overhead.
	Deadline int64
}

// Frame tags: the first byte of every encoded frame.
const (
	frameEnvelope byte = 'E' // one Envelope
	frameBatch    byte = 'B' // []Envelope, same destination
)

// bufPool recycles encoding scratch buffers so the per-send garbage is
// just the returned frame, not the encoder's working set.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func encodeTagged(tag byte, v any) ([]byte, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	buf.WriteByte(tag)
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// Encode serializes one envelope into a wire frame.
func Encode(e Envelope) ([]byte, error) {
	b, err := encodeTagged(frameEnvelope, e)
	if err != nil {
		return nil, fmt.Errorf("encode envelope: %w", err)
	}
	return b, nil
}

// EncodeBatch serializes several envelopes into one wire frame. The
// caller groups envelopes by destination; the frame is decoded back into
// the individual envelopes by DecodeFrame, so batching is invisible above
// the transport.
func EncodeBatch(envs []Envelope) ([]byte, error) {
	b, err := encodeTagged(frameBatch, envs)
	if err != nil {
		return nil, fmt.Errorf("encode batch: %w", err)
	}
	return b, nil
}

// Decode deserializes a single-envelope frame produced by Encode.
func Decode(b []byte) (Envelope, error) {
	envs, err := DecodeFrame(b)
	if err != nil {
		return Envelope{}, err
	}
	if len(envs) != 1 {
		return Envelope{}, fmt.Errorf("decode envelope: frame carries %d envelopes", len(envs))
	}
	return envs[0], nil
}

// DecodeFrame deserializes a frame produced by Encode or EncodeBatch into
// its envelopes, in send order. Truncated or corrupted input returns an
// error, never a panic: gob's decoder can panic on some malformed type
// descriptors, so the whole decode runs under a recover guard.
func DecodeFrame(b []byte) (envs []Envelope, err error) {
	defer func() {
		if r := recover(); r != nil {
			envs, err = nil, fmt.Errorf("decode frame: malformed input: %v", r)
		}
	}()
	if len(b) == 0 {
		return nil, fmt.Errorf("decode frame: empty")
	}
	dec := gob.NewDecoder(bytes.NewReader(b[1:]))
	switch b[0] {
	case frameEnvelope:
		var e Envelope
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("decode envelope: %w", err)
		}
		return []Envelope{e}, nil
	case frameBatch:
		var envs []Envelope
		if err := dec.Decode(&envs); err != nil {
			return nil, fmt.Errorf("decode batch: %w", err)
		}
		return envs, nil
	default:
		return nil, fmt.Errorf("decode frame: unknown tag 0x%02x", b[0])
	}
}
