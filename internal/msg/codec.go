package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// The wire codec serializes Msg values with encoding/gob. Because Msg.Body
// is an interface value, every concrete body type that crosses a real
// network transport must be registered first. Protocol packages expose a
// RegisterWireTypes function and binaries call it at startup; in-process
// transports and the simulator never serialize and need no registration.

var registry sync.Map // reflect-free guard against double registration panics

// RegisterBody registers a concrete message-body type with the wire codec.
// It is safe to call multiple times with the same value.
func RegisterBody(v any) {
	key := fmt.Sprintf("%T", v)
	if _, dup := registry.LoadOrStore(key, struct{}{}); dup {
		return
	}
	gob.Register(v)
}

// Envelope is what actually travels on the wire: the message plus its
// source and destination locations, so receivers can route and reply.
// Trace and LC are the causal-correlation coordinates of the send: Trace
// identifies the client request whose handling caused this message (empty
// until a traced hop derives one), and LC is the sender's Lamport clock
// at the send event. Both ride through the gob codec for free (gob omits
// zero-valued fields), so untraced deployments pay no wire overhead.
type Envelope struct {
	From Loc
	To   Loc
	M    Msg
	// Trace is the per-request trace ID the send belongs to ("" if the
	// causal chain has not passed a traced request yet).
	Trace string
	// LC is the sender's Lamport clock at the send event (0 when the
	// sender keeps no clock).
	LC int64
}

// Encode serializes an envelope.
func Encode(e Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("encode envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes an envelope produced by Encode.
func Decode(b []byte) (Envelope, error) {
	var e Envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&e); err != nil {
		return Envelope{}, fmt.Errorf("decode envelope: %w", err)
	}
	return e, nil
}
