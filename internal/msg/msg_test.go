package msg

import (
	"testing"
	"testing/quick"
	"time"
)

func TestM(t *testing.T) {
	m := M("hello", 42)
	if m.Hdr != "hello" {
		t.Errorf("Hdr = %q, want %q", m.Hdr, "hello")
	}
	if m.Body != 42 {
		t.Errorf("Body = %v, want 42", m.Body)
	}
}

func TestDirectiveConstructors(t *testing.T) {
	t.Run("send is immediate", func(t *testing.T) {
		d := Send("a", M("x", nil))
		if d.Delay != 0 {
			t.Errorf("Delay = %v, want 0", d.Delay)
		}
		if d.Dest != "a" {
			t.Errorf("Dest = %q, want a", d.Dest)
		}
	})
	t.Run("send after carries delay", func(t *testing.T) {
		d := SendAfter(time.Second, "b", M("x", nil))
		if d.Delay != time.Second {
			t.Errorf("Delay = %v, want 1s", d.Delay)
		}
	})
}

func TestBroadcast(t *testing.T) {
	dests := []Loc{"a", "b", "c"}
	ds := Broadcast(dests, M("ping", 1))
	if len(ds) != len(dests) {
		t.Fatalf("len = %d, want %d", len(ds), len(dests))
	}
	for i, d := range ds {
		if d.Dest != dests[i] {
			t.Errorf("ds[%d].Dest = %q, want %q", i, d.Dest, dests[i])
		}
		if d.M.Hdr != "ping" {
			t.Errorf("ds[%d].M.Hdr = %q, want ping", i, d.M.Hdr)
		}
	}
}

func TestBroadcastEmpty(t *testing.T) {
	if ds := Broadcast(nil, M("x", nil)); len(ds) != 0 {
		t.Errorf("Broadcast(nil) = %v, want empty", ds)
	}
}

type testBody struct {
	N int
	S string
}

func TestCodecRoundTrip(t *testing.T) {
	RegisterBody(testBody{})
	// Registering twice must not panic.
	RegisterBody(testBody{})

	in := Envelope{From: "client", To: "server", M: M("req", testBody{N: 7, S: "hi"})}
	b, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.From != in.From || out.To != in.To || out.M.Hdr != in.M.Hdr {
		t.Errorf("round trip mismatch: %+v != %+v", out, in)
	}
	body, ok := out.M.Body.(testBody)
	if !ok {
		t.Fatalf("body type = %T, want testBody", out.M.Body)
	}
	if body != (testBody{N: 7, S: "hi"}) {
		t.Errorf("body = %+v", body)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	RegisterBody(testBody{})
	f := func(hdr string, n int, s string, from, to string) bool {
		in := Envelope{From: Loc(from), To: Loc(to), M: M(hdr, testBody{N: n, S: s})}
		b, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(b)
		if err != nil {
			return false
		}
		got, ok := out.M.Body.(testBody)
		return ok && got.N == n && got.S == s && out.M.Hdr == hdr &&
			out.From == Loc(from) && out.To == Loc(to)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Error("Decode(garbage) succeeded, want error")
	}
}

func TestStringers(t *testing.T) {
	if got := M("h", 1).String(); got != "h(1)" {
		t.Errorf("Msg.String = %q", got)
	}
	if got := Send("a", M("h", 1)).String(); got != "-> a: h(1)" {
		t.Errorf("Directive.String = %q", got)
	}
	if got := SendAfter(time.Second, "a", M("h", 1)).String(); got != "after 1s -> a: h(1)" {
		t.Errorf("delayed Directive.String = %q", got)
	}
}
