// Package msg defines the message vocabulary shared by every layer of the
// system: locations, headers, messages, and send directives.
//
// The vocabulary mirrors the paper's EventML/GPM interface. A process is a
// function from an input Msg to a replacement process plus a bag of
// Directives; a Directive is the triple <delay, destination, message> that
// appears in the Inductive Logical Form of Fig. 4 of the paper ("Variable d
// ... is a period of time the process must wait before sending the
// message. These delays are useful, e.g., to implement timers.").
package msg

import (
	"fmt"
	"time"
)

// Loc identifies a process location ("space" coordinate of an event in the
// Logic of Events). Locations are opaque names; transports map them to
// addresses.
type Loc string

// String implements fmt.Stringer.
func (l Loc) String() string { return string(l) }

// Msg is a headed message. The header plays the role of EventML's message
// headers: base classes pattern match on it and extract the body. Bodies
// are arbitrary Go values; wire transports serialize them with the codec in
// this package.
type Msg struct {
	// Hdr is the message header, e.g. "msg", "p1a", "propose".
	Hdr string
	// Body is the message payload.
	Body any
}

// M is shorthand for constructing a message.
func M(hdr string, body any) Msg { return Msg{Hdr: hdr, Body: body} }

// String implements fmt.Stringer.
func (m Msg) String() string { return fmt.Sprintf("%s(%v)", m.Hdr, m.Body) }

// Directive instructs the runtime to send a message to a destination after
// an optional delay. A zero delay means "send now"; a positive delay is the
// timer mechanism of the paper's process model.
type Directive struct {
	// Delay is how long the runtime must wait before sending.
	Delay time.Duration
	// Dest is the destination location.
	Dest Loc
	// M is the message to send.
	M Msg
}

// Send builds an immediate send directive, the analogue of EventML's
// msg'send constructor.
func Send(dest Loc, m Msg) Directive { return Directive{Dest: dest, M: m} }

// SendAfter builds a delayed send directive (a timer when dest is the
// sender itself).
func SendAfter(d time.Duration, dest Loc, m Msg) Directive {
	return Directive{Delay: d, Dest: dest, M: m}
}

// String implements fmt.Stringer.
func (d Directive) String() string {
	if d.Delay > 0 {
		return fmt.Sprintf("after %v -> %s: %s", d.Delay, d.Dest, d.M)
	}
	return fmt.Sprintf("-> %s: %s", d.Dest, d.M)
}

// Broadcast builds one immediate directive per destination, a convenience
// used by the consensus protocols which address quorums.
func Broadcast(dests []Loc, m Msg) []Directive {
	out := make([]Directive, 0, len(dests))
	for _, d := range dests {
		out = append(out, Send(d, m))
	}
	return out
}
