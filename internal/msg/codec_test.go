package msg

import (
	"testing"
)

func TestBatchFrameRoundTrip(t *testing.T) {
	RegisterBody(testBody{})
	in := []Envelope{
		{From: "a", To: "b", M: M("one", testBody{N: 1, S: "x"}), LC: 3},
		{From: "a", To: "b", M: M("two", testBody{N: 2, S: "y"}), Trace: "t1", LC: 4},
		{From: "a", To: "b", M: M("three", testBody{N: 3, S: "z"}), LC: 5},
	}
	frame, err := EncodeBatch(in)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	out, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d envelopes, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].M.Hdr != in[i].M.Hdr || out[i].LC != in[i].LC || out[i].Trace != in[i].Trace {
			t.Errorf("envelope %d: got %+v, want %+v", i, out[i], in[i])
		}
		body, ok := out[i].M.Body.(testBody)
		if !ok || body.N != i+1 {
			t.Errorf("envelope %d body = %#v", i, out[i].M.Body)
		}
	}
}

func TestDecodeFrameSingle(t *testing.T) {
	RegisterBody(testBody{})
	in := Envelope{From: "a", To: "b", M: M("h", testBody{N: 9})}
	frame, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(out) != 1 || out[0].M.Hdr != "h" {
		t.Fatalf("DecodeFrame = %+v", out)
	}
	// Decode must reject a batch frame: callers asking for exactly one
	// envelope should not silently drop the rest.
	batch, err := EncodeBatch([]Envelope{in, in})
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	if _, err := Decode(batch); err == nil {
		t.Error("Decode(batch frame) succeeded, want error")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, err := DecodeFrame(nil); err == nil {
		t.Error("DecodeFrame(nil) succeeded, want error")
	}
	if _, err := DecodeFrame([]byte{0x7f, 1, 2}); err == nil {
		t.Error("DecodeFrame(unknown tag) succeeded, want error")
	}
}

// The allocation budget of the hot path: encoding must allocate only the
// returned frame plus gob's per-call bookkeeping, with scratch buffers
// recycled through the pool, and a batch frame must amortize that
// bookkeeping across its envelopes.
func BenchmarkEncode(b *testing.B) {
	RegisterBody(testBody{})
	env := Envelope{From: "n1", To: "n2", M: M("px.p2a", testBody{N: 42, S: "value"}), LC: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBatch16(b *testing.B) {
	RegisterBody(testBody{})
	envs := make([]Envelope, 16)
	for i := range envs {
		envs[i] = Envelope{From: "n1", To: "n2", M: M("px.p2a", testBody{N: i, S: "value"}), LC: int64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBatch(envs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	RegisterBody(testBody{})
	frame, err := Encode(Envelope{From: "n1", To: "n2", M: M("px.p2a", testBody{N: 42, S: "value"})})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}
