package msg

import (
	"bytes"
	"testing"
)

// fuzzBody is a registered wire body so seed frames exercise the
// interface-decoding path that real protocol messages take.
type fuzzBody struct {
	N int
	S string
}

func init() { RegisterBody(fuzzBody{}) }

// FuzzDecodeFrame throws arbitrary bytes — and mutations of valid
// frames — at the frame decoder. The only acceptable outcomes are a
// decoded envelope slice or an error; any panic is a bug (a malicious
// or corrupted peer must not be able to crash the process).
func FuzzDecodeFrame(f *testing.F) {
	env := Envelope{From: "c1", To: "r1", M: M("hdr.fuzz", fuzzBody{N: 7, S: "x"}), Trace: "t", LC: 3}
	single, err := Encode(env)
	if err != nil {
		f.Fatal(err)
	}
	batch, err := EncodeBatch([]Envelope{env, {From: "c2", To: "r1", M: M("hdr.fuzz", fuzzBody{N: 9})}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(single)
	f.Add(batch)
	f.Add([]byte{})
	f.Add([]byte{frameEnvelope})
	f.Add([]byte{frameBatch, 0x00, 0xff})
	f.Add(single[:len(single)/2]) // truncated
	f.Add([]byte("Z arbitrary junk that is not a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		envs, err := DecodeFrame(data)
		if err != nil && envs != nil {
			t.Fatalf("DecodeFrame returned both envelopes and error: %v", err)
		}
		// A frame that decodes must re-encode and decode to the same
		// envelope count (round-trip sanity, not byte equality: gob
		// streams are not canonical).
		if err == nil {
			re, eerr := EncodeBatch(envs)
			if eerr != nil {
				return // bodies may be unregisterable values; fine
			}
			back, derr := DecodeFrame(re)
			if derr != nil || len(back) != len(envs) {
				t.Fatalf("round trip lost envelopes: %d -> %d (%v)", len(envs), len(back), derr)
			}
		}
	})
}

// Truncating a valid frame at every prefix length must yield an error
// or a clean decode — never a panic. (Deterministic companion to the
// fuzz target, so the property is enforced on every plain `go test`.)
func TestDecodeFrameTruncatedPrefixes(t *testing.T) {
	env := Envelope{From: "a", To: "b", M: M("hdr.fuzz", fuzzBody{N: 1, S: "payload"})}
	frame, err := EncodeBatch([]Envelope{env, env, env})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(frame); i++ {
		if _, err := DecodeFrame(frame[:i]); err == nil && i < len(frame) {
			// Some prefixes may decode fewer envelopes without error if
			// gob finds a clean boundary; that is acceptable. Panics are
			// the only failure and would already have crashed the test.
			continue
		}
	}
	// Flipping each byte must also never panic.
	for i := 0; i < len(frame); i++ {
		mut := bytes.Clone(frame)
		mut[i] ^= 0xff
		_, _ = DecodeFrame(mut)
	}
}
