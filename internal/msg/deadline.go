package msg

import "sync"

// Deadline extraction. Envelopes carry the deadline of the request a
// send serves (Envelope.Deadline) so transports can refuse expired
// work without decoding bodies, but msg cannot know which body types
// carry deadlines — that knowledge lives in the protocol packages.
// Mirroring the obs extractor pattern, packages whose bodies carry a
// deadline register an extractor at init; hosts call DeadlineOf when
// stamping an envelope.

var (
	deadlineMu  sync.RWMutex
	deadlineFns []func(Msg) (int64, bool)
)

// RegisterDeadline registers a body-deadline extractor: given a
// message, it returns the absolute deadline (nanoseconds, 0 = none)
// and whether it recognized the body type. Protocol packages register
// one per deadline-carrying body; registration order is irrelevant
// because each extractor claims only its own types.
func RegisterDeadline(fn func(Msg) (int64, bool)) {
	deadlineMu.Lock()
	deadlineFns = append(deadlineFns, fn)
	deadlineMu.Unlock()
}

// DeadlineOf extracts the deadline carried by m's body, or 0 when no
// registered extractor recognizes it (no deadline).
func DeadlineOf(m Msg) int64 {
	deadlineMu.RLock()
	fns := deadlineFns
	deadlineMu.RUnlock()
	for _, fn := range fns {
		if d, ok := fn(m); ok {
			return d
		}
	}
	return 0
}
