package shard

import "shadowdb/internal/obs"

// Observability for the sharding layer: forward/2PC counters on the
// router, prepare/decision counters on the replicas, and an extractor
// tying 2PC control messages to their transaction span so traces of a
// cross-shard commit read as one story across coordinator and
// participants.

var (
	mRouterForwards  = obs.C("shard.router.forwards")
	mRouterRejects   = obs.C("shard.router.rejects")
	m2PCBegins       = obs.C("shard.2pc.begins")
	m2PCCommits      = obs.C("shard.2pc.commits")
	m2PCAborts       = obs.C("shard.2pc.aborts")
	m2PCRetransmits  = obs.C("shard.2pc.retransmits")
	mShardPrepares   = obs.C("shard.replica.prepares")
	mShard2PCCommits = obs.C("shard.replica.2pc_commits")
	mShard2PCAborts  = obs.C("shard.replica.2pc_aborts")
	mShardCommits    = obs.C("shard.replica.commits")
)

func init() {
	obs.RegisterExtractor(func(hdr string, body any) (obs.Fields, bool) {
		f := obs.NoFields()
		f.Kind = hdr
		switch b := body.(type) {
		case Vote:
			f.Span = b.TxID
		case Ack:
			f.Span = b.TxID
		case RetryBody:
			f.Span = b.TxID
		default:
			return obs.Fields{}, false
		}
		return f, true
	})
}
