package shard

import (
	"fmt"

	"shadowdb/internal/core"
	"shadowdb/internal/sqldb"
)

// App is what the router and the shard replicas need to know about a
// transaction registry to shard it: which keys a request touches, how a
// cross-shard request splits into per-shard slices, and how much of a
// reserved quantity a key has available (the deterministic vote
// predicate). Procedures themselves stay in core.Registry — App only
// adds the placement/partitioning view over them.
type App interface {
	// Keys returns the partitioning keys req touches. An error means the
	// request is malformed and is answered to the client without touching
	// any shard.
	Keys(req core.TxRequest) ([]string, error)
	// Split decomposes a cross-shard request into per-shard slices keyed
	// by shard index. It is only called when Keys spans several shards.
	Split(req core.TxRequest, pt Partitioner) (map[int]SubTx, error)
	// Available reports how much of key's reservable quantity the
	// database currently holds; a prepare votes YES when Available minus
	// already-held reservations covers its Reserve amounts.
	Available(db *sqldb.DB, key string) (int64, error)
}

// bankApp shards the bank registry: the partitioning key of an account
// is its decimal id, "deposit"/"balance" touch one account, and
// "transfer" (from, to, amount) debits one account and credits another —
// the canonical cross-shard transaction. A transfer splits into a source
// slice that reserves the amount (vote NO on insufficient funds) and
// applies a negative deposit, and a destination slice that applies a
// positive deposit unconditionally.
type bankApp struct{}

// Bank returns the App for core.BankRegistry.
func Bank() App { return bankApp{} }

// BankKey is an account id's partitioning key.
func BankKey(id int64) string { return fmt.Sprintf("%d", id) }

func (bankApp) Keys(req core.TxRequest) ([]string, error) {
	switch req.Type {
	case "deposit":
		if len(req.Args) != 2 {
			return nil, fmt.Errorf("deposit wants (id, amount)")
		}
		id, err := argInt64(req.Args[0])
		if err != nil {
			return nil, err
		}
		return []string{BankKey(id)}, nil
	case "balance":
		if len(req.Args) != 1 {
			return nil, fmt.Errorf("balance wants (id)")
		}
		id, err := argInt64(req.Args[0])
		if err != nil {
			return nil, err
		}
		return []string{BankKey(id)}, nil
	case "transfer":
		if len(req.Args) != 3 {
			return nil, fmt.Errorf("transfer wants (from, to, amount)")
		}
		from, err := argInt64(req.Args[0])
		if err != nil {
			return nil, err
		}
		to, err := argInt64(req.Args[1])
		if err != nil {
			return nil, err
		}
		return []string{BankKey(from), BankKey(to)}, nil
	default:
		return nil, fmt.Errorf("unknown transaction type %q", req.Type)
	}
}

func (bankApp) Split(req core.TxRequest, pt Partitioner) (map[int]SubTx, error) {
	if req.Type != "transfer" {
		return nil, fmt.Errorf("shard: %q is single-shard; nothing to split", req.Type)
	}
	from, err := argInt64(req.Args[0])
	if err != nil {
		return nil, err
	}
	to, err := argInt64(req.Args[1])
	if err != nil {
		return nil, err
	}
	amt, err := argInt64(req.Args[2])
	if err != nil {
		return nil, err
	}
	if amt <= 0 {
		return nil, fmt.Errorf("transfer amount must be positive")
	}
	src, dst := pt.Shard(BankKey(from)), pt.Shard(BankKey(to))
	if src == dst {
		return nil, fmt.Errorf("shard: transfer %d->%d is single-shard; nothing to split", from, to)
	}
	return map[int]SubTx{
		src: {
			Reserve:   map[string]int64{BankKey(from): amt},
			Apply:     "deposit",
			ApplyArgs: []any{from, -amt},
		},
		dst: {
			Apply:     "deposit",
			ApplyArgs: []any{to, amt},
		},
	}, nil
}

func (bankApp) Available(db *sqldb.DB, key string) (int64, error) {
	var id int64
	if _, err := fmt.Sscanf(key, "%d", &id); err != nil {
		return 0, fmt.Errorf("shard: bad bank key %q", key)
	}
	res, err := db.Exec("SELECT balance FROM accounts WHERE id = ?", id)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, fmt.Errorf("shard: unknown account %d", id)
	}
	return argInt64(res.Rows[0][0])
}

// argInt64 coerces the numeric types that travel in TxRequest.Args.
func argInt64(v any) (int64, error) {
	switch x := v.(type) {
	case int64:
		return x, nil
	case int:
		return int64(x), nil
	case float64:
		return int64(x), nil
	default:
		return 0, fmt.Errorf("shard: want a numeric argument, got %T", v)
	}
}
