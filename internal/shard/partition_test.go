package shard

import (
	"fmt"
	"testing"
)

// Golden placements pin the hash function: a silent change to fnv64 or
// the ring construction would scatter keys across the wrong WALs on
// upgrade, so any diff here must be a deliberate, migration-aware
// decision.
func TestHashGoldenPlacements(t *testing.T) {
	p := NewHash(4)
	golden := []struct {
		key  string
		want int
	}{
		{"0", 2},
		{"1", 1},
		{"7", 1},
		{"42", 3},
		{"100", 1},
		{"512", 3},
		{"4095", 0},
		{"alpha", 2},
		{"omega", 3},
	}
	for _, g := range golden {
		if got := p.Shard(g.key); got != g.want {
			t.Errorf("NewHash(4).Shard(%q) = %d, want %d", g.key, got, g.want)
		}
	}
}

// Placement must be a pure function of the shard count: two independent
// instances (e.g. the router and a restarted router) agree on every key.
func TestHashDeterministicAcrossInstances(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		a, b := NewHash(n), NewHash(n)
		for i := 0; i < 2048; i++ {
			k := BankKey(int64(i))
			if a.Shard(k) != b.Shard(k) {
				t.Fatalf("n=%d key %q: instance A says %d, B says %d",
					n, k, a.Shard(k), b.Shard(k))
			}
		}
	}
}

func TestHashRangeAndBalance(t *testing.T) {
	const keys = 4096
	for _, n := range []int{2, 4, 8} {
		p := NewHash(n)
		counts := make([]int, n)
		for i := 0; i < keys; i++ {
			s := p.Shard(BankKey(int64(i)))
			if s < 0 || s >= n {
				t.Fatalf("n=%d: shard %d out of range", n, s)
			}
			counts[s]++
		}
		// Short decimal keys were exactly the inputs that used to collapse
		// onto a narrow band of the ring (one of four shards owned zero
		// keys before the avalanche finalizer); demand a bounded skew.
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("n=%d: a shard owns no keys: %v", n, counts)
		}
		if max > 3*min {
			t.Errorf("n=%d: imbalance %v exceeds 3x (min %d, max %d)", n, counts, min, max)
		}
	}
}

// The consistent-hashing contract: growing from n to n+1 shards moves
// keys only onto the new shard — the arcs of existing shards never trade
// keys among themselves.
func TestHashIncrementalResharding(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		old, grown := NewHash(n), NewHash(n+1)
		moved := 0
		for i := 0; i < 4096; i++ {
			k := BankKey(int64(i))
			a, b := old.Shard(k), grown.Shard(k)
			if a != b {
				moved++
				if b != n {
					t.Fatalf("n=%d->%d: key %q moved %d->%d, not to the new shard",
						n, n+1, k, a, b)
				}
			}
		}
		if moved == 0 {
			t.Errorf("n=%d->%d: no key moved to the new shard", n, n+1)
		}
	}
}

func TestRangePartitioner(t *testing.T) {
	p := NewRange([]string{"g", "p"})
	if p.N() != 3 {
		t.Fatalf("N = %d, want 3", p.N())
	}
	cases := map[string]int{"a": 0, "f": 0, "g": 1, "m": 1, "p": 2, "z": 2}
	for k, want := range cases {
		if got := p.Shard(k); got != want {
			t.Errorf("Shard(%q) = %d, want %d", k, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewRange accepted unsorted bounds")
		}
	}()
	NewRange([]string{"p", "g"})
}

func TestTopologyLocs(t *testing.T) {
	if BcastLoc(0, 0) != "s0b1" || ReplicaLoc(2, 1) != "s2r2" {
		t.Fatalf("loc naming changed: %s %s", BcastLoc(0, 0), ReplicaLoc(2, 1))
	}
	if g := GroupOf("s3r2"); g != "s3" {
		t.Errorf("GroupOf(s3r2) = %q, want s3", g)
	}
	if g := GroupOf(RouterLoc); g != "" {
		t.Errorf("GroupOf(router) = %q, want empty", g)
	}
	// Client entries (cli) ride along in the directory so answers can be
	// dialed back to them; they carry no topology.
	ids := []string{"s0b1", "s0b2", "s0r1", "s1b1", "s1b2", "s1r1", "rt1", "cli"}
	top, err := FromDirectory(ids)
	if err != nil {
		t.Fatalf("FromDirectory: %v", err)
	}
	if top.Shards != 2 || len(top.Bcast[0]) != 2 || len(top.Replicas[1]) != 1 {
		t.Fatalf("unexpected topology: %+v", top)
	}
	// Fail fast on holes: shard 1 missing entirely.
	if _, err := FromDirectory([]string{"s0b1", "s0r1", "s2b1", "s2r1", "rt1"}); err == nil {
		t.Error("FromDirectory accepted a gap in shard numbering")
	}
	if _, err := FromDirectory([]string{"s0b1", "s0r1"}); err == nil {
		t.Error("FromDirectory accepted a deployment without a router")
	}
	// Near-misses of the naming scheme are typos, not clients.
	for _, typo := range []string{"s1rr1", "rt2", "s0x1"} {
		if _, err := FromDirectory([]string{"s0b1", "s0r1", "rt1", typo}); err == nil {
			t.Errorf("FromDirectory accepted probable typo %q as a client entry", typo)
		}
	}
}

func BenchmarkHashShard(b *testing.B) {
	p := NewHash(8)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Shard(keys[i%len(keys)])
	}
}
