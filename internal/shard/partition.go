package shard

import (
	"fmt"
	"sort"

	"shadowdb/internal/msg"
)

// Partitioner maps transaction keys to shard indices. Implementations
// must be pure functions of their construction parameters: the same key
// maps to the same shard in every process and across restarts (the
// router journal and the per-shard WALs both depend on placement being
// reconstructible from configuration alone).
type Partitioner interface {
	// N is the number of shards.
	N() int
	// Shard maps a key to a shard index in [0, N).
	Shard(key string) int
	// Name identifies the scheme ("hash", "range") for logs and reports.
	Name() string
}

// vnodes is the number of virtual nodes per shard on the hash ring.
// 64 per shard keeps the expected imbalance of a uniform keyspace under
// a few percent while the ring stays small enough to build per process
// in microseconds.
const vnodes = 64

// hashRing is a consistent-hash partitioner: each shard owns vnodes
// points on a 64-bit ring, and a key belongs to the shard owning the
// first point at or after the key's hash. Adding a shard moves only the
// keys that fall into the new shard's arcs — the property that makes
// resharding incremental — while placement stays a pure function of the
// shard count.
type hashRing struct {
	n      int
	points []ringPoint
}

type ringPoint struct {
	h     uint64
	shard int
}

// NewHash builds the consistent-hash partitioner over n shards.
func NewHash(n int) Partitioner {
	if n <= 0 {
		panic(fmt.Sprintf("shard: NewHash(%d): need at least one shard", n))
	}
	r := &hashRing{n: n, points: make([]ringPoint, 0, n*vnodes)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			h := fnv64(fmt.Sprintf("shard%d#%d", s, v))
			r.points = append(r.points, ringPoint{h: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Equal hashes (astronomically unlikely) tie-break by shard so the
		// ring order is still deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

func (r *hashRing) N() int       { return r.n }
func (r *hashRing) Name() string { return "hash" }

func (r *hashRing) Shard(key string) int {
	h := fnv64(key)
	// First ring point at or after h; wrap to the first point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// fnv64 is FNV-1a with a murmur-style avalanche finalizer. Raw FNV-1a
// leaves the hashes of very short strings (bank keys are 1–4 decimal
// digits) clustered in a narrow band of the 64-bit space — skewed
// enough that one of four shards can end up owning no keys at all — so
// the finalizer spreads every input over the full ring before placement.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// rangePart is the pluggable range partitioner: bounds are the sorted
// upper-exclusive split keys, so bounds [b0, b1] define three shards
// {key < b0}, {b0 <= key < b1}, {b1 <= key}. Range placement keeps
// adjacent keys co-located (scans stay single-shard) at the price of
// manual split maintenance.
type rangePart struct {
	bounds []string
}

// NewRange builds a range partitioner from sorted split keys; len(bounds)+1
// shards result. It panics on unsorted or duplicate bounds — a silently
// reordered split table would scatter keys across the wrong WALs.
func NewRange(bounds []string) Partitioner {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("shard: NewRange: bounds not strictly ascending at %d (%q <= %q)",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &rangePart{bounds: append([]string(nil), bounds...)}
}

func (r *rangePart) N() int       { return len(r.bounds) + 1 }
func (r *rangePart) Name() string { return "range" }

func (r *rangePart) Shard(key string) int {
	return sort.SearchStrings(r.bounds, key+"\x00")
}

// sortedShards returns a SubTx map's shard indices ascending — every
// place that iterates participants uses it, so directive order is
// deterministic across runs (map iteration would perturb simulated
// schedules that must replay exactly).
func sortedShards[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// sortedLocs returns map keys as sorted locations (deterministic
// iteration for diagnostics and recovery directives).
func sortedLocs[V any](m map[msg.Loc]V) []msg.Loc {
	out := make([]msg.Loc, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
