package shard

import (
	"shadowdb/internal/core"
	"shadowdb/internal/flow"
)

// FlowClass extends core.FlowClass with the 2PC record prefixes this
// package submits into shard orders: decisions are ClassControl — a
// shed decision strands prepared participants holding reservations, so
// a saturated sequencer must order them last of all — while prepares
// are ClassWrite, since refusing a prepare before any participant
// prepared degrades into a clean client-visible retry. Everything else
// defers to the core classifier.
func FlowClass(payload []byte) flow.Class {
	if len(payload) >= 4 {
		switch string(payload[:4]) {
		case decMark:
			return flow.ClassControl
		case prepMark:
			return flow.ClassWrite
		}
	}
	return core.FlowClass(payload)
}
