package shard

import (
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// Replica is one state-machine replica of one shard. It is the SMR
// replica shape — dedup delivered slots, group-commit contiguous runs of
// plain transactions — extended with the participant side of 2PC:
//
//   - A delivered Prepare is voted on deterministically: YES iff every
//     Reserve amount fits in Available minus what earlier YES votes
//     already hold. A YES vote records the hold in the replica's
//     reservation ledger, NOT in the database — prepared-but-undecided
//     state is never visible to reads, which is half of the cross-shard
//     atomicity invariant.
//   - A delivered Decision releases the hold and, on commit, applies the
//     sub-transaction's procedure. Only then does the database change.
//   - Duplicates are idempotent from the prepared/decided tables: a
//     re-delivered Prepare re-sends the recorded vote, a re-delivered
//     Decision re-sends the ack. The coordinator leans on this — its
//     retransmissions use fresh broadcast sequence numbers (a reused one
//     could be swallowed by the sequencer's dedup with nothing
//     re-delivered), so the same record may legitimately be ordered
//     twice.
//
// Because both record kinds arrive through the shard's total order,
// every replica of the shard processes them in the same order and the
// vote/apply outcomes agree replica-to-replica without coordination.
type Replica struct {
	slf   msg.Loc
	shard int
	exec  *core.Executor
	app   App
	// lastSlot dedups Deliver notifications fanned out by several
	// service nodes.
	lastSlot int
	// held is the reservation ledger: key -> amount held by YES votes
	// whose decisions have not arrived yet.
	held map[string]int64
	// prepared records delivered prepares awaiting their decision (and
	// the vote each produced, for idempotent re-votes).
	prepared map[string]*pendingPrep
	// decided records processed decisions for idempotent re-acks. It is
	// never pruned: the coordinator's "done" is deliberately not
	// broadcast (it would double every 2PC's ordered traffic), and one
	// small struct per distributed transaction is an acceptable ledger
	// for this system's scale.
	decided map[string]Decision
	// stepCost is the virtual CPU of the last step (DES costing).
	stepCost time.Duration
}

type pendingPrep struct {
	p  Prepare
	ok bool
}

var _ gpm.Process = (*Replica)(nil)

// NewReplica creates a shard replica over its own database.
func NewReplica(slf msg.Loc, shardIdx int, db *sqldb.DB, reg core.Registry, app App) *Replica {
	return &Replica{
		slf:      slf,
		shard:    shardIdx,
		exec:     core.NewExecutor(db, reg),
		app:      app,
		lastSlot: -1,
		held:     make(map[string]int64),
		prepared: make(map[string]*pendingPrep),
		decided:  make(map[string]Decision),
	}
}

// DB exposes the replica's database (state-parity checks).
func (r *Replica) DB() *sqldb.DB { return r.exec.DB }

// LastSlot is the replica's applied slot frontier.
func (r *Replica) LastSlot() int { return r.lastSlot }

// LastCost returns the virtual CPU cost of the most recent Step.
func (r *Replica) LastCost() time.Duration { return r.stepCost }

// OpenPrepares counts prepares still awaiting a decision — zero after a
// drain means no transaction is half-way through 2PC on this shard.
func (r *Replica) OpenPrepares() int { return len(r.prepared) }

// HeldOn reports the reservation ledger's hold on one key (tests).
func (r *Replica) HeldOn(key string) int64 { return r.held[key] }

// Halted implements gpm.Process.
func (r *Replica) Halted() bool { return false }

// Step implements gpm.Process.
func (r *Replica) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	r.stepCost = 0
	before := r.exec.DB.Stats()
	var outs []msg.Directive
	if in.Hdr == broadcast.HdrDeliver {
		outs = r.onDeliver(in.Body.(broadcast.Deliver))
	}
	r.stepCost += r.exec.DB.Engine().CostOf(r.exec.DB.Stats().Sub(before))
	return r, outs
}

func (r *Replica) onDeliver(d broadcast.Deliver) []msg.Directive {
	if d.Slot <= r.lastSlot {
		return nil // duplicate notification from another service node
	}
	r.lastSlot = d.Slot
	var outs []msg.Directive
	// Contiguous runs of plain transactions group-commit exactly like the
	// SMR replica; 2PC records cut the run (they must observe the state
	// up to their own position in the order).
	var run []core.TxRequest
	inRun := make(map[string]bool)
	flush := func() {
		if len(run) == 0 {
			return
		}
		for _, res := range r.exec.ApplyBatch(run) {
			mShardCommits.Inc()
			outs = append(outs, msg.Send(res.Client, msg.M(core.HdrTxResult, res)))
		}
		run = nil
		inRun = make(map[string]bool)
	}
	for _, b := range d.Msgs {
		if p, ok := DecodePrepare(b.Payload); ok {
			flush()
			outs = append(outs, r.onPrepare(p)...)
			continue
		}
		if dec, ok := DecodeDecision(b.Payload); ok {
			flush()
			outs = append(outs, r.onDecision(dec)...)
			continue
		}
		req, err := core.DecodeTx(b.Payload)
		if err != nil {
			continue
		}
		if inRun[req.Key()] {
			// A duplicate of a request already queued in this run: apply the
			// run so the dedup table answers it.
			flush()
		}
		if res, dup := r.exec.Duplicate(req); dup {
			outs = append(outs, msg.Send(req.Client, msg.M(core.HdrTxResult, res)))
			continue
		}
		run = append(run, req)
		inRun[req.Key()] = true
	}
	flush()
	return outs
}

// onPrepare votes on a delivered prepare. The vote is a deterministic
// function of the delivered order, so all replicas of the shard agree.
func (r *Replica) onPrepare(p Prepare) []msg.Directive {
	if pd, ok := r.prepared[p.TxID]; ok {
		// Retransmitted prepare (our vote was lost): re-send the recorded
		// vote without re-reserving.
		return r.vote(pd.p, pd.ok)
	}
	if _, ok := r.decided[p.TxID]; ok {
		// The decision already arrived and was processed; the coordinator
		// has what it needs (or will re-send the decision itself).
		return nil
	}
	ok := true
	if _, known := r.exec.Reg[p.Sub.Apply]; !known {
		ok = false
	}
	for _, key := range sortedReserveKeys(p.Sub.Reserve) {
		avail, err := r.app.Available(r.exec.DB, key)
		if err != nil || avail-r.held[key] < p.Sub.Reserve[key] {
			ok = false
			break
		}
	}
	if ok {
		for key, amt := range p.Sub.Reserve {
			r.held[key] += amt
		}
	}
	r.prepared[p.TxID] = &pendingPrep{p: p, ok: ok}
	mShardPrepares.Inc()
	return r.vote(p, ok)
}

func (r *Replica) vote(p Prepare, ok bool) []msg.Directive {
	return []msg.Directive{msg.Send(p.Coord, msg.M(HdrVote, Vote{
		TxID: p.TxID, Shard: r.shard, From: r.slf, OK: ok,
	}))}
}

// onDecision releases the prepare's holds and applies the slice on
// commit. Both paths ack to the coordinator.
func (r *Replica) onDecision(d Decision) []msg.Directive {
	if _, ok := r.decided[d.TxID]; ok {
		// Retransmitted decision (our ack was lost): re-ack.
		return r.ack(d)
	}
	if pd, ok := r.prepared[d.TxID]; ok {
		delete(r.prepared, d.TxID)
		if pd.ok {
			for key, amt := range pd.p.Sub.Reserve {
				if r.held[key] -= amt; r.held[key] <= 0 {
					delete(r.held, key)
				}
			}
		}
		if d.Commit && pd.ok {
			// The reservation made the apply infallible; the coordinator —
			// not this replica — answers the client, so the result is only
			// recorded locally (duplicates of the original request would be
			// cross-shard again and never reach this executor directly).
			core.RunProc(r.exec.DB, r.exec.Reg, core.TxRequest{
				Client: pd.p.Req.Client, Seq: pd.p.Req.Seq,
				Type: pd.p.Sub.Apply, Args: pd.p.Sub.ApplyArgs,
			})
			mShard2PCCommits.Inc()
		} else {
			mShard2PCAborts.Inc()
		}
	}
	// A decision without a local prepare is legitimate only for aborts
	// (the coordinator timed out before our shard ever saw the prepare);
	// a commit without a prepare is the atomicity violation the checker
	// flags — the replica conservatively does not apply.
	r.decided[d.TxID] = d
	return r.ack(d)
}

func (r *Replica) ack(d Decision) []msg.Directive {
	return []msg.Directive{msg.Send(d.Coord, msg.M(HdrAck, Ack{
		TxID: d.TxID, Shard: r.shard, From: r.slf,
	}))}
}

// sortedReserveKeys orders a Reserve map for deterministic evaluation.
func sortedReserveKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Insertion sort: Reserve maps are tiny (one or two keys).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
