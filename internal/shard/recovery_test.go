package shard_test

import (
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/fault"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/shard"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// evenOdd places decimal keys by parity: account 0 on shard 0, account
// 1 on shard 1 — so transfer(0, 1, _) is deterministically cross-shard.
type evenOdd struct{}

func (evenOdd) N() int       { return 2 }
func (evenOdd) Name() string { return "evenodd" }
func (evenOdd) Shard(key string) int {
	id, err := strconv.Atoi(key)
	if err != nil {
		return 0
	}
	return id % 2
}

// TestCoordinatorCrashBetweenPrepareAndCommit kills the router after its
// prepares are ordered and voted on but before any vote reaches it (the
// classic 2PC window: participants hold reservations, the outcome is
// unknown). The restarted incarnation must recover the open transaction
// from its journal, re-drive the prepares, and commit exactly once —
// with the online checker attached and zero violations.
func TestCoordinatorCrashBetweenPrepareAndCommit(t *testing.T) {
	const (
		killAt  = 20 * time.Millisecond
		downFor = 80 * time.Millisecond
		amount  = int64(250)
	)
	sim := &des.Sim{}
	clu := des.NewCluster(sim)
	zero := func() time.Duration { return 0 }

	// Two shards, each one broadcast node and one replica; one router.
	bloc := []msg.Loc{shard.BcastLoc(0, 0), shard.BcastLoc(1, 0)}
	rloc := []msg.Loc{shard.ReplicaLoc(0, 0), shard.ReplicaLoc(1, 0)}
	reps := make([]*shard.Replica, 2)
	for k := 0; k < 2; k++ {
		db, err := sqldb.Open("h2:mem:2pcrec" + strconv.Itoa(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.BankSetup(db, 8); err != nil {
			t.Fatal(err)
		}
		reps[k] = shard.NewReplica(rloc[k], k, db, core.BankRegistry(), shard.Bank())
		clu.AddCostedProcess(rloc[k], 1, reps[k], zero)
		bgen := broadcast.Spec(broadcast.Config{
			Nodes:            []msg.Loc{bloc[k]},
			LocalSubscribers: map[msg.Loc][]msg.Loc{bloc[k]: {rloc[k]}},
		}).Generator()
		clu.AddCostedProcess(bloc[k], 1, bgen(bloc[k]), zero)
	}

	root := t.TempDir()
	openJournal := func() store.Stable {
		prov, err := store.NewDir(filepath.Join(root, shard.RouterSubdir), store.SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		st, err := prov.Open("router")
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	rcfg := shard.Config{
		Slf:    shard.RouterLoc,
		Part:   evenOdd{},
		App:    shard.Bank(),
		Shards: [][]msg.Loc{{bloc[0]}, {bloc[1]}},
		Retry:  60 * time.Millisecond,
	}
	rcfg.Stable = openJournal()
	rt, err := shard.NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	clu.AddCostedProcess(shard.RouterLoc, 1, rt, zero)

	// The client location records every TxResult it receives.
	var results []core.TxResult
	var loop gpm.StepFunc
	loop = func(in msg.Msg) (gpm.Process, []msg.Directive) {
		if res, ok := in.Body.(core.TxResult); ok && in.Hdr == core.HdrTxResult {
			results = append(results, res)
		}
		return loop, nil
	}
	clu.AddCostedProcess("c1", 1, loop, zero)

	o := obs.New(1 << 14)
	clu.Observe(o)
	o.EnableTracing(true)
	ck := dist.NewChecker()
	ck.SetGroupOf(shard.GroupOf)
	ck.Watch(o)

	// Crash window: every vote to the router is dropped until the kill, so
	// the coordinator dies with the transaction prepared but undecided.
	var recovered []string
	current := rt
	inj := fault.BindProcess(clu, fault.Plan{
		Seed: 7,
		Rules: []fault.Rule{{
			Match: fault.Match{Dst: shard.RouterLoc, Hdr: shard.HdrVote},
			To:    fault.Duration(killAt),
			Drop:  true,
		}},
		Crashes: []fault.Crash{{
			At:           fault.Duration(killAt),
			Node:         shard.RouterLoc,
			RestartAfter: fault.Duration(downFor),
		}},
	}, fault.ProcessHooks{
		Kill: func(msg.Loc) {
			if err := rcfg.Stable.Close(); err != nil {
				t.Errorf("close journal: %v", err)
			}
		},
		Restart: func(msg.Loc) {
			rcfg.Stable = openJournal()
			rt2, err := shard.NewRouter(rcfg)
			if err != nil {
				t.Errorf("restart router: %v", err)
				return
			}
			recovered = rt2.Recovered()
			current = rt2
			clu.Node(shard.RouterLoc).RebindCosted(func(env des.Envelope) ([]msg.Directive, time.Duration) {
				_, outs := rt2.Step(env.M)
				return outs, 0
			})
			ck.NoteRestart(shard.RouterLoc)
			sim.After(0, func() {
				for _, d := range rt2.RecoveryDirectives() {
					clu.SendAfter(d.Delay, shard.RouterLoc, d.Dest, d.M)
				}
			})
		},
	})
	inj.SetObs(o)

	req := core.TxRequest{Client: "c1", Seq: 1, Type: "transfer", Args: []any{0, 1, amount}}
	clu.SendAfter(0, "c1", shard.RouterLoc, msg.M(core.HdrTx, req))

	sim.Run(2*time.Second, 5_000_000)

	// The journal replay must have found exactly the open transaction.
	if len(recovered) != 1 || recovered[0] != req.Key() {
		t.Fatalf("restarted router recovered %v, want [%s]", recovered, req.Key())
	}
	// Participants held the reservation across the outage; after recovery
	// the transfer committed exactly once.
	if len(results) != 1 {
		t.Fatalf("client received %d results, want 1: %v", len(results), results)
	}
	if results[0].Aborted {
		t.Fatalf("recovered transaction aborted: %+v", results[0])
	}
	checkBalance := func(rep *shard.Replica, id int, want int64) {
		res, err := rep.DB().Exec("SELECT balance FROM accounts WHERE id = ?", id)
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("balance(%d): %v %v", id, res, err)
		}
		var got int64
		switch v := res.Rows[0][0].(type) {
		case int64:
			got = v
		case int:
			got = int64(v)
		}
		if got != want {
			t.Errorf("account %d = %d, want %d", id, got, want)
		}
	}
	checkBalance(reps[0], 0, 1000-amount)
	checkBalance(reps[1], 1, 1000+amount)
	for k, rep := range reps {
		if rep.OpenPrepares() != 0 {
			t.Errorf("shard %d: %d prepares still open after recovery", k, rep.OpenPrepares())
		}
		if rep.HeldOn(strconv.Itoa(k)) != 0 {
			t.Errorf("shard %d: reservation still held after decision", k)
		}
	}
	if current.InFlight() != 0 {
		t.Errorf("router still has %d transactions in flight", current.InFlight())
	}
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("checker flagged the recovery: %v", vs)
	}
	if len(inj.Injections()) == 0 {
		t.Error("nemesis injected nothing; the crash window never happened")
	}
}
