// Package shard partitions the ShadowDB keyspace across N independent
// replication groups — each running its own total order broadcast
// instance (and, when durable, its own WAL subtree) — behind a Router
// that forwards single-shard transactions directly and coordinates
// cross-shard ones with two-phase commit layered over the per-shard
// total orders. The 2PC records (Prepare, Decision) are themselves
// ordered through each participant shard's broadcast, so the outcome of
// every distributed transaction is replicated and recoverable exactly
// like ordinary transactions: a shard replica learns "prepared" and
// "committed/aborted" only from its own delivery stream.
//
// # Invariants
//
// The safety contract, stated as checkable history invariants
// (internal/obs/dist extends the online checker with them):
//
//   - per-shard, every existing invariant holds within the shard's own
//     group: total order, gap-free in-order delivery, single decided
//     value per consensus instance, replies only after ordered delivery;
//   - cross-shard atomicity: a transaction's effects appear on all
//     participant shards or on none — no shard delivers a commit it was
//     never prepared for, and no two shards deliver conflicting
//     decisions for the same transaction;
//   - read isolation: prepared-but-undecided state is never visible to
//     reads, enforced by construction — a replica votes by checking its
//     reservation ledger (held) against the database but mutates the
//     database only when the decision itself is delivered;
//   - placement is static and deterministic (NewHash over the key), so
//     every router and every replica agrees on which shard owns a row
//     without coordination.
//
// # Concurrency
//
// Router and Replica are message-driven state machines with no
// internal locking: each instance is owned by exactly one driver (a
// runtime.Host event loop live, the simulator's per-node queue in
// tests) that calls Step serially. All cross-node interaction —
// including the router↔shard 2PC dialogue — travels as messages, never
// shared memory. Topology and App values are read-only after
// construction and may be shared freely.
package shard
