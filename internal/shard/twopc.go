package shard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"shadowdb/internal/core"
	"shadowdb/internal/msg"
)

// The 2PC vocabulary. Prepare and Decision travel as broadcast payloads
// (they are ordered through each participant shard's total order, so the
// 2PC outcome is replicated and crash-recoverable); Vote and Ack are
// plain replica→coordinator messages — losing one only delays the
// protocol, because the coordinator retransmits the ordered records and
// replicas answer duplicates idempotently from their prepared/decided
// tables.

// Message headers of the 2PC layer.
const (
	// HdrVote is a shard replica's prepare vote to the coordinator.
	HdrVote = "shard.vote"
	// HdrAck acknowledges a delivered decision to the coordinator.
	HdrAck = "shard.ack"
	// HdrRetry is the coordinator's self-addressed retransmission timer.
	HdrRetry = "shard.retry"
)

// SubTx is one shard's slice of a cross-shard transaction: the
// reservations its vote must secure and the procedure applied on commit.
type SubTx struct {
	// Reserve maps keys to the amount that must be available for the vote
	// to be YES; a YES vote holds the amounts (outside the database) until
	// the decision arrives.
	Reserve map[string]int64
	// Apply names the registered procedure run on commit, with ApplyArgs.
	Apply     string
	ApplyArgs []any
}

// Prepare asks one shard to vote on a cross-shard transaction. It is
// delivered through the shard's total order, so every replica of the
// shard computes the same (deterministic) vote.
type Prepare struct {
	// TxID is the transaction's identity (the originating request's Key).
	TxID string
	// Coord is where votes go; Shard is the recipient shard's index.
	Coord msg.Loc
	Shard int
	// Participants lists every involved shard (ascending) — recovery and
	// the checker both read the membership from the record itself.
	Participants []int
	// Req is the original client request (result routing, dedup identity).
	Req core.TxRequest
	// Sub is this shard's slice.
	Sub SubTx
}

// Decision carries the coordinator's commit/abort verdict to one shard,
// again through the shard's total order.
type Decision struct {
	TxID   string
	Shard  int
	Coord  msg.Loc
	Commit bool
}

// Vote is a replica's answer to a delivered Prepare.
type Vote struct {
	TxID  string
	Shard int
	From  msg.Loc
	OK    bool
}

// Ack confirms a replica delivered (and applied) a Decision.
type Ack struct {
	TxID  string
	Shard int
	From  msg.Loc
}

// RetryBody tags the coordinator's retransmission timer with the
// transaction it guards.
type RetryBody struct {
	TxID string
}

// RegisterWireTypes registers the 2PC bodies with the wire codec.
func RegisterWireTypes() {
	gobArgs()
	for _, v := range []any{Vote{}, Ack{}, RetryBody{}} {
		msg.RegisterBody(v)
	}
}

// gobArgs registers the basic types that travel inside SubTx.ApplyArgs
// and TxRequest.Args (interface-typed fields need explicit registration;
// mirrors core's EncodeTx registration).
var gobArgs = sync.OnceFunc(func() {
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(int(0))
	gob.Register(true)
})

// Payload markers distinguishing 2PC records from plain transactions
// ("tx|") in a delivered batch.
const (
	prepMark = "2pp|"
	decMark  = "2pd|"
)

// EncodePrepare serializes a Prepare for use as a broadcast payload.
func EncodePrepare(p Prepare) []byte {
	gobArgs()
	var buf bytes.Buffer
	buf.WriteString(prepMark)
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		// All fields are gob-encodable once gobArgs ran; this cannot fail.
		panic(fmt.Sprintf("shard: encode prepare: %v", err))
	}
	return buf.Bytes()
}

// DecodePrepare recognizes a Prepare payload. Like broadcast.DecodeBatch
// it is total: payloads cross the wire and the WAL, so malformed bytes
// return ok=false, never a crash.
func DecodePrepare(b []byte) (p Prepare, ok bool) {
	if len(b) < len(prepMark) || string(b[:len(prepMark)]) != prepMark {
		return Prepare{}, false
	}
	gobArgs()
	defer func() {
		if recover() != nil {
			p, ok = Prepare{}, false
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(b[len(prepMark):])).Decode(&p); err != nil {
		return Prepare{}, false
	}
	return p, true
}

// EncodeDecision serializes a Decision for use as a broadcast payload.
func EncodeDecision(d Decision) []byte {
	var buf bytes.Buffer
	buf.WriteString(decMark)
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		panic(fmt.Sprintf("shard: encode decision: %v", err))
	}
	return buf.Bytes()
}

// DecodeDecision recognizes a Decision payload (total, like DecodePrepare).
func DecodeDecision(b []byte) (d Decision, ok bool) {
	if len(b) < len(decMark) || string(b[:len(decMark)]) != decMark {
		return Decision{}, false
	}
	defer func() {
		if recover() != nil {
			d, ok = Decision{}, false
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(b[len(decMark):])).Decode(&d); err != nil {
		return Decision{}, false
	}
	return d, true
}
