package shard

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"

	"shadowdb/internal/msg"
)

// Location naming for sharded deployments. Shard k's broadcast service
// nodes are s<k>b1..s<k>bM and its replicas s<k>r1..s<k>rR; the router
// is rt1. GroupOf recovers the shard group from a location, which is how
// the online checker keys its per-group invariant state.

// BcastLoc names shard k's i-th broadcast service node (i from 0).
func BcastLoc(k, i int) msg.Loc { return msg.Loc(fmt.Sprintf("s%db%d", k, i+1)) }

// ReplicaLoc names shard k's i-th replica (i from 0).
func ReplicaLoc(k, i int) msg.Loc { return msg.Loc(fmt.Sprintf("s%dr%d", k, i+1)) }

// RouterLoc is the canonical router location.
const RouterLoc = msg.Loc("rt1")

var locRe = regexp.MustCompile(`^s(\d+)([br])(\d+)$`)

// nearMissRe matches ids close enough to the naming scheme that they
// are almost certainly typos rather than client entries.
var nearMissRe = regexp.MustCompile(`^(s\d|rt)`)

// GroupOf maps a location to its invariant group: "s<k>" for shard k's
// broadcast nodes and replicas, "" for everything else (router, clients
// — ungrouped locations share the global group, preserving the
// unsharded checker behaviour).
func GroupOf(l msg.Loc) string {
	m := locRe.FindStringSubmatch(string(l))
	if m == nil {
		return ""
	}
	return "s" + m[1]
}

// IsShardLoc reports whether l follows the sharded naming scheme, and if
// so which shard and role it has.
func IsShardLoc(l msg.Loc) (shard int, role byte, ok bool) {
	m := locRe.FindStringSubmatch(string(l))
	if m == nil {
		return 0, 0, false
	}
	k, _ := strconv.Atoi(m[1])
	return k, m[2][0], true
}

// Topology is a validated sharded member list.
type Topology struct {
	// Shards is the shard count.
	Shards int
	// Bcast[k] and Replicas[k] list shard k's broadcast nodes and
	// replicas in index order.
	Bcast    [][]msg.Loc
	Replicas [][]msg.Loc
	// Routers lists the router locations (exactly one today).
	Routers []msg.Loc
}

// FromDirectory groups and validates a directory's member ids for a
// sharded deployment. It fails fast — with an error naming the offending
// id — instead of letting a malformed member list surface as a late
// panic once traffic flows:
//
//   - shard indices must be contiguous from 0;
//   - every shard needs at least one broadcast node and one replica, and
//     all shards must have the same counts of each (a lopsided shard
//     would silently change quorum behaviour);
//   - exactly one router.
//
// Ids that look *almost* like shard members — an "s"+digit or "rt"
// prefix that doesn't parse (s1rr1, rt2) — are rejected as probable
// typos. Anything else (cli, c1, …) is a client entry: clients must
// appear in the directory so replicas and the router can dial their
// answers back, and they carry no topology.
func FromDirectory(ids []string) (*Topology, error) {
	bcast := make(map[int][]msg.Loc)
	reps := make(map[int][]msg.Loc)
	var routers []msg.Loc
	for _, id := range ids {
		l := msg.Loc(id)
		if l == RouterLoc {
			routers = append(routers, l)
			continue
		}
		k, role, ok := IsShardLoc(l)
		if !ok {
			if nearMissRe.MatchString(id) {
				return nil, fmt.Errorf(
					"shard: member %q is neither the router (rt1) nor a shard member (s<k>b<i> / s<k>r<i>)", id)
			}
			continue // a client entry
		}
		switch role {
		case 'b':
			bcast[k] = append(bcast[k], l)
		case 'r':
			reps[k] = append(reps[k], l)
		}
	}
	if len(routers) != 1 {
		return nil, fmt.Errorf("shard: want exactly one router (rt1), have %d", len(routers))
	}
	n := len(bcast)
	if n == 0 {
		return nil, fmt.Errorf("shard: no shard members in directory")
	}
	t := &Topology{Shards: n, Bcast: make([][]msg.Loc, n), Replicas: make([][]msg.Loc, n), Routers: routers}
	for k := 0; k < n; k++ {
		b, r := bcast[k], reps[k]
		if len(b) == 0 {
			return nil, fmt.Errorf("shard: shard indices not contiguous: shard %d has no broadcast nodes (s%db1...)", k, k)
		}
		if len(r) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no replicas (s%dr1...)", k, k)
		}
		if len(b) != len(bcast[0]) || len(r) != len(reps[0]) {
			return nil, fmt.Errorf(
				"shard: uneven shards: shard %d has %d broadcast nodes and %d replicas, shard 0 has %d and %d",
				k, len(b), len(r), len(bcast[0]), len(reps[0]))
		}
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
		t.Bcast[k], t.Replicas[k] = b, r
	}
	for k := range reps {
		if k < 0 || k >= n {
			return nil, fmt.Errorf("shard: shard indices not contiguous: replica for shard %d but only %d shard(s) have broadcast nodes", k, n)
		}
	}
	return t, nil
}

// DataSubdir is the per-shard subtree of -data-dir holding one shard's
// WAL state; the router's journal lives under RouterSubdir.
func DataSubdir(k int) string { return fmt.Sprintf("shard%d", k) }

// RouterSubdir is the router journal's subtree of -data-dir.
const RouterSubdir = "router"
