package shard

import (
	"strconv"
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/flow"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// modPart places decimal keys by id modulo n — a transparent placement
// for tests (account 0 on shard 0, account 1 on shard 1, ...).
type modPart struct{ n int }

func (p modPart) N() int       { return p.n }
func (p modPart) Name() string { return "mod" }
func (p modPart) Shard(key string) int {
	id, err := strconv.Atoi(key)
	if err != nil {
		return 0
	}
	return id % p.n
}

func testRouter(t *testing.T) *Router {
	t.Helper()
	r, err := NewRouter(Config{
		Slf:  RouterLoc,
		Part: modPart{2},
		App:  Bank(),
		Shards: [][]msg.Loc{
			{"s0b1", "s0b2"},
			{"s1b1", "s1b2"},
		},
		Retry: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func step(t *testing.T, r *Router, hdr string, body any) []msg.Directive {
	t.Helper()
	_, outs := r.Step(msg.M(hdr, body))
	return outs
}

// bcastsIn splits a directive list into broadcast submissions and the
// rest (client replies, retry timers).
func bcastsIn(outs []msg.Directive) (bc []msg.Directive, rest []msg.Directive) {
	for _, d := range outs {
		if d.M.Hdr == broadcast.HdrBcast {
			bc = append(bc, d)
		} else {
			rest = append(rest, d)
		}
	}
	return bc, rest
}

func TestRouterForwardsSingleShard(t *testing.T) {
	r := testRouter(t)
	req := core.TxRequest{Client: "c1", Seq: 7, Type: "deposit", Args: []any{3, 10}}
	outs := step(t, r, core.HdrTx, req)
	if len(outs) != 1 {
		t.Fatalf("forward produced %d directives, want 1: %v", len(outs), outs)
	}
	d := outs[0]
	if d.Dest != "s1b1" && d.Dest != "s1b2" {
		t.Fatalf("deposit on account 3 forwarded to %s, want shard 1's service", d.Dest)
	}
	if d.M.Hdr != broadcast.HdrBcast {
		t.Fatalf("forward header %q, want %q", d.M.Hdr, broadcast.HdrBcast)
	}
	b := d.M.Body.(broadcast.Bcast)
	// The client's own identity rides through so broadcast-layer dedup of
	// client retries works exactly as unsharded.
	if b.From != "c1" || b.Seq != 7 {
		t.Fatalf("forwarded Bcast identity %s/%d, want c1/7", b.From, b.Seq)
	}
	got, err := core.DecodeTx(b.Payload)
	if err != nil || got.Type != "deposit" {
		t.Fatalf("forwarded payload did not round-trip: %v %v", got, err)
	}
	// A retry of the same request probes the other service node.
	outs2 := step(t, r, core.HdrTx, req)
	if outs2[0].Dest == d.Dest {
		t.Errorf("retry forwarded to the same node %s; want rotation", d.Dest)
	}
	// In-flight bookkeeping is for cross-shard transactions only.
	if r.InFlight() != 0 {
		t.Errorf("single-shard forward left %d transactions in flight", r.InFlight())
	}
}

func TestRouterRejectsMalformed(t *testing.T) {
	r := testRouter(t)
	req := core.TxRequest{Client: "c1", Seq: 1, Type: "mystery"}
	outs := step(t, r, core.HdrTx, req)
	if len(outs) != 1 || outs[0].Dest != "c1" {
		t.Fatalf("malformed request not answered directly: %v", outs)
	}
	res := outs[0].M.Body.(core.TxResult)
	if !res.Aborted || res.Err == "" {
		t.Fatalf("malformed request not aborted: %+v", res)
	}
}

func TestRouterCrossShardCommit(t *testing.T) {
	r := testRouter(t)
	req := core.TxRequest{Client: "c1", Seq: 1, Type: "transfer", Args: []any{0, 1, 50}}
	outs := step(t, r, core.HdrTx, req)
	bc, rest := bcastsIn(outs)
	if len(bc) != 2 {
		t.Fatalf("cross-shard begin sent %d prepares, want 2: %v", len(bc), outs)
	}
	if len(rest) != 1 || rest[0].M.Hdr != HdrRetry || rest[0].Delay <= 0 {
		t.Fatalf("cross-shard begin did not arm a retry timer: %v", rest)
	}
	if r.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", r.InFlight())
	}
	var seqs []int64
	for _, d := range bc {
		b := d.M.Body.(broadcast.Bcast)
		if b.From != RouterLoc {
			t.Fatalf("2PC record sent with identity %s, want the router's", b.From)
		}
		seqs = append(seqs, b.Seq)
		p, ok := DecodePrepare(b.Payload)
		if !ok {
			t.Fatalf("prepare payload did not decode")
		}
		if len(p.Participants) != 2 || p.Coord != RouterLoc {
			t.Fatalf("prepare misdescribes the transaction: %+v", p)
		}
		if p.Shard == 0 && p.Sub.Reserve["0"] != 50 {
			t.Fatalf("source slice reserves %v, want 50 on account 0", p.Sub.Reserve)
		}
	}
	if seqs[0] == seqs[1] {
		t.Fatalf("two 2PC records share broadcast seq %d; the sequencer would dedup one", seqs[0])
	}

	id := req.Key()
	// First shard votes YES: not decided yet.
	if outs := step(t, r, HdrVote, Vote{TxID: id, Shard: 0, From: "s0r1", OK: true}); len(outs) != 0 {
		t.Fatalf("decision before all votes: %v", outs)
	}
	// Duplicate vote from the shard's other replica changes nothing.
	if outs := step(t, r, HdrVote, Vote{TxID: id, Shard: 0, From: "s0r2", OK: true}); len(outs) != 0 {
		t.Fatalf("duplicate vote produced output: %v", outs)
	}
	// Second shard's YES completes the vote: decisions + client reply.
	outs = step(t, r, HdrVote, Vote{TxID: id, Shard: 1, From: "s1r1", OK: true})
	bc, rest = bcastsIn(outs)
	if len(bc) != 2 {
		t.Fatalf("commit sent %d decisions, want 2", len(bc))
	}
	for _, d := range bc {
		dec, ok := DecodeDecision(d.M.Body.(broadcast.Bcast).Payload)
		if !ok || !dec.Commit {
			t.Fatalf("decision payload wrong: %+v ok=%v", dec, ok)
		}
	}
	var replied bool
	for _, d := range rest {
		if d.M.Hdr == core.HdrTxResult {
			res := d.M.Body.(core.TxResult)
			if d.Dest != "c1" || res.Aborted {
				t.Fatalf("client reply wrong: dest=%s %+v", d.Dest, res)
			}
			replied = true
		}
	}
	if !replied {
		t.Fatalf("commit did not answer the client: %v", rest)
	}

	// Acks from both shards retire the transaction.
	step(t, r, HdrAck, Ack{TxID: id, Shard: 0, From: "s0r1"})
	if r.InFlight() != 1 {
		t.Fatalf("transaction retired after one ack")
	}
	step(t, r, HdrAck, Ack{TxID: id, Shard: 1, From: "s1r1"})
	if r.InFlight() != 0 {
		t.Fatalf("InFlight = %d after all acks, want 0", r.InFlight())
	}

	// A duplicate submission is answered from the dedup table, no new 2PC.
	outs = step(t, r, core.HdrTx, req)
	if len(outs) != 1 || outs[0].Dest != "c1" || r.InFlight() != 0 {
		t.Fatalf("duplicate submission restarted 2PC: %v", outs)
	}
}

func TestRouterCrossShardAbortOnNoVote(t *testing.T) {
	r := testRouter(t)
	req := core.TxRequest{Client: "c1", Seq: 2, Type: "transfer", Args: []any{0, 1, 50}}
	step(t, r, core.HdrTx, req)
	// A single NO vote aborts immediately, without waiting for the rest.
	outs := step(t, r, HdrVote, Vote{TxID: req.Key(), Shard: 0, From: "s0r1", OK: false})
	bc, rest := bcastsIn(outs)
	if len(bc) != 2 {
		t.Fatalf("abort sent %d decisions, want 2 (both participants)", len(bc))
	}
	for _, d := range bc {
		if dec, ok := DecodeDecision(d.M.Body.(broadcast.Bcast).Payload); !ok || dec.Commit {
			t.Fatalf("abort decision wrong: %+v", dec)
		}
	}
	var aborted bool
	for _, d := range rest {
		if d.M.Hdr == core.HdrTxResult && d.M.Body.(core.TxResult).Aborted {
			aborted = true
		}
	}
	if !aborted {
		t.Fatalf("client not told about the abort: %v", rest)
	}
}

func TestRouterRetryUsesFreshSeqs(t *testing.T) {
	r := testRouter(t)
	req := core.TxRequest{Client: "c1", Seq: 3, Type: "transfer", Args: []any{0, 1, 50}}
	outs := step(t, r, core.HdrTx, req)
	first, _ := bcastsIn(outs)
	outs = step(t, r, HdrRetry, RetryBody{TxID: req.Key()})
	second, _ := bcastsIn(outs)
	if len(second) != 2 {
		t.Fatalf("retry resent %d prepares, want 2", len(second))
	}
	used := map[int64]bool{}
	for _, d := range first {
		used[d.M.Body.(broadcast.Bcast).Seq] = true
	}
	for _, d := range second {
		if used[d.M.Body.(broadcast.Bcast).Seq] {
			t.Fatalf("retransmission reused a broadcast seq; the sequencer's dedup would swallow it")
		}
	}
}

// ---------------------------------------------------------------- replica --

func testReplica(t *testing.T, shardIdx int) *Replica {
	t.Helper()
	db, err := sqldb.Open("h2:mem:shardtest" + strconv.Itoa(shardIdx))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.BankSetup(db, 8); err != nil {
		t.Fatal(err)
	}
	return NewReplica(ReplicaLoc(shardIdx, 0), shardIdx, db, core.BankRegistry(), Bank())
}

func deliver(t *testing.T, r *Replica, slot int, payloads ...[]byte) []msg.Directive {
	t.Helper()
	var msgs []broadcast.Bcast
	for i, p := range payloads {
		msgs = append(msgs, broadcast.Bcast{From: RouterLoc, Seq: int64(slot*100 + i), Payload: p})
	}
	_, outs := r.Step(msg.M(broadcast.HdrDeliver, broadcast.Deliver{Slot: slot, Msgs: msgs}))
	return outs
}

func balance(t *testing.T, r *Replica, id int) int64 {
	t.Helper()
	res, err := r.DB().Exec("SELECT balance FROM accounts WHERE id = ?", id)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("balance(%d): %v %v", id, res, err)
	}
	v, err := argInt64(res.Rows[0][0])
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func voteOf(t *testing.T, outs []msg.Directive) Vote {
	t.Helper()
	if len(outs) != 1 || outs[0].M.Hdr != HdrVote {
		t.Fatalf("want exactly one vote, got %v", outs)
	}
	return outs[0].M.Body.(Vote)
}

func TestReplicaVotesAndReserves(t *testing.T) {
	r := testReplica(t, 0)
	prep := func(id string, amt int64) Prepare {
		return Prepare{
			TxID: id, Coord: RouterLoc, Shard: 0, Participants: []int{0, 1},
			Sub: SubTx{
				Reserve:   map[string]int64{"1": amt},
				Apply:     "deposit",
				ApplyArgs: []any{1, -amt},
			},
		}
	}
	// Account 1 holds 1000: a 600 reservation fits...
	if v := voteOf(t, deliver(t, r, 0, EncodePrepare(prep("ta", 600)))); !v.OK {
		t.Fatalf("vote on ta: %+v, want YES", v)
	}
	if r.HeldOn("1") != 600 {
		t.Fatalf("held = %d, want 600", r.HeldOn("1"))
	}
	// ...but a second 600 against the same key must count the hold: NO.
	if v := voteOf(t, deliver(t, r, 1, EncodePrepare(prep("tb", 600)))); v.OK {
		t.Fatalf("vote on tb ignored the reservation ledger")
	}
	// Prepared state is invisible: the database still shows 1000.
	if b := balance(t, r, 1); b != 1000 {
		t.Fatalf("prepared-but-undecided state leaked into the database: balance %d", b)
	}
	// A retransmitted prepare re-votes without double-reserving.
	if v := voteOf(t, deliver(t, r, 2, EncodePrepare(prep("ta", 600)))); !v.OK {
		t.Fatalf("re-vote on ta: %+v", v)
	}
	if r.HeldOn("1") != 600 {
		t.Fatalf("duplicate prepare double-reserved: held = %d", r.HeldOn("1"))
	}

	// Commit ta: hold released, debit applied, ack sent.
	outs := deliver(t, r, 3, EncodeDecision(Decision{TxID: "ta", Shard: 0, Coord: RouterLoc, Commit: true}))
	if len(outs) != 1 || outs[0].M.Hdr != HdrAck {
		t.Fatalf("decision did not ack: %v", outs)
	}
	if b := balance(t, r, 1); b != 400 {
		t.Fatalf("balance after commit = %d, want 400", b)
	}
	if r.HeldOn("1") != 0 {
		t.Fatalf("hold survived the decision: %d", r.HeldOn("1"))
	}
	// A duplicate decision re-acks without re-applying.
	deliver(t, r, 4, EncodeDecision(Decision{TxID: "ta", Shard: 0, Coord: RouterLoc, Commit: true}))
	if b := balance(t, r, 1); b != 400 {
		t.Fatalf("duplicate decision re-applied: balance %d", b)
	}
	// Abort tb: no effect on the database.
	deliver(t, r, 5, EncodeDecision(Decision{TxID: "tb", Shard: 0, Coord: RouterLoc, Commit: false}))
	if b := balance(t, r, 1); b != 400 {
		t.Fatalf("abort changed the database: balance %d", b)
	}
	if r.OpenPrepares() != 0 {
		t.Fatalf("%d prepares still open", r.OpenPrepares())
	}
}

func TestReplicaDoesNotApplyUnpreparedCommit(t *testing.T) {
	r := testReplica(t, 0)
	// A commit for a transaction this replica never prepared is the
	// atomicity violation the checker flags; the replica acks (so the
	// coordinator can retire the transaction) but refuses to apply.
	outs := deliver(t, r, 0, EncodeDecision(Decision{TxID: "ghost", Shard: 0, Coord: RouterLoc, Commit: true}))
	if len(outs) != 1 || outs[0].M.Hdr != HdrAck {
		t.Fatalf("unprepared commit not acked: %v", outs)
	}
	for id := 0; id < 8; id++ {
		if b := balance(t, r, id); b != 1000 {
			t.Fatalf("unprepared commit mutated account %d: %d", id, b)
		}
	}
}

func TestReplicaInterleavesPlainAndTwoPC(t *testing.T) {
	r := testReplica(t, 0)
	dep, err := core.EncodeTx(core.TxRequest{Client: "c1", Seq: 1, Type: "deposit", Args: []any{2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	p := Prepare{
		TxID: "tx", Coord: RouterLoc, Shard: 0, Participants: []int{0, 1},
		Sub: SubTx{Reserve: map[string]int64{"2": 100}, Apply: "deposit", ApplyArgs: []any{2, -100}},
	}
	// One delivered batch: plain deposit, then the prepare. The prepare
	// must observe the deposit (its slice of the order precedes it).
	outs := deliver(t, r, 0, dep, EncodePrepare(p))
	var vote *Vote
	var reply *core.TxResult
	for _, d := range outs {
		switch b := d.M.Body.(type) {
		case Vote:
			v := b
			vote = &v
		case core.TxResult:
			res := b
			reply = &res
		}
	}
	if reply == nil || reply.Aborted {
		t.Fatalf("plain deposit in mixed batch not committed: %v", outs)
	}
	if vote == nil || !vote.OK {
		t.Fatalf("prepare in mixed batch not voted on: %v", outs)
	}
	if b := balance(t, r, 2); b != 1005 {
		t.Fatalf("balance = %d, want 1005", b)
	}
	// Duplicate Deliver from a second service node: fully ignored.
	if outs := deliver(t, r, 0, dep); outs != nil {
		t.Fatalf("duplicate slot produced output: %v", outs)
	}
}

// ------------------------------------------------------------------- flow --

// flowRouter builds a router with overload control armed and a
// test-owned clock.
func flowRouter(t *testing.T, cfg Config) (*Router, *time.Duration) {
	t.Helper()
	now := new(time.Duration)
	cfg.Slf, cfg.Part, cfg.App = RouterLoc, modPart{2}, Bank()
	cfg.Shards = [][]msg.Loc{{"s0b1"}, {"s1b1"}}
	cfg.Retry = 100 * time.Millisecond
	cfg.Now = func() time.Duration { return *now }
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, now
}

func rejectOf(t *testing.T, outs []msg.Directive) flow.Reject {
	t.Helper()
	if len(outs) != 1 || outs[0].M.Hdr != flow.HdrReject {
		t.Fatalf("want exactly one flow.Reject, got %v", outs)
	}
	return outs[0].M.Body.(flow.Reject)
}

func transfer(seq int64) core.TxRequest {
	return core.TxRequest{Client: "c1", Seq: seq, Type: "transfer", Args: []any{0, 1, 10}}
}

func finish(t *testing.T, r *Router, req core.TxRequest) {
	t.Helper()
	id := req.Key()
	step(t, r, HdrVote, Vote{TxID: id, Shard: 0, From: "s0r1", OK: true})
	step(t, r, HdrVote, Vote{TxID: id, Shard: 1, From: "s1r1", OK: true})
	step(t, r, HdrAck, Ack{TxID: id, Shard: 0, From: "s0r1"})
	step(t, r, HdrAck, Ack{TxID: id, Shard: 1, From: "s1r1"})
}

func TestRouterShedsOverMaxInflight(t *testing.T) {
	r, _ := flowRouter(t, Config{MaxInflight: 2})
	a, b, c := transfer(1), transfer(2), transfer(3)
	step(t, r, core.HdrTx, a)
	step(t, r, core.HdrTx, b)
	if r.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", r.InFlight())
	}
	// The third arrival is refused explicitly — a Reject, not silence.
	rej := rejectOf(t, step(t, r, core.HdrTx, c))
	if rej.Reason != flow.ReasonOverload || rej.Seq != 3 {
		t.Fatalf("reject = %+v, want overload for seq 3", rej)
	}
	if rej.Depth != 2 || rej.Cap != 3 {
		t.Fatalf("reject audit fields depth=%d cap=%d, want 2/3", rej.Depth, rej.Cap)
	}
	if r.InFlight() != 2 {
		t.Fatalf("shed arrival changed InFlight to %d", r.InFlight())
	}
	// Completing one transaction frees its slot; the retry is admitted.
	finish(t, r, a)
	if bc, _ := bcastsIn(step(t, r, core.HdrTx, c)); len(bc) != 2 {
		t.Fatalf("retry after drain sent %d prepares, want 2", len(bc))
	}
	if r.InFlight() != 2 {
		t.Fatalf("InFlight after readmission = %d, want 2", r.InFlight())
	}
}

func TestRouterRejectsExpiredDeadline(t *testing.T) {
	r, now := flowRouter(t, Config{})
	*now = 100 * time.Millisecond
	req := transfer(1)
	req.Deadline = int64(50 * time.Millisecond)
	rej := rejectOf(t, step(t, r, core.HdrTx, req))
	if rej.Reason != flow.ReasonDeadline {
		t.Fatalf("reject reason %q, want deadline", rej.Reason)
	}
	if r.InFlight() != 0 {
		t.Fatalf("expired request entered 2PC: InFlight = %d", r.InFlight())
	}
}

func TestRouterBreakerFailsFastThenProbes(t *testing.T) {
	r, now := flowRouter(t, Config{BreakTrips: 2, BreakCool: time.Second})
	a := transfer(1)
	step(t, r, core.HdrTx, a)
	// Two full retry periods with both shards silent: breakers open.
	step(t, r, HdrRetry, RetryBody{TxID: a.Key()})
	step(t, r, HdrRetry, RetryBody{TxID: a.Key()})
	// New transactions now fail fast...
	rej := rejectOf(t, step(t, r, core.HdrTx, transfer(2)))
	if rej.Reason != flow.ReasonBreaker {
		t.Fatalf("reject reason %q, want breaker", rej.Reason)
	}
	// ...while the admitted one keeps re-driving through the open breaker.
	if bc, _ := bcastsIn(step(t, r, HdrRetry, RetryBody{TxID: a.Key()})); len(bc) != 2 {
		t.Fatalf("open breaker blocked re-drive of an admitted transaction")
	}
	// After the cooldown one probe transaction is admitted...
	*now = 2 * time.Second
	probe := transfer(3)
	if bc, _ := bcastsIn(step(t, r, core.HdrTx, probe)); len(bc) != 2 {
		t.Fatalf("probe after cooldown not admitted")
	}
	// ...and further traffic still fails fast until the probe resolves.
	rej = rejectOf(t, step(t, r, core.HdrTx, transfer(4)))
	if rej.Reason != flow.ReasonBreaker {
		t.Fatalf("half-open breaker admitted extra traffic: %+v", rej)
	}
	// The probe's votes close the breakers; traffic flows again.
	finish(t, r, probe)
	if bc, _ := bcastsIn(step(t, r, core.HdrTx, transfer(5))); len(bc) != 2 {
		t.Fatalf("breaker did not close after a successful probe")
	}
}

func TestRouterBudgetThrottlesRedrive(t *testing.T) {
	r, _ := flowRouter(t, Config{Budget: &flow.RetryBudget{Rate: 1, Burst: 1}})
	a := transfer(1)
	step(t, r, core.HdrTx, a)
	// The first re-drive spends the only token...
	if bc, _ := bcastsIn(step(t, r, HdrRetry, RetryBody{TxID: a.Key()})); len(bc) != 2 {
		t.Fatalf("budgeted re-drive did not retransmit")
	}
	// ...the second round is skipped but the timer stays armed: the
	// transaction is throttled, never abandoned.
	outs := step(t, r, HdrRetry, RetryBody{TxID: a.Key()})
	if len(outs) != 1 || outs[0].M.Hdr != HdrRetry || outs[0].Delay <= 0 {
		t.Fatalf("empty budget should re-arm only, got %v", outs)
	}
	if r.InFlight() != 1 {
		t.Fatalf("throttled transaction abandoned: InFlight = %d", r.InFlight())
	}
}
