package shard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/flow"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/store"
)

// Config parameterizes a Router.
type Config struct {
	// Slf is the router's own location (votes, acks, and timers arrive
	// here; it is also the 2PC coordinator identity in Prepare records).
	Slf msg.Loc
	// Part places keys on shards. Part.N() must equal len(Shards).
	Part Partitioner
	// App supplies key extraction and cross-shard splitting.
	App App
	// Shards lists each shard's broadcast service nodes: Shards[k] are the
	// locations accepting HdrBcast for shard k's total order.
	Shards [][]msg.Loc
	// Retry is the coordinator's retransmission period for 2PC records
	// (0 = 500ms). Retransmissions are idempotent at the replicas, so a
	// tight period trades duplicate ordered records for recovery latency.
	Retry time.Duration
	// Stable, when set, journals the coordinator's write-ahead records
	// (begin before the first prepare, the decision before it is revealed)
	// so a restarted router drives every open transaction to its decided
	// outcome instead of leaving participants half-prepared.
	Stable store.Stable
	// MaxInflight bounds concurrent cross-shard transactions the
	// coordinator holds open (0 = unlimited). An arrival over the bound
	// is answered with an explicit flow.Reject (ReasonOverload) — never
	// silently dropped — and an admitted transaction always runs to its
	// decided outcome, so the bound caps coordinator memory and the
	// blast radius of a 2PC stall without ever abandoning prepared
	// participants. Single-shard forwards are not counted here: they are
	// bounded by the owning shard's own sequencer admission queue.
	MaxInflight int
	// Now is the deployment clock (virtual in simulation, wall live).
	// Required for deadline checks, breakers, and the retry budget.
	Now func() time.Duration
	// Budget, when set, throttles 2PC re-drive rounds: each retry-timer
	// retransmission spends one token, and an empty bucket skips that
	// round (the timer stays armed — the transaction is never
	// abandoned). This keeps coordinator retransmissions from amplifying
	// the congestion that delayed the votes in the first place.
	Budget *flow.RetryBudget
	// BreakTrips enables a per-shard circuit breaker: after BreakTrips
	// consecutive re-drive rounds in which a shard owed a vote or ack
	// and sent none, new cross-shard transactions touching that shard
	// fail fast with a flow.Reject (ReasonBreaker) until BreakCool
	// (0 = 1s) admits a probe transaction. 0 disables breakers.
	// Requires Now. Already-admitted transactions keep re-driving
	// through an open breaker — run-to-completion outranks fail-fast.
	BreakTrips int
	// BreakCool is the open-breaker cooldown before a probe (0 = 1s).
	BreakCool time.Duration
}

func (c Config) now() time.Duration {
	if c.Now == nil {
		return 0
	}
	return c.Now()
}

func (c Config) retry() time.Duration {
	if c.Retry <= 0 {
		return 500 * time.Millisecond
	}
	return c.Retry
}

// Router fronts the sharded deployment: clients address it like a
// replica (core.HdrTx), single-shard requests are forwarded into the
// owning shard's total order unchanged, and cross-shard requests run
// two-phase commit with the router as coordinator. All coordinator state
// transitions are journaled write-ahead, making the 2PC outcome as
// durable as the router's Stable — and because the records themselves
// are ordered through each participant's broadcast, participants recover
// the outcome from their own WALs even if the router's journal is lost.
type Router struct {
	cfg Config
	// seq numbers the router's own broadcasts. Every (re)transmission
	// takes a fresh value: the broadcast layer dedups on (From, Seq), so
	// reusing one could silently swallow a retransmission whose first
	// copy was ordered but whose vote or ack was lost.
	seq int64
	// txs holds in-flight cross-shard transactions by TxID.
	txs map[string]*txState
	// doneRes answers duplicate submissions of completed cross-shard
	// transactions (the coordinator is their only replier, so it keeps
	// its own dedup table just like an executor does).
	doneRes map[string]core.TxResult
	// fwd rotates the target broadcast node per single-shard request key,
	// so a client retry through the router probes another service node.
	fwd map[string]int
	// q bounds admitted-but-undecided cross-shard transactions (nil when
	// Config.MaxInflight is 0); brk holds the per-shard circuit breakers
	// (nil when Config.BreakTrips is 0).
	q   *flow.Queue
	brk map[int]*flow.Breaker
	// lg logs coordinator lifecycle under the router's own node id.
	lg *obs.Logger
}

// txState is the coordinator's view of one cross-shard transaction.
type txState struct {
	req  core.TxRequest
	subs map[int]SubTx
	// att counts prepare/decision sends per shard — each send rotates the
	// target service node and burns a fresh broadcast seq.
	att     map[int]int
	votes   map[int]bool
	decided bool
	commit  bool
	acked   map[int]bool
	res     core.TxResult
	// admitted records that this transaction holds a flow.Queue slot
	// (released when it completes). Not journaled: replay re-admits
	// recovered transactions best-effort, and only slots actually taken
	// are released.
	admitted bool
}

var _ gpm.Process = (*Router)(nil)

// journalRec is one record of the coordinator's write-ahead journal.
type journalRec struct {
	// Kind is "begin" (prepares about to go out), "decide" (outcome
	// fixed, about to be revealed), or "done" (all participants acked).
	Kind   string
	TxID   string
	Req    core.TxRequest
	Subs   map[int]SubTx
	Commit bool
	// Seq is the router's broadcast seq high-water at journal time;
	// recovery resumes above it (plus headroom for unjournaled resends).
	Seq int64
}

// NewRouter builds a router, replaying cfg.Stable if set.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Part == nil || cfg.App == nil {
		return nil, fmt.Errorf("shard: router needs a Partitioner and an App")
	}
	if cfg.Part.N() != len(cfg.Shards) {
		return nil, fmt.Errorf("shard: partitioner has %d shards but %d broadcast groups are configured",
			cfg.Part.N(), len(cfg.Shards))
	}
	for k, nodes := range cfg.Shards {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no broadcast nodes", k)
		}
	}
	r := &Router{
		cfg:     cfg,
		txs:     make(map[string]*txState),
		doneRes: make(map[string]core.TxResult),
		fwd:     make(map[string]int),
		lg:      obs.L("shard.router").WithNode(cfg.Slf),
	}
	if cfg.MaxInflight > 0 {
		// Only writes are admitted here (cross-shard begins); the nested
		// thresholds still need readCap < writeCap < cap, so the write
		// bound is MaxInflight with one control slot of headroom above it.
		m := cfg.MaxInflight
		if m < 2 {
			m = 2
		}
		rc := m / 2
		if rc < 1 {
			rc = 1
		}
		r.q = flow.NewQueueCaps(m+1, rc, m)
	}
	if cfg.BreakTrips > 0 {
		r.brk = make(map[int]*flow.Breaker)
	}
	if cfg.Stable != nil {
		if err := r.replay(); err != nil {
			return nil, err
		}
		if len(r.txs) > 0 {
			r.lg.Infof("journal replay recovered %d open cross-shard transactions, resume seq %d",
				len(r.txs), r.seq)
		}
	}
	return r, nil
}

// replay rebuilds coordinator state from the journal: a begin without a
// decide re-enters the voting phase (recovery re-sends its prepares); a
// decide without a done re-enters the ack phase (recovery re-sends its
// decisions); a done clears the transaction into the dedup table.
func (r *Router) replay() error {
	gobArgs()
	var high int64
	err := r.cfg.Stable.Replay(func(rec []byte) error {
		var jr journalRec
		if err := gob.NewDecoder(bytes.NewReader(rec)).Decode(&jr); err != nil {
			return fmt.Errorf("shard: corrupt router journal: %w", err)
		}
		if jr.Seq > high {
			high = jr.Seq
		}
		switch jr.Kind {
		case "begin":
			// Recovered transactions re-occupy admission slots best-effort:
			// they must be driven to completion even when more were open at
			// the crash than the (possibly reconfigured) bound now allows.
			r.txs[jr.TxID] = &txState{
				req: jr.Req, subs: jr.Subs,
				att:   make(map[int]int),
				votes: make(map[int]bool), acked: make(map[int]bool),
				admitted: r.q != nil && r.q.Admit(flow.ClassWrite) == nil,
			}
		case "decide":
			tx, ok := r.txs[jr.TxID]
			if !ok {
				return fmt.Errorf("shard: journal decides unknown transaction %s", jr.TxID)
			}
			tx.decided, tx.commit = true, jr.Commit
			tx.res = r.result(tx.req, jr.Commit)
		case "done":
			if tx, ok := r.txs[jr.TxID]; ok {
				r.doneRes[jr.TxID] = tx.res
				delete(r.txs, jr.TxID)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Resume seqs well above the journaled high-water: retransmissions
	// between journal appends burned seqs the journal never saw.
	if high > 0 {
		r.seq = high + 1<<20
	}
	return nil
}

func (r *Router) journal(jr journalRec) {
	if r.cfg.Stable == nil {
		return
	}
	jr.Seq = r.seq
	gobArgs()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(jr); err != nil {
		panic(fmt.Sprintf("shard: encode journal record: %v", err))
	}
	if err := r.cfg.Stable.Append(buf.Bytes()); err != nil {
		panic(fmt.Sprintf("shard: append router journal: %v", err))
	}
}

// InFlight counts open cross-shard transactions (zero after a drain
// means no 2PC is stuck mid-protocol).
func (r *Router) InFlight() int { return len(r.txs) }

// Recovered lists the TxIDs the journal replay left open (tests).
func (r *Router) Recovered() []string {
	out := make([]string, 0, len(r.txs))
	for _, id := range sortedKeys(r.txs) {
		out = append(out, id)
	}
	return out
}

// RecoveryDirectives re-drives every journal-recovered open transaction:
// undecided ones re-send prepares (participants re-vote idempotently),
// decided ones re-send decisions. Call once after NewRouter on restart
// and emit the result.
func (r *Router) RecoveryDirectives() []msg.Directive {
	var outs []msg.Directive
	for _, id := range sortedKeys(r.txs) {
		tx := r.txs[id]
		if tx.decided {
			outs = append(outs, r.sendDecisions(id, tx)...)
		} else {
			outs = append(outs, r.sendPrepares(id, tx)...)
		}
		outs = append(outs, r.armRetry(id))
	}
	return outs
}

// Halted implements gpm.Process.
func (r *Router) Halted() bool { return false }

// Step implements gpm.Process.
func (r *Router) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	switch in.Hdr {
	case core.HdrTx:
		return r, r.onTx(in.Body.(core.TxRequest))
	case HdrVote:
		return r, r.onVote(in.Body.(Vote))
	case HdrAck:
		return r, r.onAck(in.Body.(Ack))
	case HdrRetry:
		return r, r.onRetry(in.Body.(RetryBody))
	}
	return r, nil
}

// onTx classifies a client request: malformed → answer directly,
// single-shard → forward into the owning shard's order, cross-shard →
// coordinate 2PC.
func (r *Router) onTx(req core.TxRequest) []msg.Directive {
	if r.cfg.Now != nil && flow.Expired(req.Deadline, int64(r.cfg.now())) {
		// Expired on arrival: refuse before any shard does work on it.
		// Terminal for the client — a retry cannot meet the deadline.
		flow.MarkExpired()
		return r.reject(req, flow.ClassWrite, flow.ReasonDeadline, 0, 0)
	}
	keys, err := r.cfg.App.Keys(req)
	if err != nil {
		return []msg.Directive{msg.Send(req.Client, msg.M(core.HdrTxResult, core.TxResult{
			Client: req.Client, Seq: req.Seq, Aborted: true, Err: err.Error(),
		}))}
	}
	shards := make(map[int]bool)
	for _, k := range keys {
		shards[r.cfg.Part.Shard(k)] = true
	}
	if len(shards) == 1 {
		for s := range shards {
			return r.forward(s, req)
		}
	}
	return r.onCrossShard(req)
}

// forward injects a single-shard request into shard s's total order. The
// Bcast keeps the client's own (From, Seq) identity so client retries
// dedup in the broadcast layer exactly as in the unsharded deployment,
// and the shard's replicas answer the client directly.
func (r *Router) forward(s int, req core.TxRequest) []msg.Directive {
	payload, err := core.EncodeTx(req)
	if err != nil {
		return []msg.Directive{msg.Send(req.Client, msg.M(core.HdrTxResult, core.TxResult{
			Client: req.Client, Seq: req.Seq, Aborted: true, Err: err.Error(),
		}))}
	}
	nodes := r.cfg.Shards[s]
	att := r.fwd[req.Key()]
	r.fwd[req.Key()] = att + 1
	mRouterForwards.Inc()
	b := broadcast.Bcast{From: req.Client, Seq: req.Seq, Payload: payload, Deadline: req.Deadline}
	return []msg.Directive{msg.Send(nodes[att%len(nodes)], msg.M(broadcast.HdrBcast, b))}
}

// reject answers a refused request with an explicit flow.Reject so the
// client observes the refusal (and the checker can audit it) instead
// of timing out against silence.
func (r *Router) reject(req core.TxRequest, class flow.Class, reason string, depth, qcap int) []msg.Directive {
	flow.MarkReject()
	mRouterRejects.Inc()
	r.lg.Logf(obs.LevelWarn, req.Key(), "refused client request: %s (depth=%d cap=%d)", reason, depth, qcap)
	return []msg.Directive{msg.Send(req.Client, msg.M(flow.HdrReject, flow.Reject{
		From: r.cfg.Slf, Seq: req.Seq, Class: class, Reason: reason, Depth: depth, Cap: qcap,
	}))}
}

// breaker returns shard s's circuit breaker, creating it lazily (nil
// when breakers are disabled — every Breaker method handles nil).
func (r *Router) breaker(s int) *flow.Breaker {
	if r.brk == nil {
		return nil
	}
	b, ok := r.brk[s]
	if !ok {
		b = &flow.Breaker{Threshold: r.cfg.BreakTrips, Cooldown: r.cfg.BreakCool}
		r.brk[s] = b
	}
	return b
}

// onCrossShard starts (or re-drives) 2PC for a multi-shard request.
func (r *Router) onCrossShard(req core.TxRequest) []msg.Directive {
	id := req.Key()
	if res, ok := r.doneRes[id]; ok {
		// Completed earlier; answer from the coordinator's dedup table.
		return []msg.Directive{msg.Send(req.Client, msg.M(core.HdrTxResult, res))}
	}
	if tx, ok := r.txs[id]; ok {
		// Client retry of an in-flight transaction: retransmit whatever
		// phase it is in rather than starting over.
		return r.redrive(id, tx)
	}
	subs, err := r.cfg.App.Split(req, r.cfg.Part)
	if err != nil {
		return []msg.Directive{msg.Send(req.Client, msg.M(core.HdrTxResult, core.TxResult{
			Client: req.Client, Seq: req.Seq, Aborted: true, Err: err.Error(),
		}))}
	}
	// Admission gates only NEW transactions — everything below is
	// pre-prepare, so a refusal here never strands a participant. The
	// non-mutating Ready pass runs before Admit and Allow so a refusal
	// partway through cannot leak a queue slot or strand a breaker
	// half-open with no probe in flight.
	if r.brk != nil {
		for _, s := range sortedShards(subs) {
			if !r.breaker(s).Ready(r.cfg.now()) {
				return r.reject(req, flow.ClassWrite, flow.ReasonBreaker, 0, 0)
			}
		}
	}
	admitted := false
	if r.q != nil {
		if r.q.Admit(flow.ClassWrite) != nil {
			return r.reject(req, flow.ClassWrite, flow.ReasonOverload, r.q.Len(), r.q.Cap())
		}
		admitted = true
	}
	if r.brk != nil {
		for _, s := range sortedShards(subs) {
			r.breaker(s).Allow(r.cfg.now()) // take the half-open probe slot
		}
	}
	tx := &txState{
		req: req, subs: subs,
		att:   make(map[int]int),
		votes: make(map[int]bool), acked: make(map[int]bool),
		admitted: admitted,
	}
	r.txs[id] = tx
	// Write-ahead: the begin record hits the journal before any prepare
	// leaves, so a crashed coordinator knows which transactions may have
	// participants holding reservations.
	r.journal(journalRec{Kind: "begin", TxID: id, Req: req, Subs: subs})
	m2PCBegins.Inc()
	outs := r.sendPrepares(id, tx)
	return append(outs, r.armRetry(id))
}

// sendPrepares broadcasts this transaction's prepare into every
// participant shard that has not voted yet.
func (r *Router) sendPrepares(id string, tx *txState) []msg.Directive {
	parts := sortedShards(tx.subs)
	var outs []msg.Directive
	for _, s := range parts {
		if _, voted := tx.votes[s]; voted {
			continue
		}
		p := Prepare{
			TxID: id, Coord: r.cfg.Slf, Shard: s,
			Participants: parts, Req: tx.req, Sub: tx.subs[s],
		}
		outs = append(outs, r.order(s, tx, EncodePrepare(p)))
	}
	return outs
}

// sendDecisions broadcasts the decided outcome into every participant
// shard that has not acked yet.
func (r *Router) sendDecisions(id string, tx *txState) []msg.Directive {
	var outs []msg.Directive
	for _, s := range sortedShards(tx.subs) {
		if tx.acked[s] {
			continue
		}
		d := Decision{TxID: id, Shard: s, Coord: r.cfg.Slf, Commit: tx.commit}
		outs = append(outs, r.order(s, tx, EncodeDecision(d)))
	}
	return outs
}

// order submits one 2PC record into shard s's total order with a fresh
// broadcast seq, rotating the service node on each attempt.
func (r *Router) order(s int, tx *txState, payload []byte) msg.Directive {
	r.seq++
	tx.att[s]++
	nodes := r.cfg.Shards[s]
	node := nodes[(s+tx.att[s])%len(nodes)]
	b := broadcast.Bcast{From: r.cfg.Slf, Seq: r.seq, Payload: payload}
	return msg.Send(node, msg.M(broadcast.HdrBcast, b))
}

func (r *Router) armRetry(id string) msg.Directive {
	return msg.SendAfter(r.cfg.retry(), r.cfg.Slf, msg.M(HdrRetry, RetryBody{TxID: id}))
}

// onVote records a shard's prepare vote; replicas of the shard vote
// identically (the vote is a deterministic function of the delivered
// order), so the first vote per shard decides its contribution.
func (r *Router) onVote(v Vote) []msg.Directive {
	tx, ok := r.txs[v.TxID]
	if !ok || tx.decided {
		return nil
	}
	if _, isPart := tx.subs[v.Shard]; !isPart {
		return nil
	}
	if _, have := tx.votes[v.Shard]; have {
		return nil
	}
	// Any vote — commit or abort — proves the shard is ordering and
	// executing; the breaker measures reachability, not commit rate.
	r.breaker(v.Shard).Success()
	tx.votes[v.Shard] = v.OK
	if !v.OK {
		return r.decide(v.TxID, tx, false)
	}
	if len(tx.votes) < len(tx.subs) {
		return nil
	}
	return r.decide(v.TxID, tx, true)
}

// decide fixes the outcome (journaled write-ahead), reveals it to the
// participants, and answers the client. Replying at decision time — not
// after acks — matches 2PC's commit point: the decision record is
// durable in the coordinator journal and will reach every participant's
// total order even across crashes.
func (r *Router) decide(id string, tx *txState, commit bool) []msg.Directive {
	tx.decided, tx.commit = true, commit
	tx.res = r.result(tx.req, commit)
	r.journal(journalRec{Kind: "decide", TxID: id, Commit: commit})
	if r.lg.Enabled(obs.LevelDebug) {
		r.lg.Logf(obs.LevelDebug, id, "decided commit=%v across %d shards", commit, len(tx.subs))
	}
	if commit {
		m2PCCommits.Inc()
	} else {
		m2PCAborts.Inc()
	}
	outs := r.sendDecisions(id, tx)
	outs = append(outs, msg.Send(tx.req.Client, msg.M(core.HdrTxResult, tx.res)))
	return append(outs, r.armRetry(id))
}

func (r *Router) result(req core.TxRequest, commit bool) core.TxResult {
	res := core.TxResult{Client: req.Client, Seq: req.Seq, Aborted: !commit}
	if !commit {
		res.Err = core.ErrAbort.Error()
	}
	return res
}

// onAck retires a participant once any of its replicas confirms the
// decision was delivered; when all participants acked, the transaction
// is done and compacted into the dedup table.
func (r *Router) onAck(a Ack) []msg.Directive {
	tx, ok := r.txs[a.TxID]
	if !ok || !tx.decided {
		return nil
	}
	if _, isPart := tx.subs[a.Shard]; !isPart {
		return nil
	}
	r.breaker(a.Shard).Success()
	tx.acked[a.Shard] = true
	if len(tx.acked) < len(tx.subs) {
		return nil
	}
	if tx.admitted {
		r.q.Release()
	}
	r.doneRes[a.TxID] = tx.res
	delete(r.txs, a.TxID)
	r.journal(journalRec{Kind: "done", TxID: a.TxID})
	if len(r.txs) == 0 && r.cfg.Stable != nil {
		// Journal compaction point: with nothing in flight the journal's
		// only job is the dedup table, which an empty snapshot plus the
		// trailing done records reconstructs. Snapshotting here truncates
		// the begin/decide history of completed transactions.
		_ = r.cfg.Stable.SaveSnapshot(nil)
	}
	return nil
}

// onRetry retransmits whatever the guarded transaction still waits for.
// The timer re-arms until the transaction completes; retransmitted
// records take fresh seqs and participants absorb the duplicates.
func (r *Router) onRetry(t RetryBody) []msg.Directive {
	tx, ok := r.txs[t.TxID]
	if !ok {
		return nil
	}
	if r.cfg.Budget != nil && !r.cfg.Budget.Allow(r.cfg.now()) {
		// Retry budget empty: skip this re-drive round but keep the timer
		// armed. The budget throttles retransmission volume under
		// congestion; the transaction itself is never abandoned.
		return []msg.Directive{r.armRetry(t.TxID)}
	}
	if r.brk != nil {
		// A full retry period elapsed with votes or acks still owed:
		// count one failure against each shard that stayed silent.
		now := r.cfg.now()
		for _, s := range sortedShards(tx.subs) {
			if _, voted := tx.votes[s]; !tx.decided && voted {
				continue
			}
			if tx.decided && tx.acked[s] {
				continue
			}
			r.breaker(s).Failure(now)
		}
	}
	m2PCRetransmits.Inc()
	r.lg.Logf(obs.LevelWarn, t.TxID, "retry timer fired, re-driving (decided=%v, votes=%d/%d, acks=%d/%d)",
		tx.decided, len(tx.votes), len(tx.subs), len(tx.acked), len(tx.subs))
	return append(r.redrive(t.TxID, tx), r.armRetry(t.TxID))
}

func (r *Router) redrive(id string, tx *txState) []msg.Directive {
	if tx.decided {
		return r.sendDecisions(id, tx)
	}
	return r.sendPrepares(id, tx)
}

// sortedKeys orders a txs map for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
