package synod

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/store"
	"shadowdb/internal/verify"
)

// The correctness properties of the Synod module. The paper reports 24
// automatically and 75 manually proved lemmas over three weeks for
// Paxos-Synod; here the corresponding end-to-end safety properties are
// checked mechanically, and the Google acceptor-amnesia bug (Section II-D)
// is preserved as a fault-injection regression that the checker must
// catch.

// ErrDisagreement is returned when two different values are chosen for
// one instance.
var ErrDisagreement = errors.New("synod: agreement violated")

// testConfig builds the 1-leader, 3-acceptor instance used by the
// exhaustive checker.
func testConfig() Config {
	return Config{
		Leaders:   []msg.Loc{"l1"},
		Acceptors: []msg.Loc{"a1", "a2", "a3"},
		Learners:  []msg.Loc{"learner"},
	}
}

// duelConfig builds the 2-leader instance used by the fuzzer.
func duelConfig() Config {
	return Config{
		Leaders:   []msg.Loc{"l1", "l2"},
		Acceptors: []msg.Loc{"a1", "a2", "a3"},
		Learners:  []msg.Loc{"learner"},
		Backoff:   time.Millisecond,
	}
}

// agreementInvariant checks that learners never see two values for one
// instance.
func agreementInvariant(cfg Config) func([]gpm.TraceEntry) error {
	return func(trace []gpm.TraceEntry) error {
		return checkAgreementTrace(cfg, trace)
	}
}

func checkAgreementTrace(cfg Config, trace []gpm.TraceEntry) error {
	decided := make(map[int]string)
	for _, e := range trace {
		for inst, vals := range DecisionsOf(e.Outs, cfg.Learners) {
			for _, v := range vals {
				if prev, ok := decided[inst]; ok && prev != v {
					return fmt.Errorf("%w: instance %d chose %q and %q", ErrDisagreement, inst, prev, v)
				}
				decided[inst] = v
			}
		}
	}
	return nil
}

// Properties returns the registered property set of the module.
func Properties() []verify.Property {
	return []verify.Property{
		{Module: "Paxos-Synod", Name: "agreement/exhaustive", Mode: verify.Auto, Check: checkAgreementExhaustive},
		{Module: "Paxos-Synod", Name: "agreement/acceptor-crash", Mode: verify.Auto, Check: checkAgreementExhaustive},
		{Module: "Paxos-Synod", Name: "agreement/dueling-leaders", Mode: verify.Auto, Check: checkDuelingLeaders},
		{Module: "Paxos-Synod", Name: "durability/crash-restart", Mode: verify.Auto, Check: checkDurableRestart},
		{Module: "Paxos-Synod", Name: "promise-monotonicity", Mode: verify.Manual, Check: checkPromiseMonotonic},
		{Module: "Paxos-Synod", Name: "leader-change-preserves-choice", Mode: verify.Manual, Check: checkLeaderChange},
		{Module: "Paxos-Synod", Name: "amnesia-bug/regression", Mode: verify.Manual, Check: checkAmnesiaBug},
		{Module: "Paxos-Synod", Name: "termination/simple-run", Mode: verify.Manual, Check: checkTermination},
	}
}

// checkAgreementExhaustive explores schedules of a single-leader instance
// with one acceptor allowed to crash; agreement must hold throughout. The
// crash exploration also discharges the acceptor-crash property, so the
// result is shared.
var exhaustiveOnce = sync.OnceValue(func() error {
	cfg := testConfig()
	m := verify.Model{
		Gen:  Spec(cfg).Generator(),
		Locs: Spec(cfg).Locs,
		Init: []verify.Injection{
			{To: "l1", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "v1"})},
			{To: "l1", M: msg.M(HdrPropose, Propose{Inst: 1, Val: "v2"})},
		},
		Invariant: agreementInvariant(cfg),
		CrashLocs: []msg.Loc{"a3"},
		Crashes:   1,
		MaxDepth:  30,
		MaxRuns:   10_000,
	}
	_, err := verify.Exhaustive(m)
	return err
})

func checkAgreementExhaustive() error { return exhaustiveOnce() }

// checkDuelingLeaders fuzzes a two-leader instance proposing conflicting
// values for the same slot.
func checkDuelingLeaders() error {
	cfg := duelConfig()
	m := verify.Model{
		Gen:  Spec(cfg).Generator(),
		Locs: Spec(cfg).Locs,
		Init: []verify.Injection{
			{To: "l1", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "from-l1"})},
			{To: "l2", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "from-l2"})},
		},
		Invariant: agreementInvariant(cfg),
	}
	_, err := verify.Fuzz(m, 250, 200, 11)
	return err
}

// checkDurableRestart fuzzes dueling leaders over WAL-backed acceptors
// that the scheduler may crash AND restart — not the crash-stop of the
// other properties, and not the StateLoss reset of the amnesia
// regression: a restarted acceptor is rebuilt from its store, exactly
// as a real process reopens its data directory. Agreement and validity
// must hold, and no acceptor incarnation may ever reply with a ballot
// below one an earlier incarnation revealed ("an acceptor never
// forgets a promise" — the obligation the WAL discharges).
func checkDurableRestart() error {
	mem := store.NewMem()
	cfg := duelConfig()
	cfg.Stable = func(l msg.Loc) store.Stable {
		st, _ := mem.Open("acc-" + string(l))
		return st
	}
	m := verify.Model{
		Gen:  Spec(cfg).Generator(),
		Locs: Spec(cfg).Locs,
		Init: []verify.Injection{
			{To: "l1", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "from-l1"})},
			{To: "l2", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "from-l2"})},
		},
		CrashLocs: cfg.Acceptors,
		Crashes:   2,
		Restarts:  2,
		Reset:     mem.Reset,
		Invariant: durableRestartInvariant(cfg),
	}
	_, err := verify.Fuzz(m, 400, 250, 17)
	return err
}

func durableRestartInvariant(cfg Config) func([]gpm.TraceEntry) error {
	agree := agreementInvariant(cfg)
	proposed := map[string]bool{"from-l1": true, "from-l2": true}
	return func(trace []gpm.TraceEntry) error {
		if err := agree(trace); err != nil {
			return err
		}
		// Validity: only proposed values may be decided.
		for _, e := range trace {
			for inst, vals := range DecisionsOf(e.Outs, cfg.Learners) {
				for _, v := range vals {
					if !proposed[v] {
						return fmt.Errorf("synod: instance %d decided unproposed value %q", inst, v)
					}
				}
			}
		}
		// Promise monotonicity across incarnations: replies from one
		// acceptor location never regress in ballot, even when the
		// location was crashed and rebuilt from its WAL in between.
		last := make(map[msg.Loc]Ballot)
		seen := make(map[msg.Loc]bool)
		for _, e := range trace {
			for _, o := range e.Outs {
				var b Ballot
				switch body := o.M.Body.(type) {
				case P1b:
					b = body.B
				case P2b:
					b = body.B
				default:
					continue
				}
				if seen[e.Loc] && b.Less(last[e.Loc]) {
					return fmt.Errorf("synod: acceptor %s forgot its promise across restart: ballot went back from %s to %s",
						e.Loc, last[e.Loc], b)
				}
				last[e.Loc], seen[e.Loc] = b, true
			}
		}
		return nil
	}
}

// checkPromiseMonotonic verifies on a full run that every acceptor's
// promised ballot never decreases — the invariant the Google bug
// violates.
func checkPromiseMonotonic() error {
	cfg := duelConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("l1", msg.M(HdrPropose, Propose{Inst: 0, Val: "x"}))
	r.Inject("l2", msg.M(HdrPropose, Propose{Inst: 0, Val: "y"}))
	if _, err := r.Run(50_000); err != nil {
		return err
	}
	last := make(map[msg.Loc]Ballot)
	seen := make(map[msg.Loc]bool)
	for _, e := range r.Trace() {
		for _, o := range e.Outs {
			var b Ballot
			switch body := o.M.Body.(type) {
			case P1b:
				b = body.B
			case P2b:
				b = body.B
			default:
				continue
			}
			if seen[e.Loc] && b.Less(last[e.Loc]) {
				return fmt.Errorf("synod: acceptor %s promise went back from %s to %s", e.Loc, last[e.Loc], b)
			}
			last[e.Loc], seen[e.Loc] = b, true
		}
	}
	return nil
}

// checkLeaderChange verifies that a value chosen under one leader survives
// a later leader's takeover: the second leader must re-decide the same
// value.
func checkLeaderChange() error {
	trace, err := leaderChangeTrace(false)
	if err != nil {
		return err
	}
	cfg := duelConfig()
	if err := checkAgreementTrace(cfg, trace); err != nil {
		return err
	}
	// The run must actually contain decisions from both leaders' eras.
	n := countLearnerDecides(trace)
	if n < 2 {
		return fmt.Errorf("synod: scenario produced %d learner decisions, want >= 2", n)
	}
	return nil
}

// checkAmnesiaBug reproduces the Google bug of Section II-D at the
// acceptor level: "A Paxos acceptor could promise one leader not to
// accept ballots lower than b, lose this state after a disk corruption,
// and subsequently accept lower ballots." With amnesia enabled two
// different values end up chosen (accepted by majorities at their
// respective ballots); with healthy acceptors the low ballot is preempted
// and only one value can be chosen.
func checkAmnesiaBug() error {
	healthy, err := amnesiaScenario(false)
	if err != nil {
		return err
	}
	if len(healthy) > 1 {
		return fmt.Errorf("healthy acceptors chose %d values: %v", len(healthy), healthy)
	}
	broken, err := amnesiaScenario(true)
	if err != nil {
		return err
	}
	if len(broken) < 2 {
		return errors.New("amnesiac acceptors did not violate agreement; regression lost its bite")
	}
	return nil
}

// amnesiaScenario drives three acceptors through the violating message
// order directly and returns the set of values chosen for slot 0 (a value
// is chosen when a majority of acceptors accept it at the same ballot).
func amnesiaScenario(amnesia bool) (map[string]bool, error) {
	cfg := duelConfig()
	cfg.Amnesia = amnesia
	gen := Spec(cfg).Generator()
	accs := map[msg.Loc]gpm.Process{
		"a1": gen("a1"), "a2": gen("a2"), "a3": gen("a3"),
	}
	bLow := Ballot{N: 0, L: "l1"}
	bHigh := Ballot{N: 0, L: "l2"}

	send := func(to msg.Loc, m msg.Msg) []msg.Directive {
		next, outs := accs[to].Step(m)
		accs[to] = next
		return outs
	}

	// 1. Leader l2's scout: all acceptors promise the high ballot.
	for _, a := range []msg.Loc{"a1", "a2", "a3"} {
		send(a, msg.M(HdrP1a, P1a{B: bHigh, From: "l2"}))
	}
	// 2. a1 and a2 suffer disk corruption.
	send("a1", msg.M(HdrCorrupt, Corrupt{}))
	send("a2", msg.M(HdrCorrupt, Corrupt{}))
	// 3. Leader l1 runs a full round at the LOWER ballot on {a1, a2}.
	accepts := make(map[Ballot]map[string]int)
	record := func(outs []msg.Directive, b Ballot, val string) {
		for _, o := range outs {
			if r, ok := o.M.Body.(P2b); ok && r.B.Equal(b) {
				if accepts[b] == nil {
					accepts[b] = make(map[string]int)
				}
				accepts[b][val]++
			}
		}
	}
	for _, a := range []msg.Loc{"a1", "a2"} {
		send(a, msg.M(HdrP1a, P1a{B: bLow, From: "l1"}))
	}
	for _, a := range []msg.Loc{"a1", "a2"} {
		record(send(a, msg.M(HdrP2a, P2a{B: bLow, Inst: 0, Val: "v1", From: "l1"})), bLow, "v1")
	}
	// 4. Leader l2's commander proceeds on {a3, a1}.
	for _, a := range []msg.Loc{"a3", "a1"} {
		record(send(a, msg.M(HdrP2a, P2a{B: bHigh, Inst: 0, Val: "v2", From: "l2"})), bHigh, "v2")
	}

	chosen := make(map[string]bool)
	for _, vals := range accepts {
		for v, n := range vals {
			if n >= cfg.Majority() {
				chosen[v] = true
			}
		}
	}
	return chosen, nil
}

// leaderChangeTrace drives the scenario of Section II-D: leader l1 gets v1
// chosen, the acceptors are then hit with Corrupt messages (no-ops unless
// amnesia is enabled), and leader l2 proposes v2 for the same slot.
func leaderChangeTrace(amnesia bool) ([]gpm.TraceEntry, error) {
	cfg := duelConfig()
	cfg.Amnesia = amnesia
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("l1", msg.M(HdrPropose, Propose{Inst: 0, Val: "v1"}))
	for i, a := range cfg.Acceptors {
		r.InjectAfter(time.Duration(i+1)*time.Millisecond, a, msg.M(HdrCorrupt, Corrupt{}))
	}
	r.InjectAfter(10*time.Millisecond, "l2", msg.M(HdrPropose, Propose{Inst: 0, Val: "v2"}))
	if _, err := r.Run(50_000); err != nil {
		return nil, err
	}
	return r.Trace(), nil
}

func countLearnerDecides(trace []gpm.TraceEntry) int {
	n := 0
	for _, e := range trace {
		for _, o := range e.Outs {
			if o.Dest == "learner" && o.M.Hdr == HdrDecide {
				n++
			}
		}
	}
	return n
}

// checkTermination verifies a plain run decides every proposed instance.
func checkTermination() error {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	for i := 0; i < 5; i++ {
		r.Inject("l1", msg.M(HdrPropose, Propose{Inst: i, Val: fmt.Sprintf("v%d", i)}))
	}
	if _, err := r.Run(50_000); err != nil {
		return err
	}
	decided := make(map[int]bool)
	for _, e := range r.Trace() {
		for inst := range DecisionsOf(e.Outs, cfg.Learners) {
			decided[inst] = true
		}
	}
	for i := 0; i < 5; i++ {
		if !decided[i] {
			return fmt.Errorf("synod: instance %d never decided", i)
		}
	}
	return nil
}
