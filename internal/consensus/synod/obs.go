package synod

import (
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Observability for the Synod protocol: counters on the leader/scout/
// commander lifecycle and an extractor that publishes each message's
// slot/ballot coordinates so runtime step events carry them.

var (
	mProposals  = obs.C("synod.proposals")
	mScouts     = obs.C("synod.scouts")
	mCommanders = obs.C("synod.commanders")
	mAdopted    = obs.C("synod.adoptions")
	mPreempted  = obs.C("synod.preemptions")
	mWakes      = obs.C("synod.wakeups")
	mDecides    = obs.C("synod.decides")

	lg = obs.L("synod")
)

func init() {
	obs.RegisterExtractor(func(hdr string, body any) (obs.Fields, bool) {
		f := obs.NoFields()
		f.Kind = hdr
		switch b := body.(type) {
		case Propose:
			f.Slot = int64(b.Inst)
		case P1a:
			f.Ballot = int64(b.B.N)
		case P1b:
			f.Ballot = int64(b.B.N)
		case P2a:
			f.Slot, f.Ballot = int64(b.Inst), int64(b.B.N)
		case P2b:
			f.Slot, f.Ballot = int64(b.Inst), int64(b.B.N)
		case Adopted:
			f.Ballot = int64(b.B.N)
		case Preempted:
			f.Ballot = int64(b.B.N)
		case SpawnScout:
			f.Ballot = int64(b.B.N)
		case SpawnCmd:
			f.Slot, f.Ballot = int64(b.Inst), int64(b.B.N)
		case Decide:
			f.Slot = int64(b.Inst)
		default:
			return obs.Fields{}, false
		}
		return f, true
	})
}

// tracePreempt records a leader abandoning its ballot for a higher one.
func tracePreempt(slf msg.Loc, b Ballot) {
	mPreempted.Inc()
	if lg.Enabled(obs.LevelDebug) {
		lg.WithNode(slf).Debugf("preempted at ballot %d", b.N)
	}
	if obs.Default.Tracing() {
		e := obs.Ev(slf, obs.LayerConsensus, "px.preempt")
		e.Ballot = int64(b.N)
		obs.Default.Record(e)
	}
}

// traceDecide records a commander reaching quorum for an instance.
func traceDecide(slf msg.Loc, b Ballot, inst int) {
	mDecides.Inc()
	if lg.Enabled(obs.LevelDebug) {
		lg.WithNode(slf).Debugf("chose instance %d at ballot %d", inst, b.N)
	}
	if obs.Default.Tracing() {
		e := obs.Ev(slf, obs.LayerConsensus, "px.chosen")
		e.Slot, e.Ballot = int64(inst), int64(b.N)
		obs.Default.Record(e)
	}
}
