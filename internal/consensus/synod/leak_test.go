package synod

import (
	"testing"
	"time"

	"shadowdb/internal/leaktest"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/runtime"
)

// The suite's goroutine hygiene: a hosted synod deployment (leader +
// three acceptors over an in-process transport) must decide and then
// shut down without leaving host loops, wake/backoff timers, or
// transport pumps behind.
func TestHostedSynodLeavesNoGoroutines(t *testing.T) {
	leaktest.Check(t,
		"shadowdb/internal/consensus/synod",
		"shadowdb/internal/runtime",
		"shadowdb/internal/network",
	)

	cfg := testConfig()
	sys := Spec(cfg).System()

	hub := network.NewHub()
	var hosts []*runtime.Host
	defer func() {
		for _, h := range hosts {
			_ = h.Close()
		}
	}()
	for _, l := range sys.Locs {
		tr, err := hub.Register(l)
		if err != nil {
			t.Fatal(err)
		}
		h := runtime.NewHost(l, tr, sys.Gen(l))
		h.Obs = obs.New(64)
		h.Start()
		hosts = append(hosts, h)
	}
	learner, err := hub.Register("learner")
	if err != nil {
		t.Fatal(err)
	}
	defer learner.Close()
	cli, err := hub.Register("cli")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Send(msg.Envelope{From: "cli", To: "l1",
		M: msg.M(HdrPropose, Propose{Inst: 0, Val: "hosted"})}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case env := <-learner.Receive():
			if d, ok := env.M.Body.(Decide); ok && env.M.Hdr == HdrDecide {
				if d.Inst != 0 || d.Val != "hosted" {
					t.Fatalf("decided %+v, want instance 0 = hosted", d)
				}
				return // deferred closes + leaktest do the rest
			}
		case <-deadline:
			t.Fatal("synod never decided")
		}
	}
}
