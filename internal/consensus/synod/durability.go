package synod

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"shadowdb/internal/store"
)

// Acceptor durability. The paper's safety argument rests on "an
// acceptor never forgets a promise": every P1b/P2b reply is a durable
// commitment, so the mutation behind it must reach stable storage
// before the reply leaves the process. With Config.Stable set, each
// acceptor journals a record per adopted ballot / accepted pvalue
// ahead of replying, periodically compacts the journal into a
// snapshot, and restores itself from snapshot + replay when its class
// is instantiated again — which is what both a real process restart
// and a simulated crash-restart (verify's Restarts budget, the DES
// rebuild path) do.

// accRecord is one journaled acceptor mutation: the ballot adopted by
// the promise, plus the accepted pvalue when the mutation was phase 2.
type accRecord struct {
	B  Ballot
	PV *PValue
}

// accSnapshot is the full acceptor state, written every snapEvery
// journal records to bound replay length.
type accSnapshot struct {
	B    Ballot
	HasB bool
	PVs  []PValue
}

// accSnapEvery is how many journal appends trigger a compaction.
const accSnapEvery = 64

func gobBytes(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("synod: encode durable record: %v", err))
	}
	return buf.Bytes()
}

// persist journals the acceptor's latest mutation write-ahead. A
// storage failure panics: an acceptor that cannot persist must not
// reply, and it has no way to make progress safely.
func (s *acceptorState) persist(pv *PValue) {
	if s.st == nil {
		return
	}
	if err := s.st.Append(gobBytes(accRecord{B: s.ballot, PV: pv})); err != nil {
		panic(fmt.Sprintf("synod: acceptor journal: %v", err))
	}
	// The reply is a durable promise, so the record must be on disk
	// before it leaves. Under SyncAlways the Append already synced and
	// this is free; under SyncBatch it is the covering fsync that makes
	// batching sound for acceptors.
	if err := s.st.Sync(); err != nil {
		panic(fmt.Sprintf("synod: acceptor sync: %v", err))
	}
	s.sinceSnap++
	if s.sinceSnap < accSnapEvery {
		return
	}
	snap := accSnapshot{B: s.ballot, HasB: s.hasB, PVs: s.pvalues()}
	if err := s.st.SaveSnapshot(gobBytes(snap)); err != nil {
		panic(fmt.Sprintf("synod: acceptor snapshot: %v", err))
	}
	s.sinceSnap = 0
}

// restoreAcceptor rebuilds acceptor state from stable storage:
// snapshot first, then the journal tail.
func restoreAcceptor(st store.Stable) *acceptorState {
	s := &acceptorState{accepted: make(map[int]PValue), st: st}
	if b, ok, err := st.Snapshot(); err == nil && ok {
		var snap accSnapshot
		if gob.NewDecoder(bytes.NewReader(b)).Decode(&snap) == nil {
			s.ballot, s.hasB = snap.B, snap.HasB
			for _, pv := range snap.PVs {
				s.accepted[pv.Inst] = pv
			}
		}
	}
	err := st.Replay(func(rec []byte) error {
		var r accRecord
		if gob.NewDecoder(bytes.NewReader(rec)).Decode(&r) != nil {
			return nil // skip undecodable records, keep the rest
		}
		if !s.hasB || s.ballot.Less(r.B) {
			s.ballot, s.hasB = r.B, true
		}
		if r.PV != nil {
			if prev, ok := s.accepted[r.PV.Inst]; !ok || prev.B.Less(r.PV.B) {
				s.accepted[r.PV.Inst] = *r.PV
			}
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("synod: acceptor replay: %v", err))
	}
	return s
}
