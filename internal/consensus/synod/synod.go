// Package synod implements the multi-decree Paxos Synod protocol, "the
// heart of the same protocol in the Paxos implementation used by Google"
// (paper, Section II-D), following the role decomposition of Van Renesse's
// "Paxos Made Moderately Complex" [20]: Leaders drive ballots and delegate
// to short-lived Scout and Commander sub-processes; Acceptors maintain the
// fault-tolerant memory of the protocol.
//
// The protocol is an LoE specification: leaders are the parallel
// composition of a core handler and two Delegate combinators (one spawning
// scouts, one spawning commanders) — the paper's sub-process delegation
// pattern ("Our LoE delegation combinator allows us to specify distributed
// programs using a modular or divide and conquer method"). Sub-processes
// are addressed through self-messages, so the whole protocol stays inside
// the primitive combinator algebra and can be compiled to term programs
// and model-checked unchanged.
//
// Pipelining: Config.Window bounds how many instances the leader drives
// through phase 2 concurrently (commanders in flight); excess proposals
// queue and drain as decides arrive. The window throttles only when a
// proposal enters phase 2, never what an acceptor may accept, so it is
// a pure liveness/resource knob — safety is per-instance and per-ballot
// regardless of how instances interleave (DESIGN.md §8). Window = 0
// keeps the unbounded legacy behaviour; the broadcast sequencer's
// Pipeline knob maps onto it.
//
// The acceptor-amnesia bug that Google's Paxos extension suffered from
// (promising a ballot, losing the promise to disk corruption, and
// accepting lower ballots — Section II-D) is reproducible via
// Config.Amnesia and is caught by the model checker; see properties.go.
package synod

import (
	"fmt"
	"sort"
	"time"

	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
	"shadowdb/internal/store"
)

// Message headers of the protocol.
const (
	HdrPropose   = "px.propose"
	HdrP1a       = "px.p1a"
	HdrP1b       = "px.p1b"
	HdrP2a       = "px.p2a"
	HdrP2b       = "px.p2b"
	HdrAdopted   = "px.adopted"
	HdrPreempted = "px.preempted"
	HdrSpawnSct  = "px.spawnscout"
	HdrSpawnCmd  = "px.spawncmd"
	HdrWake      = "px.wake"
	HdrDecide    = "px.decide"
	HdrCorrupt   = "px.corrupt"
)

// Ballot is a Paxos ballot number: a round ordered lexicographically with
// the leader identity as tie-breaker.
type Ballot struct {
	N int
	L msg.Loc
}

// Less orders ballots.
func (b Ballot) Less(o Ballot) bool {
	if b.N != o.N {
		return b.N < o.N
	}
	return b.L < o.L
}

// Equal reports ballot equality.
func (b Ballot) Equal(o Ballot) bool { return b == o }

// String implements fmt.Stringer.
func (b Ballot) String() string { return fmt.Sprintf("(%d,%s)", b.N, b.L) }

// PValue is an accepted proposal: ballot, slot, value.
type PValue struct {
	B    Ballot
	Inst int
	Val  string
}

// Protocol message bodies.
type (
	// Propose asks the leaders to get Val chosen in instance Inst.
	Propose struct {
		Inst int
		Val  string
	}
	// P1a is the scout's phase-1 request.
	P1a struct {
		B    Ballot
		From msg.Loc
	}
	// P1b is an acceptor's phase-1 response: its current ballot and all
	// pvalues it has accepted.
	P1b struct {
		From     msg.Loc
		B        Ballot
		Accepted []PValue
	}
	// P2a is the commander's phase-2 request for one pvalue.
	P2a struct {
		B    Ballot
		Inst int
		Val  string
		From msg.Loc
	}
	// P2b is an acceptor's phase-2 response.
	P2b struct {
		From msg.Loc
		B    Ballot
		Inst int
	}
	// Adopted is the scout→leader self-message on majority adoption.
	Adopted struct {
		B        Ballot
		Accepted []PValue
	}
	// Preempted is the scout/commander→leader self-message on observing a
	// higher ballot.
	Preempted struct {
		B Ballot
	}
	// SpawnScout is the leader core→delegate self-message starting a
	// scout for ballot B.
	SpawnScout struct {
		B Ballot
	}
	// SpawnCmd is the leader core→delegate self-message starting a
	// commander for one pvalue.
	SpawnCmd struct {
		B    Ballot
		Inst int
		Val  string
	}
	// Wake retries leadership after a preemption backoff.
	Wake struct{}
	// Decide announces a chosen value to learners and leaders.
	Decide struct {
		Inst int
		Val  string
	}
	// Corrupt is the fault-injection message of the amnesia variant: the
	// receiving acceptor forgets everything, as if restarting from a
	// corrupted disk.
	Corrupt struct{}
)

// RegisterWireTypes registers the protocol's bodies with the wire codec.
func RegisterWireTypes() {
	for _, v := range []any{
		Propose{}, P1a{}, P1b{}, P2a{}, P2b{}, Adopted{}, Preempted{},
		SpawnScout{}, SpawnCmd{}, Wake{}, Decide{}, Corrupt{}, Ballot{}, PValue{},
	} {
		msg.RegisterBody(v)
	}
}

// Config parameterizes a Synod deployment.
type Config struct {
	// Leaders are the proposer locations.
	Leaders []msg.Loc
	// Acceptors are the acceptor locations.
	Acceptors []msg.Loc
	// Learners receive a Decide for every chosen instance.
	Learners []msg.Loc
	// Backoff is the base preemption backoff; a preempted leader retries
	// after Backoff scaled by its index (deterministic, keeps dueling
	// leaders apart). Zero means 50ms.
	Backoff time.Duration
	// Window bounds how many instances an active leader commands
	// concurrently (the pipeline window): proposals beyond it queue in
	// instance order and launch as earlier instances decide. 0 means
	// unbounded. Safety does not depend on the window — every instance
	// is a full Synod — it only bounds the burst of concurrent phase-2
	// rounds; in-order delivery is the learner's (sequencer's) job.
	Window int
	// Amnesia re-introduces the Google bug: acceptors honour Corrupt
	// messages by forgetting their promises. Only the fault-injection
	// tests enable it.
	Amnesia bool
	// Stable, when set, gives each acceptor durable storage: promises
	// and accepted pvalues are journaled before the reply that reveals
	// them leaves the acceptor, and a re-instantiated acceptor restores
	// itself from the store (see durability.go). Nil keeps acceptors
	// volatile (the pre-durability behaviour).
	Stable func(msg.Loc) store.Stable
	// AcceptorsFor, when set, resolves the acceptor set per instance —
	// the dynamic-membership hook (member.View.AcceptorsFor). A
	// commander captures the set for its instance at spawn; a scout
	// asks with inst = -1 for the newest set (it is electing for the
	// whole future). Nil keeps the static Acceptors.
	AcceptorsFor func(inst int) []msg.Loc
	// LearnersFor, when set, resolves the Decide fan-out at decision
	// time (member.View.Learners), so broadcast nodes joining the
	// cluster start learning without a restart. Nil keeps the static
	// Learners.
	LearnersFor func() []msg.Loc
}

// Majority is the static acceptor quorum size.
func (c Config) Majority() int { return len(c.Acceptors)/2 + 1 }

// acceptorsFor resolves the acceptor set governing inst (inst < 0 asks
// for the newest set).
func (c Config) acceptorsFor(inst int) []msg.Loc {
	if c.AcceptorsFor != nil {
		return c.AcceptorsFor(inst)
	}
	return c.Acceptors
}

// learnersNow resolves the current Decide fan-out.
func (c Config) learnersNow() []msg.Loc {
	if c.LearnersFor != nil {
		return c.LearnersFor()
	}
	return c.Learners
}

// majorityOf is the quorum size of one resolved acceptor set: quorums
// are per-epoch under dynamic membership, never mixed across sets.
func majorityOf(accs []msg.Loc) int { return len(accs)/2 + 1 }

func (c Config) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

// ------------------------------------------------------------ acceptor --

// acceptorState is the durable state of an acceptor.
type acceptorState struct {
	ballot   Ballot
	hasB     bool
	accepted map[int]PValue // slot -> highest-ballot accepted pvalue

	// st journals mutations write-ahead when durability is configured;
	// sinceSnap counts appends since the last compaction.
	st        store.Stable
	sinceSnap int
}

// AcceptorClass builds the acceptor event class.
func AcceptorClass(cfg Config) loe.Class {
	in := loe.Parallel(loe.Base(HdrP1a), loe.Base(HdrP2a), loe.Base(HdrCorrupt))
	init := func(slf msg.Loc) any {
		if cfg.Stable != nil {
			if st := cfg.Stable(slf); st != nil {
				return restoreAcceptor(st)
			}
		}
		return &acceptorState{accepted: make(map[int]PValue)}
	}
	step := func(slf msg.Loc, input, state any) (any, []msg.Directive) {
		s := state.(*acceptorState)
		switch b := input.(type) {
		case P1a:
			if !s.hasB || s.ballot.Less(b.B) {
				s.ballot, s.hasB = b.B, true
				// The promise is a durable commitment: journal it
				// before the P1b that reveals it exists.
				s.persist(nil)
			}
			return s, []msg.Directive{msg.Send(b.From, msg.M(HdrP1b, P1b{
				From: slf, B: s.ballot, Accepted: s.pvalues(),
			}))}
		case P2a:
			if !s.hasB || !b.B.Less(s.ballot) {
				// b.B >= current ballot: adopt and accept.
				s.ballot, s.hasB = b.B, true
				pv := PValue{B: b.B, Inst: b.Inst, Val: b.Val}
				prev, ok := s.accepted[b.Inst]
				if !ok || prev.B.Less(b.B) {
					s.accepted[b.Inst] = pv
				}
				s.persist(&pv)
			}
			return s, []msg.Directive{msg.Send(b.From, msg.M(HdrP2b, P2b{
				From: slf, B: s.ballot, Inst: b.Inst,
			}))}
		case Corrupt:
			if cfg.Amnesia {
				// The Google bug: all promises and accepted pvalues are
				// lost, as after restarting from a corrupted disk. With
				// durability configured the "disk" is wiped too, so a
				// later restore cannot resurrect the forgotten promises.
				st := s.st
				*s = acceptorState{accepted: make(map[int]PValue), st: st}
				if st != nil {
					_ = st.SaveSnapshot(gobBytes(accSnapshot{}))
				}
			}
			return s, nil
		}
		return s, nil
	}
	return loe.Handler("Acceptor", init, step, in)
}

// pvalues returns the accepted pvalues in deterministic slot order.
func (s *acceptorState) pvalues() []PValue {
	slots := make([]int, 0, len(s.accepted))
	for k := range s.accepted {
		slots = append(slots, k)
	}
	sort.Ints(slots)
	out := make([]PValue, 0, len(slots))
	for _, k := range slots {
		out = append(out, s.accepted[k])
	}
	return out
}

// -------------------------------------------------------------- leader --

// leaderState is the state of the leader core.
type leaderState struct {
	idx       int // index in cfg.Leaders, for deterministic backoff
	ballot    Ballot
	active    bool
	scouting  bool
	proposals map[int]string
	decided   map[int]string
	// inflight tracks the instances whose commanders are running under
	// the current ballot; queued holds proposal instances awaiting a
	// free pipeline-window slot, in arrival order.
	inflight map[int]bool
	queued   []int
}

// LeaderClass builds the leader event class: core handler in parallel with
// the scout and commander delegates.
func LeaderClass(cfg Config) loe.Class {
	core := leaderCore(cfg)
	scouts := loe.Delegate("Scouts", loe.Base(HdrSpawnSct), func(slf msg.Loc, v any) loe.Class {
		return scoutClass(cfg, v.(SpawnScout).B)
	})
	commanders := loe.Delegate("Commanders", loe.Base(HdrSpawnCmd), func(slf msg.Loc, v any) loe.Class {
		sc := v.(SpawnCmd)
		return commanderClass(cfg, sc.B, sc.Inst, sc.Val)
	})
	return loe.Parallel(core, scouts, commanders)
}

func leaderCore(cfg Config) loe.Class {
	in := loe.Parallel(
		loe.Base(HdrPropose), loe.Base(HdrAdopted), loe.Base(HdrPreempted),
		loe.Base(HdrWake), loe.Base(HdrDecide),
	)
	init := func(slf msg.Loc) any {
		idx := 0
		for i, l := range cfg.Leaders {
			if l == slf {
				idx = i
			}
		}
		return &leaderState{
			idx:       idx,
			ballot:    Ballot{N: 0, L: slf},
			proposals: make(map[int]string),
			decided:   make(map[int]string),
			inflight:  make(map[int]bool),
		}
	}
	step := func(slf msg.Loc, input, state any) (any, []msg.Directive) {
		s := state.(*leaderState)
		switch b := input.(type) {
		case Propose:
			return s, s.onPropose(cfg, slf, b)
		case Adopted:
			return s, s.onAdopted(cfg, slf, b)
		case Preempted:
			return s, s.onPreempted(cfg, slf, b)
		case Wake:
			mWakes.Inc()
			return s, s.onWake(slf)
		case Decide:
			return s, s.onDecide(cfg, slf, b)
		}
		return s, nil
	}
	return loe.Handler("LeaderCore", init, step, in)
}

func (s *leaderState) onPropose(cfg Config, slf msg.Loc, b Propose) []msg.Directive {
	if _, done := s.decided[b.Inst]; done {
		// Already chosen: remind the learners (idempotent; they dedupe).
		var outs []msg.Directive
		for _, l := range cfg.learnersNow() {
			outs = append(outs, msg.Send(l, msg.M(HdrDecide, Decide{Inst: b.Inst, Val: s.decided[b.Inst]})))
		}
		return outs
	}
	if _, dup := s.proposals[b.Inst]; dup {
		return nil
	}
	s.proposals[b.Inst] = b.Val
	mProposals.Inc()
	if s.active {
		return s.launch(cfg, slf, b.Inst)
	}
	if !s.scouting {
		s.scouting = true
		return []msg.Directive{msg.Send(slf, msg.M(HdrSpawnSct, SpawnScout{B: s.ballot}))}
	}
	return nil
}

// launch spawns a commander for inst if the pipeline window has room,
// queueing it otherwise. Only called while active.
func (s *leaderState) launch(cfg Config, slf msg.Loc, inst int) []msg.Directive {
	if cfg.Window > 0 && len(s.inflight) >= cfg.Window {
		s.queued = append(s.queued, inst)
		return nil
	}
	return []msg.Directive{s.spawn(slf, inst)}
}

// spawn emits the commander-delegate self-message for inst under the
// current ballot and marks it in flight.
func (s *leaderState) spawn(slf msg.Loc, inst int) msg.Directive {
	s.inflight[inst] = true
	return msg.Send(slf, msg.M(HdrSpawnCmd, SpawnCmd{B: s.ballot, Inst: inst, Val: s.proposals[inst]}))
}

// onDecide records a chosen instance and drains the proposal queue into
// the freed pipeline-window slot.
func (s *leaderState) onDecide(cfg Config, slf msg.Loc, b Decide) []msg.Directive {
	s.decided[b.Inst] = b.Val
	delete(s.proposals, b.Inst)
	delete(s.inflight, b.Inst)
	// The instance may have been decided by a competing leader while
	// sitting in our queue; drop it there too.
	for i, inst := range s.queued {
		if inst == b.Inst {
			s.queued = append(s.queued[:i], s.queued[i+1:]...)
			break
		}
	}
	if !s.active {
		return nil
	}
	var outs []msg.Directive
	for len(s.queued) > 0 && (cfg.Window <= 0 || len(s.inflight) < cfg.Window) {
		inst := s.queued[0]
		s.queued = s.queued[1:]
		if _, ok := s.proposals[inst]; !ok {
			continue // decided or withdrawn meanwhile
		}
		outs = append(outs, s.spawn(slf, inst))
	}
	return outs
}

func (s *leaderState) onAdopted(cfg Config, slf msg.Loc, b Adopted) []msg.Directive {
	if !b.B.Equal(s.ballot) {
		return nil // stale adoption of an old ballot
	}
	s.active = true
	s.scouting = false
	mAdopted.Inc()
	// pmax: adopt the highest-ballot accepted value per slot, overriding
	// our own proposals — the core Paxos safety rule.
	best := make(map[int]PValue)
	for _, pv := range b.Accepted {
		if cur, ok := best[pv.Inst]; !ok || cur.B.Less(pv.B) {
			best[pv.Inst] = pv
		}
	}
	for inst, pv := range best {
		if _, done := s.decided[inst]; !done {
			s.proposals[inst] = pv.Val
		}
	}
	// Command every pending proposal under the adopted ballot, lowest
	// instance first, respecting the pipeline window: commanders of any
	// previous ballot are dead (preempted), so the window restarts empty
	// and the overflow re-queues in instance order.
	s.inflight = make(map[int]bool)
	s.queued = nil
	insts := make([]int, 0, len(s.proposals))
	for inst := range s.proposals {
		insts = append(insts, inst)
	}
	sort.Ints(insts)
	var outs []msg.Directive
	for _, inst := range insts {
		outs = append(outs, s.launch(cfg, slf, inst)...)
	}
	return outs
}

func (s *leaderState) onPreempted(cfg Config, slf msg.Loc, b Preempted) []msg.Directive {
	if !s.ballot.Less(b.B) {
		return nil
	}
	s.active = false
	s.scouting = false
	// Commanders of the preempted ballot are doomed; the window restarts
	// on the next adoption, which re-commands every pending proposal.
	s.inflight = make(map[int]bool)
	s.queued = nil
	tracePreempt(slf, b.B)
	s.ballot = Ballot{N: b.B.N + 1, L: slf}
	delay := cfg.backoff() * time.Duration(s.idx+1)
	return []msg.Directive{msg.SendAfter(delay, slf, msg.M(HdrWake, Wake{}))}
}

func (s *leaderState) onWake(slf msg.Loc) []msg.Directive {
	if s.active || s.scouting || len(s.proposals) == 0 {
		return nil
	}
	s.scouting = true
	return []msg.Directive{msg.Send(slf, msg.M(HdrSpawnSct, SpawnScout{B: s.ballot}))}
}

// --------------------------------------------------------------- scout --

// scoutState tracks a scout's quorum.
type scoutState struct {
	waiting  map[msg.Loc]bool
	accepted []PValue
	done     bool
}

// scoutClass builds the sub-process for one ballot. Its spawn event is the
// SpawnScout message itself, on which it emits the p1a round. The
// acceptor set is resolved once, at spawn: a scout elects against the
// newest configuration (inst -1 under dynamic membership).
func scoutClass(cfg Config, b Ballot) loe.Class {
	accs := cfg.acceptorsFor(-1)
	in := loe.Parallel(loe.Base(HdrSpawnSct), loe.Base(HdrP1b))
	init := func(msg.Loc) any {
		w := make(map[msg.Loc]bool, len(accs))
		for _, a := range accs {
			w[a] = true
		}
		return &scoutState{waiting: w}
	}
	step := func(slf msg.Loc, input, state any) (any, []any) {
		s := state.(*scoutState)
		if s.done {
			return s, nil
		}
		switch m := input.(type) {
		case SpawnScout:
			if !m.B.Equal(b) {
				return s, nil
			}
			mScouts.Inc()
			outs := make([]any, 0, len(accs))
			for _, a := range accs {
				outs = append(outs, msg.Send(a, msg.M(HdrP1a, P1a{B: b, From: slf})))
			}
			return s, outs
		case P1b:
			if b.Less(m.B) {
				s.done = true
				return s, []any{msg.Send(slf, msg.M(HdrPreempted, Preempted{B: m.B})), loe.Done{}}
			}
			if !m.B.Equal(b) || !s.waiting[m.From] {
				return s, nil
			}
			delete(s.waiting, m.From)
			s.accepted = append(s.accepted, m.Accepted...)
			if len(accs)-len(s.waiting) >= majorityOf(accs) {
				s.done = true
				return s, []any{msg.Send(slf, msg.M(HdrAdopted, Adopted{B: b, Accepted: s.accepted})), loe.Done{}}
			}
			return s, nil
		}
		return s, nil
	}
	return loe.HandlerRaw(fmt.Sprintf("Scout%s", b), init, step, in)
}

// ----------------------------------------------------------- commander --

// commanderState tracks a commander's quorum.
type commanderState struct {
	waiting map[msg.Loc]bool
	done    bool
}

// commanderClass builds the sub-process driving one pvalue to decision.
// The acceptor set is captured at spawn, resolved for this instance:
// under dynamic membership an instance's quorum comes from exactly the
// epoch that governs it, never from a mixture of configurations.
func commanderClass(cfg Config, b Ballot, inst int, val string) loe.Class {
	accs := cfg.acceptorsFor(inst)
	in := loe.Parallel(loe.Base(HdrSpawnCmd), loe.Base(HdrP2b))
	init := func(msg.Loc) any {
		w := make(map[msg.Loc]bool, len(accs))
		for _, a := range accs {
			w[a] = true
		}
		return &commanderState{waiting: w}
	}
	step := func(slf msg.Loc, input, state any) (any, []any) {
		s := state.(*commanderState)
		if s.done {
			return s, nil
		}
		switch m := input.(type) {
		case SpawnCmd:
			if !m.B.Equal(b) || m.Inst != inst {
				return s, nil
			}
			mCommanders.Inc()
			outs := make([]any, 0, len(accs))
			for _, a := range accs {
				outs = append(outs, msg.Send(a, msg.M(HdrP2a, P2a{B: b, Inst: inst, Val: val, From: slf})))
			}
			return s, outs
		case P2b:
			if m.Inst != inst {
				return s, nil
			}
			if b.Less(m.B) {
				s.done = true
				return s, []any{msg.Send(slf, msg.M(HdrPreempted, Preempted{B: m.B})), loe.Done{}}
			}
			if !m.B.Equal(b) || !s.waiting[m.From] {
				return s, nil
			}
			delete(s.waiting, m.From)
			if len(accs)-len(s.waiting) >= majorityOf(accs) {
				s.done = true
				traceDecide(slf, b, inst)
				d := Decide{Inst: inst, Val: val}
				learners := cfg.learnersNow()
				outs := make([]any, 0, len(learners)+len(cfg.Leaders)+1)
				for _, l := range learners {
					outs = append(outs, msg.Send(l, msg.M(HdrDecide, d)))
				}
				for _, l := range cfg.Leaders {
					outs = append(outs, msg.Send(l, msg.M(HdrDecide, d)))
				}
				outs = append(outs, loe.Done{})
				return s, outs
			}
			return s, nil
		}
		return s, nil
	}
	return loe.HandlerRaw(fmt.Sprintf("Cmd%s/%d", b, inst), init, step, in)
}

// ----------------------------------------------------------------- spec --

// Spec builds the full deployment: acceptors and leaders, each running
// their role class.
func Spec(cfg Config) loe.Spec {
	accSet := make(map[msg.Loc]bool, len(cfg.Acceptors))
	for _, a := range cfg.Acceptors {
		accSet[a] = true
	}
	// Role dispatch by location: acceptors run the acceptor class, leaders
	// the leader class. The union class routes on location via Filter.
	locs := append(append([]msg.Loc(nil), cfg.Leaders...), cfg.Acceptors...)
	main := loe.Parallel(
		guard(AcceptorClass(cfg), func(slf msg.Loc) bool { return accSet[slf] }, "at-acceptor"),
		guard(LeaderClass(cfg), func(slf msg.Loc) bool { return !accSet[slf] }, "at-leader"),
	)
	return loe.Spec{Name: "Paxos-Synod", Main: main, Locs: locs, Params: 4}
}

// guard keeps only the outputs produced at locations satisfying pred,
// giving per-role deployment within one class.
func guard(c loe.Class, pred func(msg.Loc) bool, name string) loe.Class {
	return loe.Filter(name, func(slf msg.Loc, _ any) bool { return pred(slf) }, c)
}

// DecisionsOf extracts learner decisions from directives, keyed by
// instance.
func DecisionsOf(outs []msg.Directive, learners []msg.Loc) map[int][]string {
	lset := make(map[msg.Loc]bool, len(learners))
	for _, l := range learners {
		lset[l] = true
	}
	ds := make(map[int][]string)
	for _, o := range outs {
		if o.M.Hdr == HdrDecide && lset[o.Dest] {
			if b, ok := o.M.Body.(Decide); ok {
				ds[b.Inst] = append(ds[b.Inst], b.Val)
			}
		}
	}
	return ds
}
