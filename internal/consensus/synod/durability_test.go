package synod

import (
	"fmt"
	"testing"

	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
	"shadowdb/internal/store"
	"shadowdb/internal/verify"
)

func durableCfg(prov store.Provider) Config {
	cfg := testConfig()
	cfg.Stable = func(l msg.Loc) store.Stable {
		st, err := prov.Open("acc-" + string(l))
		if err != nil {
			panic(err)
		}
		return st
	}
	return cfg
}

// A rebuilt acceptor must come back with the ballot it promised and the
// pvalues it accepted — journaled before the replies revealed them.
func TestAcceptorRestoresFromStore(t *testing.T) {
	for name, prov := range map[string]store.Provider{
		"mem": store.NewMem(),
		"dir": mustDir(t),
	} {
		t.Run(name, func(t *testing.T) {
			cfg := durableCfg(prov)
			cl := AcceptorClass(cfg)
			acc := loe.NewProcess(cl, "a1")
			b := Ballot{N: 3, L: "l1"}
			acc, _ = acc.Step(msg.M(HdrP1a, P1a{B: b, From: "s"}))
			acc, _ = acc.Step(msg.M(HdrP2a, P2a{B: b, Inst: 7, Val: "v7", From: "c"}))
			_ = acc

			// Crash: the process is gone; a new incarnation is generated
			// from scratch and must restore from the store.
			fresh := loe.NewProcess(cl, "a1")
			_, outs := fresh.Step(msg.M(HdrP1a, P1a{B: Ballot{N: 0, L: "l0"}, From: "s"}))
			reply := outs[0].M.Body.(P1b)
			if !reply.B.Equal(b) {
				t.Errorf("restored promise = %s, want %s", reply.B, b)
			}
			if len(reply.Accepted) != 1 || reply.Accepted[0].Inst != 7 || reply.Accepted[0].Val != "v7" {
				t.Errorf("restored pvalues = %v, want the accepted (7, v7)", reply.Accepted)
			}
		})
	}
}

func mustDir(t *testing.T) *store.Dir {
	t.Helper()
	d, err := store.NewDir(t.TempDir(), store.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Snapshot compaction must not change what a restart restores.
func TestAcceptorRestoreAcrossCompaction(t *testing.T) {
	prov := mustDir(t)
	cfg := durableCfg(prov)
	cl := AcceptorClass(cfg)
	acc := loe.NewProcess(cl, "a1")
	// Enough mutations to cross the accSnapEvery compaction threshold.
	for i := 0; i < accSnapEvery+8; i++ {
		b := Ballot{N: i, L: "l1"}
		acc, _ = acc.Step(msg.M(HdrP1a, P1a{B: b, From: "s"}))
		acc, _ = acc.Step(msg.M(HdrP2a, P2a{B: b, Inst: i, Val: fmt.Sprintf("v%d", i), From: "c"}))
	}

	fresh := loe.NewProcess(cl, "a1")
	_, outs := fresh.Step(msg.M(HdrP1a, P1a{B: Ballot{N: 0, L: "l0"}, From: "s"}))
	reply := outs[0].M.Body.(P1b)
	if want := (Ballot{N: accSnapEvery + 7, L: "l1"}); !reply.B.Equal(want) {
		t.Errorf("restored promise after compaction = %s, want %s", reply.B, want)
	}
	if len(reply.Accepted) != accSnapEvery+8 {
		t.Errorf("restored %d pvalues, want %d", len(reply.Accepted), accSnapEvery+8)
	}
}

// The crash-restart property must have bite: the same fuzz over
// VOLATILE acceptors (restart = state loss) must be caught by the
// invariant — a restarted acceptor forgets its promise and replies
// with a regressed ballot.
func TestDurableRestartPropertyCatchesVolatileAcceptors(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is slow")
	}
	cfg := duelConfig() // no Stable: restart loses state
	m := verify.Model{
		Gen:  Spec(cfg).Generator(),
		Locs: Spec(cfg).Locs,
		Init: []verify.Injection{
			{To: "l1", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "from-l1"})},
			{To: "l2", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "from-l2"})},
		},
		CrashLocs: cfg.Acceptors,
		Crashes:   2,
		Restarts:  2,
		Invariant: durableRestartInvariant(cfg),
	}
	if _, err := verify.Fuzz(m, 400, 250, 17); err == nil {
		t.Fatal("volatile acceptors survived the crash-restart fuzz; the property lost its bite")
	}
}
