package synod

import (
	"testing"
	"testing/quick"
	"time"

	"shadowdb/internal/gpm"
	"shadowdb/internal/interp"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

func TestBallotOrdering(t *testing.T) {
	tests := []struct {
		a, b Ballot
		less bool
	}{
		{Ballot{0, "l1"}, Ballot{1, "l1"}, true},
		{Ballot{1, "l1"}, Ballot{0, "l1"}, false},
		{Ballot{0, "l1"}, Ballot{0, "l2"}, true},
		{Ballot{0, "l2"}, Ballot{0, "l1"}, false},
		{Ballot{0, "l1"}, Ballot{0, "l1"}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.less {
			t.Errorf("%s < %s = %v, want %v", tt.a, tt.b, got, tt.less)
		}
	}
}

func TestBallotOrderIsTotalProperty(t *testing.T) {
	f := func(n1, n2 uint8, l1, l2 bool) bool {
		loc := func(b bool) msg.Loc {
			if b {
				return "l1"
			}
			return "l2"
		}
		a := Ballot{N: int(n1), L: loc(l1)}
		b := Ballot{N: int(n2), L: loc(l2)}
		// Exactly one of <, =, > holds.
		cnt := 0
		if a.Less(b) {
			cnt++
		}
		if b.Less(a) {
			cnt++
		}
		if a.Equal(b) {
			cnt++
		}
		return cnt == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMajority(t *testing.T) {
	tests := []struct{ n, want int }{{1, 1}, {3, 2}, {5, 3}, {7, 4}}
	for _, tt := range tests {
		cfg := Config{Acceptors: make([]msg.Loc, tt.n)}
		if got := cfg.Majority(); got != tt.want {
			t.Errorf("Majority(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestSingleLeaderDecides(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("l1", msg.M(HdrPropose, Propose{Inst: 0, Val: "hello"}))
	if _, err := r.Run(10_000); err != nil {
		t.Fatal(err)
	}
	got := decisions(r.Trace(), cfg)
	if got[0] != "hello" {
		t.Errorf("instance 0 decided %q, want hello", got[0])
	}
}

// decisions collects the final learner decision per instance, failing the
// test on disagreement.
func decisions(trace []gpm.TraceEntry, cfg Config) map[int]string {
	out := make(map[int]string)
	for _, e := range trace {
		for inst, vals := range DecisionsOf(e.Outs, cfg.Learners) {
			for _, v := range vals {
				out[inst] = v
			}
		}
	}
	return out
}

func TestPipelinedInstances(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	const n = 20
	for i := 0; i < n; i++ {
		r.Inject("l1", msg.M(HdrPropose, Propose{Inst: i, Val: string(rune('a' + i))}))
	}
	if _, err := r.Run(100_000); err != nil {
		t.Fatal(err)
	}
	got := decisions(r.Trace(), cfg)
	for i := 0; i < n; i++ {
		if got[i] != string(rune('a'+i)) {
			t.Errorf("instance %d decided %q, want %q", i, got[i], string(rune('a'+i)))
		}
	}
}

func TestDuelingLeadersAgree(t *testing.T) {
	cfg := duelConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("l1", msg.M(HdrPropose, Propose{Inst: 0, Val: "x"}))
	r.Inject("l2", msg.M(HdrPropose, Propose{Inst: 0, Val: "y"}))
	if _, err := r.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if err := checkAgreementTrace(cfg, r.Trace()); err != nil {
		t.Fatal(err)
	}
	got := decisions(r.Trace(), cfg)
	if got[0] != "x" && got[0] != "y" {
		t.Errorf("instance 0 decided %q, want one of the proposals", got[0])
	}
}

func TestLeaderRemindsLearnersOfDecisions(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("l1", msg.M(HdrPropose, Propose{Inst: 0, Val: "v"}))
	if _, err := r.Run(10_000); err != nil {
		t.Fatal(err)
	}
	before := len(r.Trace())
	// Re-proposing a decided instance must re-announce the same value,
	// not run a new ballot.
	r.Inject("l1", msg.M(HdrPropose, Propose{Inst: 0, Val: "other"}))
	if _, err := r.Run(10_000); err != nil {
		t.Fatal(err)
	}
	reminded := false
	for _, e := range r.Trace()[before:] {
		for _, o := range e.Outs {
			if o.Dest == "learner" && o.M.Hdr == HdrDecide {
				d := o.M.Body.(Decide)
				if d.Val != "v" {
					t.Errorf("reminder carried %q, want v", d.Val)
				}
				reminded = true
			}
			if o.M.Hdr == HdrP1a || o.M.Hdr == HdrP2a {
				t.Error("re-proposal of a decided instance started a new ballot")
			}
		}
	}
	if !reminded {
		t.Error("no decision reminder emitted")
	}
}

func TestAcceptorRejectsLowerBallots(t *testing.T) {
	cfg := testConfig()
	gen := Spec(cfg).Generator()
	acc := gen("a1")

	high := Ballot{N: 5, L: "l9"}
	low := Ballot{N: 1, L: "l0"}
	acc, outs := acc.Step(msg.M(HdrP1a, P1a{B: high, From: "scout"}))
	if len(outs) != 1 {
		t.Fatalf("p1a produced %d outputs", len(outs))
	}
	if b := outs[0].M.Body.(P1b); !b.B.Equal(high) {
		t.Errorf("promise = %s, want %s", b.B, high)
	}
	// A lower p2a must not be accepted: the reply carries the higher
	// promised ballot, and no pvalue is stored for it.
	acc, outs = acc.Step(msg.M(HdrP2a, P2a{B: low, Inst: 0, Val: "evil", From: "cmd"}))
	if len(outs) != 1 {
		t.Fatalf("p2a produced %d outputs", len(outs))
	}
	if b := outs[0].M.Body.(P2b); !b.B.Equal(high) {
		t.Errorf("p2b ballot = %s, want the promised %s", b.B, high)
	}
	_, outs = acc.Step(msg.M(HdrP1a, P1a{B: Ballot{N: 9, L: "l9"}, From: "scout"}))
	if b := outs[0].M.Body.(P1b); len(b.Accepted) != 0 {
		t.Errorf("acceptor stored pvalue from rejected ballot: %v", b.Accepted)
	}
}

func TestCorruptIsNoOpWithoutAmnesia(t *testing.T) {
	cfg := testConfig()
	gen := Spec(cfg).Generator()
	acc := gen("a1")
	b := Ballot{N: 3, L: "lx"}
	acc, _ = acc.Step(msg.M(HdrP1a, P1a{B: b, From: "s"}))
	acc, _ = acc.Step(msg.M(HdrCorrupt, Corrupt{}))
	_, outs := acc.Step(msg.M(HdrP1a, P1a{B: Ballot{N: 0, L: "l0"}, From: "s"}))
	if got := outs[0].M.Body.(P1b).B; !got.Equal(b) {
		t.Errorf("promise after no-op corrupt = %s, want %s", got, b)
	}
}

func TestProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking is slow")
	}
	for _, p := range Properties() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Check(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInterpretedSynodBisimilar(t *testing.T) {
	// The acceptor class (the protocol's durable heart) runs identically
	// natively, interpreted, and optimized.
	cfg := testConfig()
	cl := AcceptorClass(cfg)
	inputs := []msg.Msg{
		msg.M(HdrP1a, P1a{B: Ballot{N: 0, L: "l1"}, From: "s1"}),
		msg.M(HdrP2a, P2a{B: Ballot{N: 0, L: "l1"}, Inst: 0, Val: "v", From: "c1"}),
		msg.M(HdrP1a, P1a{B: Ballot{N: 1, L: "l2"}, From: "s2"}),
		msg.M(HdrP2a, P2a{B: Ballot{N: 0, L: "l1"}, Inst: 1, Val: "w", From: "c2"}),
		msg.M(HdrCorrupt, Corrupt{}),
		msg.M(HdrP1a, P1a{B: Ballot{N: 2, L: "l1"}, From: "s3"}),
	}
	ev := &interp.Evaluator{MaxSteps: 100_000_000}
	tp, err := interp.NewProcess(interp.Compile(cl), "a1", ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Bisimilar(tp, loeProcess(cl, "a1"), inputs); err != nil {
		t.Fatalf("interpreted acceptor diverges: %v", err)
	}
	op, err := interp.NewProcess(interp.Optimize(cl), "a1", ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Bisimilar(op, loeProcess(cl, "a1"), inputs); err != nil {
		t.Fatalf("optimized acceptor diverges: %v", err)
	}
}

func TestInterpretedLeaderWithDelegationBisimilar(t *testing.T) {
	// The leader class exercises the Delegate combinator end to end in
	// the interpreter: scouts and commanders spawn, act, and finish.
	cfg := testConfig()
	cl := LeaderClass(cfg)
	b := Ballot{N: 0, L: "l1"}
	inputs := []msg.Msg{
		msg.M(HdrPropose, Propose{Inst: 0, Val: "v"}),
		msg.M(HdrSpawnSct, SpawnScout{B: b}),
		msg.M(HdrP1b, P1b{From: "a1", B: b}),
		msg.M(HdrP1b, P1b{From: "a2", B: b}),
		msg.M(HdrAdopted, Adopted{B: b}),
		msg.M(HdrSpawnCmd, SpawnCmd{B: b, Inst: 0, Val: "v"}),
		msg.M(HdrP2b, P2b{From: "a1", B: b, Inst: 0}),
		msg.M(HdrP2b, P2b{From: "a2", B: b, Inst: 0}),
		msg.M(HdrDecide, Decide{Inst: 0, Val: "v"}),
	}
	ev := &interp.Evaluator{MaxSteps: 500_000_000}
	tp, err := interp.NewProcess(interp.Compile(cl), "l1", ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Bisimilar(tp, loeProcess(cl, "l1"), inputs); err != nil {
		t.Fatalf("interpreted leader diverges: %v", err)
	}
}

// loeProcess compiles a class natively at a location.
func loeProcess(cl loe.Class, slf msg.Loc) gpm.Process {
	return loe.NewProcess(cl, slf)
}

func TestWakeRetriesAfterBackoff(t *testing.T) {
	// A preempted leader must retry after its backoff and eventually
	// decide.
	cfg := duelConfig()
	cfg.Backoff = 2 * time.Millisecond
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("l1", msg.M(HdrPropose, Propose{Inst: 0, Val: "x"}))
	r.Inject("l2", msg.M(HdrPropose, Propose{Inst: 1, Val: "y"}))
	if _, err := r.Run(100_000); err != nil {
		t.Fatal(err)
	}
	got := decisions(r.Trace(), cfg)
	if got[0] == "" || got[1] == "" {
		t.Errorf("instances not all decided: %v", got)
	}
}
