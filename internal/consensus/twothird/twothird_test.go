package twothird

import (
	"testing"
	"testing/quick"

	"shadowdb/internal/gpm"
	"shadowdb/internal/interp"
	"shadowdb/internal/msg"
	"shadowdb/internal/verify"
)

func TestQuorum(t *testing.T) {
	tests := []struct {
		nodes int
		want  int
	}{
		{3, 3}, {4, 3}, {5, 4}, {6, 5}, {7, 5}, {9, 7},
	}
	for _, tt := range tests {
		cfg := Config{Nodes: make([]msg.Loc, tt.nodes)}
		if got := cfg.Quorum(); got != tt.want {
			t.Errorf("Quorum(n=%d) = %d, want %d", tt.nodes, got, tt.want)
		}
	}
}

func TestQuorumMajorityProperty(t *testing.T) {
	// Two quorums always intersect in more than n/3 nodes, the property
	// the algorithm's agreement rests on.
	f := func(n uint8) bool {
		size := int(n%30) + 3
		cfg := Config{Nodes: make([]msg.Loc, size)}
		q := cfg.Quorum()
		return 2*q-size > size/3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimpleDecision(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("n1", msg.M(HdrPropose, Propose{Inst: 0, Val: "v"}))
	if _, err := r.Run(1_000); err != nil {
		t.Fatal(err)
	}
	vals := learnerDecisions(r.Trace())
	if len(vals[0]) == 0 {
		t.Fatal("no decision delivered to learner")
	}
	for _, v := range vals[0] {
		if v != "v" {
			t.Errorf("decided %q, want v", v)
		}
	}
}

func TestConflictingProposalsDecideOneValue(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("n1", msg.M(HdrPropose, Propose{Inst: 0, Val: "a"}))
	r.Inject("n2", msg.M(HdrPropose, Propose{Inst: 0, Val: "b"}))
	r.Inject("n3", msg.M(HdrPropose, Propose{Inst: 0, Val: "c"}))
	if _, err := r.Run(10_000); err != nil {
		t.Fatal(err)
	}
	vals := learnerDecisions(r.Trace())
	if len(vals[0]) == 0 {
		t.Fatal("no decision")
	}
	first := vals[0][0]
	for _, v := range vals[0] {
		if v != first {
			t.Fatalf("learner received decisions %v for one instance", vals[0])
		}
	}
}

func TestMultipleInstancesIndependent(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("n1", msg.M(HdrPropose, Propose{Inst: 0, Val: "zero"}))
	r.Inject("n2", msg.M(HdrPropose, Propose{Inst: 1, Val: "one"}))
	r.Inject("n3", msg.M(HdrPropose, Propose{Inst: 2, Val: "two"}))
	if _, err := r.Run(10_000); err != nil {
		t.Fatal(err)
	}
	vals := learnerDecisions(r.Trace())
	want := map[int]string{0: "zero", 1: "one", 2: "two"}
	for inst, w := range want {
		if len(vals[inst]) == 0 {
			t.Errorf("instance %d undecided", inst)
			continue
		}
		for _, v := range vals[inst] {
			if v != w {
				t.Errorf("instance %d decided %q, want %q", inst, v, w)
			}
		}
	}
}

// learnerDecisions replays the trace and collects learner deliveries.
func learnerDecisions(trace []gpm.TraceEntry) map[int][]string {
	out := make(map[int][]string)
	for _, e := range trace {
		for inst, vs := range DecisionsOf(e.Outs, []msg.Loc{"learner"}) {
			out[inst] = append(out[inst], vs...)
		}
	}
	return out
}

func TestMostFrequentDeterministic(t *testing.T) {
	rv := map[msg.Loc]string{"a": "y", "b": "x", "c": "y", "d": "x"}
	v, n := mostFrequent(rv)
	if v != "x" || n != 2 {
		t.Errorf("mostFrequent tie = (%q,%d), want smallest value x with 2", v, n)
	}
}

func TestProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking is slow")
	}
	for _, p := range Properties() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Check(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInterpretedBisimilarToNative(t *testing.T) {
	cfg := testConfig()
	cl := Class(cfg)
	inputs := []msg.Msg{
		msg.M(HdrPropose, Propose{Inst: 0, Val: "a"}),
		msg.M(HdrVote, Vote{Inst: 0, Round: 0, From: "n2", Val: "b"}),
		msg.M(HdrVote, Vote{Inst: 0, Round: 0, From: "n3", Val: "b"}),
		msg.M(HdrVote, Vote{Inst: 0, Round: 1, From: "n2", Val: "b"}),
		msg.M(HdrVote, Vote{Inst: 0, Round: 1, From: "n3", Val: "b"}),
		msg.M(HdrDecide, Decide{Inst: 0, Val: "b"}),
	}
	ev := &interp.Evaluator{MaxSteps: 100_000_000}
	tp, err := interp.NewProcess(interp.Compile(cl), "n1", ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Bisimilar(tp, Spec(cfg).Generator()("n1"), inputs); err != nil {
		t.Fatalf("interpreted TwoThird diverges from native: %v", err)
	}
	op, err := interp.NewProcess(interp.Optimize(cl), "n1", ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Bisimilar(op, Spec(cfg).Generator()("n1"), inputs); err != nil {
		t.Fatalf("optimized TwoThird diverges from native: %v", err)
	}
}

func TestLegacyVariantStillDecidesUnderFIFO(t *testing.T) {
	// FIFO scheduling alone does not expose the liveness bug (the paper
	// found it by inspection, not by testing); only specific
	// interleavings stall, which the regression property in
	// properties.go searches for.
	cfg := testConfig()
	cfg.Legacy = true
	missing, err := runFIFO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("legacy variant stalled under FIFO: %v", missing)
	}
}

func TestAgreementUnderFuzzedSchedules(t *testing.T) {
	cfg := testConfig()
	m := model(cfg, map[msg.Loc]string{"n1": "a", "n2": "b", "n3": "c"}, 0)
	if _, err := verify.Fuzz(m, 150, 300, 2026); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionsOfIgnoresOtherHeaders(t *testing.T) {
	outs := []msg.Directive{
		msg.Send("learner", msg.M(HdrVote, Vote{Inst: 0})),
		msg.Send("learner", msg.M(HdrDecide, Decide{Inst: 3, Val: "v"})),
		msg.Send("elsewhere", msg.M(HdrDecide, Decide{Inst: 4, Val: "w"})),
	}
	ds := DecisionsOf(outs, []msg.Loc{"learner"})
	if len(ds) != 1 || len(ds[3]) != 1 || ds[3][0] != "v" {
		t.Errorf("DecisionsOf = %v", ds)
	}
}
