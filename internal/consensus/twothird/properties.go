package twothird

import (
	"errors"
	"fmt"
	"sync"

	"shadowdb/internal/gpm"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
	"shadowdb/internal/verify"
)

// The correctness properties of TwoThird Consensus, registered in the
// verify.Suite so Table I can report the automatic/manual split. The
// paper proved 8 lemmas automatically and 6 manually over three days; we
// check the corresponding end-to-end properties mechanically.

// ErrDisagreement is returned when two learners learn different values.
var ErrDisagreement = errors.New("twothird: agreement violated")

// ErrInvalidDecision is returned when a decided value was never proposed.
var ErrInvalidDecision = errors.New("twothird: validity violated")

// testConfig builds the 3-node model instance used by the checkers.
func testConfig() Config {
	return Config{
		Nodes:    []msg.Loc{"n1", "n2", "n3"},
		Learners: []msg.Loc{"learner"},
	}
}

// model builds a verify.Model proposing the given values concurrently.
func model(cfg Config, proposals map[msg.Loc]string, crashes int) verify.Model {
	gen := Spec(cfg).Generator()
	var init []verify.Injection
	proposed := make(map[string]bool)
	for _, n := range cfg.Nodes {
		if v, ok := proposals[n]; ok {
			init = append(init, verify.Injection{To: n, M: msg.M(HdrPropose, Propose{Inst: 0, Val: v})})
			proposed[v] = true
		}
	}
	inv := func(trace []gpm.TraceEntry) error {
		return checkTrace(cfg, trace, proposed)
	}
	m := verify.Model{
		Gen:       gen,
		Locs:      cfg.Nodes,
		Init:      init,
		Invariant: inv,
		MaxDepth:  40,
		MaxRuns:   12_000,
	}
	if crashes > 0 {
		m.CrashLocs = cfg.Nodes[:1]
		m.Crashes = crashes
	}
	return m
}

// checkTrace validates agreement, validity and irrevocability over all
// decisions visible in a trace.
func checkTrace(cfg Config, trace []gpm.TraceEntry, proposed map[string]bool) error {
	decided := make(map[int]string)
	for _, e := range trace {
		for inst, vals := range DecisionsOf(e.Outs, cfg.Learners) {
			for _, v := range vals {
				if len(proposed) > 0 && !proposed[v] {
					return fmt.Errorf("%w: value %q was never proposed", ErrInvalidDecision, v)
				}
				if prev, ok := decided[inst]; ok && prev != v {
					return fmt.Errorf("%w: instance %d decided %q and %q", ErrDisagreement, inst, prev, v)
				}
				decided[inst] = v
			}
		}
	}
	return nil
}

// Properties returns the registered property set of the module.
func Properties() []verify.Property {
	return []verify.Property{
		{Module: "TwoThird", Name: "agreement/exhaustive", Mode: verify.Auto, Check: checkAgreementExhaustive},
		{Module: "TwoThird", Name: "validity/exhaustive", Mode: verify.Auto, Check: checkAgreementExhaustive},
		{Module: "TwoThird", Name: "agreement/crash", Mode: verify.Auto, Check: checkAgreementCrash},
		{Module: "TwoThird", Name: "agreement/fuzz-n4", Mode: verify.Auto, Check: checkAgreementFuzz},
		{Module: "TwoThird", Name: "refinement/term-program", Mode: verify.Auto, Check: checkRefinement},
		{Module: "TwoThird", Name: "termination/simple-run", Mode: verify.Manual, Check: checkTermination},
		{Module: "TwoThird", Name: "liveness-bug/regression", Mode: verify.Manual, Check: checkDeadlockRegression},
		{Module: "TwoThird", Name: "irrevocability", Mode: verify.Manual, Check: checkIrrevocable},
	}
}

// checkAgreementExhaustive also discharges validity: the model's
// invariant checks both on every reached state. The result is cached so
// the two registered properties share one exploration.
var exhaustiveOnce = sync.OnceValue(func() error {
	cfg := testConfig()
	m := model(cfg, map[msg.Loc]string{"n1": "a", "n2": "b", "n3": "b"}, 0)
	_, err := verify.Exhaustive(m)
	return err
})

func checkAgreementExhaustive() error { return exhaustiveOnce() }

func checkAgreementCrash() error {
	cfg := testConfig()
	m := model(cfg, map[msg.Loc]string{"n1": "a", "n2": "b"}, 1)
	m.MaxRuns = 8_000
	_, err := verify.Exhaustive(m)
	return err
}

func checkAgreementFuzz() error {
	cfg := Config{
		Nodes:    []msg.Loc{"n1", "n2", "n3", "n4"},
		Learners: []msg.Loc{"learner"},
	}
	m := model(cfg, map[msg.Loc]string{"n1": "a", "n2": "b", "n3": "c", "n4": "a"}, 0)
	_, err := verify.Fuzz(m, 300, 120, 7)
	return err
}

// checkTermination runs the 3-node instance under FIFO scheduling and
// requires every node to decide.
func checkTermination() error {
	missing, err := runFIFO(testConfig())
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		return fmt.Errorf("nodes %v never decided", missing)
	}
	return nil
}

// runFIFO runs the protocol to quiescence under FIFO delivery and returns
// the nodes that never decided.
func runFIFO(cfg Config) ([]msg.Loc, error) {
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("n1", msg.M(HdrPropose, Propose{Inst: 0, Val: "a"}))
	r.Inject("n2", msg.M(HdrPropose, Propose{Inst: 0, Val: "b"}))
	r.Inject("n3", msg.M(HdrPropose, Propose{Inst: 0, Val: "c"}))
	if _, err := r.Run(10_000); err != nil {
		return nil, err
	}
	return undecided(cfg, r.Trace()), nil
}

// undecided returns the group members that never emitted a learner
// Decide and never received one, i.e. the stalled nodes of a drained run.
func undecided(cfg Config, trace []gpm.TraceEntry) []msg.Loc {
	decided := make(map[msg.Loc]bool)
	for _, e := range trace {
		if e.In.Hdr == HdrDecide {
			decided[e.Loc] = true
		}
		for _, o := range e.Outs {
			if o.M.Hdr == HdrDecide && o.Dest == "learner" {
				decided[e.Loc] = true
			}
		}
	}
	var missing []msg.Loc
	for _, n := range cfg.Nodes {
		if !decided[n] {
			missing = append(missing, n)
		}
	}
	return missing
}

// ErrStall marks a drained schedule in which some node never decided.
var ErrStall = errors.New("twothird: node stalled without deciding")

// checkDeadlockRegression verifies that the Legacy variant deadlocks in
// some schedule that the fixed protocol completes — the paper's "not live
// because of a deadlock scenario" bug, pinned as a regression. The fuzzer
// searches delivery interleavings for a stall; it must find one for the
// legacy version and none for the fixed version.
func checkDeadlockRegression() error {
	stallSearch := func(cfg Config) error {
		m := model(cfg, map[msg.Loc]string{"n1": "a", "n2": "b", "n3": "c"}, 0)
		m.Invariant = nil
		m.Final = func(trace []gpm.TraceEntry) error {
			if missing := undecided(cfg, trace); len(missing) > 0 {
				return fmt.Errorf("%w: %v", ErrStall, missing)
			}
			return nil
		}
		// Deep enough that every schedule drains completely.
		_, err := verify.Fuzz(m, 400, 500, 99)
		return err
	}

	if err := stallSearch(testConfig()); err != nil {
		return fmt.Errorf("fixed protocol stalled: %w", err)
	}
	legacy := testConfig()
	legacy.Legacy = true
	err := stallSearch(legacy)
	if err == nil {
		return errors.New("legacy protocol never stalled; regression scenario lost its bite")
	}
	if !errors.Is(err, ErrStall) {
		return fmt.Errorf("legacy protocol failed differently: %w", err)
	}
	return nil
}

// checkIrrevocable replays a full run and verifies no node ever emits two
// different decide values.
func checkIrrevocable() error {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("n1", msg.M(HdrPropose, Propose{Inst: 0, Val: "x"}))
	r.Inject("n2", msg.M(HdrPropose, Propose{Inst: 0, Val: "y"}))
	if _, err := r.Run(10_000); err != nil {
		return err
	}
	perNode := make(map[msg.Loc]string)
	for _, e := range r.Trace() {
		for _, o := range e.Outs {
			if o.M.Hdr != HdrDecide {
				continue
			}
			v := o.M.Body.(Decide).Val
			if prev, ok := perNode[e.Loc]; ok && prev != v {
				return fmt.Errorf("node %s revoked decision %q for %q", e.Loc, prev, v)
			}
			perNode[e.Loc] = v
		}
	}
	return nil
}

// checkRefinement verifies the interpreted term program is bisimilar to
// the native class on a message workload (arrow (c) for this module).
func checkRefinement() error {
	cfg := testConfig()
	spec := Spec(cfg)
	// Denotational equality between spec class and generated process over
	// an actual run.
	denote := func(trace []gpm.TraceEntry) [][]msg.Directive {
		eo := loe.FromTrace(trace)
		den := loe.Denote(spec.Main, eo)
		out := make([][]msg.Directive, len(den))
		for i, vals := range den {
			for _, v := range vals {
				out[i] = append(out[i], v.(msg.Directive))
			}
		}
		return out
	}
	inject := []verify.Injection{
		{To: "n1", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "a"})},
		{To: "n2", M: msg.M(HdrPropose, Propose{Inst: 0, Val: "b"})},
	}
	return verify.CheckRefinement(spec.System(), inject, 5_000, denote)
}
