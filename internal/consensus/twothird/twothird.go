// Package twothird implements the TwoThird Consensus protocol of the
// paper (Section II-D): a leaderless, round-based, fully symmetric
// consensus algorithm in the style of the One-Third Rule algorithm of the
// Heard-Of model. Each node broadcasts its estimate every round; once a
// node has received votes from more than two thirds of the nodes for its
// current round it decides if a single value reaches that threshold, and
// otherwise adopts the smallest most-frequent value and advances.
//
// The protocol is expressed as an LoE specification (loe.Handler over base
// classes), so it can be run natively, interpreted as a term program, and
// model-checked — the same artifact the paper verifies in Nuprl.
//
// The paper reports that manual inspection found their initial TwoThird
// version "was not live because of a deadlock scenario" and that two lines
// of code fixed it. Config.Legacy re-introduces that early version
// (skipping the quorum re-check after a round advance, and not notifying
// peers of decisions) so the regression is preserved as a checkable
// artifact; see properties.go.
package twothird

import (
	"fmt"
	"sort"

	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

// Message headers of the protocol.
const (
	HdrPropose = "tt.propose"
	HdrVote    = "tt.vote"
	HdrDecide  = "tt.decide"
)

// Propose asks the consensus group to decide Val for instance Inst.
type Propose struct {
	Inst int
	Val  string
}

// Vote carries a node's estimate for a round of an instance.
type Vote struct {
	Inst  int
	Round int
	From  msg.Loc
	Val   string
}

// Decide announces the decided value of an instance.
type Decide struct {
	Inst int
	Val  string
}

// RegisterWireTypes registers the protocol's bodies with the wire codec.
func RegisterWireTypes() {
	msg.RegisterBody(Propose{})
	msg.RegisterBody(Vote{})
	msg.RegisterBody(Decide{})
}

// Config parameterizes a TwoThird group.
type Config struct {
	// Nodes is the consensus group membership.
	Nodes []msg.Loc
	// Learners receive a Decide directive for every decided instance.
	Learners []msg.Loc
	// Legacy re-introduces the paper's early, not-live version of the
	// protocol: after advancing to a new round the node does not
	// re-examine already-buffered votes, deciders notify only learners
	// (not peers), and decided nodes do not remind laggards. A node whose
	// final quorum vote is its own then stalls forever.
	Legacy bool
}

// Quorum returns the vote threshold: more than two thirds of the nodes.
func (c Config) Quorum() int { return (2*len(c.Nodes))/3 + 1 }

// instState is the per-instance protocol state of one node.
type instState struct {
	started bool
	decided bool
	est     string
	val     string // decided value
	round   int
	votes   map[int]map[msg.Loc]string // round -> voter -> value
}

// nodeState is the state of one node across instances.
type nodeState struct {
	insts map[int]*instState
}

func (s *nodeState) inst(i int) *instState {
	st, ok := s.insts[i]
	if !ok {
		st = &instState{votes: make(map[int]map[msg.Loc]string)}
		s.insts[i] = st
	}
	return st
}

// Class builds the per-node event class of the protocol.
func Class(cfg Config) loe.Class {
	in := loe.Parallel(loe.Base(HdrPropose), loe.Base(HdrVote), loe.Base(HdrDecide))
	init := func(msg.Loc) any { return &nodeState{insts: make(map[int]*instState)} }
	step := func(slf msg.Loc, input, state any) (any, []msg.Directive) {
		s := state.(*nodeState)
		var outs []msg.Directive
		switch b := input.(type) {
		case Propose:
			outs = onPropose(cfg, slf, s, b)
		case Vote:
			outs = onVote(cfg, slf, s, b)
		case Decide:
			outs = onDecide(cfg, slf, s, b)
		}
		return s, outs
	}
	return loe.Handler("TwoThird", init, step, in)
}

// Spec builds the complete specification: the node class running at every
// group member.
func Spec(cfg Config) loe.Spec {
	return loe.Spec{
		Name:   "TwoThird",
		Main:   Class(cfg),
		Locs:   append([]msg.Loc(nil), cfg.Nodes...),
		Params: 3, // nodes, learners, value type
	}
}

func onPropose(cfg Config, slf msg.Loc, s *nodeState, b Propose) []msg.Directive {
	st := s.inst(b.Inst)
	if st.decided || st.started {
		return nil
	}
	st.started = true
	st.est = b.Val
	mProposals.Inc()
	return castVote(cfg, slf, s, b.Inst, st)
}

// castVote records the node's own vote for its current round and sends it
// to the other group members, then runs the quorum check (the own vote may
// complete a quorum formed by buffered votes).
func castVote(cfg Config, slf msg.Loc, s *nodeState, inst int, st *instState) []msg.Directive {
	v := Vote{Inst: inst, Round: st.round, From: slf, Val: st.est}
	mVotes.Inc()
	var outs []msg.Directive
	for _, n := range cfg.Nodes {
		if n != slf {
			outs = append(outs, msg.Send(n, msg.M(HdrVote, v)))
		}
	}
	record(st, v)
	outs = append(outs, checkRounds(cfg, slf, s, inst, st)...)
	return outs
}

func record(st *instState, v Vote) {
	rv, ok := st.votes[v.Round]
	if !ok {
		rv = make(map[msg.Loc]string)
		st.votes[v.Round] = rv
	}
	rv[v.From] = v.Val
}

func onVote(cfg Config, slf msg.Loc, s *nodeState, b Vote) []msg.Directive {
	st := s.inst(b.Inst)
	if st.decided {
		if cfg.Legacy {
			return nil
		}
		// Help laggards: remind the sender of the decision.
		return []msg.Directive{msg.Send(b.From, msg.M(HdrDecide, Decide{Inst: b.Inst, Val: st.val}))}
	}
	record(st, b)
	if !st.started {
		// A vote from a peer starts this node too: adopt the value as its
		// estimate (it has no proposal of its own yet).
		st.started = true
		st.est = b.Val
		return castVote(cfg, slf, s, b.Inst, st)
	}
	return checkRounds(cfg, slf, s, instOf(b), st)
}

func instOf(b Vote) int { return b.Inst }

func onDecide(cfg Config, slf msg.Loc, s *nodeState, b Decide) []msg.Directive {
	st := s.inst(b.Inst)
	if st.decided {
		return nil
	}
	return decide(cfg, slf, st, b.Inst, b.Val)
}

// checkRounds evaluates the quorum rule for the node's current round and,
// unless the liveness bug is enabled, keeps re-evaluating after each round
// advance since buffered future-round votes may already form a quorum —
// the paper's two-line deadlock fix.
func checkRounds(cfg Config, slf msg.Loc, s *nodeState, inst int, st *instState) []msg.Directive {
	var outs []msg.Directive
	for {
		advanced, ds := checkOnce(cfg, slf, s, inst, st)
		outs = append(outs, ds...)
		if !advanced || st.decided {
			return outs
		}
		if cfg.Legacy {
			// BUG (preserved deliberately): stop after one advance; if the
			// quorum for the new round is already buffered, no future
			// message will re-trigger the check and the node deadlocks.
			return outs
		}
	}
}

// checkOnce applies the round rule once. It reports whether the node
// advanced to a new round.
func checkOnce(cfg Config, slf msg.Loc, s *nodeState, inst int, st *instState) (bool, []msg.Directive) {
	rv := st.votes[st.round]
	if len(rv) < cfg.Quorum() {
		return false, nil
	}
	top, count := mostFrequent(rv)
	if count >= cfg.Quorum() {
		return false, decide(cfg, slf, st, inst, top)
	}
	// Advance: adopt the smallest most-frequent value, vote for the next
	// round.
	st.est = top
	st.round++
	mRounds.Inc()
	mVotes.Inc()
	v := Vote{Inst: inst, Round: st.round, From: slf, Val: st.est}
	var outs []msg.Directive
	for _, n := range cfg.Nodes {
		if n != slf {
			outs = append(outs, msg.Send(n, msg.M(HdrVote, v)))
		}
	}
	record(st, v)
	return true, outs
}

// mostFrequent returns the smallest value with the maximal count.
func mostFrequent(rv map[msg.Loc]string) (string, int) {
	counts := make(map[string]int)
	for _, v := range rv {
		counts[v]++
	}
	vals := make([]string, 0, len(counts))
	for v := range counts {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	best, bestCount := "", -1
	for _, v := range vals {
		if counts[v] > bestCount {
			best, bestCount = v, counts[v]
		}
	}
	return best, bestCount
}

func decide(cfg Config, slf msg.Loc, st *instState, inst int, val string) []msg.Directive {
	st.decided = true
	st.val = val
	traceDecide(slf, inst, st.round)
	d := Decide{Inst: inst, Val: val}
	var outs []msg.Directive
	if !cfg.Legacy {
		for _, n := range cfg.Nodes {
			if n != slf {
				outs = append(outs, msg.Send(n, msg.M(HdrDecide, d)))
			}
		}
	}
	for _, l := range cfg.Learners {
		outs = append(outs, msg.Send(l, msg.M(HdrDecide, d)))
	}
	return outs
}

// DecisionsOf extracts, from a trace's directives, every Decide sent to a
// learner, keyed by instance. It is used by the verifier's invariants.
func DecisionsOf(outs []msg.Directive, learners []msg.Loc) map[int][]string {
	lset := make(map[msg.Loc]bool, len(learners))
	for _, l := range learners {
		lset[l] = true
	}
	ds := make(map[int][]string)
	for _, o := range outs {
		if o.M.Hdr == HdrDecide && lset[o.Dest] {
			b, ok := o.M.Body.(Decide)
			if !ok {
				continue
			}
			ds[b.Inst] = append(ds[b.Inst], b.Val)
		}
	}
	return ds
}

// String implements fmt.Stringer for debugging.
func (s *instState) String() string {
	return fmt.Sprintf("round=%d est=%q decided=%v val=%q", s.round, s.est, s.decided, s.val)
}
