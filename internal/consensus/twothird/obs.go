package twothird

import (
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Observability for the TwoThird protocol: counters on the round-based
// lifecycle and an extractor mapping each message to its instance
// (slot) and round (ballot) coordinates.

var (
	mProposals = obs.C("twothird.proposals")
	mVotes     = obs.C("twothird.votes_cast")
	mRounds    = obs.C("twothird.round_advances")
	mDecides   = obs.C("twothird.decides")
)

func init() {
	obs.RegisterExtractor(func(hdr string, body any) (obs.Fields, bool) {
		f := obs.NoFields()
		f.Kind = hdr
		switch b := body.(type) {
		case Propose:
			f.Slot = int64(b.Inst)
		case Vote:
			f.Slot, f.Ballot = int64(b.Inst), int64(b.Round)
		case Decide:
			f.Slot = int64(b.Inst)
		default:
			return obs.Fields{}, false
		}
		return f, true
	})
}

// traceDecide records a node deciding an instance after round rounds.
func traceDecide(slf msg.Loc, inst, round int) {
	mDecides.Inc()
	if obs.Default.Tracing() {
		e := obs.Ev(slf, obs.LayerConsensus, "tt.chosen")
		e.Slot, e.Ballot = int64(inst), int64(round)
		obs.Default.Record(e)
	}
}
