package loe

import (
	"strings"
	"testing"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
)

// ev builds a simple event list at one location for combinator tests.
func evsAt(l msg.Loc, ms ...msg.Msg) []Event {
	evs := make([]Event, len(ms))
	for i, m := range ms {
		evs[i] = Event{Loc: l, Msg: m, Global: i, Local: i, CausedBy: -1}
	}
	return evs
}

func observeAll(c Class, l msg.Loc, evs []Event) [][]any {
	inst := c.Instantiate(l)
	out := make([][]any, len(evs))
	for i, e := range evs {
		out[i] = inst.Observe(e)
	}
	return out
}

func TestBaseClass(t *testing.T) {
	c := Base("ping")
	outs := observeAll(c, "a", evsAt("a", msg.M("ping", 1), msg.M("pong", 2), msg.M("ping", 3)))
	if len(outs[0]) != 1 || outs[0][0] != 1 {
		t.Errorf("event 0 outputs = %v, want [1]", outs[0])
	}
	if len(outs[1]) != 0 {
		t.Errorf("event 1 outputs = %v, want none (header mismatch)", outs[1])
	}
	if len(outs[2]) != 1 || outs[2][0] != 3 {
		t.Errorf("event 2 outputs = %v, want [3]", outs[2])
	}
}

func TestStateClassFolds(t *testing.T) {
	sum := State("Sum",
		func(msg.Loc) any { return 0 },
		func(_ msg.Loc, in, st any) any { return st.(int) + in.(int) },
		Base("n"),
	)
	outs := observeAll(sum, "a", evsAt("a", msg.M("n", 1), msg.M("x", 99), msg.M("n", 2), msg.M("n", 3)))
	want := []int{1, 1, 3, 6} // state is produced at every event, updated on "n"
	for i, w := range want {
		if len(outs[i]) != 1 || outs[i][0] != w {
			t.Errorf("event %d state = %v, want %d", i, outs[i], w)
		}
	}
}

func TestComposeRequiresAllInputs(t *testing.T) {
	pair := Compose("Pair",
		func(_ msg.Loc, vals []any) []any { return []any{[2]any{vals[0], vals[1]}} },
		Base("a"), Base("b"),
	)
	// "a" and "b" never arrive in the same message, so a two-base compose
	// never fires; compose with a State does.
	outs := observeAll(pair, "x", evsAt("x", msg.M("a", 1), msg.M("b", 2)))
	if len(outs[0]) != 0 || len(outs[1]) != 0 {
		t.Errorf("compose fired without all inputs: %v", outs)
	}

	last := State("LastA",
		func(msg.Loc) any { return -1 },
		func(_ msg.Loc, in, _ any) any { return in },
		Base("a"),
	)
	both := Compose("Both",
		func(_ msg.Loc, vals []any) []any { return []any{vals[0].(int) + vals[1].(int)} },
		Base("b"), last,
	)
	outs = observeAll(both, "x", evsAt("x", msg.M("a", 10), msg.M("b", 5)))
	if len(outs[1]) != 1 || outs[1][0] != 15 {
		t.Errorf("compose(b, LastA) at event 1 = %v, want [15]", outs[1])
	}
}

func TestComposeObservesAllInputsEvenWhenSilent(t *testing.T) {
	// The State input must see every event even if the other input is
	// silent at it, otherwise its fold would miss updates.
	sum := State("Sum",
		func(msg.Loc) any { return 0 },
		func(_ msg.Loc, in, st any) any { return st.(int) + in.(int) },
		Base("n"),
	)
	c := Compose("Out",
		func(_ msg.Loc, vals []any) []any { return []any{vals[1]} },
		Base("q"), sum,
	)
	outs := observeAll(c, "x", evsAt("x", msg.M("n", 4), msg.M("n", 5), msg.M("q", 0)))
	if len(outs[2]) != 1 || outs[2][0] != 9 {
		t.Errorf("state seen through compose = %v, want [9]", outs[2])
	}
}

func TestParallelUnion(t *testing.T) {
	c := Parallel(Base("a"), Base("a"), Base("b"))
	outs := observeAll(c, "x", evsAt("x", msg.M("a", 1)))
	if len(outs[0]) != 2 {
		t.Errorf("parallel outputs = %v, want two copies of 1", outs[0])
	}
}

func TestOnce(t *testing.T) {
	c := Once(Base("a"))
	outs := observeAll(c, "x", evsAt("x", msg.M("b", 0), msg.M("a", 1), msg.M("a", 2)))
	if len(outs[0]) != 0 || len(outs[1]) != 1 || len(outs[2]) != 0 {
		t.Errorf("Once outputs = %v, want firing only at event 1", outs)
	}
}

func TestMapAndFilter(t *testing.T) {
	c := Map("double", func(_ msg.Loc, v any) any { return v.(int) * 2 },
		Filter("even", func(_ msg.Loc, v any) bool { return v.(int)%2 == 0 }, Base("n")))
	outs := observeAll(c, "x", evsAt("x", msg.M("n", 3), msg.M("n", 4)))
	if len(outs[0]) != 0 {
		t.Errorf("odd value passed filter: %v", outs[0])
	}
	if len(outs[1]) != 1 || outs[1][0] != 8 {
		t.Errorf("map output = %v, want [8]", outs[1])
	}
}

func TestDelegateSpawnsAndFinishes(t *testing.T) {
	// Each "start" spawns a sub-class that counts two "tick" messages and
	// then reports and finishes.
	spawn := func(_ msg.Loc, v any) Class {
		id := v.(int)
		return Compose("report",
			func(_ msg.Loc, vals []any) []any {
				if vals[0].(int) >= 2 {
					return []any{[2]int{id, vals[0].(int)}, Done{}}
				}
				return nil
			},
			State("ticks",
				func(msg.Loc) any { return 0 },
				func(_ msg.Loc, _, st any) any { return st.(int) + 1 },
				Base("tick")),
		)
	}
	c := Delegate("workers", Base("start"), spawn)
	inst := c.Instantiate("x")
	evs := evsAt("x",
		msg.M("start", 7),
		msg.M("tick", nil),
		msg.M("tick", nil),
		msg.M("tick", nil),
	)
	var fired [][2]int
	for _, e := range evs {
		for _, o := range inst.Observe(e) {
			fired = append(fired, o.([2]int))
		}
	}
	if len(fired) != 1 || fired[0] != [2]int{7, 2} {
		t.Errorf("delegate outputs = %v, want [[7 2]] exactly once", fired)
	}
}

func TestNodesAndRender(t *testing.T) {
	spec := ClkRing(3)
	n := spec.Nodes()
	if n < 8 {
		t.Errorf("CLK spec nodes = %d, suspiciously small", n)
	}
	r := Render(spec.Main)
	for _, want := range []string{"o:Handler", "msg'base", "State:Clock"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render = %q, missing %q", r, want)
		}
	}
}

func TestCLKRun(t *testing.T) {
	spec := ClkRing(3)
	r := gpm.NewRunner(spec.System())
	r.Inject(RingLoc(0), msg.M(ClkHeader, ClkBody{Val: 0, TS: 0}))
	steps, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 10 {
		t.Fatalf("ring stopped after %d steps, want a live ring", steps)
	}
	// Each hop increments the value by one and the timestamps must be
	// strictly increasing along the ring (clock condition along a chain).
	trace := r.Trace()
	lastTS := -1
	for i, e := range trace {
		body := e.In.Body.(ClkBody)
		if body.Val != i {
			t.Errorf("hop %d carried value %v, want %d", i, body.Val, i)
		}
		if body.TS <= lastTS {
			t.Errorf("hop %d timestamp %d not greater than %d", i, body.TS, lastTS)
		}
		lastTS = body.TS
	}
}

func TestCLKClockCondition(t *testing.T) {
	// Run two interleaved rings' worth of messages and check the full
	// clock condition over the resulting event ordering: e1 -> e2 implies
	// LC(e1) < LC(e2), where LC(e) is the Clock value at e.
	spec := ClkRing(4)
	r := gpm.NewRunner(spec.System())
	r.Inject(RingLoc(0), msg.M(ClkHeader, ClkBody{Val: 0, TS: 0}))
	r.Inject(RingLoc(2), msg.M(ClkHeader, ClkBody{Val: 0, TS: 5}))
	if _, err := r.Run(40); err != nil {
		t.Fatal(err)
	}
	eo := FromTrace(r.Trace())
	if err := eo.Check(); err != nil {
		t.Fatalf("trace produced ill-formed event ordering: %v", err)
	}
	clocks := denoteClocks(t, eo)
	for i := range eo.Events {
		for j := range eo.Events {
			if eo.HappensBefore(i, j) && clocks[i] >= clocks[j] {
				t.Errorf("clock condition violated: e%d -> e%d but LC %d >= %d",
					i, j, clocks[i], clocks[j])
			}
		}
	}
}

// denoteClocks evaluates the Clock class denotationally over the ordering.
func denoteClocks(t *testing.T, eo *EventOrdering) []int {
	t.Helper()
	outs := Denote(ClkClock(), eo)
	clocks := make([]int, len(outs))
	for i, o := range outs {
		if len(o) != 1 {
			t.Fatalf("Clock not single-valued at event %d: %v", i, o)
		}
		clocks[i] = o[0].(int)
	}
	return clocks
}

func TestCLKProgressC1(t *testing.T) {
	// Lamport's condition C1: the clock at one location strictly
	// increases across its events (a "progress" property in EventML).
	spec := ClkRing(3)
	r := gpm.NewRunner(spec.System())
	r.Inject(RingLoc(0), msg.M(ClkHeader, ClkBody{Val: 0, TS: 0}))
	if _, err := r.Run(30); err != nil {
		t.Fatal(err)
	}
	eo := FromTrace(r.Trace())
	clocks := denoteClocks(t, eo)
	last := make(map[msg.Loc]int)
	for i, e := range eo.Events {
		if prev, seen := last[e.Loc]; seen && clocks[i] <= prev {
			t.Errorf("C1 violated at %s: clock %d after %d", e.Loc, clocks[i], prev)
		}
		last[e.Loc] = clocks[i]
	}
}

func TestEventOrderingCheckRejectsBadOrders(t *testing.T) {
	tests := []struct {
		name string
		eo   EventOrdering
	}{
		{"bad global", EventOrdering{Events: []Event{{Loc: "a", Global: 1, Local: 0, CausedBy: -1}}}},
		{"bad local", EventOrdering{Events: []Event{{Loc: "a", Global: 0, Local: 1, CausedBy: -1}}}},
		{"forward cause", EventOrdering{Events: []Event{{Loc: "a", Global: 0, Local: 0, CausedBy: 0}}}},
		{"invalid cause", EventOrdering{Events: []Event{{Loc: "a", Global: 0, Local: 0, CausedBy: -2}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.eo.Check(); err == nil {
				t.Error("Check accepted ill-formed ordering")
			}
		})
	}
}

func TestHappensBefore(t *testing.T) {
	// a0 -> a1 (local), a1 -> b0 (causal), hence a0 -> b0 (transitive);
	// c0 concurrent with all.
	eo := &EventOrdering{Events: []Event{
		{Loc: "a", Global: 0, Local: 0, CausedBy: -1},
		{Loc: "a", Global: 1, Local: 1, CausedBy: -1},
		{Loc: "c", Global: 2, Local: 0, CausedBy: -1},
		{Loc: "b", Global: 3, Local: 0, CausedBy: 1},
	}}
	if err := eo.Check(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		i, j int
		want bool
	}{
		{0, 1, true}, {1, 3, true}, {0, 3, true},
		{1, 0, false}, {3, 0, false},
		{2, 3, false}, {0, 2, false}, {2, 0, false},
		{0, 0, false},
	}
	for _, tt := range tests {
		if got := eo.HappensBefore(tt.i, tt.j); got != tt.want {
			t.Errorf("HappensBefore(%d,%d) = %v, want %v", tt.i, tt.j, got, tt.want)
		}
	}
}

func TestSpecGeneratorHaltsOutsiders(t *testing.T) {
	spec := ClkRing(2)
	gen := spec.Generator()
	if !gen("stranger").Halted() {
		t.Error("generator returned live process for outside location")
	}
	if gen(RingLoc(0)).Halted() {
		t.Error("generator halted a member location")
	}
}

func TestDenoteMatchesProcessRun(t *testing.T) {
	// Arrow (c) of the paper in miniature: the operational outputs of the
	// compiled process must equal the denotational outputs of the class
	// over the induced event ordering.
	spec := ClkRing(3)
	r := gpm.NewRunner(spec.System())
	r.Inject(RingLoc(0), msg.M(ClkHeader, ClkBody{Val: 0, TS: 0}))
	if _, err := r.Run(15); err != nil {
		t.Fatal(err)
	}
	eo := FromTrace(r.Trace())
	den := Denote(spec.Main, eo)
	for i, entry := range r.Trace() {
		if len(den[i]) != len(entry.Outs) {
			t.Fatalf("event %d: denotation produced %d outputs, process %d",
				i, len(den[i]), len(entry.Outs))
		}
		for k, o := range den[i] {
			if o.(msg.Directive) != entry.Outs[k] {
				t.Errorf("event %d output %d: denotation %v != operational %v",
					i, k, o, entry.Outs[k])
			}
		}
	}
}
