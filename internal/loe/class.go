// Package loe implements the Logic of Events layer of the paper: event
// classes and their combinators. An event class is a function from events
// to bags of values; base classes recognize messages, and combinators
// (State, composition, parallel composition, Once, delegation) build
// complex classes from simple ones. This is the constructive-specification
// language the paper's EventML compiles into; here the same class ASTs are
//
//   - compiled to GPM processes (package gpm) — the paper's arrow (b),
//   - rendered as a logical form and counted in AST nodes — Table I,
//   - evaluated denotationally over event orderings so the verifier can
//     check that programs implement their specifications — arrow (c),
//   - compiled to λ-terms for the interpreter (package interp) — the
//     paper's interpreted execution mode.
package loe

import (
	"fmt"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
)

// Event is a point in space/time, as in the Logic of Events. The "space"
// coordinate is the location; the "time" coordinate is given by the
// position of the event in an EventOrdering.
type Event struct {
	// Loc is the location at which the event occurs.
	Loc msg.Loc
	// Msg is the message whose reception triggered the event.
	Msg msg.Msg
	// Global is the index of the event in its EventOrdering.
	Global int
	// Local is the index of this event among events at Loc.
	Local int
	// CausedBy is the Global index of the event that sent Msg, or -1 when
	// the message came from outside the system.
	CausedBy int
}

// Class is an event class: a node in the specification AST. Classes are
// pure descriptions; Instantiate creates the runtime observer that
// actually accumulates state. Implementations in this package are the
// paper's primitive constructors; protocols compose them.
type Class interface {
	// ClassName returns the human-readable name of the node.
	ClassName() string
	// Children returns the sub-classes this node is built from.
	Children() []Class
	// ParamNodes returns the number of AST nodes contributed by embedded
	// parameters (functions, literals) beyond the node itself, used for
	// the Table I size statistics.
	ParamNodes() int
	// Instantiate creates a fresh observer for the class at location slf.
	Instantiate(slf msg.Loc) Instance
}

// Instance is a runtime observer of a class at a fixed location. Observe
// consumes one event (which must occur at the instance's location) and
// returns the bag of values the class produces at that event. Instances
// are mutable and single-owner: to fork an execution, replay events into a
// fresh instance (the verifier does exactly this).
type Instance interface {
	Observe(e Event) []any
}

// Nodes returns the total AST size of a class, counting one node per
// combinator plus its parameter nodes — the analogue of the EventML AST
// node counts reported in Table I of the paper.
func Nodes(c Class) int {
	n := 1 + c.ParamNodes()
	for _, ch := range c.Children() {
		n += Nodes(ch)
	}
	return n
}

// Render prints the class tree as a compact S-expression, the
// human-readable "logical form" used by cmd/specstats.
func Render(c Class) string {
	kids := c.Children()
	if len(kids) == 0 {
		return c.ClassName()
	}
	s := "(" + c.ClassName()
	for _, k := range kids {
		s += " " + Render(k)
	}
	return s + ")"
}

// Spec is a complete constructive specification: a main class and the
// locations it runs at — EventML's "main Handler @ locs". Params holds
// named specification parameters counted in the spec size.
type Spec struct {
	// Name identifies the specification (e.g. "CLK", "Paxos-Synod").
	Name string
	// Main is the top-level class whose outputs of type msg.Directive are
	// sent by the runtime.
	Main Class
	// Locs is the set of locations populated by the spec.
	Locs []msg.Loc
	// Params is the number of declared specification parameters.
	Params int
}

// Nodes returns the AST size of the specification.
func (s Spec) Nodes() int { return Nodes(s.Main) + s.Params }

// System compiles the specification into a runnable GPM system: the
// paper's arrow (b). Each location gets a process that feeds incoming
// messages to an instance of Main and emits the msg.Directive outputs.
func (s Spec) System() gpm.System {
	return gpm.System{Gen: s.Generator(), Locs: append([]msg.Loc(nil), s.Locs...)}
}

// Generator returns the distributed-system generator of the spec: the
// function of Fig. 7 that maps a location to the process running there
// (halt for locations outside the spec).
func (s Spec) Generator() gpm.Generator {
	members := make(map[msg.Loc]bool, len(s.Locs))
	for _, l := range s.Locs {
		members[l] = true
	}
	return func(slf msg.Loc) gpm.Process {
		if !members[slf] {
			return gpm.Halt()
		}
		return NewProcess(s.Main, slf)
	}
}

// NewProcess compiles a class into a GPM process at a location. The
// process is the "compiled" execution mode of the paper (native closures,
// the analogue of the Lisp translation).
func NewProcess(c Class, slf msg.Loc) gpm.Process {
	inst := c.Instantiate(slf)
	local := 0
	var step gpm.StepFunc
	step = func(in msg.Msg) (gpm.Process, []msg.Directive) {
		e := Event{Loc: slf, Msg: in, Local: local, Global: -1, CausedBy: -1}
		local++
		outs := inst.Observe(e)
		dirs := make([]msg.Directive, 0, len(outs))
		for _, o := range outs {
			if d, ok := o.(msg.Directive); ok {
				dirs = append(dirs, d)
			}
		}
		return step, dirs
	}
	return step
}

// Denote evaluates a class denotationally over an event ordering: it
// instantiates one observer per location mentioned in the ordering and
// feeds each event to the observer at the event's location, returning the
// bag of values produced at every event. This is the specification-side
// semantics that the verifier compares against operational runs.
func Denote(c Class, eo *EventOrdering) [][]any {
	insts := make(map[msg.Loc]Instance)
	outs := make([][]any, len(eo.Events))
	for i, e := range eo.Events {
		inst, ok := insts[e.Loc]
		if !ok {
			inst = c.Instantiate(e.Loc)
			insts[e.Loc] = inst
		}
		outs[i] = inst.Observe(e)
	}
	return outs
}

// EventOrdering is a finite prefix of a system execution: a global
// sequence of events consistent with per-location order and causality.
type EventOrdering struct {
	Events []Event
}

// Check validates the well-formedness axioms of an event ordering: local
// sequence numbers are contiguous per location and causal references
// point backward in the global order.
func (eo *EventOrdering) Check() error {
	local := make(map[msg.Loc]int)
	for i, e := range eo.Events {
		if e.Global != i {
			return fmt.Errorf("loe: event %d has Global=%d", i, e.Global)
		}
		if e.Local != local[e.Loc] {
			return fmt.Errorf("loe: event %d at %s has Local=%d, want %d", i, e.Loc, e.Local, local[e.Loc])
		}
		local[e.Loc]++
		if e.CausedBy >= i {
			return fmt.Errorf("loe: event %d caused by non-prior event %d", i, e.CausedBy)
		}
		if e.CausedBy < -1 {
			return fmt.Errorf("loe: event %d has invalid CausedBy=%d", i, e.CausedBy)
		}
	}
	return nil
}

// FromTrace builds an event ordering from a GPM runner trace.
func FromTrace(trace []gpm.TraceEntry) *EventOrdering {
	eo := &EventOrdering{Events: make([]Event, 0, len(trace))}
	local := make(map[msg.Loc]int)
	for i, t := range trace {
		eo.Events = append(eo.Events, Event{
			Loc:      t.Loc,
			Msg:      t.In,
			Global:   i,
			Local:    local[t.Loc],
			CausedBy: t.CausedBy,
		})
		local[t.Loc]++
	}
	return eo
}

// HappensBefore reports the paper's recursive "happened before" relation
// on two events of an ordering: e1 → e2 iff there is a chain of
// same-location predecessor steps and message causality links from e1 to
// e2 (Section II-C2 of the paper).
func (eo *EventOrdering) HappensBefore(i, j int) bool {
	if i < 0 || j < 0 || i >= len(eo.Events) || j >= len(eo.Events) {
		return false
	}
	// Breadth-first search backward from j through the two edge kinds:
	// local predecessor and causal sender.
	seen := make(map[int]bool)
	frontier := []int{j}
	for len(frontier) > 0 {
		k := frontier[0]
		frontier = frontier[1:]
		if seen[k] {
			continue
		}
		seen[k] = true
		for _, p := range eo.predecessors(k) {
			if p == i {
				return true
			}
			if p > i { // events before i in every chain have smaller index
				frontier = append(frontier, p)
			}
		}
	}
	return false
}

// predecessors returns the immediate causal predecessors of event k: the
// previous event at the same location, and the event that sent k's
// message.
func (eo *EventOrdering) predecessors(k int) []int {
	var ps []int
	e := eo.Events[k]
	if e.Local > 0 {
		for p := k - 1; p >= 0; p-- {
			if eo.Events[p].Loc == e.Loc {
				ps = append(ps, p)
				break
			}
		}
	}
	if e.CausedBy >= 0 {
		ps = append(ps, e.CausedBy)
	}
	return ps
}
