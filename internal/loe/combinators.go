package loe

import (
	"shadowdb/internal/msg"
)

// The primitive event-class constructors. These mirror the paper's LoE
// combinators: base classes (msg'base), State, the composition combinator
// "o", parallel composition "||", Once, and the delegation combinator the
// paper credits for making "divide and conquer" specifications tractable
// (Section II-D).

// InitFunc computes the initial state of a State class at a location.
type InitFunc func(slf msg.Loc) any

// UpdFunc folds one observed input into a State class's state, returning
// the new state. Implementations may mutate and return the same value;
// instances are single-owner.
type UpdFunc func(slf msg.Loc, input, state any) any

// ComposeFunc combines the simultaneous outputs of the input classes of a
// composition into a bag of outputs.
type ComposeFunc func(slf msg.Loc, vals []any) []any

// MapFunc transforms a single value.
type MapFunc func(slf msg.Loc, v any) any

// PredFunc selects values.
type PredFunc func(slf msg.Loc, v any) bool

// SpawnFunc builds the class delegated to when a trigger value arrives.
type SpawnFunc func(slf msg.Loc, v any) Class

// Done is the sentinel a delegated sub-class outputs to signal that it has
// finished and can be discarded by its Delegate parent (the lifecycle of
// the paper's sub-processes, e.g. Paxos scouts and commanders).
type Done struct{}

// ---------------------------------------------------------------- Base --

type baseClass struct {
	hdr string
}

var _ Class = (*baseClass)(nil)

// Base returns the base class recognizing messages with the given header
// and producing their bodies — EventML's hdr'base.
func Base(hdr string) Class { return &baseClass{hdr: hdr} }

func (c *baseClass) ClassName() string { return c.hdr + "'base" }
func (c *baseClass) Children() []Class { return nil }
func (c *baseClass) ParamNodes() int   { return 1 }

func (c *baseClass) Instantiate(msg.Loc) Instance { return baseInstance{hdr: c.hdr} }

type baseInstance struct{ hdr string }

func (b baseInstance) Observe(e Event) []any {
	if e.Msg.Hdr == b.hdr {
		return []any{e.Msg.Body}
	}
	return nil
}

// --------------------------------------------------------------- State --

type stateClass struct {
	name string
	init InitFunc
	upd  UpdFunc
	in   Class
}

var _ Class = (*stateClass)(nil)

// State returns a state-machine class: starting from init, it folds every
// output of in through upd and produces the (single-valued) current state
// at every event — EventML's State keyword (Fig. 3, line 13).
func State(name string, init InitFunc, upd UpdFunc, in Class) Class {
	return &stateClass{name: name, init: init, upd: upd, in: in}
}

func (c *stateClass) ClassName() string { return "State:" + c.name }
func (c *stateClass) Children() []Class { return []Class{c.in} }
func (c *stateClass) ParamNodes() int   { return 2 }

func (c *stateClass) Instantiate(slf msg.Loc) Instance {
	return &stateInstance{c: c, slf: slf, st: c.init(slf)}
}

type stateInstance struct {
	c   *stateClass
	slf msg.Loc
	st  any
	in  Instance
}

func (s *stateInstance) Observe(e Event) []any {
	if s.in == nil {
		s.in = s.c.in.Instantiate(s.slf)
	}
	for _, v := range s.in.Observe(e) {
		s.st = s.c.upd(s.slf, v, s.st)
	}
	return []any{s.st}
}

// ------------------------------------------------------------- Compose --

type composeClass struct {
	name string
	f    ComposeFunc
	ins  []Class
}

var _ Class = (*composeClass)(nil)

// Compose returns the composition f o (ins...): at events where every
// input class produces a value, it applies f to the tuple of their first
// outputs and produces f's bag of results (Fig. 3, line 18).
func Compose(name string, f ComposeFunc, ins ...Class) Class {
	return &composeClass{name: name, f: f, ins: ins}
}

func (c *composeClass) ClassName() string { return "o:" + c.name }
func (c *composeClass) Children() []Class { return c.ins }
func (c *composeClass) ParamNodes() int   { return 1 }

func (c *composeClass) Instantiate(slf msg.Loc) Instance {
	insts := make([]Instance, len(c.ins))
	for i, in := range c.ins {
		insts[i] = in.Instantiate(slf)
	}
	return &composeInstance{c: c, slf: slf, ins: insts}
}

type composeInstance struct {
	c   *composeClass
	slf msg.Loc
	ins []Instance
}

func (ci *composeInstance) Observe(e Event) []any {
	vals := make([]any, len(ci.ins))
	ok := true
	for i, in := range ci.ins {
		outs := in.Observe(e)
		if len(outs) == 0 {
			ok = false
			continue // still observe remaining inputs: State classes must see every event
		}
		vals[i] = outs[0]
	}
	if !ok {
		return nil
	}
	return ci.c.f(ci.slf, vals)
}

// ------------------------------------------------------------ Parallel --

type parallelClass struct {
	ins []Class
}

var _ Class = (*parallelClass)(nil)

// Parallel returns the parallel composition X || Y || ...: it produces the
// union of the outputs of its components at every event.
func Parallel(ins ...Class) Class { return &parallelClass{ins: ins} }

func (c *parallelClass) ClassName() string { return "||" }
func (c *parallelClass) Children() []Class { return c.ins }
func (c *parallelClass) ParamNodes() int   { return 0 }

func (c *parallelClass) Instantiate(slf msg.Loc) Instance {
	insts := make([]Instance, len(c.ins))
	for i, in := range c.ins {
		insts[i] = in.Instantiate(slf)
	}
	return &parallelInstance{ins: insts}
}

type parallelInstance struct {
	ins []Instance
}

func (pi *parallelInstance) Observe(e Event) []any {
	var out []any
	for _, in := range pi.ins {
		out = append(out, in.Observe(e)...)
	}
	return out
}

// ---------------------------------------------------------------- Once --

type onceClass struct {
	in Class
}

var _ Class = (*onceClass)(nil)

// Once returns a class that produces the outputs of in at the first event
// where in produces anything, and nothing afterwards.
func Once(in Class) Class { return &onceClass{in: in} }

func (c *onceClass) ClassName() string { return "Once" }
func (c *onceClass) Children() []Class { return []Class{c.in} }
func (c *onceClass) ParamNodes() int   { return 0 }

func (c *onceClass) Instantiate(slf msg.Loc) Instance {
	return &onceInstance{in: c.in.Instantiate(slf)}
}

type onceInstance struct {
	in    Instance
	fired bool
}

func (oi *onceInstance) Observe(e Event) []any {
	outs := oi.in.Observe(e)
	if oi.fired {
		return nil
	}
	if len(outs) > 0 {
		oi.fired = true
		return outs
	}
	return nil
}

// ----------------------------------------------------------------- Map --

type mapClass struct {
	name string
	f    MapFunc
	in   Class
}

var _ Class = (*mapClass)(nil)

// Map transforms every output of in through f.
func Map(name string, f MapFunc, in Class) Class {
	return &mapClass{name: name, f: f, in: in}
}

func (c *mapClass) ClassName() string { return "Map:" + c.name }
func (c *mapClass) Children() []Class { return []Class{c.in} }
func (c *mapClass) ParamNodes() int   { return 1 }

func (c *mapClass) Instantiate(slf msg.Loc) Instance {
	return &mapInstance{c: c, slf: slf, in: c.in.Instantiate(slf)}
}

type mapInstance struct {
	c   *mapClass
	slf msg.Loc
	in  Instance
}

func (mi *mapInstance) Observe(e Event) []any {
	ins := mi.in.Observe(e)
	if len(ins) == 0 {
		return nil
	}
	outs := make([]any, len(ins))
	for i, v := range ins {
		outs[i] = mi.c.f(mi.slf, v)
	}
	return outs
}

// -------------------------------------------------------------- Filter --

type filterClass struct {
	name string
	pred PredFunc
	in   Class
}

var _ Class = (*filterClass)(nil)

// Filter keeps only the outputs of in satisfying pred.
func Filter(name string, pred PredFunc, in Class) Class {
	return &filterClass{name: name, pred: pred, in: in}
}

func (c *filterClass) ClassName() string { return "Filter:" + c.name }
func (c *filterClass) Children() []Class { return []Class{c.in} }
func (c *filterClass) ParamNodes() int   { return 1 }

func (c *filterClass) Instantiate(slf msg.Loc) Instance {
	return &filterInstance{c: c, slf: slf, in: c.in.Instantiate(slf)}
}

type filterInstance struct {
	c   *filterClass
	slf msg.Loc
	in  Instance
}

func (fi *filterInstance) Observe(e Event) []any {
	var outs []any
	for _, v := range fi.in.Observe(e) {
		if fi.c.pred(fi.slf, v) {
			outs = append(outs, v)
		}
	}
	return outs
}

// ------------------------------------------------------------ Delegate --

type delegateClass struct {
	name    string
	trigger Class
	spawn   SpawnFunc
}

var _ Class = (*delegateClass)(nil)

// Delegate is the paper's delegation combinator: whenever trigger produces
// a value v, a sub-class spawn(slf, v) is instantiated; the sub-class
// observes the spawning event and every later event, and its outputs are
// merged into the delegate's outputs. A sub-class that outputs Done{} is
// discarded (its remaining outputs at that event are kept, the Done
// sentinel is filtered out).
func Delegate(name string, trigger Class, spawn SpawnFunc) Class {
	return &delegateClass{name: name, trigger: trigger, spawn: spawn}
}

func (c *delegateClass) ClassName() string { return "Delegate:" + c.name }
func (c *delegateClass) Children() []Class { return []Class{c.trigger} }
func (c *delegateClass) ParamNodes() int   { return 1 }

func (c *delegateClass) Instantiate(slf msg.Loc) Instance {
	return &delegateInstance{c: c, slf: slf, trigger: c.trigger.Instantiate(slf)}
}

type delegateInstance struct {
	c       *delegateClass
	slf     msg.Loc
	trigger Instance
	subs    []Instance
}

func (di *delegateInstance) Observe(e Event) []any {
	var outs []any
	// Existing sub-processes observe the event first (they were spawned by
	// earlier events).
	live := di.subs[:0]
	for _, sub := range di.subs {
		subOuts, done := splitDone(sub.Observe(e))
		outs = append(outs, subOuts...)
		if !done {
			live = append(live, sub)
		}
	}
	di.subs = live
	// New spawns observe the spawning event as their first event.
	for _, v := range di.trigger.Observe(e) {
		sub := di.c.spawn(di.slf, v).Instantiate(di.slf)
		subOuts, done := splitDone(sub.Observe(e))
		outs = append(outs, subOuts...)
		if !done {
			di.subs = append(di.subs, sub)
		}
	}
	return outs
}

// splitDone removes Done sentinels from a bag and reports whether one was
// present.
func splitDone(vals []any) ([]any, bool) {
	done := false
	kept := vals[:0]
	for _, v := range vals {
		if _, isDone := v.(Done); isDone {
			done = true
			continue
		}
		kept = append(kept, v)
	}
	return kept, done
}
