package loe

import (
	"shadowdb/internal/msg"
)

// Handler is the derived combinator every protocol in this repository is
// written with: a state machine that, on each input, updates its state and
// emits send directives. It is not a new primitive — it expands into
// State and Compose exactly as a hand-written EventML specification would,
// so the term compiler and the verifier see only primitive combinators.

// HandlerStep consumes one input value, transforms the state, and returns
// the directives to emit. Steps may mutate and return the same state
// value; instances are single-owner.
type HandlerStep func(slf msg.Loc, input, state any) (any, []msg.Directive)

// RawStep is like HandlerStep but emits arbitrary values, so sub-process
// handlers can include the Done sentinel among their outputs.
type RawStep func(slf msg.Loc, input, state any) (any, []any)

// handlerState carries the protocol state plus the values emitted by the
// most recent input.
type handlerState struct {
	s    any
	outs []any
}

// Handler builds the composed class
//
//	emit o (in, State(init', step', in))
//
// where the state machine records each step's directives and emit releases
// them. The input class must be single-valued per event (one message
// produces at most one input value), which holds for all base-class unions
// used in this repository.
func Handler(name string, init InitFunc, step HandlerStep, in Class) Class {
	raw := func(slf msg.Loc, input, state any) (any, []any) {
		s2, dirs := step(slf, input, state)
		outs := make([]any, len(dirs))
		for i, d := range dirs {
			outs[i] = d
		}
		return s2, outs
	}
	return HandlerRaw(name, init, raw, in)
}

// HandlerRaw is Handler with arbitrary output values.
func HandlerRaw(name string, init InitFunc, step RawStep, in Class) Class {
	st := State(name,
		func(slf msg.Loc) any { return handlerState{s: init(slf)} },
		func(slf msg.Loc, input, state any) any {
			hs := state.(handlerState)
			s2, outs := step(slf, input, hs.s)
			return handlerState{s: s2, outs: outs}
		},
		in,
	)
	emit := func(slf msg.Loc, vals []any) []any {
		hs := vals[1].(handlerState)
		return hs.outs
	}
	// The first compose input gates emission: the handler only fires at
	// events where `in` produced a value, guaranteeing hs.outs is fresh.
	return Compose(name+"/emit", emit, in, st)
}
