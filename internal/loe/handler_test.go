package loe

import (
	"testing"

	"shadowdb/internal/msg"
)

// A tiny ping counter: on "ping" it replies "pong" with the count; on
// "stop" it emits Done (raw handler only).
func pingHandler(raw bool) Class {
	init := func(msg.Loc) any { return 0 }
	in := Parallel(Base("ping"), Base("stop"))
	if !raw {
		step := func(slf msg.Loc, input, state any) (any, []msg.Directive) {
			n := state.(int)
			if _, isPing := input.(string); isPing || input == nil {
				n++
				return n, []msg.Directive{msg.Send("peer", msg.M("pong", n))}
			}
			return n, nil
		}
		return Handler("ping", init, step, in)
	}
	step := func(slf msg.Loc, input, state any) (any, []any) {
		n := state.(int)
		if input == "stop" {
			return n, []any{Done{}}
		}
		n++
		return n, []any{msg.Send("peer", msg.M("pong", n))}
	}
	return HandlerRaw("ping", init, step, in)
}

func TestHandlerEmitsOnlyOnInput(t *testing.T) {
	c := pingHandler(false)
	outs := observeAll(c, "x", evsAt("x",
		msg.M("ping", "a"),
		msg.M("other", nil), // not an input: no emission, no stale repeat
		msg.M("ping", "b"),
	))
	if len(outs[0]) != 1 {
		t.Fatalf("event 0 outputs = %v", outs[0])
	}
	if len(outs[1]) != 0 {
		t.Errorf("non-input event re-emitted stale outputs: %v", outs[1])
	}
	if len(outs[2]) != 1 {
		t.Fatalf("event 2 outputs = %v", outs[2])
	}
	d := outs[2][0].(msg.Directive)
	if d.M.Body != 2 {
		t.Errorf("count = %v, want 2 (state carried across events)", d.M.Body)
	}
}

func TestHandlerRawEmitsSentinels(t *testing.T) {
	c := pingHandler(true)
	inst := c.Instantiate("x")
	outs := inst.Observe(Event{Loc: "x", Msg: msg.M("stop", "stop")})
	if len(outs) != 1 {
		t.Fatalf("outs = %v", outs)
	}
	if _, ok := outs[0].(Done); !ok {
		t.Errorf("expected Done sentinel, got %T", outs[0])
	}
}

func TestHandlerInsideDelegate(t *testing.T) {
	// The Synod pattern: delegate spawns raw handlers that finish with
	// Done; the parent must drop them afterwards.
	spawn := func(_ msg.Loc, v any) Class {
		return pingHandler(true)
	}
	c := Delegate("workers", Base("spawn"), spawn)
	inst := c.Instantiate("x")
	// Spawn one worker; it sees the spawn event (no ping header: the raw
	// handler's input classes don't match, so no output).
	if outs := inst.Observe(Event{Loc: "x", Msg: msg.M("spawn", 1)}); len(outs) != 0 {
		t.Fatalf("spawn event outputs = %v", outs)
	}
	// Ping it: one pong.
	outs := inst.Observe(Event{Loc: "x", Msg: msg.M("ping", "p"), Local: 1})
	if len(outs) != 1 {
		t.Fatalf("ping outputs = %v", outs)
	}
	// Stop it: Done is swallowed by the delegate, worker discarded.
	if outs := inst.Observe(Event{Loc: "x", Msg: msg.M("stop", "stop"), Local: 2}); len(outs) != 0 {
		t.Fatalf("stop outputs leaked = %v", outs)
	}
	// Further pings go nowhere.
	if outs := inst.Observe(Event{Loc: "x", Msg: msg.M("ping", "p"), Local: 3}); len(outs) != 0 {
		t.Errorf("finished worker still responding: %v", outs)
	}
}

func TestNodesCountsHandlerExpansion(t *testing.T) {
	// Handler is sugar over State and Compose: its node count must
	// reflect the expansion, not a single opaque node.
	h := pingHandler(false)
	if n := Nodes(h); n < 6 {
		t.Errorf("Nodes(handler) = %d, want the expanded combinator count", n)
	}
}
