package loe

import (
	"strconv"
	"strings"

	"shadowdb/internal/msg"
)

// This file is the paper's running example (Fig. 3): an EventML
// specification of Lamport's logical clocks, transliterated into the class
// combinators. It is used by the verifier tests (clock condition), by the
// interpreter tests (optimization bisimulation), by Table I, and by
// examples/lamport.

// ClkHeader is the single message header of the CLK protocol.
const ClkHeader = "msg"

// ClkBody is the body of a CLK message: a value and the sender's logical
// timestamp ("internal msg : MsgVal x Timestamp", Fig. 3 line 8).
type ClkBody struct {
	Val any
	TS  int
}

// ClkHandle is the specification parameter "handle": given the local
// location and the received value it computes the next value and its
// recipient (Fig. 3 line 5).
type ClkHandle func(slf msg.Loc, val any) (any, msg.Loc)

// imax is the integer max import of Fig. 3 line 10.
func imax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ClkClock builds the Clock state class: initial state 0; on every message
// the clock becomes max(message timestamp, clock) + 1 (Fig. 3 lines 11-13).
func ClkClock() Class {
	updClock := func(slf msg.Loc, input, state any) any {
		body := input.(ClkBody)
		return imax(body.TS, state.(int)) + 1
	}
	return State("Clock",
		func(msg.Loc) any { return 0 },
		updClock,
		Base(ClkHeader),
	)
}

// CLK builds the complete CLK specification of Fig. 3: a Handler class
// composed from msg'base and Clock, running at locs.
func CLK(locs []msg.Loc, handle ClkHandle) Spec {
	onMsg := func(slf msg.Loc, vals []any) []any {
		body := vals[0].(ClkBody)
		clock := vals[1].(int)
		newval, recipient := handle(slf, body.Val)
		return []any{msg.Send(recipient, msg.M(ClkHeader, ClkBody{Val: newval, TS: clock}))}
	}
	handler := Compose("Handler", onMsg, Base(ClkHeader), ClkClock())
	return Spec{
		Name:   "CLK",
		Main:   handler,
		Locs:   locs,
		Params: 3, // locs, MsgVal, handle (Fig. 3 lines 3-5)
	}
}

// ClkRing builds the CLK instance used throughout tests and examples: n
// locations in a ring, each handler forwarding an incremented integer
// value to the next location.
func ClkRing(n int) Spec {
	locs := make([]msg.Loc, n)
	for i := range locs {
		locs[i] = RingLoc(i)
	}
	handle := func(slf msg.Loc, val any) (any, msg.Loc) {
		next := locs[(ringIndex(slf)+1)%n]
		return val.(int) + 1, next
	}
	return CLK(locs, handle)
}

// RingLoc names the i-th location of a CLK ring.
func RingLoc(i int) msg.Loc {
	return msg.Loc("clk" + strconv.Itoa(i))
}

func ringIndex(l msg.Loc) int {
	i, err := strconv.Atoi(strings.TrimPrefix(string(l), "clk"))
	if err != nil {
		return 0
	}
	return i
}
