package loe

// Desc exposes the structure of a class AST node so that other layers can
// translate specifications without this package depending on them. The
// term compiler in package interp uses it to generate GPM programs — the
// same role the paper's EventML compiler plays when it emits Nuprl terms.

// Kind identifies the primitive constructor of a class node.
type Kind int

// The class constructors.
const (
	KindBase Kind = iota + 1
	KindState
	KindCompose
	KindParallel
	KindOnce
	KindMap
	KindFilter
	KindDelegate
)

// Desc is the public description of a class node. Only the fields
// relevant to the node's Kind are set.
type Desc struct {
	Kind     Kind
	Name     string
	Header   string
	Children []Class
	Init     InitFunc
	Upd      UpdFunc
	F        ComposeFunc
	MapF     MapFunc
	Pred     PredFunc
	Spawn    SpawnFunc
}

// Described is implemented by every class constructor in this package.
type Described interface {
	Describe() Desc
}

var (
	_ Described = (*baseClass)(nil)
	_ Described = (*stateClass)(nil)
	_ Described = (*composeClass)(nil)
	_ Described = (*parallelClass)(nil)
	_ Described = (*onceClass)(nil)
	_ Described = (*mapClass)(nil)
	_ Described = (*filterClass)(nil)
	_ Described = (*delegateClass)(nil)
)

// Describe implements Described.
func (c *baseClass) Describe() Desc {
	return Desc{Kind: KindBase, Name: c.hdr, Header: c.hdr}
}

// Describe implements Described.
func (c *stateClass) Describe() Desc {
	return Desc{Kind: KindState, Name: c.name, Children: []Class{c.in}, Init: c.init, Upd: c.upd}
}

// Describe implements Described.
func (c *composeClass) Describe() Desc {
	return Desc{Kind: KindCompose, Name: c.name, Children: c.ins, F: c.f}
}

// Describe implements Described.
func (c *parallelClass) Describe() Desc {
	return Desc{Kind: KindParallel, Children: c.ins}
}

// Describe implements Described.
func (c *onceClass) Describe() Desc {
	return Desc{Kind: KindOnce, Children: []Class{c.in}}
}

// Describe implements Described.
func (c *mapClass) Describe() Desc {
	return Desc{Kind: KindMap, Name: c.name, Children: []Class{c.in}, MapF: c.f}
}

// Describe implements Described.
func (c *filterClass) Describe() Desc {
	return Desc{Kind: KindFilter, Name: c.name, Children: []Class{c.in}, Pred: c.pred}
}

// Describe implements Described.
func (c *delegateClass) Describe() Desc {
	return Desc{Kind: KindDelegate, Name: c.name, Children: []Class{c.trigger}, Spawn: c.spawn}
}
