package flow

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"shadowdb/internal/obs"
)

// Reads must be refused while writes are still admitted: the read
// threshold is strictly inside the write threshold.
func TestQueueShedsReadsBeforeWrites(t *testing.T) {
	q := NewQueueCaps(8, 4, 7)
	for i := 0; i < 4; i++ {
		if err := q.Admit(ClassRead); err != nil {
			t.Fatalf("read %d below ReadCap refused: %v", i, err)
		}
	}
	if err := q.Admit(ClassRead); !errors.Is(err, ErrOverload) {
		t.Fatalf("read at ReadCap: got %v, want ErrOverload", err)
	}
	for i := 0; i < 3; i++ {
		if err := q.Admit(ClassWrite); err != nil {
			t.Fatalf("write %d refused while reads already shed: %v", i, err)
		}
	}
	if err := q.Admit(ClassWrite); !errors.Is(err, ErrOverload) {
		t.Fatalf("write at WriteCap: got %v, want ErrOverload", err)
	}
	// Control traffic still has the reserved band above WriteCap.
	if err := q.Admit(ClassControl); err != nil {
		t.Fatalf("control refused in reserved band: %v", err)
	}
	if err := q.Admit(ClassControl); !errors.Is(err, ErrOverload) {
		t.Fatalf("control past Cap: got %v, want ErrOverload", err)
	}
	if got := q.Sheds(ClassRead); got != 1 {
		t.Fatalf("read sheds = %d, want 1", got)
	}
	if q.Peak() != q.Cap() {
		t.Fatalf("peak %d, want cap %d", q.Peak(), q.Cap())
	}
}

// No priority inversion: however many reads arrive, occupancy from
// reads alone stops at ReadCap, so a write always finds WriteCap -
// ReadCap admissible slots.
func TestQueueWritesNeverStarvedByReads(t *testing.T) {
	q := NewQueue(16) // readCap 8, writeCap 14
	shed := 0
	for i := 0; i < 1000; i++ {
		if err := q.Admit(ClassRead); err != nil {
			shed++
		}
	}
	if shed != 1000-8 {
		t.Fatalf("read sheds = %d, want %d", shed, 1000-8)
	}
	admitted := 0
	for q.Admit(ClassWrite) == nil {
		admitted++
	}
	if admitted != q.ClassCap(ClassWrite)-q.ClassCap(ClassRead) {
		t.Fatalf("writes admitted under read flood = %d, want %d",
			admitted, q.ClassCap(ClassWrite)-q.ClassCap(ClassRead))
	}
}

// A full queue must answer with ErrOverload — an explicit shed — and
// never with anything that smells like a timeout.
func TestQueueFullReturnsErrOverloadNotTimeout(t *testing.T) {
	q := NewQueueCaps(4, 1, 2)
	if err := q.Admit(ClassWrite); err != nil {
		t.Fatalf("first write refused: %v", err)
	}
	_ = q.Admit(ClassWrite)
	err := q.Admit(ClassWrite)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("got %v, want ErrOverload", err)
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("overload error must not be a deadline error")
	}
	var ne net.Error
	if errors.As(err, &ne) {
		t.Fatalf("overload error must not implement net.Error (timeout)")
	}
}

func TestQueueReleaseRestoresAdmission(t *testing.T) {
	q := NewQueueCaps(4, 1, 2)
	if err := q.Admit(ClassRead); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit(ClassRead); !errors.Is(err, ErrOverload) {
		t.Fatalf("got %v, want ErrOverload", err)
	}
	q.Release()
	if err := q.Admit(ClassRead); err != nil {
		t.Fatalf("read refused after release: %v", err)
	}
	q.ReleaseN(5)
	if q.Len() != 0 {
		t.Fatalf("len %d after over-release, want 0 (clamped)", q.Len())
	}
}

func TestNewQueueClampsAndNests(t *testing.T) {
	for _, cap := range []int{0, 1, 4, 5, 16, 1024} {
		q := NewQueue(cap)
		r, w, c := q.ClassCap(ClassRead), q.ClassCap(ClassWrite), q.Cap()
		if !(0 < r && r < w && w < c) {
			t.Fatalf("cap %d: thresholds %d/%d/%d not nested", cap, r, w, c)
		}
	}
}

func TestExpired(t *testing.T) {
	if Expired(0, 1<<60) {
		t.Fatal("zero deadline must never expire")
	}
	if Expired(100, 99) {
		t.Fatal("not yet due")
	}
	if !Expired(100, 100) {
		t.Fatal("due at the deadline")
	}
}

func TestRetryBudgetSpendAndRefill(t *testing.T) {
	b := &RetryBudget{Rate: 2, Burst: 3}
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		if !b.Allow(now) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.Allow(now) {
		t.Fatal("empty bucket allowed a retry")
	}
	// 2 tokens/s: after 500ms exactly one token is back.
	now += 500 * time.Millisecond
	if !b.Allow(now) {
		t.Fatal("refilled token denied")
	}
	if b.Allow(now) {
		t.Fatal("second token allowed before it refilled")
	}
	// Refill clamps at Burst.
	now += time.Hour
	for i := 0; i < 3; i++ {
		if !b.Allow(now) {
			t.Fatalf("token %d after long idle denied", i)
		}
	}
	if b.Allow(now) {
		t.Fatal("burst clamp exceeded")
	}
}

func TestRetryBudgetNilAlwaysAllows(t *testing.T) {
	var b *RetryBudget
	if !b.Allow(0) {
		t.Fatal("nil budget must allow")
	}
}

func TestBreakerOpensProbesAndRecloses(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: time.Second}
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		b.Failure(now)
		if !b.Allow(now) {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.Failure(now)
	if b.Allow(now) {
		t.Fatal("breaker still closed at threshold")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %s, want open", b.State())
	}
	// Before the cooldown: fail fast.
	if b.Allow(now + 999*time.Millisecond) {
		t.Fatal("allowed inside cooldown")
	}
	// At the cooldown: exactly one probe.
	now += time.Second
	if !b.Allow(now) {
		t.Fatal("probe denied after cooldown")
	}
	if b.Allow(now) {
		t.Fatal("second probe allowed while first unresolved")
	}
	// Probe fails: re-open for a fresh cooldown.
	b.Failure(now)
	if b.Allow(now + 500*time.Millisecond) {
		t.Fatal("allowed inside re-opened cooldown")
	}
	now += time.Second
	if !b.Allow(now) {
		t.Fatal("second probe denied")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after probe success, want closed", b.State())
	}
	if !b.Allow(now) {
		t.Fatal("closed breaker denied")
	}
	// A success resets the consecutive-failure streak.
	b.Failure(now)
	b.Success()
	b.Failure(now)
	b.Failure(now)
	if !b.Allow(now) {
		t.Fatal("streak not reset by success")
	}
}

func TestWatchdogFiresOnSustainedShedOnly(t *testing.T) {
	o := obs.New(64)
	shed := o.Counter("test.shed")
	r := obs.NewRates(o, time.Second, 16)
	fired := 0
	w := &Watchdog{Rates: r, Metric: "test.shed", Threshold: 5, Windows: 3,
		OnSustained: func(int) { fired++ }}

	// Two hot windows, one cool, two hot: never 3 consecutive.
	for _, n := range []int64{10, 10, 0, 10, 10} {
		shed.Add(n)
		r.Tick()
		if w.Check() {
			t.Fatal("fired without 3 consecutive hot windows")
		}
	}
	// Third consecutive hot window: fire once.
	shed.Add(10)
	r.Tick()
	if !w.Check() {
		t.Fatal("did not fire on 3rd consecutive hot window")
	}
	if !w.Fired() || fired != 1 {
		t.Fatalf("fired=%v count=%d, want true/1", w.Fired(), fired)
	}
	// Latched until Reset.
	shed.Add(10)
	r.Tick()
	if w.Check() || fired != 1 {
		t.Fatal("re-fired without Reset")
	}
	w.Reset()
	for i := 0; i < 3; i++ {
		shed.Add(10)
		r.Tick()
	}
	if !w.Check() || fired != 2 {
		t.Fatalf("did not re-fire after Reset (count %d)", fired)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{ClassRead: "read", ClassWrite: "write", ClassControl: "control", Class(9): "unknown"} {
		if c.String() != want {
			t.Fatalf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
