package flow

import "shadowdb/internal/obs"

// Watchdog detects sustained overload from windowed metric rates and
// fires a callback — typically a flight-recorder postmortem dump — so
// brownouts leave the same forensic trail as checker violations. It
// watches the per-window delta of one counter (by default the shed
// counter this package maintains) and fires when the delta meets the
// threshold for Windows consecutive windows. The caller ticks the
// underlying Rates (wall ticker live, virtual-time ticks in the
// simulator) and calls Check after each tick.
type Watchdog struct {
	// Rates is the windowed-delta tracker to read. Required.
	Rates *obs.Rates
	// Metric is the counter whose per-window delta is evaluated.
	// "" means "flow.shed".
	Metric string
	// Threshold is the per-window delta that counts as overload.
	// 0 means 1 (any shedding at all).
	Threshold int64
	// Windows is how many consecutive over-threshold windows arm the
	// callback. 0 means 3.
	Windows int
	// OnSustained runs once per sustained episode, with the length of
	// the over-threshold streak. Re-arms only after Reset.
	OnSustained func(streak int)

	lastTo int64
	streak int
	fired  bool
}

func (w *Watchdog) metric() string {
	if w.Metric != "" {
		return w.Metric
	}
	return "flow.shed"
}

func (w *Watchdog) threshold() int64 {
	if w.Threshold > 0 {
		return w.Threshold
	}
	return 1
}

func (w *Watchdog) windows() int {
	if w.Windows > 0 {
		return w.Windows
	}
	return 3
}

// Check folds any windows closed since the last call into the streak
// and fires OnSustained when the streak first reaches the configured
// length. It returns true on the call that fires.
func (w *Watchdog) Check() bool {
	if w == nil || w.Rates == nil {
		return false
	}
	name, thr := w.metric(), w.threshold()
	for _, win := range w.Rates.Windows() {
		if win.To <= w.lastTo {
			continue
		}
		w.lastTo = win.To
		if win.Counters[name] >= thr {
			w.streak++
		} else {
			w.streak = 0
		}
	}
	if w.fired || w.streak < w.windows() {
		return false
	}
	w.fired = true
	mWatchdogFired.Inc()
	if w.OnSustained != nil {
		w.OnSustained(w.streak)
	}
	return true
}

// Reset re-arms the watchdog for the next sustained episode and clears
// the streak.
func (w *Watchdog) Reset() {
	if w == nil {
		return
	}
	w.fired = false
	w.streak = 0
}

// Fired reports whether the watchdog has fired since the last Reset.
func (w *Watchdog) Fired() bool { return w != nil && w.fired }
