package flow

import "shadowdb/internal/obs"

// Metrics. Counters are process-global (one node per process live; the
// simulator aggregates a cluster into one registry, which the bench
// diffs per phase). The depth gauge reflects the most recently updated
// queue; the peak gauge is a monotone max across all queues in the
// registry, which is exactly the "did any queue ever exceed its bound"
// question the certification gate asks.
var (
	mAdmitted         = obs.C("flow.admitted")
	mShed             = obs.C("flow.shed")
	mShedRead         = obs.C("flow.shed.read")
	mShedWrite        = obs.C("flow.shed.write")
	mShedControl      = obs.C("flow.shed.control")
	mDeadlineDropped  = obs.C("flow.deadline.dropped")
	mRejectsSent      = obs.C("flow.rejects.sent")
	mBudgetSpent      = obs.C("flow.budget.spent")
	mBudgetDenied     = obs.C("flow.budget.denied")
	mBreakerOpens     = obs.C("flow.breaker.opens")
	mBreakerFastFails = obs.C("flow.breaker.fastfails")
	mWatchdogFired    = obs.C("flow.watchdog.fired")

	gDepth = obs.G("flow.queue.depth")
	gPeak  = obs.G("flow.queue.peak")
)

func shedByClass(c Class) *obs.Counter {
	switch c {
	case ClassRead:
		return mShedRead
	case ClassWrite:
		return mShedWrite
	}
	return mShedControl
}

// MarkExpired counts one request dropped at a hop because its deadline
// had already passed ("flow.deadline.dropped"). Layers call it at each
// enforcement point so the bench reads one cross-layer counter.
func MarkExpired() { mDeadlineDropped.Inc() }

// MarkReject counts one Reject sent to a client ("flow.rejects.sent").
func MarkReject() { mRejectsSent.Inc() }
