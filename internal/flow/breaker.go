package flow

import "time"

// Breaker states.
const (
	// BreakerClosed: traffic flows, failures are counted.
	BreakerClosed = "closed"
	// BreakerOpen: traffic fails fast until the cooldown elapses.
	BreakerOpen = "open"
	// BreakerHalfOpen: one probe is in flight; its outcome closes or
	// re-opens the breaker.
	BreakerHalfOpen = "half-open"
)

// Breaker is a consecutive-failure circuit breaker. Threshold
// consecutive failures open it; while open, Allow fails fast (no work
// is sent at a target that is saturated or unreachable). After
// Cooldown, exactly one probe is allowed through (half-open); the
// probe's Success closes the breaker, its Failure re-opens it for
// another cooldown. The clock is injected through Allow/Failure so the
// simulator replays breaker trips deterministically.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker. 0 means 5.
	Threshold int
	// Cooldown is how long an open breaker fails fast before allowing
	// a probe. 0 means one second.
	Cooldown time.Duration

	state    string
	fails    int
	openedAt time.Duration
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return time.Second
}

// Allow reports whether work may be sent at time now. While open it
// returns false (fail fast) until the cooldown elapses, then admits a
// single half-open probe. A nil breaker always allows.
func (b *Breaker) Allow(now time.Duration) bool {
	if b == nil {
		return true
	}
	switch b.state {
	case BreakerOpen:
		if now-b.openedAt >= b.cooldown() {
			b.state = BreakerHalfOpen
			return true
		}
		mBreakerFastFails.Inc()
		return false
	case BreakerHalfOpen:
		// One probe at a time; further traffic still fails fast until
		// the probe resolves.
		mBreakerFastFails.Inc()
		return false
	}
	return true
}

// Ready reports, without changing state, whether Allow would admit
// work at time now: closed always, open only once the cooldown has
// elapsed (the would-be probe), half-open never (a probe is already
// out). Callers gating one request on several breakers check Ready on
// all of them first, then call Allow on each — so an early refusal
// cannot strand an earlier breaker half-open with no probe in flight.
func (b *Breaker) Ready(now time.Duration) bool {
	if b == nil {
		return true
	}
	switch b.state {
	case BreakerOpen:
		return now-b.openedAt >= b.cooldown()
	case BreakerHalfOpen:
		return false
	}
	return true
}

// Success records a successful outcome: resets the failure streak and
// closes a half-open breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.fails = 0
	b.state = BreakerClosed
}

// Failure records a failed outcome at time now: re-opens a half-open
// breaker immediately, and opens a closed one once the consecutive
// streak reaches the threshold.
func (b *Breaker) Failure(now time.Duration) {
	if b == nil {
		return
	}
	if b.state == "" {
		b.state = BreakerClosed
	}
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = now
		mBreakerOpens.Inc()
		return
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.threshold() {
		b.state = BreakerOpen
		b.openedAt = now
		mBreakerOpens.Inc()
	}
}

// State returns the breaker's current state name.
func (b *Breaker) State() string {
	if b == nil || b.state == "" {
		return BreakerClosed
	}
	return b.state
}
