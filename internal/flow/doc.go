// Package flow is the end-to-end overload-control subsystem: admission
// control with priority classes, deadline propagation, retry budgets,
// and circuit breaking. It turns load into a first-class fault the same
// way internal/fault treats partitions and crashes — degradation is
// explicit, observable, and certified online, never an emergent
// collapse.
//
// The pieces, each independent and composed by the layers that use
// them:
//
//   - Queue: a bounded admission counter with nested per-class
//     thresholds. Reads are shed first, writes next, control traffic
//     (2PC decisions, lease renewals, membership commands) last. A full
//     queue returns ErrOverload — never a silent drop, never a timeout
//     masquerading as backpressure. The broadcast sequencer and the
//     shard router gate their intake on one.
//   - Deadlines: a per-request absolute deadline (nanoseconds on the
//     deployment clock — virtual in simulation, wall live) stamped at
//     the client, carried in msg.Envelope/broadcast.Bcast/core.TxRequest,
//     and checked at every non-replicated hop so doomed work is dropped
//     before it consumes sequencer, fsync, or apply capacity. Replicated
//     hops (ordered batches) never drop: determinism requires every
//     replica to apply the same prefix, so past the order a deadline can
//     only suppress the client-visible ack, not the apply.
//   - Reject: the explicit terminal outcome for shed or expired work. A
//     rejecting hop reports its queue depth and bound, so the online
//     checker can audit that occupancy never exceeded configuration.
//   - RetryBudget: a deterministic token bucket bounding retry volume.
//     Retries spend from the budget; an exhausted budget converts a
//     retryable rejection into a terminal client error instead of
//     amplifying the overload that caused it.
//   - Breaker: a consecutive-failure circuit breaker with a cooldown
//     and a single half-open probe, used per shard group by the router
//     to fail fast while a group is saturated or partitioned.
//   - Watchdog: a sustained-overload detector over windowed metric
//     rates (obs.Rates) that arms a flight-recorder postmortem dump
//     when the shed rate stays above a threshold for N consecutive
//     windows, so brownouts leave the same forensic trail as checker
//     violations.
//
// # Invariants
//
//   - Every admitted request reaches a terminal outcome: applied,
//     rejected with ErrOverload, or deadline-expired — each
//     client-visible. internal/obs/dist certifies this online.
//   - Queue occupancy never exceeds the configured bound, and within
//     the bound the class thresholds are nested (ReadCap < WriteCap <
//     Cap), so writes cannot be starved by reads and control traffic
//     always has headroom reads and writes cannot consume.
//   - All decisions are deterministic functions of injected clocks and
//     explicit state — no wall-clock reads, no shared PRNG — so the
//     simulator replays overload scenarios bit-for-bit.
//
// # Concurrency
//
// Queue, RetryBudget, Breaker, and Watchdog are owned by a single
// process loop (the LoE process model delivers one message at a time)
// and are not safe for concurrent use. The metrics they update are
// lock-free obs handles and safe from anywhere.
package flow
