package flow

import (
	"errors"

	"shadowdb/internal/msg"
)

// ErrOverload is the explicit admission-rejection error: the intake
// queue a request arrived at is full for the request's class. It is
// deliberately not a timeout — callers distinguish "the system chose
// to shed this" from "the system lost this" and react differently
// (spend retry budget vs. fail over).
var ErrOverload = errors.New("flow: overload, request shed by admission control")

// Class is a request's shed-priority class. Lower classes are shed
// first: a queue admits ClassRead only below ReadCap, ClassWrite below
// WriteCap, and ClassControl all the way to Cap, with ReadCap <
// WriteCap < Cap. Reads are the cheapest to refuse (clients fall back
// to lease/follower paths or retry elsewhere), writes carry client
// data, and control traffic (2PC decisions, lease renewals, membership
// commands) is the last thing a saturated system may drop — losing it
// converts overload into unavailability.
type Class uint8

// The shed-priority classes, cheapest-to-refuse first.
const (
	// ClassRead is read traffic routed through the order (shed first).
	ClassRead Class = iota
	// ClassWrite is client transaction traffic.
	ClassWrite
	// ClassControl is protocol control traffic: 2PC decisions, lease
	// renewals, membership commands (shed last).
	ClassControl

	numClasses
)

// String names the class for logs and reports.
func (c Class) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassControl:
		return "control"
	}
	return "unknown"
}

// Classifier maps an ordered payload to its shed class. The broadcast
// sequencer is payload-agnostic, so the layer that owns the payload
// format supplies one (core.FlowClass for tx/lease/membership payloads,
// shard.FlowClass adding the 2PC prefixes). A nil Classifier treats
// everything as ClassWrite.
type Classifier func(payload []byte) Class

// Queue is a bounded admission counter with nested per-class
// thresholds. It does not hold the queued items — the owning layer
// keeps its own pending structure — it is the accounting that decides,
// observably, whether an arrival may join it. Occupancy covers
// everything admitted but not yet resolved (delivered, rejected, or
// expired), so the bound limits total in-progress intake, not just the
// instantaneous backlog slice.
type Queue struct {
	capTotal int
	readCap  int
	writeCap int

	n    int
	peak int

	sheds  [numClasses]int64
	admits [numClasses]int64
}

// NewQueue builds a queue with capacity cap and the default nested
// thresholds: reads admitted below cap/2, writes below cap minus a
// reserved control band of max(1, cap/8). cap < 4 is clamped to 4 so
// every class retains at least one admissible slot.
func NewQueue(cap int) *Queue {
	if cap < 4 {
		cap = 4
	}
	readCap := cap / 2
	writeCap := cap - maxInt(1, cap/8)
	if writeCap <= readCap {
		writeCap = readCap + 1
	}
	return NewQueueCaps(cap, readCap, writeCap)
}

// NewQueueCaps builds a queue with explicit thresholds. Panics unless
// 0 < readCap < writeCap < cap — the nesting is what guarantees writes
// cannot be starved by reads and control always has headroom.
func NewQueueCaps(cap, readCap, writeCap int) *Queue {
	if !(0 < readCap && readCap < writeCap && writeCap < cap) {
		panic("flow: queue thresholds must nest 0 < readCap < writeCap < cap")
	}
	return &Queue{capTotal: cap, readCap: readCap, writeCap: writeCap}
}

// Admit asks to add one request of class c. On success occupancy grows
// by one and Admit returns nil; when occupancy has reached the class
// threshold it returns ErrOverload and the queue is unchanged. The
// caller must pair every successful Admit with exactly one Release.
func (q *Queue) Admit(c Class) error {
	limit := q.capTotal
	switch c {
	case ClassRead:
		limit = q.readCap
	case ClassWrite:
		limit = q.writeCap
	}
	if q.n >= limit {
		q.sheds[c]++
		mShed.Inc()
		shedByClass(c).Inc()
		return ErrOverload
	}
	q.n++
	q.admits[c]++
	mAdmitted.Inc()
	gDepth.Set(int64(q.n))
	if q.n > q.peak {
		q.peak = q.n
		if int64(q.peak) > gPeak.Value() {
			gPeak.Set(int64(q.peak))
		}
	}
	return nil
}

// Release resolves one previously admitted request (delivered,
// rejected downstream, or expired), freeing its slot.
func (q *Queue) Release() { q.ReleaseN(1) }

// ReleaseN resolves n previously admitted requests at once (a
// delivered batch).
func (q *Queue) ReleaseN(n int) {
	q.n -= n
	if q.n < 0 {
		q.n = 0
	}
	gDepth.Set(int64(q.n))
}

// Len returns the current occupancy.
func (q *Queue) Len() int { return q.n }

// Peak returns the highest occupancy ever reached; by construction it
// never exceeds Cap.
func (q *Queue) Peak() int { return q.peak }

// Cap returns the total capacity (the ClassControl threshold).
func (q *Queue) Cap() int { return q.capTotal }

// ClassCap returns the admission threshold for class c.
func (q *Queue) ClassCap(c Class) int {
	switch c {
	case ClassRead:
		return q.readCap
	case ClassWrite:
		return q.writeCap
	}
	return q.capTotal
}

// Sheds returns how many class-c arrivals were refused.
func (q *Queue) Sheds(c Class) int64 { return q.sheds[c] }

// Admits returns how many class-c arrivals were admitted.
func (q *Queue) Admits(c Class) int64 { return q.admits[c] }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Expired reports whether an absolute deadline (nanoseconds on the
// deployment clock) has passed at time now. A zero deadline means "no
// deadline" and never expires.
func Expired(deadline, now int64) bool { return deadline > 0 && now >= deadline }

// HdrReject heads a Reject message.
const HdrReject = "flowReject"

// Rejection reasons carried in Reject.Reason.
const (
	// ReasonOverload: shed by a full admission queue; retryable if the
	// client's budget allows.
	ReasonOverload = "overload"
	// ReasonDeadline: the request's deadline passed before it could be
	// ordered; terminal (a retry cannot meet it either).
	ReasonDeadline = "deadline"
	// ReasonBreaker: failed fast by an open circuit breaker; retryable
	// after the breaker's cooldown.
	ReasonBreaker = "breaker"
)

// Reject is the explicit terminal outcome for work a hop refused: sent
// to the request's origin so the client observes shed/expired requests
// instead of timing out, and carrying the rejecting queue's occupancy
// and bound so the online checker can audit that admission stayed
// within configuration.
type Reject struct {
	// From is the rejecting node.
	From msg.Loc
	// Seq is the rejected request's client sequence number.
	Seq int64
	// Class is the request's shed class.
	Class Class
	// Reason is one of ReasonOverload, ReasonDeadline, ReasonBreaker.
	Reason string
	// Depth is the rejecting queue's occupancy at the rejection.
	Depth int
	// Cap is the rejecting queue's configured total bound (0 when the
	// rejection is not queue-related, e.g. a breaker fast-fail).
	Cap int
}

// RegisterWireTypes registers flow's message bodies with the wire
// codec; binaries hosting real transports call it at startup.
func RegisterWireTypes() {
	msg.RegisterBody(Reject{})
}
