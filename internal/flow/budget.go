package flow

import "time"

// RetryBudget is a deterministic token-bucket bound on retry volume.
// Every retry spends one token; tokens refill at Rate per second up to
// Burst. When the bucket is empty the retry is denied and the caller
// must surface a terminal error instead of re-sending — retries beyond
// the budget only amplify the overload that caused them (retry storms).
//
// The clock is passed into Allow explicitly (virtual in simulation,
// wall live), so budget decisions replay deterministically.
type RetryBudget struct {
	// Rate is the token refill rate per second. Required (> 0).
	Rate float64
	// Burst is the bucket capacity and initial fill. 0 means Rate
	// (one second of refill).
	Burst float64

	tokens float64
	last   time.Duration
	primed bool
}

// Allow reports whether one retry may be spent at time now, consuming
// a token when it may. A nil budget always allows (feature off).
func (b *RetryBudget) Allow(now time.Duration) bool {
	if b == nil {
		return true
	}
	burst := b.Burst
	if burst <= 0 {
		burst = b.Rate
	}
	if !b.primed {
		b.tokens = burst
		b.last = now
		b.primed = true
	}
	if now > b.last {
		b.tokens += b.Rate * (now - b.last).Seconds()
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		mBudgetSpent.Inc()
		return true
	}
	mBudgetDenied.Inc()
	return false
}

// Tokens returns the current token count (after the last Allow; it
// does not advance the clock).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	return b.tokens
}
