package bench

import (
	"testing"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/fault"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
)

// TestPBRAsymmetricPartitionFailover isolates the primary from its
// backups in one direction only — r1's messages to r2/r3 vanish while
// r2/r3 (and the clients, and the broadcast service) still reach r1.
// The backups must suspect the silent primary, agree on a new
// configuration through the broadcast, and serve clients again; the
// deposed primary hears the new configuration and stands down, so the
// group ends with exactly one primary and a clean checker.
func TestPBRAsymmetricPartitionFailover(t *testing.T) {
	rows := 200
	timing := core.Timing{
		HeartbeatEvery: 250 * time.Millisecond,
		SuspectAfter:   time.Second,
		ClientRetry:    500 * time.Millisecond,
	}
	setup := func(db *sqldb.DB) error { return core.BankSetup(db, rows) }
	sc := newPBRClusterOpts([]string{"h2", "h2", "h2"}, rows, timing,
		core.BankRegistry(), setup, false, 3)

	o := obs.New(1 << 14)
	sc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.Watch(o)

	cut := time.Second
	inj := fault.BindCluster(sc.clu, fault.Plan{
		Seed: 1,
		Partitions: []fault.Partition{{
			From: fault.Duration(cut),
			A:    []msg.Loc{"r1"}, B: []msg.Loc{"r2", "r3"},
			// Asymmetric and never healing: r1 stays able to hear the
			// world it can no longer talk to.
		}},
	})
	inj.SetObs(o)

	stats := &loadStats{}
	shadowClients(sc.clu, stats, 2, 1<<30, core.ModePBR,
		sc.rloc, sc.bloc, timing.ClientRetry,
		func(i int) Workload { return MicroWorkload(rows, int64(i)*7) })

	var beforeCut, atResume int64
	resumedAt := time.Duration(-1)
	var sample func()
	sample = func() {
		now := sc.sim.Now()
		if now <= cut {
			beforeCut = stats.committed
		}
		r2 := sc.pbr.Replicas["r2"]
		if resumedAt < 0 && now > cut && r2.ConfigNow().Seq > 0 && r2.IsPrimary() && !r2.Stopped() {
			resumedAt = now
			atResume = stats.committed
		}
		if now < 10*time.Second {
			sc.sim.After(20*time.Millisecond, sample)
		}
	}
	sc.sim.After(0, sample)
	sc.sim.Run(10*time.Second, 200_000_000)

	if resumedAt < 0 {
		t.Fatalf("backups never took over: r2 config seq %d, primary %v",
			sc.pbr.Replicas["r2"].ConfigNow().Seq, sc.pbr.Replicas["r2"].IsPrimary())
	}
	if beforeCut == 0 {
		t.Fatal("no commits before the partition")
	}
	if got := stats.committed; got <= atResume {
		t.Fatalf("no client progress after failover: %d committed at resume, %d at end", atResume, got)
	}
	if sc.pbr.Replicas["r1"].IsPrimary() {
		t.Error("deposed primary r1 still believes it is primary")
	}
	primaries := 0
	for _, l := range sc.rloc {
		r := sc.pbr.Replicas[l]
		if r.IsPrimary() && !r.Stopped() {
			primaries++
		}
	}
	if primaries != 1 {
		t.Errorf("got %d active primaries, want 1", primaries)
	}
	if vs := checker.Violations(); len(vs) > 0 {
		t.Fatalf("checker flagged %d violations, first: %v", len(vs), vs[0])
	}
}

// TestSMRBroadcastCrashRestartMidLoad crashes broadcast service node b2
// in the middle of an SMR load and restarts it with retained state. The
// service must keep ordering through the surviving quorum, every client
// must finish, and the online checker must stay clean across the
// crash-restart.
func TestSMRBroadcastCrashRestartMidLoad(t *testing.T) {
	rows := 200
	clients, txPer := 2, 120
	sc := newSMRCluster([]string{"h2", "h2", "h2"}, core.BankRegistry(),
		func(db *sqldb.DB) error { return core.BankSetup(db, rows) })

	o := obs.New(1 << 14)
	sc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.Watch(o)

	inj := fault.BindCluster(sc.clu, fault.Plan{
		Seed: 2,
		Crashes: []fault.Crash{{
			At: fault.Duration(200 * time.Millisecond), Node: "b2",
			RestartAfter: fault.Duration(500 * time.Millisecond),
		}},
	})
	inj.SetObs(o)

	stats := &loadStats{}
	shadowClients(sc.clu, stats, clients, txPer, core.ModeSMR,
		nil, sc.bloc, time.Second,
		func(i int) Workload { return MicroWorkload(rows, int64(100+i)) })

	for stats.finished < clients && !sc.sim.Idle() && sc.sim.Steps() < 50_000_000 {
		sc.sim.Run(0, 100_000)
	}
	if stats.finished < clients {
		t.Fatalf("workload stalled across the crash: %d/%d clients finished", stats.finished, clients)
	}
	if want := int64(clients * txPer); stats.committed != want {
		t.Errorf("committed %d, want %d", stats.committed, want)
	}
	crashes := 0
	for _, i := range inj.Injections() {
		if i.Kind == "crash" || i.Kind == "restart" {
			crashes++
		}
	}
	if crashes != 2 {
		t.Errorf("recorded %d crash/restart injections, want 2", crashes)
	}
	if vs := checker.Violations(); len(vs) > 0 {
		t.Fatalf("checker flagged %d violations, first: %v", len(vs), vs[0])
	}
}

// TestChaosCertifiedAndReproducible runs a compressed chaos experiment
// end to end, twice, and requires certification: clean checker, one
// primary, progress after the faults, and bit-identical injection
// schedules across the two runs.
func TestChaosCertifiedAndReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos experiment in -short mode")
	}
	cfg := ChaosConfig{
		Rows: 300, Clients: 2, RunFor: 12 * time.Second,
		PartitionFrom: 2 * time.Second, PartitionTo: 5 * time.Second,
		CrashAt: 6 * time.Second, CrashDowntime: time.Second,
		NoiseFrom: 8 * time.Second, NoiseTo: 10 * time.Second,
		Seed: 7, RingSize: 1 << 14, Bin: 250 * time.Millisecond,
	}
	res := Chaos(cfg)
	if !res.Reproducible {
		t.Errorf("injection schedule not reproducible: %016x vs %016x",
			res.Fingerprint, res.Fingerprint2)
	}
	if len(res.Violations) > 0 {
		t.Errorf("checker flagged %d violations, first: %v", len(res.Violations), res.Violations[0])
	}
	if res.Primaries != 1 {
		t.Errorf("got %d active primaries, want 1", res.Primaries)
	}
	if !res.ProgressAfterFaults {
		t.Error("no client progress after the last fault window")
	}
	if res.Injections == 0 {
		t.Error("nemesis injected nothing")
	}
	if !res.Certified() {
		t.Error("run not certified")
	}
}
