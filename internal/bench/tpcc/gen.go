package tpcc

import (
	"fmt"
	"math/rand"

	"shadowdb/internal/core"
	"shadowdb/internal/sqldb"
)

// Generator produces the TPC-C transaction mix with all randomness
// resolved into the argument list, so the resulting requests are
// deterministic procedures.
type Generator struct {
	sc  Scale
	rng *rand.Rand
	// Mix is cumulative percentages for NewOrder / Payment / OrderStatus
	// / Delivery / StockLevel; the standard mix is used by default.
	counts map[string]int
}

// NewGenerator creates a generator with a seed (per client).
func NewGenerator(sc Scale, seed int64) *Generator {
	return &Generator{sc: sc, rng: rand.New(rand.NewSource(seed)), counts: make(map[string]int)}
}

// Counts reports how many of each type were generated.
func (g *Generator) Counts() map[string]int { return g.counts }

// Next returns the next transaction (type name and argument list)
// following the standard mix: 45% NewOrder, 43% Payment, 4% each for the
// rest.
func (g *Generator) Next() (string, []any) {
	p := g.rng.Intn(100)
	var typ string
	var args []any
	switch {
	case p < 45:
		typ, args = g.newOrder()
	case p < 88:
		typ, args = g.payment()
	case p < 92:
		typ, args = g.orderStatus()
	case p < 96:
		typ, args = g.delivery()
	default:
		typ, args = g.stockLevel()
	}
	g.counts[typ]++
	return typ, args
}

// nonUniform is the TPC-C NURand-style skew: low ids are hotter.
func (g *Generator) nonUniform(n int) int64 {
	a := g.rng.Intn(n) + 1
	b := g.rng.Intn(n) + 1
	if a < b {
		return int64(a)
	}
	return int64(b)
}

func (g *Generator) warehouse() int64 { return int64(g.rng.Intn(g.sc.Warehouses) + 1) }
func (g *Generator) district() int64  { return int64(g.rng.Intn(g.sc.DistrictsPerW) + 1) }
func (g *Generator) customer() int64  { return g.nonUniform(g.sc.CustomersPerD) }

func (g *Generator) newOrder() (string, []any) {
	w := g.warehouse()
	d := g.district()
	c := g.customer()
	n := int64(5 + g.rng.Intn(11))
	args := []any{w, d, c, n}
	for l := int64(0); l < n; l++ {
		item := int64(g.rng.Intn(g.sc.Items) + 1)
		if l == n-1 && g.rng.Intn(100) == 0 {
			item = -1 // the 1% rollback case
		}
		args = append(args, item, w, int64(1+g.rng.Intn(10)))
	}
	return "new_order", args
}

func (g *Generator) payment() (string, []any) {
	w := g.warehouse()
	d := g.district()
	return "payment", []any{w, d, w, d, g.customer(), 1.0 + float64(g.rng.Intn(5000))/100}
}

func (g *Generator) orderStatus() (string, []any) {
	return "order_status", []any{g.warehouse(), g.district(), g.customer()}
}

func (g *Generator) delivery() (string, []any) {
	return "delivery", []any{g.warehouse(), int64(1 + g.rng.Intn(10))}
}

func (g *Generator) stockLevel() (string, []any) {
	return "stock_level", []any{g.warehouse(), g.district(), int64(10 + g.rng.Intn(11))}
}

// Locks is the baseline lock specification for TPC-C. Table-locked
// engines take the tables each type touches; row-locked engines take the
// warehouse/district/customer rows that are the real contention points.
func Locks(req core.TxRequest, mode sqldb.LockMode) []string {
	argAt := func(i int) any {
		if i < len(req.Args) {
			return req.Args[i]
		}
		return 0
	}
	if mode == sqldb.TableLock {
		switch req.Type {
		case "new_order":
			return []string{"district", "new_order", "order_line", "orders", "stock"}
		case "payment":
			return []string{"customer", "district", "history", "warehouse"}
		case "order_status":
			return []string{"customer", "order_line", "orders"}
		case "delivery":
			return []string{"customer", "new_order", "order_line", "orders"}
		default:
			return []string{"district", "order_line", "stock"}
		}
	}
	w := argAt(0)
	d := argAt(1)
	switch req.Type {
	case "new_order":
		return []string{fmt.Sprintf("district/%v/%v", w, d)}
	case "payment":
		return []string{
			fmt.Sprintf("customer/%v/%v/%v", argAt(2), argAt(3), argAt(4)),
			fmt.Sprintf("district/%v/%v", w, d),
			fmt.Sprintf("warehouse/%v", w),
		}
	case "order_status":
		return []string{fmt.Sprintf("customer/%v/%v/%v", w, d, argAt(2))}
	case "delivery":
		return []string{fmt.Sprintf("delivery/%v", w)}
	default:
		return []string{fmt.Sprintf("district/%v/%v", w, d)}
	}
}
