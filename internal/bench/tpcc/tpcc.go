// Package tpcc implements the TPC-C benchmark workload of the paper's
// evaluation (Section IV-B): the nine-table schema, the population
// loader, and all five transaction types (NewOrder, Payment, OrderStatus,
// Delivery, StockLevel) as deterministic ShadowDB procedures. All
// randomness lives in the workload generator — procedure arguments carry
// every random choice — so replicas execute identically, as state machine
// replication requires.
package tpcc

import (
	"fmt"

	"shadowdb/internal/core"
	"shadowdb/internal/sqldb"
)

// Scale sets the population sizes. Full() is the TPC-C scale for one
// warehouse as in the paper ("TPC-C benchmark configured with 1
// warehouse, or the equivalent of about 100MB of data"); Small() keeps
// unit tests fast.
type Scale struct {
	Warehouses    int
	DistrictsPerW int
	CustomersPerD int
	Items         int
	OrdersPerD    int
}

// Full returns the standard single-warehouse scale.
func Full() Scale {
	return Scale{Warehouses: 1, DistrictsPerW: 10, CustomersPerD: 3000, Items: 100_000, OrdersPerD: 3000}
}

// Small returns a reduced scale for tests.
func Small() Scale {
	return Scale{Warehouses: 1, DistrictsPerW: 2, CustomersPerD: 30, Items: 100, OrdersPerD: 20}
}

// schema is the nine TPC-C tables in our dialect.
var schema = []string{
	`CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name TEXT, w_tax FLOAT, w_ytd FLOAT)`,
	`CREATE TABLE district (d_w_id INT, d_id INT, d_name TEXT, d_tax FLOAT, d_ytd FLOAT,
		d_next_o_id INT, PRIMARY KEY (d_w_id, d_id))`,
	`CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_first TEXT, c_last TEXT,
		c_balance FLOAT, c_ytd_payment FLOAT, c_payment_cnt INT, c_delivery_cnt INT,
		c_data TEXT, PRIMARY KEY (c_w_id, c_d_id, c_id))`,
	`CREATE TABLE history (h_c_w_id INT, h_c_d_id INT, h_c_id INT, h_seq INT,
		h_d_id INT, h_w_id INT, h_amount FLOAT, h_data TEXT,
		PRIMARY KEY (h_c_w_id, h_c_d_id, h_c_id, h_seq))`,
	`CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, o_carrier_id INT,
		o_ol_cnt INT, PRIMARY KEY (o_w_id, o_d_id, o_id))`,
	`CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT,
		PRIMARY KEY (no_w_id, no_d_id, no_o_id))`,
	`CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT,
		ol_i_id INT, ol_supply_w_id INT, ol_quantity INT, ol_amount FLOAT, ol_dist_info TEXT,
		PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))`,
	`CREATE TABLE item (i_id INT PRIMARY KEY, i_name TEXT, i_price FLOAT, i_data TEXT)`,
	`CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_ytd INT, s_order_cnt INT,
		s_remote_cnt INT, s_dist_01 TEXT, PRIMARY KEY (s_w_id, s_i_id))`,
}

// Setup creates the schema and loads the population for the scale. It
// returns a function usable as the replay setup of the validators.
func Setup(db *sqldb.DB, sc Scale) error {
	for _, s := range schema {
		if _, err := db.Exec(s); err != nil {
			return fmt.Errorf("tpcc schema: %w", err)
		}
	}
	for w := 1; w <= sc.Warehouses; w++ {
		if _, err := db.Exec("INSERT INTO warehouse VALUES (?, ?, ?, ?)",
			w, fmt.Sprintf("W%d", w), 0.05+float64(w%10)/100, 300000.0); err != nil {
			return err
		}
		for i := 1; i <= sc.Items; i++ {
			if w == 1 {
				if _, err := db.Exec("INSERT INTO item VALUES (?, ?, ?, ?)",
					i, fmt.Sprintf("item-%d", i), 1.0+float64(i%100), itemData(i)); err != nil {
					return err
				}
			}
			if _, err := db.Exec("INSERT INTO stock VALUES (?, ?, ?, ?, ?, ?, ?)",
				w, i, 50+(i%50), 0, 0, 0, distInfo(w, i)); err != nil {
				return err
			}
		}
		for d := 1; d <= sc.DistrictsPerW; d++ {
			if _, err := db.Exec("INSERT INTO district VALUES (?, ?, ?, ?, ?, ?)",
				w, d, fmt.Sprintf("D%d-%d", w, d), 0.03+float64(d)/100, 30000.0,
				sc.OrdersPerD+1); err != nil {
				return err
			}
			for c := 1; c <= sc.CustomersPerD; c++ {
				if _, err := db.Exec("INSERT INTO customer VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
					w, d, c, fmt.Sprintf("first%d", c), lastName(c),
					-10.0, 10.0, 1, 0, custData(c)); err != nil {
					return err
				}
				if _, err := db.Exec("INSERT INTO history VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
					w, d, c, 0, d, w, 10.0, "init"); err != nil {
					return err
				}
			}
			for o := 1; o <= sc.OrdersPerD; o++ {
				cid := (o-1)%sc.CustomersPerD + 1
				olCnt := 5 + o%6
				carrier := o % 10
				if o > sc.OrdersPerD*7/10 {
					carrier = 0 // undelivered tail
				}
				if _, err := db.Exec("INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?)",
					w, d, o, cid, carrier, olCnt); err != nil {
					return err
				}
				if o > sc.OrdersPerD*7/10 {
					if _, err := db.Exec("INSERT INTO new_order VALUES (?, ?, ?)", w, d, o); err != nil {
						return err
					}
				}
				for l := 1; l <= olCnt; l++ {
					item := (o*7+l*13)%sc.Items + 1
					if _, err := db.Exec("INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
						w, d, o, l, item, w, 5, float64(l)*3.0, distInfo(w, l)); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// SetupFunc adapts Setup for the serializability validator.
func SetupFunc(sc Scale) func(*sqldb.DB) error {
	return func(db *sqldb.DB) error { return Setup(db, sc) }
}

func itemData(i int) string {
	if i%10 == 0 {
		return "ORIGINALxxxxxxxxxxxxxx"
	}
	return fmt.Sprintf("data-%d-padding-padding", i)
}

func distInfo(w, i int) string { return fmt.Sprintf("dist-%02d-%06d-xxxxxxxxxxxxxxxx", w, i) }
func custData(c int) string    { return fmt.Sprintf("customer-data-%d-padding-padding-padding", c) }

// lastName builds the TPC-C style syllable last name.
func lastName(c int) string {
	syll := []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}
	n := c % 1000
	return syll[n/100] + syll[(n/10)%10] + syll[n%10]
}

// Registry returns the five TPC-C transaction procedures, bound to a
// scale (needed for a few derived limits).
func Registry(sc Scale) core.Registry {
	return core.Registry{
		"new_order":    newOrderProc(sc),
		"payment":      paymentProc(),
		"order_status": orderStatusProc(),
		"delivery":     deliveryProc(sc),
		"stock_level":  stockLevelProc(),
	}
}
