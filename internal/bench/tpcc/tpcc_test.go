package tpcc

import (
	"errors"
	"testing"

	"shadowdb/internal/core"
	"shadowdb/internal/sqldb"
)

func setupSmall(t *testing.T) *sqldb.DB {
	t.Helper()
	db, err := sqldb.Open("h2:mem:tpcc")
	if err != nil {
		t.Fatal(err)
	}
	if err := Setup(db, Small()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSetupPopulation(t *testing.T) {
	db := setupSmall(t)
	sc := Small()
	checks := []struct {
		table string
		want  int
	}{
		{"warehouse", sc.Warehouses},
		{"district", sc.Warehouses * sc.DistrictsPerW},
		{"customer", sc.Warehouses * sc.DistrictsPerW * sc.CustomersPerD},
		{"item", sc.Items},
		{"stock", sc.Warehouses * sc.Items},
		{"orders", sc.Warehouses * sc.DistrictsPerW * sc.OrdersPerD},
	}
	for _, c := range checks {
		if n, ok := db.TableLen(c.table); !ok || n != c.want {
			t.Errorf("%s rows = %d (ok=%v), want %d", c.table, n, ok, c.want)
		}
	}
	// The undelivered tail is in new_order.
	if n, _ := db.TableLen("new_order"); n == 0 {
		t.Error("no undelivered orders loaded")
	}
}

func run(t *testing.T, db *sqldb.DB, typ string, args []any) core.TxResult {
	t.Helper()
	reg := Registry(Small())
	res := core.RunProc(db, reg, core.TxRequest{Client: "t", Seq: 1, Type: typ, Args: args})
	if res.Err != "" {
		t.Fatalf("%s: %s", typ, res.Err)
	}
	return res
}

func TestNewOrder(t *testing.T) {
	db := setupSmall(t)
	before, _ := db.TableLen("orders")
	res := run(t, db, "new_order", []any{
		int64(1), int64(1), int64(5), int64(2),
		int64(10), int64(1), int64(3),
		int64(20), int64(1), int64(2),
	})
	if res.Aborted {
		t.Fatal("valid new_order aborted")
	}
	after, _ := db.TableLen("orders")
	if after != before+1 {
		t.Errorf("orders %d -> %d", before, after)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if total := res.Rows[0][1].(float64); total <= 0 {
		t.Errorf("order total = %v", total)
	}
	// Stock was decremented for item 10.
	sres, err := db.Exec("SELECT s_ytd FROM stock WHERE s_w_id = 1 AND s_i_id = 10")
	if err != nil || sres.Rows[0][0].(int64) != 3 {
		t.Errorf("stock ytd = %v (%v)", sres.Rows, err)
	}
}

func TestNewOrderRollback(t *testing.T) {
	db := setupSmall(t)
	before, _ := db.TableLen("orders")
	reg := Registry(Small())
	res := core.RunProc(db, reg, core.TxRequest{Type: "new_order", Args: []any{
		int64(1), int64(1), int64(5), int64(1),
		int64(-1), int64(1), int64(3), // invalid item -> abort
	}})
	if !res.Aborted {
		t.Fatalf("invalid item did not abort: %+v", res)
	}
	after, _ := db.TableLen("orders")
	if after != before {
		t.Errorf("aborted new_order leaked an order row (%d -> %d)", before, after)
	}
}

func TestPayment(t *testing.T) {
	db := setupSmall(t)
	res := run(t, db, "payment", []any{int64(1), int64(1), int64(1), int64(1), int64(3), 42.5})
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	bal := res.Rows[0][0].(float64)
	if bal != -52.5 { // initial -10 minus 42.5
		t.Errorf("balance = %v, want -52.5", bal)
	}
	wres, _ := db.Exec("SELECT w_ytd FROM warehouse WHERE w_id = 1")
	if wres.Rows[0][0].(float64) != 300042.5 {
		t.Errorf("warehouse ytd = %v", wres.Rows[0][0])
	}
}

func TestOrderStatus(t *testing.T) {
	db := setupSmall(t)
	res := run(t, db, "order_status", []any{int64(1), int64(1), int64(1)})
	if len(res.Rows) == 0 {
		t.Error("order_status returned no lines for a populated customer")
	}
}

func TestDelivery(t *testing.T) {
	db := setupSmall(t)
	before, _ := db.TableLen("new_order")
	res := run(t, db, "delivery", []any{int64(1), int64(7)})
	delivered := res.Rows[0][0].(int64)
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	after, _ := db.TableLen("new_order")
	if after != before-int(delivered) {
		t.Errorf("new_order %d -> %d after delivering %d", before, after, delivered)
	}
}

func TestStockLevel(t *testing.T) {
	db := setupSmall(t)
	res := run(t, db, "stock_level", []any{int64(1), int64(1), int64(100)})
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if low := res.Rows[0][0].(int64); low < 0 {
		t.Errorf("low stock = %d", low)
	}
}

func TestGeneratorMix(t *testing.T) {
	g := NewGenerator(Small(), 42)
	reg := Registry(Small())
	for i := 0; i < 2000; i++ {
		typ, args := g.Next()
		if _, ok := reg[typ]; !ok {
			t.Fatalf("generated unknown type %q", typ)
		}
		if len(args) == 0 {
			t.Fatalf("%s generated no args", typ)
		}
	}
	counts := g.Counts()
	frac := func(typ string) float64 { return float64(counts[typ]) / 2000 }
	if f := frac("new_order"); f < 0.40 || f > 0.50 {
		t.Errorf("new_order fraction = %.2f, want ~0.45", f)
	}
	if f := frac("payment"); f < 0.38 || f > 0.48 {
		t.Errorf("payment fraction = %.2f, want ~0.43", f)
	}
	for _, typ := range []string{"order_status", "delivery", "stock_level"} {
		if f := frac(typ); f < 0.02 || f > 0.07 {
			t.Errorf("%s fraction = %.2f, want ~0.04", typ, f)
		}
	}
}

func TestGeneratedWorkloadExecutes(t *testing.T) {
	db := setupSmall(t)
	g := NewGenerator(Small(), 7)
	reg := Registry(Small())
	aborts := 0
	for i := 0; i < 300; i++ {
		typ, args := g.Next()
		res := core.RunProc(db, reg, core.TxRequest{Client: "c", Seq: int64(i), Type: typ, Args: args})
		if res.Err != "" {
			t.Fatalf("tx %d (%s): %s", i, typ, res.Err)
		}
		if res.Aborted {
			aborts++
		}
	}
	if aborts > 30 {
		t.Errorf("abort rate too high: %d/300", aborts)
	}
}

func TestDeterministicReplicas(t *testing.T) {
	// Two replicas executing the same generated sequence finish in
	// identical states — the SMR prerequisite.
	dbA := setupSmall(t)
	dbB := setupSmall(t)
	reg := Registry(Small())
	g := NewGenerator(Small(), 99)
	var seq []core.TxRequest
	for i := 0; i < 150; i++ {
		typ, args := g.Next()
		seq = append(seq, core.TxRequest{Client: "c", Seq: int64(i), Type: typ, Args: args})
	}
	for _, req := range seq {
		core.RunProc(dbA, reg, req)
	}
	for _, req := range seq {
		core.RunProc(dbB, reg, req)
	}
	if !sqldb.Equal(dbA, dbB) {
		t.Error("replicas diverged on identical TPC-C input")
	}
}

func TestLocks(t *testing.T) {
	req := core.TxRequest{Type: "payment", Args: []any{int64(1), int64(2), int64(1), int64(2), int64(7), 10.0}}
	tl := Locks(req, sqldb.TableLock)
	if len(tl) != 4 {
		t.Errorf("table locks = %v", tl)
	}
	rl := Locks(req, sqldb.RowLock)
	if len(rl) != 3 || rl[1] != "district/1/2" {
		t.Errorf("row locks = %v", rl)
	}
	no := core.TxRequest{Type: "new_order", Args: []any{int64(1), int64(3)}}
	if got := Locks(no, sqldb.RowLock); len(got) != 1 || got[0] != "district/1/3" {
		t.Errorf("new_order row locks = %v", got)
	}
}

func TestArgHelpers(t *testing.T) {
	if v, err := argInt([]any{int64(3)}, 0); err != nil || v != 3 {
		t.Error("argInt int64")
	}
	if v, err := argInt([]any{7}, 0); err != nil || v != 7 {
		t.Error("argInt int")
	}
	if _, err := argInt([]any{"x"}, 0); err == nil {
		t.Error("argInt accepted string")
	}
	if _, err := argInt(nil, 0); !errorsIsMissing(err) {
		t.Error("argInt missing index")
	}
	if v, err := argFloat([]any{2.5}, 0); err != nil || v != 2.5 {
		t.Error("argFloat")
	}
}

func errorsIsMissing(err error) bool {
	return err != nil && !errors.Is(err, core.ErrAbort)
}
