package tpcc

import (
	"fmt"

	"shadowdb/internal/core"
	"shadowdb/internal/sqldb"
)

// The five TPC-C transaction procedures. Arguments arrive as flat []any
// slices built by the generator in gen.go; all values are int64/float64
// (the generator normalizes), so replicas decode them identically.

func argInt(args []any, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("tpcc: missing argument %d", i)
	}
	switch v := args[i].(type) {
	case int64:
		return v, nil
	case int:
		return int64(v), nil
	case float64:
		return int64(v), nil
	default:
		return 0, fmt.Errorf("tpcc: argument %d is %T, want int", i, args[i])
	}
}

func argFloat(args []any, i int) (float64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("tpcc: missing argument %d", i)
	}
	switch v := args[i].(type) {
	case float64:
		return v, nil
	case int64:
		return float64(v), nil
	case int:
		return float64(v), nil
	default:
		return 0, fmt.Errorf("tpcc: argument %d is %T, want float", i, args[i])
	}
}

// newOrderProc: args = [w, d, c, nLines, (item, supplyW, qty)*nLines].
// An item id of -1 signals the TPC-C 1% "unused item" case: the
// transaction aborts deterministically after doing its reads.
func newOrderProc(sc Scale) core.Procedure {
	return func(db *sqldb.DB, args []any) (core.ProcResult, error) {
		w, err := argInt(args, 0)
		if err != nil {
			return core.ProcResult{}, err
		}
		d, _ := argInt(args, 1)
		c, _ := argInt(args, 2)
		n, _ := argInt(args, 3)

		// Read warehouse and district tax, take the next order id.
		wres, err := db.Exec("SELECT w_tax FROM warehouse WHERE w_id = ?", w)
		if err != nil || len(wres.Rows) == 0 {
			return core.ProcResult{}, fmt.Errorf("warehouse %d: %v", w, err)
		}
		dres, err := db.Exec("SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?", w, d)
		if err != nil || len(dres.Rows) == 0 {
			return core.ProcResult{}, fmt.Errorf("district %d/%d: %v", w, d, err)
		}
		oid := dres.Rows[0][1].(int64)
		if _, err := db.Exec("UPDATE district SET d_next_o_id = ? WHERE d_w_id = ? AND d_id = ?",
			oid+1, w, d); err != nil {
			return core.ProcResult{}, err
		}
		if _, err := db.Exec("INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?)",
			w, d, oid, c, 0, n); err != nil {
			return core.ProcResult{}, err
		}
		if _, err := db.Exec("INSERT INTO new_order VALUES (?, ?, ?)", w, d, oid); err != nil {
			return core.ProcResult{}, err
		}
		total := 0.0
		for l := int64(0); l < n; l++ {
			base := 4 + int(l)*3
			item, err := argInt(args, base)
			if err != nil {
				return core.ProcResult{}, err
			}
			supplyW, _ := argInt(args, base+1)
			qty, _ := argInt(args, base+2)
			if item < 0 {
				// TPC-C 2.4.1.5: ~1% of NewOrders carry an invalid item
				// and must roll back. Deterministic across replicas.
				return core.ProcResult{}, core.ErrAbort
			}
			ires, err := db.Exec("SELECT i_price FROM item WHERE i_id = ?", item)
			if err != nil || len(ires.Rows) == 0 {
				return core.ProcResult{}, core.ErrAbort
			}
			price := ires.Rows[0][0].(float64)
			sres, err := db.Exec("SELECT s_quantity FROM stock WHERE s_w_id = ? AND s_i_id = ?", supplyW, item)
			if err != nil || len(sres.Rows) == 0 {
				return core.ProcResult{}, core.ErrAbort
			}
			sq := sres.Rows[0][0].(int64)
			newQty := sq - qty
			if newQty < 10 {
				newQty += 91
			}
			if _, err := db.Exec(
				"UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 WHERE s_w_id = ? AND s_i_id = ?",
				newQty, qty, supplyW, item); err != nil {
				return core.ProcResult{}, err
			}
			amount := float64(qty) * price
			total += amount
			if _, err := db.Exec("INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
				w, d, oid, l+1, item, supplyW, qty, amount, distInfo(int(w), int(l))); err != nil {
				return core.ProcResult{}, err
			}
		}
		return core.ProcResult{
			Cols: []string{"o_id", "total"},
			Rows: [][]sqldb.Value{{oid, total}},
		}, nil
	}
}

// paymentProc: args = [w, d, cW, cD, c, amount].
func paymentProc() core.Procedure {
	return func(db *sqldb.DB, args []any) (core.ProcResult, error) {
		w, err := argInt(args, 0)
		if err != nil {
			return core.ProcResult{}, err
		}
		d, _ := argInt(args, 1)
		cw, _ := argInt(args, 2)
		cd, _ := argInt(args, 3)
		c, _ := argInt(args, 4)
		amount, _ := argFloat(args, 5)

		if _, err := db.Exec("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?", amount, w); err != nil {
			return core.ProcResult{}, err
		}
		if _, err := db.Exec("UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_id = ?",
			amount, w, d); err != nil {
			return core.ProcResult{}, err
		}
		if _, err := db.Exec(
			"UPDATE customer SET c_balance = c_balance - ?, c_ytd_payment = c_ytd_payment + ?, c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
			amount, amount, cw, cd, c); err != nil {
			return core.ProcResult{}, err
		}
		bres, err := db.Exec("SELECT c_balance, c_payment_cnt FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
			cw, cd, c)
		if err != nil || len(bres.Rows) == 0 {
			return core.ProcResult{}, fmt.Errorf("payment customer %d/%d/%d: %v", cw, cd, c, err)
		}
		// The history key is (customer, payment count): deterministic and
		// unique, so replicas insert identical rows.
		seq := bres.Rows[0][1].(int64)
		if _, err := db.Exec("INSERT INTO history VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
			cw, cd, c, seq, d, w, amount, "payment"); err != nil {
			return core.ProcResult{}, err
		}
		return core.ProcResult{Cols: bres.Cols[:1], Rows: [][]sqldb.Value{{bres.Rows[0][0]}}}, nil
	}
}

// orderStatusProc: args = [w, d, c].
func orderStatusProc() core.Procedure {
	return func(db *sqldb.DB, args []any) (core.ProcResult, error) {
		w, err := argInt(args, 0)
		if err != nil {
			return core.ProcResult{}, err
		}
		d, _ := argInt(args, 1)
		c, _ := argInt(args, 2)
		if _, err := db.Exec("SELECT c_balance, c_first, c_last FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
			w, d, c); err != nil {
			return core.ProcResult{}, err
		}
		ores, err := db.Exec(
			"SELECT o_id, o_carrier_id FROM orders WHERE o_w_id = ? AND o_d_id = ? AND o_c_id = ? ORDER BY o_id DESC LIMIT 1",
			w, d, c)
		if err != nil {
			return core.ProcResult{}, err
		}
		if len(ores.Rows) == 0 {
			return core.ProcResult{Cols: []string{"o_id"}, Rows: nil}, nil
		}
		oid := ores.Rows[0][0]
		lres, err := db.Exec(
			"SELECT ol_i_id, ol_quantity, ol_amount FROM order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
			w, d, oid)
		if err != nil {
			return core.ProcResult{}, err
		}
		return core.ProcResult{Cols: lres.Cols, Rows: lres.Rows}, nil
	}
}

// deliveryProc: args = [w, carrier]. Delivers the oldest undelivered
// order of every district.
func deliveryProc(sc Scale) core.Procedure {
	return func(db *sqldb.DB, args []any) (core.ProcResult, error) {
		w, err := argInt(args, 0)
		if err != nil {
			return core.ProcResult{}, err
		}
		carrier, _ := argInt(args, 1)
		delivered := int64(0)
		for d := 1; d <= sc.DistrictsPerW; d++ {
			nres, err := db.Exec(
				"SELECT no_o_id FROM new_order WHERE no_w_id = ? AND no_d_id = ? ORDER BY no_o_id LIMIT 1", w, d)
			if err != nil {
				return core.ProcResult{}, err
			}
			if len(nres.Rows) == 0 {
				continue
			}
			oid := nres.Rows[0][0].(int64)
			if _, err := db.Exec("DELETE FROM new_order WHERE no_w_id = ? AND no_d_id = ? AND no_o_id = ?",
				w, d, oid); err != nil {
				return core.ProcResult{}, err
			}
			if _, err := db.Exec("UPDATE orders SET o_carrier_id = ? WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
				carrier, w, d, oid); err != nil {
				return core.ProcResult{}, err
			}
			ores, err := db.Exec("SELECT o_c_id FROM orders WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
				w, d, oid)
			if err != nil || len(ores.Rows) == 0 {
				return core.ProcResult{}, fmt.Errorf("delivery: order %d gone", oid)
			}
			cid := ores.Rows[0][0]
			sres, err := db.Exec(
				"SELECT SUM(ol_amount) FROM order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
				w, d, oid)
			if err != nil {
				return core.ProcResult{}, err
			}
			total, _ := sres.Rows[0][0].(float64)
			if _, err := db.Exec(
				"UPDATE customer SET c_balance = c_balance + ?, c_delivery_cnt = c_delivery_cnt + 1 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
				total, w, d, cid); err != nil {
				return core.ProcResult{}, err
			}
			delivered++
		}
		return core.ProcResult{Cols: []string{"delivered"}, Rows: [][]sqldb.Value{{delivered}}}, nil
	}
}

// stockLevelProc: args = [w, d, threshold]. Counts distinct recently
// ordered items whose stock is below the threshold.
func stockLevelProc() core.Procedure {
	return func(db *sqldb.DB, args []any) (core.ProcResult, error) {
		w, err := argInt(args, 0)
		if err != nil {
			return core.ProcResult{}, err
		}
		d, _ := argInt(args, 1)
		threshold, _ := argInt(args, 2)
		dres, err := db.Exec("SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?", w, d)
		if err != nil || len(dres.Rows) == 0 {
			return core.ProcResult{}, fmt.Errorf("stock_level district: %v", err)
		}
		next := dres.Rows[0][0].(int64)
		lres, err := db.Exec(
			"SELECT ol_i_id FROM order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id >= ? AND ol_o_id < ?",
			w, d, next-20, next)
		if err != nil {
			return core.ProcResult{}, err
		}
		seen := make(map[int64]bool)
		low := int64(0)
		for _, row := range lres.Rows {
			item := row[0].(int64)
			if seen[item] {
				continue
			}
			seen[item] = true
			sres, err := db.Exec("SELECT s_quantity FROM stock WHERE s_w_id = ? AND s_i_id = ?", w, item)
			if err != nil || len(sres.Rows) == 0 {
				continue
			}
			if sres.Rows[0][0].(int64) < threshold {
				low++
			}
		}
		return core.ProcResult{Cols: []string{"low_stock"}, Rows: [][]sqldb.Value{{low}}}, nil
	}
}
