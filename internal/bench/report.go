package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"shadowdb/internal/broadcast"
)

// Machine-readable benchmark output. Every experiment can emit a Report
// — a flat list of named metrics with units, stamped with the git commit
// and wall time — written as BENCH_<name>.json so CI and regression
// tooling can diff runs without scraping the human tables.

// Metric is one measured value.
type Metric struct {
	// Name is dotted and stable across runs ("fig8.compiled.c16.tput").
	Name string `json:"name"`
	// Value is the measurement.
	Value float64 `json:"value"`
	// Unit names the value's unit ("msg/s", "ms", "ns", "count", "s").
	Unit string `json:"unit"`
}

// Report is one experiment's machine-readable result set.
type Report struct {
	// Name is the experiment ("fig8", "spans", ...).
	Name string `json:"name"`
	// GitSHA is the commit the binary was built from ("" outside a repo).
	GitSHA string `json:"git_sha,omitempty"`
	// Timestamp is the run's wall time, RFC 3339.
	Timestamp string `json:"timestamp"`
	// Quick marks reduced-scale runs (not comparable to full runs).
	Quick bool `json:"quick,omitempty"`
	// Metrics are the measurements.
	Metrics []Metric `json:"metrics"`
}

// Add appends one metric.
func (r *Report) Add(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// NewReport creates a report stamped with the current commit and time.
func NewReport(name string, quick bool) *Report {
	return &Report{
		Name:      name,
		GitSHA:    GitSHA(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Quick:     quick,
	}
}

// GitSHA returns the working tree's HEAD commit, or "" when git or the
// repository is unavailable (deployed binaries, extracted tarballs).
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// WriteReport writes the report to dir/BENCH_<name>.json ("." when dir
// is empty) and returns the path.
func WriteReport(dir string, r *Report) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("bench: create report dir: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshal report %s: %w", r.Name, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("bench: write report: %w", err)
	}
	return path, nil
}

// ---------------------------------------------- per-experiment builders --

func modeName(m broadcast.Mode) string {
	switch m {
	case broadcast.Compiled:
		return "compiled"
	case broadcast.InterpretedOpt:
		return "interpreted_opt"
	case broadcast.Interpreted:
		return "interpreted"
	default:
		return fmt.Sprintf("mode%d", m)
	}
}

// ReportFig8 flattens the broadcast-mode sweep.
func ReportFig8(res Fig8Result, quick bool) *Report {
	r := NewReport("fig8", quick)
	for mode, curve := range res.Curves {
		mn := modeName(mode)
		for _, p := range curve {
			r.Add(fmt.Sprintf("fig8.%s.c%d.tput", mn, p.Clients), p.Throughput, "msg/s")
			r.Add(fmt.Sprintf("fig8.%s.c%d.mean_lat", mn, p.Clients), p.MeanLatMs, "ms")
		}
	}
	return r
}

// ReportFig9 flattens a latency/throughput sweep (fig9a or fig9b).
func ReportFig9(name string, res Fig9Result, quick bool) *Report {
	r := NewReport(name, quick)
	for _, series := range res.Order {
		key := strings.ToLower(strings.NewReplacer(" ", "_", "-", "_", "/", "_").Replace(series))
		for _, p := range res.Curves[series] {
			pre := fmt.Sprintf("%s.%s.c%d.", name, key, p.Clients)
			r.Add(pre+"tput", p.Throughput, "tx/s")
			r.Add(pre+"mean_lat", p.MeanLatMs, "ms")
			r.Add(pre+"p99_lat", p.P99LatMs, "ms")
			r.Add(pre+"aborts", float64(p.Aborts), "count")
		}
	}
	return r
}

// ReportFig10a flattens the recovery timeline.
func ReportFig10a(res Fig10aResult, quick bool) *Report {
	r := NewReport("fig10a", quick)
	r.Add("fig10a.crash_at", res.CrashAt.Seconds(), "s")
	r.Add("fig10a.suspected_at", res.SuspectedAt.Seconds(), "s")
	r.Add("fig10a.config_at", res.ConfigAt.Seconds(), "s")
	r.Add("fig10a.resumed_at", res.ResumedAt.Seconds(), "s")
	r.Add("fig10a.config_latency", res.ConfigLatency.Seconds(), "s")
	r.Add("fig10a.transfer_time", res.TransferTime.Seconds(), "s")
	r.Add("fig10a.committed", float64(res.Committed), "count")
	return r
}

// ReportFig10b flattens the state-transfer sweep.
func ReportFig10b(res Fig10bResult, quick bool) *Report {
	r := NewReport("fig10b", quick)
	for _, p := range res.Small {
		r.Add(fmt.Sprintf("fig10b.small.rows%d", p.Rows), p.Seconds, "s")
	}
	for _, p := range res.Large {
		r.Add(fmt.Sprintf("fig10b.large.rows%d", p.Rows), p.Seconds, "s")
	}
	if res.TPCCSec > 0 {
		r.Add("fig10b.tpcc_1wh", res.TPCCSec, "s")
	}
	return r
}

// ReportTable1 flattens the verification statistics.
func ReportTable1(rows []Table1Row, quick bool) *Report {
	r := NewReport("table1", quick)
	for _, row := range rows {
		key := strings.ToLower(strings.NewReplacer(" ", "_", "-", "_", "/", "_").Replace(row.Module))
		pre := "table1." + key + "."
		r.Add(pre+"spec_nodes", float64(row.SpecNodes), "count")
		r.Add(pre+"term_nodes", float64(row.TermNodes), "count")
		r.Add(pre+"opt_nodes", float64(row.OptNodes), "count")
		r.Add(pre+"props", float64(row.Props), "count")
		r.Add(pre+"auto", float64(row.Counts.Auto), "count")
		r.Add(pre+"manual", float64(row.Counts.Manual), "count")
	}
	return r
}

// ReportAblations flattens ablation rows.
func ReportAblations(rows []AblationResult, quick bool) *Report {
	r := NewReport("ablations", quick)
	for _, a := range rows {
		key := strings.ToLower(strings.NewReplacer(" ", "_", "-", "_", "/", "_").Replace(a.Name))
		r.Add("ablation."+key+".on", a.WithOn, a.Unit)
		r.Add("ablation."+key+".off", a.WithOff, a.Unit)
	}
	return r
}
