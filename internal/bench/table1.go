package bench

import (
	"fmt"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/gpm"
	"shadowdb/internal/interp"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
	"shadowdb/internal/verify"
)

// Table I: specification, verification and code-generation statistics for
// CLK, TwoThird Consensus, Paxos-Synod, and the Broadcast Service. The
// paper counts EventML/Nuprl AST nodes and Nuprl lemmas; here we count
// the live artifacts of this reproduction: class-AST nodes of each
// specification, term nodes of the generated GPM program before and after
// optimization, and the registered correctness properties split into
// automatically checked (A) and manually harnessed (M) — see DESIGN.md
// for the metric substitution.

// Table1Row is one module's statistics.
type Table1Row struct {
	Module    string
	SpecNodes int
	TermNodes int
	OptNodes  int
	Props     int
	Counts    verify.Counts
}

// String renders the row in the paper's layout.
func (r Table1Row) String() string {
	return fmt.Sprintf("%-20s %8dN %8dN %8dN %6d %8s",
		r.Module, r.SpecNodes, r.TermNodes, r.OptNodes, r.Props, r.Counts)
}

// Table1 computes the statistics from the live specifications.
func Table1() []Table1Row {
	specs := []loe.Spec{
		loe.ClkRing(3),
		twothird.Spec(twothird.Config{
			Nodes:    []msg.Loc{"n1", "n2", "n3"},
			Learners: []msg.Loc{"learner"},
		}),
		synod.Spec(synod.Config{
			Leaders:   []msg.Loc{"l1"},
			Acceptors: []msg.Loc{"a1", "a2", "a3"},
			Learners:  []msg.Loc{"learner"},
		}),
		broadcast.Spec(broadcast.Config{
			Nodes:       []msg.Loc{"b1", "b2", "b3"},
			Subscribers: []msg.Loc{"sub"},
		}),
	}
	names := map[string]string{
		"CLK":               "CLK",
		"TwoThird":          "TwoThird Consensus",
		"Paxos-Synod":       "Paxos-Synod",
		"Broadcast Service": "Broadcast Service",
	}
	suite := PropertySuite()
	counts := suite.CountByModule()
	propsPer := make(map[string]int)
	for _, p := range suite.Properties() {
		propsPer[p.Module]++
	}
	moduleOf := map[string]string{
		"CLK":               "CLK",
		"TwoThird":          "TwoThird",
		"Paxos-Synod":       "Paxos-Synod",
		"Broadcast Service": "Broadcast",
	}

	var rows []Table1Row
	for _, s := range specs {
		mod := moduleOf[s.Name]
		rows = append(rows, Table1Row{
			Module:    names[s.Name],
			SpecNodes: s.Nodes(),
			TermNodes: interp.Size(interp.CompileSpec(s)),
			OptNodes:  interp.Size(interp.OptimizeSpec(s)),
			Props:     propsPer[mod],
			Counts:    counts[mod],
		})
	}
	return rows
}

// PropertySuite assembles the full property registry of the repository:
// CLK plus the three protocol modules. Running it discharges every
// registered property.
func PropertySuite() *verify.Suite {
	var s verify.Suite
	s.Add(clkProperties()...)
	s.Add(twothird.Properties()...)
	s.Add(synod.Properties()...)
	s.Add(broadcast.Properties()...)
	return &s
}

// clkProperties checks the running example: the paper proved 1 lemma
// automatically and 3 manually for CLK.
func clkProperties() []verify.Property {
	return []verify.Property{
		{Module: "CLK", Name: "refinement/program-implements-spec", Mode: verify.Auto, Check: checkCLKRefinement},
		{Module: "CLK", Name: "inductive-characterization", Mode: verify.Auto, Check: checkCLKInductive},
		{Module: "CLK", Name: "clock-condition", Mode: verify.Manual, Check: checkCLKClockCondition},
		{Module: "CLK", Name: "progress/C1", Mode: verify.Manual, Check: checkCLKProgress},
	}
}

func clkTrace(hops int) ([]gpm.TraceEntry, loe.Spec, error) {
	spec := loe.ClkRing(3)
	r := gpm.NewRunner(spec.System())
	r.Inject(loe.RingLoc(0), msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0}))
	_, err := r.Run(hops)
	return r.Trace(), spec, err
}

func checkCLKRefinement() error {
	spec := loe.ClkRing(3)
	denote := func(trace []gpm.TraceEntry) [][]msg.Directive {
		den := loe.Denote(spec.Main, loe.FromTrace(trace))
		out := make([][]msg.Directive, len(den))
		for i, vals := range den {
			for _, v := range vals {
				out[i] = append(out[i], v.(msg.Directive))
			}
		}
		return out
	}
	inject := []verify.Injection{{To: loe.RingLoc(0), M: msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0})}}
	return verify.CheckRefinement(spec.System(), inject, 30, denote)
}

func clkClocks(trace []gpm.TraceEntry) ([]int, error) {
	den := loe.Denote(loe.ClkClock(), loe.FromTrace(trace))
	clocks := make([]int, len(den))
	for i, vals := range den {
		if len(vals) != 1 {
			return nil, fmt.Errorf("clock not single-valued at event %d", i)
		}
		clocks[i] = vals[0].(int)
	}
	return clocks, nil
}

func checkCLKInductive() error {
	trace, _, err := clkTrace(25)
	if err != nil {
		return err
	}
	den := loe.Denote(loe.ClkClock(), loe.FromTrace(trace))
	states := make([]any, len(den))
	for i, vals := range den {
		states[i] = vals[0]
	}
	char := verify.StateStep{
		Init: func(msg.Loc) any { return 0 },
		Step: func(_ msg.Loc, prev any, in msg.Msg) any {
			if in.Hdr != loe.ClkHeader {
				return prev
			}
			ts := in.Body.(loe.ClkBody).TS
			p := prev.(int)
			if ts > p {
				return ts + 1
			}
			return p + 1
		},
	}
	return verify.CheckInductive(trace, states, char)
}

func checkCLKClockCondition() error {
	trace, _, err := clkTrace(30)
	if err != nil {
		return err
	}
	eo := loe.FromTrace(trace)
	clocks, err := clkClocks(trace)
	if err != nil {
		return err
	}
	for i := range eo.Events {
		for j := range eo.Events {
			if eo.HappensBefore(i, j) && clocks[i] >= clocks[j] {
				return fmt.Errorf("clock condition violated: e%d -> e%d with LC %d >= %d",
					i, j, clocks[i], clocks[j])
			}
		}
	}
	return nil
}

func checkCLKProgress() error {
	trace, _, err := clkTrace(30)
	if err != nil {
		return err
	}
	clocks, err := clkClocks(trace)
	if err != nil {
		return err
	}
	last := make(map[msg.Loc]int)
	for i, e := range trace {
		if prev, seen := last[e.Loc]; seen && clocks[i] <= prev {
			return fmt.Errorf("C1 violated at %s: %d after %d", e.Loc, clocks[i], prev)
		}
		last[e.Loc] = clocks[i]
	}
	return nil
}
