package bench

import (
	"fmt"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/des"
	"shadowdb/internal/msg"
)

// Fig. 8: "The performance of the broadcast service with Paxos." Clients
// broadcast 140-byte messages and wait for their delivery notification;
// the three curves are the interpreted, interpreted-optimized, and
// compiled (Lisp) services. We report mean delivery latency against
// delivered messages per second for 1..43 clients.

// Fig8Point is one measurement.
type Fig8Point struct {
	Clients    int
	Throughput float64
	MeanLatMs  float64
}

// Fig8Result maps each execution mode to its curve.
type Fig8Result struct {
	Costs  BcastCosts
	Curves map[broadcast.Mode][]Fig8Point
}

// Fig8Config scales the experiment.
type Fig8Config struct {
	Clients []int
	MsgsPer int
}

// DefaultFig8 is the paper's sweep (1 to 43 clients).
func DefaultFig8() Fig8Config {
	return Fig8Config{Clients: []int{1, 2, 4, 8, 16, 24, 32, 43}, MsgsPer: 200}
}

// QuickFig8 keeps tests fast.
func QuickFig8() Fig8Config {
	return Fig8Config{Clients: []int{1, 4, 16}, MsgsPer: 40}
}

// Fig8 runs the experiment.
func Fig8(cfg Fig8Config) Fig8Result {
	res := Fig8Result{Costs: Calibrate(), Curves: make(map[broadcast.Mode][]Fig8Point)}
	for _, mode := range []broadcast.Mode{broadcast.Interpreted, broadcast.InterpretedOpt, broadcast.Compiled} {
		for _, n := range cfg.Clients {
			res.Curves[mode] = append(res.Curves[mode], fig8Run(mode, n, cfg.MsgsPer, res.Costs))
		}
	}
	return res
}

func fig8Run(mode broadcast.Mode, clients, msgsPer int, costs BcastCosts) Fig8Point {
	sim := &des.Sim{}
	clu := des.NewCluster(sim)
	clu.Link = lanLink
	clu.SizeOf = wireSize

	nodes := []msg.Loc{"b1", "b2", "b3"}
	var subs []msg.Loc
	for i := 0; i < clients; i++ {
		subs = append(subs, msg.Loc(fmt.Sprintf("client%d", i)))
	}
	bcfg := broadcast.Config{Nodes: nodes, Subscribers: subs}
	gen := broadcast.Spec(bcfg).Generator()
	per := costs.PerMsg[mode]
	for _, b := range nodes {
		proc := gen(b)
		clu.AddCostedNode(b, 1, func(env des.Envelope) ([]msg.Directive, time.Duration) {
			next, outs := proc.Step(env.M)
			proc = next
			return outs, bcastCost(per, env.M)
		})
	}

	var lat des.LatencyRecorder
	delivered := 0
	var lastDone time.Duration
	for i := 0; i < clients; i++ {
		loc := subs[i]
		home := nodes[i%len(nodes)]
		seq := int64(0)
		sent := 0
		var started time.Duration
		submit := func() []msg.Directive {
			seq++
			sent++
			started = sim.Now()
			return []msg.Directive{msg.Send(home, msg.M(broadcast.HdrBcast, broadcast.Bcast{
				From: loc, Seq: seq, Payload: pad140(),
			}))}
		}
		clu.AddNode(loc, 1, nil, func(env des.Envelope) []msg.Directive {
			d, ok := env.M.Body.(broadcast.Deliver)
			if !ok {
				return nil
			}
			mine := false
			for _, b := range d.Msgs {
				if b.From == loc && b.Seq == seq {
					mine = true
				}
			}
			if !mine {
				return nil
			}
			// First notification wins; later copies carry older seqs.
			lat.Add(sim.Now() - started)
			delivered++
			lastDone = sim.Now()
			if sent >= msgsPer {
				return nil
			}
			return submit()
		})
		sim.After(0, func() {
			for _, d := range submit() {
				clu.Send(loc, d.Dest, d.M)
			}
		})
	}
	total := clients * msgsPer
	for delivered < total && !sim.Idle() && sim.Steps() < 50_000_000 {
		sim.Run(0, 100_000)
	}
	if lastDone <= 0 {
		lastDone = time.Second
	}
	return Fig8Point{
		Clients:    clients,
		Throughput: des.Throughput(delivered, lastDone),
		MeanLatMs:  float64(lat.Mean()) / float64(time.Millisecond),
	}
}
