package bench

import (
	"os"
	"testing"
)

// The quick recovery run must certify: kill + torn-tail restart of a
// durable replica, local WAL recovery, delta catch-up, clean checker,
// and converged replicas.
func TestRecoveryQuickCertifies(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery experiment is seconds of virtual load")
	}
	cfg := QuickRecovery()
	cfg.DataDir = t.TempDir()
	res := Recovery(cfg)
	RenderRecovery(os.Stderr, res)
	if len(res.Violations) > 0 {
		t.Fatalf("online checker flagged %d violations: %v", len(res.Violations), res.Violations[0])
	}
	if !res.Certified() {
		t.Fatalf("recovery run not certified: %+v", res)
	}
	if res.SlotsBehind <= 0 {
		t.Errorf("victim woke %d slots behind, want a real downtime gap", res.SlotsBehind)
	}
}
