package bench

import (
	"fmt"
	"io"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/des"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
)

// The batching ablation: the paper's Fig. 8 numbers are measured "with
// batching enabled" (Section IV-B), so this experiment isolates what
// batching buys. The same 3-node compiled broadcast service runs under
// the same closed-loop client load at several MaxBatch settings with the
// pipeline window held constant; the online invariant checker watches
// every run, so the speedup is certified not to come at the expense of
// total order. See DESIGN.md §8 for the performance model.

// BatchPoint is one measurement at one MaxBatch setting.
type BatchPoint struct {
	Batch      int     // MaxBatch (1 = unbatched baseline)
	Throughput float64 // delivered client messages per second
	MeanLatMs  float64 // mean submit-to-deliver latency
	MeanBatch  float64 // delivered messages per decided slot
	Slots      int     // decided slots consumed
}

// BatchResult is the full sweep plus the online checker's verdict.
type BatchResult struct {
	Costs      BcastCosts
	Pipeline   int
	DelayMs    float64
	Points     []BatchPoint
	Events     int64
	Violations []dist.Violation
}

// Speedup is the throughput ratio of the best batch≥16 point over the
// batch=1 baseline (0 when the sweep lacks either).
func (r BatchResult) Speedup() float64 {
	var base, best float64
	for _, p := range r.Points {
		if p.Batch == 1 && p.Throughput > base {
			base = p.Throughput
		}
		if p.Batch >= 16 && p.Throughput > best {
			best = p.Throughput
		}
	}
	if base == 0 {
		return 0
	}
	return best / base
}

// BatchConfig scales the experiment.
type BatchConfig struct {
	Batches  []int // MaxBatch sweep; include 1 for the baseline
	Clients  int
	MsgsPer  int
	Pipeline int
	Delay    time.Duration // MaxDelay (adaptive cut bound)
	RingSize int
}

// DefaultBatch is the standard sweep.
func DefaultBatch() BatchConfig {
	return BatchConfig{
		Batches: []int{1, 4, 16, 64}, Clients: 32, MsgsPer: 100,
		Pipeline: 4, Delay: time.Millisecond, RingSize: 1 << 16,
	}
}

// QuickBatch keeps tests fast.
func QuickBatch() BatchConfig {
	return BatchConfig{
		Batches: []int{1, 16}, Clients: 16, MsgsPer: 30,
		Pipeline: 4, Delay: time.Millisecond, RingSize: 1 << 14,
	}
}

// Batch runs the sweep.
func Batch(cfg BatchConfig) BatchResult {
	res := BatchResult{
		Costs:    Calibrate(),
		Pipeline: cfg.Pipeline,
		DelayMs:  float64(cfg.Delay) / float64(time.Millisecond),
	}
	for _, b := range cfg.Batches {
		p, events, violations := batchRun(cfg, b, res.Costs)
		res.Points = append(res.Points, p)
		res.Events += events
		res.Violations = append(res.Violations, violations...)
	}
	return res
}

// batchRun measures one MaxBatch setting on the compiled service with
// the online checker attached.
func batchRun(cfg BatchConfig, maxBatch int, costs BcastCosts) (BatchPoint, int64, []dist.Violation) {
	sim := &des.Sim{}
	clu := des.NewCluster(sim)
	clu.Link = lanLink
	clu.SizeOf = wireSize

	nodes := []msg.Loc{"b1", "b2", "b3"}
	var subs []msg.Loc
	for i := 0; i < cfg.Clients; i++ {
		subs = append(subs, msg.Loc(fmt.Sprintf("client%d", i)))
	}
	bcfg := broadcast.Config{
		Nodes: nodes, Subscribers: subs,
		MaxBatch: maxBatch, MaxDelay: cfg.Delay, Pipeline: cfg.Pipeline,
	}
	gen := broadcast.Spec(bcfg).Generator()
	per := costs.PerMsg[broadcast.Compiled]
	for _, b := range nodes {
		proc := gen(b)
		clu.AddCostedNode(b, 1, func(env des.Envelope) ([]msg.Directive, time.Duration) {
			next, outs := proc.Step(env.M)
			proc = next
			return outs, bcastCost(per, env.M)
		})
	}

	o := obs.New(cfg.RingSize)
	clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.Watch(o)

	var lat des.LatencyRecorder
	delivered := 0
	var lastDone time.Duration
	// Slot accounting for the mean delivered batch size (the DES is
	// single-threaded, so shared closure state is safe).
	slotSeen := make(map[int]bool)
	slotMsgs := 0
	for i := 0; i < cfg.Clients; i++ {
		loc := subs[i]
		home := nodes[i%len(nodes)]
		seq := int64(0)
		sent := 0
		var started time.Duration
		submit := func() []msg.Directive {
			seq++
			sent++
			started = sim.Now()
			return []msg.Directive{msg.Send(home, msg.M(broadcast.HdrBcast, broadcast.Bcast{
				From: loc, Seq: seq, Payload: pad140(),
			}))}
		}
		clu.AddNode(loc, 1, nil, func(env des.Envelope) []msg.Directive {
			d, ok := env.M.Body.(broadcast.Deliver)
			if !ok {
				return nil
			}
			if !slotSeen[d.Slot] {
				slotSeen[d.Slot] = true
				slotMsgs += len(d.Msgs)
			}
			mine := false
			for _, b := range d.Msgs {
				if b.From == loc && b.Seq == seq {
					mine = true
				}
			}
			if !mine {
				return nil
			}
			lat.Add(sim.Now() - started)
			delivered++
			lastDone = sim.Now()
			if sent >= cfg.MsgsPer {
				return nil
			}
			return submit()
		})
		sim.After(0, func() {
			for _, d := range submit() {
				clu.Send(loc, d.Dest, d.M)
			}
		})
	}
	total := cfg.Clients * cfg.MsgsPer
	for delivered < total && !sim.Idle() && sim.Steps() < 50_000_000 {
		sim.Run(0, 100_000)
	}
	if lastDone <= 0 {
		lastDone = time.Second
	}
	p := BatchPoint{
		Batch:      maxBatch,
		Throughput: des.Throughput(delivered, lastDone),
		MeanLatMs:  float64(lat.Mean()) / float64(time.Millisecond),
		Slots:      len(slotSeen),
	}
	if len(slotSeen) > 0 {
		p.MeanBatch = float64(slotMsgs) / float64(len(slotSeen))
	}
	return p, checker.Status().Events, checker.Violations()
}

// ReportBatch flattens the sweep for BENCH_batch.json.
func ReportBatch(res BatchResult, quick bool) *Report {
	r := NewReport("batch", quick)
	r.Add("batch.pipeline", float64(res.Pipeline), "count")
	r.Add("batch.delay_ms", res.DelayMs, "ms")
	for _, p := range res.Points {
		k := fmt.Sprintf("batch.b%d.", p.Batch)
		r.Add(k+"throughput", p.Throughput, "msg/s")
		r.Add(k+"latency_ms", p.MeanLatMs, "ms")
		r.Add(k+"mean_batch", p.MeanBatch, "msg/slot")
		r.Add(k+"slots", float64(p.Slots), "count")
	}
	r.Add("batch.speedup", res.Speedup(), "x")
	r.Add("batch.checker.events", float64(res.Events), "count")
	r.Add("batch.checker.violations", float64(len(res.Violations)), "count")
	return r
}

// RenderBatch prints the human-readable table.
func RenderBatch(w io.Writer, res BatchResult) {
	fmt.Fprintf(w, "Batching ablation — 3-node compiled broadcast service (pipeline=%d, max delay %.1f ms)\n",
		res.Pipeline, res.DelayMs)
	fmt.Fprintf(w, "  %-8s %12s %12s %12s %8s\n", "batch", "msg/s", "latency", "msgs/slot", "slots")
	for _, p := range res.Points {
		fmt.Fprintf(w, "  %-8d %12.0f %9.2f ms %12.1f %8d\n",
			p.Batch, p.Throughput, p.MeanLatMs, p.MeanBatch, p.Slots)
	}
	fmt.Fprintf(w, "  speedup (batch>=16 vs batch=1): %.2fx\n", res.Speedup())
	fmt.Fprintf(w, "  checker: %d events, %d violations\n", res.Events, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  VIOLATION: %v\n", v)
	}
}
