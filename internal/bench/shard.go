package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/fault"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/shard"
	"shadowdb/internal/sqldb"
)

// The shard experiment certifies the sharded deployment three ways:
//
//  1. Scaling: a zipfian hot-key, single-shard workload swept over shard
//     counts {1,2,4,8}. Each point runs with the online checker attached
//     (group-keyed per shard) and must be violation-free; 4 shards must
//     deliver ≥3× the 1-shard throughput.
//  2. Cross-shard: a mixed workload (deposits + transfers, some of which
//     land on two shards) on 2 shards. Besides zero violations the run
//     must drain clean — no open prepare anywhere, nothing in flight at
//     the router — and the books must balance: summing every account's
//     balance on its owning shard equals the seed money plus the
//     committed deposits (a half-applied transfer would break the sum).
//  3. Chaos: the same mixed workload while one whole shard is cut off
//     mid-2PC (fault.Isolate) and later healed. Certification again
//     demands zero violations, a clean drain, balanced books, and
//     post-heal progress — i.e. no transaction is left half-applied by
//     the partition.

// ShardConfig scales the experiment.
type ShardConfig struct {
	// Counts are the swept shard counts (phase 1).
	Counts []int
	// Rows is the bank size; Clients the closed-loop fleet per sweep
	// point; TxPer the per-client transaction quota. The fleet must be
	// large enough to saturate one shard several times over, or the
	// sweep measures the clients instead of the shards.
	Rows    int
	Clients int
	TxPer   int
	// MixedClients/MixedTxPer scale phases 2 and 3 (the cross-shard
	// phases certify protocol properties, not throughput, so they can
	// run a smaller fleet).
	MixedClients int
	MixedTxPer   int
	// CrossFrac is the fraction of transfers in the mixed workload
	// (phases 2 and 3); the rest are zipfian deposits.
	CrossFrac float64
	// MixedShards is the shard count of phases 2 and 3.
	MixedShards int
	// Batch/BatchDelay/Pipeline tune each shard's broadcast hot path.
	Batch      int
	BatchDelay time.Duration
	Pipeline   int
	// Retry is the 2PC coordinator's retransmission period.
	Retry time.Duration
	// PartitionFrom/To bound the phase-3 shard isolation window.
	PartitionFrom time.Duration
	PartitionTo   time.Duration
	// RingSize sizes the trace ring behind the checker.
	RingSize int
	// FlightDir, when non-empty, arms per-node flight recorders in the
	// cross-shard phases that dump postmortem bundles under it (one
	// subdirectory per phase) on any checker violation and at the end
	// of an uncertified phase.
	FlightDir string
}

// DefaultShard is the standard scale.
func DefaultShard() ShardConfig {
	return ShardConfig{
		Counts: []int{1, 2, 4, 8},
		Rows:   4096, Clients: 320, TxPer: 100,
		MixedClients: 32, MixedTxPer: 150,
		CrossFrac: 0.10, MixedShards: 2,
		Batch: 16, BatchDelay: time.Millisecond, Pipeline: 4,
		Retry:         400 * time.Millisecond,
		PartitionFrom: 1 * time.Second, PartitionTo: 4 * time.Second,
		RingSize: 1 << 16,
	}
}

// QuickShard keeps tests fast.
func QuickShard() ShardConfig {
	return ShardConfig{
		Counts: []int{1, 2, 4},
		Rows:   512, Clients: 256, TxPer: 16,
		MixedClients: 16, MixedTxPer: 40,
		CrossFrac: 0.15, MixedShards: 2,
		Batch: 16, BatchDelay: time.Millisecond, Pipeline: 4,
		Retry:         250 * time.Millisecond,
		PartitionFrom: 500 * time.Millisecond, PartitionTo: 1500 * time.Millisecond,
		RingSize: 1 << 14,
	}
}

// routerOverhead is the modeled service time of one router step: key
// hashing plus a map touch and one encode — far off the sequencer's
// critical path, so the router only becomes the bottleneck two orders
// of magnitude past a shard's capacity.
const routerOverhead = 10 * time.Microsecond

// shardCluster is a simulated sharded deployment: per shard a 3-node
// broadcast service (compiled-mode cost) with 2 subscriber replicas,
// fronted by one router.
type shardCluster struct {
	sim      *des.Sim
	clu      *des.Cluster
	part     shard.Partitioner
	router   *shard.Router
	bloc     [][]msg.Loc // per shard
	rloc     [][]msg.Loc
	replicas map[msg.Loc]*shard.Replica
	allLocs  []msg.Loc
}

// newShardCluster builds an n-shard deployment. Every shard's replicas
// run h2 in-memory databases seeded with the full bank (unowned rows
// are simply never touched — placement decides which shard mutates an
// account).
func newShardCluster(n int, cfg ShardConfig) *shardCluster {
	sc := &shardCluster{
		sim:      &des.Sim{},
		part:     shard.NewHash(n),
		replicas: make(map[msg.Loc]*shard.Replica),
	}
	sc.clu = des.NewCluster(sc.sim)
	sc.clu.Link = lanLink
	sc.clu.SizeOf = wireSize
	costs := Calibrate()
	per := costs.PerMsg[broadcast.Compiled]
	reg := core.BankRegistry()

	for k := 0; k < n; k++ {
		bloc := []msg.Loc{shard.BcastLoc(k, 0), shard.BcastLoc(k, 1), shard.BcastLoc(k, 2)}
		rloc := []msg.Loc{shard.ReplicaLoc(k, 0), shard.ReplicaLoc(k, 1)}
		sc.bloc = append(sc.bloc, bloc)
		sc.rloc = append(sc.rloc, rloc)
		sc.allLocs = append(sc.allLocs, bloc...)
		sc.allLocs = append(sc.allLocs, rloc...)

		bcfg := broadcast.Config{
			Nodes: bloc,
			LocalSubscribers: map[msg.Loc][]msg.Loc{
				bloc[0]: {rloc[0]},
				bloc[1]: {rloc[1]},
			},
			MaxBatch: cfg.Batch,
			MaxDelay: cfg.BatchDelay,
			Pipeline: cfg.Pipeline,
		}
		gen := broadcast.Spec(bcfg).Generator()
		for _, b := range bloc {
			proc := gen(b)
			sc.clu.AddCostedNode(b, 1, func(env des.Envelope) ([]msg.Directive, time.Duration) {
				next, outs := proc.Step(env.M)
				proc = next
				return outs, bcastCost(per, env.M)
			})
		}
		for i, l := range rloc {
			db, err := sqldb.Open("h2:mem:" + string(l))
			if err != nil {
				panic(err)
			}
			if err := core.BankSetup(db, cfg.Rows); err != nil {
				panic(err)
			}
			r := shard.NewReplica(l, k, db, reg, shard.Bank())
			sc.replicas[l] = r
			sc.clu.AddCostedProcess(l, 1, r, func() time.Duration {
				return r.LastCost() + replicaOverhead
			})
			_ = i
		}
	}

	rt, err := shard.NewRouter(shard.Config{
		Slf: shard.RouterLoc, Part: sc.part, App: shard.Bank(),
		Shards: sc.bloc, Retry: cfg.Retry,
	})
	if err != nil {
		panic(err)
	}
	sc.router = rt
	sc.allLocs = append(sc.allLocs, shard.RouterLoc)
	sc.clu.AddCostedProcess(shard.RouterLoc, 1, rt, func() time.Duration {
		return routerOverhead
	})
	return sc
}

// shardStats extends loadStats with per-type commit counts (the
// conservation check needs to know how much money deposits minted).
type shardStats struct {
	loadStats
	depositCommits  int64
	transferCommits int64
	transferAborts  int64
}

// shardClients attaches closed-loop clients that submit through the
// router and attribute each outcome to the submitted transaction type.
func shardClients(clu *des.Cluster, stats *shardStats, cfg ShardConfig, n, txPer int,
	retry time.Duration, mkWork func(i int) Workload) {
	for i := 0; i < n; i++ {
		loc := msg.Loc(fmt.Sprintf("client%d", i))
		cli := &core.Client{
			Slf: loc, Mode: core.ModePBR,
			Replicas: []msg.Loc{shard.RouterLoc}, Retry: retry,
		}
		work := mkWork(i)
		remaining := txPer
		var started time.Duration
		var lastType string
		sim := clu.Sim
		submit := func() []msg.Directive {
			typ, args := work()
			lastType = typ
			started = sim.Now()
			return cli.Submit(typ, args)
		}
		clu.AddNode(loc, 1, nil, func(env des.Envelope) []msg.Directive {
			res, outs := cli.Handle(env.M)
			if res == nil {
				return outs
			}
			stats.lat.Add(sim.Now() - started)
			stats.lastDone = sim.Now()
			if res.Aborted || res.Err != "" {
				stats.aborted++
				if lastType == "transfer" {
					stats.transferAborts++
				}
			} else {
				stats.commit(sim.Now())
				switch lastType {
				case "deposit":
					stats.depositCommits++
				case "transfer":
					stats.transferCommits++
				}
			}
			remaining--
			if remaining <= 0 {
				stats.finished++
				return outs
			}
			return append(outs, submit()...)
		})
		sim.After(0, func() {
			for _, d := range submit() {
				clu.SendAfter(d.Delay, loc, d.Dest, d.M)
			}
		})
	}
	_ = cfg
}

// mixedWorkload interleaves zipfian deposits with transfers between two
// uniformly random distinct accounts (amounts 1..10). With a hash
// partitioner over ≥2 shards roughly half the transfers land on two
// shards and exercise 2PC; the rest take the single-shard fast path.
func mixedWorkload(rows int, crossFrac float64, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 16, uint64(rows-1))
	return func() (string, []any) {
		if rng.Float64() < crossFrac {
			from := int64(rng.Intn(rows))
			to := int64(rng.Intn(rows))
			for to == from {
				to = int64(rng.Intn(rows))
			}
			return "transfer", []any{from, to, int64(1 + rng.Intn(10))}
		}
		return "deposit", []any{int64(zipf.Uint64()), int64(1)}
	}
}

// ShardPoint is one scaling-sweep measurement.
type ShardPoint struct {
	Shards     int
	Throughput float64
	MeanLatMs  float64
	P99LatMs   float64
	Violations int
}

// ShardResult is the certified outcome of all three phases.
type ShardResult struct {
	// Sweep holds phase 1's per-shard-count points; Speedup4 is
	// throughput(4 shards) / throughput(1 shard) when both were measured.
	Sweep    []ShardPoint
	Speedup4 float64
	// Phase 2 (mixed workload on MixedShards shards).
	MixedShards     int
	MixedCommitted  int64
	TransferCommits int64
	TransferAborts  int64
	CrossDecided    int
	MixedOpen       int
	MixedInFlight   int
	MixedBalanced   bool
	MixedReplicasEq bool
	MixedViolations []dist.Violation
	// Phase 3 (shard 1 isolated mid-2PC, healed, drained).
	ChaosCommitted   int64
	ChaosFinished    int
	ChaosClients     int
	ChaosOpen        int
	ChaosInFlight    int
	ChaosBalanced    bool
	ChaosProgress    bool
	ChaosInjections  int
	ChaosViolations  []dist.Violation
	ChaosTransferOK  int64
	ChaosTransferAbt int64
}

// Certified reports whether the run meets the acceptance bar: zero
// violations everywhere, ≥3× scaling at 4 shards, clean drains, and
// balanced books in both cross-shard phases.
func (r ShardResult) Certified() bool {
	for _, p := range r.Sweep {
		if p.Violations > 0 {
			return false
		}
	}
	if r.Speedup4 > 0 && r.Speedup4 < 3 {
		return false
	}
	if len(r.MixedViolations) > 0 || !r.MixedBalanced || !r.MixedReplicasEq ||
		r.MixedOpen != 0 || r.MixedInFlight != 0 {
		return false
	}
	if len(r.ChaosViolations) > 0 || !r.ChaosBalanced ||
		r.ChaosOpen != 0 || r.ChaosInFlight != 0 ||
		!r.ChaosProgress || r.ChaosFinished != r.ChaosClients {
		return false
	}
	return true
}

// Shard runs all three phases.
func Shard(cfg ShardConfig) ShardResult {
	var res ShardResult
	byCount := make(map[int]float64)
	for _, n := range cfg.Counts {
		p := shardSweepPoint(n, cfg)
		res.Sweep = append(res.Sweep, p)
		byCount[n] = p.Throughput
	}
	if t1, ok := byCount[1]; ok && t1 > 0 {
		if t4, ok := byCount[4]; ok {
			res.Speedup4 = t4 / t1
		}
	}
	shardMixed(cfg, &res)
	shardChaos(cfg, &res)
	return res
}

// shardSweepPoint runs the single-shard-traffic workload on n shards
// with the checker attached.
func shardSweepPoint(n int, cfg ShardConfig) ShardPoint {
	sc := newShardCluster(n, cfg)
	o := obs.New(cfg.RingSize)
	sc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.SetGroupOf(shard.GroupOf)
	checker.Watch(o)

	stats := &shardStats{}
	work := func(i int) Workload { return ZipfWorkload(cfg.Rows, int64(i)*7919+1) }
	shardClients(sc.clu, stats, cfg, cfg.Clients, cfg.TxPer, 2*time.Second, work)
	runToFinish(sc.sim, &stats.loadStats, cfg.Clients)

	cp := stats.point(cfg.Clients)
	return ShardPoint{
		Shards: n, Throughput: cp.Throughput,
		MeanLatMs: cp.MeanLatMs, P99LatMs: cp.P99LatMs,
		Violations: len(checker.Violations()),
	}
}

// shardDrain lets retransmission timers and stragglers play out after
// the client fleet finished, so "nothing in flight" is a statement
// about the protocol, not about when we stopped looking.
func shardDrain(sc *shardCluster, grace time.Duration) {
	deadline := sc.sim.Now() + grace
	for sc.sim.Now() < deadline && !sc.sim.Idle() {
		sc.sim.Run(deadline, 1_000_000)
	}
}

// balanced sums every account's balance on its owning shard and checks
// the books: seed money plus committed deposits (transfers move money,
// deposits mint one unit each). A transfer applied on one shard but not
// the other would break this sum.
func balanced(sc *shardCluster, rows int, depositCommits int64) bool {
	var total int64
	for id := 0; id < rows; id++ {
		k := sc.part.Shard(shard.BankKey(int64(id)))
		db := sc.replicas[sc.rloc[k][0]].DB()
		res, err := db.Exec("SELECT balance FROM accounts WHERE id = ?", id)
		if err != nil || len(res.Rows) == 0 {
			return false
		}
		switch v := res.Rows[0][0].(type) {
		case int64:
			total += v
		case int:
			total += int64(v)
		case float64:
			total += int64(v)
		default:
			return false
		}
	}
	return total == int64(rows)*1000+depositCommits
}

// replicasEqual checks state parity inside every shard.
func replicasEqual(sc *shardCluster) bool {
	for k := range sc.rloc {
		a := sc.replicas[sc.rloc[k][0]].DB()
		b := sc.replicas[sc.rloc[k][1]].DB()
		if !sqldb.Equal(a, b) {
			return false
		}
	}
	return true
}

// openPrepares sums OpenPrepares across all replicas.
func openPrepares(sc *shardCluster) int {
	n := 0
	for _, r := range sc.replicas {
		n += r.OpenPrepares()
	}
	return n
}

// shardMixed is phase 2: the mixed workload on MixedShards shards.
func shardMixed(cfg ShardConfig, res *ShardResult) {
	sc := newShardCluster(cfg.MixedShards, cfg)
	o := obs.New(cfg.RingSize)
	sc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.SetGroupOf(shard.GroupOf)
	checker.Watch(o)
	dumpFlight := flightFleet(flightSubdir(cfg.FlightDir, "mixed"), "shard-mixed",
		o, checker, sc.allLocs)

	stats := &shardStats{}
	work := func(i int) Workload { return mixedWorkload(cfg.Rows, cfg.CrossFrac, int64(i)*104729+3) }
	shardClients(sc.clu, stats, cfg, cfg.MixedClients, cfg.MixedTxPer, time.Second, work)
	runToFinish(sc.sim, &stats.loadStats, cfg.MixedClients)
	shardDrain(sc, 2*cfg.Retry+time.Second)

	res.MixedShards = cfg.MixedShards
	res.MixedCommitted = stats.committed
	res.TransferCommits = stats.transferCommits
	res.TransferAborts = stats.transferAborts
	res.CrossDecided = checker.Status().CrossShard
	res.MixedOpen = len(checker.OpenCrossShard()) + openPrepares(sc)
	res.MixedInFlight = sc.router.InFlight()
	res.MixedBalanced = balanced(sc, cfg.Rows, stats.depositCommits)
	res.MixedReplicasEq = replicasEqual(sc)
	res.MixedViolations = checker.Violations()
	if len(res.MixedViolations) > 0 || !res.MixedBalanced || !res.MixedReplicasEq ||
		res.MixedOpen != 0 || res.MixedInFlight != 0 {
		dumpFlight("uncertified")
	}
}

// shardChaos is phase 3: the mixed workload while shard 1 is isolated
// (its broadcast nodes and replicas keep intra-shard connectivity but
// lose the router, the clients, and shard 0) mid-run, then healed.
func shardChaos(cfg ShardConfig, res *ShardResult) {
	sc := newShardCluster(cfg.MixedShards, cfg)
	o := obs.New(cfg.RingSize)
	sc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.SetGroupOf(shard.GroupOf)
	checker.Watch(o)
	dumpFlight := flightFleet(flightSubdir(cfg.FlightDir, "chaos"), "shard-chaos",
		o, checker, sc.allLocs)

	island := append(append([]msg.Loc{}, sc.bloc[1]...), sc.rloc[1]...)
	plan := fault.Plan{
		Seed: 11,
		Partitions: []fault.Partition{fault.Isolate(
			fault.Duration(cfg.PartitionFrom), fault.Duration(cfg.PartitionTo),
			island, sc.allLocs)},
	}
	inj := fault.BindCluster(sc.clu, plan)
	inj.SetObs(o)

	stats := &shardStats{}
	work := func(i int) Workload { return mixedWorkload(cfg.Rows, cfg.CrossFrac, int64(i)*92821+5) }
	shardClients(sc.clu, stats, cfg, cfg.MixedClients, cfg.MixedTxPer, 500*time.Millisecond, work)

	// Run past the heal, then until the fleet finishes or the bound trips.
	healCommitted := int64(-1)
	sc.sim.After(cfg.PartitionTo, func() { healCommitted = stats.committed })
	runToFinish(sc.sim, &stats.loadStats, cfg.MixedClients)
	shardDrain(sc, 2*cfg.Retry+time.Second)

	res.ChaosCommitted = stats.committed
	res.ChaosFinished = stats.finished
	res.ChaosClients = cfg.MixedClients
	res.ChaosOpen = len(checker.OpenCrossShard()) + openPrepares(sc)
	res.ChaosInFlight = sc.router.InFlight()
	res.ChaosBalanced = balanced(sc, cfg.Rows, stats.depositCommits)
	res.ChaosProgress = healCommitted >= 0 && stats.committed > healCommitted
	res.ChaosInjections = len(inj.Injections())
	res.ChaosViolations = checker.Violations()
	res.ChaosTransferOK = stats.transferCommits
	res.ChaosTransferAbt = stats.transferAborts
	if len(res.ChaosViolations) > 0 || !res.ChaosBalanced || !res.ChaosProgress ||
		res.ChaosOpen != 0 || res.ChaosInFlight != 0 ||
		res.ChaosFinished != res.ChaosClients {
		dumpFlight("uncertified")
	}
}

// ReportShard flattens the experiment for BENCH_shard.json.
func ReportShard(res ShardResult, quick bool) *Report {
	r := NewReport("shard", quick)
	for _, p := range res.Sweep {
		pre := fmt.Sprintf("shard.sweep.s%d.", p.Shards)
		r.Add(pre+"tput", p.Throughput, "tx/s")
		r.Add(pre+"mean_lat", p.MeanLatMs, "ms")
		r.Add(pre+"p99_lat", p.P99LatMs, "ms")
		r.Add(pre+"violations", float64(p.Violations), "count")
	}
	r.Add("shard.speedup_4v1", res.Speedup4, "ratio")
	r.Add("shard.mixed.shards", float64(res.MixedShards), "count")
	r.Add("shard.mixed.committed", float64(res.MixedCommitted), "count")
	r.Add("shard.mixed.transfers_committed", float64(res.TransferCommits), "count")
	r.Add("shard.mixed.transfers_aborted", float64(res.TransferAborts), "count")
	r.Add("shard.mixed.cross_decided", float64(res.CrossDecided), "count")
	r.Add("shard.mixed.open_after_drain", float64(res.MixedOpen), "count")
	r.Add("shard.mixed.router_in_flight", float64(res.MixedInFlight), "count")
	r.Add("shard.mixed.balanced", b2f(res.MixedBalanced), "bool")
	r.Add("shard.mixed.replicas_equal", b2f(res.MixedReplicasEq), "bool")
	r.Add("shard.mixed.violations", float64(len(res.MixedViolations)), "count")
	r.Add("shard.chaos.committed", float64(res.ChaosCommitted), "count")
	r.Add("shard.chaos.finished", float64(res.ChaosFinished), "count")
	r.Add("shard.chaos.open_after_drain", float64(res.ChaosOpen), "count")
	r.Add("shard.chaos.router_in_flight", float64(res.ChaosInFlight), "count")
	r.Add("shard.chaos.balanced", b2f(res.ChaosBalanced), "bool")
	r.Add("shard.chaos.progress_after_heal", b2f(res.ChaosProgress), "bool")
	r.Add("shard.chaos.injections", float64(res.ChaosInjections), "count")
	r.Add("shard.chaos.violations", float64(len(res.ChaosViolations)), "count")
	r.Add("shard.certified", b2f(res.Certified()), "bool")
	return r
}

// RenderShard prints the human-readable summary.
func RenderShard(w io.Writer, res ShardResult) {
	fmt.Fprintln(w, "Shard — keyspace partitioning, router, certified cross-shard 2PC (virtual time)")
	fmt.Fprintf(w, "  %8s %12s %12s %12s %10s\n", "shards", "tput tx/s", "mean ms", "p99 ms", "violations")
	for _, p := range res.Sweep {
		fmt.Fprintf(w, "  %8d %12.0f %12.3f %12.3f %10d\n",
			p.Shards, p.Throughput, p.MeanLatMs, p.P99LatMs, p.Violations)
	}
	fmt.Fprintf(w, "  speedup 4v1: %.2fx\n", res.Speedup4)
	fmt.Fprintf(w, "  mixed (%d shards): %d committed (%d transfers, %d aborted), %d cross-shard decided\n",
		res.MixedShards, res.MixedCommitted, res.TransferCommits, res.TransferAborts, res.CrossDecided)
	fmt.Fprintf(w, "    open after drain: %d   router in flight: %d   balanced: %v   replicas equal: %v   violations: %d\n",
		res.MixedOpen, res.MixedInFlight, res.MixedBalanced, res.MixedReplicasEq, len(res.MixedViolations))
	fmt.Fprintf(w, "  chaos (shard 1 isolated %s): %d committed, %d/%d clients finished, %d injections\n",
		"mid-2PC", res.ChaosCommitted, res.ChaosFinished, res.ChaosClients, res.ChaosInjections)
	fmt.Fprintf(w, "    open after drain: %d   router in flight: %d   balanced: %v   progress after heal: %v   violations: %d\n",
		res.ChaosOpen, res.ChaosInFlight, res.ChaosBalanced, res.ChaosProgress, len(res.ChaosViolations))
	fmt.Fprintf(w, "  certified: %v\n", res.Certified())
	for _, v := range res.MixedViolations {
		fmt.Fprintf(w, "  MIXED VIOLATION: %v\n", v)
	}
	for _, v := range res.ChaosViolations {
		fmt.Fprintf(w, "  CHAOS VIOLATION: %v\n", v)
	}
}
