// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (Section IV). Experiments run on the
// discrete-event simulator: protocol and database code executes for real,
// while CPU service times, link latencies, lock waiting and crashes play
// out in virtual time. Broadcast-service costs are measured from the real
// term interpreter and native implementations, then scaled uniformly to
// the paper's Lisp-service operating point (see DESIGN.md,
// "Substitutions").
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/msg"
)

// Workload produces the next transaction for a client.
type Workload func() (string, []any)

// MicroWorkload returns the bank micro-benchmark generator: deposits on
// uniformly random accounts (Section IV-B).
func MicroWorkload(rows int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	return func() (string, []any) {
		return "deposit", []any{int64(rng.Intn(rows)), int64(1)}
	}
}

// ZipfWorkload returns a hot-key bank workload: deposits on accounts
// drawn from a zipfian distribution (s=1.1), the shape that punishes a
// partitioning scheme unless hot keys actually spread across shards.
func ZipfWorkload(rows int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 16, uint64(rows-1))
	return func() (string, []any) {
		return "deposit", []any{int64(zipf.Uint64()), int64(1)}
	}
}

// CurvePoint is one data point of a latency/throughput curve.
type CurvePoint struct {
	Clients    int
	Throughput float64 // committed transactions per second
	MeanLatMs  float64
	P99LatMs   float64
	Aborts     int64
}

// String renders the point as a table row.
func (p CurvePoint) String() string {
	return fmt.Sprintf("%8d %12.0f %12.3f %12.3f %8d",
		p.Clients, p.Throughput, p.MeanLatMs, p.P99LatMs, p.Aborts)
}

// loadStats aggregates what the client fleet observed.
type loadStats struct {
	lat       des.LatencyRecorder
	committed int64
	aborted   int64
	finished  int
	lastDone  time.Duration
	// timeline, when set, receives a mark per commit (Fig. 10a).
	timeline *des.Timeline
}

func (s *loadStats) commit(at time.Duration) {
	s.committed++
	if s.timeline != nil {
		s.timeline.Mark(at)
	}
}

func (s *loadStats) point(clients int) CurvePoint {
	elapsed := s.lastDone
	if elapsed <= 0 {
		elapsed = time.Second
	}
	return CurvePoint{
		Clients:    clients,
		Throughput: des.Throughput(int(s.committed), elapsed),
		MeanLatMs:  float64(s.lat.Mean()) / float64(time.Millisecond),
		P99LatMs:   float64(s.lat.Percentile(99)) / float64(time.Millisecond),
		Aborts:     s.aborted,
	}
}

// shadowClients attaches n closed-loop ShadowDB clients (PBR or SMR mode)
// to the cluster, each running txPerClient transactions from its
// workload. Aborted transactions count as completions but not commits.
func shadowClients(clu *des.Cluster, stats *loadStats, n, txPerClient int,
	mode core.ClientMode, replicas, bcast []msg.Loc, retry time.Duration, mkWork func(i int) Workload) {
	for i := 0; i < n; i++ {
		loc := msg.Loc(fmt.Sprintf("client%d", i))
		cli := &core.Client{
			Slf: loc, Mode: mode, Replicas: replicas, BcastNodes: bcast, Retry: retry,
		}
		work := mkWork(i)
		remaining := txPerClient
		var started time.Duration
		sim := clu.Sim
		submit := func() []msg.Directive {
			typ, args := work()
			started = sim.Now()
			return cli.Submit(typ, args)
		}
		clu.AddNode(loc, 1, nil, func(env des.Envelope) []msg.Directive {
			res, outs := cli.Handle(env.M)
			if res == nil {
				return outs
			}
			stats.lat.Add(sim.Now() - started)
			stats.lastDone = sim.Now()
			if res.Aborted || res.Err != "" {
				stats.aborted++
			} else {
				stats.commit(sim.Now())
			}
			remaining--
			if remaining <= 0 {
				stats.finished++
				return outs
			}
			return append(outs, submit()...)
		})
		sim.After(0, func() {
			for _, d := range submit() {
				clu.SendAfter(d.Delay, loc, d.Dest, d.M)
			}
		})
	}
}

// directClients attaches closed-loop clients that speak plain
// request/response to a fixed server (the baseline systems).
func directClients(clu *des.Cluster, stats *loadStats, n, txPerClient int,
	server msg.Loc, mkWork func(i int) Workload) {
	for i := 0; i < n; i++ {
		loc := msg.Loc(fmt.Sprintf("client%d", i))
		work := mkWork(i)
		remaining := txPerClient
		seq := int64(0)
		var started time.Duration
		sim := clu.Sim
		submit := func() []msg.Directive {
			typ, args := work()
			seq++
			started = sim.Now()
			return []msg.Directive{msg.Send(server, msg.M(core.HdrTx, core.TxRequest{
				Client: loc, Seq: seq, Type: typ, Args: args,
			}))}
		}
		clu.AddNode(loc, 1, nil, func(env des.Envelope) []msg.Directive {
			res, ok := env.M.Body.(core.TxResult)
			if !ok {
				return nil
			}
			stats.lat.Add(sim.Now() - started)
			stats.lastDone = sim.Now()
			if res.Aborted || res.Err != "" {
				stats.aborted++
			} else {
				stats.commit(sim.Now())
			}
			remaining--
			if remaining <= 0 {
				stats.finished++
				return nil
			}
			return submit()
		})
		sim.After(0, func() {
			for _, d := range submit() {
				clu.SendAfter(d.Delay, loc, d.Dest, d.M)
			}
		})
	}
}

// lanLink is the evaluation cluster's network: a gigabit switch.
func lanLink(msg.Loc, msg.Loc) des.LinkSpec {
	return des.LinkSpec{Latency: 100 * time.Microsecond, Bandwidth: 125_000_000} // 1 Gb/s
}

// wireSize approximates serialized message sizes for bandwidth modeling.
func wireSize(m msg.Msg) int {
	switch body := m.Body.(type) {
	case core.SnapBatch:
		n := 64
		for _, row := range body.Rows {
			n += rowWire(row)
		}
		return n
	default:
		return 200
	}
}

func rowWire(row []any) int {
	n := 8
	for _, v := range row {
		switch x := v.(type) {
		case string:
			n += len(x)
		default:
			n += 8
		}
	}
	return n
}
