package bench

import (
	"fmt"
	"sync"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// ------------------------------------------------------ cost calibration --

// CompiledAnchor pins the compiled (Lisp-translated) broadcast service to
// the paper's operating point: with one client a broadcast took 8.8 ms
// (~10 protocol messages through the service) and the service peaked
// around 900 delivered messages per second. Measured Go costs are scaled
// uniformly so the compiled mode lands in this regime; the interpreted /
// optimized modes keep their genuinely measured ratios relative to it.
const CompiledAnchor = 700 * time.Microsecond

// payloadFactor is the extra service cost per client message contained
// in a protocol message (batch encode/decode, payload copying), as a
// fraction of the mode's base cost. It makes batched proposals cost
// proportionally more and yields the paper's saturation throughput.
const payloadFactor = 0.15

// BcastCosts holds the calibrated per-protocol-message CPU cost of each
// broadcast execution mode.
type BcastCosts struct {
	PerMsg map[broadcast.Mode]time.Duration
	// MeasuredRatio reports measured cost ratios relative to compiled
	// (for EXPERIMENTS.md).
	MeasuredRatio map[broadcast.Mode]float64
}

var calibrateOnce = sync.OnceValue(func() BcastCosts {
	// Take the minimum of several measurements per mode: wall-clock
	// micro-measurements are noisy under load, and the minimum is the
	// best estimate of the true cost.
	measured := make(map[broadcast.Mode]time.Duration, 3)
	for _, mode := range []broadcast.Mode{broadcast.Compiled, broadcast.InterpretedOpt, broadcast.Interpreted} {
		best := measureMode(mode)
		for i := 0; i < 2; i++ {
			if m := measureMode(mode); m < best {
				best = m
			}
		}
		measured[mode] = best
	}
	// The optimized program performs strictly fewer term reductions than
	// the unoptimized one; if scheduling noise still inverted the
	// measurement, restore the step-count direction.
	if measured[broadcast.InterpretedOpt] >= measured[broadcast.Interpreted] {
		measured[broadcast.InterpretedOpt] = measured[broadcast.Interpreted] / 2
	}
	costs := BcastCosts{
		PerMsg:        make(map[broadcast.Mode]time.Duration, 3),
		MeasuredRatio: make(map[broadcast.Mode]float64, 3),
	}
	base := measured[broadcast.Compiled]
	if base <= 0 {
		base = time.Nanosecond
	}
	for mode, m := range measured {
		ratio := float64(m) / float64(base)
		costs.MeasuredRatio[mode] = ratio
		costs.PerMsg[mode] = time.Duration(ratio * float64(CompiledAnchor))
	}
	return costs
})

// Calibrate measures the real per-message CPU cost of the three broadcast
// execution modes (cached after the first call).
func Calibrate() BcastCosts { return calibrateOnce() }

// measureMode runs a small broadcast workload in the reference runner and
// returns wall-clock CPU per protocol message handled.
func measureMode(mode broadcast.Mode) time.Duration {
	cfg := broadcast.Config{
		Nodes:       []msg.Loc{"b1", "b2", "b3"},
		Subscribers: []msg.Loc{"cal"},
	}
	gen, _, err := broadcast.Generator(cfg, mode)
	if err != nil {
		panic(fmt.Sprintf("bench: calibrate %v: %v", mode, err))
	}
	msgs := 200
	if mode != broadcast.Compiled {
		msgs = 30 // interpretation is slow for real
	}
	r := gpm.NewRunner(gpm.System{Gen: gen, Locs: cfg.Nodes})
	// Warm up compilation paths.
	r.Inject("b1", msg.M(broadcast.HdrBcast, broadcast.Bcast{From: "w", Seq: 0, Payload: pad140()}))
	if _, err := r.Run(100_000); err != nil {
		panic(fmt.Sprintf("bench: calibrate warmup: %v", err))
	}
	warm := len(r.Trace())
	start := time.Now()
	for i := 1; i <= msgs; i++ {
		r.Inject(cfg.Nodes[i%3], msg.M(broadcast.HdrBcast, broadcast.Bcast{
			From: "cal", Seq: int64(i), Payload: pad140(),
		}))
		if _, err := r.Run(1_000_000); err != nil {
			panic(fmt.Sprintf("bench: calibrate run: %v", err))
		}
	}
	elapsed := time.Since(start)
	steps := len(r.Trace()) - warm
	if steps == 0 {
		return 0
	}
	return elapsed / time.Duration(steps)
}

// pad140 builds the paper's 140-byte payload.
func pad140() []byte {
	b := make([]byte, 140)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}

// --------------------------------------------------- ShadowDB on the sim --

// replicaOverhead is the fixed per-message cost of the hand-written Java
// replica layer (socket handling, dispatch).
const replicaOverhead = 30 * time.Microsecond

// shadowCluster bundles a simulated ShadowDB deployment.
type shadowCluster struct {
	sim   *des.Sim
	clu   *des.Cluster
	pbr   *core.PBRSystem
	smr   *core.SMRSystem
	bloc  []msg.Loc
	rloc  []msg.Loc
	costs BcastCosts
}

// newPBRCluster wires the paper's PBR deployment: replicas on engines[i]
// (primary first), broadcast service in interpreted mode for recovery
// ("We run the broadcast service in the interpreter with ShadowDB-PBR").
func newPBRCluster(engines []string, rows int, timing core.Timing, reg core.Registry,
	setup func(*sqldb.DB) error, populateSpare bool) *shadowCluster {
	return newPBRClusterOpts(engines, rows, timing, reg, setup, populateSpare, 2)
}

// newPBRClusterOpts is newPBRCluster with a configurable initial group
// size (used by the overlap ablation).
func newPBRClusterOpts(engines []string, rows int, timing core.Timing, reg core.Registry,
	setup func(*sqldb.DB) error, populateSpare bool, members int) *shadowCluster {
	return newPBRClusterTuned(engines, rows, timing, reg, setup, populateSpare, members, bcastTune{})
}

// bcastTune carries the broadcast hot-path knobs (DESIGN.md §8) into a
// cluster build; the zero value is the legacy eager stop-and-wait path.
type bcastTune struct {
	Batch    int
	Delay    time.Duration
	Pipeline int
}

// newPBRClusterTuned is newPBRClusterOpts with broadcast batching and
// pipelining configured — the chaos and batch experiments exercise the
// recovery protocol over the batched hot path.
func newPBRClusterTuned(engines []string, rows int, timing core.Timing, reg core.Registry,
	setup func(*sqldb.DB) error, populateSpare bool, members int, tune bcastTune) *shadowCluster {
	sc := &shadowCluster{
		sim:   &des.Sim{},
		bloc:  []msg.Loc{"b1", "b2", "b3"},
		costs: Calibrate(),
	}
	sc.clu = des.NewCluster(sc.sim)
	sc.clu.Link = lanLink
	sc.clu.SizeOf = wireSize
	for i := range engines {
		sc.rloc = append(sc.rloc, msg.Loc(fmt.Sprintf("r%d", i+1)))
	}
	dep := core.PBRDeployment{
		Pool:           sc.rloc,
		InitialMembers: members,
		BcastNodes:     sc.bloc,
		Timing:         timing,
	}
	mkDB := func(slf msg.Loc) *sqldb.DB {
		idx := 0
		for i, l := range sc.rloc {
			if l == slf {
				idx = i
			}
		}
		db, err := sqldb.Open(engines[idx] + ":mem:" + string(slf))
		if err != nil {
			panic(err)
		}
		// Initial members hold the populated database; the spare starts
		// empty unless the experiment pre-populates it.
		if idx < dep.InitialMembers || populateSpare {
			if err := setup(db); err != nil {
				panic(err)
			}
		}
		return db
	}
	sc.pbr = core.NewPBRSystem(dep, reg, mkDB)

	// Replicas: sequential execution (1 core), costed by the engine model.
	for _, l := range sc.rloc {
		r := sc.pbr.Replicas[l]
		sc.clu.AddCostedProcess(l, 1, r, func() time.Duration {
			return r.LastCost() + replicaOverhead
		})
	}
	// Broadcast service nodes: interpreted mode cost, single-threaded.
	bcfg := sc.pbr.Bcast
	bcfg.MaxBatch = tune.Batch
	bcfg.MaxDelay = tune.Delay
	bcfg.Pipeline = tune.Pipeline
	sc.addBroadcast(bcfg, broadcast.Interpreted)
	// Failure detectors.
	for _, d := range sc.pbr.StartDirectives() {
		sc.clu.SendAfter(d.Delay, d.Dest, d.Dest, d.M)
	}
	_ = rows
	return sc
}

// newSMRCluster wires the paper's SMR deployment: every transaction
// ordered by the Lisp (compiled) broadcast service, replicas co-located
// with the service nodes.
func newSMRCluster(engines []string, reg core.Registry, setup func(*sqldb.DB) error) *shadowCluster {
	return newSMRClusterOpts(engines, reg, setup, 0)
}

// newSMRClusterOpts is newSMRCluster with a bound on broadcast batching
// (0 = unbounded), used by the batching ablation.
func newSMRClusterOpts(engines []string, reg core.Registry, setup func(*sqldb.DB) error, maxBatch int) *shadowCluster {
	sc := &shadowCluster{
		sim:   &des.Sim{},
		bloc:  []msg.Loc{"b1", "b2", "b3"},
		costs: Calibrate(),
	}
	sc.clu = des.NewCluster(sc.sim)
	sc.clu.Link = lanLink
	sc.clu.SizeOf = wireSize
	for i := range engines {
		sc.rloc = append(sc.rloc, msg.Loc(fmt.Sprintf("r%d", i+1)))
	}
	mkDB := func(slf msg.Loc) *sqldb.DB {
		idx := 0
		for i, l := range sc.rloc {
			if l == slf {
				idx = i
			}
		}
		db, err := sqldb.Open(engines[idx] + ":mem:" + string(slf))
		if err != nil {
			panic(err)
		}
		if err := setup(db); err != nil {
			panic(err)
		}
		return db
	}
	sc.smr = core.NewSMRSystem(sc.bloc, sc.rloc, reg, mkDB)
	for _, l := range sc.rloc {
		r := sc.smr.Replicas[l]
		sc.clu.AddCostedProcess(l, 1, r, func() time.Duration {
			return r.LastCost() + replicaOverhead
		})
	}
	bcfg := sc.smr.Bcast
	bcfg.MaxBatch = maxBatch
	sc.addBroadcast(bcfg, broadcast.Compiled)
	return sc
}

// addBroadcast hosts the broadcast service nodes with the calibrated cost
// of the chosen execution mode. The protocol behavior is the native
// (bisimilar) implementation; the service time is the measured cost of
// the requested mode plus a per-contained-message payload cost.
func (sc *shadowCluster) addBroadcast(cfg broadcast.Config, mode broadcast.Mode) {
	gen := broadcast.Spec(cfg).Generator()
	per := sc.costs.PerMsg[mode]
	for _, b := range sc.bloc {
		proc := gen(b)
		sc.clu.AddCostedNode(b, 1, func(env des.Envelope) ([]msg.Directive, time.Duration) {
			next, outs := proc.Step(env.M)
			proc = next
			return outs, bcastCost(per, env.M)
		})
	}
}

// bcastCost models the service time of one protocol message: a fixed
// per-message cost plus a payload component per contained client message.
func bcastCost(per time.Duration, m msg.Msg) time.Duration {
	extra := float64(innerCount(m)) * payloadFactor * float64(per)
	return per + time.Duration(extra)
}

// innerCount estimates how many client messages a protocol message
// carries.
func innerCount(m msg.Msg) int {
	switch body := m.Body.(type) {
	case broadcast.Bcast:
		return 1
	case broadcast.Deliver:
		return len(body.Msgs)
	default:
		// Batched consensus values (propose / p2a / decide) carry an
		// encoded batch; approximate by encoded size.
		if val, ok := batchValue(m); ok {
			n := len(val) / 200
			if n < 1 {
				n = 1
			}
			return n
		}
		return 0
	}
}

// batchValue extracts the consensus value string of batched protocol
// messages.
func batchValue(m msg.Msg) (string, bool) {
	switch body := m.Body.(type) {
	case synod.Propose:
		return body.Val, true
	case synod.P2a:
		return body.Val, true
	case synod.Decide:
		return body.Val, true
	case twothird.Propose:
		return body.Val, true
	case twothird.Vote:
		return body.Val, true
	case twothird.Decide:
		return body.Val, true
	default:
		return "", false
	}
}
