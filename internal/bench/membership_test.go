package bench

import (
	"os"
	"testing"
)

// The quick membership run must certify end to end: 3→5→3 resize under
// load, rolling restart, joiner bootstrap, clean checker.
func TestMembershipQuickCertifies(t *testing.T) {
	if testing.Short() {
		t.Skip("membership experiment is seconds of virtual load")
	}
	cfg := QuickMembership()
	res := Membership(cfg)
	RenderMembership(os.Stderr, res)
	if !res.Certified() {
		t.Fatalf("quick membership run not certified: %+v", res)
	}
}
