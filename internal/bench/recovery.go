package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/fault"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// The recovery experiment: a 3-replica SMR deployment whose replicas
// journal to real on-disk WALs (internal/store), with a process-level
// nemesis that kills one replica mid-load, corrupts the tail of its
// newest WAL segment (a torn write), and restarts it as a genuinely
// fresh incarnation over the surviving data directory. The restarted
// replica must recover from its local snapshot + WAL replay, fetch only
// the slots ordered during its downtime from a peer, and rejoin the
// group — all without a single online-checker violation. The run is
// certified (nonzero bench exit otherwise) and its recovery figures go
// to BENCH_recovery.json.

// RecoveryConfig sizes the crash-recovery experiment.
type RecoveryConfig struct {
	// Clients and TxPer size the closed-loop load; the run ends when
	// every client finishes, so the virtual duration is load-dependent.
	Clients int
	TxPer   int
	// Rows is the bank table size.
	Rows int
	// KillAt is when the victim replica's process is killed; it restarts
	// RestartAfter later over the same data directory.
	KillAt       time.Duration
	RestartAfter time.Duration
	// CorruptTail flips bytes in the victim's newest WAL segment before
	// the restart — recovery must absorb the torn tail by truncation.
	CorruptTail bool
	// Fsync is the WAL sync policy of every replica's store.
	Fsync store.SyncPolicy
	// Bin is the availability/progress sampling bin.
	Bin time.Duration
	// Drain bounds the post-load quiesce window (catch-up completion).
	Drain time.Duration
	// RingSize is the obs ring capacity.
	RingSize int
	// DataDir, when non-empty, hosts the replicas' stores (a fresh temp
	// directory otherwise, removed after the run).
	DataDir string
	// FlightDir, when non-empty, arms per-node flight recorders that
	// dump postmortem bundles under it on any checker violation and at
	// the end of an uncertified run.
	FlightDir string
}

// DefaultRecovery is the paper-scale run.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{
		Clients: 6, TxPer: 700, Rows: 256,
		KillAt: time.Second, RestartAfter: 300 * time.Millisecond,
		CorruptTail: true, Fsync: store.SyncBatch,
		Bin: 100 * time.Millisecond, Drain: 2 * time.Second,
		RingSize: 1 << 15,
	}
}

// QuickRecovery is the CI-sized run.
func QuickRecovery() RecoveryConfig {
	return RecoveryConfig{
		Clients: 4, TxPer: 200, Rows: 64,
		KillAt: 300 * time.Millisecond, RestartAfter: 200 * time.Millisecond,
		CorruptTail: true, Fsync: store.SyncNever,
		Bin: 50 * time.Millisecond, Drain: 2 * time.Second,
		RingSize: 1 << 14,
	}
}

// RecoveryResult is the certified outcome of one crash-recovery run.
type RecoveryResult struct {
	// Committed/Aborted/Finished summarize the client fleet; Clients
	// echoes the config (certification wants every client done).
	Committed int64
	Aborted   int64
	Finished  int
	Clients   int
	// KillAt/RestartAt/CaughtUpAt are the observed event times on the
	// virtual clock (-1 when the event did not happen). CaughtUpAt is
	// the first 10 ms sample where the victim's slot frontier reached
	// the live replicas' maximum.
	KillAt     time.Duration
	RestartAt  time.Duration
	CaughtUpAt time.Duration
	// SlotAtKill is the victim's applied frontier when killed;
	// SlotsBehind is how far behind the group it woke up — the delta it
	// then fetched over the network instead of a full state transfer.
	SlotAtKill  int
	SlotsBehind int
	// ReplayedRecords counts WAL records re-executed during the local
	// recovery (store.wal.replays delta across the restart hook).
	ReplayedRecords int64
	// RecoveredLocally reports that the fresh incarnation restored state
	// from its own store rather than starting empty.
	RecoveredLocally bool
	// CorruptTail / CorruptTailHit: the torn-tail injection was requested
	// / actually applied to a WAL segment.
	CorruptTail    bool
	CorruptTailHit bool
	// CaughtUp / StateEqual are the end-of-run convergence checks: slot
	// frontier parity and bit-identical table contents across replicas.
	CaughtUp   bool
	StateEqual bool
	// LastSlots is each replica's final applied frontier (r1, r2, r3).
	LastSlots []int
	// ProgressAfterRestart reports commits observed after the restart.
	ProgressAfterRestart bool
	// Events / Violations are the online checker's view of the run.
	Events     int64
	Violations []dist.Violation
}

// DowntimeSec is the kill-to-restart window.
func (r RecoveryResult) DowntimeSec() float64 {
	if r.KillAt < 0 || r.RestartAt < 0 {
		return -1
	}
	return (r.RestartAt - r.KillAt).Seconds()
}

// CatchupSec is restart-to-frontier-parity — the recovery time the
// experiment exists to measure.
func (r RecoveryResult) CatchupSec() float64 {
	if r.RestartAt < 0 || r.CaughtUpAt < 0 {
		return -1
	}
	return (r.CaughtUpAt - r.RestartAt).Seconds()
}

// Certified reports whether the run meets the recovery acceptance bar:
// the victim was killed and restarted, recovered from its own store,
// the torn tail (when injected) was absorbed, the checker stayed clean,
// clients made progress after the restart and all finished, and the
// group converged to slot-frontier parity with equal database states.
func (r RecoveryResult) Certified() bool {
	return r.KillAt >= 0 && r.RestartAt >= 0 &&
		r.RecoveredLocally &&
		(!r.CorruptTail || r.CorruptTailHit) &&
		len(r.Violations) == 0 &&
		r.ProgressAfterRestart &&
		r.Finished == r.Clients &&
		r.CaughtUp && r.StateEqual
}

// recoveryCluster is a durable SMR deployment whose replicas can be
// torn down and rebuilt from their data directories mid-run.
type recoveryCluster struct {
	*shadowCluster
	root string
	reg  core.Registry
	rows int
	// Current incarnation of each replica and its attachments.
	reps map[msg.Loc]*core.SMRReplica
	dbs  map[msg.Loc]*sqldb.DB
	sts  map[msg.Loc]store.Stable
	gen  map[msg.Loc]int
	pol  store.SyncPolicy
}

// newRecoveryCluster builds the 3-replica durable SMR deployment: one
// broadcast service node per replica (compiled mode), each replica
// journaling to root/<loc>/smr.
func newRecoveryCluster(cfg RecoveryConfig, root string) *recoveryCluster {
	sc := &shadowCluster{
		sim:   &des.Sim{},
		bloc:  []msg.Loc{"b1", "b2", "b3"},
		costs: Calibrate(),
	}
	sc.clu = des.NewCluster(sc.sim)
	sc.clu.Link = lanLink
	sc.clu.SizeOf = wireSize
	rc := &recoveryCluster{
		shadowCluster: sc,
		root:          root,
		reg:           core.BankRegistry(),
		rows:          cfg.Rows,
		reps:          make(map[msg.Loc]*core.SMRReplica),
		dbs:           make(map[msg.Loc]*sqldb.DB),
		sts:           make(map[msg.Loc]store.Stable),
		gen:           make(map[msg.Loc]int),
		pol:           cfg.Fsync,
	}
	local := make(map[msg.Loc][]msg.Loc, len(sc.bloc))
	for i, b := range sc.bloc {
		l := msg.Loc(fmt.Sprintf("r%d", i+1))
		sc.rloc = append(sc.rloc, l)
		local[b] = []msg.Loc{l}
	}
	for _, l := range sc.rloc {
		rep := rc.buildReplica(l, true)
		sc.clu.AddCostedProcess(l, 1, rep, rc.costFn(l))
	}
	sc.addBroadcast(broadcast.Config{Nodes: sc.bloc, LocalSubscribers: local}, broadcast.Compiled)
	return rc
}

// costFn prices the current incarnation's last step (the engine model
// plus the fixed replica-layer overhead).
func (rc *recoveryCluster) costFn(loc msg.Loc) func() time.Duration {
	return func() time.Duration { return rc.reps[loc].LastCost() + replicaOverhead }
}

// buildReplica opens loc's store and database and constructs a durable
// replica over them. With populate set (first boot) the database is
// seeded before construction, so the baseline snapshot captures the
// initial rows; a restarted incarnation starts from an empty database
// and recovers everything from the store.
func (rc *recoveryCluster) buildReplica(loc msg.Loc, populate bool) *core.SMRReplica {
	prov, err := store.NewDir(filepath.Join(rc.root, string(loc)), rc.pol)
	if err != nil {
		panic(fmt.Sprintf("bench: recovery store: %v", err))
	}
	st, err := prov.Open("smr")
	if err != nil {
		panic(fmt.Sprintf("bench: recovery store: %v", err))
	}
	rc.gen[loc]++
	db, err := sqldb.Open(fmt.Sprintf("h2:mem:%s-g%d", loc, rc.gen[loc]))
	if err != nil {
		panic(err)
	}
	if populate {
		if err := core.BankSetup(db, rc.rows); err != nil {
			panic(err)
		}
	}
	rep, err := core.NewDurableSMRReplica(loc, db, rc.reg, st, rc.rloc)
	if err != nil {
		panic(fmt.Sprintf("bench: recovery replica %s: %v", loc, err))
	}
	rc.reps[loc], rc.dbs[loc], rc.sts[loc] = rep, db, st
	return rep
}

// restartReplica rebuilds loc from its data directory — a fresh
// incarnation, empty database and all — and rebinds it to the node.
func (rc *recoveryCluster) restartReplica(loc msg.Loc) *core.SMRReplica {
	rep := rc.buildReplica(loc, false)
	var proc gpm.Process = rep
	cost := rc.costFn(loc)
	rc.clu.Node(loc).RebindCosted(func(env des.Envelope) ([]msg.Directive, time.Duration) {
		next, outs := proc.Step(env.M)
		proc = next
		return outs, cost()
	})
	return rep
}

// maxOtherSlot is the highest applied frontier among the replicas other
// than loc.
func (rc *recoveryCluster) maxOtherSlot(loc msg.Loc) int {
	m := -1
	for l, r := range rc.reps {
		if l != loc && r.LastSlot() > m {
			m = r.LastSlot()
		}
	}
	return m
}

// Recovery runs the crash-recovery experiment.
func Recovery(cfg RecoveryConfig) RecoveryResult {
	root := cfg.DataDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "shadowdb-recovery-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	rc := newRecoveryCluster(cfg, root)
	sim := rc.sim

	o := obs.New(cfg.RingSize)
	rc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.Watch(o)
	dumpFlight := flightFleet(cfg.FlightDir, "recovery", o, checker,
		append(append([]msg.Loc{}, rc.rloc...), rc.bloc...))

	stats := &loadStats{}
	timeline := des.NewTimeline(cfg.Bin)
	stats.timeline = timeline
	work := func(i int) Workload { return MicroWorkload(cfg.Rows, int64(i)*31337) }
	shadowClients(rc.clu, stats, cfg.Clients, cfg.TxPer, core.ModeSMR,
		rc.rloc, rc.bloc, 10*time.Second, work)

	res := RecoveryResult{
		Clients: cfg.Clients, CorruptTail: cfg.CorruptTail,
		KillAt: -1, RestartAt: -1, CaughtUpAt: -1, SlotsBehind: -1,
	}
	victim := msg.Loc("r2")

	// Once restarted, sample the victim's frontier on a 10 ms grid until
	// it reaches the live replicas' maximum — the recovery time.
	var sampleCatchup func()
	sampleCatchup = func() {
		if res.CaughtUpAt >= 0 {
			return
		}
		if rc.reps[victim].LastSlot() >= rc.maxOtherSlot(victim) {
			res.CaughtUpAt = sim.Now()
			return
		}
		sim.After(10*time.Millisecond, sampleCatchup)
	}

	inj := fault.BindProcess(rc.clu, fault.Plan{Crashes: []fault.Crash{{
		At:           fault.Duration(cfg.KillAt),
		Node:         victim,
		RestartAfter: fault.Duration(cfg.RestartAfter),
		CorruptTail:  cfg.CorruptTail,
	}}}, fault.ProcessHooks{
		Kill: func(node msg.Loc) {
			res.KillAt = sim.Now()
			res.SlotAtKill = rc.reps[node].LastSlot()
			_ = rc.sts[node].Close()
		},
		DataDir: func(node msg.Loc) string {
			return filepath.Join(root, string(node))
		},
		Restart: func(node msg.Loc) {
			res.RestartAt = sim.Now()
			replayBefore := obs.C("store.wal.replays").Value()
			rep := rc.restartReplica(node)
			res.ReplayedRecords = obs.C("store.wal.replays").Value() - replayBefore
			res.RecoveredLocally = rep.Recovered()
			res.SlotsBehind = rc.maxOtherSlot(node) - rep.LastSlot()
			checker.NoteRestart(node)
			// Back on the network: ask the peers for the downtime delta.
			// Deferred a tick so the send happens after the node's crash
			// flag clears.
			sim.After(0, func() {
				for _, d := range rep.RecoveryDirectives() {
					rc.clu.SendAfter(d.Delay, node, d.Dest, d.M)
				}
				sampleCatchup()
			})
		},
	})
	inj.SetObs(o)

	runToFinish(sim, stats, cfg.Clients)
	// Quiesce: let in-flight catch-up and final deliveries drain.
	sim.Run(cfg.Drain, 50_000_000)

	res.Committed = stats.committed
	res.Aborted = stats.aborted
	res.Finished = stats.finished
	for _, i := range inj.Injections() {
		if i.Kind == "corrupt-tail" {
			res.CorruptTailHit = true
		}
	}
	res.Events = checker.Status().Events
	res.Violations = checker.Violations()

	for _, l := range rc.rloc {
		res.LastSlots = append(res.LastSlots, rc.reps[l].LastSlot())
	}
	res.CaughtUp = rc.reps[victim].LastSlot() >= rc.maxOtherSlot(victim)
	res.StateEqual = true
	for _, l := range rc.rloc[1:] {
		if !sqldb.Equal(rc.dbs[rc.rloc[0]], rc.dbs[l]) {
			res.StateEqual = false
		}
	}

	if res.RestartAt >= 0 {
		series := timeline.Series()
		first := int(res.RestartAt / cfg.Bin)
		for b := first + 1; b < len(series); b++ {
			if series[b] > 0 {
				res.ProgressAfterRestart = true
				break
			}
		}
	}
	if !res.Certified() {
		dumpFlight("uncertified")
	}
	return res
}

// ReportRecovery flattens the experiment for BENCH_recovery.json.
func ReportRecovery(res RecoveryResult, quick bool) *Report {
	r := NewReport("recovery", quick)
	r.Add("recovery.committed", float64(res.Committed), "count")
	r.Add("recovery.aborted", float64(res.Aborted), "count")
	r.Add("recovery.finished", float64(res.Finished), "count")
	r.Add("recovery.kill_at", res.KillAt.Seconds(), "s")
	r.Add("recovery.restart_at", res.RestartAt.Seconds(), "s")
	r.Add("recovery.caught_up_at", res.CaughtUpAt.Seconds(), "s")
	r.Add("recovery.downtime", res.DowntimeSec(), "s")
	r.Add("recovery.catchup", res.CatchupSec(), "s")
	r.Add("recovery.slot_at_kill", float64(res.SlotAtKill), "count")
	r.Add("recovery.slots_behind", float64(res.SlotsBehind), "count")
	r.Add("recovery.replayed_records", float64(res.ReplayedRecords), "count")
	r.Add("recovery.recovered_locally", b2f(res.RecoveredLocally), "bool")
	r.Add("recovery.corrupt_tail_hit", b2f(res.CorruptTailHit), "bool")
	r.Add("recovery.caught_up", b2f(res.CaughtUp), "bool")
	r.Add("recovery.state_equal", b2f(res.StateEqual), "bool")
	r.Add("recovery.progress_after_restart", b2f(res.ProgressAfterRestart), "bool")
	r.Add("recovery.checker.events", float64(res.Events), "count")
	r.Add("recovery.checker.violations", float64(len(res.Violations)), "count")
	r.Add("recovery.certified", b2f(res.Certified()), "bool")
	return r
}

// RenderRecovery prints the human-readable summary.
func RenderRecovery(w io.Writer, res RecoveryResult) {
	fmt.Fprintln(w, "Recovery — durable SMR replica killed and restarted mid-load (virtual time, real WAL)")
	fmt.Fprintf(w, "  committed: %d (%d aborted)   clients finished: %d/%d\n",
		res.Committed, res.Aborted, res.Finished, res.Clients)
	fmt.Fprintf(w, "  killed at %.2fs (slot %d), restarted at %.2fs, caught up at %.2fs (downtime %.2fs, catch-up %.2fs)\n",
		res.KillAt.Seconds(), res.SlotAtKill, res.RestartAt.Seconds(),
		res.CaughtUpAt.Seconds(), res.DowntimeSec(), res.CatchupSec())
	fmt.Fprintf(w, "  local recovery: %v (%d WAL records replayed), woke %d slots behind, corrupt tail hit: %v\n",
		res.RecoveredLocally, res.ReplayedRecords, res.SlotsBehind, res.CorruptTailHit)
	fmt.Fprintf(w, "  convergence: frontier parity %v (slots %v), state equal %v, progress after restart %v\n",
		res.CaughtUp, res.LastSlots, res.StateEqual, res.ProgressAfterRestart)
	fmt.Fprintf(w, "  checker: %d events, %d violations   certified: %v\n",
		res.Events, len(res.Violations), res.Certified())
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  VIOLATION: %v\n", v)
	}
}
