package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/fault"
	"shadowdb/internal/gpm"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// The membership experiment: a live 3-node SMR cluster grows to 5 nodes
// and shrinks back to 3 under sustained load, with a rolling restart of
// one charter replica and one joiner running concurrently. Every
// add/remove command travels through the total-order broadcast into
// numbered configuration epochs (internal/member), so Synod quorums,
// delivery fan-out, and catch-up peer sets all switch at well-defined
// slots; joiners bootstrap through a snapshot pushed by the
// deterministic proposer plus a slot delta, and removed replicas drain
// by simply falling out of the fan-out. The epoch-aware online checker
// (member/epoch-config, member/stale-quorum, NoteJoin/NoteRestart
// excuse windows) certifies the run; the nemesis schedule is replayed
// a second time to certify bit-reproducible fault injection. Figures go
// to BENCH_membership.json.

// MembershipConfig sizes the dynamic-membership experiment.
type MembershipConfig struct {
	// Clients and TxPer size the closed-loop load; the schedule below
	// must fit inside the load window for post-change progress to be
	// certifiable.
	Clients int
	TxPer   int
	// Rows is the bank table size.
	Rows int
	// GrowAt starts the grow phase (add b4, r4, b5, r5), one command
	// every CmdEvery; ShrinkAt starts the shrink phase (remove r2, b2,
	// r3, b3) on the same cadence.
	GrowAt   time.Duration
	CmdEvery time.Duration
	ShrinkAt time.Duration
	// RestartAt starts the rolling restart of r1 (charter) then r4
	// (joiner): each is down Downtime, starts Stagger apart.
	RestartAt time.Duration
	Downtime  time.Duration
	Stagger   time.Duration
	// Alpha is the acceptor activation lag in slots; it must exceed
	// twice the consensus pipeline window.
	Alpha    int
	Pipeline int
	// Fsync is the WAL sync policy of every replica's store.
	Fsync store.SyncPolicy
	// Bin is the progress sampling bin.
	Bin time.Duration
	// Drain bounds the post-load quiesce window.
	Drain time.Duration
	// RingSize is the obs ring capacity.
	RingSize int
	// DataDir, when non-empty, hosts the replicas' stores (a fresh temp
	// directory otherwise, removed after the run).
	DataDir string
	// FlightDir, when non-empty, arms per-node flight recorders; joiner
	// bundles are marked so `flight merge` baselines them.
	FlightDir string
	// ReproCheck replays the whole run a second time over a fresh store
	// and requires an identical injection fingerprint.
	ReproCheck bool
}

// DefaultMembership is the paper-scale run.
func DefaultMembership() MembershipConfig {
	return MembershipConfig{
		Clients: 6, TxPer: 1400, Rows: 256,
		GrowAt: 400 * time.Millisecond, CmdEvery: 200 * time.Millisecond,
		ShrinkAt:  2500 * time.Millisecond,
		RestartAt: 1500 * time.Millisecond, Downtime: 250 * time.Millisecond,
		Stagger: 400 * time.Millisecond,
		Alpha:   10, Pipeline: 4,
		Fsync: store.SyncBatch,
		Bin:   100 * time.Millisecond, Drain: 2 * time.Second,
		RingSize:   1 << 16,
		ReproCheck: true,
	}
}

// QuickMembership is the CI-sized run.
func QuickMembership() MembershipConfig {
	return MembershipConfig{
		Clients: 4, TxPer: 500, Rows: 64,
		GrowAt: 200 * time.Millisecond, CmdEvery: 120 * time.Millisecond,
		ShrinkAt:  1600 * time.Millisecond,
		RestartAt: 900 * time.Millisecond, Downtime: 150 * time.Millisecond,
		Stagger: 300 * time.Millisecond,
		Alpha:   10, Pipeline: 4,
		Fsync: store.SyncNever,
		Bin:   50 * time.Millisecond, Drain: 2 * time.Second,
		RingSize: 1 << 15,
	}
}

// MembershipResult is the certified outcome of one membership run.
type MembershipResult struct {
	// Committed/Aborted/Finished summarize the client fleet.
	Committed int64
	Aborted   int64
	Finished  int
	Clients   int
	// Epochs is how many configuration epochs the run derived
	// (including the initial one); GrewTo/ShrankTo are the peak and
	// final replica counts.
	Epochs   int
	GrewTo   int
	ShrankTo int
	// FinalBcast/FinalReplicas are the last epoch's member sets.
	FinalBcast    []msg.Loc
	FinalReplicas []msg.Loc
	// JoinersActive reports both joiners finished their bootstrap;
	// JoinerActiveAt is when the last one did (-1 if never).
	JoinersActive  bool
	JoinerActiveAt time.Duration
	// BootstrapSnapshots counts proposer snapshot pushes for joins.
	BootstrapSnapshots int64
	// Kills/Restarts count the rolling-restart injections; Replayed is
	// the WAL records re-executed across both local recoveries, and
	// RecoveredLocally that both incarnations restored from their
	// stores.
	Kills            int
	Restarts         int
	Replayed         int64
	RecoveredLocally bool
	// CaughtUp / StateEqual are the end-of-run convergence checks over
	// the FINAL replica set: slot-frontier parity and bit-identical
	// table contents (the joiner state parity the issue demands).
	CaughtUp   bool
	StateEqual bool
	// LastSlots is each final replica's applied frontier.
	LastSlots []int
	// ProgressAfterChanges / ProgressAfterRestart report commits after
	// the last membership command / after the rolling restart ended.
	ProgressAfterChanges bool
	ProgressAfterRestart bool
	// Events / Violations are the online checker's view of the run.
	Events     int64
	Violations []dist.Violation
	// Fingerprint hashes the injection log; with ReproChecked set,
	// FingerprintStable reports the replay run produced the same hash.
	Fingerprint       uint64
	ReproChecked      bool
	FingerprintStable bool
}

// Certified reports whether the run meets the membership acceptance
// bar: every scheduled epoch derived, the cluster grew to 5 and ended
// at 3, both joiners bootstrapped via proposer snapshots, the rolling
// restart ran and both victims recovered locally, the checker stayed
// clean, clients made progress after the last change and all finished,
// the final replica set converged to identical state, and (when
// checked) the nemesis schedule reproduced bit-identically.
func (r MembershipResult) Certified() bool {
	return r.Finished == r.Clients &&
		r.Epochs == 9 &&
		r.GrewTo == 5 && r.ShrankTo == 3 &&
		r.JoinersActive && r.BootstrapSnapshots >= 2 &&
		r.Kills == 2 && r.Restarts == 2 && r.RecoveredLocally &&
		len(r.Violations) == 0 &&
		r.ProgressAfterChanges && r.ProgressAfterRestart &&
		r.CaughtUp && r.StateEqual &&
		(!r.ReproChecked || r.FingerprintStable)
}

// membershipCluster is a durable SMR deployment under a shared epoch
// view: five broadcast service nodes and five replicas exist as
// processes from the start, but only the charter members (b1-b3,
// r1-r3) are in epoch 0 — the rest idle until an ordered command
// admits them.
type membershipCluster struct {
	*shadowCluster
	root    string
	reg     core.Registry
	rows    int
	view    *member.View
	joiners map[msg.Loc]bool
	reps    map[msg.Loc]*core.SMRReplica
	dbs     map[msg.Loc]*sqldb.DB
	sts     map[msg.Loc]store.Stable
	gen     map[msg.Loc]int
	pol     store.SyncPolicy
}

// membershipInitial is epoch 0: the charter members.
func membershipInitial() member.Config {
	return member.Config{
		Bcast:    []msg.Loc{"b1", "b2", "b3"},
		Replicas: []msg.Loc{"r1", "r2", "r3"},
	}
}

// newMembershipCluster builds the deployment: every service node runs
// the dynamic-membership broadcast (PaxosDynamic quorums, per-slot
// fan-out from the view), charter replicas are durable and populated,
// joiners are durable and empty, waiting for their bootstrap snapshot.
func newMembershipCluster(cfg MembershipConfig, root string) *membershipCluster {
	sc := &shadowCluster{
		sim:   &des.Sim{},
		bloc:  []msg.Loc{"b1", "b2", "b3", "b4", "b5"},
		rloc:  []msg.Loc{"r1", "r2", "r3", "r4", "r5"},
		costs: Calibrate(),
	}
	sc.clu = des.NewCluster(sc.sim)
	sc.clu.Link = lanLink
	sc.clu.SizeOf = wireSize
	mc := &membershipCluster{
		shadowCluster: sc,
		root:          root,
		reg:           core.BankRegistry(),
		rows:          cfg.Rows,
		view:          member.NewView(membershipInitial(), cfg.Alpha),
		joiners:       map[msg.Loc]bool{"r4": true, "r5": true},
		reps:          make(map[msg.Loc]*core.SMRReplica),
		dbs:           make(map[msg.Loc]*sqldb.DB),
		sts:           make(map[msg.Loc]store.Stable),
		gen:           make(map[msg.Loc]int),
		pol:           cfg.Fsync,
	}
	for _, l := range sc.rloc {
		rep := mc.buildReplica(l, !mc.joiners[l])
		sc.clu.AddCostedProcess(l, 1, rep, mc.costFn(l))
	}
	sc.addBroadcast(broadcast.Config{
		Nodes:    sc.bloc,
		Pipeline: cfg.Pipeline,
		View:     mc.view,
		Modules:  []broadcast.Module{broadcast.PaxosDynamic(cfg.Pipeline, nil, mc.view)},
	}, broadcast.Compiled)
	return mc
}

func (mc *membershipCluster) costFn(loc msg.Loc) func() time.Duration {
	return func() time.Duration { return mc.reps[loc].LastCost() + replicaOverhead }
}

// buildReplica opens loc's store and database and constructs a durable
// replica over them, attached to the shared epoch view. Charter
// replicas (populate) are seeded and baseline-snapshotted; joiners
// start empty and inactive — their first durable baseline is the
// bootstrap transfer. A rebuilt incarnation of either kind recovers
// whatever its store holds.
func (mc *membershipCluster) buildReplica(loc msg.Loc, populate bool) *core.SMRReplica {
	prov, err := store.NewDir(filepath.Join(mc.root, string(loc)), mc.pol)
	if err != nil {
		panic(fmt.Sprintf("bench: membership store: %v", err))
	}
	st, err := prov.Open("smr")
	if err != nil {
		panic(fmt.Sprintf("bench: membership store: %v", err))
	}
	mc.gen[loc]++
	db, err := sqldb.Open(fmt.Sprintf("h2:mem:%s-g%d", loc, mc.gen[loc]))
	if err != nil {
		panic(err)
	}
	if populate {
		if err := core.BankSetup(db, mc.rows); err != nil {
			panic(err)
		}
	}
	var rep *core.SMRReplica
	if mc.joiners[loc] {
		rep, err = core.NewJoiningDurableSMRReplica(loc, db, mc.reg, st, nil)
	} else {
		rep, err = core.NewDurableSMRReplica(loc, db, mc.reg, st, nil)
	}
	if err != nil {
		panic(fmt.Sprintf("bench: membership replica %s: %v", loc, err))
	}
	rep.SetView(mc.view)
	mc.reps[loc], mc.dbs[loc], mc.sts[loc] = rep, db, st
	return rep
}

// restartReplica rebuilds loc from its data directory — a fresh
// incarnation over the surviving store — and rebinds it to the node.
func (mc *membershipCluster) restartReplica(loc msg.Loc) *core.SMRReplica {
	rep := mc.buildReplica(loc, false)
	var proc gpm.Process = rep
	cost := mc.costFn(loc)
	mc.clu.Node(loc).RebindCosted(func(env des.Envelope) ([]msg.Directive, time.Duration) {
		next, outs := proc.Step(env.M)
		proc = next
		return outs, cost()
	})
	return rep
}

// scheduledChange is one membership command at its proposal time.
type scheduledChange struct {
	At  time.Duration
	Cmd member.Command
}

// membershipChanges is the ordered command schedule: grow to 5/5, then
// shrink to 3/3 keeping the two joiners and the sequencer's replica.
func membershipChanges(cfg MembershipConfig) []scheduledChange {
	return []scheduledChange{
		{cfg.GrowAt, member.Command{Op: member.AddAcceptor, Node: "b4"}},
		{cfg.GrowAt + cfg.CmdEvery, member.Command{Op: member.AddReplica, Node: "r4"}},
		{cfg.GrowAt + 2*cfg.CmdEvery, member.Command{Op: member.AddAcceptor, Node: "b5"}},
		{cfg.GrowAt + 3*cfg.CmdEvery, member.Command{Op: member.AddReplica, Node: "r5"}},
		{cfg.ShrinkAt, member.Command{Op: member.RemoveReplica, Node: "r2"}},
		{cfg.ShrinkAt + cfg.CmdEvery, member.Command{Op: member.RemoveAcceptor, Node: "b2"}},
		{cfg.ShrinkAt + 2*cfg.CmdEvery, member.Command{Op: member.RemoveReplica, Node: "r3"}},
		{cfg.ShrinkAt + 3*cfg.CmdEvery, member.Command{Op: member.RemoveAcceptor, Node: "b3"}},
	}
}

// Membership runs the dynamic-membership experiment, optionally twice
// to certify the nemesis schedule reproduces bit-identically.
func Membership(cfg MembershipConfig) MembershipResult {
	res := membershipRun(cfg)
	if cfg.ReproCheck {
		replay := cfg
		replay.DataDir = ""   // fresh stores for the replay
		replay.FlightDir = "" // evidence only from the primary run
		replay.ReproCheck = false
		res2 := membershipRun(replay)
		res.ReproChecked = true
		res.FingerprintStable = res.Fingerprint == res2.Fingerprint
	}
	return res
}

// membershipRun is one full run of the experiment.
func membershipRun(cfg MembershipConfig) MembershipResult {
	root := cfg.DataDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "shadowdb-membership-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	mc := newMembershipCluster(cfg, root)
	sim := mc.sim

	o := obs.New(cfg.RingSize)
	mc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.SetMembership(membershipInitial(), cfg.Alpha)
	checker.Watch(o)
	dumpFlight := flightFleet(cfg.FlightDir, "membership", o, checker,
		append(append([]msg.Loc{}, mc.rloc...), mc.bloc...), "r4", "r5", "b4", "b5")

	stats := &loadStats{}
	timeline := des.NewTimeline(cfg.Bin)
	stats.timeline = timeline
	work := func(i int) Workload { return MicroWorkload(cfg.Rows, int64(i)*31337) }
	// Clients keep the seed topology: removed service nodes still
	// forward broadcasts to the sequencer, so a static client config
	// survives every resize.
	charterR := []msg.Loc{"r1", "r2", "r3"}
	charterB := []msg.Loc{"b1", "b2", "b3"}
	shadowClients(mc.clu, stats, cfg.Clients, cfg.TxPer, core.ModeSMR,
		charterR, charterB, 10*time.Second, work)

	res := MembershipResult{Clients: cfg.Clients, JoinerActiveAt: -1}
	snapsBefore := obs.C("core.smr.member_snapshots").Value()

	// The admin proposes each membership command through the broadcast
	// order at its scheduled time — a plain Bcast whose payload every
	// node folds into the shared epoch schedule at its decided slot.
	admin := msg.Loc("admin")
	mc.clu.AddNode(admin, 1, nil, func(des.Envelope) []msg.Directive { return nil })
	changes := membershipChanges(cfg)
	var lastChangeAt time.Duration
	for i, ch := range changes {
		seq := int64(i + 1)
		cmd := ch.Cmd
		if ch.At > lastChangeAt {
			lastChangeAt = ch.At
		}
		sim.After(ch.At, func() {
			if cmd.Op == member.AddReplica {
				// Tell the checker the joiner legitimately enters the
				// slot order mid-stream.
				checker.NoteJoin(cmd.Node)
			}
			mc.clu.SendAfter(0, admin, mc.bloc[0], msg.M(broadcast.HdrBcast,
				broadcast.Bcast{From: admin, Seq: seq, Payload: member.EncodeCommand(cmd)}))
		})
	}

	// Sample each joiner until its bootstrap snapshot lands.
	for j := range mc.joiners {
		loc := j
		var poll func()
		poll = func() {
			if mc.reps[loc].Active() {
				if sim.Now() > res.JoinerActiveAt {
					res.JoinerActiveAt = sim.Now()
				}
				return
			}
			sim.After(10*time.Millisecond, poll)
		}
		sim.After(cfg.GrowAt, poll)
	}

	// The rolling restart: r1 (charter, the bootstrap proposer) then r4
	// (freshly joined), deterministically expanded into the same crash
	// schedule every run.
	recoveredAll := true
	var rollEnd time.Duration
	inj := fault.BindProcess(mc.clu, fault.Plan{Rolling: []fault.Rolling{{
		StartAt:  fault.Duration(cfg.RestartAt),
		Nodes:    []msg.Loc{"r1", "r4"},
		Downtime: fault.Duration(cfg.Downtime),
		Stagger:  fault.Duration(cfg.Stagger),
	}}}, fault.ProcessHooks{
		Kill: func(node msg.Loc) {
			res.Kills++
			_ = mc.sts[node].Close()
		},
		DataDir: func(node msg.Loc) string {
			return filepath.Join(root, string(node))
		},
		Restart: func(node msg.Loc) {
			res.Restarts++
			replayBefore := obs.C("store.wal.replays").Value()
			rep := mc.restartReplica(node)
			res.Replayed += obs.C("store.wal.replays").Value() - replayBefore
			if !rep.Recovered() {
				recoveredAll = false
			}
			checker.NoteRestart(node)
			rollEnd = sim.Now()
			// Back on the network: ask the current epoch's peers for
			// the downtime delta (deferred a tick so the send happens
			// after the node's crash flag clears).
			sim.After(0, func() {
				for _, d := range rep.RecoveryDirectives() {
					mc.clu.SendAfter(d.Delay, node, d.Dest, d.M)
				}
			})
		},
	})
	inj.SetObs(o)

	runToFinish(sim, stats, cfg.Clients)
	// Quiesce: let catch-up, final deliveries and the last epoch drain.
	sim.Run(cfg.Drain, 50_000_000)

	res.Committed = stats.committed
	res.Aborted = stats.aborted
	res.Finished = stats.finished
	res.RecoveredLocally = res.Restarts == 2 && recoveredAll
	res.BootstrapSnapshots = obs.C("core.smr.member_snapshots").Value() - snapsBefore
	res.Events = checker.Status().Events
	res.Violations = checker.Violations()
	res.Fingerprint = inj.Fingerprint()

	epochs := mc.view.Epochs()
	res.Epochs = len(epochs)
	for _, e := range epochs {
		if len(e.Replicas) > res.GrewTo {
			res.GrewTo = len(e.Replicas)
		}
	}
	final := epochs[len(epochs)-1]
	res.ShrankTo = len(final.Replicas)
	res.FinalBcast = final.Bcast
	res.FinalReplicas = final.Replicas
	res.JoinersActive = mc.reps["r4"].Active() && mc.reps["r5"].Active()

	// Convergence over the final replica set: frontier parity and
	// bit-identical state — the joiners must be indistinguishable from
	// the surviving charter replica.
	maxSlot := -1
	for _, l := range final.Replicas {
		s := mc.reps[l].LastSlot()
		res.LastSlots = append(res.LastSlots, s)
		if s > maxSlot {
			maxSlot = s
		}
	}
	res.CaughtUp = len(final.Replicas) > 0
	res.StateEqual = len(final.Replicas) > 0
	for _, l := range final.Replicas {
		if mc.reps[l].LastSlot() < maxSlot {
			res.CaughtUp = false
		}
		if !sqldb.Equal(mc.dbs[final.Replicas[0]], mc.dbs[l]) {
			res.StateEqual = false
		}
	}

	series := timeline.Series()
	after := func(at time.Duration) bool {
		if at <= 0 {
			return false
		}
		for b := int(at/cfg.Bin) + 1; b < len(series); b++ {
			if series[b] > 0 {
				return true
			}
		}
		return false
	}
	res.ProgressAfterChanges = after(lastChangeAt)
	res.ProgressAfterRestart = after(rollEnd)

	if !res.Certified() {
		dumpFlight("uncertified")
	}
	return res
}

// ReportMembership flattens the experiment for BENCH_membership.json.
func ReportMembership(res MembershipResult, quick bool) *Report {
	r := NewReport("membership", quick)
	r.Add("membership.committed", float64(res.Committed), "count")
	r.Add("membership.aborted", float64(res.Aborted), "count")
	r.Add("membership.finished", float64(res.Finished), "count")
	r.Add("membership.epochs", float64(res.Epochs), "count")
	r.Add("membership.grew_to", float64(res.GrewTo), "count")
	r.Add("membership.shrank_to", float64(res.ShrankTo), "count")
	r.Add("membership.joiners_active", b2f(res.JoinersActive), "bool")
	r.Add("membership.joiner_active_at", res.JoinerActiveAt.Seconds(), "s")
	r.Add("membership.bootstrap_snapshots", float64(res.BootstrapSnapshots), "count")
	r.Add("membership.kills", float64(res.Kills), "count")
	r.Add("membership.restarts", float64(res.Restarts), "count")
	r.Add("membership.replayed_records", float64(res.Replayed), "count")
	r.Add("membership.recovered_locally", b2f(res.RecoveredLocally), "bool")
	r.Add("membership.caught_up", b2f(res.CaughtUp), "bool")
	r.Add("membership.state_equal", b2f(res.StateEqual), "bool")
	r.Add("membership.progress_after_changes", b2f(res.ProgressAfterChanges), "bool")
	r.Add("membership.progress_after_restart", b2f(res.ProgressAfterRestart), "bool")
	r.Add("membership.checker.events", float64(res.Events), "count")
	r.Add("membership.checker.violations", float64(len(res.Violations)), "count")
	r.Add("membership.repro_checked", b2f(res.ReproChecked), "bool")
	r.Add("membership.fingerprint_stable", b2f(res.FingerprintStable), "bool")
	r.Add("membership.certified", b2f(res.Certified()), "bool")
	return r
}

// RenderMembership prints the human-readable summary.
func RenderMembership(w io.Writer, res MembershipResult) {
	fmt.Fprintln(w, "Membership — live 3→5→3 resize with a concurrent rolling restart (virtual time, real WAL)")
	fmt.Fprintf(w, "  committed: %d (%d aborted)   clients finished: %d/%d\n",
		res.Committed, res.Aborted, res.Finished, res.Clients)
	fmt.Fprintf(w, "  epochs: %d derived, grew to %d replicas, ended at %d — bcast %v, replicas %v\n",
		res.Epochs, res.GrewTo, res.ShrankTo, res.FinalBcast, res.FinalReplicas)
	fmt.Fprintf(w, "  joiners active: %v (last at %.2fs, %d bootstrap snapshots pushed)\n",
		res.JoinersActive, res.JoinerActiveAt.Seconds(), res.BootstrapSnapshots)
	fmt.Fprintf(w, "  rolling restart: %d kills, %d restarts, local recovery %v (%d WAL records replayed)\n",
		res.Kills, res.Restarts, res.RecoveredLocally, res.Replayed)
	fmt.Fprintf(w, "  convergence: frontier parity %v (slots %v), state equal %v, progress after changes %v / after restart %v\n",
		res.CaughtUp, res.LastSlots, res.StateEqual, res.ProgressAfterChanges, res.ProgressAfterRestart)
	fp := "not checked"
	if res.ReproChecked {
		fp = fmt.Sprintf("stable=%v (%#x)", res.FingerprintStable, res.Fingerprint)
	}
	fmt.Fprintf(w, "  checker: %d events, %d violations   nemesis fingerprint: %s   certified: %v\n",
		res.Events, len(res.Violations), fp, res.Certified())
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  VIOLATION: %v\n", v)
	}
}
