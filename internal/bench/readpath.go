package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/fault"
	"shadowdb/internal/gpm"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// The readpath experiment certifies the zero-allocation replicated hot
// path with lease-based local reads (DESIGN.md §13). Four phases, each
// on a fresh durable 3+3 cluster under a 95/5 read-heavy bank load:
//
//  1. consensus — reads travel the full ordered path (the baseline);
//  2. lease — reads served locally at the lease holder (linearizable);
//  3. follower — reads served at non-holders within the staleness bound;
//  4. chaos — the holder is partitioned away from the order while still
//     reachable by clients, then deposed by an ordered membership
//     command; the new holder waits out the old holder's lease window
//     (notBefore barrier), takes over, and is itself crash-restarted
//     (fault.Rolling) to prove lease state is volatile: the restarted
//     holder rejects reads until a fresh renewal is ordered under the
//     current epoch.
//
// Each replica folds renewals and membership commands from its OWN
// delivery stream into its OWN epoch view, so a partitioned stale
// holder genuinely keeps serving inside its lease window — and the
// epoch-and-lease-aware online checker (read/lease-expiry,
// read/lease-linearizability, read/follower-staleness) audits every
// serve against the delivered renewal history. Alongside the phases,
// testing.AllocsPerRun pins the steady-state serve loop at zero
// allocations, and WAL counters certify fsync batching: a full
// pipeline window of slots costs one covering fsync, not one per slot.
// Figures go to BENCH_readpath.json.

// ReadPathConfig sizes the readpath experiment.
type ReadPathConfig struct {
	// Clients and OpsPer size the closed-loop mixed load of the three
	// measured phases; ReadPct of each client's operations are reads.
	Clients int
	OpsPer  int
	ReadPct int
	// Rows is the bank table size.
	Rows int
	// LeaseDur is the lease duration (renewals every LeaseDur/3);
	// MaxStale is the follower-read staleness bound.
	LeaseDur time.Duration
	MaxStale time.Duration
	// Retry is the client resend timeout.
	Retry time.Duration
	// Pipeline is the consensus pipeline width; Alpha the membership
	// activation lag in slots.
	Pipeline int
	Alpha    int
	// GroupEvery/GroupDelay configure SMR group commit: acks park until
	// one fsync covers up to GroupEvery slots (or GroupDelay elapses).
	GroupEvery int
	GroupDelay time.Duration
	// Fsync is the WAL sync policy of every store.
	Fsync store.SyncPolicy
	// The chaos schedule: the holder r1 is partitioned from the
	// broadcast and the other replicas (but not from read probes) at
	// PartitionAt, deposed by an ordered RemoveReplica at DeposeAt, and
	// the partition heals at HealAt. The new holder r2 is killed at
	// RestartAt and comes back after Downtime.
	PartitionAt time.Duration
	DeposeAt    time.Duration
	HealAt      time.Duration
	RestartAt   time.Duration
	Downtime    time.Duration
	// ProbeEvery is the cadence of the direct lease-read probes sent to
	// both holders throughout the chaos phase.
	ProbeEvery time.Duration
	// ChaosClients/ChaosTx size the write load riding through the chaos
	// phase (acks must gate on the valid holder across the handover).
	ChaosClients int
	ChaosTx      int
	// AllocRuns is the testing.AllocsPerRun iteration count.
	AllocRuns int
	// Drain bounds the post-load quiesce window.
	Drain time.Duration
	// RingSize is the obs ring capacity.
	RingSize int
	// FlightDir, when non-empty, arms per-node flight recorders.
	FlightDir string
}

// DefaultReadPath is the paper-scale run.
func DefaultReadPath() ReadPathConfig {
	return ReadPathConfig{
		Clients: 6, OpsPer: 600, ReadPct: 95, Rows: 256,
		LeaseDur: 200 * time.Millisecond, MaxStale: 150 * time.Millisecond,
		Retry:    25 * time.Millisecond,
		Pipeline: 4, Alpha: 10,
		GroupEvery: 4, GroupDelay: 2 * time.Millisecond,
		Fsync:       store.SyncBatch,
		PartitionAt: 600 * time.Millisecond, DeposeAt: 700 * time.Millisecond,
		HealAt: 1600 * time.Millisecond, RestartAt: 1100 * time.Millisecond,
		Downtime: 120 * time.Millisecond, ProbeEvery: 5 * time.Millisecond,
		ChaosClients: 4, ChaosTx: 250,
		AllocRuns: 2000, Drain: time.Second, RingSize: 1 << 16,
	}
}

// QuickReadPath is the CI-sized run.
func QuickReadPath() ReadPathConfig {
	cfg := DefaultReadPath()
	cfg.Clients, cfg.OpsPer, cfg.Rows = 4, 200, 64
	cfg.ChaosClients, cfg.ChaosTx = 3, 100
	cfg.AllocRuns = 500
	cfg.RingSize = 1 << 15
	return cfg
}

// ReadPhase summarizes one measured load phase.
type ReadPhase struct {
	Mode     string
	Reads    int64
	Writes   int64
	Rejected int64
	Retries  int64
	// ReadsPerSec is the committed read throughput over the phase.
	ReadsPerSec float64
	ReadMeanMs  float64
	ReadP99Ms   float64
	WriteMeanMs float64
	Finished    int
	Clients     int
}

// ChaosPhase is the outcome of the lease-partition scenario.
type ChaosPhase struct {
	Committed int64
	Aborted   int64
	Finished  int
	Clients   int
	// OldServed counts lease reads the partitioned stale holder served
	// inside its remaining window; OldServedLast is its last serve, and
	// OldFenced that it stopped by PartitionAt+LeaseDur (plus margin) —
	// the two sides of the availability/safety tradeoff.
	OldServed     int64
	OldServedLast time.Duration
	OldFenced     bool
	// NewServed counts serves by the successor; HandoverAt is its first
	// (after the notBefore barrier).
	NewServed  int64
	HandoverAt time.Duration
	// Kills/Restarts count the rolling restart of the successor;
	// RestartRejected counts its post-restart rejections before a fresh
	// renewal re-opened serving at ReacquiredAt.
	Kills           int
	Restarts        int
	RestartRejected int64
	ReacquiredAt    time.Duration
	Reacquired      bool
	// Fingerprint hashes the injection log.
	Fingerprint uint64
}

// ReadPathResult is the certified outcome of one readpath run.
type ReadPathResult struct {
	Consensus ReadPhase
	Lease     ReadPhase
	Follower  ReadPhase
	// Speedup is lease-read throughput over consensus-read throughput
	// at the same mix; the acceptance bar is >= 2x.
	Speedup float64
	// ServeAllocs is allocations per steady-state lease-read serve
	// (must be zero); ApplyAllocs per ordered deposit apply.
	ServeAllocs float64
	ApplyAllocs float64
	// WAL counter deltas across the lease phase. WalAppends/WalFsyncs
	// span every store (replica journals plus the broadcast service's
	// sequencer journal, whose write-ahead contract forces a covering
	// fsync per delivery run); SMRAppends and GroupSyncs isolate the
	// replica hot path, where group commit makes a full pipeline window
	// of ack-bearing slots share one fsync and ack-free slots defer
	// theirs entirely.
	WalAppends     int64
	WalFsyncs      int64
	SMRAppends     int64
	GroupSyncs     int64
	AcksSuppressed int64
	Chaos          ChaosPhase
	// Events / Violations aggregate the online checker across all
	// phases.
	Events     int64
	Violations []dist.Violation
}

// Certified reports whether the run meets the readpath acceptance bar:
// every phase's clients finished, the steady-state serve loop
// allocates nothing, lease reads are at least twice as fast as
// consensus-path reads, the replica journal coalesces at least two
// appends per group-commit fsync, the chaos scenario played out end to
// end (stale holder served then fenced, successor took over after the
// barrier, and re-acquired only via a fresh renewal after its
// restart), and the checker stayed clean.
func (r ReadPathResult) Certified() bool {
	phases := r.Consensus.Finished == r.Consensus.Clients &&
		r.Lease.Finished == r.Lease.Clients &&
		r.Follower.Finished == r.Follower.Clients &&
		r.Lease.Reads > 0 && r.Follower.Reads > 0
	chaos := r.Chaos.Finished == r.Chaos.Clients &&
		r.Chaos.Kills == 1 && r.Chaos.Restarts == 1 &&
		r.Chaos.OldServed > 0 && r.Chaos.OldFenced &&
		r.Chaos.NewServed > 0 && r.Chaos.HandoverAt > 0 &&
		r.Chaos.Reacquired
	return phases && chaos &&
		r.ServeAllocs == 0 &&
		r.Speedup >= 2 &&
		r.GroupSyncs > 0 && r.GroupSyncs*2 <= r.SMRAppends &&
		len(r.Violations) == 0
}

// readpathInitial is the chaos epoch 0: r1 is the natural holder.
func readpathInitial() member.Config {
	return member.Config{
		Bcast:    []msg.Loc{"b1", "b2", "b3"},
		Replicas: []msg.Loc{"r1", "r2", "r3"},
	}
}

// readpathCluster is a durable lease-enabled SMR deployment. Unlike the
// membership experiment's shared view, every replica folds membership
// commands and renewals from its own delivery stream into its own
// epoch view — a partitioned replica's view genuinely goes stale.
type readpathCluster struct {
	*shadowCluster
	cfg  ReadPathConfig
	root string
	reg  core.Registry
	reps map[msg.Loc]*core.SMRReplica
	dbs  map[msg.Loc]*sqldb.DB
	sts  map[msg.Loc]store.Stable
	gen  map[msg.Loc]int
}

func newReadPathCluster(cfg ReadPathConfig, root string) *readpathCluster {
	sc := &shadowCluster{
		sim:   &des.Sim{},
		bloc:  []msg.Loc{"b1", "b2", "b3"},
		rloc:  []msg.Loc{"r1", "r2", "r3"},
		costs: Calibrate(),
	}
	sc.clu = des.NewCluster(sc.sim)
	sc.clu.Link = lanLink
	sc.clu.SizeOf = wireSize
	rc := &readpathCluster{
		shadowCluster: sc,
		cfg:           cfg,
		root:          root,
		reg:           core.BankRegistry(),
		reps:          make(map[msg.Loc]*core.SMRReplica),
		dbs:           make(map[msg.Loc]*sqldb.DB),
		sts:           make(map[msg.Loc]store.Stable),
		gen:           make(map[msg.Loc]int),
	}
	for _, l := range sc.rloc {
		rep := rc.buildReplica(l)
		sc.clu.AddCostedProcess(l, 1, rep, rc.costFn(l))
	}
	// The broadcast service keeps its own epoch view and a durable
	// decided-slot journal, so the sequencer's covering fsync (one per
	// contiguous delivery run) shows up in the WAL counters.
	bview := member.NewView(readpathInitial(), cfg.Alpha)
	sc.addBroadcast(broadcast.Config{
		Nodes:    sc.bloc,
		Pipeline: cfg.Pipeline,
		View:     bview,
		Stable:   rc.bcastStable(),
		Modules:  []broadcast.Module{broadcast.PaxosDynamic(cfg.Pipeline, nil, bview)},
	}, broadcast.Compiled)
	return rc
}

func (rc *readpathCluster) costFn(loc msg.Loc) func() time.Duration {
	return func() time.Duration { return rc.reps[loc].LastCost() + replicaOverhead }
}

func (rc *readpathCluster) bcastStable() func(msg.Loc) store.Stable {
	return func(loc msg.Loc) store.Stable {
		prov, err := store.NewDir(filepath.Join(rc.root, string(loc)), rc.cfg.Fsync)
		if err != nil {
			panic(fmt.Sprintf("bench: readpath bcast store: %v", err))
		}
		st, err := prov.Open("bcast")
		if err != nil {
			panic(fmt.Sprintf("bench: readpath bcast store: %v", err))
		}
		return st
	}
}

// buildReplica opens loc's store and database and constructs a durable,
// lease-enabled replica over them with its own epoch view. A rebuilt
// incarnation recovers state (and its view) from its journal, but its
// lease state starts empty — leases are volatile by design.
func (rc *readpathCluster) buildReplica(loc msg.Loc) *core.SMRReplica {
	prov, err := store.NewDir(filepath.Join(rc.root, string(loc)), rc.cfg.Fsync)
	if err != nil {
		panic(fmt.Sprintf("bench: readpath store: %v", err))
	}
	st, err := prov.Open("smr")
	if err != nil {
		panic(fmt.Sprintf("bench: readpath store: %v", err))
	}
	rc.gen[loc]++
	db, err := sqldb.Open(fmt.Sprintf("h2:mem:%s-g%d", loc, rc.gen[loc]))
	if err != nil {
		panic(err)
	}
	if err := core.BankSetup(db, rc.cfg.Rows); err != nil {
		panic(err)
	}
	rep, err := core.NewDurableSMRReplica(loc, db, rc.reg, st, nil)
	if err != nil {
		panic(fmt.Sprintf("bench: readpath replica %s: %v", loc, err))
	}
	rep.SetView(member.NewView(readpathInitial(), rc.cfg.Alpha))
	rep.Executor().Fast = core.BankFastRegistry()
	rep.EnableLease(core.LeaseConfig{
		Dur: rc.cfg.LeaseDur, MaxStale: rc.cfg.MaxStale,
		Bcast: "b1", Now: rc.sim.Now,
	}, core.BankReadRegistry())
	if rc.cfg.GroupEvery > 1 {
		rep.SetGroupCommit(rc.cfg.GroupEvery, rc.cfg.GroupDelay)
	}
	rc.reps[loc], rc.dbs[loc], rc.sts[loc] = rep, db, st
	return rep
}

// restartReplica rebuilds loc over its surviving store and rebinds it.
func (rc *readpathCluster) restartReplica(loc msg.Loc) *core.SMRReplica {
	rep := rc.buildReplica(loc)
	var proc gpm.Process = rep
	cost := rc.costFn(loc)
	rc.clu.Node(loc).RebindCosted(func(env des.Envelope) ([]msg.Directive, time.Duration) {
		next, outs := proc.Step(env.M)
		proc = next
		return outs, cost()
	})
	return rep
}

// startLeases injects every replica's initial renewal-timer tick.
func (rc *readpathCluster) startLeases() {
	for _, l := range rc.rloc {
		loc := l
		for _, d := range rc.reps[loc].LeaseDirectives() {
			rc.clu.SendAfter(d.Delay, loc, d.Dest, d.M)
		}
	}
}

// readMixStats aggregates what the mixed-load fleet observed.
type readMixStats struct {
	reads    int64
	writes   int64
	readLat  des.LatencyRecorder
	writeLat des.LatencyRecorder
	finished int
	lastDone time.Duration
}

// readMixClients attaches n closed-loop clients running a ReadPct/…
// read/write mix. In consensus mode reads are ordered transactions
// ("balance" through Submit); otherwise they are local reads in the
// given mode against target(i), retried on rejection.
func readMixClients(clu *des.Cluster, st *readMixStats, cfg ReadPathConfig,
	consensus bool, mode core.ReadMode, target func(i int) msg.Loc) []*core.Client {
	rloc := []msg.Loc{"r1", "r2", "r3"}
	bloc := []msg.Loc{"b1", "b2", "b3"}
	clients := make([]*core.Client, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		loc := msg.Loc(fmt.Sprintf("client%d", i))
		cli := &core.Client{Slf: loc, Mode: core.ModeSMR, Replicas: rloc, BcastNodes: bloc, Retry: cfg.Retry}
		clients[i] = cli
		rng := rand.New(rand.NewSource(int64(i)*7919 + 17))
		remaining := cfg.OpsPer
		var started time.Duration
		var wasRead bool
		sim := clu.Sim
		submit := func() []msg.Directive {
			started = sim.Now()
			wasRead = rng.Intn(100) < cfg.ReadPct
			if !wasRead {
				return cli.Submit("deposit", []any{int64(rng.Intn(cfg.Rows)), int64(1)})
			}
			args := []any{int64(rng.Intn(cfg.Rows))}
			if consensus {
				return cli.Submit("balance", args)
			}
			return cli.SubmitRead("balance", args, mode, target(i))
		}
		done := func(outs []msg.Directive, lat time.Duration) []msg.Directive {
			if wasRead {
				st.reads++
				st.readLat.Add(lat)
			} else {
				st.writes++
				st.writeLat.Add(lat)
			}
			st.lastDone = sim.Now()
			remaining--
			if remaining <= 0 {
				st.finished++
				return outs
			}
			return append(outs, submit()...)
		}
		clu.AddNode(loc, 1, nil, func(env des.Envelope) []msg.Directive {
			res, outs := cli.Handle(env.M)
			if res != nil {
				return done(outs, sim.Now()-started)
			}
			if rr := cli.TakeRead(); rr != nil {
				lat := sim.Now() - started
				core.ReleaseReadResult(rr)
				return done(outs, lat)
			}
			return outs
		})
		sim.After(0, func() {
			for _, d := range submit() {
				clu.SendAfter(d.Delay, loc, d.Dest, d.M)
			}
		})
	}
	return clients
}

// readpathPhase runs one measured load phase on a fresh cluster.
func readpathPhase(cfg ReadPathConfig, label string, consensus bool,
	mode core.ReadMode, target func(i int) msg.Loc) (ReadPhase, []dist.Violation, int64) {
	root, err := os.MkdirTemp("", "shadowdb-readpath-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)
	rc := newReadPathCluster(cfg, root)
	sim := rc.sim

	o := obs.New(cfg.RingSize)
	rc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.SetMembership(readpathInitial(), cfg.Alpha)
	checker.SetLease(cfg.LeaseDur, cfg.MaxStale)
	checker.Watch(o)
	dumpFlight := flightFleet(cfg.FlightDir, "readpath-"+label, o, checker,
		append(append([]msg.Loc{}, rc.rloc...), rc.bloc...))

	st := &readMixStats{}
	clients := readMixClients(rc.clu, st, cfg, consensus, mode, target)
	rc.startLeases()

	// Lease ticks re-arm forever, so the sim never idles: drive on the
	// fleet's completion with a step-count backstop.
	for st.finished < cfg.Clients && !sim.Idle() && sim.Steps() < 80_000_000 {
		sim.Run(0, 100_000)
	}
	sim.Run(cfg.Drain, 20_000_000)

	ph := ReadPhase{
		Mode: label, Reads: st.reads, Writes: st.writes,
		Finished: st.finished, Clients: cfg.Clients,
	}
	elapsed := st.lastDone
	if elapsed <= 0 {
		elapsed = time.Second
	}
	ph.ReadsPerSec = des.Throughput(int(st.reads), elapsed)
	ph.ReadMeanMs = float64(st.readLat.Mean()) / float64(time.Millisecond)
	ph.ReadP99Ms = float64(st.readLat.Percentile(99)) / float64(time.Millisecond)
	ph.WriteMeanMs = float64(st.writeLat.Mean()) / float64(time.Millisecond)
	for _, c := range clients {
		ph.Rejected += c.ReadsRejected
		ph.Retries += c.Retries
	}
	vs := checker.Violations()
	if len(vs) > 0 {
		dumpFlight("violations")
	}
	return ph, vs, checker.Status().Events
}

// readpathChaos runs the lease-partition scenario.
func readpathChaos(cfg ReadPathConfig) (ChaosPhase, []dist.Violation, int64) {
	root, err := os.MkdirTemp("", "shadowdb-readpath-chaos-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)
	rc := newReadPathCluster(cfg, root)
	sim := rc.sim

	o := obs.New(cfg.RingSize)
	rc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.SetMembership(readpathInitial(), cfg.Alpha)
	checker.SetLease(cfg.LeaseDur, cfg.MaxStale)
	checker.Watch(o)
	dumpFlight := flightFleet(cfg.FlightDir, "readpath-chaos", o, checker,
		append(append([]msg.Loc{}, rc.rloc...), rc.bloc...))

	ch := ChaosPhase{Clients: cfg.ChaosClients}

	// Writers ride through the whole schedule: their acks must gate on
	// whichever replica holds a valid lease at the time.
	stats := &loadStats{}
	work := func(i int) Workload { return MicroWorkload(cfg.Rows, int64(i)*31337) }
	shadowClients(rc.clu, stats, cfg.ChaosClients, cfg.ChaosTx, core.ModeSMR,
		[]msg.Loc{"r1", "r2", "r3"}, []msg.Loc{"b1", "b2", "b3"}, cfg.Retry, work)

	// Probes send lease reads straight to both holders throughout; the
	// probe node is deliberately NOT in the partition, so the stale
	// holder stays reachable by clients while cut from the order.
	probe := msg.Loc("probe")
	probeUntil := cfg.HealAt
	if t := cfg.RestartAt + cfg.Downtime; t > probeUntil {
		probeUntil = t
	}
	probeUntil += 500 * time.Millisecond
	var pseq int64
	targets := make(map[int64]msg.Loc)
	rc.clu.AddNode(probe, 1, nil, func(env des.Envelope) []msg.Directive {
		res, ok := env.M.Body.(*core.ReadResult)
		if !ok {
			return nil
		}
		tgt := targets[res.Seq]
		delete(targets, res.Seq)
		now := sim.Now()
		switch {
		case tgt == "r1" && !res.Rejected:
			if now > cfg.PartitionAt+time.Millisecond {
				ch.OldServed++
			}
			if now > ch.OldServedLast {
				ch.OldServedLast = now
			}
		case tgt == "r2" && !res.Rejected:
			ch.NewServed++
			if ch.HandoverAt == 0 {
				ch.HandoverAt = now
			}
			if now > cfg.RestartAt+cfg.Downtime && ch.ReacquiredAt == 0 {
				ch.ReacquiredAt = now
			}
		case tgt == "r2" && res.Rejected:
			if now > cfg.RestartAt+cfg.Downtime && ch.ReacquiredAt == 0 {
				ch.RestartRejected++
			}
		}
		core.ReleaseReadResult(res)
		return nil
	})
	var probeTick func()
	probeTick = func() {
		if sim.Now() > probeUntil {
			return
		}
		for _, tgt := range []msg.Loc{"r1", "r2"} {
			pseq++
			targets[pseq] = tgt
			rc.clu.SendAfter(0, probe, tgt, msg.M(core.HdrRead, core.ReadRequest{
				Client: probe, Seq: pseq, Type: "balance",
				Args: []any{int64(1)}, Mode: core.ReadLease,
			}))
		}
		sim.After(cfg.ProbeEvery, probeTick)
	}
	sim.After(0, probeTick)

	// The ordered depose: epoch 1 makes r2 the natural holder. The
	// partitioned r1 never applies it — its lease dies by expiry.
	admin := msg.Loc("admin")
	rc.clu.AddNode(admin, 1, nil, func(des.Envelope) []msg.Directive { return nil })
	sim.After(cfg.DeposeAt, func() {
		cmd := member.Command{Op: member.RemoveReplica, Node: "r1"}
		rc.clu.SendAfter(0, admin, "b1", msg.M(broadcast.HdrBcast,
			broadcast.Bcast{From: admin, Seq: 1, Payload: member.EncodeCommand(cmd)}))
	})

	// The injection plan: partition r1 from the order (not the probes),
	// and crash-restart the successor r2 after it has taken over.
	inj := fault.BindProcess(rc.clu, fault.Plan{
		Partitions: []fault.Partition{{
			From: fault.Duration(cfg.PartitionAt), To: fault.Duration(cfg.HealAt),
			A: []msg.Loc{"r1"}, B: []msg.Loc{"b1", "b2", "b3", "r2", "r3"},
			Symmetric: true,
		}},
		Rolling: []fault.Rolling{{
			StartAt:  fault.Duration(cfg.RestartAt),
			Nodes:    []msg.Loc{"r2"},
			Downtime: fault.Duration(cfg.Downtime),
		}},
	}, fault.ProcessHooks{
		Kill: func(node msg.Loc) {
			ch.Kills++
			_ = rc.sts[node].Close()
		},
		DataDir: func(node msg.Loc) string {
			return filepath.Join(root, string(node))
		},
		Restart: func(node msg.Loc) {
			ch.Restarts++
			rep := rc.restartReplica(node)
			checker.NoteRestart(node)
			sim.After(0, func() {
				outs := rep.RecoveryDirectives()
				outs = append(outs, rep.LeaseDirectives()...)
				for _, d := range outs {
					rc.clu.SendAfter(d.Delay, node, d.Dest, d.M)
				}
			})
		},
	})
	inj.SetObs(o)
	rc.startLeases()

	runToFinish(sim, stats, cfg.ChaosClients)
	// Keep the sim alive through the probe window even if the writers
	// finished early, then quiesce.
	if left := probeUntil + 100*time.Millisecond - sim.Now(); left > 0 {
		sim.Run(left, 20_000_000)
	}
	sim.Run(cfg.Drain, 20_000_000)

	ch.Committed, ch.Aborted, ch.Finished = stats.committed, stats.aborted, stats.finished
	ch.OldFenced = ch.OldServedLast > 0 &&
		ch.OldServedLast <= cfg.PartitionAt+cfg.LeaseDur+5*time.Millisecond
	ch.Reacquired = ch.ReacquiredAt > 0
	ch.Fingerprint = inj.Fingerprint()
	vs := checker.Violations()
	if len(vs) > 0 || ch.Kills != 1 || ch.Restarts != 1 || !ch.Reacquired {
		dumpFlight("uncertified")
	}
	return ch, vs, checker.Status().Events
}

// MeasureReadAllocs pins the hot-path allocation budget outside the
// simulation: allocations per steady-state lease-read serve (the
// acceptance bar is zero — pooled results, reused directive buffer,
// scratch-key point lookups) and per ordered deposit apply, measured
// at a non-holder so the pure apply path is isolated from ack fan-out.
// readpath_bench_test.go gates both against a committed baseline.
func MeasureReadAllocs(runs int) (serve, apply float64) {
	mk := func(loc msg.Loc) *core.SMRReplica {
		db, err := sqldb.Open("h2:mem:readpath-alloc-" + string(loc))
		if err != nil {
			panic(err)
		}
		if err := core.BankSetup(db, 64); err != nil {
			panic(err)
		}
		rep := core.NewSMRReplica(loc, db, core.BankRegistry())
		rep.Executor().Fast = core.BankFastRegistry()
		rep.SetView(member.NewView(readpathInitial(), 8))
		rep.EnableLease(core.LeaseConfig{
			Dur: time.Hour, MaxStale: time.Hour, Bcast: "b1",
			Now: func() time.Duration { return time.Second },
		}, core.BankReadRegistry())
		rep.Step(msg.M(broadcast.HdrDeliver, broadcast.Deliver{Slot: 0,
			Msgs: []broadcast.Bcast{{From: "r1", Seq: 1,
				Payload: core.EncodeLease(core.LeaseRenewal{Epoch: 0, Holder: "r1", Issue: time.Second, Seq: 1})}}}))
		return rep
	}

	holder := mk("r1")
	read := msg.M(core.HdrRead, core.ReadRequest{
		Client: "probe", Seq: 1, Type: "balance",
		Args: []any{int64(1)}, Mode: core.ReadLease,
	})
	for i := 0; i < 64; i++ { // warm the result pool and scratch buffers
		_, outs := holder.Step(read)
		core.ReleaseReadResult(outs[0].M.Body.(*core.ReadResult))
	}
	serve = testing.AllocsPerRun(runs, func() {
		_, outs := holder.Step(read)
		core.ReleaseReadResult(outs[0].M.Body.(*core.ReadResult))
	})

	follower := mk("r2")
	warm := 64
	total := runs + warm + 1 // AllocsPerRun runs f once extra to warm up
	msgs := make([]msg.Msg, total)
	for i := range msgs {
		pay, err := core.EncodeTx(core.TxRequest{
			Client: "c0", Seq: int64(i + 1), Type: "deposit",
			Args: []any{int64(1), int64(1)},
		})
		if err != nil {
			panic(err)
		}
		msgs[i] = msg.M(broadcast.HdrDeliver, broadcast.Deliver{Slot: i + 1,
			Msgs: []broadcast.Bcast{{From: "c0", Seq: int64(i + 1), Payload: pay}}})
	}
	n := 0
	for ; n < warm; n++ {
		follower.Step(msgs[n])
	}
	apply = testing.AllocsPerRun(runs, func() {
		follower.Step(msgs[n])
		n++
	})
	return serve, apply
}

// ReadPath runs the full experiment: alloc profile, three measured
// phases, and the chaos scenario.
func ReadPath(cfg ReadPathConfig) ReadPathResult {
	var res ReadPathResult
	res.ServeAllocs, res.ApplyAllocs = MeasureReadAllocs(cfg.AllocRuns)

	var vs []dist.Violation
	var ev int64
	res.Consensus, vs, ev = readpathPhase(cfg, "consensus", true, 0, nil)
	res.Violations = append(res.Violations, vs...)
	res.Events += ev

	appends0 := obs.C("store.wal.appends").Value()
	fsyncs0 := obs.C("store.wal.fsyncs").Value()
	smrAppends0 := obs.C("core.smr.journal_appends").Value()
	group0 := obs.C("core.smr.group_syncs").Value()
	supp0 := obs.C("core.smr.acks_suppressed").Value()
	res.Lease, vs, ev = readpathPhase(cfg, "lease", false, core.ReadLease,
		func(int) msg.Loc { return "r1" })
	res.Violations = append(res.Violations, vs...)
	res.Events += ev
	res.WalAppends = obs.C("store.wal.appends").Value() - appends0
	res.WalFsyncs = obs.C("store.wal.fsyncs").Value() - fsyncs0
	res.SMRAppends = obs.C("core.smr.journal_appends").Value() - smrAppends0
	res.GroupSyncs = obs.C("core.smr.group_syncs").Value() - group0
	res.AcksSuppressed = obs.C("core.smr.acks_suppressed").Value() - supp0

	res.Follower, vs, ev = readpathPhase(cfg, "follower", false, core.ReadFollower,
		func(i int) msg.Loc {
			if i%2 == 0 {
				return "r2"
			}
			return "r3"
		})
	res.Violations = append(res.Violations, vs...)
	res.Events += ev

	res.Chaos, vs, ev = readpathChaos(cfg)
	res.Violations = append(res.Violations, vs...)
	res.Events += ev

	if res.Consensus.ReadsPerSec > 0 {
		res.Speedup = res.Lease.ReadsPerSec / res.Consensus.ReadsPerSec
	}
	return res
}

// ReportReadPath flattens the experiment for BENCH_readpath.json.
func ReportReadPath(res ReadPathResult, quick bool) *Report {
	r := NewReport("readpath", quick)
	phase := func(p ReadPhase) {
		r.Add("readpath."+p.Mode+".reads", float64(p.Reads), "count")
		r.Add("readpath."+p.Mode+".writes", float64(p.Writes), "count")
		r.Add("readpath."+p.Mode+".rejected", float64(p.Rejected), "count")
		r.Add("readpath."+p.Mode+".reads_per_sec", p.ReadsPerSec, "tx/s")
		r.Add("readpath."+p.Mode+".read_mean", p.ReadMeanMs, "ms")
		r.Add("readpath."+p.Mode+".read_p99", p.ReadP99Ms, "ms")
		r.Add("readpath."+p.Mode+".finished", float64(p.Finished), "count")
	}
	phase(res.Consensus)
	phase(res.Lease)
	phase(res.Follower)
	r.Add("readpath.speedup", res.Speedup, "x")
	r.Add("readpath.serve_allocs_per_op", res.ServeAllocs, "allocs")
	r.Add("readpath.apply_allocs_per_op", res.ApplyAllocs, "allocs")
	r.Add("readpath.wal_appends", float64(res.WalAppends), "count")
	r.Add("readpath.smr_appends", float64(res.SMRAppends), "count")
	r.Add("readpath.wal_fsyncs", float64(res.WalFsyncs), "count")
	r.Add("readpath.group_syncs", float64(res.GroupSyncs), "count")
	r.Add("readpath.acks_suppressed", float64(res.AcksSuppressed), "count")
	r.Add("readpath.chaos.committed", float64(res.Chaos.Committed), "count")
	r.Add("readpath.chaos.finished", float64(res.Chaos.Finished), "count")
	r.Add("readpath.chaos.old_served", float64(res.Chaos.OldServed), "count")
	r.Add("readpath.chaos.old_fenced", b2f(res.Chaos.OldFenced), "bool")
	r.Add("readpath.chaos.new_served", float64(res.Chaos.NewServed), "count")
	r.Add("readpath.chaos.handover_at", res.Chaos.HandoverAt.Seconds(), "s")
	r.Add("readpath.chaos.kills", float64(res.Chaos.Kills), "count")
	r.Add("readpath.chaos.restarts", float64(res.Chaos.Restarts), "count")
	r.Add("readpath.chaos.restart_rejected", float64(res.Chaos.RestartRejected), "count")
	r.Add("readpath.chaos.reacquired", b2f(res.Chaos.Reacquired), "bool")
	r.Add("readpath.checker.events", float64(res.Events), "count")
	r.Add("readpath.checker.violations", float64(len(res.Violations)), "count")
	r.Add("readpath.certified", b2f(res.Certified()), "bool")
	return r
}

// RenderReadPath prints the human-readable summary.
func RenderReadPath(w io.Writer, res ReadPathResult) {
	fmt.Fprintln(w, "Readpath — zero-allocation hot path with lease-based local reads (virtual time, real WAL)")
	fmt.Fprintf(w, "  allocs/op: serve %.1f (bar: 0), apply %.1f\n", res.ServeAllocs, res.ApplyAllocs)
	p := func(ph ReadPhase) {
		fmt.Fprintf(w, "  %-9s reads: %6d at %9.0f/s (mean %.3fms, p99 %.3fms, %d rejected)   writes: %d (mean %.3fms)   finished %d/%d\n",
			ph.Mode, ph.Reads, ph.ReadsPerSec, ph.ReadMeanMs, ph.ReadP99Ms, ph.Rejected,
			ph.Writes, ph.WriteMeanMs, ph.Finished, ph.Clients)
	}
	p(res.Consensus)
	p(res.Lease)
	p(res.Follower)
	fmt.Fprintf(w, "  lease vs consensus read throughput: %.2fx (bar: 2x)\n", res.Speedup)
	fmt.Fprintf(w, "  fsync batching (lease phase): %d replica appends share %d group syncs (%d WAL appends, %d fsyncs cluster-wide), %d acks gated to holder\n",
		res.SMRAppends, res.GroupSyncs, res.WalAppends, res.WalFsyncs, res.AcksSuppressed)
	ch := res.Chaos
	fmt.Fprintf(w, "  chaos: committed %d (%d aborted), finished %d/%d, nemesis fingerprint %#x\n",
		ch.Committed, ch.Aborted, ch.Finished, ch.Clients, ch.Fingerprint)
	fmt.Fprintf(w, "    stale holder served %d reads in its window, last at %.3fs, fenced by expiry: %v\n",
		ch.OldServed, ch.OldServedLast.Seconds(), ch.OldFenced)
	fmt.Fprintf(w, "    successor served %d (first at %.3fs after the notBefore barrier)\n",
		ch.NewServed, ch.HandoverAt.Seconds())
	fmt.Fprintf(w, "    restart: %d kill, %d restart, %d rejections before re-acquiring at %.3fs (volatile lease): %v\n",
		ch.Kills, ch.Restarts, ch.RestartRejected, ch.ReacquiredAt.Seconds(), ch.Reacquired)
	fmt.Fprintf(w, "  checker: %d events, %d violations   certified: %v\n",
		res.Events, len(res.Violations), res.Certified())
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  VIOLATION: %v\n", v)
	}
}
