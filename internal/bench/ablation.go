package bench

import (
	"fmt"
	"io"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/sqldb"
)

// Ablations for the design choices DESIGN.md calls out: how much of the
// broadcast service's throughput comes from batching ("All versions of
// the broadcast service implement batching"), and how much of PBR's
// recovery hinges on the state-transfer overlap optimization (resuming
// with one recovered backup instead of waiting for all).

// AblationResult compares a design choice on/off.
type AblationResult struct {
	Name    string
	WithOn  float64
	WithOff float64
	Unit    string
}

// String renders the ablation row.
func (a AblationResult) String() string {
	return fmt.Sprintf("%-32s on=%10.1f %-6s off=%10.1f %-6s (%.2fx)",
		a.Name, a.WithOn, a.Unit, a.WithOff, a.Unit, safeRatio(a.WithOn, a.WithOff))
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// AblationBatching measures SMR micro-benchmark throughput with the
// broadcast service batching freely vs restricted to one message per
// proposal.
func AblationBatching(clients, txPer, rows int) AblationResult {
	run := func(maxBatch int) float64 {
		setup := func(db *sqldb.DB) error { return core.BankSetup(db, rows) }
		sc := newSMRClusterOpts([]string{"h2", "h2", "h2"}, core.BankRegistry(), setup, maxBatch)
		stats := &loadStats{}
		work := func(i int) Workload { return MicroWorkload(rows, int64(i)*101) }
		shadowClients(sc.clu, stats, clients, txPer, core.ModeSMR, sc.rloc, sc.bloc, 10*time.Second, work)
		runToFinish(sc.sim, stats, clients)
		return stats.point(clients).Throughput
	}
	return AblationResult{
		Name:    "broadcast batching (SMR micro)",
		WithOn:  run(0), // unbounded batches
		WithOff: run(1), // one message per proposal
		Unit:    "tps",
	}
}

// AblationOverlap measures PBR recovery time with and without the
// overlap optimization by comparing a 3-member recovery (overlap applies:
// resume after the first recovered backup) against one forced to wait for
// every backup.
func AblationOverlap(rows int) AblationResult {
	measure := func(members int) float64 {
		timing := core.Timing{
			HeartbeatEvery: 100 * time.Millisecond,
			SuspectAfter:   time.Second,
			ClientRetry:    500 * time.Millisecond,
		}
		setup := func(db *sqldb.DB) error { return core.BankSetup(db, rows) }
		engines := []string{"h2", "h2", "h2", "h2"}[:members+1]
		sc := newPBRClusterOpts(engines, rows, timing, core.BankRegistry(), setup, false, members)
		stats := &loadStats{}
		work := func(i int) Workload { return MicroWorkload(rows, int64(i)) }
		shadowClients(sc.clu, stats, 2, 1<<30, core.ModePBR, sc.rloc, sc.bloc, 500*time.Millisecond, work)
		sc.sim.After(2*time.Second, func() { sc.clu.Node("r1").Crash() })

		r2 := sc.pbr.Replicas["r2"]
		configAt, resumed := -1.0, -1.0
		var poll func()
		poll = func() {
			if configAt < 0 && r2.ConfigNow().Seq > 0 {
				configAt = sc.sim.Now().Seconds()
			}
			if configAt >= 0 && resumed < 0 && r2.IsPrimary() && !r2.Stopped() {
				resumed = sc.sim.Now().Seconds()
				return
			}
			sc.sim.After(5*time.Millisecond, poll)
		}
		sc.sim.After(0, poll)
		for resumed < 0 && sc.sim.Steps() < 80_000_000 && !sc.sim.Idle() {
			sc.sim.Run(0, 100_000)
		}
		if resumed < 0 || configAt < 0 {
			return -1
		}
		// The interesting window is reconfiguration-to-resume: detection
		// time is identical in both variants (and jittery), so exclude it.
		return resumed - configAt
	}
	return AblationResult{
		Name:    "state-transfer overlap (PBR recovery)",
		WithOn:  measure(3), // 4 replicas: overlap lets the primary resume early
		WithOff: measure(2), // 3 replicas: must wait for the single fresh spare
		Unit:    "sec",
	}
}

// RenderAblations prints the ablation rows.
func RenderAblations(w io.Writer, rows []AblationResult) {
	fmt.Fprintln(w, "Ablations — design choices of DESIGN.md")
	for _, r := range rows {
		fmt.Fprintln(w, " ", r)
	}
}
