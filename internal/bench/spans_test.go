package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpansExperiment(t *testing.T) {
	cfg := QuickSpans()
	res := Spans(cfg)
	if len(res.Violations) != 0 {
		t.Fatalf("online checker flagged the bench workload: %v", res.Violations)
	}
	want := cfg.Clients * cfg.TxPer
	if res.Complete < want {
		t.Fatalf("%d complete spans, want >= %d (of %d)", res.Complete, want, res.Spans)
	}
	if res.Events == 0 {
		t.Fatal("checker consumed no events")
	}
	if res.RingGaps != 0 {
		t.Fatalf("ring overflowed (%d events lost); raise RingSize", res.RingGaps)
	}
	for _, seg := range []string{"broadcast", "consensus", "apply", "total"} {
		st := res.Segments[seg]
		if st.Count < want {
			t.Errorf("segment %s count = %d, want >= %d", seg, st.Count, want)
		}
		if seg != "apply" && st.Mean <= 0 {
			t.Errorf("segment %s mean = %d, want > 0", seg, st.Mean)
		}
	}
	// Consensus must account for at most the total.
	if res.Segments["consensus"].Mean > res.Segments["total"].Mean {
		t.Errorf("consensus mean %d exceeds total mean %d",
			res.Segments["consensus"].Mean, res.Segments["total"].Mean)
	}

	var buf bytes.Buffer
	RenderSpans(&buf, res)
	if !strings.Contains(buf.String(), "consensus") {
		t.Errorf("render missing segment table:\n%s", buf.String())
	}
}

func TestWriteReport(t *testing.T) {
	dir := t.TempDir()
	r := NewReport("unit", true)
	r.Add("unit.x", 1.5, "ms")
	r.Add("unit.y", 42, "count")
	path, err := WriteReport(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_unit.json" {
		t.Fatalf("wrote %s, want BENCH_unit.json", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if got.Name != "unit" || !got.Quick || len(got.Metrics) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Metrics[0].Name != "unit.x" || got.Metrics[0].Value != 1.5 || got.Metrics[0].Unit != "ms" {
		t.Fatalf("metric mismatch: %+v", got.Metrics[0])
	}
	if got.Timestamp == "" {
		t.Error("timestamp missing")
	}
	// Inside this repo the SHA should resolve to 40 hex chars.
	if sha := GitSHA(); sha != "" && len(sha) != 40 {
		t.Errorf("GitSHA() = %q", sha)
	}
}
