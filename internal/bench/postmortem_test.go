package bench

import (
	"strings"
	"testing"
)

// TestPostmortemQuick runs the full flight-recorder loop at test scale:
// forged violation → per-node bundle dumps → causal merge → offline
// re-detection via the bridge.
func TestPostmortemQuick(t *testing.T) {
	cfg := QuickPostmortem()
	cfg.Dir = t.TempDir()
	res, err := Postmortem(cfg)
	if err != nil {
		t.Fatalf("postmortem: %v", err)
	}
	if res.Committed == 0 {
		t.Fatal("no commits — the forgery must not stall the system")
	}
	if len(res.Violations) == 0 {
		t.Fatal("forged slot-0 delivery was not flagged by the online checker")
	}
	sawTotalOrder := false
	for _, v := range res.Violations {
		if v.Property == "broadcast/total-order" {
			sawTotalOrder = true
		}
	}
	if !sawTotalOrder {
		t.Fatalf("expected a broadcast/total-order violation, got %v", res.Violations)
	}
	if len(res.Bundles) != res.Nodes {
		t.Fatalf("bundles on %d of %d nodes: %v", len(res.Bundles), res.Nodes, res.Bundles)
	}
	if !res.TimelineOrdered {
		t.Fatal("merged timeline is not causally ordered")
	}
	if res.TimelineLen == 0 {
		t.Fatal("merged timeline is empty")
	}
	if !res.ForgedInTimeline {
		t.Fatal("forged delivery missing from the merged timeline")
	}
	if !res.ReplayDetected {
		t.Fatal("bridge replay over the bundles did not re-detect the violation")
	}
	if !strings.Contains(res.ReplayErr, "total-order") {
		t.Fatalf("replay error does not name total-order: %s", res.ReplayErr)
	}
	if !res.Certified() {
		t.Fatal("result not certified despite all checks passing")
	}
}
