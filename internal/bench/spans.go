package bench

import (
	"fmt"
	"io"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
)

// The spans experiment: run the SMR micro-benchmark on the simulator
// with tracing on, the online checker subscribed to the live event
// stream, and the causal collector reconstructing per-request spans. It
// produces the per-segment latency breakdown (broadcast / consensus /
// apply) the admin endpoint exposes on live nodes — measured here in
// virtual time, so the split is deterministic — and certifies the run:
// a workload that violates total order, delivery order, consensus
// safety, or durability fails the experiment.

// SpanConfig scales the experiment.
type SpanConfig struct {
	Clients  int
	TxPer    int
	Rows     int
	RingSize int
}

// DefaultSpans is the standard scale.
func DefaultSpans() SpanConfig {
	return SpanConfig{Clients: 8, TxPer: 50, Rows: 5_000, RingSize: 1 << 16}
}

// QuickSpans keeps tests fast.
func QuickSpans() SpanConfig {
	return SpanConfig{Clients: 4, TxPer: 10, Rows: 500, RingSize: 1 << 14}
}

// SpanResult is the experiment outcome.
type SpanResult struct {
	// Segments is the per-segment latency summary (virtual nanoseconds).
	Segments map[string]dist.SegmentStats
	// Spans is the number of reconstructed request spans; Complete how
	// many had every stage on record.
	Spans, Complete int
	// Events is the number of trace events the online checker consumed.
	Events int64
	// Violations are the property violations the online checker flagged
	// (must be empty for a correct build).
	Violations []dist.Violation
	// RingGaps is the count of events lost to ring overflow (0 means the
	// trace was complete).
	RingGaps int64
}

// Spans runs the experiment.
func Spans(cfg SpanConfig) SpanResult {
	sc := newSMRCluster([]string{"h2", "h2", "h2"}, core.BankRegistry(),
		func(db *sqldb.DB) error { return core.BankSetup(db, cfg.Rows) })

	// Dedicated Obs on the simulator's virtual clock; the online checker
	// subscribes to the live stream before any load runs.
	o := obs.New(cfg.RingSize)
	sc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.Watch(o)

	stats := &loadStats{}
	shadowClients(sc.clu, stats, cfg.Clients, cfg.TxPer, core.ModeSMR,
		nil, sc.bloc, 5*time.Second,
		func(i int) Workload { return MicroWorkload(cfg.Rows, int64(1000+i)) })

	for stats.finished < cfg.Clients && !sc.sim.Idle() && sc.sim.Steps() < 50_000_000 {
		sc.sim.Run(0, 100_000)
	}
	if stats.finished < cfg.Clients {
		panic(fmt.Sprintf("bench: spans workload stalled: %d/%d clients finished",
			stats.finished, cfg.Clients))
	}

	// Collect the (single, cluster-wide) ring and rebuild request spans.
	c := dist.NewCollector()
	c.Gather(map[string]*obs.Obs{"sim": o})
	r := c.Collect()

	res := SpanResult{
		Segments:   r.Segments,
		Spans:      len(r.Spans),
		Events:     checker.Status().Events,
		Violations: checker.Violations(),
	}
	for _, g := range r.Gaps {
		res.RingGaps += g
	}
	for _, s := range r.Spans {
		if s.Breakdown().Complete {
			res.Complete++
		}
	}
	// Feed the span histograms so an -admin run exposes the breakdown on
	// /metrics like a live node would.
	dist.RecordSpans(obs.Default, r.Spans)
	return res
}

// ReportSpans flattens the experiment for BENCH_spans.json.
func ReportSpans(res SpanResult, quick bool) *Report {
	r := NewReport("spans", quick)
	r.Add("spans.count", float64(res.Spans), "count")
	r.Add("spans.complete", float64(res.Complete), "count")
	r.Add("spans.checker.events", float64(res.Events), "count")
	r.Add("spans.checker.violations", float64(len(res.Violations)), "count")
	r.Add("spans.ring_gaps", float64(res.RingGaps), "count")
	for _, seg := range []string{"broadcast", "consensus", "apply", "total"} {
		st := res.Segments[seg]
		pre := "spans." + seg + "."
		r.Add(pre+"mean", float64(st.Mean), "ns")
		r.Add(pre+"p50", float64(st.P50), "ns")
		r.Add(pre+"p99", float64(st.P99), "ns")
		r.Add(pre+"max", float64(st.Max), "ns")
	}
	return r
}

// RenderSpans prints the human-readable table.
func RenderSpans(w io.Writer, res SpanResult) {
	fmt.Fprintln(w, "Per-request span breakdown — SMR micro-benchmark (virtual time)")
	fmt.Fprintf(w, "  spans: %d (%d complete)   checker: %d events, %d violations   ring gaps: %d\n",
		res.Spans, res.Complete, res.Events, len(res.Violations), res.RingGaps)
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %10s\n", "segment", "mean", "p50", "p99", "max")
	for _, seg := range []string{"broadcast", "consensus", "apply", "total"} {
		st := res.Segments[seg]
		fmt.Fprintf(w, "  %-10s %10s %10s %10s %10s\n", seg,
			ms(st.Mean), ms(st.P50), ms(st.P99), ms(st.Max))
	}
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  VIOLATION: %v\n", v)
	}
}

func ms(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/float64(time.Millisecond))
}
