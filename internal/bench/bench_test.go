package bench

import (
	"strings"
	"testing"

	"shadowdb/internal/broadcast"
)

func TestCalibrateOrdering(t *testing.T) {
	c := Calibrate()
	interp := c.PerMsg[broadcast.Interpreted]
	opt := c.PerMsg[broadcast.InterpretedOpt]
	comp := c.PerMsg[broadcast.Compiled]
	if !(interp > opt && opt > comp) {
		t.Fatalf("cost ordering broken: interp=%v opt=%v compiled=%v", interp, opt, comp)
	}
	if comp != CompiledAnchor {
		t.Errorf("compiled cost = %v, want anchor %v", comp, CompiledAnchor)
	}
	// The optimizer's advantage must be real (paper: "a factor of two or
	// more").
	if ratio := float64(interp) / float64(opt); ratio < 1.3 {
		t.Errorf("optimizer speedup only %.2fx", ratio)
	}
}

func TestFig8Shapes(t *testing.T) {
	res := Fig8(QuickFig8())
	for _, mode := range []broadcast.Mode{broadcast.Interpreted, broadcast.InterpretedOpt, broadcast.Compiled} {
		curve := res.Curves[mode]
		if len(curve) != len(QuickFig8().Clients) {
			t.Fatalf("%v: curve has %d points", mode, len(curve))
		}
		for _, p := range curve {
			if p.Throughput <= 0 || p.MeanLatMs <= 0 {
				t.Errorf("%v@%d: degenerate point %+v", mode, p.Clients, p)
			}
		}
		// More clients must not reduce throughput drastically below the
		// single-client point (batching amortizes).
		if last := curve[len(curve)-1]; last.Throughput < curve[0].Throughput {
			t.Errorf("%v: throughput fell from %f to %f with more clients",
				mode, curve[0].Throughput, last.Throughput)
		}
	}
	// Paper ordering at every client count: interpreted slowest, compiled
	// fastest, optimized in between.
	for i := range QuickFig8().Clients {
		ti := res.Curves[broadcast.Interpreted][i].Throughput
		to := res.Curves[broadcast.InterpretedOpt][i].Throughput
		tc := res.Curves[broadcast.Compiled][i].Throughput
		if !(ti < to && to < tc) {
			t.Errorf("point %d: throughput ordering broken: %f / %f / %f", i, ti, to, tc)
		}
		li := res.Curves[broadcast.Interpreted][i].MeanLatMs
		lc := res.Curves[broadcast.Compiled][i].MeanLatMs
		if li <= lc {
			t.Errorf("point %d: interpreted latency %f not above compiled %f", i, li, lc)
		}
	}
}

func TestFig9aShapes(t *testing.T) {
	res := Fig9a(QuickFig9a())
	peak := func(name string) float64 { return Peak(res.Curves[name]) }

	stdalone := peak("H2-stdalone")
	pbr := peak("ShadowDB-PBR")
	smr := peak("ShadowDB-SMR")
	h2r := peak("H2-repl.")
	mysql := peak("MySQL-repl.")

	if stdalone <= pbr {
		t.Errorf("standalone (%f) must beat PBR (%f)", stdalone, pbr)
	}
	// Paper: PBR reaches ~72%% of standalone — generously bracketed.
	if frac := pbr / stdalone; frac < 0.5 || frac > 0.95 {
		t.Errorf("PBR/standalone = %.2f, want around 0.72", frac)
	}
	// Paper: PBR is the fastest replicated database.
	for name, v := range map[string]float64{"SMR": smr, "H2-repl": h2r, "MySQL-repl": mysql} {
		if v >= pbr {
			t.Errorf("%s (%f) not below PBR (%f)", name, v, pbr)
		}
	}
	// Paper: SMR is the slowest replicated database on the micro
	// benchmark; H2-repl saturates early but above SMR.
	if smr >= h2r {
		t.Errorf("SMR (%f) not below H2-repl (%f) on micro", smr, h2r)
	}
	// No aborts for ShadowDB (sequential execution avoids lock contention).
	for _, p := range res.Curves["ShadowDB-PBR"] {
		if p.Aborts > 0 {
			t.Errorf("PBR aborted %d transactions", p.Aborts)
		}
	}
}

func TestFig9bShapes(t *testing.T) {
	res := Fig9b(QuickFig9b())
	stdalone := Peak(res.Curves["H2-stdalone"])
	pbr := Peak(res.Curves["ShadowDB-PBR"])
	smr := Peak(res.Curves["ShadowDB-SMR"])
	if stdalone <= pbr {
		t.Errorf("standalone (%f) must beat PBR (%f)", stdalone, pbr)
	}
	// The paper's headline: under TPC-C, SMR provides throughput similar
	// to PBR (526 vs 550). Bracket the parity loosely at quick scale.
	if ratio := smr / pbr; ratio < 0.4 || ratio > 1.6 {
		t.Errorf("SMR/PBR TPC-C ratio = %.2f, want near parity", ratio)
	}
	if len(res.Curves["H2-repl. (off-curve)"]) != 1 {
		t.Error("missing the off-curve H2-repl measurement")
	}
}

func TestFig10aTimeline(t *testing.T) {
	cfg := QuickFig10a()
	res := Fig10a(cfg)
	if res.SuspectedAt < cfg.CrashAt {
		t.Fatalf("suspected at %v before crash at %v", res.SuspectedAt, cfg.CrashAt)
	}
	detect := res.SuspectedAt - cfg.CrashAt
	if detect < cfg.SuspectAfter/2 || detect > 2*cfg.SuspectAfter {
		t.Errorf("detection took %v, configured %v", detect, cfg.SuspectAfter)
	}
	if res.ConfigAt < res.SuspectedAt {
		t.Error("config delivered before suspicion")
	}
	if res.ResumedAt < res.ConfigAt {
		t.Error("resumed before configuration")
	}
	// Traffic stops during the outage and resumes at a comparable rate.
	series := res.Series
	crashBin := int(cfg.CrashAt.Seconds()) + 1
	if crashBin < len(series) && series[crashBin] > series[0]/2 {
		t.Errorf("no visible outage: bin %d has %.0f tps", crashBin, series[crashBin])
	}
	resumeBin := int(res.ResumedAt.Seconds()) + 1
	if resumeBin < len(series) && series[resumeBin] < series[0]/2 {
		t.Errorf("no visible recovery: bin %d has %.0f tps vs initial %.0f",
			resumeBin, series[resumeBin], series[0])
	}
}

func TestFig10bScaling(t *testing.T) {
	res := Fig10b(QuickFig10b())
	if len(res.Small) < 2 || len(res.Large) < 2 {
		t.Fatal("missing sweep points")
	}
	for i := 1; i < len(res.Small); i++ {
		if res.Small[i].Seconds <= res.Small[i-1].Seconds {
			t.Errorf("16B transfer time not increasing: %v", res.Small)
		}
	}
	for i := range res.Small {
		if res.Large[i].Seconds <= res.Small[i].Seconds {
			t.Errorf("1KB rows (%f s) not slower than 16B rows (%f s) at %d rows",
				res.Large[i].Seconds, res.Small[i].Seconds, res.Small[i].Rows)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Module] = r
		if r.SpecNodes <= 0 || r.TermNodes <= 0 || r.OptNodes <= 0 {
			t.Errorf("%s: degenerate sizes %+v", r.Module, r)
		}
		if r.OptNodes >= r.TermNodes {
			t.Errorf("%s: optimizer did not shrink the program (%d -> %d)",
				r.Module, r.TermNodes, r.OptNodes)
		}
		if r.Props == 0 {
			t.Errorf("%s: no properties registered", r.Module)
		}
		if !strings.Contains(r.String(), r.Module) {
			t.Errorf("row renders oddly: %s", r)
		}
	}
	// Paper ordering: CLK is by far the smallest spec; Synod the largest
	// consensus spec.
	if byName["CLK"].SpecNodes >= byName["TwoThird Consensus"].SpecNodes {
		t.Error("CLK spec not smaller than TwoThird")
	}
	if byName["TwoThird Consensus"].SpecNodes >= byName["Paxos-Synod"].SpecNodes {
		t.Error("TwoThird spec not smaller than Synod")
	}
}

func TestPropertySuiteRegistrations(t *testing.T) {
	s := PropertySuite()
	mods := s.Modules()
	want := []string{"Broadcast", "CLK", "Paxos-Synod", "TwoThird"}
	if len(mods) != len(want) {
		t.Fatalf("modules = %v", mods)
	}
	for i := range want {
		if mods[i] != want[i] {
			t.Errorf("module %d = %s, want %s", i, mods[i], want[i])
		}
	}
}

func TestCLKProperties(t *testing.T) {
	for _, p := range clkProperties() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Check(); err != nil {
				t.Error(err)
			}
		})
	}
}
