package bench

import (
	"testing"
	"time"
)

// tinyShard is a CI-sized shard experiment: small fleets, shard counts
// {1, 2} (so the 4-vs-1 speedup bar is out of scope — scaling economics
// are the full bench's job), but all three phases run, every one with
// the checker attached.
func tinyShard() ShardConfig {
	return ShardConfig{
		Counts: []int{1, 2},
		Rows:   128, Clients: 32, TxPer: 6,
		MixedClients: 8, MixedTxPer: 12,
		CrossFrac: 0.25, MixedShards: 2,
		Batch: 8, BatchDelay: time.Millisecond, Pipeline: 4,
		Retry:         200 * time.Millisecond,
		PartitionFrom: 200 * time.Millisecond, PartitionTo: 700 * time.Millisecond,
		RingSize: 1 << 13,
	}
}

func TestShardExperimentSmoke(t *testing.T) {
	res := Shard(tinyShard())
	for _, p := range res.Sweep {
		if p.Violations != 0 {
			t.Errorf("sweep at %d shards: %d violations", p.Shards, p.Violations)
		}
		if p.Throughput <= 0 {
			t.Errorf("sweep at %d shards committed nothing", p.Shards)
		}
	}
	if len(res.MixedViolations) != 0 {
		t.Errorf("mixed phase violations: %v", res.MixedViolations)
	}
	if !res.MixedBalanced {
		t.Error("mixed phase books do not balance")
	}
	if !res.MixedReplicasEq {
		t.Error("mixed phase replicas diverged")
	}
	if res.MixedOpen != 0 || res.MixedInFlight != 0 {
		t.Errorf("mixed phase did not drain: %d open prepares, %d in flight",
			res.MixedOpen, res.MixedInFlight)
	}
	if res.TransferCommits == 0 {
		t.Error("mixed phase committed no cross-shard transfer; the 2PC path was not exercised")
	}
	if len(res.ChaosViolations) != 0 {
		t.Errorf("chaos phase violations: %v", res.ChaosViolations)
	}
	if !res.ChaosBalanced {
		t.Error("chaos phase left the books unbalanced (half-applied transfer)")
	}
	if res.ChaosOpen != 0 || res.ChaosInFlight != 0 {
		t.Errorf("chaos phase did not drain: %d open prepares, %d in flight",
			res.ChaosOpen, res.ChaosInFlight)
	}
	if res.ChaosFinished != res.ChaosClients {
		t.Errorf("chaos phase finished %d/%d clients", res.ChaosFinished, res.ChaosClients)
	}
	if !res.ChaosProgress {
		t.Error("no progress after the partition healed")
	}
	if res.ChaosInjections == 0 {
		t.Error("chaos phase injected nothing; the partition window never cut traffic")
	}
}

// The experiment must be bit-reproducible on the virtual clock: same
// config, same committed counts and decisions.
func TestShardExperimentDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	cfg := tinyShard()
	a, b := Shard(cfg), Shard(cfg)
	if a.MixedCommitted != b.MixedCommitted || a.TransferCommits != b.TransferCommits ||
		a.CrossDecided != b.CrossDecided || a.ChaosCommitted != b.ChaosCommitted {
		t.Fatalf("shard experiment not reproducible:\n  run A: %+v %+v %+v %+v\n  run B: %+v %+v %+v %+v",
			a.MixedCommitted, a.TransferCommits, a.CrossDecided, a.ChaosCommitted,
			b.MixedCommitted, b.TransferCommits, b.CrossDecided, b.ChaosCommitted)
	}
}
