package bench

import (
	"fmt"
	"io"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/fault"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
)

// The chaos experiment: a 3-replica PBR deployment under a scripted
// nemesis, with the online checker attached. The plan stacks the fault
// classes the recovery protocol must survive — a symmetric partition
// that isolates the primary from both backups (but not from the
// broadcast service or the clients), a crash-restart of a broadcast
// service node, and a window of probabilistic message drops, delays,
// and duplicates on the replication, transaction, and heartbeat
// headers. The run is certified three ways: the checker must flag no
// property violations, clients must make progress after the last fault
// window closes, and a second run of the same plan and seed must
// reproduce the injection schedule bit-for-bit (equal fingerprints).
//
// Probabilistic rules deliberately never target bc.* headers: the
// broadcast service's delivery guarantees are what recovery agreement
// stands on, and dropping delivers at the observation boundary would
// fabricate checker violations the real system never committed.

// ChaosConfig scales the experiment. All times are on the virtual
// clock.
type ChaosConfig struct {
	Rows    int
	Clients int
	RunFor  time.Duration
	// PartitionFrom/To bound the symmetric r1 ↔ {r2,r3} cut.
	PartitionFrom time.Duration
	PartitionTo   time.Duration
	// CrashAt fells broadcast node b2; CrashDowntime later it restarts
	// with retained state.
	CrashAt       time.Duration
	CrashDowntime time.Duration
	// NoiseFrom/To bound the probabilistic drop/delay/dup window.
	NoiseFrom time.Duration
	NoiseTo   time.Duration
	Seed      uint64
	RingSize  int
	// Bin is the availability bin width.
	Bin time.Duration
	// Batch/BatchDelay/Pipeline configure the broadcast hot path
	// (DESIGN.md §8): certification must hold with batching and
	// pipelining enabled, since that is how the service deploys.
	Batch      int
	BatchDelay time.Duration
	Pipeline   int
	// FlightDir, when non-empty, arms per-node flight recorders that
	// dump postmortem bundles under it on any checker violation and at
	// the end of an uncertified run.
	FlightDir string
}

// DefaultChaos is the standard scale.
func DefaultChaos() ChaosConfig {
	return ChaosConfig{
		Rows: 5_000, Clients: 4, RunFor: 40 * time.Second,
		PartitionFrom: 5 * time.Second, PartitionTo: 13 * time.Second,
		CrashAt: 20 * time.Second, CrashDowntime: 4 * time.Second,
		NoiseFrom: 26 * time.Second, NoiseTo: 32 * time.Second,
		Seed: 7, RingSize: 1 << 16, Bin: 250 * time.Millisecond,
		Batch: 16, BatchDelay: time.Millisecond, Pipeline: 4,
	}
}

// QuickChaos keeps tests fast.
func QuickChaos() ChaosConfig {
	return ChaosConfig{
		Rows: 1_000, Clients: 2, RunFor: 16 * time.Second,
		PartitionFrom: 3 * time.Second, PartitionTo: 6 * time.Second,
		CrashAt: 8 * time.Second, CrashDowntime: 1500 * time.Millisecond,
		NoiseFrom: 11 * time.Second, NoiseTo: 13 * time.Second,
		Seed: 7, RingSize: 1 << 14, Bin: 250 * time.Millisecond,
		Batch: 16, BatchDelay: time.Millisecond, Pipeline: 4,
	}
}

// ChaosPlan builds the nemesis script for a config.
func ChaosPlan(cfg ChaosConfig) fault.Plan {
	noise := func(r fault.Rule) fault.Rule {
		r.From = fault.Duration(cfg.NoiseFrom)
		r.To = fault.Duration(cfg.NoiseTo)
		return r
	}
	return fault.Plan{
		Seed: cfg.Seed,
		Partitions: []fault.Partition{{
			From: fault.Duration(cfg.PartitionFrom), To: fault.Duration(cfg.PartitionTo),
			A: []msg.Loc{"r1"}, B: []msg.Loc{"r2", "r3"}, Symmetric: true,
		}},
		Crashes: []fault.Crash{{
			At: fault.Duration(cfg.CrashAt), Node: "b2",
			RestartAfter: fault.Duration(cfg.CrashDowntime),
		}},
		Rules: []fault.Rule{
			noise(fault.Rule{Match: fault.Match{Hdr: core.HdrRepl}, Prob: 0.05, Drop: true}),
			noise(fault.Rule{Match: fault.Match{Hdr: core.HdrRepl}, Prob: 0.10,
				Delay: fault.Duration(2 * time.Millisecond), Jitter: fault.Duration(3 * time.Millisecond)}),
			noise(fault.Rule{Match: fault.Match{Hdr: core.HdrTx}, Prob: 0.05, Drop: true}),
			noise(fault.Rule{Match: fault.Match{Hdr: core.HdrTx}, Prob: 0.05, Dup: 1}),
			noise(fault.Rule{Match: fault.Match{Hdr: core.HdrHeartbeat}, Prob: 0.10, Drop: true}),
		},
	}
}

// ChaosResult is the certified outcome.
type ChaosResult struct {
	// Committed is the total committed count of the first run.
	Committed int64
	// Injections counts recorded fault applications; Drops/Blocks/
	// Delays/Dups break them down by kind.
	Injections int
	Drops      int
	Blocks     int
	Delays     int
	Dups       int
	// Availability is the fraction of bins with at least one commit,
	// over the whole run and restricted to the fault windows.
	Availability      float64
	FaultAvailability float64
	// Failover timeline of the partition episode (virtual clock, -1 when
	// the 20 ms sampling grid did not observe the state).
	DetectedAt time.Duration
	ConfigAt   time.Duration
	ResumedAt  time.Duration
	// FailoverLatency is DetectedAt→ResumedAt; RecoveryTime is
	// PartitionFrom→ResumedAt (fault onset to restored service).
	FailoverLatency time.Duration
	RecoveryTime    time.Duration
	// ProgressAfterFaults reports commits after the last fault window
	// closed; Primaries counts active primaries at the end (must be 1).
	ProgressAfterFaults bool
	Primaries           int
	// Events / Violations are the online checker's view of the run.
	Events     int64
	Violations []dist.Violation
	// Fingerprint / Fingerprint2 are the injection-log hashes of the two
	// runs; Reproducible is their equality.
	Fingerprint  uint64
	Fingerprint2 uint64
	Reproducible bool
	// Series is committed tx/s per bin (first run).
	Series []float64
	// Batch/Pipeline echo the broadcast hot-path knobs of the run.
	Batch    int
	Pipeline int
}

// Chaos runs the experiment twice — the second run exists only to
// certify that the injection schedule reproduces — and returns the
// first run's measurements with both fingerprints.
func Chaos(cfg ChaosConfig) ChaosResult {
	res := chaosOnce(cfg)
	res.Fingerprint2 = chaosOnce(cfg).Fingerprint
	res.Reproducible = res.Fingerprint == res.Fingerprint2
	return res
}

// chaosOnce is one full nemesis run.
func chaosOnce(cfg ChaosConfig) ChaosResult {
	timing := core.Timing{
		HeartbeatEvery: 500 * time.Millisecond,
		SuspectAfter:   2 * time.Second,
		ClientRetry:    time.Second,
	}
	setup := func(db *sqldb.DB) error { return core.BankSetup(db, cfg.Rows) }
	// All three replicas are initial members: the partition must split a
	// live group, not promote a spare.
	sc := newPBRClusterTuned([]string{"h2", "hsqldb", "derby"}, cfg.Rows, timing,
		core.BankRegistry(), setup, false, 3,
		bcastTune{Batch: cfg.Batch, Delay: cfg.BatchDelay, Pipeline: cfg.Pipeline})

	o := obs.New(cfg.RingSize)
	sc.clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.Watch(o)
	dumpFlight := flightFleet(cfg.FlightDir, "chaos", o, checker,
		append(append([]msg.Loc{}, sc.rloc...), sc.bloc...))

	inj := fault.BindCluster(sc.clu, ChaosPlan(cfg))
	inj.SetObs(o)

	stats := &loadStats{}
	timeline := des.NewTimeline(cfg.Bin)
	stats.timeline = timeline
	work := func(i int) Workload { return MicroWorkload(cfg.Rows, int64(i)*31337) }
	shadowClients(sc.clu, stats, cfg.Clients, 1<<30, core.ModePBR,
		sc.rloc, sc.bloc, timing.ClientRetry, work)

	res := ChaosResult{DetectedAt: -1, ConfigAt: -1, ResumedAt: -1,
		FailoverLatency: -1, RecoveryTime: -1,
		Batch: cfg.Batch, Pipeline: cfg.Pipeline}

	// Sample every replica's protocol state on a 20 ms grid to extract
	// the partition-failover timeline.
	var sample func()
	sample = func() {
		now := sc.sim.Now()
		for _, l := range sc.rloc {
			r := sc.pbr.Replicas[l]
			if res.DetectedAt < 0 && now > cfg.PartitionFrom && r.Stopped() {
				res.DetectedAt = now
			}
			if res.ConfigAt < 0 && r.ConfigNow().Seq > 0 {
				res.ConfigAt = now
			}
			if res.ConfigAt >= 0 && res.ResumedAt < 0 &&
				r.ConfigNow().Seq > 0 && r.IsPrimary() && !r.Stopped() {
				res.ResumedAt = now
			}
		}
		if now < cfg.RunFor {
			sc.sim.After(20*time.Millisecond, sample)
		}
	}
	sc.sim.After(0, sample)

	sc.sim.Run(cfg.RunFor, 500_000_000)

	res.Committed = stats.committed
	res.Series = timeline.Series()
	for _, i := range inj.Injections() {
		res.Injections++
		switch i.Kind {
		case "drop":
			res.Drops++
		case "block":
			res.Blocks++
		case "delay":
			res.Delays++
		case "dup":
			res.Dups++
		}
	}
	res.Fingerprint = inj.Fingerprint()
	res.Events = checker.Status().Events
	res.Violations = checker.Violations()
	if res.DetectedAt >= 0 && res.ResumedAt >= 0 {
		res.FailoverLatency = res.ResumedAt - res.DetectedAt
	}
	if res.ResumedAt >= 0 {
		res.RecoveryTime = res.ResumedAt - cfg.PartitionFrom
	}
	for _, l := range sc.rloc {
		r := sc.pbr.Replicas[l]
		if r.IsPrimary() && !r.Stopped() {
			res.Primaries++
		}
	}

	windows := [][2]time.Duration{
		{cfg.PartitionFrom, cfg.PartitionTo},
		{cfg.CrashAt, cfg.CrashAt + cfg.CrashDowntime},
		{cfg.NoiseFrom, cfg.NoiseTo},
	}
	inFault := func(at time.Duration) bool {
		for _, w := range windows {
			if at >= w[0] && at < w[1] {
				return true
			}
		}
		return false
	}
	bins := int(cfg.RunFor / cfg.Bin)
	var up, faultBins, faultUp int
	quiet := cfg.NoiseTo
	for _, w := range windows {
		if w[1] > quiet {
			quiet = w[1]
		}
	}
	for b := 0; b < bins; b++ {
		at := time.Duration(b) * cfg.Bin
		live := b < len(res.Series) && res.Series[b] > 0
		if live {
			up++
			if at >= quiet {
				res.ProgressAfterFaults = true
			}
		}
		if inFault(at) {
			faultBins++
			if live {
				faultUp++
			}
		}
	}
	if bins > 0 {
		res.Availability = float64(up) / float64(bins)
	}
	if faultBins > 0 {
		res.FaultAvailability = float64(faultUp) / float64(faultBins)
	}
	// Keep evidence of runs that fail the local half of the acceptance
	// bar (violations are already dumped by the checker hook; failure to
	// fail over or resume would otherwise leave no bundle behind).
	if len(res.Violations) > 0 || res.Primaries != 1 || !res.ProgressAfterFaults {
		dumpFlight("uncertified")
	}
	return res
}

// Certified reports whether the run meets the chaos acceptance bar:
// no property violations, a reproducible injection schedule, a single
// surviving primary, and client progress after the faults.
func (r ChaosResult) Certified() bool {
	return len(r.Violations) == 0 && r.Reproducible &&
		r.Primaries == 1 && r.ProgressAfterFaults
}

// ReportChaos flattens the experiment for BENCH_chaos.json.
func ReportChaos(res ChaosResult, quick bool) *Report {
	r := NewReport("chaos", quick)
	r.Add("chaos.committed", float64(res.Committed), "count")
	r.Add("chaos.injections", float64(res.Injections), "count")
	r.Add("chaos.injections.drops", float64(res.Drops), "count")
	r.Add("chaos.injections.blocks", float64(res.Blocks), "count")
	r.Add("chaos.injections.delays", float64(res.Delays), "count")
	r.Add("chaos.injections.dups", float64(res.Dups), "count")
	r.Add("chaos.availability", res.Availability, "fraction")
	r.Add("chaos.availability.fault_windows", res.FaultAvailability, "fraction")
	r.Add("chaos.failover.detected_s", res.DetectedAt.Seconds(), "s")
	r.Add("chaos.failover.config_s", res.ConfigAt.Seconds(), "s")
	r.Add("chaos.failover.resumed_s", res.ResumedAt.Seconds(), "s")
	r.Add("chaos.failover.latency_s", res.FailoverLatency.Seconds(), "s")
	r.Add("chaos.failover.recovery_s", res.RecoveryTime.Seconds(), "s")
	r.Add("chaos.progress_after_faults", b2f(res.ProgressAfterFaults), "bool")
	r.Add("chaos.primaries", float64(res.Primaries), "count")
	r.Add("chaos.checker.events", float64(res.Events), "count")
	r.Add("chaos.checker.violations", float64(len(res.Violations)), "count")
	r.Add("chaos.reproducible", b2f(res.Reproducible), "bool")
	r.Add("chaos.batch", float64(res.Batch), "count")
	r.Add("chaos.pipeline", float64(res.Pipeline), "count")
	return r
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// RenderChaos prints the human-readable summary.
func RenderChaos(w io.Writer, res ChaosResult) {
	fmt.Fprintln(w, "Chaos — 3-replica PBR under scripted nemesis (virtual time)")
	fmt.Fprintf(w, "  committed: %d   availability: %.3f overall, %.3f during fault windows\n",
		res.Committed, res.Availability, res.FaultAvailability)
	fmt.Fprintf(w, "  injections: %d (%d drops, %d blocks, %d delays, %d dups)\n",
		res.Injections, res.Drops, res.Blocks, res.Delays, res.Dups)
	fmt.Fprintf(w, "  partition failover: detected %.2fs, config %.2fs, resumed %.2fs (latency %.2fs, recovery %.2fs)\n",
		res.DetectedAt.Seconds(), res.ConfigAt.Seconds(), res.ResumedAt.Seconds(),
		res.FailoverLatency.Seconds(), res.RecoveryTime.Seconds())
	fmt.Fprintf(w, "  checker: %d events, %d violations   primaries: %d   progress after faults: %v\n",
		res.Events, len(res.Violations), res.Primaries, res.ProgressAfterFaults)
	fmt.Fprintf(w, "  fingerprints: %016x / %016x   reproducible: %v   certified: %v\n",
		res.Fingerprint, res.Fingerprint2, res.Reproducible, res.Certified())
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  VIOLATION: %v\n", v)
	}
}
