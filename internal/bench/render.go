package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"shadowdb/internal/broadcast"
)

// Plain-text renderers that print each experiment in the layout of the
// paper's tables and figures.

// RenderFig8 prints the three broadcast-service curves.
func RenderFig8(w io.Writer, res Fig8Result) {
	fmt.Fprintln(w, "Fig. 8 — The performance of the broadcast service with Paxos")
	fmt.Fprintf(w, "measured interpreter cost ratios vs compiled: interpreted=%.1fx, optimized=%.1fx\n",
		res.Costs.MeasuredRatio[broadcast.Interpreted],
		res.Costs.MeasuredRatio[broadcast.InterpretedOpt])
	for _, mode := range []broadcast.Mode{broadcast.Interpreted, broadcast.InterpretedOpt, broadcast.Compiled} {
		fmt.Fprintf(w, "\n  %s (per-message cost %v)\n", mode, res.Costs.PerMsg[mode])
		fmt.Fprintf(w, "  %8s %14s %14s\n", "clients", "msgs/sec", "latency(ms)")
		for _, p := range res.Curves[mode] {
			fmt.Fprintf(w, "  %8d %14.1f %14.2f\n", p.Clients, p.Throughput, p.MeanLatMs)
		}
	}
}

// RenderFig9 prints one micro/TPC-C sweep.
func RenderFig9(w io.Writer, title string, res Fig9Result) {
	fmt.Fprintln(w, title)
	names := append([]string(nil), res.Order...)
	for name := range res.Curves {
		if !contains(names, name) {
			names = append(names, name)
		}
	}
	for _, name := range names {
		curve := res.Curves[name]
		if len(curve) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n  %s\n", name)
		fmt.Fprintf(w, "  %8s %12s %12s %12s %8s\n",
			"clients", "commits/s", "mean(ms)", "p99(ms)", "aborts")
		for _, p := range curve {
			fmt.Fprintf(w, "  %s\n", p)
		}
	}
	fmt.Fprintln(w, "\n  peak committed throughput:")
	for _, name := range names {
		if peak := Peak(res.Curves[name]); peak > 0 {
			fmt.Fprintf(w, "  %-24s %8.0f tps\n", name, peak)
		}
	}
}

// Peak returns the maximal throughput of a curve.
func Peak(curve []CurvePoint) float64 {
	best := 0.0
	for _, p := range curve {
		if p.Throughput > best {
			best = p.Throughput
		}
	}
	return best
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// RenderFig10a prints the recovery timeline.
func RenderFig10a(w io.Writer, res Fig10aResult) {
	fmt.Fprintln(w, "Fig. 10(a) — ShadowDB-PBR execution with a crash of the primary")
	fmt.Fprintf(w, "  crash at %.1fs; suspected at %.1fs; new config delivered at %.1fs (%.0fms after suspicion);\n",
		res.CrashAt.Seconds(), res.SuspectedAt.Seconds(), res.ConfigAt.Seconds(),
		res.ConfigLatency.Seconds()*1000)
	fmt.Fprintf(w, "  reconfiguration + state transfer took %.1fs; clients resumed at %.1fs\n",
		res.TransferTime.Seconds(), res.ResumedAt.Seconds())
	fmt.Fprintf(w, "  %8s %14s\n", "second", "commits/s")
	for i, v := range res.Series {
		bar := strings.Repeat("#", int(v/200))
		fmt.Fprintf(w, "  %8d %14.0f %s\n", i, v, bar)
	}
}

// RenderFig10b prints the state-transfer sweep.
func RenderFig10b(w io.Writer, res Fig10bResult) {
	fmt.Fprintln(w, "Fig. 10(b) — The overhead of state transfer")
	fmt.Fprintf(w, "  %10s %12s %12s\n", "rows", "16B (s)", "1KB (s)")
	bySize := map[int]map[int]float64{}
	var rows []int
	for _, p := range res.Small {
		if bySize[p.Rows] == nil {
			bySize[p.Rows] = map[int]float64{}
			rows = append(rows, p.Rows)
		}
		bySize[p.Rows][16] = p.Seconds
	}
	for _, p := range res.Large {
		if bySize[p.Rows] == nil {
			bySize[p.Rows] = map[int]float64{}
			rows = append(rows, p.Rows)
		}
		bySize[p.Rows][1024] = p.Seconds
	}
	sort.Ints(rows)
	for _, r := range rows {
		fmt.Fprintf(w, "  %10d %12.2f %12.2f\n", r, bySize[r][16], bySize[r][1024])
	}
	if res.TPCCSec > 0 {
		fmt.Fprintf(w, "  TPC-C 1 warehouse (~100MB): %.1f s\n", res.TPCCSec)
	}
}

// RenderTable1 prints the specification statistics.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I — specification, verification and code generation statistics")
	fmt.Fprintf(w, "%-20s %9s %9s %9s %6s %8s\n",
		"module", "spec", "GPM prog", "opt GPM", "props", "A/M")
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}
