package bench

import "testing"

func TestAblations(t *testing.T) {
	b := AblationBatching(8, 100, 1000)
	t.Logf("batching: %s", b)
	if b.WithOn <= b.WithOff {
		t.Errorf("batching did not help: on=%f off=%f", b.WithOn, b.WithOff)
	}
	o := AblationOverlap(50_000)
	t.Logf("overlap: %s", o)
	if o.WithOn < 0 || o.WithOff < 0 {
		t.Fatalf("recovery never completed: %+v", o)
	}
	if o.WithOn >= o.WithOff {
		t.Errorf("overlap did not shorten recovery: on=%fs off=%fs", o.WithOn, o.WithOff)
	}
}
