package bench

import (
	"time"

	"shadowdb/internal/baseline"
	"shadowdb/internal/bench/tpcc"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// Fig. 9(a): the bank micro-benchmark — latency vs committed transactions
// per second for ShadowDB-PBR, ShadowDB-SMR, H2 replication, MySQL
// replication, and standalone H2. Fig. 9(b): the same systems under
// TPC-C with one warehouse (H2 replication is reported as a single
// figure, 62 tps in the paper, and omitted from the curve).

// Fig9Config scales the experiments.
type Fig9Config struct {
	Clients []int
	TxPer   int
	Rows    int        // micro-benchmark table size
	Scale   tpcc.Scale // TPC-C scale
}

// DefaultFig9a mirrors the paper: 50 000 rows, 1..32 clients.
func DefaultFig9a() Fig9Config {
	return Fig9Config{Clients: []int{1, 2, 4, 8, 16, 24, 32}, TxPer: 1500, Rows: 50_000}
}

// QuickFig9a keeps tests fast.
func QuickFig9a() Fig9Config {
	return Fig9Config{Clients: []int{1, 8}, TxPer: 120, Rows: 2_000}
}

// DefaultFig9b mirrors the paper: TPC-C, one warehouse, 1..10 clients.
func DefaultFig9b() Fig9Config {
	return Fig9Config{Clients: []int{1, 2, 4, 6, 8, 10}, TxPer: 400, Scale: tpcc.Full()}
}

// QuickFig9b keeps tests fast.
func QuickFig9b() Fig9Config {
	return Fig9Config{Clients: []int{1, 4}, TxPer: 40, Scale: tpcc.Small()}
}

// Fig9Result maps system name to its curve, in presentation order.
type Fig9Result struct {
	Order  []string
	Curves map[string][]CurvePoint
}

// The baseline lock-wait timeout used in the contention experiments: low
// enough that table-locked engines time out under heavy load (the paper's
// "transactions timeout when trying to lock the database table").
const benchLockTimeout = 5 * time.Millisecond

// Fig9a runs the micro-benchmark sweep.
func Fig9a(cfg Fig9Config) Fig9Result {
	res := Fig9Result{
		Order:  []string{"ShadowDB-PBR", "ShadowDB-SMR", "H2-repl.", "MySQL-repl.", "H2-stdalone"},
		Curves: make(map[string][]CurvePoint),
	}
	setup := func(db *sqldb.DB) error { return core.BankSetup(db, cfg.Rows) }
	micro := func(i int) Workload { return MicroWorkload(cfg.Rows, int64(i)*7919) }
	for _, n := range cfg.Clients {
		res.Curves["ShadowDB-PBR"] = append(res.Curves["ShadowDB-PBR"],
			runShadowPBR(cfg, n, core.BankRegistry(), setup, micro))
		res.Curves["ShadowDB-SMR"] = append(res.Curves["ShadowDB-SMR"],
			runShadowSMR(cfg, n, core.BankRegistry(), setup, micro))
		res.Curves["H2-repl."] = append(res.Curves["H2-repl."],
			runBaseline(cfg, n, baseline.H2Repl, "h2", core.BankRegistry(), baseline.BankLocks, setup, micro))
		res.Curves["MySQL-repl."] = append(res.Curves["MySQL-repl."],
			runBaseline(cfg, n, baseline.MySQLRepl, "mysql-mem", core.BankRegistry(), baseline.BankLocks, setup, micro))
		res.Curves["H2-stdalone"] = append(res.Curves["H2-stdalone"],
			runBaseline(cfg, n, baseline.Standalone, "h2", core.BankRegistry(), baseline.BankLocks, setup, micro))
	}
	return res
}

// Fig9b runs the TPC-C sweep. H2-repl is measured once at moderate load
// and reported as its own row (the paper's 62 tps note).
func Fig9b(cfg Fig9Config) Fig9Result {
	res := Fig9Result{
		Order:  []string{"ShadowDB-PBR", "ShadowDB-SMR", "MySQL-repl.", "H2-stdalone"},
		Curves: make(map[string][]CurvePoint),
	}
	reg := tpcc.Registry(cfg.Scale)
	// Populating TPC-C through SQL once per replica per point is the
	// dominant real-time cost of the sweep; populate a template once and
	// clone it into each replica via snapshot restore (identical state,
	// ~10x faster).
	template, err := sqldb.Open("h2:mem:template")
	if err != nil {
		panic(err)
	}
	if err := tpcc.Setup(template, cfg.Scale); err != nil {
		panic(err)
	}
	dumps := template.Snapshot()
	setup := func(db *sqldb.DB) error { return db.Restore(dumps) }
	work := func(i int) Workload {
		g := tpcc.NewGenerator(cfg.Scale, int64(i)*104729)
		return g.Next
	}
	for _, n := range cfg.Clients {
		res.Curves["ShadowDB-PBR"] = append(res.Curves["ShadowDB-PBR"],
			runShadowPBR(cfg, n, reg, setup, work))
		res.Curves["ShadowDB-SMR"] = append(res.Curves["ShadowDB-SMR"],
			runShadowSMR(cfg, n, reg, setup, work))
		res.Curves["MySQL-repl."] = append(res.Curves["MySQL-repl."],
			runBaseline(cfg, n, baseline.MySQLRepl, "mysql-innodb", reg, tpcc.Locks, setup, work))
		res.Curves["H2-stdalone"] = append(res.Curves["H2-stdalone"],
			runBaseline(cfg, n, baseline.Standalone, "h2", reg, tpcc.Locks, setup, work))
	}
	// The H2-repl single figure.
	mid := cfg.Clients[len(cfg.Clients)/2]
	res.Curves["H2-repl. (off-curve)"] = []CurvePoint{
		runBaseline(cfg, mid, baseline.H2Repl, "h2", reg, tpcc.Locks, setup, work),
	}
	return res
}

// runShadowPBR measures one PBR point.
func runShadowPBR(cfg Fig9Config, clients int, reg core.Registry,
	setup func(*sqldb.DB) error, work func(int) Workload) CurvePoint {
	timing := core.DefaultTiming()
	sc := newPBRCluster([]string{"h2", "h2", "h2"}, cfg.Rows, timing, reg, setup, false)
	stats := &loadStats{}
	shadowClients(sc.clu, stats, clients, cfg.TxPer, core.ModePBR,
		sc.rloc, sc.bloc, 5*time.Second, work)
	runToFinish(sc.sim, stats, clients)
	return stats.point(clients)
}

// runShadowSMR measures one SMR point.
func runShadowSMR(cfg Fig9Config, clients int, reg core.Registry,
	setup func(*sqldb.DB) error, work func(int) Workload) CurvePoint {
	sc := newSMRCluster([]string{"h2", "h2", "h2"}, reg, setup)
	stats := &loadStats{}
	shadowClients(sc.clu, stats, clients, cfg.TxPer, core.ModeSMR,
		sc.rloc, sc.bloc, 10*time.Second, work)
	runToFinish(sc.sim, stats, clients)
	return stats.point(clients)
}

// runBaseline measures one baseline point.
func runBaseline(cfg Fig9Config, clients int, mode baseline.Mode, engine string,
	reg core.Registry, locks baseline.LockSpec, setup func(*sqldb.DB) error,
	work func(int) Workload) CurvePoint {
	sim := &des.Sim{}
	clu := des.NewCluster(sim)
	clu.Link = lanLink
	clu.SizeOf = wireSize
	mk := func(name string) *sqldb.DB {
		db, err := sqldb.Open(engine + ":mem:" + name)
		if err != nil {
			panic(err)
		}
		if err := setup(db); err != nil {
			panic(err)
		}
		return db
	}
	var backupLoc msg.Loc
	if mode != baseline.Standalone {
		backupLoc = "backup"
		baseline.NewServer(sim, clu, baseline.ServerConfig{
			Name: backupLoc, DB: mk("backup"), Reg: reg, Locks: locks,
			Mode: baseline.Standalone, LockTimeout: time.Minute,
		})
	}
	baseline.NewServer(sim, clu, baseline.ServerConfig{
		Name: "primary", DB: mk("primary"), Reg: reg, Locks: locks,
		Mode: mode, Backup: backupLoc, LockTimeout: benchLockTimeout,
	})
	stats := &loadStats{}
	directClients(clu, stats, clients, cfg.TxPer, "primary", work)
	runToFinish(sim, stats, clients)
	return stats.point(clients)
}

// runToFinish advances the simulation until every client completed its
// quota (or the safety bound trips); self-perpetuating timers like
// heartbeats would otherwise keep the event queue alive forever.
func runToFinish(sim *des.Sim, stats *loadStats, clients int) {
	for stats.finished < clients && !sim.Idle() && sim.Steps() < 80_000_000 {
		sim.Run(0, 100_000)
	}
}
