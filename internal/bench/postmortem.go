package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/bridge"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
)

// The postmortem experiment: an end-to-end exercise of the flight
// recorder. A 3-replica SMR deployment (every transaction ordered by
// the broadcast service, so the slot stream is dense) runs a normal
// client load with the recorder fully on — structured logging at debug,
// tracing, metric rate windows, and one Recorder per node — and mid-run
// a forged Deliver event is recorded for slot 0 carrying a batch no
// broadcast node ever ordered. The online checker flags the total-order
// violation, the violation hook dumps a postmortem bundle on every
// node, and the experiment then certifies the bundles alone suffice
// for diagnosis:
//
//  1. every node produced a complete bundle,
//  2. the bundles merge into a causally ordered (Lamport) cross-node
//     timeline that contains the forged delivery,
//  3. replaying the bundles' traces through bridge.CheckTraces
//     re-detects the violation offline, with no access to the live run.
//
// The second half measures the recorder's cost: the same clean run
// (no forgery) executes once with the recorder on and once with
// logging off and tracing disabled, and the wall-clock delta is the
// overhead the always-on flight recorder charges the hot path.

// PostmortemConfig scales the experiment. Times are on the virtual
// clock; the wall-clock overhead pair runs at the same scale.
type PostmortemConfig struct {
	Rows    int
	Clients int
	RunFor  time.Duration
	// InjectAt is when the forged slot-0 delivery is recorded. It must
	// leave enough head room for slot 0 to have genuinely delivered.
	InjectAt time.Duration
	Seed     uint64
	RingSize int
	// Dir is the bundle root; one flight dir per node is created under
	// it. Empty means a temporary directory (removed after the run).
	Dir string
}

// DefaultPostmortem is the standard scale.
func DefaultPostmortem() PostmortemConfig {
	return PostmortemConfig{
		Rows: 5_000, Clients: 4, RunFor: 20 * time.Second,
		InjectAt: 10 * time.Second, Seed: 7, RingSize: 1 << 16,
	}
}

// QuickPostmortem keeps tests fast.
func QuickPostmortem() PostmortemConfig {
	return PostmortemConfig{
		Rows: 1_000, Clients: 2, RunFor: 8 * time.Second,
		InjectAt: 4 * time.Second, Seed: 7, RingSize: 1 << 14,
	}
}

// PostmortemResult is the certified outcome.
type PostmortemResult struct {
	// Committed is the violation run's commit count (sanity: the forgery
	// is an observation-layer event, the system itself keeps working).
	Committed int64
	// Violations are the online checker's flags (expected: exactly the
	// forged total-order violation).
	Violations []dist.Violation
	// Bundles are the dumped bundle directories, one per node that
	// dumped; Nodes is the cluster size they are measured against.
	Bundles []string
	Nodes   int
	// TimelineLen / TimelineOrdered describe the merged cross-node
	// timeline; ForgedInTimeline reports whether the forged delivery is
	// on it.
	TimelineLen      int
	TimelineOrdered  bool
	ForgedInTimeline bool
	// ReplayDetected reports whether bridge.CheckTraces over the
	// bundles' traces alone re-detects the violation.
	ReplayDetected bool
	// ReplayErr is the replay's first property failure (the evidence).
	ReplayErr string
	// WallOnMS / WallOffMS are the wall-clock times of the clean run
	// with the recorder on and off; OverheadPct their relative delta.
	WallOnMS    float64
	WallOffMS   float64
	OverheadPct float64
	// Dir is where the bundles live ("" when a temp dir was cleaned up).
	Dir string
}

// Certified reports whether the run met the acceptance bar: a bundle
// from every node, a causally ordered merged timeline containing the
// forged event, and offline re-detection from the bundles alone.
func (r PostmortemResult) Certified() bool {
	return len(r.Violations) > 0 && len(r.Bundles) == r.Nodes &&
		r.TimelineOrdered && r.ForgedInTimeline && r.ReplayDetected
}

// Postmortem runs the experiment.
func Postmortem(cfg PostmortemConfig) (PostmortemResult, error) {
	// Bundles serialize trace events through the gob wire codec, so every
	// body type a trace can carry must be registered (idempotent).
	registerWireTypes()

	res := PostmortemResult{}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "postmortem-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else {
		res.Dir = dir
	}

	if err := postmortemViolationRun(cfg, dir, &res); err != nil {
		return res, err
	}
	if err := postmortemAnalyze(dir, &res); err != nil {
		return res, err
	}

	// Overhead pair: same clean run, recorder on vs off, wall clock.
	res.WallOnMS = postmortemCleanRun(cfg, true).Seconds() * 1e3
	res.WallOffMS = postmortemCleanRun(cfg, false).Seconds() * 1e3
	if res.WallOffMS > 0 {
		res.OverheadPct = (res.WallOnMS - res.WallOffMS) / res.WallOffMS * 100
	}
	return res, nil
}

// postmortemCluster builds the experiment's cluster and repoints
// obs.Default at the run's Obs so package-level loggers land in the same
// ring the recorders dump. The returned restore func must run before the
// next run starts.
func postmortemCluster(cfg PostmortemConfig, recorderOn bool) (*shadowCluster, *obs.Obs, *loadStats, func()) {
	setup := func(db *sqldb.DB) error { return core.BankSetup(db, cfg.Rows) }
	sc := newSMRCluster([]string{"h2", "h2", "h2"}, core.BankRegistry(), setup)

	o := obs.New(cfg.RingSize)
	sc.clu.Observe(o)
	prev := obs.Default
	obs.Default = o
	restore := func() { obs.Default = prev }
	if recorderOn {
		o.EnableTracing(true)
		o.SetLogLevel(obs.LevelDebug)
	} else {
		o.SetLogLevel(obs.LevelOff)
	}

	stats := &loadStats{}
	work := func(i int) Workload { return MicroWorkload(cfg.Rows, int64(cfg.Seed)+int64(i)*31337) }
	shadowClients(sc.clu, stats, cfg.Clients, 1<<30, core.ModeSMR,
		nil, sc.bloc, 5*time.Second, work)
	return sc, o, stats, restore
}

// postmortemViolationRun is the instrumented run with the forged
// delivery: recorders on every node, checker attached, bundle dumps on
// the violation hook.
func postmortemViolationRun(cfg PostmortemConfig, dir string, res *PostmortemResult) error {
	sc, o, stats, restore := postmortemCluster(cfg, true)
	defer restore()

	checker := dist.NewChecker()
	checker.Watch(o)

	// Rate windows tick on the virtual clock (1 s), so bundles carry
	// metric deltas without a wall-clock goroutine in the simulation.
	rates := obs.NewRates(o, time.Second, 0)
	var tick func()
	tick = func() {
		rates.Tick()
		if sc.sim.Now() < cfg.RunFor {
			sc.sim.After(time.Second, tick)
		}
	}
	sc.sim.After(time.Second, tick)

	// One recorder per node, every one fed from the run's shared Obs;
	// Dump filters its node's slice of the log and trace rings.
	nodes := append(append([]msg.Loc{}, sc.rloc...), sc.bloc...)
	res.Nodes = len(nodes)
	recs := make([]*obs.Recorder, 0, len(nodes))
	for _, n := range nodes {
		rec, err := obs.NewRecorder(o, filepath.Join(dir, string(n), "flight"), n)
		if err != nil {
			return err
		}
		rec.SetRates(rates)
		rec.SetCheckerStatus(func() any { return checker.Status() })
		rec.SetConfig(map[string]string{
			"experiment": "postmortem",
			"seed":       fmt.Sprint(cfg.Seed),
		})
		recs = append(recs, rec)
	}
	checker.OnViolation(func(v dist.Violation) {
		for _, rec := range recs {
			_, _ = rec.TryDump("violation-" + v.Property)
		}
	})

	// The forgery: a Deliver for slot 0 whose batch no broadcast node
	// ever ordered, recorded as if r2 received it. Slot 0 delivered long
	// ago with a different batch, so the checker flags total-order; the
	// slot is below r2's frontier, so no gap cascade follows.
	sc.sim.After(cfg.InjectAt, func() {
		forged := msg.M(broadcast.HdrDeliver, broadcast.Deliver{
			Slot: 0, Msgs: []broadcast.Bcast{{From: "evil", Seq: 1}},
		})
		o.Record(obs.Event{
			Loc: "r2", Layer: obs.LayerRuntime, Kind: "deliver",
			Hdr: broadcast.HdrDeliver, Slot: 0, LC: o.Tick(), M: &forged,
		})
	})

	sc.sim.Run(cfg.RunFor, 500_000_000)

	res.Committed = stats.committed
	res.Violations = checker.Violations()
	bundles, err := obs.ListBundles(dir)
	if err != nil {
		return err
	}
	res.Bundles = bundles
	return nil
}

// postmortemAnalyze certifies the dumped bundles: load, merge, verify
// causal order and the forged event's presence, and replay the traces
// through the offline bridge checker.
func postmortemAnalyze(dir string, res *PostmortemResult) error {
	var bundles []*obs.Bundle
	for _, d := range res.Bundles {
		b, err := obs.LoadBundle(d)
		if err != nil {
			return fmt.Errorf("postmortem: load %s: %w", d, err)
		}
		bundles = append(bundles, b)
	}
	if len(bundles) == 0 {
		return nil
	}

	timeline := obs.MergeTimeline(bundles...)
	res.TimelineLen = len(timeline)
	res.TimelineOrdered = true
	for i := 1; i < len(timeline); i++ {
		if timeline[i].LC < timeline[i-1].LC {
			res.TimelineOrdered = false
			break
		}
	}
	for _, e := range timeline {
		if e.Source == "trace" && e.Node == "r2" && e.LC > 0 &&
			e.Text == "runtime.deliver hdr=bc.deliver" {
			res.ForgedInTimeline = true
			break
		}
	}

	if err := bridge.CheckTraces(obs.Traces(bundles...), bridge.Options{}); err != nil {
		res.ReplayDetected = true
		res.ReplayErr = err.Error()
	}
	return nil
}

// postmortemCleanRun is one un-forged run at the same scale, returning
// its wall-clock duration. recorderOn selects the full flight recorder
// (debug logging + tracing + rate windows) or everything off.
func postmortemCleanRun(cfg PostmortemConfig, recorderOn bool) time.Duration {
	sc, o, _, restore := postmortemCluster(cfg, recorderOn)
	defer restore()
	var rates *obs.Rates
	if recorderOn {
		rates = obs.NewRates(o, time.Second, 0)
		var tick func()
		tick = func() {
			rates.Tick()
			if sc.sim.Now() < cfg.RunFor {
				sc.sim.After(time.Second, tick)
			}
		}
		sc.sim.After(time.Second, tick)
	}
	start := time.Now()
	sc.sim.Run(cfg.RunFor, 500_000_000)
	return time.Since(start)
}

// ReportPostmortem flattens the experiment for BENCH_postmortem.json.
func ReportPostmortem(res PostmortemResult, quick bool) *Report {
	r := NewReport("postmortem", quick)
	r.Add("postmortem.committed", float64(res.Committed), "count")
	r.Add("postmortem.violations", float64(len(res.Violations)), "count")
	r.Add("postmortem.bundles", float64(len(res.Bundles)), "count")
	r.Add("postmortem.nodes", float64(res.Nodes), "count")
	r.Add("postmortem.timeline.entries", float64(res.TimelineLen), "count")
	r.Add("postmortem.timeline.ordered", b2f(res.TimelineOrdered), "bool")
	r.Add("postmortem.timeline.forged_present", b2f(res.ForgedInTimeline), "bool")
	r.Add("postmortem.replay_detected", b2f(res.ReplayDetected), "bool")
	r.Add("postmortem.wall_on_ms", res.WallOnMS, "ms")
	r.Add("postmortem.wall_off_ms", res.WallOffMS, "ms")
	r.Add("postmortem.overhead_pct", res.OverheadPct, "percent")
	r.Add("postmortem.certified", b2f(res.Certified()), "bool")
	return r
}

// RenderPostmortem prints the human-readable summary.
func RenderPostmortem(w io.Writer, res PostmortemResult) {
	fmt.Fprintln(w, "Postmortem — flight recorder under a forged total-order violation")
	fmt.Fprintf(w, "  committed: %d   violations flagged: %d   bundles: %d/%d nodes\n",
		res.Committed, len(res.Violations), len(res.Bundles), res.Nodes)
	fmt.Fprintf(w, "  merged timeline: %d entries, causally ordered: %v, forged event present: %v\n",
		res.TimelineLen, res.TimelineOrdered, res.ForgedInTimeline)
	fmt.Fprintf(w, "  offline replay re-detected the violation: %v\n", res.ReplayDetected)
	if res.ReplayErr != "" {
		fmt.Fprintf(w, "    %s\n", res.ReplayErr)
	}
	fmt.Fprintf(w, "  recorder overhead: on %.0f ms, off %.0f ms (%+.1f%%)\n",
		res.WallOnMS, res.WallOffMS, res.OverheadPct)
	fmt.Fprintf(w, "  certified: %v\n", res.Certified())
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  VIOLATION: %v\n", v)
	}
	if res.Dir != "" {
		fmt.Fprintf(w, "  bundles under: %s\n", res.Dir)
	}
}
