package bench

import (
	"fmt"
	"io"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/fault"
	"shadowdb/internal/flow"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
)

// The overload experiment certifies end-to-end overload control
// (DESIGN.md §14): a 5-node SMR deployment (3 broadcast service nodes,
// 2 replicas) is driven by an OPEN-loop generator fleet — submissions
// arrive on a schedule, not in response to completions, so offered
// load does not politely back off when the system slows down — at 1x,
// 4x, and 16x of a baseline rate, with a slow-disk nemesis degrading
// one replica mid-way through the 16x phase. Every request carries a
// deadline; the sequencer's bounded admission queue (FlowLimit) sheds
// the excess with explicit flow.Reject answers.
//
// The flow-aware online checker audits the run from the trace alone:
// flow/terminal-outcome (every submission ends in a result, a
// rejection, or a passed deadline), flow/queue-bound (no admission
// queue over its configured bound), and flow/goodput-floor (16x
// completion rate at least Floor of the 1x rate — overload degrades
// goodput, never collapses it). A flow.Watchdog over windowed shed
// rates must detect the sustained 16x episode and (when a flight dir
// is armed) dump postmortem bundles. Figures go to BENCH_overload.json.

// hdrOverloadTick is the generator's self-addressed submission timer.
// Submissions must leave a traced node step (not a bare simulator
// callback) so the checker observes them and opens flows.
const hdrOverloadTick = "bench.ovl.tick"

// OverloadConfig sizes the overload experiment.
type OverloadConfig struct {
	// Generators is the open-loop submitter fleet size; BaseRate is the
	// fleet's aggregate 1x submission rate (tx/s).
	Generators int
	BaseRate   float64
	// PhaseDur is the length of each load phase (1x, 4x, 16x).
	PhaseDur time.Duration
	// Deadline is stamped on every request; hops refuse expired work.
	Deadline time.Duration
	// FlowLimit bounds the sequencer's admission queue.
	FlowLimit int
	// MaxBatch / Pipeline configure the broadcast hot path.
	MaxBatch int
	Pipeline int
	// Rows is the bank table size.
	Rows int
	// IntakeCost is the modeled CPU cost of receiving one client
	// submission at a service node (header dispatch, dedup lookup,
	// admission check). Admission control is engineered to be cheap —
	// orders of magnitude under the consensus work it guards — which is
	// what makes shedding effective: refusing work must cost less than
	// doing it.
	IntakeCost time.Duration
	// The gray-failure nemesis: SlowNode's execution cost is multiplied
	// by SlowFactor from SlowAfter into the 16x phase until the phase
	// ends.
	SlowNode   msg.Loc
	SlowFactor float64
	SlowAfter  time.Duration
	// Floor is the goodput floor: 16x completion rate must be at least
	// Floor times the 1x rate.
	Floor float64
	// P99Bound caps the per-phase p99 latency of completed requests.
	P99Bound time.Duration
	// Watchdog tuning: shed-rate windows of WatchWindow; rejects per
	// window at or above WatchThreshold for WatchWindows consecutive
	// windows is a sustained episode.
	WatchWindow    time.Duration
	WatchThreshold int64
	WatchWindows   int
	// Drain bounds the post-load quiesce (the 16x backlog must fully
	// resolve — every admitted request to its outcome).
	Drain time.Duration
	// RingSize is the obs ring capacity; Seed drives the fault plan.
	RingSize int
	Seed     uint64
	// FlightDir, when non-empty, arms per-node flight recorders; the
	// watchdog dumps them on sustained overload.
	FlightDir string
}

// DefaultOverload is the paper-scale run.
func DefaultOverload() OverloadConfig {
	return OverloadConfig{
		Generators: 8, BaseRate: 300, PhaseDur: 2 * time.Second,
		Deadline:  250 * time.Millisecond,
		FlowLimit: 64, MaxBatch: 16, Pipeline: 4, Rows: 256,
		IntakeCost: 50 * time.Microsecond,
		SlowNode:   "r1", SlowFactor: 8, SlowAfter: 500 * time.Millisecond,
		Floor: 0.6, P99Bound: 400 * time.Millisecond,
		WatchWindow: 100 * time.Millisecond, WatchThreshold: 10, WatchWindows: 3,
		Drain: 8 * time.Second, RingSize: 1 << 16, Seed: 42,
	}
}

// QuickOverload is the CI-sized run.
func QuickOverload() OverloadConfig {
	cfg := DefaultOverload()
	cfg.Generators, cfg.BaseRate = 6, 250
	cfg.PhaseDur = 800 * time.Millisecond
	cfg.SlowAfter = 200 * time.Millisecond
	cfg.Drain = 5 * time.Second
	cfg.RingSize = 1 << 15
	return cfg
}

// OverloadPhase is one load phase's certified accounting: counts from
// the checker's trace-derived flow ledger, latencies from the bench's
// own submit/complete timestamps.
type OverloadPhase struct {
	Name      string
	Mult      int
	Submitted int64
	Completed int64
	Aborted   int64
	Shed      int64
	// GoodputPerSec is completions credited to the phase over its window.
	GoodputPerSec float64
	MeanMs        float64
	P99Ms         float64
}

// OverloadResult is the certified outcome of one overload run.
type OverloadResult struct {
	Phases []OverloadPhase
	// GoodputRatio is 16x goodput over 1x goodput; FloorWant is the
	// configured floor it must meet.
	GoodputRatio float64
	FloorWant    float64
	// P99BoundMs is the configured per-phase p99 ceiling.
	P99BoundMs float64
	// Cross-layer flow counter deltas over the run.
	Admitted int64
	Shed     int64
	Expired  int64
	Rejects  int64
	// WatchdogFired reports that the shed-rate watchdog detected the
	// sustained 16x episode.
	WatchdogFired bool
	// OpenFlows counts submissions with no observed terminal outcome
	// after the drain (passed-deadline flows excepted by the checker).
	OpenFlows int
	// Fingerprint hashes the injection log (the slow-disk schedule).
	Fingerprint uint64
	Events      int64
	Violations  []dist.Violation
}

// Certified reports whether the run meets the overload acceptance bar:
// the 1x phase completes essentially everything it submits (≥99%), the
// 16x phase genuinely sheds, goodput under 16x overload stays at or
// above the floor fraction of baseline, every phase's completed-request
// p99 stays under the bound, the watchdog caught the sustained episode,
// and the checker stayed clean (terminal outcomes, queue bounds, and
// the goodput floor are its properties).
func (r OverloadResult) Certified() bool {
	if len(r.Phases) != 3 {
		return false
	}
	base, peak := r.Phases[0], r.Phases[2]
	clean1x := base.Submitted > 0 && base.Completed*100 >= base.Submitted*99
	for _, p := range r.Phases {
		if p.Completed > 0 && p.P99Ms > r.P99BoundMs {
			return false
		}
	}
	return clean1x && peak.Shed > 0 &&
		r.GoodputRatio >= r.FloorWant &&
		r.WatchdogFired &&
		len(r.Violations) == 0
}

// overloadMults are the offered-load multipliers of the three phases.
var overloadMults = [3]int{1, 4, 16}

// overloadPhaseStats is the bench-side latency ledger of one phase.
type overloadPhaseStats struct {
	lat     des.LatencyRecorder
	aborted int64
}

// Overload runs the experiment.
func Overload(cfg OverloadConfig) OverloadResult {
	sim := &des.Sim{}
	clu := des.NewCluster(sim)
	clu.Link = lanLink
	clu.SizeOf = wireSize
	costs := Calibrate()
	bloc := []msg.Loc{"b1", "b2", "b3"}
	rloc := []msg.Loc{"r1", "r2"}

	// The nemesis injector is bound after the nodes exist; cost
	// closures consult it lazily so the slow-disk window can degrade a
	// node mid-run without rebinding anything.
	var inj *fault.Injector
	slowed := func(loc msg.Loc, c time.Duration) time.Duration {
		if inj != nil {
			if f := inj.SlowFactor(loc); f > 1 {
				c = time.Duration(float64(c) * f)
			}
		}
		return c
	}

	reg := core.BankRegistry()
	for _, l := range rloc {
		loc := l
		db, err := sqldb.Open("h2:mem:overload-" + string(loc))
		if err != nil {
			panic(err)
		}
		if err := core.BankSetup(db, cfg.Rows); err != nil {
			panic(err)
		}
		rep := core.NewSMRReplica(loc, db, reg)
		clu.AddCostedProcess(loc, 1, rep, func() time.Duration {
			return slowed(loc, rep.LastCost()+replicaOverhead)
		})
	}

	// Three service nodes order for two replicas: b3 carries no local
	// subscriber, it only participates in consensus (the 5-node shape).
	bcfg := broadcast.Config{
		Nodes:            bloc,
		LocalSubscribers: map[msg.Loc][]msg.Loc{"b1": {"r1"}, "b2": {"r2"}},
		MaxBatch:         cfg.MaxBatch,
		Pipeline:         cfg.Pipeline,
		FlowLimit:        cfg.FlowLimit,
		Classify:         core.FlowClass,
		FlowNow:          sim.Now,
	}
	gen := broadcast.Spec(bcfg).Generator()
	per := costs.PerMsg[broadcast.Compiled]
	for _, b := range bloc {
		loc := b
		proc := gen(loc)
		clu.AddCostedNode(loc, 1, func(env des.Envelope) ([]msg.Directive, time.Duration) {
			next, outs := proc.Step(env.M)
			proc = next
			c := bcastCost(per, env.M)
			if env.M.Hdr == broadcast.HdrBcast {
				// Intake (dedup + deadline + admission) is the engineered
				// cheap path: shedding a request must cost far less than
				// ordering it, or admission control amplifies the overload
				// it exists to absorb.
				c = cfg.IntakeCost
			}
			return outs, slowed(loc, c)
		})
	}

	o := obs.New(cfg.RingSize)
	clu.Observe(o)
	o.EnableTracing(true)
	checker := dist.NewChecker()
	checker.SetFlow(cfg.FlowLimit)
	checker.Watch(o)
	dumpFlight := flightFleet(cfg.FlightDir, "overload", o, checker,
		append(append([]msg.Loc{}, bloc...), rloc...))

	// The slow-disk window opens SlowAfter into the 16x phase and heals
	// when the load stops.
	t16 := 2 * cfg.PhaseDur
	loadEnd := 3 * cfg.PhaseDur
	inj = fault.BindCluster(clu, fault.Plan{
		Seed: cfg.Seed,
		SlowDisks: []fault.SlowDisk{{
			At: fault.Duration(t16 + cfg.SlowAfter), Until: fault.Duration(loadEnd),
			Node: cfg.SlowNode, Factor: cfg.SlowFactor,
		}},
	})
	inj.SetObs(o)

	// Counter baselines (package counters are process-global).
	admitted0 := obs.C("flow.admitted").Value()
	shed0 := obs.C("flow.shed").Value()
	expired0 := obs.C("flow.deadline.dropped").Value()
	rejects0 := obs.C("flow.rejects.sent").Value()

	// The watchdog over windowed reject rates: sustained shedding dumps
	// the flight recorders, exactly like a checker violation would.
	rates := obs.NewRates(obs.Default, cfg.WatchWindow, 4096)
	wd := &flow.Watchdog{
		Rates: rates, Metric: "flow.rejects.sent",
		Threshold: cfg.WatchThreshold, Windows: cfg.WatchWindows,
		OnSustained: func(int) { dumpFlight("sustained-overload") },
	}
	var wdTick func()
	wdTick = func() {
		rates.Tick()
		wd.Check()
		if sim.Now() < loadEnd+cfg.Drain {
			sim.After(cfg.WatchWindow, wdTick)
		}
	}
	sim.After(cfg.WatchWindow, wdTick)

	// Phase marks drive the checker's ledger; the trailing "drain" mark
	// closes the 16x window at loadEnd so goodput rates use the load
	// window, while late completions still credit their submission phase.
	names := [3]string{"1x", "4x", "16x"}
	for i := range names {
		i := i
		sim.At(time.Duration(i)*cfg.PhaseDur, func() {
			checker.NoteFlowPhase(names[i], int64(sim.Now()))
		})
	}
	sim.At(loadEnd, func() { checker.NoteFlowPhase("drain", int64(sim.Now())) })

	// The open-loop generator fleet. Each generator ticks itself with a
	// self-addressed timer and emits one submission per tick from the
	// node step, so the trace (and therefore the checker) sees it. No
	// retries: the deployment must answer every submission, or the
	// terminal-outcome property flags it.
	type pending struct {
		at    time.Duration
		phase int
	}
	phStats := [3]*overloadPhaseStats{{}, {}, {}}
	phaseOf := func(now time.Duration) int {
		p := int(now / cfg.PhaseDur)
		if p > 2 {
			p = 2
		}
		return p
	}
	for g := 0; g < cfg.Generators; g++ {
		loc := msg.Loc(fmt.Sprintf("gen%d", g))
		work := MicroWorkload(cfg.Rows, int64(g)*104729+7)
		outstanding := make(map[int64]pending)
		seq := int64(0)
		home := g
		clu.AddNode(loc, 1, nil, func(env des.Envelope) []msg.Directive {
			switch b := env.M.Body.(type) {
			case core.TxResult:
				p, ok := outstanding[b.Seq]
				if !ok {
					return nil // duplicate answer from the second replica
				}
				delete(outstanding, b.Seq)
				st := phStats[p.phase]
				st.lat.Add(sim.Now() - p.at)
				if b.Aborted || b.Err != "" {
					st.aborted++
				}
				return nil
			case flow.Reject:
				delete(outstanding, b.Seq)
				return nil
			}
			if env.M.Hdr != hdrOverloadTick {
				return nil
			}
			now := sim.Now()
			if now >= loadEnd {
				return nil
			}
			ph := phaseOf(now)
			seq++
			typ, args := work()
			req := core.TxRequest{
				Client: loc, Seq: seq, Type: typ, Args: args,
				Deadline: int64(now + cfg.Deadline),
			}
			pay, err := core.EncodeTx(req)
			if err != nil {
				panic(err)
			}
			outstanding[seq] = pending{at: now, phase: ph}
			home++
			interval := time.Duration(float64(cfg.Generators) * float64(time.Second) /
				(cfg.BaseRate * float64(overloadMults[ph])))
			return []msg.Directive{
				msg.SendAfter(interval, loc, msg.M(hdrOverloadTick, nil)),
				msg.Send(bloc[home%len(bloc)], msg.M(broadcast.HdrBcast, broadcast.Bcast{
					From: loc, Seq: seq, Payload: pay, Deadline: req.Deadline,
				})),
			}
		})
		// Stagger the fleet so submissions don't arrive in lockstep.
		clu.SendAfter(time.Duration(g)*time.Millisecond, loc, loc, msg.M(hdrOverloadTick, nil))
	}

	sim.Run(0, 400_000_000)

	checker.FinishFlow(int64(sim.Now()))
	checker.CheckGoodputFloor("1x", "16x", cfg.Floor)

	res := OverloadResult{
		FloorWant:  cfg.Floor,
		P99BoundMs: float64(cfg.P99Bound) / float64(time.Millisecond),
		Admitted:   obs.C("flow.admitted").Value() - admitted0,
		Shed:       obs.C("flow.shed").Value() - shed0,
		Expired:    obs.C("flow.deadline.dropped").Value() - expired0,
		Rejects:    obs.C("flow.rejects.sent").Value() - rejects0,
	}
	res.WatchdogFired = wd.Fired()
	res.OpenFlows = checker.OpenFlows()
	res.Fingerprint = inj.Fingerprint()
	res.Events = checker.Status().Events
	res.Violations = checker.Violations()

	var rate [3]float64
	for i, p := range checker.FlowPhases() {
		if i > 2 {
			break // the drain phase carries no load of its own
		}
		st := phStats[i]
		ph := OverloadPhase{
			Name: p.Name, Mult: overloadMults[i],
			Submitted: p.Submitted, Completed: p.Completed,
			Aborted: st.aborted, Shed: p.Shed,
			MeanMs: float64(st.lat.Mean()) / float64(time.Millisecond),
			P99Ms:  float64(st.lat.Percentile(99)) / float64(time.Millisecond),
		}
		if p.To > p.From {
			rate[i] = float64(p.Completed) * float64(time.Second) / float64(p.To-p.From)
		}
		ph.GoodputPerSec = rate[i]
		res.Phases = append(res.Phases, ph)
	}
	if rate[0] > 0 {
		res.GoodputRatio = rate[2] / rate[0]
	}
	if !res.Certified() {
		dumpFlight("uncertified")
	}
	return res
}

// ReportOverload flattens the experiment for BENCH_overload.json.
func ReportOverload(res OverloadResult, quick bool) *Report {
	r := NewReport("overload", quick)
	for _, p := range res.Phases {
		r.Add("overload."+p.Name+".submitted", float64(p.Submitted), "count")
		r.Add("overload."+p.Name+".completed", float64(p.Completed), "count")
		r.Add("overload."+p.Name+".shed", float64(p.Shed), "count")
		r.Add("overload."+p.Name+".goodput", p.GoodputPerSec, "tx/s")
		r.Add("overload."+p.Name+".mean", p.MeanMs, "ms")
		r.Add("overload."+p.Name+".p99", p.P99Ms, "ms")
	}
	r.Add("overload.goodput_ratio", res.GoodputRatio, "x")
	r.Add("overload.admitted", float64(res.Admitted), "count")
	r.Add("overload.shed", float64(res.Shed), "count")
	r.Add("overload.deadline_dropped", float64(res.Expired), "count")
	r.Add("overload.rejects_sent", float64(res.Rejects), "count")
	r.Add("overload.watchdog_fired", b2f(res.WatchdogFired), "bool")
	r.Add("overload.open_flows", float64(res.OpenFlows), "count")
	r.Add("overload.checker.events", float64(res.Events), "count")
	r.Add("overload.checker.violations", float64(len(res.Violations)), "count")
	r.Add("overload.certified", b2f(res.Certified()), "bool")
	return r
}

// RenderOverload prints the human-readable summary.
func RenderOverload(w io.Writer, res OverloadResult) {
	fmt.Fprintln(w, "Overload — admission, deadlines, and certified graceful degradation (open loop, slow-disk nemesis at 16x)")
	for _, p := range res.Phases {
		fmt.Fprintf(w, "  %-4s submitted %6d, completed %6d (%d aborted), shed %6d   goodput %8.0f/s   mean %7.2fms  p99 %7.2fms\n",
			p.Name, p.Submitted, p.Completed, p.Aborted, p.Shed, p.GoodputPerSec, p.MeanMs, p.P99Ms)
	}
	fmt.Fprintf(w, "  goodput 16x/1x: %.2fx (floor: %.2fx)   p99 bound: %.0fms\n",
		res.GoodputRatio, res.FloorWant, res.P99BoundMs)
	fmt.Fprintf(w, "  flow: %d admitted, %d shed, %d deadline-dropped, %d rejects sent   watchdog fired: %v\n",
		res.Admitted, res.Shed, res.Expired, res.Rejects, res.WatchdogFired)
	fmt.Fprintf(w, "  open flows after drain: %d   nemesis fingerprint %#x\n", res.OpenFlows, res.Fingerprint)
	fmt.Fprintf(w, "  checker: %d events, %d violations   certified: %v\n",
		res.Events, len(res.Violations), res.Certified())
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  VIOLATION: %v\n", v)
	}
}
