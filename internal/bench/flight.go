package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/core"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/shard"
)

// registerWireTypes registers every protocol body type with the gob
// wire codec (idempotent). Bundle dumps serialize trace events through
// the codec, so any experiment that arms flight recorders needs the
// full set.
func registerWireTypes() {
	core.RegisterWireTypes()
	broadcast.RegisterWireTypes()
	shard.RegisterWireTypes()
	synod.RegisterWireTypes()
	twothird.RegisterWireTypes()
}

// flightSubdir scopes a flight dir to one phase of a multi-phase
// experiment, preserving "" as the disarmed state.
func flightSubdir(dir, phase string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, phase)
}

// flightFleet arms per-node flight recorders on an experiment cluster:
// one Recorder per node under dir/<node>/flight, all fed from the run's
// shared Obs, dumped the moment the online checker flags a violation.
// The returned func dumps every recorder with the given reason — call
// it when a run ends uncertified, so failure evidence survives even
// when no checker property fired. An empty dir disarms everything and
// the returned func is a no-op.
//
// Recorder failures are reported on stderr, never escalated: flight
// recording is evidence collection, and a broken disk must not turn a
// measurable experiment into an error.
// Nodes listed in joiners are marked as mid-run joiners in their bundle
// metadata, so `flight merge` baselines their delivery frontier instead
// of flagging the missing pre-join slots.
func flightFleet(dir, experiment string, o *obs.Obs, checker *dist.Checker, nodes []msg.Loc, joiners ...msg.Loc) func(reason string) {
	if dir == "" {
		return func(string) {}
	}
	registerWireTypes()
	joined := make(map[msg.Loc]bool, len(joiners))
	for _, j := range joiners {
		joined[j] = true
	}
	recs := make([]*obs.Recorder, 0, len(nodes))
	for _, n := range nodes {
		rec, err := obs.NewRecorder(o, filepath.Join(dir, string(n), "flight"), n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight: %s: %v\n", n, err)
			continue
		}
		rec.SetCheckerStatus(func() any { return checker.Status() })
		cfg := map[string]string{"experiment": experiment}
		if joined[n] {
			cfg["joiner"] = "true"
		}
		rec.SetConfig(cfg)
		recs = append(recs, rec)
	}
	checker.OnViolation(func(v dist.Violation) {
		for _, rec := range recs {
			if _, err := rec.TryDump("violation-" + v.Property); err != nil {
				fmt.Fprintf(os.Stderr, "flight: dump %s: %v\n", rec.Node(), err)
			}
		}
	})
	return func(reason string) {
		for _, rec := range recs {
			if _, err := rec.TryDump(reason); err != nil {
				fmt.Fprintf(os.Stderr, "flight: dump %s: %v\n", rec.Node(), err)
			}
		}
	}
}
