package bench

import (
	"fmt"
	"time"

	"shadowdb/internal/bench/tpcc"
	"shadowdb/internal/core"
	"shadowdb/internal/des"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// Fig. 10(a): an execution of ShadowDB-PBR in which the primary crashes.
// Ten clients run the micro-benchmark against H2 (primary) / HSQLDB
// (backup) / Derby (spare); the primary crashes at 15 s, the backup
// detects the crash after the configured 10 s, the new configuration is
// delivered by the broadcast service, the spare receives the full
// database snapshot, and the clients resume.
//
// Fig. 10(b): the overhead of state transfer as a function of database
// size, for 16-byte and 1-kilobyte rows, with ~50 KB batches.

// Fig10aConfig scales the recovery experiment.
type Fig10aConfig struct {
	Rows         int
	Clients      int
	CrashAt      time.Duration
	SuspectAfter time.Duration
	RunFor       time.Duration
}

// DefaultFig10a mirrors the paper.
func DefaultFig10a() Fig10aConfig {
	return Fig10aConfig{
		Rows: 50_000, Clients: 10,
		CrashAt: 15 * time.Second, SuspectAfter: 10 * time.Second,
		RunFor: 60 * time.Second,
	}
}

// QuickFig10a keeps tests fast.
func QuickFig10a() Fig10aConfig {
	return Fig10aConfig{
		Rows: 2_000, Clients: 4,
		CrashAt: 2 * time.Second, SuspectAfter: time.Second,
		RunFor: 10 * time.Second,
	}
}

// Fig10aResult is the recovery timeline.
type Fig10aResult struct {
	// Series is committed transactions per second, per 1 s bin.
	Series []float64
	// Event times on the virtual clock.
	CrashAt     time.Duration
	SuspectedAt time.Duration
	ConfigAt    time.Duration
	ResumedAt   time.Duration
	// ConfigLatency is propose->deliver for the new configuration.
	ConfigLatency time.Duration
	// TransferTime is the post-config recovery time (election, snapshot,
	// resume) — the "group reconfiguration and state transfer" phase.
	TransferTime time.Duration
	// Committed is the total committed count.
	Committed int64
}

// Fig10a runs the recovery experiment.
func Fig10a(cfg Fig10aConfig) Fig10aResult {
	timing := core.Timing{
		HeartbeatEvery: 500 * time.Millisecond,
		SuspectAfter:   cfg.SuspectAfter,
		ClientRetry:    time.Second,
	}
	setup := func(db *sqldb.DB) error { return core.BankSetup(db, cfg.Rows) }
	// The paper's diversity deployment: H2 primary, HSQLDB backup, Derby
	// spare.
	sc := newPBRCluster([]string{"h2", "hsqldb", "derby"}, cfg.Rows, timing,
		core.BankRegistry(), setup, false)

	stats := &loadStats{}
	timeline := des.NewTimeline(time.Second)
	stats.timeline = timeline
	work := func(i int) Workload { return MicroWorkload(cfg.Rows, int64(i)*31337) }
	shadowClients(sc.clu, stats, cfg.Clients, 1<<30, core.ModePBR, sc.rloc, sc.bloc, time.Second, work)

	res := Fig10aResult{CrashAt: cfg.CrashAt, SuspectedAt: -1, ConfigAt: -1, ResumedAt: -1}
	sc.sim.After(cfg.CrashAt, func() { sc.clu.Node("r1").Crash() })

	// Sample the backup's protocol state every 20 ms to extract the
	// timeline events.
	r2 := sc.pbr.Replicas["r2"]
	var sample func()
	sample = func() {
		now := sc.sim.Now()
		if res.SuspectedAt < 0 && now > cfg.CrashAt && r2.Stopped() {
			res.SuspectedAt = now
		}
		if res.ConfigAt < 0 && r2.ConfigNow().Seq > 0 {
			res.ConfigAt = now
		}
		if res.ConfigAt >= 0 && res.ResumedAt < 0 && r2.IsPrimary() && !r2.Stopped() {
			res.ResumedAt = now
		}
		if now < cfg.RunFor {
			sc.sim.After(20*time.Millisecond, sample)
		}
	}
	sc.sim.After(0, sample)

	sc.sim.Run(cfg.RunFor, 500_000_000)
	res.Series = timeline.Series()
	res.Committed = stats.committed
	if res.SuspectedAt >= 0 && res.ConfigAt >= 0 {
		res.ConfigLatency = res.ConfigAt - res.SuspectedAt
	}
	if res.ConfigAt >= 0 && res.ResumedAt >= 0 {
		res.TransferTime = res.ResumedAt - res.ConfigAt
	}
	return res
}

// ------------------------------------------------------------- Fig 10(b) --

// Fig10bPoint is one state-transfer measurement.
type Fig10bPoint struct {
	Rows     int
	RowBytes int
	Seconds  float64
}

// Fig10bConfig scales the sweep.
type Fig10bConfig struct {
	RowCounts []int
	// TPCC also measures the TPC-C 1-warehouse transfer (paper: 54.5 s).
	TPCC bool
}

// DefaultFig10b mirrors the paper's 500..500 000 row sweep.
func DefaultFig10b() Fig10bConfig {
	return Fig10bConfig{RowCounts: []int{500, 5_000, 50_000, 500_000}, TPCC: true}
}

// QuickFig10b keeps tests fast.
func QuickFig10b() Fig10bConfig {
	return Fig10bConfig{RowCounts: []int{500, 5_000}}
}

// Fig10bResult holds the two row-size curves plus the optional TPC-C
// figure.
type Fig10bResult struct {
	Small   []Fig10bPoint // 16-byte rows, 3 columns
	Large   []Fig10bPoint // 1-kilobyte rows, 4 columns
	TPCCSec float64       // 0 when not measured
}

// Fig10b measures state-transfer time against database size.
func Fig10b(cfg Fig10bConfig) Fig10bResult {
	var res Fig10bResult
	for _, n := range cfg.RowCounts {
		res.Small = append(res.Small, Fig10bPoint{
			Rows: n, RowBytes: 16,
			Seconds: measureTransfer(func(db *sqldb.DB) error { return setupSmallRows(db, n) }),
		})
		res.Large = append(res.Large, Fig10bPoint{
			Rows: n, RowBytes: 1024,
			Seconds: measureTransfer(func(db *sqldb.DB) error { return setupLargeRows(db, n) }),
		})
	}
	if cfg.TPCC {
		res.TPCCSec = measureTransfer(func(db *sqldb.DB) error {
			return tpccSetupForTransfer(db)
		})
	}
	return res
}

// setupSmallRows loads n 16-byte rows with 3 columns (the micro table).
func setupSmallRows(db *sqldb.DB, n int) error {
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, owner TEXT, balance INT)"); err != nil {
		return err
	}
	// 16 bytes modeled: 8 (id) + ~0 shared owner + 8 (balance); use a
	// short owner so RowBytes ~ 16-20.
	rows := make([][]sqldb.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []sqldb.Value{int64(i), "ab", int64(1000)})
	}
	return db.InsertBatch("t", rows)
}

// setupLargeRows loads n 1 KB rows with 4 columns. The payload string is
// shared across rows to keep host memory flat; size modeling uses its
// length.
func setupLargeRows(db *sqldb.DB, n int) error {
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT, payload TEXT)"); err != nil {
		return err
	}
	payload := string(make([]byte, 1000))
	rows := make([][]sqldb.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []sqldb.Value{int64(i), int64(i), int64(i), payload})
	}
	return db.InsertBatch("t", rows)
}

// tpccSetupForTransfer loads the 1-warehouse TPC-C database.
func tpccSetupForTransfer(db *sqldb.DB) error {
	return tpcc.Setup(db, tpcc.Full())
}

// measureTransfer times a full state transfer from a populated H2 sender
// to an empty receiver over the simulated gigabit link, including
// sender-side serialization and receiver-side insertion costs.
func measureTransfer(setup func(*sqldb.DB) error) float64 {
	sim := &des.Sim{}
	clu := des.NewCluster(sim)
	clu.Link = lanLink
	clu.SizeOf = wireSize

	src, err := sqldb.Open("h2:mem:src")
	if err != nil {
		panic(err)
	}
	if err := setup(src); err != nil {
		panic(fmt.Sprintf("bench: transfer setup: %v", err))
	}
	dstDB, err := sqldb.Open("h2:mem:dst")
	if err != nil {
		panic(err)
	}
	receiver := core.NewJoiningSMRReplica("dst", dstDB, core.Registry{})
	clu.AddCostedProcess("dst", 1, receiver, receiver.LastCost)

	// The sender serializes (service time = serialization cost), then the
	// batches flow through the link.
	clu.AddCostedNode("src", 1, func(env des.Envelope) ([]msg.Directive, time.Duration) {
		outs, cost := core.SnapshotDirectives(src, "dst", 0, 0, 1, 0)
		return outs, cost
	})
	clu.Inject("src", msg.M("go", nil))

	done := -1.0
	var poll func()
	poll = func() {
		if receiver.Active() {
			done = sim.Now().Seconds()
			return
		}
		sim.After(time.Millisecond, poll)
	}
	sim.After(0, poll)
	sim.Run(0, 100_000_000)
	if done < 0 {
		done = sim.Now().Seconds()
	}
	return done
}
