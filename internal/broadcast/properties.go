package broadcast

import (
	"errors"
	"fmt"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/verify"
)

// The correctness properties of the broadcast service (Table I row
// "Broadcast Service"; the paper proved its 22 lemmas manually in a week).

// ErrLost is returned when a broadcast message is never delivered.
var ErrLost = errors.New("broadcast: message lost")

// ErrDuplicated is returned when a message appears in two slots.
var ErrDuplicated = errors.New("broadcast: message delivered twice")

// testConfig builds the 3-node Paxos-backed service of the evaluation.
func testConfig() Config {
	return Config{
		Nodes:       []msg.Loc{"b1", "b2", "b3"},
		Subscribers: []msg.Loc{"sub1", "sub2"},
	}
}

// batchedConfig turns on the adaptive batching and pipelining knobs so
// the checker explores the sequencer's cut policy and the Synod window
// (DESIGN.md §8). MaxDelay stays zero: the schedule explorer has no
// clock, so the eager cut keeps every path timer-free while MaxBatch
// and the pipeline window still force multi-message slots whenever the
// window fills.
func batchedConfig() Config {
	cfg := testConfig()
	cfg.MaxBatch = 2
	cfg.Pipeline = 2
	return cfg
}

// Properties returns the registered property set of the module.
func Properties() []verify.Property {
	return []verify.Property{
		{Module: "Broadcast", Name: "total-order/fuzz", Mode: verify.Auto, Check: checkTotalOrderFuzz},
		{Module: "Broadcast", Name: "total-order/batched-fuzz", Mode: verify.Auto, Check: checkBatchedFuzz},
		{Module: "Broadcast", Name: "batch-atomicity", Mode: verify.Manual, Check: checkBatchAtomicity},
		{Module: "Broadcast", Name: "integrity/no-loss-no-dup", Mode: verify.Manual, Check: checkIntegrity},
		{Module: "Broadcast", Name: "total-order/protocol-switching", Mode: verify.Manual, Check: checkSwitching},
		{Module: "Broadcast", Name: "gap-freedom", Mode: verify.Manual, Check: checkGapFree},
	}
}

// run executes a workload of n messages from each of the clients, sending
// each client's messages to a node round-robin, and returns the trace.
func run(cfg Config, mods []Module, pick func(int) int, clients, n int) ([]gpm.TraceEntry, error) {
	cfg.Modules = mods
	cfg.PickModule = pick
	r := gpm.NewRunner(Spec(cfg).System())
	for c := 0; c < clients; c++ {
		from := msg.Loc(fmt.Sprintf("client%d", c))
		for i := 0; i < n; i++ {
			node := cfg.Nodes[(c+i)%len(cfg.Nodes)]
			r.Inject(node, msg.M(HdrBcast, Bcast{From: from, Seq: int64(i), Payload: []byte{byte(i)}}))
		}
	}
	if _, err := r.Run(2_000_000); err != nil {
		return nil, err
	}
	return r.Trace(), nil
}

func checkTotalOrderFuzz() error {
	cfg := testConfig()
	m := verify.Model{
		Gen:  Spec(cfg).Generator(),
		Locs: Spec(cfg).Locs,
		Init: []verify.Injection{
			{To: "b1", M: msg.M(HdrBcast, Bcast{From: "c1", Seq: 1, Payload: []byte("x")})},
			{To: "b2", M: msg.M(HdrBcast, Bcast{From: "c2", Seq: 1, Payload: []byte("y")})},
			{To: "b3", M: msg.M(HdrBcast, Bcast{From: "c1", Seq: 2, Payload: []byte("z")})},
		},
		Invariant: func(trace []gpm.TraceEntry) error {
			return CheckTotalOrder(trace, []msg.Loc{"sub1", "sub2"})
		},
	}
	_, err := verify.Fuzz(m, 120, 400, 5)
	return err
}

// checkBatchedFuzz fuzzes delivery schedules of the batched, pipelined
// configuration. Message duplication is on (a retransmitting link must
// not make a batch, or any message inside one, appear twice); message
// drops stay off because the service has no retransmission — a dropped
// proposal stalls its instance rather than violating safety, which the
// fuzzer would misread as a truncated schedule.
func checkBatchedFuzz() error {
	cfg := batchedConfig()
	m := verify.Model{
		Gen:  Spec(cfg).Generator(),
		Locs: Spec(cfg).Locs,
		Init: []verify.Injection{
			{To: "b1", M: msg.M(HdrBcast, Bcast{From: "c1", Seq: 1, Payload: []byte("x")})},
			{To: "b1", M: msg.M(HdrBcast, Bcast{From: "c2", Seq: 1, Payload: []byte("y")})},
			{To: "b2", M: msg.M(HdrBcast, Bcast{From: "c1", Seq: 2, Payload: []byte("z")})},
			{To: "b3", M: msg.M(HdrBcast, Bcast{From: "c2", Seq: 2, Payload: []byte("w")})},
		},
		Dups: 2,
		Invariant: func(trace []gpm.TraceEntry) error {
			return CheckTotalOrder(trace, []msg.Loc{"sub1", "sub2"})
		},
	}
	_, err := verify.Fuzz(m, 120, 400, 11)
	return err
}

// checkBatchAtomicity runs a batched workload and validates that batches
// are delivered atomically: every message lands in exactly one slot, all
// subscribers agree on every slot's full batch, and no slot exceeds the
// configured cut bound.
func checkBatchAtomicity() error {
	cfg := batchedConfig()
	trace, err := run(cfg, nil, nil, 3, 8)
	if err != nil {
		return err
	}
	if err := CheckTotalOrder(trace, []msg.Loc{"sub1", "sub2"}); err != nil {
		return err
	}
	if err := integrity(trace, 3, 8); err != nil {
		return err
	}
	seen := make(map[int]bool)
	for _, d := range DeliveriesTo(trace, "sub1") {
		if seen[d.Slot] {
			continue
		}
		seen[d.Slot] = true
		if len(d.Msgs) > cfg.MaxBatch {
			return fmt.Errorf("broadcast: slot %d carries %d messages, cut bound %d", d.Slot, len(d.Msgs), cfg.MaxBatch)
		}
	}
	return nil
}

// checkIntegrity runs a multi-client workload and validates every message
// is delivered exactly once.
func checkIntegrity() error {
	cfg := testConfig()
	trace, err := run(cfg, nil, nil, 3, 10)
	if err != nil {
		return err
	}
	return integrity(trace, 3, 10)
}

func integrity(trace []gpm.TraceEntry, clients, n int) error {
	// Duplicate Deliver notifications from multiple nodes are expected;
	// duplicates WITHIN the deduplicated slot sequence are not. Count per
	// slot once.
	seen := make(map[int]bool)
	got := make(map[string]int)
	for _, d := range DeliveriesTo(trace, "sub1") {
		if seen[d.Slot] {
			continue
		}
		seen[d.Slot] = true
		for _, b := range d.Msgs {
			got[b.key()]++
		}
	}
	for c := 0; c < clients; c++ {
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("client%d/%d", c, i)
			switch got[k] {
			case 0:
				return fmt.Errorf("%w: %s", ErrLost, k)
			case 1:
			default:
				return fmt.Errorf("%w: %s seen %d times", ErrDuplicated, k, got[k])
			}
		}
	}
	return nil
}

// checkSwitching exercises per-slot protocol switching between Paxos and
// TwoThird, the paper's demonstration of modularity.
func checkSwitching() error {
	cfg := testConfig()
	trace, err := run(cfg,
		[]Module{Paxos(), TwoThird()},
		func(slot int) int { return slot % 2 },
		2, 8)
	if err != nil {
		return err
	}
	if err := CheckTotalOrder(trace, []msg.Loc{"sub1", "sub2"}); err != nil {
		return err
	}
	return integrity(trace, 2, 8)
}

// checkGapFree verifies subscribers never see slot k+1 before slot k.
func checkGapFree() error {
	cfg := testConfig()
	trace, err := run(cfg, nil, nil, 2, 12)
	if err != nil {
		return err
	}
	for _, sub := range []msg.Loc{"sub1", "sub2"} {
		high := -1
		for _, d := range DeliveriesTo(trace, sub) {
			if d.Slot > high+1 {
				return fmt.Errorf("broadcast: %s saw slot %d after %d", sub, d.Slot, high)
			}
			if d.Slot == high+1 {
				high = d.Slot
			}
		}
	}
	return nil
}
