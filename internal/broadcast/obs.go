package broadcast

import (
	"fmt"

	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Observability for the broadcast service. The sequencer path updates
// process-wide counters (one atomic add each) and, when tracing is on,
// emits broadcast-layer events so a message can be followed from bcast
// through propose to deliver. Handles are cached here at package init.

var (
	mBcasts    = obs.C("broadcast.bcasts")
	mForwards  = obs.C("broadcast.forwards")
	mProposals = obs.C("broadcast.proposals")
	mDecides   = obs.C("broadcast.decides")
	mDelivers  = obs.C("broadcast.delivers")
	mRejects   = obs.C("broadcast.rejects")
	mBatchSize = obs.H("broadcast.batch_size")
	mP2DNS     = obs.H("broadcast.propose_to_deliver_ns")

	lg = obs.L("broadcast")
)

// The extractor publishes the service's message coordinates to obs
// without obs importing this package.
func init() {
	obs.RegisterExtractor(func(hdr string, body any) (obs.Fields, bool) {
		switch b := body.(type) {
		case Bcast:
			return obs.Fields{Slot: obs.NoField, Ballot: obs.NoField, Span: b.key(), Kind: HdrBcast}, true
		case Deliver:
			return obs.Fields{Slot: int64(b.Slot), Ballot: obs.NoField, Kind: HdrDeliver}, true
		}
		return obs.Fields{}, false
	})
}

// markBcast records a fresh (non-duplicate) client message, forwarded or
// accepted into the local pending batch.
func markBcast(forwarded bool) {
	mBcasts.Inc()
	if forwarded {
		mForwards.Inc()
	}
}

// markProposed records a proposal of batchLen messages for slot and
// stamps the slot so markDelivered can observe the propose-to-deliver
// latency. The stamp lives in sequencer state but never influences
// outputs, so model-checked replays stay deterministic.
func (s *seqState) markProposed(slf msg.Loc, slot, batchLen int) {
	mProposals.Inc()
	mBatchSize.Observe(int64(batchLen))
	if s.propAt == nil {
		s.propAt = make(map[int]int64)
	}
	s.propAt[slot] = obs.Default.Now()
	if lg.Enabled(obs.LevelDebug) {
		lg.WithNode(slf).Debugf("proposed slot %d (batch=%d)", slot, batchLen)
	}
	if obs.Default.Tracing() {
		e := obs.Ev(slf, obs.LayerBroadcast, "bc.propose")
		e.Slot = int64(slot)
		e.Note = fmt.Sprintf("batch=%d", batchLen)
		obs.Default.Record(e)
	}
}

// markDelivered records the in-order delivery of a slot.
func (s *seqState) markDelivered(slf msg.Loc, slot, batchLen int) {
	mDelivers.Inc()
	if at, ok := s.propAt[slot]; ok {
		delete(s.propAt, slot)
		mP2DNS.Observe(obs.Default.Now() - at)
	}
	if lg.Enabled(obs.LevelDebug) {
		lg.WithNode(slf).Debugf("delivered slot %d (batch=%d)", slot, batchLen)
	}
	if obs.Default.Tracing() {
		e := obs.Ev(slf, obs.LayerBroadcast, "bc.deliver")
		e.Slot = int64(slot)
		e.Note = fmt.Sprintf("batch=%d", batchLen)
		obs.Default.Record(e)
	}
}
