package broadcast

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"shadowdb/internal/store"
)

// Sequencer durability. With Config.Stable set, each service node
// journals every decided slot (as the raw consensus value) before
// fanning out its Deliver notifications, and compacts the journal into
// a snapshot of its delivery frontier every seqSnapEvery decisions. A
// re-instantiated node — a real process restart reopening its data
// directory, or a DES/verify rebuild over a store.Mem — restores the
// journal and resumes contiguously: journaled slots are neither
// re-decided nor re-proposed, and delivery continues at the first slot
// after the journaled prefix. Subscribers that missed Deliver fan-out
// during the downtime recover through their own catch-up protocol (the
// SMR replica's WAL + delta fetch), not by sequencer redelivery.

// seqRecord journals one decision: the instance and the consensus
// value (an encoded batch).
type seqRecord struct {
	Inst int
	Val  string
}

// seqSnapshot is the compacted journal: the delivery frontier, the
// proposal high-water mark, and any decided-but-not-yet-contiguous
// slots (still encoded as consensus values).
type seqSnapshot struct {
	Next     int
	PropSlot int
	Decided  map[int]string
}

// seqSnapEvery is how many journal appends trigger a compaction.
const seqSnapEvery = 64

// journal appends one decision write-ahead of its delivery. A storage
// failure panics: a sequencer that cannot journal must not deliver.
func (s *seqState) journal(inst int, val string) {
	if s.st == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(seqRecord{Inst: inst, Val: val}); err != nil {
		panic(fmt.Sprintf("broadcast: encode journal record: %v", err))
	}
	if err := s.st.Append(buf.Bytes()); err != nil {
		panic(fmt.Sprintf("broadcast: sequencer journal: %v", err))
	}
	s.sinceSnap++
	if s.sinceSnap < seqSnapEvery {
		return
	}
	snap := seqSnapshot{Next: s.next, PropSlot: s.propSlot, Decided: make(map[int]string)}
	for slot, b := range s.decided {
		snap.Decided[slot] = EncodeBatch(b)
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		panic(fmt.Sprintf("broadcast: encode journal snapshot: %v", err))
	}
	if err := s.st.SaveSnapshot(buf.Bytes()); err != nil {
		panic(fmt.Sprintf("broadcast: sequencer snapshot: %v", err))
	}
	s.sinceSnap = 0
}

// restore rebuilds the sequencer's decided log from stable storage:
// snapshot first, then the journal tail, then the delivery frontier is
// advanced past the contiguous prefix without re-delivering it.
func (s *seqState) restore(st store.Stable) {
	s.st = st
	if b, ok, err := st.Snapshot(); err == nil && ok {
		var snap seqSnapshot
		if gob.NewDecoder(bytes.NewReader(b)).Decode(&snap) == nil {
			s.next = snap.Next
			s.propSlot = snap.PropSlot
			for slot, val := range snap.Decided {
				if slot < s.next {
					continue
				}
				if batch, err := DecodeBatch(val); err == nil {
					s.decided[slot] = batch
				} else {
					s.decided[slot] = nil
				}
			}
		}
	}
	err := st.Replay(func(rec []byte) error {
		var r seqRecord
		if gob.NewDecoder(bytes.NewReader(rec)).Decode(&r) != nil {
			return nil // skip undecodable records, keep the rest
		}
		if r.Inst > s.propSlot {
			s.propSlot = r.Inst
		}
		if r.Inst < s.next {
			return nil
		}
		if batch, err := DecodeBatch(r.Val); err == nil {
			s.decided[r.Inst] = batch
		} else {
			s.decided[r.Inst] = nil
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("broadcast: sequencer replay: %v", err))
	}
	// The journaled prefix was delivered (or is recoverable by
	// subscribers): resume after it instead of re-delivering.
	for {
		if _, ok := s.decided[s.next]; !ok {
			break
		}
		delete(s.decided, s.next)
		s.next++
	}
	if s.propSlot < s.next-1 {
		s.propSlot = s.next - 1
	}
}
