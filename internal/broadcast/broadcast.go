// Package broadcast implements the paper's total order broadcast service
// (Section II-D): "The total order broadcast service guarantees that the
// participating processes deliver the same messages and in the same order.
// The total order broadcast service builds upon consensus protocols, and
// is able to switch between protocols for different messages."
//
// Every service node runs, in parallel composition, the role classes of
// one or more consensus modules (TwoThird and/or Paxos-Synod) plus a
// sequencer class that batches client messages into consensus proposals
// ("All versions of the broadcast service implement batching, that is,
// multiple messages can be bundled in one Paxos proposal") and delivers
// decided batches gap-free and in slot order to the subscribers.
//
// Two throughput knobs shape the hot path (DESIGN.md §8). Adaptive
// batching: the sequencer cuts a batch when it reaches Config.MaxBatch
// messages, or — when Config.MaxDelay is set — when the oldest pending
// message has waited that long (a flush timer armed per partial batch).
// Pipelining: up to Config.Pipeline consensus instances run concurrently
// instead of stop-and-wait; decided slots are still delivered gap-free
// and in slot order, so neither knob is visible in the delivered
// sequence — only in its rate.
//
// The whole service is an LoE specification, so it can run natively
// ("compiled", the analogue of the paper's Lisp translation), as an
// interpreted term program, or as an optimized term program — the three
// curves of Fig. 8.
package broadcast

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"time"

	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/flow"
	"shadowdb/internal/gpm"
	"shadowdb/internal/interp"
	"shadowdb/internal/loe"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/store"
)

// Message headers of the service.
const (
	// HdrBcast is a client's broadcast request.
	HdrBcast = "bc.bcast"
	// HdrDeliver is the total-order delivery notification.
	HdrDeliver = "bc.deliver"
	// HdrFlush is the sequencer's self-addressed batch-cut timer: a
	// partial batch older than Config.MaxDelay is proposed when its
	// Flush arrives.
	HdrFlush = "bc.flush"
)

// Bcast is a client message to broadcast. From+Seq identify the message
// for deduplication.
type Bcast struct {
	From    msg.Loc
	Seq     int64
	Payload []byte
	// Deadline is the request's absolute deadline (nanoseconds on the
	// deployment clock, 0 = none). Service nodes with a flow clock
	// refuse expired messages on arrival and sweep expired pending
	// messages before proposing them — doomed work never reaches
	// consensus. Once proposed and decided, deadlines are ignored: the
	// order is the order, and every replica applies the same prefix.
	Deadline int64
}

func init() {
	// Envelope deadline stamping: a send whose body is a Bcast carries
	// the request's deadline, so wire transports can refuse expired
	// frames without decoding payloads.
	msg.RegisterDeadline(func(m msg.Msg) (int64, bool) {
		if b, ok := m.Body.(Bcast); ok {
			return b.Deadline, true
		}
		return 0, false
	})
}

// key identifies a Bcast for deduplication. This runs once per message
// per service node (dedup, batch reconciliation), so it is plain
// concatenation rather than fmt.Sprintf; see BenchmarkBcastKey.
func (b Bcast) key() string { return string(b.From) + "/" + strconv.FormatInt(b.Seq, 10) }

// Flush is the body of a batch-cut timer. Gen guards against stale
// timers: only the generation armed for the currently pending partial
// batch cuts it.
type Flush struct {
	Gen int64
}

// Deliver carries one decided batch, tagged with its slot. Subscribers
// receive Deliver messages in contiguous slot order.
type Deliver struct {
	Slot int
	Msgs []Bcast
}

// RegisterWireTypes registers the service's bodies with the wire codec.
func RegisterWireTypes() {
	msg.RegisterBody(Bcast{})
	msg.RegisterBody(Deliver{})
	msg.RegisterBody(Flush{})
	twothird.RegisterWireTypes()
	synod.RegisterWireTypes()
	// Rejects answer refused Bcasts, so they travel wherever Bcasts do.
	flow.RegisterWireTypes()
}

// Mode selects the execution mode of the service — the three curves of
// Fig. 8 in the paper.
type Mode int

// The execution modes.
const (
	// Interpreted runs the generated term program in the λ-calculus
	// interpreter (the paper's SML/OCaml Nuprl interpreters).
	Interpreted Mode = iota + 1
	// InterpretedOpt runs the optimized term program in the interpreter.
	InterpretedOpt
	// Compiled runs the class natively (the paper's Lisp translation).
	Compiled
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Interpreted:
		return "Interpreted"
	case InterpretedOpt:
		return "Inter.-Opt."
	case Compiled:
		return "Compiled"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Module abstracts a consensus protocol the service can sequence with.
type Module interface {
	// Name identifies the module ("paxos", "twothird").
	Name() string
	// Class returns the per-node role class for a group of co-located
	// consensus nodes whose decisions are announced to learners.
	Class(nodes, learners []msg.Loc) loe.Class
	// Propose returns the directives a sequencer at slf emits to propose
	// val for the given instance.
	Propose(slf msg.Loc, nodes []msg.Loc, inst int, val string) []msg.Directive
	// Decide recognizes a decide message body and extracts its instance
	// and value.
	Decide(hdr string, body any) (inst int, val string, ok bool)
}

// ---------------------------------------------------------- paxos module --

type paxosModule struct {
	// window bounds how many instances the Synod leader drives
	// concurrently; 0 means unbounded (the sequencer's own Pipeline
	// setting is the effective bound then).
	window int
	// stable, when set, gives each acceptor durable storage (see
	// synod.Config.Stable): a promise or accepted value is journaled
	// before the reply leaves the node.
	stable func(msg.Loc) store.Stable
	// view, when set, resolves acceptor sets per instance and the
	// decide fan-out per decision from the membership epoch schedule.
	view *member.View
}

// Paxos returns the Synod-backed consensus module.
func Paxos() Module { return paxosModule{} }

// PaxosPipelined returns a Synod module whose leaders command up to
// window instances concurrently (see synod.Config.Window).
func PaxosPipelined(window int) Module { return paxosModule{window: window} }

// PaxosDurable is PaxosPipelined with WAL-backed acceptors: stable maps
// each acceptor to its journal, and the acceptor persists every promise
// and accepted value write-ahead of the reply, so a crash-restart never
// forgets a promise.
func PaxosDurable(window int, stable func(msg.Loc) store.Stable) Module {
	return paxosModule{window: window, stable: stable}
}

// PaxosDynamic is PaxosDurable under dynamic membership: the view
// resolves the acceptor set per instance (a commander captures exactly
// the epoch that governs its instance) and the Decide fan-out per
// decision, so configuration epochs switch Synod quorums atomically at
// their activation slot. stable may be nil for volatile acceptors.
func PaxosDynamic(window int, stable func(msg.Loc) store.Stable, view *member.View) Module {
	return paxosModule{window: window, stable: stable, view: view}
}

func (paxosModule) Name() string { return "paxos" }

func (p paxosModule) Class(nodes, learners []msg.Loc) loe.Class {
	cfg := synod.Config{Leaders: nodes, Acceptors: nodes, Learners: learners,
		Window: p.window, Stable: p.stable}
	if p.view != nil {
		cfg.AcceptorsFor = p.view.AcceptorsFor
		cfg.LearnersFor = p.view.Learners
	}
	return loe.Parallel(synod.AcceptorClass(cfg), synod.LeaderClass(cfg))
}

func (paxosModule) Propose(slf msg.Loc, nodes []msg.Loc, inst int, val string) []msg.Directive {
	// Proposing to the local leader keeps one ballot active in the common
	// case; dueling proposers are resolved by preemption and backoff.
	return []msg.Directive{msg.Send(slf, msg.M(synod.HdrPropose, synod.Propose{Inst: inst, Val: val}))}
}

func (paxosModule) Decide(hdr string, body any) (int, string, bool) {
	if hdr != synod.HdrDecide {
		return 0, "", false
	}
	d, ok := body.(synod.Decide)
	if !ok {
		return 0, "", false
	}
	return d.Inst, d.Val, true
}

// ------------------------------------------------------- twothird module --

type twothirdModule struct{}

// TwoThird returns the TwoThird-Consensus-backed module.
func TwoThird() Module { return twothirdModule{} }

func (twothirdModule) Name() string { return "twothird" }

func (twothirdModule) Class(nodes, learners []msg.Loc) loe.Class {
	cfg := twothird.Config{Nodes: nodes, Learners: learners}
	return twothird.Class(cfg)
}

func (twothirdModule) Propose(slf msg.Loc, nodes []msg.Loc, inst int, val string) []msg.Directive {
	return []msg.Directive{msg.Send(slf, msg.M(twothird.HdrPropose, twothird.Propose{Inst: inst, Val: val}))}
}

func (twothirdModule) Decide(hdr string, body any) (int, string, bool) {
	if hdr != twothird.HdrDecide {
		return 0, "", false
	}
	d, ok := body.(twothird.Decide)
	if !ok {
		return 0, "", false
	}
	return d.Inst, d.Val, true
}

// -------------------------------------------------------------- service --

// Config parameterizes a broadcast service deployment.
type Config struct {
	// Nodes are the service (and consensus) locations; Paxos needs three
	// to tolerate one failure.
	Nodes []msg.Loc
	// Subscribers receive a Deliver notification from EVERY service node;
	// such subscribers must deduplicate by slot (ShadowDB replicas do).
	Subscribers []msg.Loc
	// LocalSubscribers maps a service node to subscribers only that node
	// notifies — the deployment of the paper, where each database replica
	// is co-located with one broadcast process.
	LocalSubscribers map[msg.Loc][]msg.Loc
	// Modules are the available consensus modules; the first is the
	// default. Nil means Paxos only.
	Modules []Module
	// PickModule selects which module decides a slot (index into
	// Modules). Nil means always module 0. This is the paper's
	// per-message protocol switching.
	PickModule func(slot int) int
	// MaxBatch bounds how many client messages one proposal bundles; 0
	// means unbounded.
	MaxBatch int
	// MaxDelay bounds how long a partial batch may wait before being
	// proposed anyway: with MaxDelay set, the sequencer cuts a batch
	// only when it is full (MaxBatch) or when the flush timer armed for
	// its oldest message fires. Zero means propose eagerly whenever the
	// pipeline has room (latency-optimal, batch sizes follow arrival
	// bursts).
	MaxDelay time.Duration
	// Pipeline is the number of consensus instances the sequencer keeps
	// in flight concurrently. 0 or 1 means stop-and-wait (one
	// outstanding proposal, the pre-pipelining behavior). Decided slots
	// are always delivered gap-free in slot order regardless of how many
	// instances race.
	Pipeline int
	// Sequencer designates the node that proposes batches; the other
	// nodes forward client messages to it, keeping a single stable
	// proposer in the common case. Empty means Nodes[0].
	Sequencer msg.Loc
	// Stable, when set, gives each service node a decided-slot journal:
	// every decision is journaled before its Deliver notifications are
	// emitted, and a re-instantiated node restores the journal and
	// resumes delivery contiguously after the journaled prefix instead
	// of re-deciding or re-proposing old slots. Nil keeps the sequencer
	// volatile (the pre-durability behaviour).
	Stable func(msg.Loc) store.Stable
	// FlowLimit, when positive, bounds the sequencer's intake: each
	// service node builds a flow.Queue of this capacity over everything
	// it has admitted but not yet seen decided (pending + in-flight
	// proposals), with nested class thresholds so reads shed first and
	// control traffic last. An arrival that does not fit is answered
	// with an explicit flow.Reject to its origin — never silently
	// dropped — and is deliberately NOT remembered in the dedup set, so
	// a budget-paid retry can be admitted once load drains. 0 disables
	// admission control (the historical unbounded intake).
	FlowLimit int
	// Classify maps an ordered payload to its shed class. The service
	// is payload-agnostic, so the layer that owns the payload format
	// supplies this (core.FlowClass, shard.FlowClass). Nil classifies
	// everything ClassWrite.
	Classify flow.Classifier
	// FlowNow is the deployment clock (virtual in simulation, wall
	// live) for deadline enforcement: with it set, expired arrivals are
	// refused on sight and expired pending messages are swept — with a
	// flow.Reject each — before every proposal. Nil disables deadline
	// enforcement at this layer.
	FlowNow func() time.Duration
	// View, when set, turns on dynamic membership: delivery fan-out is
	// resolved per slot from the epoch schedule (replacing Subscribers
	// and LocalSubscribers — every service node notifies every replica
	// of the slot's epoch, and replicas deduplicate by slot), member
	// commands found in delivered batches are folded into the schedule
	// at their slot, and a joining service node baselines its delivery
	// frontier at its own join slot instead of slot 0. Pair with the
	// PaxosDynamic module so Synod quorums follow the same schedule.
	View *member.View
}

// window is the effective pipeline width.
func (c Config) window() int {
	if c.Pipeline > 1 {
		return c.Pipeline
	}
	return 1
}

func (c Config) sequencer() msg.Loc {
	if c.Sequencer != "" {
		return c.Sequencer
	}
	if len(c.Nodes) > 0 {
		return c.Nodes[0]
	}
	return ""
}

func (c Config) modules() []Module {
	if len(c.Modules) == 0 {
		// The default module inherits the sequencer's pipeline width so
		// the Synod leader can command that many instances concurrently.
		return []Module{PaxosPipelined(c.Pipeline)}
	}
	return c.Modules
}

func (c Config) pick(slot int) int {
	if c.PickModule == nil {
		return 0
	}
	i := c.PickModule(slot)
	if i < 0 || i >= len(c.modules()) {
		return 0
	}
	return i
}

// seqState is the sequencer state of one service node.
type seqState struct {
	pending  []Bcast
	seen     map[string]bool
	decided  map[int][]Bcast
	inflight map[int][]Bcast // slot -> proposed batch awaiting its decision
	next     int             // next slot to deliver
	propSlot int             // highest slot this node ever proposed
	flushGen int64           // generation of the armed flush timer; 0 = none armed
	gen      int64           // flush generation counter
	propAt   map[int]int64   // slot -> propose timestamp (observability only)

	// q is the admission queue over everything admitted but not yet
	// decided (FlowLimit > 0 only); queued tracks which dedup keys hold
	// a queue slot so decide-time release is exact.
	q      *flow.Queue
	queued map[string]flow.Class

	// st journals decided slots write-ahead of their Deliver fan-out
	// when durability is configured; sinceSnap counts records since the
	// last journal compaction.
	st        store.Stable
	sinceSnap int
}

// classOf resolves a message's shed class through the configured
// classifier.
func classOf(cfg Config, b Bcast) flow.Class {
	if cfg.Classify != nil {
		return cfg.Classify(b.Payload)
	}
	return flow.ClassWrite
}

// reject answers a refused message with an explicit flow.Reject to its
// origin: shedding is always client-visible.
func reject(slf msg.Loc, b Bcast, class flow.Class, reason string, depth, qcap int) msg.Directive {
	flow.MarkReject()
	mRejects.Inc()
	return msg.Send(b.From, msg.M(flow.HdrReject, flow.Reject{
		From: slf, Seq: b.Seq, Class: class, Reason: reason, Depth: depth, Cap: qcap,
	}))
}

// sequencerClass builds the batching/ordering class of one service node.
func sequencerClass(cfg Config) loe.Class {
	mods := cfg.modules()
	bases := []loe.Class{loe.Base(HdrBcast), loe.Base(HdrFlush)}
	// The sequencer listens for every module's decide header.
	seenHdr := map[string]bool{}
	for _, m := range mods {
		for _, hdr := range decideHeaders(m) {
			if !seenHdr[hdr] {
				seenHdr[hdr] = true
				bases = append(bases, loe.Base(hdr))
			}
		}
	}
	in := loe.Parallel(bases...)
	init := func(slf msg.Loc) any {
		s := &seqState{
			seen:     make(map[string]bool),
			decided:  make(map[int][]Bcast),
			inflight: make(map[int][]Bcast),
			propSlot: -1,
		}
		if cfg.FlowLimit > 0 {
			// Per-node queue: only the sequencer node's ever fills (the
			// others forward), but each node owns its own accounting so
			// re-instantiation and failover start clean.
			s.q = flow.NewQueue(cfg.FlowLimit)
			s.queued = make(map[string]flow.Class)
		}
		if cfg.Stable != nil {
			if st := cfg.Stable(slf); st != nil {
				s.restore(st)
			}
		}
		return s
	}
	step := func(slf msg.Loc, input, state any) (any, []msg.Directive) {
		s := state.(*seqState)
		switch b := input.(type) {
		case Bcast:
			return s, s.onBcast(cfg, slf, b)
		case Flush:
			return s, s.onFlush(cfg, slf, b)
		}
		// Neither a Bcast nor a Flush: try every module's decide
		// recognizer. The input arrived through a decide base class.
		for _, m := range mods {
			for _, hdr := range decideHeaders(m) {
				if inst, val, ok := m.Decide(hdr, input); ok {
					return s, s.onDecide(cfg, slf, inst, val)
				}
			}
		}
		return s, nil
	}
	return loe.Handler("Sequencer", init, step, in)
}

// decideHeaders lists the headers a module's Decide recognizer accepts.
func decideHeaders(m Module) []string {
	switch m.Name() {
	case "paxos":
		return []string{synod.HdrDecide}
	case "twothird":
		return []string{twothird.HdrDecide}
	default:
		return nil
	}
}

func (s *seqState) onBcast(cfg Config, slf msg.Loc, b Bcast) []msg.Directive {
	if s.seen[b.key()] {
		return nil
	}
	if cfg.FlowNow != nil && flow.Expired(b.Deadline, int64(cfg.FlowNow())) {
		// Expired on arrival (at forwarders too: no point burning a
		// forward hop). A retry of an expired request is just as
		// expired, so the key IS remembered.
		s.seen[b.key()] = true
		flow.MarkExpired()
		return []msg.Directive{reject(slf, b, classOf(cfg, b), flow.ReasonDeadline, 0, 0)}
	}
	if seq := cfg.sequencer(); seq != slf {
		// Non-sequencer nodes forward to the stable proposer; dueling
		// proposers would otherwise preempt each other's ballots.
		s.seen[b.key()] = true
		markBcast(true)
		return []msg.Directive{msg.Send(seq, msg.M(HdrBcast, b))}
	}
	if s.q != nil {
		class := classOf(cfg, b)
		if err := s.q.Admit(class); err != nil {
			// Shed. The key is NOT marked seen: the client may spend
			// retry budget to try again once the queue drains, and the
			// dedup set must not swallow that retry.
			return []msg.Directive{reject(slf, b, class, flow.ReasonOverload, s.q.Len(), s.q.Cap())}
		}
		s.queued[b.key()] = class
	}
	s.seen[b.key()] = true
	markBcast(false)
	s.pending = append(s.pending, b)
	return s.cut(cfg, slf, false)
}

// onFlush handles the batch-cut timer: a stale generation (the partial
// batch it was armed for has since been proposed) is ignored; the live
// one forces the pending partial batch out.
func (s *seqState) onFlush(cfg Config, slf msg.Loc, f Flush) []msg.Directive {
	if f.Gen != s.flushGen || s.flushGen == 0 {
		return nil
	}
	s.flushGen = 0
	return s.cut(cfg, slf, true)
}

func (s *seqState) onDecide(cfg Config, slf msg.Loc, inst int, val string) []msg.Directive {
	// A joining service node must not wait forever for slots ordered
	// before it existed: until it has delivered or proposed anything,
	// it re-checks the epoch schedule and baselines its contiguous
	// frontier at its own join slot (earlier slots belong to epochs it
	// was never a learner of; the replicas got them from the members
	// of those epochs).
	if cfg.View != nil && s.next == 0 && s.propSlot < 0 {
		if base := cfg.View.BaselineOf(slf); base > 0 {
			s.next = base
			for k := range s.decided {
				if k < base {
					delete(s.decided, k)
				}
			}
		}
	}
	if _, dup := s.decided[inst]; dup || inst < s.next {
		return nil // duplicate decision announcement
	}
	batch, err := DecodeBatch(val)
	if err != nil {
		// A corrupt batch cannot happen with honest proposers; deliver
		// the empty batch to keep slots contiguous.
		batch = nil
	}
	s.decided[inst] = batch
	// Write-ahead of the Deliver fan-out below: a crash after the
	// journal append but before delivery resumes past this slot on
	// restart (subscribers recover the gap through their own catch-up).
	s.journal(inst, val)
	mDecides.Inc()
	inBatch := make(map[string]bool, len(batch))
	for _, b := range batch {
		inBatch[b.key()] = true
		// Decided is the terminal outcome admission waits for: free the
		// queue slot of every message of ours this decision resolves.
		if _, ok := s.queued[b.key()]; ok {
			delete(s.queued, b.key())
			s.q.Release()
		}
	}
	// Reconcile the pipeline: the slot's in-flight batch is normally the
	// decided one (single stable sequencer), but a competing proposer may
	// have won the instance — any of our messages not in the decided
	// batch go back to the head of the queue for re-proposal.
	if mine, ok := s.inflight[inst]; ok {
		delete(s.inflight, inst)
		var lost []Bcast
		for _, b := range mine {
			if !inBatch[b.key()] {
				lost = append(lost, b)
			}
		}
		if len(lost) > 0 {
			s.pending = append(lost, s.pending...)
		}
	}
	// Drop messages decided by anyone from our pending set.
	if len(inBatch) > 0 {
		kept := s.pending[:0]
		for _, p := range s.pending {
			if !inBatch[p.key()] {
				kept = append(kept, p)
			}
		}
		s.pending = kept
	}
	// Deliver contiguous decided slots.
	var outs []msg.Directive
	for {
		b, ok := s.decided[s.next]
		if !ok {
			break
		}
		delete(s.decided, s.next)
		s.markDelivered(slf, s.next, len(b))
		// Fold membership commands into the epoch schedule at the slot
		// that ordered them, before resolving this slot's fan-out (the
		// commands only govern later slots; Apply is idempotent, so
		// co-located components racing on the shared view are safe).
		if cfg.View != nil {
			for _, m := range b {
				if cmd, ok := member.DecodeCommand(m.Payload); ok {
					cfg.View.Apply(cmd, s.next)
				}
			}
		}
		d := Deliver{Slot: s.next, Msgs: b}
		subs := cfg.Subscribers
		locals := cfg.LocalSubscribers[slf]
		if cfg.View != nil {
			// Dynamic membership: the slot's epoch names the replicas.
			// Full fan-out from every service node — replicas dedupe by
			// slot — so a replica is never stranded behind a crashed
			// service node it happened to be paired with.
			subs = cfg.View.At(s.next).Replicas
			locals = nil
		}
		for _, sub := range subs {
			outs = append(outs, msg.Send(sub, msg.M(HdrDeliver, d)))
		}
		for _, sub := range locals {
			outs = append(outs, msg.Send(sub, msg.M(HdrDeliver, d)))
		}
		s.next++
	}
	// Covering fsync for the write-ahead contract: the journal appends
	// above (this decision, and any earlier out-of-order ones now being
	// delivered) must be stable before the Deliver fan-out leaves the
	// node. One Sync covers the whole contiguous run — under the batch
	// policy a full pipeline window of decisions costs one fsync here
	// instead of one per slot (no-op under SyncAlways, where Append
	// already synced; no-op under SyncNever by policy).
	if s.st != nil && len(outs) > 0 {
		if err := s.st.Sync(); err != nil {
			panic(fmt.Sprintf("broadcast: sequencer sync: %v", err))
		}
	}
	return append(outs, s.cut(cfg, slf, false)...)
}

// cut applies the adaptive cut policy: propose as many batches as the
// pipeline window allows. A batch is cut when it is full (MaxBatch), when
// the policy is eager (MaxDelay == 0), or when the flush timer forced it
// (flush). A partial batch left waiting arms the flush timer for its
// oldest message, so no message waits longer than MaxDelay to be
// proposed once the window has room.
func (s *seqState) cut(cfg Config, slf msg.Loc, flush bool) []msg.Directive {
	outs := s.sweepExpired(cfg, slf)
	for len(s.pending) > 0 && len(s.inflight) < cfg.window() {
		full := cfg.MaxBatch > 0 && len(s.pending) >= cfg.MaxBatch
		if cfg.MaxDelay > 0 && !full && !flush {
			break
		}
		outs = append(outs, s.propose(cfg, slf)...)
	}
	if len(s.pending) > 0 && len(s.inflight) < cfg.window() &&
		cfg.MaxDelay > 0 && s.flushGen == 0 {
		s.gen++
		s.flushGen = s.gen
		outs = append(outs, msg.SendAfter(cfg.MaxDelay, slf, msg.M(HdrFlush, Flush{Gen: s.gen})))
	}
	return outs
}

// sweepExpired drops pending messages whose deadline has passed before
// they consume a consensus slot, answering each with a deadline
// Reject. It runs at the head of every cut, so a message is checked
// one last time right before it would be proposed; once in flight it
// is past the point of no return (the decided order must be applied by
// every replica regardless of deadlines).
func (s *seqState) sweepExpired(cfg Config, slf msg.Loc) []msg.Directive {
	if cfg.FlowNow == nil || len(s.pending) == 0 {
		return nil
	}
	now := int64(cfg.FlowNow())
	var outs []msg.Directive
	kept := s.pending[:0]
	for _, p := range s.pending {
		if !flow.Expired(p.Deadline, now) {
			kept = append(kept, p)
			continue
		}
		flow.MarkExpired()
		depth, qcap := 0, 0
		class := classOf(cfg, p)
		if c, ok := s.queued[p.key()]; ok {
			class = c
			delete(s.queued, p.key())
			s.q.Release()
			depth, qcap = s.q.Len(), s.q.Cap()
		}
		outs = append(outs, reject(slf, p, class, flow.ReasonDeadline, depth, qcap))
	}
	s.pending = kept
	return outs
}

// propose cuts one batch off the head of the pending queue and proposes
// it for the next free slot.
func (s *seqState) propose(cfg Config, slf msg.Loc) []msg.Directive {
	n := len(s.pending)
	if cfg.MaxBatch > 0 && n > cfg.MaxBatch {
		n = cfg.MaxBatch
	}
	// Copy: the pending queue's backing array is filtered in place on
	// decide, which would otherwise scribble over the in-flight batch.
	batch := append([]Bcast(nil), s.pending[:n]...)
	s.pending = s.pending[n:]
	slot := s.nextFreeSlot()
	s.inflight[slot] = batch
	s.propSlot = slot
	s.markProposed(slf, slot, len(batch))
	mod := cfg.modules()[cfg.pick(slot)]
	return mod.Propose(slf, cfg.Nodes, slot, EncodeBatch(batch))
}

// nextFreeSlot picks the lowest slot that is neither decided nor
// occupied by an in-flight proposal, never below any slot this node ever
// proposed (re-proposing a slot we may still win would duel ourselves).
func (s *seqState) nextFreeSlot() int {
	slot := s.next
	if s.propSlot >= slot {
		slot = s.propSlot + 1
	}
	for {
		_, done := s.decided[slot]
		_, busy := s.inflight[slot]
		if !done && !busy {
			return slot
		}
		slot++
	}
}

// ------------------------------------------------------------- encoding --

// EncodeBatch serializes a batch deterministically for use as a consensus
// value.
func EncodeBatch(batch []Bcast) string {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(batch); err != nil {
		// Bcast contains only gob-encodable fields; this cannot fail.
		panic(fmt.Sprintf("broadcast: encode batch: %v", err))
	}
	return buf.String()
}

// DecodeBatch reverses EncodeBatch. Malformed input — truncated,
// corrupted, or adversarial bytes that make the gob decoder panic —
// returns an error, never a crash: consensus values can cross the wire
// and the WAL, so this path must be total.
func DecodeBatch(val string) (batch []Bcast, err error) {
	defer func() {
		if r := recover(); r != nil {
			batch, err = nil, fmt.Errorf("broadcast: decode batch: %v", r)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader([]byte(val))).Decode(&batch); err != nil {
		return nil, fmt.Errorf("broadcast: decode batch: %w", err)
	}
	return batch, nil
}

// ----------------------------------------------------------------- spec --

// Spec builds the full service specification: every node runs the
// consensus role classes of all configured modules in parallel with the
// sequencer.
func Spec(cfg Config) loe.Spec {
	classes := []loe.Class{sequencerClass(cfg)}
	for _, m := range cfg.modules() {
		classes = append(classes, m.Class(cfg.Nodes, cfg.Nodes))
	}
	return loe.Spec{
		Name:   "Broadcast Service",
		Main:   loe.Parallel(classes...),
		Locs:   append([]msg.Loc(nil), cfg.Nodes...),
		Params: 4,
	}
}

// Generator compiles the service for the chosen execution mode. For the
// interpreted modes the shared evaluator is returned so callers can read
// its step counter; it is nil in compiled mode.
func Generator(cfg Config, mode Mode) (gpm.Generator, *interp.Evaluator, error) {
	spec := Spec(cfg)
	switch mode {
	case Compiled:
		return spec.Generator(), nil, nil
	case Interpreted:
		ev := &interp.Evaluator{}
		gen, err := interp.Generator(interp.CompileSpec(spec), spec.Locs, ev)
		if err != nil {
			return nil, nil, fmt.Errorf("compile service to terms: %w", err)
		}
		return gen, ev, nil
	case InterpretedOpt:
		ev := &interp.Evaluator{}
		gen, err := interp.Generator(interp.OptimizeSpec(spec), spec.Locs, ev)
		if err != nil {
			return nil, nil, fmt.Errorf("optimize service terms: %w", err)
		}
		return gen, ev, nil
	default:
		return nil, nil, fmt.Errorf("broadcast: unknown mode %v", mode)
	}
}

// DeliveriesTo extracts the Deliver bodies sent to one subscriber from a
// trace, in emission order.
func DeliveriesTo(trace []gpm.TraceEntry, sub msg.Loc) []Deliver {
	var out []Deliver
	for _, e := range trace {
		for _, o := range e.Outs {
			if o.Dest == sub && o.M.Hdr == HdrDeliver {
				out = append(out, o.M.Body.(Deliver))
			}
		}
	}
	return out
}

// CheckTotalOrder validates that every subscriber saw the same contiguous
// slot sequence with identical batches — the service's defining property.
// Subscribers notified by several nodes see duplicate slots; duplicates
// must carry identical batches, and deduplicated slots must be contiguous
// and monotone.
func CheckTotalOrder(trace []gpm.TraceEntry, subs []msg.Loc) error {
	ref := make(map[int][]Bcast)
	for i, sub := range subs {
		bySlot := make(map[int][]Bcast)
		high := -1
		for _, d := range DeliveriesTo(trace, sub) {
			if prev, dup := bySlot[d.Slot]; dup {
				if !sameBatch(prev, d.Msgs) {
					return fmt.Errorf("broadcast: subscriber %s got two batches for slot %d", sub, d.Slot)
				}
				continue
			}
			bySlot[d.Slot] = d.Msgs
			if d.Slot > high {
				high = d.Slot
			}
		}
		for k := 0; k <= high; k++ {
			if _, ok := bySlot[k]; !ok {
				return fmt.Errorf("broadcast: subscriber %s has a gap at slot %d", sub, k)
			}
		}
		if i == 0 {
			ref = bySlot
			continue
		}
		for k, b := range bySlot {
			if rb, ok := ref[k]; ok && !sameBatch(rb, b) {
				return fmt.Errorf("broadcast: subscribers %s and %s disagree at slot %d", subs[0], sub, k)
			}
		}
	}
	return nil
}

func sameBatch(a, b []Bcast) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i], kb[i] = a[i].key(), b[i].key()
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
