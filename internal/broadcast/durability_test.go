package broadcast

import (
	"testing"

	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
	"shadowdb/internal/store"
)

func durableSeqCfg(prov store.Provider) Config {
	return Config{
		Nodes:       []msg.Loc{"b1"},
		Subscribers: []msg.Loc{"r1"},
		Stable: func(l msg.Loc) store.Stable {
			st, err := prov.Open("seq-" + string(l))
			if err != nil {
				panic(err)
			}
			return st
		},
	}
}

func decideMsg(inst int, msgs ...Bcast) msg.Msg {
	return msg.M(synod.HdrDecide, synod.Decide{Inst: inst, Val: EncodeBatch(msgs)})
}

func deliversIn(outs []msg.Directive) []Deliver {
	var ds []Deliver
	for _, o := range outs {
		if o.M.Hdr == HdrDeliver {
			ds = append(ds, o.M.Body.(Deliver))
		}
	}
	return ds
}

// A rebuilt sequencer resumes delivery contiguously after the journaled
// prefix: old slots are neither re-delivered nor re-decided, and new
// proposals go to fresh slots.
func TestSequencerJournalResumesContiguously(t *testing.T) {
	prov := store.NewMem()
	cfg := durableSeqCfg(prov)
	cl := sequencerClass(cfg)

	p := loe.NewProcess(cl, "b1")
	var outs []msg.Directive
	p, outs = p.Step(decideMsg(0, Bcast{From: "c1", Seq: 1, Payload: []byte("x")}))
	if ds := deliversIn(outs); len(ds) != 1 || ds[0].Slot != 0 {
		t.Fatalf("slot 0 delivery: %v", ds)
	}
	p, outs = p.Step(decideMsg(1, Bcast{From: "c1", Seq: 2, Payload: []byte("y")}))
	if ds := deliversIn(outs); len(ds) != 1 || ds[0].Slot != 1 {
		t.Fatalf("slot 1 delivery: %v", ds)
	}
	_ = p

	// Crash: rebuild from the journal.
	fresh := loe.NewProcess(cl, "b1")

	// A duplicate announcement of a journaled slot is ignored, not
	// re-delivered.
	fresh, outs = fresh.Step(decideMsg(1, Bcast{From: "c1", Seq: 2, Payload: []byte("y")}))
	if ds := deliversIn(outs); len(ds) != 0 {
		t.Fatalf("journaled slot re-delivered after restart: %v", ds)
	}
	// The next decision continues exactly where the journal ends.
	fresh, outs = fresh.Step(decideMsg(2, Bcast{From: "c1", Seq: 3, Payload: []byte("z")}))
	ds := deliversIn(outs)
	if len(ds) != 1 || ds[0].Slot != 2 {
		t.Fatalf("post-restart delivery: %v, want exactly slot 2", ds)
	}
	// A new client message is proposed for a fresh slot, never a
	// journaled one.
	_, outs = fresh.Step(msg.M(HdrBcast, Bcast{From: "c2", Seq: 1, Payload: []byte("w")}))
	for _, o := range outs {
		if prop, ok := o.M.Body.(synod.Propose); ok && prop.Inst <= 2 {
			t.Fatalf("restarted sequencer re-proposed slot %d", prop.Inst)
		}
	}
}

// Journal compaction (snapshot + rotation) preserves out-of-order
// decided slots across a restart.
func TestSequencerJournalCompaction(t *testing.T) {
	prov := store.NewMem()
	cfg := durableSeqCfg(prov)
	cl := sequencerClass(cfg)

	p := loe.NewProcess(cl, "b1")
	// Decide slot 1 before slot 0 so an out-of-order slot is in the
	// decided map when the compaction threshold is crossed, then fill
	// in the rest contiguously.
	p, _ = p.Step(decideMsg(1, Bcast{From: "c1", Seq: 2, Payload: []byte("b")}))
	for i := 0; i < seqSnapEvery+4; i++ {
		if i == 1 {
			continue
		}
		p, _ = p.Step(decideMsg(i, Bcast{From: "c1", Seq: int64(i + 1), Payload: []byte("v")}))
	}
	_ = p

	fresh := loe.NewProcess(cl, "b1")
	_, outs := fresh.Step(decideMsg(seqSnapEvery+4, Bcast{From: "c1", Seq: 99, Payload: []byte("tail")}))
	ds := deliversIn(outs)
	if len(ds) != 1 || ds[0].Slot != seqSnapEvery+4 {
		t.Fatalf("delivery after compacted restart: %v, want slot %d", ds, seqSnapEvery+4)
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	for _, bad := range []string{"", "garbage", "\x00\x01\x02", string(make([]byte, 64))} {
		if _, err := DecodeBatch(bad); err == nil {
			t.Errorf("DecodeBatch(%q) accepted malformed input", bad)
		}
	}
	// Round trip still works.
	in := []Bcast{{From: "c", Seq: 9, Payload: []byte("p")}}
	out, err := DecodeBatch(EncodeBatch(in))
	if err != nil || len(out) != 1 || out[0].From != in[0].From || out[0].Seq != in[0].Seq || string(out[0].Payload) != string(in[0].Payload) {
		t.Fatalf("round trip: %v %v", out, err)
	}
}
