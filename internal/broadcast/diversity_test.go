package broadcast

import (
	"testing"

	"shadowdb/internal/gpm"
	"shadowdb/internal/interp"
	"shadowdb/internal/msg"
)

// Section III-C of the paper: "We can exploit this diversity for
// increased reliability by running different replicas in different
// interpreters." Because the interpreted, optimized and compiled forms
// of the service are bisimilar, a deployment may mix them freely; this
// test runs one node per execution mode and checks the service still
// delivers a correct total order.
func TestDiverseExecutionModes(t *testing.T) {
	cfg := Config{
		Nodes:       []msg.Loc{"b1", "b2", "b3"},
		Subscribers: []msg.Loc{"sub1", "sub2"},
	}
	spec := Spec(cfg)
	native := spec.Generator()
	ev := &interp.Evaluator{}
	interpGen, err := interp.Generator(interp.CompileSpec(spec), spec.Locs, ev)
	if err != nil {
		t.Fatal(err)
	}
	optGen, err := interp.Generator(interp.OptimizeSpec(spec), spec.Locs, ev)
	if err != nil {
		t.Fatal(err)
	}
	// b1 compiled (it is the sequencer), b2 interpreted, b3 optimized.
	gen := func(slf msg.Loc) gpm.Process {
		switch slf {
		case "b2":
			return interpGen(slf)
		case "b3":
			return optGen(slf)
		default:
			return native(slf)
		}
	}
	r := gpm.NewRunner(gpm.System{Gen: gen, Locs: cfg.Nodes})
	const n = 6
	for i := 0; i < n; i++ {
		r.Inject(cfg.Nodes[i%3], msg.M(HdrBcast, Bcast{
			From: "client", Seq: int64(i), Payload: []byte{byte(i)},
		}))
	}
	if _, err := r.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if err := CheckTotalOrder(r.Trace(), []msg.Loc{"sub1", "sub2"}); err != nil {
		t.Fatalf("diverse deployment broke total order: %v", err)
	}
	// Every message was delivered despite the mixed runtimes.
	seen := make(map[int]bool)
	count := 0
	for _, d := range DeliveriesTo(r.Trace(), "sub1") {
		if seen[d.Slot] {
			continue
		}
		seen[d.Slot] = true
		count += len(d.Msgs)
	}
	if count != n {
		t.Errorf("delivered %d of %d messages", count, n)
	}
	if ev.Steps == 0 {
		t.Error("the interpreted nodes did no term-reduction work")
	}
}
