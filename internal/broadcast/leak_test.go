package broadcast

import (
	"testing"
	"time"

	"shadowdb/internal/leaktest"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/runtime"
)

// The suite's goroutine hygiene: hosting the broadcast service on real
// hosts must leave nothing running once the hosts close — host loops,
// pending proposal timers, and transport pumps all shut down.
func TestHostedServiceLeavesNoGoroutines(t *testing.T) {
	leaktest.Check(t,
		"shadowdb/internal/broadcast",
		"shadowdb/internal/runtime",
		"shadowdb/internal/network",
	)

	nodes := []msg.Loc{"b1", "b2", "b3"}
	cfg := Config{Nodes: nodes, Subscribers: []msg.Loc{"sub"}}
	gen := Spec(cfg).Generator()

	hub := network.NewHub()
	var hosts []*runtime.Host
	defer func() {
		for _, h := range hosts {
			_ = h.Close()
		}
	}()
	for _, b := range nodes {
		tr, err := hub.Register(b)
		if err != nil {
			t.Fatal(err)
		}
		h := runtime.NewHost(b, tr, gen(b))
		h.Obs = obs.New(64)
		h.Start()
		hosts = append(hosts, h)
	}
	sub, err := hub.Register("sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	cli, err := hub.Register("cli")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Send(msg.Envelope{From: "cli", To: "b1",
		M: msg.M(HdrBcast, Bcast{From: "cli", Seq: 1, Payload: []byte("x")})}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case env := <-sub.Receive():
			if d, ok := env.M.Body.(Deliver); ok && d.Slot == 0 {
				return // delivered; deferred closes + leaktest do the rest
			}
		case <-deadline:
			t.Fatal("broadcast never delivered")
		}
	}
}
