package broadcast

import (
	"fmt"
	"testing"
	"testing/quick"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
)

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	f := func(from string, seq int64, payload []byte) bool {
		in := []Bcast{{From: msg.Loc(from), Seq: seq, Payload: payload}}
		out, err := DecodeBatch(EncodeBatch(in))
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0].From == msg.Loc(from) && out[0].Seq == seq &&
			string(out[0].Payload) == string(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeBatchGarbage(t *testing.T) {
	if _, err := DecodeBatch("not a batch"); err == nil {
		t.Error("DecodeBatch accepted garbage")
	}
}

func TestSingleBroadcastDelivered(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("b1", msg.M(HdrBcast, Bcast{From: "c1", Seq: 1, Payload: []byte("hello")}))
	if _, err := r.Run(100_000); err != nil {
		t.Fatal(err)
	}
	ds := DeliveriesTo(r.Trace(), "sub1")
	if len(ds) == 0 {
		t.Fatal("no deliveries")
	}
	if ds[0].Slot != 0 || len(ds[0].Msgs) != 1 || string(ds[0].Msgs[0].Payload) != "hello" {
		t.Errorf("first delivery = %+v", ds[0])
	}
	if err := CheckTotalOrder(r.Trace(), []msg.Loc{"sub1", "sub2"}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateClientMessageSuppressed(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	b := Bcast{From: "c1", Seq: 7, Payload: []byte("once")}
	// The client retries against the same node; only one copy may be
	// sequenced.
	r.Inject("b1", msg.M(HdrBcast, b))
	r.Inject("b1", msg.M(HdrBcast, b))
	if _, err := r.Run(100_000); err != nil {
		t.Fatal(err)
	}
	count := 0
	seen := make(map[int]bool)
	for _, d := range DeliveriesTo(r.Trace(), "sub1") {
		if seen[d.Slot] {
			continue
		}
		seen[d.Slot] = true
		for _, m := range d.Msgs {
			if m.From == "c1" && m.Seq == 7 {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("message sequenced %d times, want 1", count)
	}
}

func TestBatchingBundlesMessages(t *testing.T) {
	cfg := testConfig()
	r := gpm.NewRunner(Spec(cfg).System())
	const n = 40
	for i := 0; i < n; i++ {
		r.Inject("b1", msg.M(HdrBcast, Bcast{From: "c1", Seq: int64(i)}))
	}
	if _, err := r.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	slots := make(map[int]int)
	for _, d := range DeliveriesTo(r.Trace(), "sub1") {
		slots[d.Slot] = len(d.Msgs)
	}
	total := 0
	for _, k := range slots {
		total += k
	}
	if total != n {
		t.Fatalf("delivered %d messages, want %d", total, n)
	}
	if len(slots) >= n {
		t.Errorf("used %d slots for %d messages; batching had no effect", len(slots), n)
	}
}

func TestMaxBatchHonoured(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 3
	r := gpm.NewRunner(Spec(cfg).System())
	for i := 0; i < 20; i++ {
		r.Inject("b1", msg.M(HdrBcast, Bcast{From: "c1", Seq: int64(i)}))
	}
	if _, err := r.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, d := range DeliveriesTo(r.Trace(), "sub1") {
		if seen[d.Slot] {
			continue
		}
		seen[d.Slot] = true
		if len(d.Msgs) > 3 {
			t.Errorf("slot %d carried %d messages, max 3", d.Slot, len(d.Msgs))
		}
	}
}

func TestConcurrentProposersConverge(t *testing.T) {
	cfg := testConfig()
	trace, err := run(cfg, nil, nil, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTotalOrder(trace, []msg.Loc{"sub1", "sub2"}); err != nil {
		t.Fatal(err)
	}
	if err := integrity(trace, 3, 15); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSubscribers(t *testing.T) {
	cfg := Config{
		Nodes: []msg.Loc{"b1", "b2", "b3"},
		LocalSubscribers: map[msg.Loc][]msg.Loc{
			"b1": {"replica1"},
			"b2": {"replica2"},
		},
	}
	r := gpm.NewRunner(Spec(cfg).System())
	r.Inject("b1", msg.M(HdrBcast, Bcast{From: "c", Seq: 1, Payload: []byte("x")}))
	if _, err := r.Run(100_000); err != nil {
		t.Fatal(err)
	}
	d1 := DeliveriesTo(r.Trace(), "replica1")
	d2 := DeliveriesTo(r.Trace(), "replica2")
	if len(d1) != 1 || len(d2) != 1 {
		t.Fatalf("replica deliveries = %d/%d, want exactly 1 each", len(d1), len(d2))
	}
}

func TestTwoThirdBackend(t *testing.T) {
	cfg := testConfig()
	trace, err := run(cfg, []Module{TwoThird()}, nil, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTotalOrder(trace, []msg.Loc{"sub1", "sub2"}); err != nil {
		t.Fatal(err)
	}
	if err := integrity(trace, 2, 6); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolSwitching(t *testing.T) {
	if err := checkSwitching(); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Interpreted.String() != "Interpreted" ||
		InterpretedOpt.String() != "Inter.-Opt." ||
		Compiled.String() != "Compiled" {
		t.Error("Mode.String mismatch")
	}
}

func TestGeneratorModes(t *testing.T) {
	cfg := Config{Nodes: []msg.Loc{"b1", "b2", "b3"}, Subscribers: []msg.Loc{"sub"}}
	for _, mode := range []Mode{Compiled, InterpretedOpt} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			gen, ev, err := Generator(cfg, mode)
			if err != nil {
				t.Fatal(err)
			}
			if mode == Compiled && ev != nil {
				t.Error("compiled mode returned an evaluator")
			}
			r := gpm.NewRunner(gpm.System{Gen: gen, Locs: cfg.Nodes})
			r.Inject("b1", msg.M(HdrBcast, Bcast{From: "c", Seq: 1, Payload: []byte("m")}))
			if _, err := r.Run(500_000); err != nil {
				t.Fatal(err)
			}
			ds := DeliveriesTo(r.Trace(), "sub")
			if len(ds) == 0 {
				t.Fatalf("%s mode delivered nothing", mode)
			}
			if mode != Compiled && ev.Steps == 0 {
				t.Error("interpreter did no work")
			}
		})
	}
}

func TestProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is slow")
	}
	for _, p := range Properties() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Check(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCheckTotalOrderRejectsDisagreement(t *testing.T) {
	mk := func(sub msg.Loc, slot int, payload string) gpm.TraceEntry {
		return gpm.TraceEntry{
			Loc: "b1",
			Outs: []msg.Directive{msg.Send(sub, msg.M(HdrDeliver, Deliver{
				Slot: slot,
				Msgs: []Bcast{{From: "c", Seq: 1, Payload: []byte(payload)}},
			}))},
		}
	}
	trace := []gpm.TraceEntry{
		mk("sub1", 0, "x"),
		{Loc: "b1", Outs: []msg.Directive{msg.Send("sub2", msg.M(HdrDeliver, Deliver{
			Slot: 0,
			Msgs: []Bcast{{From: "d", Seq: 9, Payload: []byte("y")}},
		}))}},
	}
	if err := CheckTotalOrder(trace, []msg.Loc{"sub1", "sub2"}); err == nil {
		t.Error("disagreeing subscribers accepted")
	}

	gap := []gpm.TraceEntry{mk("sub1", 1, "x")}
	if err := CheckTotalOrder(gap, []msg.Loc{"sub1"}); err == nil {
		t.Error("slot gap accepted")
	}
}

// BenchmarkBcastKey measures the dedup-map key construction on the
// sequencer hot path (one key per submitted message). The plain
// concatenation it uses today replaced a fmt.Sprintf that dominated the
// sequencer's per-message CPU in profiles; BenchmarkBcastKeySprintf
// keeps the old formulation for comparison.
func BenchmarkBcastKey(b *testing.B) {
	bc := Bcast{From: "client42", Seq: 1234567}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if bc.key() == "" {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkBcastKeySprintf(b *testing.B) {
	bc := Bcast{From: "client42", Seq: 1234567}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fmt.Sprintf("%s/%d", bc.From, bc.Seq) == "" {
			b.Fatal("empty key")
		}
	}
}
