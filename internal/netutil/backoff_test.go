package netutil

import (
	"testing"
	"time"
)

func TestDelayDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: 3 * time.Second}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		3 * time.Second, 3 * time.Second, 3 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i, 0); got != w {
			t.Fatalf("attempt %d: got %v want %v", i, got, w)
		}
	}
	// Huge attempt counts must not overflow the shift.
	if got := b.Delay(200, 0); got != 3*time.Second {
		t.Fatalf("attempt 200: got %v want cap", got)
	}
}

func TestDelayDefaultCap(t *testing.T) {
	b := Backoff{Base: 2 * time.Second}
	if got := b.Delay(10, 0); got != 32*time.Second {
		t.Fatalf("default cap: got %v want 16*base", got)
	}
}

func TestDelayCapBelowBase(t *testing.T) {
	b := Backoff{Base: 2 * time.Second, Cap: time.Second}
	if got := b.Delay(0, 0); got != 2*time.Second {
		t.Fatalf("attempt 0 returns base untouched: got %v", got)
	}
	if got := b.Delay(3, 0); got != time.Second {
		t.Fatalf("retries clamp to cap: got %v", got)
	}
}

func TestDelayJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: time.Second, Jitter: 0.5, Seed: StrSeed("client3")}
	// Attempt 0 is the un-jittered base: the first timeout is a policy
	// constant, not a random variable.
	if got := b.Delay(0, 7); got != time.Second {
		t.Fatalf("attempt 0 jittered: %v", got)
	}
	for attempt := 1; attempt <= 5; attempt++ {
		for key := uint64(0); key < 20; key++ {
			d1 := b.Delay(attempt, key)
			d2 := b.Delay(attempt, key)
			if d1 != d2 {
				t.Fatalf("nondeterministic delay at attempt=%d key=%d", attempt, key)
			}
			sched := b.Delay(attempt, key) // recompute bounds from the pure schedule
			base := Backoff{Base: b.Base, Cap: b.Cap}.Delay(attempt, key)
			lo := base - time.Duration(0.25*float64(base)) - 1
			hi := base + time.Duration(0.25*float64(base)) + 1
			if sched < lo || sched > hi {
				t.Fatalf("attempt=%d key=%d delay %v outside ±25%% of %v", attempt, key, sched, base)
			}
		}
	}
	// Distinct keys must actually spread: all-equal jitter would mean a
	// retry stampede from clients that failed together.
	distinct := map[time.Duration]bool{}
	for key := uint64(0); key < 16; key++ {
		distinct[b.Delay(2, key)] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("jitter does not spread across keys: %d distinct of 16", len(distinct))
	}
}

func TestStrSeedStable(t *testing.T) {
	if StrSeed("r1") == StrSeed("r2") {
		t.Fatal("distinct strings hash equal")
	}
	if StrSeed("r1") != StrSeed("r1") {
		t.Fatal("unstable hash")
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("mix collides on adjacent inputs")
	}
}
