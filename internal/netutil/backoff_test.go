package netutil

import (
	"testing"
	"time"
)

func TestDelayDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: 3 * time.Second}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		3 * time.Second, 3 * time.Second, 3 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i, 0); got != w {
			t.Fatalf("attempt %d: got %v want %v", i, got, w)
		}
	}
	// Huge attempt counts must not overflow the shift.
	if got := b.Delay(200, 0); got != 3*time.Second {
		t.Fatalf("attempt 200: got %v want cap", got)
	}
}

func TestDelayDefaultCap(t *testing.T) {
	b := Backoff{Base: 2 * time.Second}
	if got := b.Delay(10, 0); got != 32*time.Second {
		t.Fatalf("default cap: got %v want 16*base", got)
	}
}

func TestDelayCapBelowBase(t *testing.T) {
	b := Backoff{Base: 2 * time.Second, Cap: time.Second}
	if got := b.Delay(0, 0); got != 2*time.Second {
		t.Fatalf("attempt 0 returns base untouched: got %v", got)
	}
	if got := b.Delay(3, 0); got != time.Second {
		t.Fatalf("retries clamp to cap: got %v", got)
	}
}

func TestDelayJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: time.Second, Jitter: 0.5, Seed: StrSeed("client3")}
	// Attempt 0 is the un-jittered base: the first timeout is a policy
	// constant, not a random variable.
	if got := b.Delay(0, 7); got != time.Second {
		t.Fatalf("attempt 0 jittered: %v", got)
	}
	for attempt := 1; attempt <= 5; attempt++ {
		for key := uint64(0); key < 20; key++ {
			d1 := b.Delay(attempt, key)
			d2 := b.Delay(attempt, key)
			if d1 != d2 {
				t.Fatalf("nondeterministic delay at attempt=%d key=%d", attempt, key)
			}
			sched := b.Delay(attempt, key) // recompute bounds from the pure schedule
			base := Backoff{Base: b.Base, Cap: b.Cap}.Delay(attempt, key)
			lo := base - time.Duration(0.25*float64(base)) - 1
			hi := base + time.Duration(0.25*float64(base)) + 1
			if sched < lo || sched > hi {
				t.Fatalf("attempt=%d key=%d delay %v outside ±25%% of %v", attempt, key, sched, base)
			}
		}
	}
	// Distinct keys must actually spread: all-equal jitter would mean a
	// retry stampede from clients that failed together.
	distinct := map[time.Duration]bool{}
	for key := uint64(0); key < 16; key++ {
		distinct[b.Delay(2, key)] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("jitter does not spread across keys: %d distinct of 16", len(distinct))
	}
}

// Full-jitter mode: table-driven bounds check. For every (policy,
// attempt) row the delay must be deterministic, land in [Base, sched]
// where sched is the exponential schedule clamped to the cap, keep the
// schedule's upper envelope monotone non-decreasing in attempt, and
// never exceed the cap.
func TestDelayFullJitterBoundsAndMonotoneCap(t *testing.T) {
	cases := []struct {
		name string
		b    Backoff
		// maxSched[i] is the expected un-jittered envelope at attempt i.
		maxSched []time.Duration
	}{
		{
			name: "redial-shape",
			b:    Backoff{Base: 50 * time.Millisecond, Cap: 3 * time.Second, Full: true, Seed: StrSeed("peerA")},
			maxSched: []time.Duration{
				50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
				400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
				3 * time.Second, 3 * time.Second,
			},
		},
		{
			name: "default-cap",
			b:    Backoff{Base: time.Second, Full: true, Seed: 7},
			maxSched: []time.Duration{
				time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
				16 * time.Second, 16 * time.Second, 16 * time.Second,
			},
		},
		{
			name: "cap-below-base",
			b:    Backoff{Base: 2 * time.Second, Cap: time.Second, Full: true, Seed: 3},
			maxSched: []time.Duration{
				2 * time.Second, time.Second, time.Second,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prevEnv := time.Duration(0)
			for attempt, sched := range tc.maxSched {
				if env := (Backoff{Base: tc.b.Base, Cap: tc.b.Cap}).Delay(attempt, 0); env != sched {
					t.Fatalf("attempt %d: schedule envelope %v, want %v", attempt, env, sched)
				}
				// Monotone cap behavior: the envelope never decreases
				// past attempt 0 and saturates at the cap.
				if attempt > 1 && sched < prevEnv {
					t.Fatalf("attempt %d: envelope %v < previous %v", attempt, sched, prevEnv)
				}
				if attempt > 0 {
					prevEnv = sched
				}
				for key := uint64(0); key < 50; key++ {
					d := tc.b.Delay(attempt, key)
					if d != tc.b.Delay(attempt, key) {
						t.Fatalf("nondeterministic at attempt=%d key=%d", attempt, key)
					}
					if attempt == 0 {
						if d != sched {
							t.Fatalf("attempt 0 must be the unjittered base: got %v", d)
						}
						continue
					}
					lo := tc.b.Base
					if sched < lo {
						lo = sched // cap below base: schedule is the floor too
					}
					if d < lo || d > sched {
						t.Fatalf("attempt=%d key=%d: %v outside [%v, %v]", attempt, key, d, lo, sched)
					}
				}
			}
			// Distribution actually spreads across the window: with 50
			// keys at a wide attempt, expect many distinct values and
			// coverage of both the lower and upper half of [Base, sched].
			attempt := len(tc.maxSched) - 1
			sched := (Backoff{Base: tc.b.Base, Cap: tc.b.Cap}).Delay(attempt, 0)
			if sched > tc.b.Base {
				distinct := map[time.Duration]bool{}
				low, high := 0, 0
				mid := tc.b.Base + (sched-tc.b.Base)/2
				for key := uint64(0); key < 50; key++ {
					d := tc.b.Delay(attempt, key)
					distinct[d] = true
					if d < mid {
						low++
					} else {
						high++
					}
				}
				if len(distinct) < 25 {
					t.Fatalf("full jitter barely spreads: %d distinct of 50", len(distinct))
				}
				if low == 0 || high == 0 {
					t.Fatalf("full jitter not covering the window: low=%d high=%d", low, high)
				}
			}
		})
	}
}

func TestStrSeedStable(t *testing.T) {
	if StrSeed("r1") == StrSeed("r2") {
		t.Fatal("distinct strings hash equal")
	}
	if StrSeed("r1") != StrSeed("r1") {
		t.Fatal("unstable hash")
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("mix collides on adjacent inputs")
	}
}
