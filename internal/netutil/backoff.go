// Package netutil holds the one retry/timeout policy shared by every
// layer that re-sends anything: the client request path (exponential
// backoff with deterministic band jitter), the TCP transport redial
// loop (bounded exponential with full jitter), and the SMR recovery
// re-request (fixed interval). Before this package each site hand-rolled its own
// doubling loop with subtly different caps; now they all describe the
// same shape with a Backoff value.
//
// Determinism matters here: the simulator replays runs bit-for-bit, so
// jitter must be a pure function of (seed, key, attempt), never of
// wall-clock time or math/rand global state. Mix64/StrSeed provide the
// hashing used everywhere a stable pseudo-random stream is derived
// from identifiers.
package netutil

import "time"

// Backoff describes a bounded exponential retry policy. The zero value
// is not useful; construct with the fields you need:
//
//	Base   first delay (attempt 0). Required.
//	Cap    upper bound for the doubled delay. 0 means 16*Base.
//	Jitter width of the deterministic jitter band as a fraction of
//	       the delay: the result is perturbed within ±Jitter/2 of the
//	       schedule (0.5 => ±25%, the historical client policy).
//	       0 disables jitter entirely. Ignored when Full is set.
//	Full   full-jitter mode: the delay is drawn uniformly from
//	       [Base, sched], where sched is the exponential schedule
//	       Base<<attempt clamped to the cap. Full jitter decorrelates
//	       synchronized retriers far better than band jitter — after a
//	       shared failure event, band jitter keeps everyone within
//	       ±Jitter/2 of the same schedule point, while full jitter
//	       spreads them across the whole window (the AWS architecture
//	       blog result). The floor is Base, not 0, so a retry never
//	       fires immediately into the failure it is backing off from.
//	Seed   seed for the jitter stream; combined with the per-call key.
type Backoff struct {
	Base   time.Duration
	Cap    time.Duration
	Jitter float64
	Full   bool
	Seed   uint64
}

// cap returns the effective upper bound.
func (b Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return 16 * b.Base
}

// Delay returns the delay before retry number attempt (attempt 0 is
// the first retry). The un-jittered schedule is Base<<attempt clamped
// to the cap; with Jitter > 0 the result is perturbed by a pure
// function of (Seed, key, attempt) so concurrent retriers with
// distinct keys spread out while replays stay deterministic.
func (b Backoff) Delay(attempt int, key uint64) time.Duration {
	d := b.Base
	limit := b.cap()
	for i := 0; i < attempt; i++ {
		if d >= limit {
			d = limit
			break
		}
		d *= 2
		if d > limit {
			d = limit
		}
	}
	if b.Full {
		if attempt == 0 || d <= b.Base {
			return d
		}
		frac := b.frac(attempt, key)
		return b.Base + time.Duration(frac*float64(d-b.Base))
	}
	if b.Jitter <= 0 || attempt == 0 {
		return d
	}
	return d + time.Duration((b.frac(attempt, key)-0.5)*b.Jitter*float64(d))
}

// frac derives the deterministic jitter fraction in [0,1) for one
// (seed, key, attempt) coordinate.
func (b Backoff) frac(attempt int, key uint64) float64 {
	h := Mix64(b.Seed ^ Mix64(key) ^ Mix64(uint64(attempt)))
	return float64(h>>11) / float64(uint64(1)<<53)
}

// Mix64 is the splitmix64 step: a cheap, well-distributed 64-bit
// mixing function used to derive deterministic jitter streams.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StrSeed hashes a string to a 64-bit seed (FNV-1a). Locations and
// client names become stable per-entity jitter streams.
func StrSeed(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
