package interp

import (
	"fmt"
	"strconv"

	"shadowdb/internal/gpm"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

// This file is the analogue of the paper's arrow (b) continued: it
// compiles LoE classes into GPM programs expressed as λ-terms. The
// compiled program follows the process protocol of Fig. 7:
//
//	program slf        ⇒ instance
//	instance event     ⇒ pair(instance', outputs)
//
// The generated code is deliberately combinator-shaped — "programs
// composed of several nested recursive functions" with duplicated
// sub-classes, as the paper describes — so that the optimizer has the same
// real work to do that Nuprl's program optimizer had.

type compiler struct {
	n int
}

func (c *compiler) fresh(prefix string) string {
	c.n++
	return prefix + strconv.Itoa(c.n)
}

// Compile translates a class into a program term.
func Compile(cl loe.Class) Term {
	c := &compiler{}
	return c.compile(cl)
}

// CompileSpec compiles a full specification's main class.
func CompileSpec(s loe.Spec) Term { return Compile(s.Main) }

// compile dispatches on the public shape of the class: the concrete class
// types of package loe are not exported, so the compiler recognizes them
// through the loe.Described interface.
func (c *compiler) compile(cl loe.Class) Term {
	d, ok := cl.(loe.Described)
	if !ok {
		panic(fmt.Sprintf("interp: class %q does not describe itself for compilation", cl.ClassName()))
	}
	desc := d.Describe()
	switch desc.Kind {
	case loe.KindBase:
		return c.compileBase(desc)
	case loe.KindState:
		return c.compileState(desc)
	case loe.KindCompose:
		return c.compileCompose(desc)
	case loe.KindParallel:
		return c.compileParallel(desc)
	case loe.KindOnce:
		return c.compileOnce(desc)
	case loe.KindMap:
		return c.compileMap(desc)
	case loe.KindFilter:
		return c.compileFilter(desc)
	case loe.KindDelegate:
		return c.compileDelegate(desc)
	default:
		panic(fmt.Sprintf("interp: unknown class kind %v", desc.Kind))
	}
}

func (c *compiler) compileBase(d loe.Desc) Term {
	slf := c.fresh("slf")
	self := c.fresh("self")
	e := c.fresh("e")
	return L([]string{slf},
		Fix{Fn: L([]string{self, e},
			A(primPair, V(self),
				If{
					Cond: A(primEqS, A(primHdr, V(e)), Lit{Val: d.Header}),
					Then: A(primCons, A(primBody, V(e)), nilTerm),
					Else: nilTerm,
				}))})
}

func (c *compiler) compileState(d loe.Desc) Term {
	child := c.compile(d.Children[0])
	slf, self := c.fresh("slf"), c.fresh("self")
	s, cv, e, r, s2 := c.fresh("s"), c.fresh("c"), c.fresh("e"), c.fresh("r"), c.fresh("s'")
	initP := Prim{Name: "init:" + d.Name, Arity: 1, Fn: func(_ *Evaluator, args []Value) Value {
		return d.Init(args[0].(msg.Loc))
	}}
	updP := Prim{Name: "upd:" + d.Name, Arity: 3, Fn: func(_ *Evaluator, args []Value) Value {
		return d.Upd(args[0].(msg.Loc), args[1], args[2])
	}}
	return L([]string{slf},
		A(
			Fix{Fn: L([]string{self, s, cv, e},
				Let(r, A(V(cv), V(e)),
					Let(s2, A(primFold, A(updP, V(slf)), V(s), A(primSnd, V(r))),
						A(primPair,
							A(V(self), V(s2), A(primFst, V(r))),
							A(primCons, V(s2), nilTerm)))))},
			A(initP, V(slf)),
			A(child, V(slf)),
		))
}

func (c *compiler) compileCompose(d loe.Desc) Term {
	slf, self, e := c.fresh("slf"), c.fresh("self"), c.fresh("e")
	n := len(d.Children)
	children := make([]Term, n)
	cs := make([]string, n)
	rs := make([]string, n)
	for i, ch := range d.Children {
		children[i] = c.compile(ch)
		cs[i] = c.fresh("c")
		rs[i] = c.fresh("r")
	}
	fP := Prim{Name: "f:" + d.Name, Arity: 1 + n, Fn: func(_ *Evaluator, args []Value) Value {
		vals := make([]any, n)
		for i := range vals {
			vals[i] = args[1+i]
		}
		return toList(d.F(args[0].(msg.Loc), vals))
	}}

	// body: pair (self (fst r1) ... (fst rn))
	//            (if any-empty then nil else f slf (head (snd r1)) ...)
	next := A(V(self))
	anyEmpty := Term(Lit{Val: false})
	call := A(fP, V(slf))
	for i := 0; i < n; i++ {
		next = App{Fn: next, Arg: A(primFst, V(rs[i]))}
		anyEmpty = A(primOr, A(primEmpty, A(primSnd, V(rs[i]))), anyEmpty)
		call = App{Fn: call, Arg: A(primHead, A(primSnd, V(rs[i])))}
	}
	body := A(primPair, next, If{Cond: anyEmpty, Then: nilTerm, Else: call})
	for i := n - 1; i >= 0; i-- {
		body = Let(rs[i], A(V(cs[i]), V(e)), body)
	}

	inner := Term(Fix{Fn: L(append([]string{self}, append(append([]string(nil), cs...), e)...), body)})
	out := A(inner)
	for i := 0; i < n; i++ {
		out = App{Fn: out, Arg: A(children[i], V(slf))}
	}
	return L([]string{slf}, out)
}

func (c *compiler) compileParallel(d loe.Desc) Term {
	slf, self, e := c.fresh("slf"), c.fresh("self"), c.fresh("e")
	n := len(d.Children)
	children := make([]Term, n)
	cs := make([]string, n)
	rs := make([]string, n)
	for i, ch := range d.Children {
		children[i] = c.compile(ch)
		cs[i] = c.fresh("c")
		rs[i] = c.fresh("r")
	}
	next := A(V(self))
	outs := nilTerm
	for i := n - 1; i >= 0; i-- {
		outs = A(primAppend, A(primSnd, V(rs[i])), outs)
	}
	for i := 0; i < n; i++ {
		next = App{Fn: next, Arg: A(primFst, V(rs[i]))}
	}
	body := A(primPair, next, outs)
	for i := n - 1; i >= 0; i-- {
		body = Let(rs[i], A(V(cs[i]), V(e)), body)
	}
	inner := Term(Fix{Fn: L(append([]string{self}, append(append([]string(nil), cs...), e)...), body)})
	out := A(inner)
	for i := 0; i < n; i++ {
		out = App{Fn: out, Arg: A(children[i], V(slf))}
	}
	return L([]string{slf}, out)
}

func (c *compiler) compileOnce(d loe.Desc) Term {
	child := c.compile(d.Children[0])
	slf, self := c.fresh("slf"), c.fresh("self")
	fired, cv, e, r := c.fresh("fired"), c.fresh("c"), c.fresh("e"), c.fresh("r")
	return L([]string{slf},
		A(
			Fix{Fn: L([]string{self, fired, cv, e},
				Let(r, A(V(cv), V(e)),
					A(primPair,
						A(V(self),
							A(primOr, V(fired), A(primNot, A(primEmpty, A(primSnd, V(r))))),
							A(primFst, V(r))),
						If{Cond: V(fired), Then: nilTerm, Else: A(primSnd, V(r))})))},
			Lit{Val: false},
			A(child, V(slf)),
		))
}

func (c *compiler) compileMap(d loe.Desc) Term {
	child := c.compile(d.Children[0])
	slf, self := c.fresh("slf"), c.fresh("self")
	cv, e, r := c.fresh("c"), c.fresh("e"), c.fresh("r")
	fP := Prim{Name: "map:" + d.Name, Arity: 2, Fn: func(_ *Evaluator, args []Value) Value {
		return d.MapF(args[0].(msg.Loc), args[1])
	}}
	return L([]string{slf},
		A(
			Fix{Fn: L([]string{self, cv, e},
				Let(r, A(V(cv), V(e)),
					A(primPair,
						A(V(self), A(primFst, V(r))),
						A(primMap, A(fP, V(slf)), A(primSnd, V(r))))))},
			A(child, V(slf)),
		))
}

func (c *compiler) compileFilter(d loe.Desc) Term {
	child := c.compile(d.Children[0])
	slf, self := c.fresh("slf"), c.fresh("self")
	cv, e, r := c.fresh("c"), c.fresh("e"), c.fresh("r")
	fP := Prim{Name: "pred:" + d.Name, Arity: 2, Fn: func(_ *Evaluator, args []Value) Value {
		return d.Pred(args[0].(msg.Loc), args[1])
	}}
	return L([]string{slf},
		A(
			Fix{Fn: L([]string{self, cv, e},
				Let(r, A(V(cv), V(e)),
					A(primPair,
						A(V(self), A(primFst, V(r))),
						A(primFilter, A(fP, V(slf)), A(primSnd, V(r))))))},
			A(child, V(slf)),
		))
}

func (c *compiler) compileDelegate(d loe.Desc) Term {
	trig := c.compile(d.Children[0])
	slf, self := c.fresh("slf"), c.fresh("self")
	subs, tv, e := c.fresh("subs"), c.fresh("t"), c.fresh("e")
	r, st, sp := c.fresh("r"), c.fresh("st"), c.fresh("sp")
	spawnP := Prim{Name: "spawn:" + d.Name, Arity: 3, Fn: func(ev *Evaluator, args []Value) Value {
		// args: slf, trigger outputs, event. Compile and instantiate a
		// sub-process per trigger value, let it observe the spawning
		// event, and return pair(liveNewSubs, outs).
		self := args[0].(msg.Loc)
		vals := asList(ev, args[1])
		event := args[2]
		var live, outs []Value
		for _, v := range vals {
			cl := d.Spawn(self, v)
			prog := Compile(cl)
			inst := ev.applyValues(ev.eval(prog, nil), self)
			sub, subOuts, done := stepSub(ev, inst, event)
			outs = append(outs, subOuts...)
			if !done {
				live = append(live, sub)
			}
		}
		return &PairV{Fst: live, Snd: outs}
	}}
	return L([]string{slf},
		A(
			Fix{Fn: L([]string{self, subs, tv, e},
				Let(r, A(V(tv), V(e)),
					Let(st, A(primStepSubs, V(subs), V(e)),
						Let(sp, A(spawnP, V(slf), A(primSnd, V(r)), V(e)),
							A(primPair,
								A(V(self),
									A(primAppend, A(primFst, V(st)), A(primFst, V(sp))),
									A(primFst, V(r))),
								A(primAppend, A(primSnd, V(st)), A(primSnd, V(sp))))))))},
			nilTerm,
			A(trig, V(slf)),
		))
}

// stepSub applies a sub-process instance value to an event, splitting out
// the Done sentinel.
func stepSub(ev *Evaluator, inst Value, event Value) (next Value, outs []Value, done bool) {
	res := ev.applyValues(inst, event)
	p, ok := res.(*PairV)
	if !ok {
		panic(evalError{err: fmt.Errorf("interp: sub-process returned %T, want pair", res)})
	}
	for _, o := range asList(ev, p.Snd) {
		if _, isDone := o.(loe.Done); isDone {
			done = true
			continue
		}
		outs = append(outs, o)
	}
	return p.Fst, outs, done
}

// ---------------------------------------------------------------- prims --

var nilTerm = Term(Lit{Val: []Value(nil)})

func asList(ev *Evaluator, v Value) []Value {
	l, ok := v.([]Value)
	if !ok {
		panic(evalError{err: fmt.Errorf("interp: expected list, got %T", v)})
	}
	return l
}

func toList(vals []any) []Value {
	out := make([]Value, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

var (
	primHdr = Prim{Name: "hdr", Arity: 1, Fn: func(_ *Evaluator, a []Value) Value {
		return a[0].(loe.Event).Msg.Hdr
	}}
	primBody = Prim{Name: "body", Arity: 1, Fn: func(_ *Evaluator, a []Value) Value {
		return a[0].(loe.Event).Msg.Body
	}}
	primEqS = Prim{Name: "eqs", Arity: 2, Fn: func(_ *Evaluator, a []Value) Value {
		return a[0].(string) == a[1].(string)
	}}
	primPair = Prim{Name: "pair", Arity: 2, Fn: func(_ *Evaluator, a []Value) Value {
		return &PairV{Fst: a[0], Snd: a[1]}
	}}
	primFst = Prim{Name: "fst", Arity: 1, Fn: func(_ *Evaluator, a []Value) Value {
		return a[0].(*PairV).Fst
	}}
	primSnd = Prim{Name: "snd", Arity: 1, Fn: func(_ *Evaluator, a []Value) Value {
		return a[0].(*PairV).Snd
	}}
	primCons = Prim{Name: "cons", Arity: 2, Fn: func(ev *Evaluator, a []Value) Value {
		tail := asList(ev, a[1])
		out := make([]Value, 0, 1+len(tail))
		return append(append(out, a[0]), tail...)
	}}
	primAppend = Prim{Name: "append", Arity: 2, Fn: func(ev *Evaluator, a []Value) Value {
		x, y := asList(ev, a[0]), asList(ev, a[1])
		if len(x) == 0 {
			return y
		}
		if len(y) == 0 {
			return x
		}
		out := make([]Value, 0, len(x)+len(y))
		return append(append(out, x...), y...)
	}}
	primEmpty = Prim{Name: "emptyp", Arity: 1, Fn: func(ev *Evaluator, a []Value) Value {
		return len(asList(ev, a[0])) == 0
	}}
	primHead = Prim{Name: "head", Arity: 1, Fn: func(ev *Evaluator, a []Value) Value {
		l := asList(ev, a[0])
		if len(l) == 0 {
			panic(evalError{err: fmt.Errorf("interp: head of empty list")})
		}
		return l[0]
	}}
	primOr = Prim{Name: "or", Arity: 2, Fn: func(_ *Evaluator, a []Value) Value {
		return a[0].(bool) || a[1].(bool)
	}}
	primNot = Prim{Name: "not", Arity: 1, Fn: func(_ *Evaluator, a []Value) Value {
		return !a[0].(bool)
	}}
	primFold = Prim{Name: "fold", Arity: 3, Fn: func(ev *Evaluator, a []Value) Value {
		acc := a[1]
		for _, v := range asList(ev, a[2]) {
			acc = ev.applyValues(a[0], v, acc)
		}
		return acc
	}}
	primMap = Prim{Name: "mapl", Arity: 2, Fn: func(ev *Evaluator, a []Value) Value {
		in := asList(ev, a[1])
		if len(in) == 0 {
			return []Value(nil)
		}
		out := make([]Value, len(in))
		for i, v := range in {
			out[i] = ev.applyValues(a[0], v)
		}
		return out
	}}
	primFilter = Prim{Name: "filterl", Arity: 2, Fn: func(ev *Evaluator, a []Value) Value {
		var out []Value
		for _, v := range asList(ev, a[1]) {
			if ev.applyValues(a[0], v).(bool) {
				out = append(out, v)
			}
		}
		return out
	}}
	primStepSubs = Prim{Name: "stepsubs", Arity: 2, Fn: func(ev *Evaluator, a []Value) Value {
		subs := asList(ev, a[0])
		event := a[1]
		var live, outs []Value
		for _, sub := range subs {
			next, subOuts, done := stepSub(ev, sub, event)
			outs = append(outs, subOuts...)
			if !done {
				live = append(live, next)
			}
		}
		return &PairV{Fst: live, Snd: outs}
	}}
)

// ------------------------------------------------------- term processes --

// Process hosts a compiled program term as a GPM process (the paper's
// interpreted execution mode). If evaluation fails the process halts and
// records the error.
type Process struct {
	ev    *Evaluator
	inst  Value
	local int
	slf   msg.Loc
	err   error
}

var _ gpm.Process = (*Process)(nil)

// NewProcess evaluates a program term and instantiates it at slf.
func NewProcess(t Term, slf msg.Loc, ev *Evaluator) (*Process, error) {
	prog, err := ev.Eval(t)
	if err != nil {
		return nil, fmt.Errorf("evaluate program: %w", err)
	}
	inst, err := ev.Apply(prog, slf)
	if err != nil {
		return nil, fmt.Errorf("instantiate program at %s: %w", slf, err)
	}
	return &Process{ev: ev, inst: inst, slf: slf}, nil
}

// Err returns the evaluation error that halted the process, if any.
func (p *Process) Err() error { return p.err }

// Halted implements gpm.Process.
func (p *Process) Halted() bool { return p.err != nil }

// Step implements gpm.Process by applying the instance value to the event.
func (p *Process) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	if p.err != nil {
		return p, nil
	}
	e := loe.Event{Loc: p.slf, Msg: in, Local: p.local, Global: -1, CausedBy: -1}
	p.local++
	res, err := p.ev.Apply(p.inst, e)
	if err != nil {
		p.err = fmt.Errorf("step at %s: %w", p.slf, err)
		return p, nil
	}
	pv, ok := res.(*PairV)
	if !ok {
		p.err = fmt.Errorf("step at %s: program returned %T, want pair", p.slf, res)
		return p, nil
	}
	p.inst = pv.Fst
	outsList, ok := pv.Snd.([]Value)
	if !ok {
		p.err = fmt.Errorf("step at %s: outputs are %T, want list", p.slf, pv.Snd)
		return p, nil
	}
	dirs := make([]msg.Directive, 0, len(outsList))
	for _, o := range outsList {
		if d, isDir := o.(msg.Directive); isDir {
			dirs = append(dirs, d)
		}
	}
	return p, dirs
}

// Generator builds a gpm.Generator that hosts the compiled term at each
// location of the spec, sharing one evaluator (they run on one machine in
// the paper's deployment too). Locations outside the spec halt.
func Generator(t Term, locs []msg.Loc, ev *Evaluator) (gpm.Generator, error) {
	members := make(map[msg.Loc]bool, len(locs))
	for _, l := range locs {
		members[l] = true
	}
	// Fail fast if the program itself is broken.
	if _, err := ev.Eval(t); err != nil {
		return nil, err
	}
	return func(slf msg.Loc) gpm.Process {
		if !members[slf] {
			return gpm.Halt()
		}
		p, err := NewProcess(t, slf, ev)
		if err != nil {
			return gpm.Halt()
		}
		return p
	}, nil
}
