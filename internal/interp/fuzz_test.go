package interp

import (
	"fmt"
	"math/rand"
	"testing"

	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

// Generative check of the whole compilation pipeline: random combinator
// trees must behave identically when run natively, interpreted, and
// interpreted after optimization. This is the repository's analogue of
// proving the compiler correct once and for all: instead, every shape the
// combinator grammar can produce is sampled and bisimulation-checked.

var fuzzHeaders = []string{"h0", "h1", "h2"}

// randClass builds a random class tree of bounded depth. All embedded
// functions are pure and deterministic, parameterized only by constants
// drawn from rng at BUILD time.
func randClass(rng *rand.Rand, depth int) loe.Class {
	if depth <= 0 || rng.Intn(4) == 0 {
		return loe.Base(fuzzHeaders[rng.Intn(len(fuzzHeaders))])
	}
	switch rng.Intn(6) {
	case 0:
		k := rng.Intn(7) + 1
		name := fmt.Sprintf("st%d", rng.Int31())
		return loe.State(name,
			func(msg.Loc) any { return 0 },
			func(_ msg.Loc, in, st any) any {
				i, _ := in.(int)
				return (st.(int)*31 + i + k) % 1000003
			},
			randClass(rng, depth-1))
	case 1:
		k := rng.Intn(5)
		name := fmt.Sprintf("co%d", rng.Int31())
		a, b := randClass(rng, depth-1), randClass(rng, depth-1)
		return loe.Compose(name, func(slf msg.Loc, vals []any) []any {
			x, _ := vals[0].(int)
			y, _ := vals[1].(int)
			if (x+y+k)%3 == 0 {
				return []any{msg.Send("sink", msg.M("out", x*1000+y))}
			}
			return []any{x - y}
		}, a, b)
	case 2:
		return loe.Parallel(randClass(rng, depth-1), randClass(rng, depth-1))
	case 3:
		return loe.Once(randClass(rng, depth-1))
	case 4:
		k := rng.Intn(9) + 1
		name := fmt.Sprintf("mp%d", rng.Int31())
		return loe.Map(name, func(_ msg.Loc, v any) any {
			i, _ := v.(int)
			return i * k
		}, randClass(rng, depth-1))
	default:
		k := rng.Intn(4)
		name := fmt.Sprintf("fl%d", rng.Int31())
		return loe.Filter(name, func(_ msg.Loc, v any) bool {
			i, _ := v.(int)
			return i%4 != k
		}, randClass(rng, depth-1))
	}
}

func randMsgs(rng *rand.Rand, n int) []msg.Msg {
	msgs := make([]msg.Msg, n)
	for i := range msgs {
		hdr := fuzzHeaders[rng.Intn(len(fuzzHeaders))]
		if rng.Intn(5) == 0 {
			hdr = "noise"
		}
		msgs[i] = msg.M(hdr, rng.Intn(100))
	}
	return msgs
}

func TestRandomClassesBisimilar(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cl := randClass(rng, 3)
			inputs := randMsgs(rng, 60)

			ev := &Evaluator{MaxSteps: 200_000_000}
			tp, err := NewProcess(Compile(cl), "fuzz", ev)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := Bisimilar(tp, loe.NewProcess(cl, "fuzz"), inputs); err != nil {
				t.Fatalf("interpreted != native:\n  class: %s\n  %v", loe.Render(cl), err)
			}
			op, err := NewProcess(Optimize(cl), "fuzz", ev)
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			if err := Bisimilar(op, loe.NewProcess(cl, "fuzz"), inputs); err != nil {
				t.Fatalf("optimized != native:\n  class: %s\n  %v", loe.Render(cl), err)
			}
		})
	}
}

func TestRandomClassesOptimizerShrinks(t *testing.T) {
	shrunk := 0
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cl := randClass(rng, 3)
		if Size(Optimize(cl)) < Size(Compile(cl)) {
			shrunk++
		}
	}
	if shrunk < 25 {
		t.Errorf("optimizer shrank only %d of 30 random programs", shrunk)
	}
}
