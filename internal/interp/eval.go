package interp

import (
	"errors"
	"fmt"
)

// Value is the result of evaluating a term: a Go literal, a *Closure, a
// *PartialPrim, a *PairV, or a []Value list.
type Value any

// Closure is a λ-abstraction paired with its environment.
type Closure struct {
	Param string
	Body  Term
	Env   *Env
}

// PartialPrim is a primitive applied to fewer arguments than its arity.
type PartialPrim struct {
	Prim Prim
	Args []Value
}

// PairV is the pair value produced by the "pair" primitive.
type PairV struct {
	Fst, Snd Value
}

// Env is a persistent environment: a linked list of bindings from names to
// thunks.
type Env struct {
	name   string
	val    *Thunk
	parent *Env
}

// Bind extends the environment.
func (e *Env) Bind(name string, t *Thunk) *Env {
	return &Env{name: name, val: t, parent: e}
}

func (e *Env) lookup(name string) (*Thunk, bool) {
	for env := e; env != nil; env = env.parent {
		if env.name == name {
			return env.val, true
		}
	}
	return nil, false
}

// Thunk is a delayed term evaluation, memoized on first force (call by
// need).
type Thunk struct {
	term   Term
	env    *Env
	forced bool
	val    Value
}

// ValueThunk wraps an already-computed value as a thunk.
func ValueThunk(v Value) *Thunk { return &Thunk{forced: true, val: v} }

// Evaluator is the environment machine. It counts reduction steps, both to
// bound runaway programs and to expose the genuine cost of interpretation
// to the benchmarks.
type Evaluator struct {
	// Steps is the cumulative number of reduction steps performed.
	Steps int64
	// MaxSteps bounds a single Eval/Apply call tree; zero means no bound.
	MaxSteps int64
	start    int64
}

type evalError struct{ err error }

// ErrStepLimit is returned when evaluation exceeds MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// Eval evaluates a closed term and returns its value.
func (ev *Evaluator) Eval(t Term) (v Value, err error) {
	defer ev.catch(&err)
	ev.start = ev.Steps
	return ev.eval(t, nil), nil
}

// Apply applies a function value to argument values, forcing the result.
func (ev *Evaluator) Apply(f Value, args ...Value) (v Value, err error) {
	defer ev.catch(&err)
	ev.start = ev.Steps
	for _, a := range args {
		f = ev.apply(f, ValueThunk(a))
	}
	return f, nil
}

func (ev *Evaluator) catch(err *error) {
	if r := recover(); r != nil {
		if ee, ok := r.(evalError); ok {
			*err = ee.err
			return
		}
		panic(r)
	}
}

func (ev *Evaluator) fail(format string, args ...any) {
	panic(evalError{err: fmt.Errorf("interp: "+format, args...)})
}

func (ev *Evaluator) tick() {
	ev.Steps++
	if ev.MaxSteps > 0 && ev.Steps-ev.start > ev.MaxSteps {
		panic(evalError{err: ErrStepLimit})
	}
}

func (ev *Evaluator) eval(t Term, env *Env) Value {
	ev.tick()
	switch n := t.(type) {
	case Var:
		th, ok := env.lookup(n.Name)
		if !ok {
			ev.fail("unbound variable %q", n.Name)
		}
		return ev.force(th)
	case Lam:
		return &Closure{Param: n.Param, Body: n.Body, Env: env}
	case App:
		fn := ev.eval(n.Fn, env)
		return ev.apply(fn, &Thunk{term: n.Arg, env: env})
	case Fix:
		// fix F = F (thunk of fix F): the self thunk re-evaluates the
		// fixpoint on demand, memoizing the resulting value.
		self := &Thunk{term: t, env: env}
		fn := ev.eval(n.Fn, env)
		return ev.apply(fn, self)
	case Lit:
		return n.Val
	case Prim:
		if n.Arity == 0 {
			return n.Fn(ev, nil)
		}
		return &PartialPrim{Prim: n}
	case If:
		c := ev.eval(n.Cond, env)
		b, ok := c.(bool)
		if !ok {
			ev.fail("if condition evaluated to %T, want bool", c)
		}
		if b {
			return ev.eval(n.Then, env)
		}
		return ev.eval(n.Else, env)
	default:
		ev.fail("unknown term %T", t)
		return nil
	}
}

func (ev *Evaluator) force(th *Thunk) Value {
	if th.forced {
		return th.val
	}
	v := ev.eval(th.term, th.env)
	th.forced, th.val, th.term, th.env = true, v, nil, nil
	return v
}

func (ev *Evaluator) apply(f Value, arg *Thunk) Value {
	ev.tick()
	switch fn := f.(type) {
	case *Closure:
		return ev.eval(fn.Body, fn.Env.Bind(fn.Param, arg))
	case *PartialPrim:
		args := make([]Value, len(fn.Args), len(fn.Args)+1)
		copy(args, fn.Args)
		args = append(args, ev.force(arg)) // primitives are strict
		if len(args) < fn.Prim.Arity {
			return &PartialPrim{Prim: fn.Prim, Args: args}
		}
		return fn.Prim.Fn(ev, args)
	default:
		ev.fail("applied non-function value %T", f)
		return nil
	}
}

// applyValues is the internal helper higher-order primitives use to call
// term-level closures.
func (ev *Evaluator) applyValues(f Value, args ...Value) Value {
	for _, a := range args {
		f = ev.apply(f, ValueThunk(a))
	}
	return f
}
