package interp

import (
	"math/rand"
	"testing"

	"shadowdb/internal/gpm"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

// ------------------------------------------------------------ evaluator --

func mustEval(t *testing.T, term Term) Value {
	t.Helper()
	ev := &Evaluator{MaxSteps: 1_000_000}
	v, err := ev.Eval(term)
	if err != nil {
		t.Fatalf("Eval(%s): %v", Render(term), err)
	}
	return v
}

func TestEvalIdentity(t *testing.T) {
	v := mustEval(t, A(L([]string{"x"}, V("x")), Lit{Val: 42}))
	if v != 42 {
		t.Errorf("got %v, want 42", v)
	}
}

func TestEvalLazyArgument(t *testing.T) {
	// (λx. 1) Ω must terminate under call-by-need: the diverging argument
	// is never forced.
	omega := Fix{Fn: L([]string{"x"}, V("x"))} // fix id diverges when forced
	ev := &Evaluator{MaxSteps: 10_000}
	v, err := ev.Eval(A(L([]string{"x"}, Lit{Val: 1}), omega))
	if err != nil {
		t.Fatalf("lazy evaluation forced unused argument: %v", err)
	}
	if v != 1 {
		t.Errorf("got %v, want 1", v)
	}
}

func TestEvalMemoizesThunks(t *testing.T) {
	// let x = expensive in pair x x: the shared thunk must be evaluated
	// once. We detect re-evaluation through the step counter.
	expensive := A(primCons, Lit{Val: 1}, nilTerm)
	body := Let("x", expensive, A(primPair, V("x"), V("x")))
	ev := &Evaluator{}
	v, err := ev.Eval(body)
	if err != nil {
		t.Fatal(err)
	}
	p := v.(*PairV)
	if &p.Fst == &p.Snd {
		t.Log("values identical as expected")
	}
	base := ev.Steps
	// Re-evaluating the same term from scratch must cost the same, proving
	// the counter works.
	if _, err := ev.Eval(body); err != nil {
		t.Fatal(err)
	}
	if ev.Steps-base <= 0 {
		t.Error("step counter did not advance")
	}
}

func TestEvalFixFactorialStyle(t *testing.T) {
	// A recursive list-length via fix, exercising self-reference:
	// len = fix (λself. λl. if emptyp l then 0 else 1 + self (tail l))
	inc := Prim{Name: "inc", Arity: 1, Fn: func(_ *Evaluator, a []Value) Value {
		return a[0].(int) + 1
	}}
	tail := Prim{Name: "tail", Arity: 1, Fn: func(ev *Evaluator, a []Value) Value {
		return asList(ev, a[0])[1:]
	}}
	length := Fix{Fn: L([]string{"self", "l"},
		If{
			Cond: A(primEmpty, V("l")),
			Then: Lit{Val: 0},
			Else: A(inc, A(V("self"), A(tail, V("l")))),
		})}
	v := mustEval(t, A(length, Lit{Val: []Value{1, 2, 3, 4, 5}}))
	if v != 5 {
		t.Errorf("length = %v, want 5", v)
	}
}

func TestEvalErrors(t *testing.T) {
	tests := []struct {
		name string
		term Term
	}{
		{"unbound variable", V("ghost")},
		{"apply literal", A(Lit{Val: 3}, Lit{Val: 4})},
		{"if non-bool", If{Cond: Lit{Val: 3}, Then: Lit{Val: 1}, Else: Lit{Val: 2}}},
		{"head of empty", A(primHead, nilTerm)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ev := &Evaluator{MaxSteps: 10_000}
			if _, err := ev.Eval(tt.term); err == nil {
				t.Error("Eval succeeded, want error")
			}
		})
	}
}

func TestEvalStepLimit(t *testing.T) {
	ev := &Evaluator{MaxSteps: 100}
	loop := A(Fix{Fn: L([]string{"self", "x"}, A(V("self"), V("x")))}, Lit{Val: 0})
	_, err := ev.Eval(loop)
	if err == nil {
		t.Fatal("diverging term evaluated successfully")
	}
}

func TestPartialPrimApplication(t *testing.T) {
	v := mustEval(t, A(A(primPair, Lit{Val: 1}), Lit{Val: 2}))
	p, ok := v.(*PairV)
	if !ok || p.Fst != 1 || p.Snd != 2 {
		t.Errorf("got %#v, want pair(1,2)", v)
	}
}

// --------------------------------------------------------------- terms --

func TestSizeAndRender(t *testing.T) {
	term := A(L([]string{"x"}, V("x")), Lit{Val: 1})
	if got := Size(term); got != 4 {
		t.Errorf("Size = %d, want 4", got)
	}
	if got := Render(term); got != "((λx.x) 1)" {
		t.Errorf("Render = %q", got)
	}
}

func TestSubstAvoidsShadowed(t *testing.T) {
	// (λx. x) with outer subst of x must not touch the bound occurrence.
	inner := Lam{Param: "x", Body: V("x")}
	got := subst("x", Lit{Val: 9}, inner)
	if !equalTerms(got, inner) {
		t.Errorf("subst rewrote shadowed binder: %s", Render(got))
	}
}

// ------------------------------------------------------------- compile --

// clkMessages builds a random-but-valid CLK message sequence.
func clkMessages(n int, seed int64) []msg.Msg {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]msg.Msg, n)
	for i := range msgs {
		hdr := loe.ClkHeader
		if rng.Intn(4) == 0 {
			hdr = "noise"
		}
		msgs[i] = msg.M(hdr, loe.ClkBody{Val: rng.Intn(100), TS: rng.Intn(50)})
	}
	return msgs
}

func TestCompiledCLKMatchesNative(t *testing.T) {
	spec := loe.ClkRing(3)
	term := CompileSpec(spec)
	ev := &Evaluator{MaxSteps: 50_000_000}
	tp, err := NewProcess(term, loe.RingLoc(0), ev)
	if err != nil {
		t.Fatal(err)
	}
	native := loe.NewProcess(spec.Main, loe.RingLoc(0))
	if err := Bisimilar(tp, native, clkMessages(200, 1)); err != nil {
		t.Fatalf("interpreted and native CLK diverge: %v", err)
	}
}

func TestOptimizedCLKBisimilar(t *testing.T) {
	spec := loe.ClkRing(3)
	opt := OptimizeSpec(spec)
	ev := &Evaluator{MaxSteps: 50_000_000}
	op, err := NewProcess(opt, loe.RingLoc(0), ev)
	if err != nil {
		t.Fatal(err)
	}
	native := loe.NewProcess(spec.Main, loe.RingLoc(0))
	if err := Bisimilar(op, native, clkMessages(200, 2)); err != nil {
		t.Fatalf("optimized and native CLK diverge: %v", err)
	}
}

func TestOptimizedSmallerAndCheaper(t *testing.T) {
	spec := loe.ClkRing(3)
	plain := CompileSpec(spec)
	opt := OptimizeSpec(spec)
	if Size(opt) >= Size(plain) {
		t.Errorf("optimized size %d >= plain size %d", Size(opt), Size(plain))
	}

	msgs := clkMessages(500, 3)
	run := func(term Term) int64 {
		ev := &Evaluator{}
		p, err := NewProcess(term, loe.RingLoc(0), ev)
		if err != nil {
			t.Fatal(err)
		}
		var proc gpm.Process = p
		for _, m := range msgs {
			proc, _ = proc.Step(m)
		}
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		return ev.Steps
	}
	plainSteps := run(plain)
	optSteps := run(opt)
	if optSteps >= plainSteps {
		t.Errorf("optimized program not cheaper: %d steps vs %d", optSteps, plainSteps)
	}
	t.Logf("plain=%d steps, optimized=%d steps (%.2fx)", plainSteps, optSteps,
		float64(plainSteps)/float64(optSteps))
}

func TestCompiledDelegate(t *testing.T) {
	// Delegation must behave identically interpreted and native.
	spawn := func(_ msg.Loc, v any) loe.Class {
		id := v.(int)
		return loe.Compose("report",
			func(_ msg.Loc, vals []any) []any {
				if vals[0].(int) >= 2 {
					return []any{msg.Send("obs", msg.M("done", id)), loe.Done{}}
				}
				return nil
			},
			loe.State("ticks",
				func(msg.Loc) any { return 0 },
				func(_ msg.Loc, _, st any) any { return st.(int) + 1 },
				loe.Base("tick")),
		)
	}
	cl := loe.Delegate("workers", loe.Base("start"), spawn)

	inputs := []msg.Msg{
		msg.M("start", 7),
		msg.M("tick", nil),
		msg.M("start", 9),
		msg.M("tick", nil),
		msg.M("tick", nil),
		msg.M("tick", nil),
	}
	ev := &Evaluator{MaxSteps: 50_000_000}
	tp, err := NewProcess(Compile(cl), "x", ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := Bisimilar(tp, loe.NewProcess(cl, "x"), inputs); err != nil {
		t.Fatalf("interpreted delegate diverges: %v", err)
	}

	op, err := NewProcess(Optimize(cl), "x", ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := Bisimilar(op, loe.NewProcess(cl, "x"), inputs); err != nil {
		t.Fatalf("optimized delegate diverges: %v", err)
	}
}

func TestSimplifyIdentities(t *testing.T) {
	tests := []struct {
		name string
		in   Term
		want Term
	}{
		{"or false right", A(primOr, V("x"), Lit{Val: false}), V("x")},
		{"or false left", A(primOr, Lit{Val: false}, V("x")), V("x")},
		{"or true", A(primOr, Lit{Val: true}, V("x")), Lit{Val: true}},
		{"append nil left", A(primAppend, nilTerm, V("x")), V("x")},
		{"if true", If{Cond: Lit{Val: true}, Then: V("a"), Else: V("b")}, V("a")},
		{"dead let", Let("x", A(primCons, Lit{Val: 1}, nilTerm), Lit{Val: 5}), Lit{Val: 5}},
		{"inline atomic", Let("x", Lit{Val: 3}, A(primPair, V("x"), V("x"))),
			A(primPair, Lit{Val: 3}, Lit{Val: 3})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Simplify(tt.in)
			if !equalTerms(got, tt.want) {
				t.Errorf("Simplify = %s, want %s", Render(got), Render(tt.want))
			}
		})
	}
}

func TestGeneratorHostsSpec(t *testing.T) {
	spec := loe.ClkRing(3)
	ev := &Evaluator{}
	gen, err := Generator(CompileSpec(spec), spec.Locs, ev)
	if err != nil {
		t.Fatal(err)
	}
	r := gpm.NewRunner(gpm.System{Gen: gen, Locs: spec.Locs})
	r.Inject(loe.RingLoc(0), msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0}))
	steps, err := r.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 12 {
		t.Fatalf("interpreted ring stopped after %d steps", steps)
	}
	if gen("outsider") == nil || !gen("outsider").Halted() {
		t.Error("generator must halt outside locations")
	}
}

func TestProcessErrorHalts(t *testing.T) {
	// A program returning a non-pair must halt the process with an error.
	bad := L([]string{"slf"}, L([]string{"e"}, Lit{Val: 3}))
	ev := &Evaluator{}
	p, err := NewProcess(bad, "x", ev)
	if err != nil {
		t.Fatal(err)
	}
	next, outs := p.Step(msg.M("m", nil))
	if len(outs) != 0 || !next.Halted() {
		t.Error("broken program did not halt")
	}
	if p.Err() == nil {
		t.Error("Err() = nil after failure")
	}
}
