// Package interp implements the paper's Nuprl-program layer: an applied,
// lazy, untyped λ-calculus. LoE classes compile into terms of this
// calculus (the General Process Model programs of the paper), which are
// then executed by the environment-machine evaluator in eval.go — the
// analogue of running Nuprl programs in the SML/OCaml interpreters. The
// optimizer in optimize.go mirrors the paper's program optimizer
// (recursion unrolling, inlining, common-subexpression elimination) and is
// validated by the bisimulation tester.
package interp

import (
	"fmt"
	"strings"
)

// Term is a node of the λ-calculus. The constructors mirror Nuprl's
// programming language: variables, abstractions, applications, a fixpoint
// operator, literals, primitive operations, and a conditional.
type Term interface {
	isTerm()
}

// Var is a variable reference.
type Var struct{ Name string }

// Lam is a λ-abstraction with one parameter.
type Lam struct {
	Param string
	Body  Term
}

// App applies Fn to Arg. Arguments are evaluated lazily (call-by-need).
type App struct{ Fn, Arg Term }

// Fix is the fixpoint operator: Fix(F) evaluates to F applied to a thunk
// of Fix(F), giving recursion.
type Fix struct{ Fn Term }

// Lit is a literal constant (numbers, strings, Go values injected by the
// compiler).
type Lit struct{ Val any }

// Prim is a primitive operation implemented natively. Primitives are
// strict in all arguments and must be pure. Fn receives the evaluator so
// that higher-order primitives (fold, sub-process stepping) can apply
// term-level closures.
type Prim struct {
	Name  string
	Arity int
	Fn    func(ev *Evaluator, args []Value) Value
}

// If is the conditional; Cond must evaluate to a Go bool.
type If struct{ Cond, Then, Else Term }

func (Var) isTerm()  {}
func (Lam) isTerm()  {}
func (App) isTerm()  {}
func (Fix) isTerm()  {}
func (Lit) isTerm()  {}
func (Prim) isTerm() {}
func (If) isTerm()   {}

// Convenience constructors used heavily by the compiler.

// V builds a variable reference.
func V(name string) Term { return Var{Name: name} }

// L builds a λ-abstraction, possibly curried over several parameters.
func L(params []string, body Term) Term {
	t := body
	for i := len(params) - 1; i >= 0; i-- {
		t = Lam{Param: params[i], Body: t}
	}
	return t
}

// A builds a left-nested application fn a1 a2 ...
func A(fn Term, args ...Term) Term {
	t := fn
	for _, a := range args {
		t = App{Fn: t, Arg: a}
	}
	return t
}

// Let binds name to val in body; it is sugar for (λname. body) val.
func Let(name string, val, body Term) Term {
	return App{Fn: Lam{Param: name, Body: body}, Arg: val}
}

// Size returns the number of nodes in a term tree — the "AST nodes" metric
// of Table I for GPM programs.
func Size(t Term) int {
	switch n := t.(type) {
	case Var, Lit, Prim:
		return 1
	case Lam:
		return 1 + Size(n.Body)
	case App:
		return 1 + Size(n.Fn) + Size(n.Arg)
	case Fix:
		return 1 + Size(n.Fn)
	case If:
		return 1 + Size(n.Cond) + Size(n.Then) + Size(n.Else)
	default:
		return 1
	}
}

// Render pretty-prints a term for debugging and cmd/specstats.
func Render(t Term) string {
	var b strings.Builder
	render(&b, t)
	return b.String()
}

func render(b *strings.Builder, t Term) {
	switch n := t.(type) {
	case Var:
		b.WriteString(n.Name)
	case Lam:
		fmt.Fprintf(b, "(λ%s.", n.Param)
		render(b, n.Body)
		b.WriteString(")")
	case App:
		b.WriteString("(")
		render(b, n.Fn)
		b.WriteString(" ")
		render(b, n.Arg)
		b.WriteString(")")
	case Fix:
		b.WriteString("(fix ")
		render(b, n.Fn)
		b.WriteString(")")
	case Lit:
		fmt.Fprintf(b, "%v", n.Val)
	case Prim:
		b.WriteString("#" + n.Name)
	case If:
		b.WriteString("(if ")
		render(b, n.Cond)
		b.WriteString(" ")
		render(b, n.Then)
		b.WriteString(" ")
		render(b, n.Else)
		b.WriteString(")")
	}
}

// freeIn reports whether name occurs free in t.
func freeIn(name string, t Term) bool {
	switch n := t.(type) {
	case Var:
		return n.Name == name
	case Lam:
		return n.Param != name && freeIn(name, n.Body)
	case App:
		return freeIn(name, n.Fn) || freeIn(name, n.Arg)
	case Fix:
		return freeIn(name, n.Fn)
	case If:
		return freeIn(name, n.Cond) || freeIn(name, n.Then) || freeIn(name, n.Else)
	default:
		return false
	}
}

// countFree counts free occurrences of name in t.
func countFree(name string, t Term) int {
	switch n := t.(type) {
	case Var:
		if n.Name == name {
			return 1
		}
		return 0
	case Lam:
		if n.Param == name {
			return 0
		}
		return countFree(name, n.Body)
	case App:
		return countFree(name, n.Fn) + countFree(name, n.Arg)
	case Fix:
		return countFree(name, n.Fn)
	case If:
		return countFree(name, n.Cond) + countFree(name, n.Then) + countFree(name, n.Else)
	default:
		return 0
	}
}

// subst replaces free occurrences of name in t with repl. The compiler
// generates globally unique binder names, so capture cannot occur; subst
// refuses shadowed binders defensively.
func subst(name string, repl, t Term) Term {
	switch n := t.(type) {
	case Var:
		if n.Name == name {
			return repl
		}
		return n
	case Lam:
		if n.Param == name {
			return n
		}
		return Lam{Param: n.Param, Body: subst(name, repl, n.Body)}
	case App:
		return App{Fn: subst(name, repl, n.Fn), Arg: subst(name, repl, n.Arg)}
	case Fix:
		return Fix{Fn: subst(name, repl, n.Fn)}
	case If:
		return If{
			Cond: subst(name, repl, n.Cond),
			Then: subst(name, repl, n.Then),
			Else: subst(name, repl, n.Else),
		}
	default:
		return t
	}
}

// equalTerms reports structural equality of two terms. Prims compare by
// name (the compiler never reuses a prim name for different functions
// within one program).
func equalTerms(a, b Term) bool {
	switch x := a.(type) {
	case Var:
		y, ok := b.(Var)
		return ok && x.Name == y.Name
	case Lam:
		y, ok := b.(Lam)
		return ok && x.Param == y.Param && equalTerms(x.Body, y.Body)
	case App:
		y, ok := b.(App)
		return ok && equalTerms(x.Fn, y.Fn) && equalTerms(x.Arg, y.Arg)
	case Fix:
		y, ok := b.(Fix)
		return ok && equalTerms(x.Fn, y.Fn)
	case Lit:
		y, ok := b.(Lit)
		if !ok {
			return false
		}
		return litEqual(x.Val, y.Val)
	case Prim:
		y, ok := b.(Prim)
		return ok && x.Name == y.Name && x.Arity == y.Arity
	case If:
		y, ok := b.(If)
		return ok && equalTerms(x.Cond, y.Cond) && equalTerms(x.Then, y.Then) && equalTerms(x.Else, y.Else)
	default:
		return false
	}
}

func litEqual(a, b any) bool {
	defer func() { _ = recover() }() // uncomparable literals are unequal
	return a == b
}
