package interp

import (
	"fmt"
	"reflect"
	"strconv"

	"shadowdb/internal/gpm"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

// The program optimizer. The paper (Section II-C3): "Our optimizer merges
// nested recursive functions into one and also applies common
// subexpression elimination. Besides producing more efficient code, the
// optimized code tends to be easier to read as it is closer to what one
// would write by hand."
//
// Optimize performs exactly those two transformations:
//
//  1. Recursion merging: instead of one nested recursive function per
//     combinator (the shape Compile produces), the whole class DAG becomes
//     a single recursive function over a flattened state, with each event
//     class evaluated exactly once per event, in dependency order.
//  2. CSE: structurally identical stateless sub-classes (base classes
//     above all — "event classes typically occur more than once in
//     specifications") are deduplicated, and the generic Simplify passes
//     remove administrative redexes and fold algebraic identities.
//
// Equivalence with the unoptimized program is checked by the bisimulation
// tester in bisim.go, the analogue of the paper's SqequalProcProve2 proof
// of Fig. 7.

// Optimize compiles a class into an optimized program term.
func Optimize(cl loe.Class) Term {
	o := &optimizer{seen: map[string]*optNode{}}
	root := o.flatten(cl)
	return Simplify(o.emit(root))
}

// OptimizeSpec optimizes a full specification's main class.
func OptimizeSpec(s loe.Spec) Term { return Optimize(s.Main) }

// optNode is one deduplicated class in the flattened DAG.
type optNode struct {
	id       int
	desc     loe.Desc
	children []*optNode
	stateful bool
}

type optimizer struct {
	nodes []*optNode
	seen  map[string]*optNode
	n     int
}

func (o *optimizer) fresh(prefix string) string {
	o.n++
	return prefix + strconv.Itoa(o.n)
}

// flatten walks the class tree, deduplicating nodes by structural key.
// Base classes are stateless and always shareable; other nodes are shared
// when kind, name and children coincide (combinator names are unique per
// role in every spec in this repository, so equal keys imply equal
// embedded functions).
func (o *optimizer) flatten(cl loe.Class) *optNode {
	d, ok := cl.(loe.Described)
	if !ok {
		panic(fmt.Sprintf("interp: class %q does not describe itself", cl.ClassName()))
	}
	desc := d.Describe()
	children := make([]*optNode, len(desc.Children))
	key := fmt.Sprintf("%d/%s/%s", desc.Kind, desc.Name, desc.Header)
	for i, ch := range desc.Children {
		children[i] = o.flatten(ch)
		key += ":" + strconv.Itoa(children[i].id)
	}
	if n, ok := o.seen[key]; ok {
		return n
	}
	n := &optNode{
		id:       len(o.nodes),
		desc:     desc,
		children: children,
		stateful: desc.Kind == loe.KindState || desc.Kind == loe.KindOnce || desc.Kind == loe.KindDelegate,
	}
	o.nodes = append(o.nodes, n)
	o.seen[key] = n
	return n
}

// emit generates the single merged recursive function:
//
//	λslf. fix (λself. λs_1 ... λs_k. λe.
//	        let o_1 = ... in ... let o_n = ... in
//	        pair (self s'_1 ... s'_k) o_root) init_1 ... init_k
func (o *optimizer) emit(root *optNode) Term {
	slf := "slf"
	e := "e"

	var stateful []*optNode
	for _, n := range o.nodes {
		if n.stateful {
			stateful = append(stateful, n)
		}
	}
	sVar := func(n *optNode) string { return "s" + strconv.Itoa(n.id) }
	sVar2 := func(n *optNode) string { return "s'" + strconv.Itoa(n.id) }
	oVar := func(n *optNode) string { return "o" + strconv.Itoa(n.id) }

	// The recursive call with the updated states, and the final pair.
	next := A(V("self"))
	for _, n := range stateful {
		next = App{Fn: next, Arg: V(sVar2(n))}
	}
	body := A(primPair, next, V(oVar(root)))

	// Emit per-node lets in reverse dependency order (nodes is already a
	// valid topological order: children are appended before parents).
	for i := len(o.nodes) - 1; i >= 0; i-- {
		n := o.nodes[i]
		body = o.emitNode(n, slf, e, sVar, sVar2, oVar, body)
	}

	inner := Term(Fix{Fn: L(append([]string{"self"}, append(stateVars(stateful, sVar), e)...), body)})
	out := A(inner)
	for _, n := range stateful {
		out = App{Fn: out, Arg: o.initTerm(n, slf)}
	}
	return L([]string{slf}, out)
}

func stateVars(ns []*optNode, f func(*optNode) string) []string {
	vs := make([]string, len(ns))
	for i, n := range ns {
		vs[i] = f(n)
	}
	return vs
}

func (o *optimizer) initTerm(n *optNode, slf string) Term {
	switch n.desc.Kind {
	case loe.KindState:
		d := n.desc
		initP := Prim{Name: "init:" + d.Name, Arity: 1, Fn: func(_ *Evaluator, args []Value) Value {
			return d.Init(args[0].(msg.Loc))
		}}
		return A(initP, V(slf))
	case loe.KindOnce:
		return Lit{Val: false}
	case loe.KindDelegate:
		return nilTerm
	default:
		panic("interp: initTerm on stateless node")
	}
}

// emitNode wraps body with the lets computing node n's output (and new
// state for stateful nodes).
func (o *optimizer) emitNode(n *optNode, slf, e string, sVar, sVar2, oVar func(*optNode) string, body Term) Term {
	d := n.desc
	switch d.Kind {
	case loe.KindBase:
		out := If{
			Cond: A(primEqS, A(primHdr, V(e)), Lit{Val: d.Header}),
			Then: A(primCons, A(primBody, V(e)), nilTerm),
			Else: nilTerm,
		}
		return Let(oVar(n), out, body)

	case loe.KindState:
		updP := Prim{Name: "upd:" + d.Name, Arity: 3, Fn: func(_ *Evaluator, args []Value) Value {
			return d.Upd(args[0].(msg.Loc), args[1], args[2])
		}}
		newState := A(primFold, A(updP, V(slf)), V(sVar(n)), V(oVar(n.children[0])))
		return Let(sVar2(n), newState,
			Let(oVar(n), A(primCons, V(sVar2(n)), nilTerm), body))

	case loe.KindCompose:
		k := len(n.children)
		fP := Prim{Name: "f:" + d.Name, Arity: 1 + k, Fn: func(_ *Evaluator, args []Value) Value {
			vals := make([]any, k)
			for i := range vals {
				vals[i] = args[1+i]
			}
			return toList(d.F(args[0].(msg.Loc), vals))
		}}
		anyEmpty := Term(Lit{Val: false})
		call := A(fP, V(slf))
		for _, ch := range n.children {
			anyEmpty = A(primOr, A(primEmpty, V(oVar(ch))), anyEmpty)
			call = App{Fn: call, Arg: A(primHead, V(oVar(ch)))}
		}
		return Let(oVar(n), If{Cond: anyEmpty, Then: nilTerm, Else: call}, body)

	case loe.KindParallel:
		outs := nilTerm
		for i := len(n.children) - 1; i >= 0; i-- {
			outs = A(primAppend, V(oVar(n.children[i])), outs)
		}
		return Let(oVar(n), outs, body)

	case loe.KindOnce:
		child := V(oVar(n.children[0]))
		return Let(sVar2(n), A(primOr, V(sVar(n)), A(primNot, A(primEmpty, child))),
			Let(oVar(n), If{Cond: V(sVar(n)), Then: nilTerm, Else: child}, body))

	case loe.KindMap:
		fP := Prim{Name: "map:" + d.Name, Arity: 2, Fn: func(_ *Evaluator, args []Value) Value {
			return d.MapF(args[0].(msg.Loc), args[1])
		}}
		return Let(oVar(n), A(primMap, A(fP, V(slf)), V(oVar(n.children[0]))), body)

	case loe.KindFilter:
		fP := Prim{Name: "pred:" + d.Name, Arity: 2, Fn: func(_ *Evaluator, args []Value) Value {
			return d.Pred(args[0].(msg.Loc), args[1])
		}}
		return Let(oVar(n), A(primFilter, A(fP, V(slf)), V(oVar(n.children[0]))), body)

	case loe.KindDelegate:
		spawnP := Prim{Name: "spawn:" + d.Name, Arity: 3, Fn: func(ev *Evaluator, args []Value) Value {
			self := args[0].(msg.Loc)
			vals := asList(ev, args[1])
			event := args[2]
			var live, outs []Value
			for _, v := range vals {
				// Delegated sub-processes are compiled with the optimizer
				// too: the whole program runs optimized.
				prog := Optimize(d.Spawn(self, v))
				inst := ev.applyValues(ev.eval(prog, nil), self)
				sub, subOuts, done := stepSub(ev, inst, event)
				outs = append(outs, subOuts...)
				if !done {
					live = append(live, sub)
				}
			}
			return &PairV{Fst: live, Snd: outs}
		}}
		st := o.fresh("st")
		sp := o.fresh("sp")
		return Let(st, A(primStepSubs, V(sVar(n)), V(e)),
			Let(sp, A(spawnP, V(slf), V(oVar(n.children[0])), V(e)),
				Let(sVar2(n), A(primAppend, A(primFst, V(st)), A(primFst, V(sp))),
					Let(oVar(n), A(primAppend, A(primSnd, V(st)), A(primSnd, V(sp))), body))))

	default:
		panic(fmt.Sprintf("interp: unknown kind %v", d.Kind))
	}
}

// ------------------------------------------------------------ simplify --

// Simplify applies the generic term-level passes until fixpoint:
// beta-inlining of administrative redexes, dead-let elimination, and
// algebraic folding of the pure primitives. All terms in this calculus
// are pure, so the rewrites are unconditionally sound.
func Simplify(t Term) Term {
	for i := 0; i < 50; i++ {
		u := simplify1(t)
		if equalTerms(u, t) {
			return u
		}
		t = u
	}
	return t
}

func simplify1(t Term) Term {
	switch n := t.(type) {
	case App:
		fn := simplify1(n.Fn)
		arg := simplify1(n.Arg)
		if lam, ok := fn.(Lam); ok {
			uses := countFree(lam.Param, lam.Body)
			switch {
			case uses == 0:
				return lam.Body // dead let (argument is pure)
			case isAtomic(arg) || uses == 1:
				return subst(lam.Param, arg, lam.Body)
			}
		}
		return foldPrim(App{Fn: fn, Arg: arg})
	case Lam:
		return Lam{Param: n.Param, Body: simplify1(n.Body)}
	case Fix:
		return Fix{Fn: simplify1(n.Fn)}
	case If:
		cond := simplify1(n.Cond)
		if lit, ok := cond.(Lit); ok {
			if b, isBool := lit.Val.(bool); isBool {
				if b {
					return simplify1(n.Then)
				}
				return simplify1(n.Else)
			}
		}
		return If{Cond: cond, Then: simplify1(n.Then), Else: simplify1(n.Else)}
	default:
		return t
	}
}

// isAtomic reports whether substituting t multiple times duplicates no
// work.
func isAtomic(t Term) bool {
	switch t.(type) {
	case Var, Lit, Prim:
		return true
	default:
		return false
	}
}

// foldPrim applies algebraic identities of the pure primitives:
// or(x,false)=x, or(false,x)=x, not(not x)=x, append(nil,x)=x,
// append(x,nil)=x.
func foldPrim(t App) Term {
	name, args := primCall(t)
	switch name {
	case "or":
		if len(args) == 2 {
			if isLit(args[0], false) {
				return args[1]
			}
			if isLit(args[1], false) {
				return args[0]
			}
			if isLit(args[0], true) || isLit(args[1], true) {
				return Lit{Val: true}
			}
		}
	case "not":
		if len(args) == 1 {
			if inner, iargs := primCallT(args[0]); inner == "not" && len(iargs) == 1 {
				return iargs[0]
			}
		}
	case "append":
		if len(args) == 2 {
			if isNilList(args[0]) {
				return args[1]
			}
			if isNilList(args[1]) {
				return args[0]
			}
		}
	}
	return t
}

func primCall(t App) (string, []Term) { return primCallT(t) }

func primCallT(t Term) (string, []Term) {
	var args []Term
	for {
		app, ok := t.(App)
		if !ok {
			break
		}
		args = append([]Term{app.Arg}, args...)
		t = app.Fn
	}
	if p, ok := t.(Prim); ok && len(args) == p.Arity {
		return p.Name, args
	}
	return "", nil
}

func isLit(t Term, v any) bool {
	l, ok := t.(Lit)
	return ok && litEqual(l.Val, v)
}

func isNilList(t Term) bool {
	l, ok := t.(Lit)
	if !ok {
		return false
	}
	vs, ok := l.Val.([]Value)
	return ok && len(vs) == 0
}

// ------------------------------------------------------- bisimulation --

// Bisimilar drives two processes with the same message sequence and
// checks that they emit identical directives at every step — the
// analogue of the paper's proved bisimulation (the ∼ relation of Fig. 7)
// checked by testing instead of by Nuprl. It returns nil when the
// processes are indistinguishable on the trace.
func Bisimilar(a, b gpm.Process, inputs []msg.Msg) error {
	for i, in := range inputs {
		var oa, ob []msg.Directive
		a, oa = a.Step(in)
		b, ob = b.Step(in)
		if err := procErr(a); err != nil {
			return fmt.Errorf("left process failed at step %d: %w", i, err)
		}
		if err := procErr(b); err != nil {
			return fmt.Errorf("right process failed at step %d: %w", i, err)
		}
		if len(oa) != len(ob) {
			return fmt.Errorf("step %d (%s): %d outputs vs %d", i, in.Hdr, len(oa), len(ob))
		}
		for k := range oa {
			if !reflect.DeepEqual(oa[k], ob[k]) {
				return fmt.Errorf("step %d (%s) output %d: %v vs %v", i, in.Hdr, k, oa[k], ob[k])
			}
		}
	}
	return nil
}

func procErr(p gpm.Process) error {
	if tp, ok := p.(*Process); ok {
		return tp.Err()
	}
	return nil
}
