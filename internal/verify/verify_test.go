package verify

import (
	"errors"
	"fmt"
	"testing"

	"shadowdb/internal/gpm"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

// twoCounter is a tiny test system: two counters that each forward "inc"
// to the other once, so exploration has real interleavings.
func relayGen(peers map[msg.Loc]msg.Loc) gpm.Generator {
	return func(slf msg.Loc) gpm.Process {
		peer, ok := peers[slf]
		if !ok {
			return gpm.Halt()
		}
		forwarded := false
		var rec gpm.StepFunc
		rec = func(in msg.Msg) (gpm.Process, []msg.Directive) {
			if in.Hdr == "inc" && !forwarded {
				forwarded = true
				return rec, []msg.Directive{msg.Send(peer, msg.M("ack", slf))}
			}
			return rec, nil
		}
		return rec
	}
}

func TestExhaustiveExploresAllInterleavings(t *testing.T) {
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	m := Model{
		Gen:  relayGen(peers),
		Locs: []msg.Loc{"a", "b"},
		Init: []Injection{
			{To: "a", M: msg.M("inc", nil)},
			{To: "b", M: msg.M("inc", nil)},
		},
	}
	st, err := Exhaustive(m)
	if err != nil {
		t.Fatal(err)
	}
	// Two independent initial deliveries → at least 2 distinct maximal
	// schedules explored.
	if st.Schedules < 2 {
		t.Errorf("explored %d schedules, want >= 2", st.Schedules)
	}
	if st.Deliveries == 0 {
		t.Error("no deliveries executed")
	}
	if st.Truncated {
		t.Error("tiny model truncated")
	}
}

func TestExhaustiveFindsViolation(t *testing.T) {
	// Invariant "b never receives ack" is violated only in schedules that
	// deliver a's inc; the checker must find one.
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	m := Model{
		Gen:  relayGen(peers),
		Locs: []msg.Loc{"a", "b"},
		Init: []Injection{{To: "a", M: msg.M("inc", nil)}},
		Invariant: func(trace []gpm.TraceEntry) error {
			last := trace[len(trace)-1]
			if last.Loc == "b" && last.In.Hdr == "ack" {
				return errors.New("b received ack")
			}
			return nil
		},
	}
	_, err := Exhaustive(m)
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CheckError", err)
	}
	if len(ce.Schedule) == 0 {
		t.Error("violation schedule is empty")
	}
	// The schedule must replay to the same violation.
	res := replay(m, ce.Schedule, &Stats{})
	if res.err == nil {
		t.Error("replaying the violating schedule did not reproduce the violation")
	}
}

func TestExhaustiveCrashInjection(t *testing.T) {
	// With crash injection enabled, there must exist a schedule where b
	// crashed and never acked: Final sees traces without any ack at a.
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	sawSilent := false
	m := Model{
		Gen:       relayGen(peers),
		Locs:      []msg.Loc{"a", "b"},
		Init:      []Injection{{To: "a", M: msg.M("inc", nil)}},
		CrashLocs: []msg.Loc{"b"},
		Crashes:   1,
		Final: func(trace []gpm.TraceEntry) error {
			acked := false
			for _, e := range trace {
				if e.Loc == "a" && e.In.Hdr == "ack" {
					acked = true
				}
			}
			if !acked {
				sawSilent = true
			}
			return nil
		},
	}
	if _, err := Exhaustive(m); err != nil {
		t.Fatal(err)
	}
	if !sawSilent {
		t.Error("crash injection never produced a schedule without acks")
	}
}

func TestFuzzRuns(t *testing.T) {
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	m := Model{
		Gen:  relayGen(peers),
		Locs: []msg.Loc{"a", "b"},
		Init: []Injection{
			{To: "a", M: msg.M("inc", nil)},
			{To: "b", M: msg.M("inc", nil)},
		},
		Invariant: func([]gpm.TraceEntry) error { return nil },
	}
	st, err := Fuzz(m, 50, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.Schedules != 50 {
		t.Errorf("fuzz ran %d schedules, want 50", st.Schedules)
	}
}

func TestExhaustiveDropInjection(t *testing.T) {
	// With one drop allowed, there must be a schedule where a's inc was
	// eaten by the link and no ack ever reached a; and the fault choices
	// must strictly enlarge the explored tree.
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	base := Model{
		Gen:  relayGen(peers),
		Locs: []msg.Loc{"a", "b"},
		Init: []Injection{{To: "a", M: msg.M("inc", nil)}},
	}
	st0, err := Exhaustive(base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.Drops = 1
	sawSilent := false
	faulty.Final = func(trace []gpm.TraceEntry) error {
		acked := false
		for _, e := range trace {
			if e.Loc == "a" && e.In.Hdr == "ack" {
				acked = true
			}
		}
		if !acked {
			sawSilent = true
		}
		return nil
	}
	st1, err := Exhaustive(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !sawSilent {
		t.Error("drop injection never produced a schedule without acks")
	}
	if st1.Schedules <= st0.Schedules {
		t.Errorf("drop choices explored %d schedules, fault-free %d; want strictly more",
			st1.Schedules, st0.Schedules)
	}
}

func TestExhaustiveDupInjection(t *testing.T) {
	// Duplicating b's inc lets b receive it twice; relayGen forwards only
	// once, so no schedule — even with the duplicated delivery — may make
	// b emit a second ack (at-most-once forwarding survives a duplicating
	// link).
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	m := Model{
		Gen:  relayGen(peers),
		Locs: []msg.Loc{"a", "b"},
		Init: []Injection{{To: "b", M: msg.M("inc", nil)}},
		Dups: 1,
		Invariant: func(trace []gpm.TraceEntry) error {
			forwards := 0
			for _, e := range trace {
				if e.Loc == "b" && len(e.Outs) > 0 {
					forwards++
				}
			}
			if forwards > 1 {
				return errors.New("duplicate delivery produced a second forward")
			}
			return nil
		},
	}
	if _, err := Exhaustive(m); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzWithFaultsDeterministic(t *testing.T) {
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	m := Model{
		Gen:  relayGen(peers),
		Locs: []msg.Loc{"a", "b"},
		Init: []Injection{
			{To: "a", M: msg.M("inc", nil)},
			{To: "b", M: msg.M("inc", nil)},
		},
		CrashLocs: []msg.Loc{"b"},
		Crashes:   1,
		Drops:     2,
		Dups:      2,
	}
	run := func() Stats {
		st, err := Fuzz(m, 200, 30, 7)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed fuzzed differently: %+v vs %+v", a, b)
	}
	if a.Schedules != 200 {
		t.Errorf("fuzz ran %d schedules, want 200", a.Schedules)
	}
}

func TestFuzzFaultScheduleReplays(t *testing.T) {
	// A violation found by the fuzzer under faults must replay through the
	// exhaustive replayer to the same violation: both sides share the
	// choice encoding, including the drop and duplicate ranges.
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	m := Model{
		Gen:  relayGen(peers),
		Locs: []msg.Loc{"a", "b"},
		Init: []Injection{{To: "b", M: msg.M("inc", nil)}},
		Dups: 1,
		Invariant: func(trace []gpm.TraceEntry) error {
			// Deliberately falsifiable: "b never steps twice".
			steps := 0
			for _, e := range trace {
				if e.Loc == "b" {
					steps++
				}
			}
			if steps > 1 {
				return errors.New("b stepped twice")
			}
			return nil
		},
	}
	_, err := Fuzz(m, 500, 20, 3)
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CheckError (duplication makes b step twice)", err)
	}
	res := replay(m, ce.Schedule, &Stats{})
	if res.err == nil {
		t.Error("replaying the fuzzer's fault schedule did not reproduce the violation")
	}
}

func TestCheckRefinementCLK(t *testing.T) {
	// The compiled CLK program implements the CLK specification: the
	// paper's automatic proof, as a check.
	spec := loe.ClkRing(3)
	denote := func(trace []gpm.TraceEntry) [][]msg.Directive {
		eo := loe.FromTrace(trace)
		den := loe.Denote(spec.Main, eo)
		out := make([][]msg.Directive, len(den))
		for i, vals := range den {
			for _, v := range vals {
				out[i] = append(out[i], v.(msg.Directive))
			}
		}
		return out
	}
	inject := []Injection{{To: loe.RingLoc(0), M: msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0})}}
	if err := CheckRefinement(spec.System(), inject, 30, denote); err != nil {
		t.Fatalf("CLK refinement failed: %v", err)
	}
}

func TestCheckRefinementCatchesDeviation(t *testing.T) {
	// A program that implements nothing must fail against the CLK spec.
	spec := loe.ClkRing(2)
	sys := gpm.System{
		Gen: func(slf msg.Loc) gpm.Process {
			var rec gpm.StepFunc
			rec = func(in msg.Msg) (gpm.Process, []msg.Directive) { return rec, nil } // silent
			return rec
		},
		Locs: spec.Locs,
	}
	denote := func(trace []gpm.TraceEntry) [][]msg.Directive {
		eo := loe.FromTrace(trace)
		den := loe.Denote(spec.Main, eo)
		out := make([][]msg.Directive, len(den))
		for i, vals := range den {
			for _, v := range vals {
				out[i] = append(out[i], v.(msg.Directive))
			}
		}
		return out
	}
	inject := []Injection{{To: loe.RingLoc(0), M: msg.M(loe.ClkHeader, loe.ClkBody{Val: 3, TS: 0})}}
	err := CheckRefinement(sys, inject, 30, denote)
	if !errors.Is(err, ErrRefinement) {
		t.Fatalf("err = %v, want ErrRefinement", err)
	}
}

func TestCheckInductiveCLK(t *testing.T) {
	// Fig. 5 of the paper: ClockVal@e = imax(ts(e), ClockVal@pred(e)) + 1
	// on msg events. Validate the characterization against a real run.
	spec := loe.ClkRing(3)
	r := gpm.NewRunner(spec.System())
	r.Inject(loe.RingLoc(0), msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0}))
	if _, err := r.Run(20); err != nil {
		t.Fatal(err)
	}
	trace := r.Trace()
	den := loe.Denote(loe.ClkClock(), loe.FromTrace(trace))
	states := make([]any, len(den))
	for i, vals := range den {
		states[i] = vals[0]
	}
	char := StateStep{
		Init: func(msg.Loc) any { return 0 },
		Step: func(_ msg.Loc, prev any, in msg.Msg) any {
			if in.Hdr != loe.ClkHeader {
				return prev
			}
			ts := in.Body.(loe.ClkBody).TS
			p := prev.(int)
			if ts > p {
				return ts + 1
			}
			return p + 1
		},
	}
	if err := CheckInductive(trace, states, char); err != nil {
		t.Fatalf("CLK inductive characterization failed: %v", err)
	}

	// A wrong characterization must be rejected.
	bad := StateStep{
		Init: char.Init,
		Step: func(msg.Loc, any, msg.Msg) any { return 0 },
	}
	if err := CheckInductive(trace, states, bad); err == nil {
		t.Error("wrong characterization accepted")
	}
}

func TestSuite(t *testing.T) {
	var s Suite
	s.Add(
		Property{Module: "X", Name: "p1", Mode: Auto, Check: func() error { return nil }},
		Property{Module: "X", Name: "p2", Mode: Manual, Check: func() error { return nil }},
		Property{Module: "Y", Name: "q", Mode: Auto, Check: func() error { return nil }},
	)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	counts := s.CountByModule()
	if counts["X"] != (Counts{Auto: 1, Manual: 1}) {
		t.Errorf("X counts = %+v", counts["X"])
	}
	if counts["X"].String() != "1A/1M" {
		t.Errorf("X counts string = %q", counts["X"].String())
	}
	if got := s.Modules(); len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Errorf("Modules = %v", got)
	}

	s.Add(Property{Module: "Z", Name: "fails", Mode: Auto, Check: func() error {
		return fmt.Errorf("boom")
	}})
	if err := s.Run(); err == nil {
		t.Error("suite with failing property passed")
	}
}

func TestModeString(t *testing.T) {
	if Auto.String() != "A" || Manual.String() != "M" || Mode(0).String() != "?" {
		t.Error("Mode.String mismatch")
	}
}

func TestSymmetryPruning(t *testing.T) {
	// Two identical initial messages: delivering either first leads to
	// isomorphic states, so the explorer should not branch on them.
	peers := map[msg.Loc]msg.Loc{"a": "b", "b": "a"}
	m := Model{
		Gen:  relayGen(peers),
		Locs: []msg.Loc{"a", "b"},
		Init: []Injection{
			{To: "a", M: msg.M("inc", nil)},
			{To: "a", M: msg.M("inc", nil)},
		},
	}
	st, err := Exhaustive(m)
	if err != nil {
		t.Fatal(err)
	}
	// Without symmetry reduction the root branches over both identical
	// messages, doubling the tree to 4 maximal schedules; with it, the
	// duplicate root choice is pruned and only the genuinely distinct
	// interleavings below remain.
	if st.Schedules != 2 {
		t.Errorf("explored %d schedules, want 2 (pruned from 4)", st.Schedules)
	}
}
