// Package verify is this repository's stand-in for the Nuprl side of the
// paper's methodology. Where the paper proves properties of LoE
// specifications interactively in a proof assistant, this package checks
// the same properties mechanically:
//
//   - an exhaustive bounded model checker that explores every delivery
//     interleaving (optionally with crash, message-drop, and
//     message-duplication injection) of a small instance and checks an
//     invariant at every reachable state;
//   - a randomized schedule fuzzer for larger instances;
//   - a refinement checker that validates that a GPM program implements
//     its LoE specification (the paper's automatic proof, arrow (c));
//   - an inductive state-characterization checker in the style of the
//     Inductive Logical Form (Fig. 5 of the paper);
//   - a property registry that records which properties are checked fully
//     automatically and which needed a hand-written harness — the A/M
//     split of Table I.
//
// The substitution (bounded checking for proof) is documented in DESIGN.md.
package verify

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
)

// Injection is an external message fed to the system before exploration.
type Injection struct {
	To msg.Loc
	M  msg.Msg
}

// Model describes a finite instance of a distributed system to check.
type Model struct {
	// Gen produces the process at each location.
	Gen gpm.Generator
	// Locs are the locations to spawn.
	Locs []msg.Loc
	// Init are the external messages present initially.
	Init []Injection
	// MaxDepth bounds the length of explored schedules; 0 means the
	// number of initial injections times 16.
	MaxDepth int
	// MaxRuns bounds the number of complete schedules explored
	// exhaustively; 0 means two million.
	MaxRuns int
	// CrashLocs lists locations the checker may crash, and Crashes bounds
	// how many crash choices one schedule may contain.
	CrashLocs []msg.Loc
	Crashes   int
	// Drops bounds how many message-drop choices one schedule may contain:
	// a drop removes a pending delivery without executing it, modeling a
	// lossy link. Dups likewise bounds message-duplication choices: a
	// duplicate re-enqueues a copy of a pending delivery, modeling a
	// retransmitting link. Zero (the default) disables the fault.
	Drops int
	Dups  int
	// Restarts bounds crash-restart choices: a restart revives a crashed
	// location by re-invoking Gen for it. With durable state behind Gen
	// (e.g. WAL-backed acceptors reading a store.Stable), the new process
	// restores itself from storage — a real crash-restart without state
	// loss; with volatile processes it models a process reset. Zero (the
	// default) disables restarts.
	Restarts int
	// Reset, if non-nil, runs before each schedule executes. Models whose
	// processes share external durable state across Gen invocations (a
	// store.Mem provider backing restartable acceptors) use it to wipe
	// that state so schedules stay independent.
	Reset func()
	// Invariant is checked after every delivery of every schedule. It
	// receives the trace so far. A non-nil error fails the check.
	Invariant func(trace []gpm.TraceEntry) error
	// Final, if non-nil, is checked at the end of each maximal schedule
	// (queue drained or depth bound hit).
	Final func(trace []gpm.TraceEntry) error
}

// Stats reports what an exhaustive check covered.
type Stats struct {
	// Schedules is the number of maximal schedules explored.
	Schedules int
	// Deliveries is the total number of deliveries executed.
	Deliveries int
	// Truncated reports whether MaxRuns stopped exploration early.
	Truncated bool
}

// CheckError describes an invariant violation, including the schedule that
// reached it so the failure can be replayed.
type CheckError struct {
	// Schedule is the sequence of choice indices that led to the
	// violation.
	Schedule []int
	// Err is the invariant's error.
	Err error
}

// Error implements error.
func (e *CheckError) Error() string {
	return fmt.Sprintf("verify: invariant violated on schedule %v: %v", e.Schedule, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *CheckError) Unwrap() error { return e.Err }

// Exhaustive explores every delivery interleaving of the model up to its
// bounds, checking the invariant at every state. Processes are replayed
// from the initial state for every schedule prefix, so process
// implementations may freely mutate internal state.
func Exhaustive(m Model) (Stats, error) {
	maxDepth := m.MaxDepth
	if maxDepth == 0 {
		maxDepth = 16 * len(m.Init)
	}
	maxRuns := m.MaxRuns
	if maxRuns == 0 {
		maxRuns = 2_000_000
	}
	st := &Stats{}
	err := explore(m, nil, maxDepth, maxRuns, st)
	return *st, err
}

// choiceCount replays the schedule and returns how many choices are
// available at its end, plus the trace.
type replayResult struct {
	choices   int       // pending deliveries
	crashOK   []msg.Loc // locations that may crash next
	dropN     int       // pending messages that may be dropped next
	dupN      int       // pending messages that may be duplicated next
	restartOK []msg.Loc // crashed locations that may restart next
	trace     []gpm.TraceEntry
	err       error
	deadEnd   bool
	// dup[i] marks pending delivery i as identical to an earlier pending
	// delivery: delivering either leads to isomorphic states, so the
	// explorer skips the duplicate (symmetry reduction).
	dup []bool
}

// The checker encodes a schedule as a sequence of ints over five
// contiguous ranges: with P pending deliveries, C crashable locations,
// drop/dup budget remaining, and R restartable (crashed) locations,
// values 0..P-1 deliver pending[v], P..P+C-1 crash crashOK[v-P], the
// next P values drop pending[v-P-C], the following P values duplicate
// pending[v-P-C-dropN], and the final R values restart
// restartOK[v-P-C-dropN-dupN]. The drop, duplicate, and restart ranges
// collapse to zero width once their budget is spent.
func explore(m Model, schedule []int, maxDepth, maxRuns int, st *Stats) error {
	if st.Schedules >= maxRuns {
		st.Truncated = true
		return nil
	}
	res := replay(m, schedule, st)
	if res.err != nil {
		return &CheckError{Schedule: append([]int(nil), schedule...), Err: res.err}
	}
	total := res.choices + len(res.crashOK) + res.dropN + res.dupN + len(res.restartOK)
	if res.deadEnd || total == 0 || len(schedule) >= maxDepth {
		st.Schedules++
		if m.Final != nil {
			if err := m.Final(res.trace); err != nil {
				return &CheckError{Schedule: append([]int(nil), schedule...), Err: err}
			}
		}
		return nil
	}
	for c := 0; c < total; c++ {
		// Delivering, dropping, or duplicating either of two identical
		// pending messages leads to isomorphic states; skip the duplicate
		// pending index in each range.
		pi := -1
		switch {
		case c < res.choices:
			pi = c
		case c < res.choices+len(res.crashOK):
			// crash choice: no pending index
		case c < res.choices+len(res.crashOK)+res.dropN:
			pi = c - res.choices - len(res.crashOK)
		case c < res.choices+len(res.crashOK)+res.dropN+res.dupN:
			pi = c - res.choices - len(res.crashOK) - res.dropN
		default:
			// restart choice: no pending index
		}
		if pi >= 0 && pi < len(res.dup) && res.dup[pi] {
			continue // symmetric to an earlier choice at this state
		}
		if err := explore(m, append(schedule, c), maxDepth, maxRuns, st); err != nil {
			return err
		}
		if st.Schedules >= maxRuns {
			st.Truncated = true
			return nil
		}
	}
	return nil
}

// replay executes a schedule from the initial state. Pending deliveries
// are kept in FIFO order of creation; a choice index picks one for
// delivery. Crashed locations drop all input until a restart choice
// (budget permitting) re-instantiates them via Gen.
func replay(m Model, schedule []int, st *Stats) replayResult {
	if m.Reset != nil {
		m.Reset()
	}
	procs := make(map[msg.Loc]gpm.Process, len(m.Locs))
	for _, l := range m.Locs {
		procs[l] = m.Gen(l)
	}
	type pendMsg struct {
		to msg.Loc
		m  msg.Msg
	}
	var pending []pendMsg
	for _, in := range m.Init {
		pending = append(pending, pendMsg{to: in.To, m: in.M})
	}
	crashed := make(map[msg.Loc]bool)
	crashes, drops, dups, restarts := 0, 0, 0, 0
	var trace []gpm.TraceEntry

	crashable := func() []msg.Loc {
		if crashes >= m.Crashes {
			return nil
		}
		var out []msg.Loc
		for _, l := range m.CrashLocs {
			if !crashed[l] {
				out = append(out, l)
			}
		}
		return out
	}
	restartable := func() []msg.Loc {
		if restarts >= m.Restarts {
			return nil
		}
		var out []msg.Loc
		for _, l := range m.CrashLocs {
			if crashed[l] {
				out = append(out, l)
			}
		}
		return out
	}
	budget := func(spent, max int) int {
		if spent < max {
			return len(pending)
		}
		return 0
	}

	for _, c := range schedule {
		P := len(pending)
		cands := crashable()
		C := len(cands)
		dropN := budget(drops, m.Drops)
		dupN := budget(dups, m.Dups)
		revive := restartable()
		switch {
		case c < P:
			d := pending[c]
			pending = append(pending[:c], pending[c+1:]...)
			if crashed[d.to] {
				continue
			}
			p, ok := procs[d.to]
			if !ok {
				continue
			}
			next, outs := p.Step(d.m)
			procs[d.to] = next
			st.Deliveries++
			for _, o := range outs {
				pending = append(pending, pendMsg{to: o.Dest, m: o.M})
			}
			trace = append(trace, gpm.TraceEntry{Loc: d.to, In: d.m, Outs: outs, CausedBy: -1})
			if m.Invariant != nil {
				if err := m.Invariant(trace); err != nil {
					return replayResult{err: err}
				}
			}
		case c < P+C:
			crashed[cands[c-P]] = true
			crashes++
		case c < P+C+dropN:
			i := c - P - C
			pending = append(pending[:i], pending[i+1:]...)
			drops++
		case c < P+C+dropN+dupN:
			pending = append(pending, pending[c-P-C-dropN])
			dups++
		case c < P+C+dropN+dupN+len(revive):
			// Restart: the location comes back as a fresh Gen
			// instantiation, recovering whatever durable state its
			// generator restores.
			l := revive[c-P-C-dropN-dupN]
			crashed[l] = false
			procs[l] = m.Gen(l)
			restarts++
		default:
			return replayResult{deadEnd: true, trace: trace}
		}
	}
	dup := make([]bool, len(pending))
	for i := 1; i < len(pending); i++ {
		for j := 0; j < i; j++ {
			if dup[j] {
				continue
			}
			if pending[i].to == pending[j].to && pending[i].m.Hdr == pending[j].m.Hdr &&
				reflect.DeepEqual(pending[i].m.Body, pending[j].m.Body) {
				dup[i] = true
				break
			}
		}
	}
	return replayResult{
		choices: len(pending), crashOK: crashable(),
		dropN: budget(drops, m.Drops), dupN: budget(dups, m.Dups),
		restartOK: restartable(),
		trace:     trace, dup: dup,
	}
}

// Fuzz runs n random schedules of up to maxDepth deliveries each, drawing
// choices uniformly, and checks the invariant at every state. It is the
// scalable companion to Exhaustive for larger instances. Unlike
// Exhaustive it executes each schedule incrementally (a single pass), so
// deep schedules stay cheap; the returned CheckError still carries the
// whole schedule for a replay-based reproduction.
func Fuzz(m Model, n int, maxDepth int, seed int64) (Stats, error) {
	rng := rand.New(rand.NewSource(seed))
	st := &Stats{}
	for run := 0; run < n; run++ {
		schedule, trace, err := fuzzOne(m, maxDepth, rng, st)
		if err != nil {
			return *st, &CheckError{Schedule: schedule, Err: err}
		}
		st.Schedules++
		if m.Final != nil {
			if err := m.Final(trace); err != nil {
				return *st, &CheckError{Schedule: schedule, Err: err}
			}
		}
	}
	return *st, nil
}

// fuzzOne executes one random schedule incrementally, mirroring replay's
// choice encoding so failures replay identically.
func fuzzOne(m Model, maxDepth int, rng *rand.Rand, st *Stats) ([]int, []gpm.TraceEntry, error) {
	if m.Reset != nil {
		m.Reset()
	}
	procs := make(map[msg.Loc]gpm.Process, len(m.Locs))
	for _, l := range m.Locs {
		procs[l] = m.Gen(l)
	}
	type pendMsg struct {
		to msg.Loc
		m  msg.Msg
	}
	var pending []pendMsg
	for _, in := range m.Init {
		pending = append(pending, pendMsg{to: in.To, m: in.M})
	}
	crashed := make(map[msg.Loc]bool)
	crashes, drops, dups, restarts := 0, 0, 0, 0
	var trace []gpm.TraceEntry
	var schedule []int

	for len(schedule) < maxDepth {
		var crashOK []msg.Loc
		if crashes < m.Crashes {
			for _, l := range m.CrashLocs {
				if !crashed[l] {
					crashOK = append(crashOK, l)
				}
			}
		}
		var revive []msg.Loc
		if restarts < m.Restarts {
			for _, l := range m.CrashLocs {
				if crashed[l] {
					revive = append(revive, l)
				}
			}
		}
		P := len(pending)
		C := len(crashOK)
		dropN, dupN := 0, 0
		if drops < m.Drops {
			dropN = P
		}
		if dups < m.Dups {
			dupN = P
		}
		total := P + C + dropN + dupN + len(revive)
		if total == 0 {
			break
		}
		c := rng.Intn(total)
		schedule = append(schedule, c)
		switch {
		case c < P:
			d := pending[c]
			pending = append(pending[:c], pending[c+1:]...)
			if crashed[d.to] {
				continue
			}
			p, ok := procs[d.to]
			if !ok {
				continue
			}
			next, outs := p.Step(d.m)
			procs[d.to] = next
			st.Deliveries++
			for _, o := range outs {
				pending = append(pending, pendMsg{to: o.Dest, m: o.M})
			}
			trace = append(trace, gpm.TraceEntry{Loc: d.to, In: d.m, Outs: outs, CausedBy: -1})
			if m.Invariant != nil {
				if err := m.Invariant(trace); err != nil {
					return schedule, trace, err
				}
			}
		case c < P+C:
			crashed[crashOK[c-P]] = true
			crashes++
		case c < P+C+dropN:
			i := c - P - C
			pending = append(pending[:i], pending[i+1:]...)
			drops++
		case c < P+C+dropN+dupN:
			pending = append(pending, pending[c-P-C-dropN])
			dups++
		default:
			l := revive[c-P-C-dropN-dupN]
			crashed[l] = false
			procs[l] = m.Gen(l)
			restarts++
		}
	}
	return schedule, trace, nil
}

// ErrRefinement is wrapped by CheckRefinement failures.
var ErrRefinement = errors.New("verify: program does not implement specification")

// Denoter is the specification side of a refinement check: given an event
// ordering it returns the expected outputs at every event. Package loe's
// Denote matches this shape.
type Denoter func(trace []gpm.TraceEntry) [][]msg.Directive

// CheckRefinement runs a system under the reference runner with the given
// injections and verifies that the operational outputs at every event
// equal the specification's denotational outputs — the paper's automatic
// proof that the GPM program implements the LoE specification (arrow (c)).
func CheckRefinement(sys gpm.System, inject []Injection, maxSteps int, denote Denoter) error {
	r := gpm.NewRunner(sys)
	for _, in := range inject {
		r.Inject(in.To, in.M)
	}
	if _, err := r.Run(maxSteps); err != nil {
		return fmt.Errorf("run system: %w", err)
	}
	trace := r.Trace()
	want := denote(trace)
	if len(want) != len(trace) {
		return fmt.Errorf("%w: specification produced %d events, program %d",
			ErrRefinement, len(want), len(trace))
	}
	for i := range trace {
		if !reflect.DeepEqual(normDirs(trace[i].Outs), normDirs(want[i])) {
			return fmt.Errorf("%w: event %d at %s: program %v, spec %v",
				ErrRefinement, i, trace[i].Loc, trace[i].Outs, want[i])
		}
	}
	return nil
}

func normDirs(ds []msg.Directive) []msg.Directive {
	if len(ds) == 0 {
		return nil
	}
	return ds
}

// StateStep is the expected inductive characterization of a single-valued
// state class (the Fig. 5 equality): the state at an event equals step
// applied to the state at the location's previous event (or init for the
// first event).
type StateStep struct {
	Init func(slf msg.Loc) any
	Step func(slf msg.Loc, prev any, in msg.Msg) any
}

// CheckInductive validates that observed per-event states satisfy the
// inductive characterization over a trace: state(e) = Step(state(pred e),
// msg(e)). states[i] must be the class's value at trace[i].
func CheckInductive(trace []gpm.TraceEntry, states []any, c StateStep) error {
	if len(states) != len(trace) {
		return fmt.Errorf("verify: %d states for %d events", len(states), len(trace))
	}
	prev := make(map[msg.Loc]any)
	for i, e := range trace {
		p, seen := prev[e.Loc]
		if !seen {
			p = c.Init(e.Loc)
		}
		want := c.Step(e.Loc, p, e.In)
		if !reflect.DeepEqual(states[i], want) {
			return fmt.Errorf("verify: event %d at %s: state %v, characterization %v",
				i, e.Loc, states[i], want)
		}
		prev[e.Loc] = states[i]
	}
	return nil
}
