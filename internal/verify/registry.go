package verify

import (
	"fmt"
	"sort"
)

// The property registry records the correctness properties each protocol
// module carries and how each is discharged, mirroring the last column of
// Table I in the paper ("xA/yM": lemmas proved automatically vs. with
// manual help). Here a property is Auto when the generic machinery
// (Exhaustive, Fuzz, CheckRefinement, CheckInductive) discharges it with
// no protocol-specific harness beyond stating the property, and Manual
// when a hand-written validator or scenario driver was required.

// Mode classifies how a property is discharged.
type Mode int

// The discharge modes.
const (
	// Auto marks properties checked by the generic checkers alone.
	Auto Mode = iota + 1
	// Manual marks properties needing a protocol-specific harness.
	Manual
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Auto:
		return "A"
	case Manual:
		return "M"
	default:
		return "?"
	}
}

// Property is one correctness property of a module.
type Property struct {
	// Module is the protocol the property belongs to (e.g. "CLK",
	// "TwoThird", "Paxos-Synod", "Broadcast").
	Module string
	// Name identifies the property (e.g. "agreement").
	Name string
	// Mode records how it is discharged.
	Mode Mode
	// Check runs the property check.
	Check func() error
}

// Suite is an ordered collection of properties.
type Suite struct {
	props []Property
}

// Add registers properties in the suite.
func (s *Suite) Add(ps ...Property) {
	s.props = append(s.props, ps...)
}

// Properties returns the registered properties.
func (s *Suite) Properties() []Property {
	return append([]Property(nil), s.props...)
}

// Run checks every property and returns the first failure, annotated with
// the property identity.
func (s *Suite) Run() error {
	for _, p := range s.props {
		if err := p.Check(); err != nil {
			return fmt.Errorf("%s/%s: %w", p.Module, p.Name, err)
		}
	}
	return nil
}

// Counts summarizes a module's properties as the Table I "xA/yM" pair.
type Counts struct {
	Auto, Manual int
}

// String renders a Counts in Table I style.
func (c Counts) String() string { return fmt.Sprintf("%dA/%dM", c.Auto, c.Manual) }

// CountByModule tallies the registered properties per module.
func (s *Suite) CountByModule() map[string]Counts {
	out := make(map[string]Counts)
	for _, p := range s.props {
		c := out[p.Module]
		switch p.Mode {
		case Auto:
			c.Auto++
		case Manual:
			c.Manual++
		}
		out[p.Module] = c
	}
	return out
}

// Modules returns the module names in sorted order.
func (s *Suite) Modules() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range s.props {
		if !seen[p.Module] {
			seen[p.Module] = true
			out = append(out, p.Module)
		}
	}
	sort.Strings(out)
	return out
}
