package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// Leader leases over the ordered configuration machinery (DESIGN.md
// §13). The natural lease holder of an epoch is Replicas[0] of its
// config. The holder proposes a renewal through the total order
// broadcast every Dur/3; every replica grants the renewal at apply
// time iff the epoch config in force AT THE RENEWAL'S SLOT still names
// the sender as its first replica. Because the grant rides the same
// total order as writes and membership commands, all replicas agree on
// the (holder, epoch, issue) history, and a lease is structurally
// invalid across an epoch boundary: a renewal proposed under epoch e
// but ordered after the command that began epoch e+1 is refused by
// every replica, including its own proposer.
//
// Soundness of the local read modes:
//
//   - Lease reads (linearizable). The holder serves a read locally only
//     while now < issue + Dur of its own last granted renewal, where
//     issue is the timestamp the holder itself carried in the renewal
//     payload — ordered data, identical at every replica, immune to a
//     stale local view. A new holder (epoch change) additionally waits
//     out the previous holder's full lease window (notBefore =
//     prevIssue + Dur) before serving or acknowledging writes, so at
//     most one replica ever serves lease reads at a time. Combined with
//     ack gating (in lease mode only the valid holder emits TxResult),
//     every acknowledged write is in the holder's applied prefix, so a
//     local read at the holder is linearizable.
//
//   - Follower reads (bounded staleness). Renewals double as ordered
//     clock beacons: a replica whose last applied renewal was issued at
//     time I has applied every write acknowledged before I, because the
//     sequencer assigns slots in propose order (propSlot is monotone)
//     and an ack at time t implies the write's slot precedes any
//     renewal proposed at I >= t. A follower therefore serves a read at
//     time now iff now - I <= MaxStale, and stamps the answer with
//     (slot frontier, I) so the checker can audit the bound.
//
// Lease state is deliberately volatile: it is never journaled and
// never reconstructed from a WAL replay, so a restarted holder cannot
// resume serving from recovered state — it must wait for a fresh
// renewal of its own to be ordered and applied under the current epoch
// (TestLeaseAcrossRestart exercises this).

// LeaseConfig enables lease-based local reads on an SMR replica.
type LeaseConfig struct {
	// Dur is the lease duration; renewals are proposed every Dur/3.
	Dur time.Duration
	// MaxStale is the staleness bound for follower reads.
	MaxStale time.Duration
	// Bcast is the broadcast service node renewals are proposed through.
	Bcast msg.Loc
	// Now is the clock (virtual in simulation, wall live). Required.
	Now func() time.Duration
}

// leaseState is a replica's view of the current lease, derived
// entirely from renewals applied in slot order.
type leaseState struct {
	cfg    LeaseConfig
	holder msg.Loc
	epoch  int
	// issue is the carried issue timestamp of the last granted renewal.
	issue time.Duration
	// notBefore bars a new holder from serving until the previous
	// holder's lease window has fully elapsed.
	notBefore time.Duration
	// seq numbers this replica's own renewal proposals.
	seq int64
}

// LeaseRenewal is the ordered renewal payload.
type LeaseRenewal struct {
	Epoch  int
	Holder msg.Loc
	// Issue is the holder's clock when it proposed the renewal.
	Issue time.Duration
	Seq   int64
}

// EncodeLease serializes a renewal as a broadcast payload. The "lse|"
// prefix keeps it distinguishable from tx/add/mbr payloads at apply
// time and in the checker.
func EncodeLease(r LeaseRenewal) []byte {
	return []byte(fmt.Sprintf("lse|%d|%s|%d|%d", r.Epoch, r.Holder, int64(r.Issue), r.Seq))
}

// DecodeLease recognizes a renewal payload.
func DecodeLease(b []byte) (LeaseRenewal, bool) {
	if len(b) < 4 || string(b[:4]) != "lse|" {
		return LeaseRenewal{}, false
	}
	parts := strings.SplitN(string(b[4:]), "|", 4)
	if len(parts) != 4 {
		return LeaseRenewal{}, false
	}
	epoch, err1 := strconv.Atoi(parts[0])
	issue, err2 := strconv.ParseInt(parts[2], 10, 64)
	seq, err3 := strconv.ParseInt(parts[3], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return LeaseRenewal{}, false
	}
	return LeaseRenewal{Epoch: epoch, Holder: msg.Loc(parts[1]), Issue: time.Duration(issue), Seq: seq}, true
}

// ReadProc is a read-only procedure that fills a reusable result in
// place. It must not mutate the database, and to keep the serve loop
// allocation-free it should write through res.Vals (reused backing
// array) rather than allocating rows.
type ReadProc func(db *sqldb.DB, args []any, res *ReadResult) error

// ReadRegistry maps read types to procedures. Like Registry, all
// replicas of a group must share one.
type ReadRegistry map[string]ReadProc

// EnableLease turns on lease-based local reads. SetView must have been
// called first: lease validity is defined against the epoch schedule.
func (r *SMRReplica) EnableLease(cfg LeaseConfig, reads ReadRegistry) {
	if r.view == nil {
		panic("core: EnableLease requires SetView")
	}
	if cfg.Now == nil {
		panic("core: EnableLease requires a clock")
	}
	if cfg.Dur <= 0 {
		cfg.Dur = 2 * time.Second
	}
	if cfg.MaxStale <= 0 {
		cfg.MaxStale = cfg.Dur
	}
	r.lease = &leaseState{cfg: cfg}
	r.readReg = reads
	if r.recoveredLocal {
		// A restarted replica cannot know which of its recovered writes
		// were acknowledged before the crash — the pre-crash incarnation
		// may have died with acks parked for an fsync that never came.
		// Arm the gap so the first valid grant re-emits the newest cached
		// result per client; clients drop sequence numbers they have
		// moved past, so the re-emission is free when nothing was lost.
		r.ackGap = true
	}
}

// LeaseDirectives returns the initial renewal-timer tick. The host
// injects it after construction (the replica is built outside any
// message flow), mirroring RecoveryDirectives.
func (r *SMRReplica) LeaseDirectives() []msg.Directive {
	if r.lease == nil {
		return nil
	}
	return []msg.Directive{msg.SendAfter(0, r.slf, msg.M(HdrLeaseTick, LeaseTick{}))}
}

// onLeaseTick re-arms the renewal timer and, when this replica is the
// natural holder of the current epoch, proposes a renewal through the
// total order.
func (r *SMRReplica) onLeaseTick() []msg.Directive {
	ls := r.lease
	if ls == nil {
		return nil
	}
	outs := []msg.Directive{msg.SendAfter(ls.cfg.Dur/3, r.slf, msg.M(HdrLeaseTick, LeaseTick{}))}
	cur := r.view.Current()
	if !r.active || len(cur.Replicas) == 0 || cur.Replicas[0] != r.slf {
		return outs
	}
	ls.seq++
	mLeaseRenewals.Inc()
	payload := EncodeLease(LeaseRenewal{Epoch: cur.Epoch, Holder: r.slf, Issue: ls.cfg.Now(), Seq: ls.seq})
	b := broadcast.Bcast{From: r.slf, Seq: ls.seq, Payload: payload}
	return append(outs, msg.Send(ls.cfg.Bcast, msg.M(broadcast.HdrBcast, b)))
}

// onLeaseGrant folds an ordered renewal into the lease state. slot is
// the renewal's position in the total order; the grant is valid only
// if the epoch config in force at that slot still names the sender as
// its natural holder — a renewal from a deposed holder is refused
// identically by every replica.
func (r *SMRReplica) onLeaseGrant(ren LeaseRenewal, slot int) {
	ls := r.lease
	if ls == nil || r.view == nil {
		return
	}
	cfg := r.view.At(slot)
	if cfg.Epoch != ren.Epoch || len(cfg.Replicas) == 0 || cfg.Replicas[0] != ren.Holder {
		mLeaseRefused.Inc()
		return
	}
	if ls.holder != ren.Holder {
		if ls.holder != "" {
			// Holder change: the incoming holder waits out the previous
			// holder's full window before serving or acking.
			ls.notBefore = ls.issue + ls.cfg.Dur
		}
		ls.holder = ren.Holder
	}
	ls.epoch = ren.Epoch
	if ren.Issue > ls.issue {
		ls.issue = ren.Issue
	}
	mLeaseGrants.Inc()
}

// reAck re-emits the newest cached result of every client. It runs
// when a replica with a pending ack gap becomes the valid holder: a
// write applied while no valid holder existed (startup race, holder
// handover barrier, restart) was acknowledged by nobody, and because
// the broadcast sequencer dedups client retries by (From, Seq) the
// retry is never redelivered — without this path the ack is lost
// forever and the client spins. Re-emission is safe: results are
// deterministic across replicas and clients drop sequence numbers
// they have moved past. The emitted directives ride the normal apply
// output, so group commit parks them until a covering fsync exactly
// like first-time acks.
func (r *SMRReplica) reAck(outs []msg.Directive) []msg.Directive {
	for _, res := range r.exec.RecentResults() {
		mLeaseReacks.Inc()
		outs = append(outs, msg.Send(res.Client, msg.M(HdrTxResult, res)))
	}
	return outs
}

// leaseValid reports whether this replica currently holds a valid
// lease: it is the granted holder, the grant's epoch is still current,
// the lease window (measured from the carried issue time) has not
// elapsed, and any holder-change barrier has passed.
func (r *SMRReplica) leaseValid() bool {
	ls := r.lease
	if ls == nil || r.view == nil || !r.active {
		return false
	}
	cur := r.view.Current()
	if len(cur.Replicas) == 0 || cur.Replicas[0] != r.slf {
		return false
	}
	now := ls.cfg.Now()
	return ls.holder == r.slf && ls.epoch == cur.Epoch &&
		now < ls.issue+ls.cfg.Dur && now >= ls.notBefore
}

// onRead serves a local read in the requested mode, or rejects it when
// the mode's proof obligation cannot be met right now. The reply body
// is a pooled pointer and the directive buffer is reused, so the
// steady-state serve loop performs no allocations (readpath_bench_test
// pins this).
func (r *SMRReplica) onRead(q ReadRequest) []msg.Directive {
	res := AcquireReadResult()
	res.Client, res.Seq, res.Mode = q.Client, q.Seq, q.Mode
	res.Slot = r.lastSlot
	ls := r.lease
	serve := false
	switch {
	case ls == nil:
		res.Rejected = true
	case q.Mode == ReadLease:
		serve = r.leaseValid()
		res.Rejected = !serve
	case q.Mode == ReadFollower:
		// The last applied renewal's issue time bounds how far behind
		// the acknowledged frontier this replica's state can be.
		serve = r.active && ls.issue > 0 && ls.cfg.Now()-ls.issue <= ls.cfg.MaxStale
		res.Rejected = !serve
	default:
		res.Err = "unknown read mode"
	}
	if serve {
		res.Issue = int64(ls.issue)
		if proc, ok := r.readReg[q.Type]; !ok {
			res.Err = "unknown read type " + q.Type
		} else if err := proc(r.exec.DB, q.Args, res); err != nil {
			res.Err = err.Error()
		}
		mSMRReads.Inc()
	} else if res.Rejected {
		mSMRReadsRejected.Inc()
	}
	r.readOuts = r.readOuts[:0]
	r.readOuts = append(r.readOuts, msg.Send(q.Client, msg.M(HdrReadResult, res)))
	return r.readOuts
}
