package core

import (
	"fmt"
	"testing"
	"time"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// testDeployment builds the paper's PBR setup: primary + backup + spare,
// Paxos broadcast on three nodes, fast failure detection for tests.
func testDeployment() PBRDeployment {
	return PBRDeployment{
		Pool:           []msg.Loc{"r1", "r2", "r3"},
		InitialMembers: 2,
		BcastNodes:     []msg.Loc{"b1", "b2", "b3"},
		Timing: Timing{
			HeartbeatEvery: 10 * time.Millisecond,
			SuspectAfter:   50 * time.Millisecond,
			ClientRetry:    100 * time.Millisecond,
		},
	}
}

// pbrHarness wires a full PBR system plus n clients into a runner.
type pbrHarness struct {
	sys     *PBRSystem
	runner  *gpm.Runner
	clients map[msg.Loc]*Client
	results map[msg.Loc][]TxResult
}

func newPBRHarness(t *testing.T, rows, clients int) *pbrHarness {
	t.Helper()
	dep := testDeployment()
	mkDB := func(slf msg.Loc) *sqldb.DB {
		db, err := sqldb.Open("h2:mem:" + string(slf))
		if err != nil {
			t.Fatal(err)
		}
		// Initial members start with the populated database; the spare
		// starts empty (it receives a snapshot on promotion).
		if slf != "r3" {
			if err := BankSetup(db, rows); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	sys := NewPBRSystem(dep, BankRegistry(), mkDB)
	h := &pbrHarness{
		sys:     sys,
		clients: make(map[msg.Loc]*Client),
		results: make(map[msg.Loc][]TxResult),
	}
	var cliLocs []msg.Loc
	for i := 0; i < clients; i++ {
		loc := msg.Loc(fmt.Sprintf("c%d", i))
		cliLocs = append(cliLocs, loc)
		h.clients[loc] = &Client{
			Slf: loc, Mode: ModePBR,
			Replicas: dep.Pool, Retry: dep.Timing.ClientRetry,
		}
	}
	extra := func(slf msg.Loc) gpm.Process {
		c, ok := h.clients[slf]
		if !ok {
			return gpm.Halt()
		}
		loc := slf
		return ClientProc(c, func(res TxResult) {
			h.results[loc] = append(h.results[loc], res)
		})
	}
	h.runner = gpm.NewRunner(sys.System(cliLocs, extra))
	for _, d := range sys.StartDirectives() {
		h.runner.InjectAfter(d.Delay, d.Dest, d.M)
	}
	return h
}

func (h *pbrHarness) submit(client msg.Loc, txType string, args ...any) {
	h.runner.Inject(client, msg.M(HdrSubmit, SubmitBody{Type: txType, Args: args}))
}

func (h *pbrHarness) totalDone() int {
	n := 0
	for _, rs := range h.results {
		n += len(rs)
	}
	return n
}

func (h *pbrHarness) answered() []TxResult {
	var out []TxResult
	for _, rs := range h.results {
		out = append(out, rs...)
	}
	return out
}

func TestPBRNormalCase(t *testing.T) {
	h := newPBRHarness(t, 20, 2)
	h.submit("c0", "deposit", 1, 10)
	h.submit("c1", "deposit", 2, 20)
	ok, err := h.runner.RunUntil(500_000, func() bool { return h.totalDone() == 2 })
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("transactions did not complete")
	}
	// Both primary and backup executed both transactions.
	r1, r2 := h.sys.Replicas["r1"], h.sys.Replicas["r2"]
	if r1.Executor().Executed != 2 || r2.Executor().Executed != 2 {
		t.Errorf("executed: primary=%d backup=%d", r1.Executor().Executed, r2.Executor().Executed)
	}
	if err := CheckStateAgreement(r1.Executor().DB, r2.Executor().DB); err != nil {
		t.Error(err)
	}
	if err := CheckDurability(h.answered(), r1.Executor(), r2.Executor()); err != nil {
		t.Error(err)
	}
	if got := balanceOf(t, r2.Executor().DB, 1); got != 1010 {
		t.Errorf("backup balance = %d", got)
	}
}

func TestPBRRedirectFromBackup(t *testing.T) {
	h := newPBRHarness(t, 5, 1)
	// Point the client's first guess at the backup.
	h.clients["c0"].primary = 1
	h.submit("c0", "deposit", 0, 5)
	ok, err := h.runner.RunUntil(500_000, func() bool { return h.totalDone() == 1 })
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if h.clients["c0"].Done != 1 {
		t.Error("client did not complete after redirect")
	}
}

func TestPBRAnswerWaitsForBackupAck(t *testing.T) {
	// Crash the backup BEFORE submitting: the primary must not answer
	// until recovery removes the backup from the configuration.
	h := newPBRHarness(t, 5, 1)
	h.runner.Replace("r2", gpm.Halt())
	h.submit("c0", "deposit", 1, 7)
	// Run a little: no answer can arrive while the backup is required.
	preDone := false
	_, err := h.runner.RunUntil(2_000, func() bool { preDone = h.totalDone() > 0; return preDone })
	if err != nil {
		t.Fatal(err)
	}
	// Eventually the detector fires, r3 is promoted to backup via
	// recovery, and the (retried) transaction completes.
	ok, err := h.runner.RunUntil(2_000_000, func() bool { return h.totalDone() >= 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("transaction never completed after backup crash")
	}
	r1 := h.sys.Replicas["r1"]
	if r1.ConfigNow().Seq == 0 {
		t.Error("no reconfiguration happened")
	}
	if !r1.IsPrimary() {
		t.Error("surviving primary lost leadership")
	}
}

func TestPBRPrimaryCrashRecovery(t *testing.T) {
	h := newPBRHarness(t, 50, 2)
	h.submit("c0", "deposit", 1, 10)
	h.submit("c1", "deposit", 2, 20)
	ok, err := h.runner.RunUntil(500_000, func() bool { return h.totalDone() == 2 })
	if err != nil || !ok {
		t.Fatalf("warm-up failed: ok=%v err=%v", ok, err)
	}

	// Crash the primary, then submit more work: clients must retry and
	// complete against the new configuration [r2 (new primary), r3].
	h.runner.Replace("r1", gpm.Halt())
	h.submit("c0", "deposit", 3, 30)
	h.submit("c1", "deposit", 4, 40)
	ok, err = h.runner.RunUntil(5_000_000, func() bool { return h.totalDone() == 4 })
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("transactions stalled after primary crash (done=%d)", h.totalDone())
	}

	r2, r3 := h.sys.Replicas["r2"], h.sys.Replicas["r3"]
	if !r2.IsPrimary() {
		t.Errorf("new primary = %s, want r2 (highest executed seq)", r2.ConfigNow().Primary())
	}
	if r2.ConfigNow().Seq != 1 || r3.ConfigNow().Seq != 1 {
		t.Errorf("config seqs = %d/%d, want 1", r2.ConfigNow().Seq, r3.ConfigNow().Seq)
	}
	// The spare received the full snapshot and caught up.
	if err := CheckStateAgreement(r2.Executor().DB, r3.Executor().DB); err != nil {
		t.Error(err)
	}
	if err := CheckDurability(h.answered(), r2.Executor(), r3.Executor()); err != nil {
		t.Error(err)
	}
	if got := balanceOf(t, r3.Executor().DB, 3); got != 1030 {
		t.Errorf("spare's balance(3) = %d, want 1030", got)
	}
	if got := balanceOf(t, r3.Executor().DB, 1); got != 1010 {
		t.Errorf("spare's balance(1) = %d, want 1010 (pre-crash history)", got)
	}
}

func TestPBRExactlyOnceUnderRetry(t *testing.T) {
	// Force client retries by making the retry timer shorter than the
	// heartbeat-induced latency is NOT possible deterministically here;
	// instead, inject the same request twice directly at the primary.
	h := newPBRHarness(t, 5, 1)
	req := depositReq("c9", 1, 2, 100)
	h.runner.Inject("r1", msg.M(HdrTx, req))
	h.runner.Inject("r1", msg.M(HdrTx, req))
	if _, err := h.runner.Run(500_000); err != nil {
		t.Fatal(err)
	}
	r1 := h.sys.Replicas["r1"]
	if got := balanceOf(t, r1.Executor().DB, 2); got != 1100 {
		t.Errorf("balance = %d, want exactly one deposit (1100)", got)
	}
	if r1.Executor().Executed != 1 {
		t.Errorf("executed = %d, want 1", r1.Executor().Executed)
	}
}

func TestPBRSerializableHistory(t *testing.T) {
	h := newPBRHarness(t, 10, 3)
	for round := 0; round < 5; round++ {
		for c := 0; c < 3; c++ {
			h.submit(msg.Loc(fmt.Sprintf("c%d", c)), "deposit", (round+c)%10, 1)
		}
		// Interleave: let some work complete before submitting more.
		want := (round + 1) * 3
		if ok, err := h.runner.RunUntil(500_000, func() bool { return h.totalDone() >= want }); err != nil || !ok {
			t.Fatalf("round %d stalled: %v", round, err)
		}
	}
	r1 := h.sys.Replicas["r1"]
	setup := func(db *sqldb.DB) error { return BankSetup(db, 10) }
	if err := CheckSerializable(BankRegistry(), setup, r1.Executor(), h.answered()); err != nil {
		t.Error(err)
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{Seq: 2, Members: []msg.Loc{"a", "b", "c"}}
	if c.Primary() != "a" {
		t.Error("Primary")
	}
	if len(c.Backups()) != 2 || c.Backups()[0] != "b" {
		t.Error("Backups")
	}
	if !c.Contains("c") || c.Contains("z") {
		t.Error("Contains")
	}
	empty := Config{}
	if empty.Primary() != "" || empty.Backups() != nil {
		t.Error("empty config helpers")
	}
}

func TestProposalCodec(t *testing.T) {
	in := NewConfig{OldSeq: 3, Members: []msg.Loc{"r2", "r3"}, Proposer: "r2"}
	out, err := decodeProposal(encodeProposal(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.OldSeq != 3 || out.Proposer != "r2" || len(out.Members) != 2 || out.Members[1] != "r3" {
		t.Errorf("round trip = %+v", out)
	}
	if _, err := decodeProposal([]byte("tx|whatever")); err == nil {
		t.Error("non-proposal accepted")
	}
}
