package core

import (
	"fmt"
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// smrHarness wires an SMR deployment (3 broadcast nodes, 3 co-located
// replicas) plus clients into a runner.
type smrHarness struct {
	sys     *SMRSystem
	runner  *gpm.Runner
	clients map[msg.Loc]*Client
	results map[msg.Loc][]TxResult
}

func newSMRHarness(t *testing.T, rows, clients int) *smrHarness {
	t.Helper()
	bnodes := []msg.Loc{"b1", "b2", "b3"}
	rlocs := []msg.Loc{"r1", "r2", "r3"}
	mkDB := func(slf msg.Loc) *sqldb.DB {
		db, err := sqldb.Open("h2:mem:" + string(slf))
		if err != nil {
			t.Fatal(err)
		}
		if err := BankSetup(db, rows); err != nil {
			t.Fatal(err)
		}
		return db
	}
	sys := NewSMRSystem(bnodes, rlocs, BankRegistry(), mkDB)
	h := &smrHarness{
		sys:     sys,
		clients: make(map[msg.Loc]*Client),
		results: make(map[msg.Loc][]TxResult),
	}
	var cliLocs []msg.Loc
	for i := 0; i < clients; i++ {
		loc := msg.Loc(fmt.Sprintf("c%d", i))
		cliLocs = append(cliLocs, loc)
		h.clients[loc] = &Client{
			Slf: loc, Mode: ModeSMR, BcastNodes: bnodes, Retry: 200 * time.Millisecond,
		}
	}
	extra := func(slf msg.Loc) gpm.Process {
		c, ok := h.clients[slf]
		if !ok {
			return gpm.Halt()
		}
		loc := slf
		return ClientProc(c, func(res TxResult) {
			h.results[loc] = append(h.results[loc], res)
		})
	}
	h.runner = gpm.NewRunner(sys.System(cliLocs, extra))
	return h
}

func (h *smrHarness) submit(client msg.Loc, txType string, args ...any) {
	h.runner.Inject(client, msg.M(HdrSubmit, SubmitBody{Type: txType, Args: args}))
}

func (h *smrHarness) totalDone() int {
	n := 0
	for _, rs := range h.results {
		n += len(rs)
	}
	return n
}

func TestSMRNormalCase(t *testing.T) {
	h := newSMRHarness(t, 20, 3)
	h.submit("c0", "deposit", 1, 10)
	h.submit("c1", "deposit", 2, 20)
	h.submit("c2", "balance", 1)
	ok, err := h.runner.RunUntil(2_000_000, func() bool { return h.totalDone() == 3 })
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v done=%d", ok, err, h.totalDone())
	}
	// Every replica executed every transaction in the same order.
	var dbs []*sqldb.DB
	for _, r := range h.sys.Replicas {
		if r.Executor().Executed != 3 {
			t.Errorf("replica executed %d, want 3", r.Executor().Executed)
		}
		dbs = append(dbs, r.Executor().DB)
	}
	if err := CheckStateAgreement(dbs...); err != nil {
		t.Error(err)
	}
}

func TestSMRClientTakesFirstAnswer(t *testing.T) {
	h := newSMRHarness(t, 5, 1)
	h.submit("c0", "deposit", 0, 5)
	ok, err := h.runner.RunUntil(2_000_000, func() bool { return h.totalDone() == 1 })
	if err != nil || !ok {
		t.Fatal("transaction did not complete")
	}
	// Three answers were produced, but the client completed exactly once.
	if h.clients["c0"].Done != 1 {
		t.Errorf("client Done = %d", h.clients["c0"].Done)
	}
	if _, err := h.runner.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if h.clients["c0"].Done != 1 {
		t.Errorf("late duplicate answers bumped Done to %d", h.clients["c0"].Done)
	}
}

func TestSMRReplicaCrashTransparent(t *testing.T) {
	h := newSMRHarness(t, 10, 2)
	// Crash one replica: clients still complete with no reconfiguration.
	h.runner.Replace("r1", gpm.Halt())
	h.submit("c0", "deposit", 1, 5)
	h.submit("c1", "deposit", 2, 5)
	ok, err := h.runner.RunUntil(2_000_000, func() bool { return h.totalDone() == 2 })
	if err != nil || !ok {
		t.Fatalf("crash was not transparent: done=%d", h.totalDone())
	}
	r2, r3 := h.sys.Replicas["r2"], h.sys.Replicas["r3"]
	if err := CheckStateAgreement(r2.Executor().DB, r3.Executor().DB); err != nil {
		t.Error(err)
	}
}

func TestSMRExactlyOnceUnderRetry(t *testing.T) {
	h := newSMRHarness(t, 5, 1)
	// A very short retry forces at least one resend before delivery.
	h.clients["c0"].Retry = time.Nanosecond
	h.submit("c0", "deposit", 3, 100)
	ok, err := h.runner.RunUntil(5_000_000, func() bool { return h.totalDone() == 1 })
	if err != nil || !ok {
		t.Fatal("transaction did not complete under retry")
	}
	if _, err := h.runner.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	for _, r := range h.sys.Replicas {
		if got := balanceOf(t, r.Executor().DB, 3); got != 1100 {
			t.Errorf("balance = %d, want one deposit exactly", got)
		}
	}
}

func TestSMRAddReplicaStateTransfer(t *testing.T) {
	h := newSMRHarness(t, 30, 1)
	// Attach a joining replica r4, subscribed to node b1's deliveries.
	db4, err := sqldb.Open("derby:mem:r4")
	if err != nil {
		t.Fatal(err)
	}
	r4 := NewJoiningSMRReplica("r4", db4, BankRegistry())
	h.sys.Bcast.LocalSubscribers["b1"] = append(h.sys.Bcast.LocalSubscribers["b1"], "r4")
	// Rebuild the runner with the extended subscriber map and r4 hosted.
	var cliLocs []msg.Loc
	for loc := range h.clients {
		cliLocs = append(cliLocs, loc)
	}
	extra := func(slf msg.Loc) gpm.Process {
		if slf == "r4" {
			return r4
		}
		c, ok := h.clients[slf]
		if !ok {
			return gpm.Halt()
		}
		loc := slf
		return ClientProc(c, func(res TxResult) {
			h.results[loc] = append(h.results[loc], res)
		})
	}
	h.runner = gpm.NewRunner(h.sys.System(append(cliLocs, "r4"), extra))

	// Some committed history before the join.
	h.submit("c0", "deposit", 1, 10)
	ok, err := h.runner.RunUntil(2_000_000, func() bool { return h.totalDone() == 1 })
	if err != nil || !ok {
		t.Fatal("pre-join transaction did not complete")
	}
	// Order the reconfiguration: r1 pushes its snapshot to r4.
	add := broadcast.Bcast{From: "admin", Seq: 1, Payload: EncodeSMRAdd(SMRAddReplica{
		New: "r4", Proposer: "r1",
	})}
	h.runner.Inject("b1", msg.M(broadcast.HdrBcast, add))
	// More traffic after the reconfiguration.
	h.submit("c0", "deposit", 2, 20)
	ok, err = h.runner.RunUntil(5_000_000, func() bool { return h.totalDone() == 2 })
	if err != nil || !ok {
		t.Fatal("post-join transaction did not complete")
	}
	if _, err := h.runner.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if !r4.Active() {
		t.Fatal("joining replica never activated")
	}
	if err := CheckStateAgreement(h.sys.Replicas["r1"].Executor().DB, r4.Executor().DB); err != nil {
		t.Error(err)
	}
	if got := balanceOf(t, r4.Executor().DB, 2); got != 1020 {
		t.Errorf("joined replica balance(2) = %d, want 1020", got)
	}
}

func TestSMRPayloadCodecs(t *testing.T) {
	req := TxRequest{Client: "c1", Seq: 9, Type: "deposit", Args: []any{int64(3), int64(5)}}
	b, err := EncodeTx(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeTx(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Client != "c1" || out.Seq != 9 || out.Type != "deposit" || len(out.Args) != 2 {
		t.Errorf("round trip = %+v", out)
	}
	if _, err := DecodeTx([]byte("cfg|1|x")); err == nil {
		t.Error("non-tx payload accepted")
	}
	add, ok := DecodeSMRAdd(EncodeSMRAdd(SMRAddReplica{New: "r4", Remove: "r1", Proposer: "r2"}))
	if !ok || add.New != "r4" || add.Remove != "r1" || add.Proposer != "r2" {
		t.Errorf("smradd round trip = %+v ok=%v", add, ok)
	}
	if _, ok := DecodeSMRAdd([]byte("tx|stuff")); ok {
		t.Error("non-add payload accepted")
	}
}

func TestSMRDeliverDeduplication(t *testing.T) {
	// Two service nodes notify the same replica; the second notification
	// of a slot must be ignored.
	db, err := sqldb.Open("h2:mem:d")
	if err != nil {
		t.Fatal(err)
	}
	if err := BankSetup(db, 5); err != nil {
		t.Fatal(err)
	}
	r := NewSMRReplica("rx", db, BankRegistry())
	payload, err := EncodeTx(depositReq("c", 1, 0, 50))
	if err != nil {
		t.Fatal(err)
	}
	d := broadcast.Deliver{Slot: 0, Msgs: []broadcast.Bcast{{From: "c", Seq: 1, Payload: payload}}}
	var p gpm.Process = r
	p, outs := p.Step(msg.M(broadcast.HdrDeliver, d))
	if len(outs) != 1 {
		t.Fatalf("first delivery outputs = %v", outs)
	}
	_, outs = p.Step(msg.M(broadcast.HdrDeliver, d))
	if len(outs) != 0 {
		t.Errorf("duplicate delivery produced outputs: %v", outs)
	}
	if got := balanceOf(t, db, 0); got != 1050 {
		t.Errorf("balance = %d", got)
	}
}
