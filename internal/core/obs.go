package core

import (
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Observability for ShadowDB: commit latency and executed-seqno progress
// on the normal case, counters and trace events on every recovery phase
// (suspicion, reconfiguration, election, catch-up, resume), and an
// extractor tying each message to its transaction span and configuration
// coordinates. Timestamps ride in replica state but never influence
// outputs, so model-checked replays stay deterministic.

var (
	mSMRCommits = obs.C("core.smr.commits")
	mSMRApplyNS = obs.H("core.smr.apply_ns")
	mPBRTxs     = obs.C("core.pbr.txs")
	mPBRCommits = obs.C("core.pbr.commits")
	mPBRNS      = obs.H("core.pbr.commit_ns")
	mSuspects   = obs.C("core.pbr.suspects")
	mReconfigs  = obs.C("core.pbr.reconfigs")
	mElections  = obs.C("core.pbr.elections")
	mRecoverNS  = obs.H("core.pbr.recovery_ns")
	gExecuted   = obs.G("core.executed")
	mCliRetries = obs.C("core.client.retries")
	mCliBackoff = obs.C("core.client.backoff_ns")

	// Dynamic membership: bootstrap snapshots pushed to joiners.
	mSMRSnapshotsSent = obs.C("core.smr.member_snapshots")

	// Lease-based local reads (lease.go).
	mLeaseRenewals    = obs.C("core.lease.renewals")
	mLeaseGrants      = obs.C("core.lease.grants")
	mLeaseRefused     = obs.C("core.lease.refused")
	mLeaseReacks      = obs.C("core.lease.reacks")
	mSMRReads         = obs.C("core.smr.reads")
	mSMRReadsRejected = obs.C("core.smr.reads_rejected")
	mAcksSuppressed   = obs.C("core.smr.acks_suppressed")
	mGroupSyncs       = obs.C("core.smr.group_syncs")
	mSMRAppends       = obs.C("core.smr.journal_appends")

	lg = obs.L("core")
)

func init() {
	obs.RegisterExtractor(func(hdr string, body any) (obs.Fields, bool) {
		f := obs.NoFields()
		f.Kind = hdr
		switch b := body.(type) {
		case TxRequest:
			f.Span = b.Key()
		case TxResult:
			f.Span = TxRequest{Client: b.Client, Seq: b.Seq}.Key()
		case ReadRequest:
			f.Span = TxRequest{Client: b.Client, Seq: b.Seq}.Key()
		case *ReadResult:
			f.Slot = int64(b.Slot)
			f.Span = TxRequest{Client: b.Client, Seq: b.Seq}.Key()
		case Repl:
			f.Slot, f.Ballot, f.Span = b.Order, int64(b.CfgSeq), b.Req.Key()
		case ReplAck:
			f.Slot, f.Ballot = b.Order, int64(b.CfgSeq)
		case Heartbeat:
			f.Ballot = int64(b.CfgSeq)
		case Elect:
			f.Slot, f.Ballot = b.Executed, int64(b.CfgSeq)
		case Catchup:
			f.Slot, f.Ballot = b.From, int64(b.CfgSeq)
		case CatchupReq:
			f.Slot, f.Ballot = b.Since, int64(b.CfgSeq)
		case Recovered:
			f.Ballot = int64(b.CfgSeq)
		case Redirect:
			f.Ballot = int64(b.CfgSeq)
		case SnapBegin:
			f.Slot, f.Ballot = b.Order, int64(b.CfgSeq)
		case SnapEnd:
			f.Slot, f.Ballot = b.Order, int64(b.CfgSeq)
		default:
			return obs.Fields{}, false
		}
		return f, true
	})
}

// traceRecovery emits a core-layer recovery-phase event (pbr.suspect,
// pbr.newconfig, pbr.elected, pbr.recovered, pbr.resume). Recovery
// phases are rare and diagnosis-critical, so they also log at info.
func traceRecovery(slf msg.Loc, kind string, cfgSeq int, note string) {
	lg.WithNode(slf).Infof("%s cfg=%d %s", kind, cfgSeq, note)
	if obs.Default.Tracing() {
		e := obs.Ev(slf, obs.LayerCore, kind)
		e.Ballot = int64(cfgSeq)
		e.Note = note
		obs.Default.Record(e)
	}
}
