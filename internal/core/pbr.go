package core

import (
	"fmt"
	"sort"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/sqldb"
)

// PBR: primary-backup replication (Section III-A of the paper).
//
// Normal case: the client sends T to the primary; the primary executes
// and commits T, forwards it to the backups; each backup executes,
// commits and acknowledges; the primary answers the client once every
// active backup has acknowledged. Execution is sequential at every
// replica.
//
// Recovery: replicas monitor each other with heartbeats. A replica that
// suspects a crash stops the configuration and proposes a successor
// configuration through the total order broadcast service, tagged with
// the current configuration's sequence number so only the first proposal
// per configuration wins. Members of the new configuration exchange
// (seq+1, executedSeq); the member with the highest executed sequence
// number (ties to the smallest identifier) becomes primary, brings the
// others up to date with cached transactions or a full state transfer,
// and resumes once the required acknowledgments arrive. With three or
// more members the primary resumes as soon as one backup is up to date
// and overlaps the remaining snapshots with normal processing (the
// paper's state-transfer overlap optimization).

// PBRDeployment is the static description of a PBR group.
type PBRDeployment struct {
	// Pool is every replica location, in spare-preference order. The
	// initial configuration uses the first InitialMembers of them.
	Pool []msg.Loc
	// InitialMembers is the initial group size (primary + backups).
	InitialMembers int
	// BcastNodes are the total order broadcast service locations used for
	// recovery proposals.
	BcastNodes []msg.Loc
	// Timing holds the failure-detector knobs.
	Timing Timing
	// BatchBytes is the state-transfer batch payload target (0 = 50 KiB).
	BatchBytes int
}

// InitialConfig returns configuration 0.
func (d PBRDeployment) InitialConfig() Config {
	n := d.InitialMembers
	if n <= 0 || n > len(d.Pool) {
		n = len(d.Pool)
	}
	return Config{Seq: 0, Members: append([]msg.Loc(nil), d.Pool[:n]...)}
}

// PBRReplica is one replica of a primary-backup group. It implements
// gpm.Process; all state is single-owner.
type PBRReplica struct {
	slf  msg.Loc
	dep  PBRDeployment
	exec *Executor
	cfg  Config

	// stopped marks the configuration halted for recovery.
	stopped bool
	// buffered client requests while stopped (primary side).
	heldReqs []TxRequest

	// failure detector
	missed    map[msg.Loc]int
	suspected map[msg.Loc]bool
	hbStarted bool

	// primary state
	pending map[int64]*ackWait
	// syncing marks backups still receiving a snapshot (overlap mode).
	syncing map[msg.Loc]bool
	// recovered marks backups that confirmed they are in sync.
	recovered map[msg.Loc]bool

	// backup state
	oooRepl   map[int64]Repl
	snapState *snapAssembly
	// gapTick counts forwards buffered behind a replication gap, pacing
	// explicit catch-up requests to the primary.
	gapTick int
	// stuckTicks counts heartbeat periods spent stopped without any
	// transfer traffic; every few of them the catch-up request escalates
	// to a forced resync (the in-flight transfer was lost).
	stuckTicks int
	// snapXfer numbers outgoing state transfers (primary side).
	snapXfer int64

	// election state
	electing bool
	votes    map[msg.Loc]Elect

	// broadcast interaction
	bseq     int64
	lastSlot int

	// cost accounting for the simulator (virtual CPU of the last step)
	stepCost time.Duration

	// recoverAt stamps when this replica entered recovery (observability
	// only; never read by the protocol).
	recoverAt int64

	// DeliveredConfigs counts adopted configurations (observability).
	DeliveredConfigs int
}

var _ gpm.Process = (*PBRReplica)(nil)

type ackWait struct {
	req    TxRequest
	res    TxResult
	needed map[msg.Loc]bool
	at     int64 // submit timestamp (observability only)
}

type snapAssembly struct {
	cfgSeq   int
	xfer     int64
	schemas  []sqldb.CreateTable
	rows     map[string][][]sqldb.Value
	held     []Repl
	received int
	// seen dedups batches by index: a duplicated SnapBatch must not
	// double its rows or inflate received past the real batch count.
	seen map[int]bool
	// end holds the SnapEnd when it arrived before all batches.
	end *SnapEnd
}

// NewPBRReplica creates a replica. The database starts empty; initial
// schema/population is installed by the deployment before traffic starts
// (replicas of a configuration start in the same state).
func NewPBRReplica(slf msg.Loc, db *sqldb.DB, reg Registry, dep PBRDeployment) *PBRReplica {
	if dep.Timing == (Timing{}) {
		dep.Timing = DefaultTiming()
	}
	return &PBRReplica{
		slf:       slf,
		dep:       dep,
		exec:      NewExecutor(db, reg),
		cfg:       dep.InitialConfig(),
		missed:    make(map[msg.Loc]int),
		suspected: make(map[msg.Loc]bool),
		pending:   make(map[int64]*ackWait),
		syncing:   make(map[msg.Loc]bool),
		recovered: make(map[msg.Loc]bool),
		oooRepl:   make(map[int64]Repl),
		votes:     make(map[msg.Loc]Elect),
		lastSlot:  -1,
	}
}

// Executor exposes the replica's executor (tests and validators).
func (r *PBRReplica) Executor() *Executor { return r.exec }

// ConfigNow returns the replica's current configuration.
func (r *PBRReplica) ConfigNow() Config { return r.cfg }

// IsPrimary reports whether this replica is the current primary.
func (r *PBRReplica) IsPrimary() bool { return r.cfg.Primary() == r.slf }

// Stopped reports whether the configuration is halted for recovery.
func (r *PBRReplica) Stopped() bool { return r.stopped }

// LastCost returns the virtual CPU cost of the most recent Step, for the
// simulator's service-time accounting.
func (r *PBRReplica) LastCost() time.Duration { return r.stepCost }

// Halted implements gpm.Process.
func (r *PBRReplica) Halted() bool { return false }

// Step implements gpm.Process.
func (r *PBRReplica) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	r.stepCost = 0
	statsBefore := r.exec.DB.Stats()
	var outs []msg.Directive
	switch in.Hdr {
	case HdrTx:
		outs = r.onTx(in.Body.(TxRequest))
	case HdrRepl:
		outs = r.onRepl(in.Body.(Repl))
	case HdrReplAck:
		outs = r.onReplAck(in.Body.(ReplAck))
	case HdrHeartbeat:
		outs = r.onHeartbeat(in.Body.(Heartbeat))
	case HdrHBTick:
		outs = r.onHBTick()
	case broadcast.HdrDeliver:
		outs = r.onDeliver(in.Body.(broadcast.Deliver))
	case HdrElect:
		outs = r.onElect(in.Body.(Elect))
	case HdrCatchup:
		outs = r.onCatchup(in.Body.(Catchup))
	case HdrCatchupReq:
		outs = r.onCatchupReq(in.Body.(CatchupReq))
	case HdrSnapBegin:
		outs = r.onSnapBegin(in.Body.(SnapBegin))
	case HdrSnapBatch:
		outs = r.onSnapBatch(in.Body.(SnapBatch))
	case HdrSnapEnd:
		outs = r.onSnapEnd(in.Body.(SnapEnd))
	case HdrRecovered:
		outs = r.onRecovered(in.Body.(Recovered))
	}
	r.stepCost += r.exec.DB.Engine().CostOf(r.exec.DB.Stats().Sub(statsBefore))
	return r, outs
}

// Start returns the directives that boot the replica's failure detector.
// The deployment sends the returned messages once at time zero.
func (r *PBRReplica) Start() []msg.Directive {
	if r.hbStarted {
		return nil
	}
	r.hbStarted = true
	return []msg.Directive{msg.SendAfter(r.dep.Timing.HeartbeatEvery, r.slf, msg.M(HdrHBTick, HBTick{}))}
}

// ------------------------------------------------------------ normal case --

func (r *PBRReplica) onTx(req TxRequest) []msg.Directive {
	if !r.cfg.Contains(r.slf) || r.cfg.Primary() != r.slf {
		return []msg.Directive{msg.Send(req.Client, msg.M(HdrRedirect, Redirect{
			Primary: r.cfg.Primary(), CfgSeq: r.cfg.Seq,
		}))}
	}
	if r.stopped {
		if len(r.heldReqs) >= maxHeldReqs {
			// Shed rather than grow without bound during a long recovery;
			// the client's retry timer (with backoff) re-submits.
			return nil
		}
		r.heldReqs = append(r.heldReqs, req)
		return nil
	}
	return r.execAsPrimary(req)
}

// maxHeldReqs bounds the requests a stopped primary buffers for replay at
// resume. Beyond it, requests are dropped and covered by client retry.
const maxHeldReqs = 4096

func (r *PBRReplica) execAsPrimary(req TxRequest) []msg.Directive {
	if res, dup := r.exec.Duplicate(req); dup {
		return []msg.Directive{msg.Send(req.Client, msg.M(HdrTxResult, res))}
	}
	mPBRTxs.Inc()
	t0 := obs.Default.Now()
	order := r.exec.Executed + 1
	res, err := r.exec.Apply(order, req)
	if err != nil {
		res = TxResult{Client: req.Client, Seq: req.Seq, Err: err.Error()}
		return []msg.Directive{msg.Send(req.Client, msg.M(HdrTxResult, res))}
	}
	gExecuted.Set(r.exec.Executed)
	needed := make(map[msg.Loc]bool)
	var outs []msg.Directive
	repl := Repl{CfgSeq: r.cfg.Seq, Order: order, Req: req}
	for _, b := range r.cfg.Backups() {
		outs = append(outs, msg.Send(b, msg.M(HdrRepl, repl)))
		if !r.syncing[b] {
			needed[b] = true
		}
	}
	if len(needed) == 0 {
		mPBRCommits.Inc()
		mPBRNS.Observe(obs.Default.Now() - t0)
		return append(outs, msg.Send(req.Client, msg.M(HdrTxResult, res)))
	}
	r.pending[order] = &ackWait{req: req, res: res, needed: needed, at: t0}
	return outs
}

func (r *PBRReplica) onRepl(rep Repl) []msg.Directive {
	if rep.CfgSeq != r.cfg.Seq {
		return nil // backups only accept matching configuration tags
	}
	if r.snapState != nil {
		// Receiving a snapshot: buffer and apply afterwards.
		r.snapState.held = append(r.snapState.held, rep)
		return nil
	}
	if rep.Order <= r.exec.Executed {
		return []msg.Directive{msg.Send(r.cfg.Primary(), msg.M(HdrReplAck, ReplAck{
			CfgSeq: r.cfg.Seq, Order: rep.Order, From: r.slf,
		}))}
	}
	r.oooRepl[rep.Order] = rep
	outs := r.drainRepl()
	if _, gap := r.oooRepl[r.exec.Executed+1]; !gap && len(r.oooRepl) > 0 {
		// Forwards are piling up behind a hole the primary will never
		// retransmit on its own (a Repl lost to the network). Ask for the
		// missing range explicitly, pacing requests so a burst of buffered
		// forwards costs one round trip — but re-asking while stuck, in
		// case the request or its answer is lost too.
		r.gapTick++
		if r.gapTick == 1 || r.gapTick%8 == 0 {
			outs = append(outs, msg.Send(r.cfg.Primary(), msg.M(HdrCatchupReq, CatchupReq{
				CfgSeq: r.cfg.Seq, From: r.slf, Since: r.exec.Executed,
			})))
		}
	}
	return outs
}

// drainRepl applies contiguously buffered forwards.
func (r *PBRReplica) drainRepl() []msg.Directive {
	var outs []msg.Directive
	for {
		rep, ok := r.oooRepl[r.exec.Executed+1]
		if !ok {
			if len(outs) > 0 {
				r.gapTick = 0 // progress: re-arm the gap pacer
			}
			return outs
		}
		delete(r.oooRepl, rep.Order)
		if _, err := r.exec.Apply(rep.Order, rep.Req); err != nil {
			return outs
		}
		outs = append(outs, msg.Send(r.cfg.Primary(), msg.M(HdrReplAck, ReplAck{
			CfgSeq: r.cfg.Seq, Order: rep.Order, From: r.slf,
		})))
	}
}

func (r *PBRReplica) onReplAck(ack ReplAck) []msg.Directive {
	if ack.CfgSeq != r.cfg.Seq {
		return nil
	}
	w, ok := r.pending[ack.Order]
	if !ok {
		return nil
	}
	delete(w.needed, ack.From)
	if len(w.needed) > 0 {
		return nil
	}
	delete(r.pending, ack.Order)
	mPBRCommits.Inc()
	mPBRNS.Observe(obs.Default.Now() - w.at)
	return []msg.Directive{msg.Send(w.req.Client, msg.M(HdrTxResult, w.res))}
}

// --------------------------------------------------------- failure detect --

func (r *PBRReplica) onHBTick() []msg.Directive {
	outs := []msg.Directive{msg.SendAfter(r.dep.Timing.HeartbeatEvery, r.slf, msg.M(HdrHBTick, HBTick{}))}
	if !r.cfg.Contains(r.slf) {
		return outs // spares stay passive
	}
	hb := Heartbeat{
		From: r.slf, CfgSeq: r.cfg.Seq,
		Members: append([]msg.Loc(nil), r.cfg.Members...),
		Stopped: r.stopped,
		Elected: !r.electing,
	}
	limit := int(r.dep.Timing.SuspectAfter / r.dep.Timing.HeartbeatEvery)
	for _, m := range r.cfg.Members {
		if m == r.slf {
			continue
		}
		outs = append(outs, msg.Send(m, msg.M(HdrHeartbeat, hb)))
		r.missed[m]++
		if r.missed[m] > limit && !r.suspected[m] && !r.stopped {
			r.suspected[m] = true
			outs = append(outs, r.suspect(m)...)
		}
	}
	if r.electing {
		// An election is only as live as its votes: they are sent once at
		// the configuration delivery, and a member on the wrong side of a
		// partition at that moment never sees ours (suspicion cannot break
		// the tie — every member is stopped during an election). Re-send
		// our vote to members we have not heard from until the tally
		// closes, so the election completes as soon as the network heals.
		vote := Elect{CfgSeq: r.cfg.Seq, From: r.slf, Executed: r.exec.Executed, HasData: r.hasData()}
		for _, m := range r.cfg.Members {
			if m == r.slf {
				continue
			}
			if _, ok := r.votes[m]; !ok {
				outs = append(outs, msg.Send(m, msg.M(HdrElect, vote)))
			}
		}
	}
	return outs
}

// onHeartbeat processes a liveness probe and its piggybacked
// configuration gossip. Beyond resetting the failure detector, it closes
// the recovery holes a faulty network opens: replicas that missed a
// reconfiguration adopt it from gossip, stale non-members are told to
// stand down, healed partitions un-suspect peers (resuming a stop whose
// reconfiguration proposal was lost), and signals dropped on the wire
// (Catchup, Recovered) are re-solicited.
func (r *PBRReplica) onHeartbeat(hb Heartbeat) []msg.Directive {
	switch {
	case hb.CfgSeq > r.cfg.Seq && len(hb.Members) > 0:
		return r.adoptConfig(hb)
	case hb.CfgSeq < r.cfg.Seq:
		if !r.cfg.Contains(hb.From) {
			// A stale non-member (e.g. a restarted old primary still
			// probing its defunct membership) never hears our periodic
			// heartbeats; push it our configuration so it can stand down.
			return []msg.Directive{msg.Send(hb.From, msg.M(HdrHeartbeat, Heartbeat{
				From: r.slf, CfgSeq: r.cfg.Seq,
				Members: append([]msg.Loc(nil), r.cfg.Members...),
				Stopped: r.stopped,
				Elected: !r.electing,
			}))}
		}
		return nil // member momentarily behind; its own deliver fixes it
	}
	r.missed[hb.From] = 0
	var outs []msg.Directive
	if r.electing && hb.Elected {
		// The tally closed without us — votes crossed a partition — and
		// the sender already runs the elected order. Adopt it; the
		// stopped-backup repair below fetches whatever we missed.
		r.cfg.Members = append([]msg.Loc(nil), hb.Members...)
		r.electing = false
		traceRecovery(r.slf, "pbr.adoptelection", r.cfg.Seq, "from="+string(hb.From))
	}
	if r.suspected[hb.From] {
		// The suspect is provably alive: a partition healed. Clear the
		// suspicion, and if the stop-for-recovery has lost its last reason
		// (no election running, no surviving suspects), resume rather than
		// wait for a reconfiguration that may never have been agreed.
		delete(r.suspected, hb.From)
		traceRecovery(r.slf, "pbr.unsuspect", r.cfg.Seq, "peer="+string(hb.From))
		if r.stopped && !r.electing && r.snapState == nil && len(r.suspected) == 0 {
			outs = append(outs, r.resume()...)
		}
	}
	if r.stopped && !r.electing && r.snapState == nil &&
		hb.From == r.cfg.Primary() && r.cfg.Primary() != r.slf {
		// Still halted while the primary is up with no transfer arriving:
		// the Catchup or SnapBegin that should have released us was lost.
		// Ask again. The primary ignores repeats while a transfer to us is
		// in flight, so after several unanswered asks escalate to a forced
		// resync — that in-flight transfer is not coming.
		r.stuckTicks++
		outs = append(outs, msg.Send(r.cfg.Primary(), msg.M(HdrCatchupReq, CatchupReq{
			CfgSeq: r.cfg.Seq, From: r.slf, Since: r.exec.Executed,
			Resync: r.stuckTicks%4 == 0,
		})))
	}
	if hb.Stopped && hb.From == r.cfg.Primary() && !r.stopped && !r.electing &&
		r.snapState == nil && r.slf != r.cfg.Primary() {
		// The primary is still waiting out recovery but we are in sync:
		// our Recovered was lost. Repeat it.
		outs = append(outs, msg.Send(r.cfg.Primary(), msg.M(HdrRecovered, Recovered{
			CfgSeq: r.cfg.Seq, From: r.slf,
		})))
	}
	return outs
}

// adoptConfig installs a configuration learned from gossip — the path
// for replicas that missed the reconfiguration broadcast (restarted, or
// partitioned away while it was agreed).
func (r *PBRReplica) adoptConfig(hb Heartbeat) []msg.Directive {
	traceRecovery(r.slf, "pbr.adopt", hb.CfgSeq, "from="+string(hb.From))
	r.cfg = Config{Seq: hb.CfgSeq, Members: append([]msg.Loc(nil), hb.Members...)}
	r.resetPerConfig()
	outs := r.flushHeld()
	if !r.cfg.Contains(r.slf) {
		// Excluded while away. Our state may have diverged from the
		// surviving chain (e.g. we executed transactions as a primary
		// whose acks never committed), so it must not seed a future
		// election: wipe and rejoin as a fresh spare, to be repopulated by
		// snapshot if ever re-added.
		r.stopped = false
		r.wipeToSpare()
		return outs
	}
	// Member of the adopted configuration but behind its history: halt
	// normal processing and ask the primary to close the gap. The request
	// is repeated from onHeartbeat while we stay stopped, so losing it is
	// not fatal.
	r.stopped = true
	if r.recoverAt == 0 {
		r.recoverAt = obs.Default.Now()
	}
	return append(outs, msg.Send(r.cfg.Primary(), msg.M(HdrCatchupReq, CatchupReq{
		CfgSeq: r.cfg.Seq, From: r.slf, Since: r.exec.Executed,
	})))
}

// resetPerConfig clears every piece of per-configuration state. Callers
// set the replica's role flags (stopped, electing) afterwards.
func (r *PBRReplica) resetPerConfig() {
	r.electing = false
	r.votes = make(map[msg.Loc]Elect)
	r.pending = make(map[int64]*ackWait)
	r.oooRepl = make(map[int64]Repl)
	r.syncing = make(map[msg.Loc]bool)
	r.recovered = make(map[msg.Loc]bool)
	r.missed = make(map[msg.Loc]int)
	r.suspected = make(map[msg.Loc]bool)
	r.snapState = nil
	r.gapTick = 0
	r.stuckTicks = 0
}

// wipeToSpare discards the replica's database and execution history,
// returning it to the fresh-spare state (hasData() false).
func (r *PBRReplica) wipeToSpare() {
	_ = r.exec.DB.Restore(nil)
	r.exec.InstallSnapshot(0)
	traceRecovery(r.slf, "pbr.wipe", r.cfg.Seq, "")
}

// flushHeld redirects requests buffered while this replica was a stopped
// primary to the configuration's (new) primary. The clients resend with
// their original sequence numbers, so exactly-once execution holds.
func (r *PBRReplica) flushHeld() []msg.Directive {
	if len(r.heldReqs) == 0 {
		return nil
	}
	held := r.heldReqs
	r.heldReqs = nil
	outs := make([]msg.Directive, 0, len(held))
	for _, req := range held {
		outs = append(outs, msg.Send(req.Client, msg.M(HdrRedirect, Redirect{
			Primary: r.cfg.Primary(), CfgSeq: r.cfg.Seq,
		})))
	}
	return outs
}

// suspect stops the configuration and proposes a successor through the
// total order broadcast service.
func (r *PBRReplica) suspect(dead msg.Loc) []msg.Directive {
	r.stopped = true
	mSuspects.Inc()
	r.recoverAt = obs.Default.Now()
	traceRecovery(r.slf, "pbr.suspect", r.cfg.Seq, "dead="+string(dead))
	var members []msg.Loc
	for _, m := range r.cfg.Members {
		if m != dead && !r.suspected[m] {
			members = append(members, m)
		}
	}
	// Refill from spares, preserving pool order.
	want := len(r.cfg.Members)
	for _, p := range r.dep.Pool {
		if len(members) >= want {
			break
		}
		if !r.cfg.Contains(p) && !r.suspected[p] {
			members = append(members, p)
		}
	}
	prop := NewConfig{OldSeq: r.cfg.Seq, Members: members, Proposer: r.slf}
	payload := encodeProposal(prop)
	r.bseq++
	b := broadcast.Bcast{From: r.slf, Seq: r.bseq, Payload: payload}
	var outs []msg.Directive
	for _, n := range r.dep.BcastNodes {
		outs = append(outs, msg.Send(n, msg.M(broadcast.HdrBcast, b)))
	}
	return outs
}

// ---------------------------------------------------------------- recovery --

func (r *PBRReplica) onDeliver(d broadcast.Deliver) []msg.Directive {
	if d.Slot <= r.lastSlot {
		return nil // duplicate notification from another service node
	}
	r.lastSlot = d.Slot
	var outs []msg.Directive
	for _, b := range d.Msgs {
		prop, err := decodeProposal(b.Payload)
		if err != nil {
			continue
		}
		outs = append(outs, r.onNewConfig(prop)...)
	}
	return outs
}

func (r *PBRReplica) onNewConfig(prop NewConfig) []msg.Directive {
	if prop.OldSeq != r.cfg.Seq {
		return nil // only the first proposal per configuration counts
	}
	r.DeliveredConfigs++
	mReconfigs.Inc()
	if r.recoverAt == 0 {
		r.recoverAt = obs.Default.Now()
	}
	traceRecovery(r.slf, "pbr.newconfig", prop.OldSeq+1, "proposer="+string(prop.Proposer))
	r.cfg = Config{Seq: prop.OldSeq + 1, Members: append([]msg.Loc(nil), prop.Members...)}
	r.resetPerConfig()
	r.stopped = true
	r.electing = true
	if !r.cfg.Contains(r.slf) {
		// Excluded: fall back to spare duty. Wipe the database — this
		// replica may have executed transactions the surviving members
		// never acknowledged, and divergent state must not win a later
		// election — and point any held clients at the successor group.
		r.electing = false
		r.stopped = false
		r.wipeToSpare()
		return r.flushHeld()
	}
	vote := Elect{CfgSeq: r.cfg.Seq, From: r.slf, Executed: r.exec.Executed, HasData: r.hasData()}
	outs := make([]msg.Directive, 0, len(r.cfg.Members))
	for _, m := range r.cfg.Members {
		if m == r.slf {
			outs = append(outs, r.recordVote(vote)...)
			continue
		}
		outs = append(outs, msg.Send(m, msg.M(HdrElect, vote)))
	}
	return outs
}

// hasData reports whether the replica holds a database copy (fresh spares
// do not; anything that has executed or restored state does).
func (r *PBRReplica) hasData() bool {
	return r.exec.Executed > 0 || r.exec.DB.NumTables() > 0
}

func (r *PBRReplica) onElect(v Elect) []msg.Directive {
	if v.CfgSeq != r.cfg.Seq || !r.electing {
		return nil
	}
	return r.recordVote(v)
}

func (r *PBRReplica) recordVote(v Elect) []msg.Directive {
	r.votes[v.From] = v
	if len(r.votes) < len(r.cfg.Members) {
		return nil
	}
	// Every member heard from: elect the candidate with the highest
	// executed sequence number; ties go to the smallest identifier. Only
	// replicas holding a full database copy are candidates.
	members := append([]msg.Loc(nil), r.cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	var primary msg.Loc
	best := int64(-1)
	for _, m := range members {
		v := r.votes[m]
		if !v.HasData {
			continue
		}
		if v.Executed > best {
			best, primary = v.Executed, m
		}
	}
	if primary == "" {
		// No member has data (cannot happen with a sane pool); keep
		// waiting for another configuration.
		return nil
	}
	ordered := []msg.Loc{primary}
	for _, m := range r.cfg.Members {
		if m != primary {
			ordered = append(ordered, m)
		}
	}
	r.cfg.Members = ordered
	r.electing = false
	mElections.Inc()
	traceRecovery(r.slf, "pbr.elected", r.cfg.Seq, "primary="+string(primary))
	if r.slf != primary {
		// Backups wait for catch-up (or resume directly if in sync —
		// the primary tells them via an empty catch-up). A former primary
		// demoted here redirects its held clients to the winner.
		return r.flushHeld()
	}
	return r.primarySync()
}

// primarySync brings every backup up to date: cached transactions where
// the log cache reaches, a full state transfer otherwise.
func (r *PBRReplica) primarySync() []msg.Directive {
	var outs []msg.Directive
	for _, b := range r.cfg.Backups() {
		v := r.votes[b]
		txs, ok := r.exec.LogFrom(v.Executed)
		if ok && v.HasData {
			outs = append(outs, msg.Send(b, msg.M(HdrCatchup, Catchup{
				CfgSeq: r.cfg.Seq, From: v.Executed + 1, Txs: txs,
			})))
			continue
		}
		outs = append(outs, r.sendSnapshot(b)...)
		r.syncing[b] = true
	}
	if len(r.cfg.Backups()) == 0 {
		// Sole survivor: resume alone (the crash of all but one replica
		// can be masked).
		return append(outs, r.resume()...)
	}
	return outs
}

// sendSnapshot emits a full state transfer to one backup, charging the
// serialization cost model. Each transfer gets a fresh id so the
// receiver can tell a replacement from stragglers of a lost one.
func (r *PBRReplica) sendSnapshot(to msg.Loc) []msg.Directive {
	r.snapXfer++
	outs, cost := SnapshotDirectives(r.exec.DB, to, r.cfg.Seq, r.exec.Executed, r.snapXfer, r.dep.BatchBytes)
	r.stepCost += cost
	return outs
}

// SnapshotDirectives builds the full state-transfer message sequence
// (SnapBegin, batched SnapBatch, SnapEnd) from a database to a
// destination, returning the modeled sender-side serialization cost —
// proportional to rows times columns, as the paper observes for TPC-C
// ("serialization overhead is proportional to the number of table
// columns").
func SnapshotDirectives(db *sqldb.DB, to msg.Loc, cfgSeq int, order, xfer int64, batchBytes int) ([]msg.Directive, time.Duration) {
	dumps := db.Snapshot()
	eng := db.Engine()
	schemas := make([]sqldb.CreateTable, len(dumps))
	for i, d := range dumps {
		schemas[i] = d.Schema
	}
	outs := []msg.Directive{msg.Send(to, msg.M(HdrSnapBegin, SnapBegin{
		CfgSeq: cfgSeq, Xfer: xfer, Schemas: schemas, Order: order,
	}))}
	var cost time.Duration
	n := 0
	for _, d := range dumps {
		cols := len(d.Schema.Cols)
		for _, batch := range sqldb.SplitBatches(d, batchBytes) {
			outs = append(outs, msg.Send(to, msg.M(HdrSnapBatch, SnapBatch{
				CfgSeq: cfgSeq, Xfer: xfer, Table: batch.Table, Rows: batch.Rows, N: n,
			})))
			n++
			cost += time.Duration(len(batch.Rows)*cols) * eng.PerColSerialize
		}
	}
	outs = append(outs, msg.Send(to, msg.M(HdrSnapEnd, SnapEnd{
		CfgSeq: cfgSeq, Xfer: xfer, Order: order, Batches: n,
	})))
	return outs, cost
}

// onCatchupReq answers a backup's explicit repair request: cached
// transactions when the log cache reaches back far enough, a full state
// transfer otherwise.
func (r *PBRReplica) onCatchupReq(q CatchupReq) []msg.Directive {
	if q.CfgSeq != r.cfg.Seq || r.cfg.Primary() != r.slf || !r.cfg.Contains(q.From) {
		return nil
	}
	if r.syncing[q.From] && !q.Resync {
		// A state transfer to this backup is already in flight; a repeated
		// request just means it has not landed yet. Re-snapshotting on
		// every ask would stack transfers — each one a full serialization
		// on our CPU and a restart of the backup's assembly.
		return nil
	}
	txs, ok := r.exec.LogFrom(q.Since)
	if ok {
		return []msg.Directive{msg.Send(q.From, msg.M(HdrCatchup, Catchup{
			CfgSeq: r.cfg.Seq, From: q.Since + 1, Txs: txs,
		}))}
	}
	r.syncing[q.From] = true
	return r.sendSnapshot(q.From)
}

func (r *PBRReplica) onCatchup(c Catchup) []msg.Directive {
	if c.CfgSeq != r.cfg.Seq {
		return nil
	}
	r.stuckTicks = 0
	var outs []msg.Directive
	// Collect the contiguous run of repairs starting at Executed+1 and
	// group-commit it in one SQL-engine critical section; a gap in the
	// repair stream ends the run (the rest is unusable until repaired).
	var reqs []TxRequest
	for _, rep := range c.Txs {
		if rep.Order <= r.exec.Executed+int64(len(reqs)) {
			continue
		}
		if rep.Order != r.exec.Executed+int64(len(reqs))+1 {
			break
		}
		reqs = append(reqs, rep.Req)
	}
	first := r.exec.Executed + 1
	for i := range r.exec.ApplyBatch(reqs) {
		order := first + int64(i)
		delete(r.oooRepl, order)
		// Ack each repaired transaction: the primary may hold a pending
		// commit waiting on exactly this order (gap repair during normal
		// processing, not just post-election catch-up).
		outs = append(outs, msg.Send(r.cfg.Primary(), msg.M(HdrReplAck, ReplAck{
			CfgSeq: r.cfg.Seq, Order: order, From: r.slf,
		})))
	}
	// Forwards buffered behind the repaired gap may now be contiguous.
	outs = append(outs, r.drainRepl()...)
	wasStopped := r.stopped
	r.stopped = false
	if wasStopped {
		r.markRecovered()
	}
	return append(outs, msg.Send(r.cfg.Primary(), msg.M(HdrRecovered, Recovered{
		CfgSeq: r.cfg.Seq, From: r.slf,
	})))
}

// markRecovered closes this replica's recovery window (observability).
func (r *PBRReplica) markRecovered() {
	if r.recoverAt != 0 {
		mRecoverNS.Observe(obs.Default.Now() - r.recoverAt)
		r.recoverAt = 0
	}
	traceRecovery(r.slf, "pbr.recovered", r.cfg.Seq, "")
}

func (r *PBRReplica) onSnapBegin(s SnapBegin) []msg.Directive {
	if s.CfgSeq != r.cfg.Seq {
		return nil
	}
	if st := r.snapState; st != nil && s.Xfer <= st.xfer {
		return nil // duplicate or stale begin; keep the current assembly
	}
	r.stuckTicks = 0
	r.snapState = &snapAssembly{
		cfgSeq:  s.CfgSeq,
		xfer:    s.Xfer,
		schemas: s.Schemas,
		rows:    make(map[string][][]sqldb.Value),
		seen:    make(map[int]bool),
	}
	return nil
}

func (r *PBRReplica) onSnapBatch(b SnapBatch) []msg.Directive {
	if r.snapState == nil || b.CfgSeq != r.cfg.Seq || b.Xfer != r.snapState.xfer {
		return nil // no assembly, or a straggler of a superseded transfer
	}
	if r.snapState.seen[b.N] {
		return nil // duplicate batch
	}
	r.snapState.seen[b.N] = true
	r.snapState.rows[b.Table] = append(r.snapState.rows[b.Table], b.Rows...)
	r.snapState.received++
	// Row insertion is the state-transfer bottleneck (Fig. 10b); wide
	// rows pay an additional per-byte cost.
	r.stepCost += batchRestoreCost(r.exec.DB.Engine(), b.Rows)
	if end := r.snapState.end; end != nil && r.snapState.received >= end.Batches {
		return r.onSnapEnd(*end)
	}
	return nil
}

func (r *PBRReplica) onSnapEnd(s SnapEnd) []msg.Directive {
	if r.snapState == nil || s.CfgSeq != r.cfg.Seq || s.Xfer != r.snapState.xfer {
		return nil
	}
	if r.snapState.received < s.Batches {
		// Some batches are still in flight: finish when they arrive.
		end := s
		r.snapState.end = &end
		return nil
	}
	dumps := make([]sqldb.TableDump, len(r.snapState.schemas))
	for i, sc := range r.snapState.schemas {
		dumps[i] = sqldb.TableDump{Schema: sc, Rows: r.snapState.rows[sc.Name]}
	}
	if err := r.exec.DB.Restore(dumps); err != nil {
		r.snapState = nil
		return nil
	}
	r.exec.InstallSnapshot(s.Order)
	held := r.snapState.held
	r.snapState = nil
	r.stopped = false
	r.markRecovered()
	outs := []msg.Directive{msg.Send(r.cfg.Primary(), msg.M(HdrRecovered, Recovered{
		CfgSeq: r.cfg.Seq, From: r.slf,
	}))}
	// Apply forwards buffered during the transfer.
	for _, rep := range held {
		outs = append(outs, r.onRepl(rep)...)
	}
	return outs
}

func (r *PBRReplica) onRecovered(rec Recovered) []msg.Directive {
	if rec.CfgSeq != r.cfg.Seq || r.cfg.Primary() != r.slf {
		return nil
	}
	delete(r.syncing, rec.From)
	r.recovered[rec.From] = true
	if !r.stopped {
		return nil // already resumed (overlap mode); the ack set just grew
	}
	// Resume once every backup confirmed, or — the paper's overlap
	// optimization — with three or more members as soon as one backup is
	// up to date, propagating the remaining snapshots in parallel.
	allDone := len(r.recovered) == len(r.cfg.Backups())
	overlap := len(r.cfg.Members) >= 3 && len(r.recovered) >= 1
	if allDone || overlap {
		return r.resume()
	}
	return nil
}

// resume re-opens the configuration for client traffic and replays the
// requests held during recovery.
func (r *PBRReplica) resume() []msg.Directive {
	r.stopped = false
	if r.recoverAt != 0 {
		mRecoverNS.Observe(obs.Default.Now() - r.recoverAt)
		r.recoverAt = 0
	}
	traceRecovery(r.slf, "pbr.resume", r.cfg.Seq, "")
	held := r.heldReqs
	r.heldReqs = nil
	var outs []msg.Directive
	for _, req := range held {
		outs = append(outs, r.execAsPrimary(req)...)
	}
	return outs
}

// batchRestoreCost models the receive-side insertion cost of one state
// transfer batch: a per-row floor plus a per-byte component.
func batchRestoreCost(eng sqldb.Engine, rows [][]sqldb.Value) time.Duration {
	cost := time.Duration(len(rows)) * eng.RestoreRowCost
	for _, row := range rows {
		cost += time.Duration(sqldb.RowBytes(row)) * eng.RestoreByteCost
	}
	return cost
}

// ----------------------------------------------------------------- encode --

func encodeProposal(p NewConfig) []byte {
	// Proposals travel inside broadcast payloads; reuse the batch codec.
	members := make([]string, len(p.Members))
	for i, m := range p.Members {
		members[i] = string(m)
	}
	s := fmt.Sprintf("cfg|%d|%s", p.OldSeq, p.Proposer)
	for _, m := range members {
		s += "|" + m
	}
	return []byte(s)
}

func decodeProposal(b []byte) (NewConfig, error) {
	var p NewConfig
	parts := splitBytes(b, '|')
	if len(parts) < 3 || parts[0] != "cfg" {
		return p, fmt.Errorf("core: not a config proposal")
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &p.OldSeq); err != nil {
		return p, fmt.Errorf("core: bad proposal seq: %w", err)
	}
	p.Proposer = msg.Loc(parts[2])
	for _, m := range parts[3:] {
		p.Members = append(p.Members, msg.Loc(m))
	}
	return p, nil
}

func splitBytes(b []byte, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(b); i++ {
		if i == len(b) || b[i] == sep {
			out = append(out, string(b[start:i]))
			start = i + 1
		}
	}
	return out
}
