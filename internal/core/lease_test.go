package core

import (
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/store"
)

// leaseRig is one lease-enabled replica with a controllable clock. The
// default view names r1..r3 as replicas, so r1 is the natural holder.
type leaseRig struct {
	t   *testing.T
	r   *SMRReplica
	now time.Duration
}

const (
	testLeaseDur   = 2 * time.Second
	testLeaseStale = time.Second
)

func newLeaseRig(t *testing.T, slf msg.Loc) *leaseRig {
	t.Helper()
	r := NewSMRReplica(slf, bankDB(t, "lease-"+string(slf), 4), BankRegistry())
	return enableTestLease(t, r, slf)
}

func enableTestLease(t *testing.T, r *SMRReplica, slf msg.Loc) *leaseRig {
	t.Helper()
	r.SetView(member.NewView(member.Config{
		Bcast:    []msg.Loc{"b1", "b2", "b3"},
		Replicas: []msg.Loc{"r1", "r2", "r3"},
	}, 3))
	rig := &leaseRig{t: t, r: r}
	r.EnableLease(LeaseConfig{
		Dur: testLeaseDur, MaxStale: testLeaseStale, Bcast: "b1",
		Now: func() time.Duration { return rig.now },
	}, BankReadRegistry())
	return rig
}

// deliver steps one ordered slot carrying the given payloads.
func (g *leaseRig) deliver(slot int, payloads ...[]byte) []msg.Directive {
	g.t.Helper()
	msgs := make([]broadcast.Bcast, len(payloads))
	for i, p := range payloads {
		msgs[i] = broadcast.Bcast{From: "x", Seq: int64(slot*10 + i), Payload: p}
	}
	_, outs := g.r.Step(msg.M(broadcast.HdrDeliver, broadcast.Deliver{Slot: slot, Msgs: msgs}))
	return outs
}

// renew delivers an ordered lease renewal at the given slot.
func (g *leaseRig) renew(slot, epoch int, holder msg.Loc, issue time.Duration) {
	g.t.Helper()
	g.deliver(slot, EncodeLease(LeaseRenewal{Epoch: epoch, Holder: holder, Issue: issue, Seq: int64(slot + 1)}))
}

// read issues one local read and returns its (pooled) result. Callers
// release it after their assertions.
func (g *leaseRig) read(mode ReadMode) *ReadResult {
	g.t.Helper()
	_, outs := g.r.Step(msg.M(HdrRead, ReadRequest{
		Client: "cli", Seq: 1, Type: "balance", Args: []any{int64(1)}, Mode: mode,
	}))
	if len(outs) != 1 {
		g.t.Fatalf("read produced %d directives, want 1 reply", len(outs))
	}
	return outs[0].M.Body.(*ReadResult)
}

func (g *leaseRig) assertServed(mode ReadMode, wantBalance int64) {
	g.t.Helper()
	res := g.read(mode)
	defer ReleaseReadResult(res)
	if res.Rejected || res.Err != "" {
		g.t.Fatalf("%v read rejected=%v err=%q, want served", mode, res.Rejected, res.Err)
	}
	if len(res.Vals) != 1 || res.Vals[0] != wantBalance {
		g.t.Fatalf("%v read returned %v, want [%d]", mode, res.Vals, wantBalance)
	}
}

func (g *leaseRig) assertRejected(mode ReadMode) {
	g.t.Helper()
	res := g.read(mode)
	defer ReleaseReadResult(res)
	if !res.Rejected {
		g.t.Fatalf("%v read served (err=%q), want rejected", mode, res.Err)
	}
}

func leaseDeposit(t *testing.T, seq int64, amount int) []byte {
	t.Helper()
	pay, err := EncodeTx(TxRequest{Client: "c0", Seq: seq, Type: "deposit", Args: []any{1, amount}})
	if err != nil {
		t.Fatal(err)
	}
	return pay
}

// A replica serves lease reads only after a renewal naming it has been
// ordered and applied; before that every lease read is rejected, and a
// non-holder rejects even with the grant applied.
func TestLeaseGrantServesLocalRead(t *testing.T) {
	g := newLeaseRig(t, "r1")
	g.now = time.Second
	g.assertRejected(ReadLease)

	g.renew(0, 0, "r1", g.now)
	g.assertServed(ReadLease, 1000)

	res := g.read(ReadLease)
	if res.Slot != 0 {
		t.Errorf("served read reports slot frontier %d, want 0", res.Slot)
	}
	ReleaseReadResult(res)

	// The same grant applied at another replica does not let IT serve.
	other := newLeaseRig(t, "r2")
	other.now = time.Second
	other.renew(0, 0, "r1", other.now)
	other.assertRejected(ReadLease)
}

// A lease expires Dur after its carried issue time: the holder keeps
// serving inside the window and rejects the moment it closes, even
// though no new message arrived to tell it so.
func TestLeaseExpiry(t *testing.T) {
	g := newLeaseRig(t, "r1")
	g.now = time.Second
	g.renew(0, 0, "r1", g.now)

	g.now = time.Second + testLeaseDur - time.Millisecond
	g.assertServed(ReadLease, 1000)

	g.now = time.Second + testLeaseDur
	g.assertRejected(ReadLease)

	// A fresh ordered renewal re-opens the window.
	g.renew(1, 0, "r1", g.now)
	g.assertServed(ReadLease, 1000)
}

// An epoch boundary invalidates the lease structurally: once a
// membership command deposes the holder, its existing grant stops
// working and renewals carrying the stale epoch are refused by the
// ordered-apply validity check.
func TestLeaseEpochBoundary(t *testing.T) {
	g := newLeaseRig(t, "r1")
	g.now = time.Second
	g.renew(0, 0, "r1", g.now)
	g.assertServed(ReadLease, 1000)

	// Slot 1 removes r1 from the replica set: epoch 1, holder r2.
	g.deliver(1, member.EncodeCommand(member.Command{Op: member.RemoveReplica, Node: "r1"}))
	g.assertRejected(ReadLease)

	// A renewal proposed under the old epoch but ordered after the
	// boundary is refused — serving off it would be split-brain.
	g.renew(2, 0, "r1", g.now)
	g.assertRejected(ReadLease)
}

// A new holder waits out the previous holder's full lease window
// (notBefore barrier) before serving, so two holders never serve
// simultaneously even across an epoch change.
func TestLeaseHolderChangeBarrier(t *testing.T) {
	g := newLeaseRig(t, "r2")
	g.now = time.Second
	g.renew(0, 0, "r1", g.now) // r1 holds until 3s

	g.deliver(1, member.EncodeCommand(member.Command{Op: member.RemoveReplica, Node: "r1"}))
	g.now = 1500 * time.Millisecond
	g.renew(2, 1, "r2", g.now) // r2's first grant under epoch 1

	// Inside r1's window: the barrier holds.
	g.now = 2 * time.Second
	g.assertRejected(ReadLease)

	// r1's window (issue 1s + 2s) has elapsed: r2 may serve.
	g.now = 3 * time.Second
	g.assertServed(ReadLease, 1000)
}

// With leases enabled only the valid holder acknowledges writes; other
// replicas apply silently. This is what makes a local read at the
// holder linearizable.
func TestLeaseAckGating(t *testing.T) {
	holder := newLeaseRig(t, "r1")
	follower := newLeaseRig(t, "r2")
	holder.now, follower.now = time.Second, time.Second
	holder.renew(0, 0, "r1", time.Second)
	follower.renew(0, 0, "r1", time.Second)

	dep := leaseDeposit(t, 1, 5)
	if outs := holder.deliver(1, dep); len(outs) != 1 || outs[0].M.Hdr != HdrTxResult {
		t.Fatalf("holder emitted %v, want one TxResult", outs)
	}
	if outs := follower.deliver(1, dep); len(outs) != 0 {
		t.Fatalf("non-holder emitted %v, want suppressed ack", outs)
	}
	// Both applied the write; the holder's local read sees it.
	holder.assertServed(ReadLease, 1005)
}

// A write applied while no valid holder exists is acknowledged by
// nobody, and the broadcast layer dedups client retries — so the
// replica that next becomes the valid holder must re-emit the cached
// result, or the ack is lost forever. Covers the startup race (write
// ordered before the first grant) and the handover barrier (writes
// applied while the new holder waits out the old window).
func TestLeaseReackOnAcquisition(t *testing.T) {
	// Startup race: deposit ordered before any grant.
	g := newLeaseRig(t, "r1")
	g.now = time.Second
	if outs := g.deliver(0, leaseDeposit(t, 1, 5)); len(outs) != 0 {
		t.Fatalf("pre-grant deliver emitted %v, want suppressed ack", outs)
	}
	outs := g.deliver(1, EncodeLease(LeaseRenewal{Epoch: 0, Holder: "r1", Issue: g.now, Seq: 1}))
	if len(outs) != 1 || outs[0].M.Hdr != HdrTxResult {
		t.Fatalf("grant emitted %v, want one re-emitted TxResult", outs)
	}
	res := outs[0].M.Body.(TxResult)
	if res.Client != "c0" || res.Seq != 1 {
		t.Fatalf("re-ack for %s/%d, want c0/1", res.Client, res.Seq)
	}

	// Handover: r2 applies a write inside the old holder's barrier
	// window, then re-acks it once its own grant becomes valid.
	h := newLeaseRig(t, "r2")
	h.now = time.Second
	h.renew(0, 0, "r1", h.now) // r1 holds until 3s
	h.deliver(1, member.EncodeCommand(member.Command{Op: member.RemoveReplica, Node: "r1"}))
	if outs := h.deliver(2, leaseDeposit(t, 1, 5)); len(outs) != 0 {
		t.Fatalf("barrier-window deliver emitted %v, want suppressed ack", outs)
	}
	h.now = 2 * time.Second
	h.renew(3, 1, "r2", h.now) // granted, but barrier holds until 3s
	h.assertRejected(ReadLease)
	h.now = 3 * time.Second
	outs = h.deliver(4, EncodeLease(LeaseRenewal{Epoch: 1, Holder: "r2", Issue: h.now, Seq: 2}))
	if len(outs) != 1 || outs[0].M.Hdr != HdrTxResult {
		t.Fatalf("post-barrier grant emitted %v, want one re-emitted TxResult", outs)
	}
	h.assertServed(ReadLease, 1005)
}

// Follower reads serve within the staleness bound measured from the
// last applied renewal's issue time, and reject once the bound runs
// out (a partitioned follower stops receiving renewals).
func TestFollowerStalenessBound(t *testing.T) {
	g := newLeaseRig(t, "r2")
	g.now = time.Second
	g.renew(0, 0, "r1", g.now)

	g.now = time.Second + testLeaseStale - 100*time.Millisecond
	g.assertServed(ReadFollower, 1000)
	res := g.read(ReadFollower)
	if res.Issue != int64(time.Second) {
		t.Errorf("follower read stamped issue %d, want %d", res.Issue, int64(time.Second))
	}
	ReleaseReadResult(res)

	g.now = time.Second + testLeaseStale + time.Millisecond
	g.assertRejected(ReadFollower)

	// Lease-mode reads at a follower are always rejected.
	g.now = time.Second
	g.assertRejected(ReadLease)
}

// Lease state is volatile: a holder rebuilt over its journal (the
// fault.Rolling restart shape — crash, recover from stable storage,
// rejoin) replays its journaled grants into nothing and must not
// resume serving until a fresh renewal is ordered and applied under
// the current epoch.
func TestLeaseAcrossRestart(t *testing.T) {
	prov := store.NewMem()
	db := bankDB(t, "lease-restart", 4)
	r1, err := NewDurableSMRReplica("r1", db, BankRegistry(), mustOpen(t, prov, "r1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := enableTestLease(t, r1, "r1")
	g.now = time.Second
	g.renew(0, 0, "r1", g.now)
	g.deliver(1, leaseDeposit(t, 1, 5))
	g.assertServed(ReadLease, 1005)

	// Crash: rebuild from the journal. The journaled renewal at slot 0
	// replays before EnableLease runs, so it is dropped — recovered
	// state includes the deposit but no lease.
	db2 := emptyDB(t, "lease-restart-2")
	r1b, err := NewDurableSMRReplica("r1", db2, BankRegistry(), mustOpen(t, prov, "r1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	g2 := enableTestLease(t, r1b, "r1")
	g2.now = time.Second + 100*time.Millisecond
	g2.assertRejected(ReadLease)

	// Only a fresh ordered renewal under the current epoch re-opens
	// local serving.
	g2.renew(2, 0, "r1", g2.now)
	g2.assertServed(ReadLease, 1005)
}
