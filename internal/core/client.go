package core

import (
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/flow"
	"shadowdb/internal/msg"
	"shadowdb/internal/netutil"
)

// Client drives transactions against a ShadowDB deployment. It is a
// plain state machine (no goroutines, no wall clock): Submit returns the
// directives to send, Handle consumes incoming messages and retry timers.
// One transaction is outstanding at a time (the closed-loop client of the
// paper's benchmarks); exactly-once execution is guaranteed by the
// (client, sequence-number) pair, so retries are safe.

// HdrClientRetry is the client's retry timer header.
const HdrClientRetry = "sdb.cliretry"

// ClientRetryBody tags the retry timer with the request it guards.
type ClientRetryBody struct {
	Seq int64
}

// ClientMode selects the protocol the client speaks.
type ClientMode int

// The client modes.
const (
	// ModePBR sends to the primary and follows redirects.
	ModePBR ClientMode = iota + 1
	// ModeSMR broadcasts through the total order broadcast service and
	// takes the first answer.
	ModeSMR
)

// Client is a ShadowDB client state machine.
type Client struct {
	// Slf is the client's own location (where answers arrive).
	Slf msg.Loc
	// Mode selects PBR or SMR.
	Mode ClientMode
	// Replicas is the PBR replica pool (first guess first).
	Replicas []msg.Loc
	// BcastNodes is the SMR broadcast service membership.
	BcastNodes []msg.Loc
	// Retry is the base resend timeout (0 = 2s). Consecutive retries of
	// the same request back off exponentially from this base.
	Retry time.Duration
	// RetryCap bounds the exponential backoff (0 = 16x the base). The cap
	// keeps a client useful across long partitions: it probes at a bounded
	// rate instead of backing off forever.
	RetryCap time.Duration
	// JitterSeed seeds the deterministic retry jitter (0 = derived from
	// Slf). Jitter desynchronizes clients that failed together — avoiding
	// a retry stampede at the recovering primary — while staying a pure
	// function of (seed, seq, attempt) so simulated runs replay exactly.
	JitterSeed uint64
	// Deadline is the per-request time budget: Submit stamps each
	// request with Now() + Deadline, every hop may refuse it once
	// expired, and the client itself declares a terminal
	// deadline-exceeded outcome when the budget runs out mid-retry. 0
	// disables deadlines. Requires Now.
	Deadline time.Duration
	// Now is the deployment clock (virtual in simulation, wall live).
	// Required when Deadline or Budget is set.
	Now func() time.Duration
	// Budget, when set, bounds retry volume: every resend — timer
	// retries and overload-Reject retries alike — spends one token, and
	// an empty bucket turns the request into a terminal overload error
	// instead of amplifying the congestion that caused it. Nil keeps
	// the historical unbounded-retry behavior.
	Budget *flow.RetryBudget

	seq      int64
	primary  int
	home     int // broadcast node the SMR client currently uses
	attempt  int // consecutive retries of the inflight request
	inflight *TxRequest
	// Local reads (lease/follower mode): the outstanding read, its
	// target replica, and the last completed result (drained by
	// TakeRead; the drainer owns releasing the pooled result).
	inflightRead *ReadRequest
	readTarget   msg.Loc
	lastRead     *ReadResult
	// Done counts completed transactions; Retries counts resends.
	Done    int64
	Retries int64
	Aborted int64
	// ReadsDone counts completed local reads; ReadsRejected counts
	// serve refusals (no valid lease / staleness bound exceeded), each
	// of which is retried on the normal backoff schedule.
	ReadsDone     int64
	ReadsRejected int64
	// Shed counts flow.Reject answers received; Overloaded and Expired
	// count requests that ended in a terminal overload / deadline
	// outcome (each also counted in Done and Aborted).
	Shed       int64
	Overloaded int64
	Expired    int64
}

func (c *Client) now() time.Duration {
	if c.Now == nil {
		return 0
	}
	return c.Now()
}

func (c *Client) retry() time.Duration {
	if c.Retry > 0 {
		return c.Retry
	}
	return 2 * time.Second
}

// backoff returns the retry-timer delay for the current attempt: the
// base timeout on the first send, then doubling up to RetryCap with
// deterministic ±25% jitter, all delegated to the shared
// netutil.Backoff policy so every retry loop in the system describes
// its schedule the same way.
func (c *Client) backoff() time.Duration {
	seed := c.JitterSeed
	if seed == 0 {
		seed = netutil.StrSeed(string(c.Slf))
	}
	b := netutil.Backoff{Base: c.retry(), Cap: c.RetryCap, Jitter: 0.5, Seed: seed}
	return b.Delay(c.attempt, uint64(c.seq))
}

// Busy reports whether a transaction or read is outstanding.
func (c *Client) Busy() bool { return c.inflight != nil || c.inflightRead != nil }

// Seq returns the last assigned sequence number.
func (c *Client) Seq() int64 { return c.seq }

// Submit starts a new transaction. It panics if one is already
// outstanding (the driver must wait for completion).
func (c *Client) Submit(txType string, args []any) []msg.Directive {
	if c.inflight != nil {
		panic("core: client already has a transaction outstanding")
	}
	c.seq++
	c.attempt = 0
	req := TxRequest{Client: c.Slf, Seq: c.seq, Type: txType, Args: args}
	if c.Deadline > 0 && c.Now != nil {
		req.Deadline = int64(c.Now() + c.Deadline)
	}
	c.inflight = &req
	return c.send(req)
}

// SubmitRead starts a local read against target (a replica, not a
// broadcast node) in the given mode. Like Submit it panics when a
// request is already outstanding. A rejected read — the target cannot
// prove the mode's guarantee right now — is retried against the same
// target on the retry-timer schedule; the caller drains completed
// results with TakeRead.
func (c *Client) SubmitRead(typ string, args []any, mode ReadMode, target msg.Loc) []msg.Directive {
	if c.Busy() {
		panic("core: client already has a request outstanding")
	}
	c.seq++
	c.attempt = 0
	req := ReadRequest{Client: c.Slf, Seq: c.seq, Type: typ, Args: args, Mode: mode}
	c.inflightRead = &req
	c.readTarget = target
	return c.sendRead(req)
}

func (c *Client) sendRead(req ReadRequest) []msg.Directive {
	return []msg.Directive{
		msg.SendAfter(c.backoff(), c.Slf, msg.M(HdrClientRetry, ClientRetryBody{Seq: req.Seq})),
		msg.Send(c.readTarget, msg.M(HdrRead, req)),
	}
}

// TakeRead drains the last completed read result. The caller owns the
// pooled result and must ReleaseReadResult it when done.
func (c *Client) TakeRead() *ReadResult {
	r := c.lastRead
	c.lastRead = nil
	return r
}

func (c *Client) send(req TxRequest) []msg.Directive {
	outs := []msg.Directive{
		msg.SendAfter(c.backoff(), c.Slf, msg.M(HdrClientRetry, ClientRetryBody{Seq: req.Seq})),
	}
	switch c.Mode {
	case ModeSMR:
		payload, err := EncodeTx(req)
		if err != nil {
			return nil
		}
		// One service node suffices (it forwards to the sequencer); the
		// retry path rotates to another node in case it crashed.
		b := broadcast.Bcast{From: c.Slf, Seq: req.Seq, Payload: payload, Deadline: req.Deadline}
		outs = append(outs, msg.Send(c.BcastNodes[c.home%len(c.BcastNodes)], msg.M(broadcast.HdrBcast, b)))
	default:
		outs = append(outs, msg.Send(c.Replicas[c.primary%len(c.Replicas)], msg.M(HdrTx, req)))
	}
	return outs
}

// Handle consumes one incoming message. When the outstanding transaction
// completes it returns its result (nil otherwise) plus any directives to
// send.
func (c *Client) Handle(in msg.Msg) (*TxResult, []msg.Directive) {
	switch in.Hdr {
	case HdrReadResult:
		res := in.Body.(*ReadResult)
		if c.inflightRead == nil || res.Seq != c.inflightRead.Seq {
			return nil, nil // stale or duplicate answer
		}
		if res.Rejected {
			// The target cannot serve this mode right now (lease not yet
			// granted, holder transition, staleness bound exceeded): hold
			// the request and let the retry timer resend it.
			c.ReadsRejected++
			ReleaseReadResult(res)
			return nil, nil
		}
		c.inflightRead = nil
		c.attempt = 0
		c.ReadsDone++
		c.lastRead = res
		return nil, nil
	case HdrTxResult:
		res := in.Body.(TxResult)
		if c.inflight == nil || res.Seq != c.inflight.Seq {
			return nil, nil // stale or duplicate answer
		}
		c.inflight = nil
		c.attempt = 0
		c.Done++
		if res.Aborted {
			c.Aborted++
		}
		return &res, nil
	case HdrRedirect:
		rd := in.Body.(Redirect)
		if c.inflight == nil || rd.Primary == "" {
			return nil, nil
		}
		for i, r := range c.Replicas {
			if r == rd.Primary {
				c.primary = i
			}
		}
		// A redirect came from a live replica with fresh routing info:
		// reset the backoff so only true unresponsiveness grows it.
		c.attempt = 0
		return nil, c.resend()
	case flow.HdrReject:
		rej := in.Body.(flow.Reject)
		if c.inflight == nil || rej.Seq != c.inflight.Seq {
			return nil, nil // stale rejection, request already resolved
		}
		c.Shed++
		if rej.Reason == flow.ReasonDeadline {
			// A retry cannot meet a deadline that has already passed:
			// terminal, client-visible.
			c.Expired++
			return c.terminal("flow: deadline exceeded before ordering")
		}
		// Overload / breaker fast-fail: retryable — the armed retry
		// timer will resend on its backoff schedule — but only while
		// the retry budget holds out.
		if c.Budget != nil && !c.Budget.Allow(c.now()) {
			c.Overloaded++
			return c.terminal(flow.ErrOverload.Error())
		}
		return nil, nil
	case HdrClientRetry:
		body := in.Body.(ClientRetryBody)
		if c.inflightRead != nil && body.Seq == c.inflightRead.Seq {
			c.Retries++
			c.attempt++
			mCliRetries.Inc()
			return nil, c.sendRead(*c.inflightRead)
		}
		if c.inflight == nil || body.Seq != c.inflight.Seq {
			return nil, nil // the guarded request already completed
		}
		if c.Deadline > 0 && c.Now != nil && flow.Expired(c.inflight.Deadline, int64(c.Now())) {
			// The deadline passed while retrying: declare the terminal
			// outcome here rather than spinning. A late real result is
			// dropped as stale (the sequence number has moved on).
			c.Expired++
			return c.terminal("flow: deadline exceeded")
		}
		if c.Budget != nil && !c.Budget.Allow(c.now()) {
			c.Overloaded++
			return c.terminal(flow.ErrOverload.Error())
		}
		c.Retries++
		c.attempt++
		mCliRetries.Inc()
		mCliBackoff.Add(int64(c.backoff()))
		if c.Mode == ModePBR {
			// Try the next replica: the primary may have crashed.
			c.primary = (c.primary + 1) % len(c.Replicas)
		} else {
			// Try another service node: the home node may have crashed.
			c.home = (c.home + 1) % len(c.BcastNodes)
		}
		return nil, c.resend()
	}
	return nil, nil
}

func (c *Client) resend() []msg.Directive {
	if c.inflight == nil {
		return nil
	}
	return c.send(*c.inflight)
}

// terminal resolves the outstanding transaction with a client-side
// terminal error (deadline exceeded, retry budget exhausted). The
// outcome is an aborted TxResult so drivers handle it on the same path
// as a deterministic abort; the sequence number moves on, so a late
// server answer for the request is dropped as stale.
func (c *Client) terminal(errMsg string) (*TxResult, []msg.Directive) {
	res := TxResult{Client: c.Slf, Seq: c.inflight.Seq, Aborted: true, Err: errMsg}
	c.inflight = nil
	c.attempt = 0
	c.Done++
	c.Aborted++
	return &res, nil
}
